// Tests for the int8 compute-on-codes datapath: the qgemm oracle's
// bit-exactness against dequantize-then-float, fused-epilogue equivalence,
// blocked int8 parity within the activation-quantization bound across
// schemes and odd shapes, the QuantWeightStore rebase/patch invariants,
// layer/model forwards over adopted codes, arena-backed inference
// activations, delta redeploy bit-identity + byte accounting, and the
// evaluator's compute-on-codes mode.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "ber.h"
#include "test_util.h"

namespace {

using namespace ber;
using kernels::Backend;
using kernels::BlockedBackend;
using kernels::QEpilogue;
using kernels::QWeightView;

std::vector<float> random_values(long n, Rng& rng, float scale = 0.2f) {
  std::vector<float> v(static_cast<std::size_t>(n));
  for (float& x : v) x = rng.normal() * scale;
  return v;
}

std::vector<float> dequantized(const QuantizedTensor& qt) {
  std::vector<float> w(qt.size());
  dequantize(qt, w);
  return w;
}

// The unfused reference: float GEMM on the dequantized weights plus the
// layer's own bias / ReLU loops (channel-major layout, y[rows, n]).
std::vector<float> unfused_qgemm(const QuantizedTensor& qt, long rows,
                                 long cols, long n, const float* x,
                                 const float* bias, bool relu) {
  const std::vector<float> w = dequantized(qt);
  std::vector<float> y(static_cast<std::size_t>(rows * n), 0.0f);
  kernels::backend("reference")
      .gemm(rows, n, cols, 1.0f, w.data(), x, 0.0f, y.data());
  for (long i = 0; i < rows; ++i) {
    float* row = y.data() + i * n;
    if (bias != nullptr) {
      for (long p = 0; p < n; ++p) row[p] += bias[i];
    }
    if (relu) {
      for (long p = 0; p < n; ++p) {
        if (!(row[p] > 0.0f)) row[p] = 0.0f;
      }
    }
  }
  return y;
}

// Batch-major layout, y[m, rows] = X[m, cols] * W^T.
std::vector<float> unfused_qgemm_bt(const QuantizedTensor& qt, long rows,
                                    long cols, long m, const float* x,
                                    const float* bias, bool relu) {
  const std::vector<float> w = dequantized(qt);
  std::vector<float> y(static_cast<std::size_t>(m * rows), 0.0f);
  kernels::backend("reference")
      .gemm_bt(m, rows, cols, 1.0f, x, w.data(), 0.0f, y.data());
  for (long p = 0; p < m; ++p) {
    float* row = y.data() + p * rows;
    for (long j = 0; j < rows; ++j) {
      if (bias != nullptr) row[j] += bias[j];
      if (relu && !(row[j] > 0.0f)) row[j] = 0.0f;
    }
  }
  return y;
}

const std::vector<QuantScheme>& oracle_schemes() {
  static const std::vector<QuantScheme> schemes{
      QuantScheme::normal(8),     QuantScheme::rquant(8),
      QuantScheme::normal(3),     QuantScheme::rquant(4),
      QuantScheme::rquant_trunc(6), QuantScheme::symmetric_rounded(8),
      QuantScheme::rquant(12),  // no int8 mirror: oracle everywhere
  };
  return schemes;
}

// ------------------------------------------------------------ the oracle ---

TEST(QGemmOracle, BitExactWithDequantizeThenFloatReference) {
  const Backend& ref = kernels::backend("reference");
  Rng rng(101);
  const long rows = 5, cols = 7, n = 9, m = 4;
  for (const QuantScheme& scheme : oracle_schemes()) {
    SCOPED_TRACE(scheme.str());
    const std::vector<float> wf = random_values(rows * cols, rng);
    const QuantizedTensor qt = quantize(wf, scheme);
    const QuantWeightStore store(qt, rows, cols);
    const std::vector<float> bias = random_values(rows, rng, 0.5f);

    const std::vector<float> x = random_values(cols * n, rng, 1.0f);
    std::vector<float> y(static_cast<std::size_t>(rows * n));
    ref.qgemm(store.view(), n, x.data(), y.data(), {bias.data(), true});
    const std::vector<float> want =
        unfused_qgemm(qt, rows, cols, n, x.data(), bias.data(), true);
    for (std::size_t i = 0; i < y.size(); ++i) {
      ASSERT_EQ(y[i], want[i]) << "qgemm element " << i;
    }

    const std::vector<float> xb = random_values(m * cols, rng, 1.0f);
    std::vector<float> yb(static_cast<std::size_t>(m * rows));
    ref.qgemm_bt(store.view(), m, xb.data(), yb.data(), {bias.data(), true});
    const std::vector<float> wantb =
        unfused_qgemm_bt(qt, rows, cols, m, xb.data(), bias.data(), true);
    for (std::size_t i = 0; i < yb.size(); ++i) {
      ASSERT_EQ(yb[i], wantb[i]) << "qgemm_bt element " << i;
    }
  }
}

TEST(QGemmOracle, FusedEpilogueBitExactWithUnfusedPasses) {
  const Backend& ref = kernels::backend("reference");
  Rng rng(102);
  const long rows = 6, cols = 11, n = 5;
  const QuantScheme scheme = QuantScheme::rquant(8);
  const std::vector<float> wf = random_values(rows * cols, rng);
  const QuantizedTensor qt = quantize(wf, scheme);
  const QuantWeightStore store(qt, rows, cols);
  const std::vector<float> x = random_values(cols * n, rng, 1.0f);
  const std::vector<float> bias = random_values(rows, rng, 0.5f);

  // Fused bias+ReLU in one qgemm call...
  std::vector<float> fused(static_cast<std::size_t>(rows * n));
  ref.qgemm(store.view(), n, x.data(), fused.data(), {bias.data(), true});
  // ...vs a bare qgemm followed by separate bias / ReLU passes.
  std::vector<float> unfused(static_cast<std::size_t>(rows * n));
  ref.qgemm(store.view(), n, x.data(), unfused.data(), {nullptr, false});
  for (long i = 0; i < rows; ++i) {
    for (long p = 0; p < n; ++p) {
      float& v = unfused[static_cast<std::size_t>(i * n + p)];
      v += bias[i];
      if (!(v > 0.0f)) v = 0.0f;
    }
  }
  for (std::size_t i = 0; i < fused.size(); ++i) {
    ASSERT_EQ(fused[i], unfused[i]) << "element " << i;
  }
}

// ------------------------------------------------------ blocked int8 path ---

struct QShape {
  long rows, cols, n;
};

const std::vector<QShape>& qgemm_shapes() {
  // Straddle the kQMR x kQNR tile (4 x 64) and the k4 packing: primes,
  // singletons, exact-tile and one-past-tile sizes.
  static const std::vector<QShape> shapes{
      {1, 1, 1},   {3, 5, 7},     {4, 64, 64},  {5, 130, 33},
      {17, 19, 23}, {8, 4, 65},    {64, 100, 130}, {2, 257, 3},
  };
  return shapes;
}

// The blocked path quantizes activations to int8 dynamically (symmetric,
// sx = absmax / 127), which moves each x element by at most sx / 2. The
// induced output error is bounded by 0.5 * sx * sum_j |w[i, j]| per output
// channel; everything beyond that small bound must agree with the oracle.
void expect_within_activation_bound(const QWeightView& w, const float* x,
                                    long n_x, const std::vector<float>& got,
                                    const std::vector<float>& want,
                                    long rows, long n, bool batch_major,
                                    const QuantizedTensor& qt) {
  float absmax = 0.0f;
  for (long i = 0; i < n_x; ++i) absmax = std::max(absmax, std::abs(x[i]));
  const float sx = absmax / 127.0f;
  const std::vector<float> wf = dequantized(qt);
  std::vector<float> row_abs(static_cast<std::size_t>(rows), 0.0f);
  for (long i = 0; i < rows; ++i) {
    for (long j = 0; j < w.cols; ++j) {
      row_abs[static_cast<std::size_t>(i)] +=
          std::abs(wf[static_cast<std::size_t>(i * w.cols + j)]);
    }
  }
  for (long a = 0; a < (batch_major ? n : rows); ++a) {
    for (long b = 0; b < (batch_major ? rows : n); ++b) {
      const long i = batch_major ? b : a;  // output channel
      const std::size_t idx = static_cast<std::size_t>(
          batch_major ? a * rows + b : a * n + b);
      const float bound = 0.5f * sx * row_abs[static_cast<std::size_t>(i)] +
                          1e-3f * std::abs(want[idx]) + 1e-4f;
      ASSERT_NEAR(got[idx], want[idx], bound)
          << "channel " << i << " idx " << idx;
    }
  }
}

TEST(QGemmBlocked, ParityWithOracleAcrossShapesAndSchemes) {
  const Backend& ref = kernels::backend("reference");
  const BlockedBackend blocked(1);
  Rng rng(111);
  const std::vector<QuantScheme> schemes{
      QuantScheme::normal(8), QuantScheme::rquant(8), QuantScheme::normal(4),
      QuantScheme::rquant(2), QuantScheme::symmetric_rounded(8)};
  for (const QuantScheme& scheme : schemes) {
    for (const QShape& s : qgemm_shapes()) {
      SCOPED_TRACE(scheme.str() + " " + std::to_string(s.rows) + "x" +
                   std::to_string(s.cols) + "x" + std::to_string(s.n));
      const std::vector<float> wf = random_values(s.rows * s.cols, rng);
      const QuantizedTensor qt = quantize(wf, scheme);
      const QuantWeightStore store(qt, s.rows, s.cols);
      ASSERT_TRUE(store.has_int8());
      const std::vector<float> bias = random_values(s.rows, rng, 0.5f);
      const QEpilogue ep{bias.data(), true};

      const std::vector<float> x = random_values(s.cols * s.n, rng, 1.0f);
      std::vector<float> y_ref(static_cast<std::size_t>(s.rows * s.n));
      std::vector<float> y_blk(y_ref.size());
      ref.qgemm(store.view(), s.n, x.data(), y_ref.data(), ep);
      blocked.qgemm(store.view(), s.n, x.data(), y_blk.data(), ep);
      expect_within_activation_bound(store.view(), x.data(), s.cols * s.n,
                                     y_blk, y_ref, s.rows, s.n,
                                     /*batch_major=*/false, qt);

      const std::vector<float> xb = random_values(s.n * s.cols, rng, 1.0f);
      std::vector<float> yb_ref(static_cast<std::size_t>(s.n * s.rows));
      std::vector<float> yb_blk(yb_ref.size());
      ref.qgemm_bt(store.view(), s.n, xb.data(), yb_ref.data(), ep);
      blocked.qgemm_bt(store.view(), s.n, xb.data(), yb_blk.data(), ep);
      expect_within_activation_bound(store.view(), xb.data(), s.n * s.cols,
                                     yb_blk, yb_ref, s.rows, s.n,
                                     /*batch_major=*/true, qt);
    }
  }
}

TEST(QGemmBlocked, WideSchemesFallBackToOracleBitExactly) {
  const Backend& ref = kernels::backend("reference");
  const BlockedBackend blocked(1);
  Rng rng(112);
  for (const int bits : {10, 12, 16}) {
    const long rows = 7, cols = 13, n = 6;
    const std::vector<float> wf = random_values(rows * cols, rng);
    const QuantizedTensor qt = quantize(wf, QuantScheme::rquant(bits));
    const QuantWeightStore store(qt, rows, cols);
    EXPECT_FALSE(store.has_int8());
    const std::vector<float> bias = random_values(rows, rng, 0.5f);
    const std::vector<float> x = random_values(cols * n, rng, 1.0f);
    std::vector<float> y_ref(static_cast<std::size_t>(rows * n));
    std::vector<float> y_blk(y_ref.size());
    ref.qgemm(store.view(), n, x.data(), y_ref.data(), {bias.data(), true});
    blocked.qgemm(store.view(), n, x.data(), y_blk.data(),
                  {bias.data(), true});
    for (std::size_t i = 0; i < y_ref.size(); ++i) {
      ASSERT_EQ(y_blk[i], y_ref[i]) << "bits=" << bits << " element " << i;
    }
  }
}

// ----------------------------------------------------- QuantWeightStore ---

TEST(QuantWeightStore, PatchKeepsMirrorsConsistentIncludingOverflowCodes) {
  Rng rng(121);
  for (const int bits : {2, 4, 8}) {
    for (const QuantScheme scheme :
         {QuantScheme::rquant(bits), QuantScheme::normal(bits)}) {
      SCOPED_TRACE(scheme.str());
      const long rows = 4, cols = 6;
      const std::vector<float> wf = random_values(rows * cols, rng);
      QuantizedTensor qt = quantize(wf, scheme);
      QuantWeightStore store(qt, rows, cols);

      // Patch in the extreme code words a bit-error burst can produce —
      // all-ones is the case whose unsigned level (2^(m-1)) would overflow
      // int8 without the store's rebase.
      const std::uint16_t all_ones =
          static_cast<std::uint16_t>((1u << bits) - 1u);
      const std::vector<std::pair<std::size_t, std::uint16_t>> patches{
          {0, all_ones}, {7, 0}, {13, static_cast<std::uint16_t>(1u << (bits - 1))}};
      for (const auto& [index, code] : patches) {
        const float decoded = store.set_code(index, code);
        EXPECT_EQ(decoded, decode_code(code, qt.scheme, qt.range));
        qt.codes[index] = code;
      }

      // The patched store must be indistinguishable from one rebuilt from
      // scratch on the patched codes: same q levels, same row sums.
      const QuantWeightStore fresh(qt, rows, cols);
      const QWeightView a = store.view();
      const QWeightView b = fresh.view();
      ASSERT_TRUE(a.has_int8());
      EXPECT_EQ(a.slope, b.slope);
      EXPECT_EQ(a.shift, b.shift);
      EXPECT_EQ(std::memcmp(a.q, b.q, static_cast<std::size_t>(rows * cols)),
                0);
      for (long i = 0; i < rows; ++i) EXPECT_EQ(a.row_sums[i], b.row_sums[i]);
      for (long i = 0; i < rows * cols; ++i) {
        EXPECT_EQ(a.codes[i], b.codes[i]);
      }
    }
  }
}

TEST(QuantWeightStore, BlockedHandlesPatchedOverflowCodes) {
  // After patching unsigned all-ones codes in, the blocked path must still
  // track the oracle — i.e. the rebased levels really fit int8.
  const Backend& ref = kernels::backend("reference");
  const BlockedBackend blocked(1);
  Rng rng(122);
  const long rows = 4, cols = 64, n = 65;
  const std::vector<float> wf = random_values(rows * cols, rng);
  QuantizedTensor qt = quantize(wf, QuantScheme::rquant(8));
  QuantWeightStore store(qt, rows, cols);
  for (std::size_t i = 0; i < qt.size(); i += 9) store.set_code(i, 0xFF);
  for (std::size_t i = 3; i < qt.size(); i += 11) store.set_code(i, 0);
  for (std::size_t i = 0; i < qt.size(); i += 9) qt.codes[i] = 0xFF;
  for (std::size_t i = 3; i < qt.size(); i += 11) qt.codes[i] = 0;

  const std::vector<float> x = random_values(cols * n, rng, 1.0f);
  std::vector<float> y_ref(static_cast<std::size_t>(rows * n));
  std::vector<float> y_blk(y_ref.size());
  ref.qgemm(store.view(), n, x.data(), y_ref.data(), {});
  blocked.qgemm(store.view(), n, x.data(), y_blk.data(), {});
  expect_within_activation_bound(store.view(), x.data(), cols * n, y_blk,
                                 y_ref, rows, n, /*batch_major=*/false, qt);
}

// --------------------------------------------- layer / model code forward ---

TEST(CodeCompute, LinearForwardOnCodesBitExactOnReference) {
  kernels::ScopedBackend guard("reference");
  Rng rng(131);
  Linear linear(7, 5);
  for (Param* p : linear.params()) {
    for (long i = 0; i < p->value.numel(); ++i) {
      p->value[i] = rng.normal() * 0.3f;
    }
  }
  Param* weight = linear.params()[0];
  const QuantizedTensor qt = quantize(
      std::span<const float>(weight->value.data(),
                             static_cast<std::size_t>(weight->value.numel())),
      QuantScheme::rquant(8));
  Tensor x = Tensor::randn({6, 7}, rng);

  linear.adopt_weight_codes(qt);
  EXPECT_TRUE(linear.code_compute_active());
  Tensor y_codes = linear.forward(x, /*training=*/false);
  // adopt refreshed the float mirror, so the released float path computes
  // on identical weights — and must produce identical bits.
  linear.release_weight_codes();
  EXPECT_FALSE(linear.code_compute_active());
  Tensor y_float = linear.forward(x, /*training=*/false);
  ASSERT_EQ(y_codes.shape(), y_float.shape());
  for (long i = 0; i < y_codes.numel(); ++i) {
    ASSERT_EQ(y_codes[i], y_float[i]) << "element " << i;
  }
}

TEST(CodeCompute, TrainingForwardDropsAdoptedCodes) {
  Rng rng(132);
  Linear linear(4, 3);
  for (Param* p : linear.params()) {
    for (long i = 0; i < p->value.numel(); ++i) {
      p->value[i] = rng.normal() * 0.3f;
    }
  }
  Param* weight = linear.params()[0];
  const QuantizedTensor qt = quantize(
      std::span<const float>(weight->value.data(),
                             static_cast<std::size_t>(weight->value.numel())),
      QuantScheme::rquant(8));
  linear.adopt_weight_codes(qt);
  EXPECT_TRUE(linear.code_compute_active());
  Tensor x = Tensor::randn({2, 4}, rng);
  linear.forward(x, /*training=*/true);
  EXPECT_FALSE(linear.code_compute_active());
}

// One deploy_snapshot-driven end-to-end parity check per architecture: the
// code-resident forward (with Sequential's ReLU fusion) must be bit-exact
// with the dequantized float forward on the reference backend.
void expect_code_deploy_parity(const ModelConfig& mc, const Tensor& x,
                               int seed) {
  kernels::ScopedBackend guard("reference");
  Rng rng(seed);
  auto model = build_model(mc);
  he_init(*model, rng);
  const NetQuantizer quantizer(QuantScheme::rquant(8));
  const NetSnapshot snap = quantizer.quantize(model->params());
  const std::vector<ParamSlot> slots = param_slots(*model);

  deploy_snapshot(snap, slots, /*on_codes=*/false);
  Tensor y_float = model->forward(x, false);
  deploy_snapshot(snap, slots, /*on_codes=*/true);
  Tensor y_codes = model->forward(x, false);
  ASSERT_EQ(y_codes.shape(), y_float.shape());
  for (long i = 0; i < y_codes.numel(); ++i) {
    ASSERT_EQ(y_codes[i], y_float[i]) << "logit " << i;
  }
  // Dropping codes returns to the float path and the same bits.
  deploy_snapshot(snap, slots, /*on_codes=*/false);
  Tensor y_back = model->forward(x, false);
  for (long i = 0; i < y_back.numel(); ++i) ASSERT_EQ(y_back[i], y_float[i]);
}

TEST(CodeCompute, MlpDeployParityOnReference) {
  Rng rng(133);
  ModelConfig mc;
  mc.arch = Arch::kMlp;
  mc.in_channels = 1;
  mc.width = 8;
  expect_code_deploy_parity(mc, Tensor::randn({3, 1, 12, 12}, rng), 141);
}

TEST(CodeCompute, ConvNetDeployParityOnReference) {
  Rng rng(134);
  ModelConfig mc;
  mc.width = 4;
  expect_code_deploy_parity(mc, Tensor::randn({2, 3, 12, 12}, rng), 142);
}

TEST(CodeCompute, BlockedForwardTracksReferenceWithinTolerance) {
  Rng rng(135);
  ModelConfig mc;
  mc.width = 4;
  auto model = build_model(mc);
  he_init(*model, rng);
  const NetQuantizer quantizer(QuantScheme::rquant(8));
  const NetSnapshot snap = quantizer.quantize(model->params());
  const std::vector<ParamSlot> slots = param_slots(*model);
  deploy_snapshot(snap, slots, /*on_codes=*/true);
  Tensor x = Tensor::randn({2, 3, 12, 12}, rng);

  Tensor y_ref, y_blk;
  {
    kernels::ScopedBackend g("reference");
    y_ref = model->forward(x, false);
  }
  {
    kernels::ScopedBackend g("blocked");
    y_blk = model->forward(x, false);
  }
  ASSERT_EQ(y_blk.shape(), y_ref.shape());
  float worst = 0.0f;
  for (long i = 0; i < y_ref.numel(); ++i) {
    worst = std::max(worst, std::abs(y_blk[i] - y_ref[i]));
  }
  // Per-layer activation quantization error compounds through the net;
  // logits still have to stay close on this scale of model.
  EXPECT_LT(worst / std::max(1.0f, y_ref.abs_max()), 0.05f);
}

// ------------------------------------------------- arena-backed forwards ---

TEST(ArenaActivations, InferenceForwardAllocatesFromArenaAndConverges) {
  Rng rng(151);
  ModelConfig mc;
  mc.width = 4;
  auto model = build_model(mc);
  he_init(*model, rng);
  Tensor x = Tensor::randn({2, 3, 12, 12}, rng);

  Tensor y0 = model->forward(x, false);
  const std::size_t bytes = model->last_forward_arena_bytes();
  EXPECT_GT(bytes, 0u);  // activations really lived in the arena
  model->forward(x, false);
  const std::size_t cap = kernels::tls_arena().capacity();
  const std::size_t chunks = kernels::tls_arena().chunk_count();
  for (int i = 0; i < 4; ++i) {
    Tensor y = model->forward(x, false);
    // Steady state: same per-forward arena footprint, no new allocations,
    // and identical results (the heap copy outlives the arena scope).
    EXPECT_EQ(model->last_forward_arena_bytes(), bytes);
    for (long j = 0; j < y.numel(); ++j) ASSERT_EQ(y[j], y0[j]);
  }
  EXPECT_EQ(kernels::tls_arena().capacity(), cap)
      << "inference forwards kept growing the arena";
  EXPECT_EQ(kernels::tls_arena().chunk_count(), chunks);
}

TEST(ArenaActivations, TrainingForwardStaysOnHeap) {
  Rng rng(152);
  ModelConfig mc;
  mc.arch = Arch::kMlp;
  mc.in_channels = 1;
  mc.width = 8;
  auto model = build_model(mc);
  he_init(*model, rng);
  Tensor x = Tensor::randn({2, 1, 12, 12}, rng);
  model->forward(x, false);
  const std::size_t inference_bytes = model->last_forward_arena_bytes();
  EXPECT_GT(inference_bytes, 0u);
  model->forward(x, true);  // training: no arena accounting
  EXPECT_EQ(model->last_forward_arena_bytes(), inference_bytes)
      << "training forward must not touch the inference arena meter";
}

// ------------------------------------------------------- delta redeploys ---

struct DeployRig {
  std::unique_ptr<Sequential> model;
  NetQuantizer quantizer{QuantScheme::rquant(8)};
  std::shared_ptr<NetSnapshot> base;
  ChipFaultList faults;
  std::vector<double> voltages{1.0, 0.9, 0.8, 0.7};
  std::vector<double> rates{0.0005, 0.005, 0.02, 0.05};

  explicit DeployRig(int seed)
      : model(make_model(seed)),
        base(std::make_shared<NetSnapshot>(
            quantizer.quantize(model->params()))),
        faults(*base, BitErrorConfig{0.05}, /*chip_seed=*/7, /*p_max=*/0.05) {}

  Replica replica(int id, std::size_t at, bool on_codes) {
    return Replica(id, *model, quantizer, base, faults, voltages, rates, at,
                   on_codes);
  }

 private:
  static std::unique_ptr<Sequential> make_model(int seed) {
    Rng rng(seed);
    ModelConfig mc;
    mc.arch = Arch::kMlp;
    mc.in_channels = 1;
    mc.width = 8;
    auto m = build_model(mc);
    he_init(*m, rng);
    return m;
  }
};

void expect_params_equal(Sequential& a, Sequential& b) {
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    for (long j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j])
          << pa[i]->name << "[" << j << "]";
    }
  }
}

TEST(DeltaRedeploy, ApplyDeltaMatchesFullApplyBothDirections) {
  DeployRig rig(161);
  const std::vector<double>& rates = rig.rates;
  for (std::size_t from = 0; from < rates.size(); ++from) {
    for (std::size_t to = 0; to < rates.size(); ++to) {
      NetSnapshot cur = *rig.base;
      rig.faults.apply(cur, rates[from]);
      std::vector<ChipFaultList::ChangedCode> changed;
      const std::size_t n_delta = rig.faults.apply_delta(
          cur, *rig.base, rates[from], rates[to], &changed);

      NetSnapshot want = *rig.base;
      const std::size_t n_full = rig.faults.apply(want, rates[to]);
      EXPECT_EQ(n_delta, n_full) << from << "->" << to;
      for (std::size_t t = 0; t < want.tensors.size(); ++t) {
        ASSERT_EQ(cur.tensors[t].codes, want.tensors[t].codes)
            << "tensor " << t << " " << from << "->" << to;
      }
      if (from == to) EXPECT_TRUE(changed.empty());
      if (from != to && n_full > 0) {
        // Moving between distinct rates with live faults must rewrite
        // strictly fewer words than the whole network holds.
        EXPECT_LT(changed.size(), rig.base->total_weights());
      }
    }
  }
}

TEST(DeltaRedeploy, BitIdenticalWithFullDeployAtEveryGridPoint) {
  for (const bool on_codes : {false, true}) {
    SCOPED_TRACE(on_codes ? "on_codes" : "weight_space");
    DeployRig rig(162);
    Replica delta = rig.replica(0, 0, on_codes);
    Replica full = rig.replica(1, 0, on_codes);
    const unsigned long long full_bytes_once = full.deploy_stats().bytes_written;
    ASSERT_GT(full_bytes_once, 0u);

    // A walk that moves down, up, jumps, and repeats a point.
    const std::size_t walk[] = {2, 1, 3, 0, 2, 2};
    unsigned long long prev_bytes = delta.deploy_stats().bytes_written;
    for (const std::size_t i : walk) {
      const bool repeat = i == delta.grid_index();
      delta.deploy(i);
      full.deploy_full(i);
      EXPECT_EQ(delta.faults_applied(), full.faults_applied()) << "at " << i;
      expect_params_equal(delta.model(), full.model());

      const unsigned long long step =
          delta.deploy_stats().bytes_written - prev_bytes;
      prev_bytes = delta.deploy_stats().bytes_written;
      if (repeat) {
        EXPECT_EQ(step, 0u) << "no-op redeploy wrote bytes";
      } else {
        // The tentpole invariant: a delta redeploy writes strictly fewer
        // bytes than a full deploy of the same grid point.
        EXPECT_LT(step, full_bytes_once) << "at " << i;
      }
    }

    const Replica::DeployStats& ds = delta.deploy_stats();
    EXPECT_EQ(ds.deploys, 1 + 6);       // constructor + the walk
    EXPECT_EQ(ds.delta_deploys, 5);     // all moves except the repeat
    EXPECT_EQ(ds.noop_deploys, 1);      // the repeated grid point
    EXPECT_LT(ds.bytes_written, full.deploy_stats().bytes_written);

    // step_up from the bottom heals exactly back to a fresh deploy.
    delta.deploy(3);
    while (delta.step_up()) {
    }
    Replica fresh = rig.replica(2, 0, on_codes);
    expect_params_equal(delta.model(), fresh.model());
  }
}

TEST(DeltaRedeploy, CodeModeForwardMatchesWeightSpaceOnReference) {
  kernels::ScopedBackend guard("reference");
  DeployRig rig(163);
  Replica codes = rig.replica(0, 2, /*on_codes=*/true);
  Replica floats = rig.replica(1, 2, /*on_codes=*/false);
  EXPECT_TRUE(codes.compute_on_codes());
  Rng rng(164);
  Tensor x = Tensor::randn({4, 1, 12, 12}, rng);
  Tensor ya = codes.forward(x);
  Tensor yb = floats.forward(x);
  ASSERT_EQ(ya.shape(), yb.shape());
  for (long i = 0; i < ya.numel(); ++i) ASSERT_EQ(ya[i], yb[i]);

  // ...and still after a delta redeploy patched codes + mirrors in place.
  codes.deploy(0);
  floats.deploy(0);
  ya = codes.forward(x);
  yb = floats.forward(x);
  for (long i = 0; i < ya.numel(); ++i) ASSERT_EQ(ya[i], yb[i]);
}

TEST(DeltaRedeploy, PoolStatsAggregateDeployCounters) {
  DeployRig rig(165);
  std::vector<Replica> fleet;
  fleet.push_back(rig.replica(0, 1, false));
  fleet.push_back(rig.replica(1, 1, false));
  fleet[0].deploy(2);  // one delta before the pool takes ownership
  const unsigned long long expect_bytes =
      fleet[0].deploy_stats().bytes_written +
      fleet[1].deploy_stats().bytes_written;
  ReplicaPool pool(std::move(fleet), {/*max_batch=*/8, /*max_wait_us=*/100});
  pool.drain();
  const ServingStats s = pool.stats();
  EXPECT_EQ(s.deploys, 3);        // two constructor deploys + one delta
  EXPECT_EQ(s.delta_deploys, 1);
  EXPECT_EQ(s.noop_deploys, 0);
  EXPECT_EQ(s.deploy_bytes, expect_bytes);
}

// ------------------------------------------------ evaluator on the codes ---

TEST(EvaluatorOnCodes, ReferenceRunIsBitExactWithWeightSpace) {
  Rng rng(171);
  ModelConfig mc;
  mc.arch = Arch::kMlp;
  mc.in_channels = 1;
  mc.width = 8;
  auto model = build_model(mc);
  he_init(*model, rng);
  auto dc = SyntheticConfig::mnist();
  dc.n_test = 64;
  const Dataset data = make_synthetic(dc, /*train=*/false);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const RandomBitErrorModel fault(cfg, /*seed_base=*/7);

  kernels::ScopedBackend g("reference");
  RobustnessEvaluator ev(*model, QuantScheme::rquant(8));
  EXPECT_FALSE(ev.compute_on_codes() &&
               std::getenv("BER_COMPUTE_ON_CODES") == nullptr);
  ev.set_compute_on_codes(false);
  const RobustResult weight_space = ev.run(fault, data, /*n_trials=*/3);
  ev.set_compute_on_codes(true);
  const RobustResult on_codes = ev.run(fault, data, /*n_trials=*/3);
  // The reference qgemm path is bit-exact with dequantize-then-float, so
  // the aggregate error statistics must match exactly.
  EXPECT_EQ(on_codes.mean_rerr, weight_space.mean_rerr);
  EXPECT_EQ(on_codes.std_rerr, weight_space.std_rerr);
  EXPECT_EQ(on_codes.mean_confidence, weight_space.mean_confidence);
}

TEST(EvaluatorOnCodes, BlockedInt8TracksReferenceWithinSlack) {
  Rng rng(172);
  ModelConfig mc;
  mc.arch = Arch::kMlp;
  mc.in_channels = 1;
  mc.width = 8;
  auto model = build_model(mc);
  he_init(*model, rng);
  auto dc = SyntheticConfig::mnist();
  dc.n_test = 64;
  const Dataset data = make_synthetic(dc, /*train=*/false);
  BitErrorConfig cfg;
  cfg.p = 0.005;
  const RandomBitErrorModel fault(cfg, /*seed_base=*/9);

  RobustResult r_ref, r_int8;
  {
    kernels::ScopedBackend g("reference");
    RobustnessEvaluator ev(*model, QuantScheme::rquant(8));
    ev.set_compute_on_codes(false);
    r_ref = ev.run(fault, data, /*n_trials=*/3);
  }
  {
    kernels::ScopedBackend g("blocked");
    RobustnessEvaluator ev(*model, QuantScheme::rquant(8));
    ev.set_compute_on_codes(true);
    r_int8 = ev.run(fault, data, /*n_trials=*/3);
  }
  // int8 activation quantization moves logits by ~1e-2 relative; on 64
  // images allow a few borderline argmax flips per trial.
  EXPECT_NEAR(r_int8.mean_rerr, r_ref.mean_rerr, 4.0f / 64.0f + 1e-6f);
}

}  // namespace
