// Sequential container: composition, cloning, checkpoints, residual blocks.
#include <gtest/gtest.h>

#include <cstdio>

#include "core/rng.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/init.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pool.h"
#include "nn/sequential.h"
#include "test_util.h"

namespace ber {
namespace {

Sequential make_tiny_net() {
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1);
  seq.emplace<ReLU>();
  seq.emplace<MaxPool2d>(2);
  seq.emplace<Flatten>();
  seq.emplace<Linear>(2 * 2 * 2, 3);
  return seq;
}

TEST(SequentialTest, ForwardShape) {
  Sequential seq = make_tiny_net();
  Rng rng(1);
  he_init(seq, rng);
  Tensor y = seq.forward(Tensor::randn({4, 1, 4, 4}, rng), false);
  EXPECT_EQ(y.shape(), (std::vector<long>{4, 3}));
}

TEST(SequentialTest, ParamsAggregated) {
  Sequential seq = make_tiny_net();
  // conv w+b, linear w+b
  EXPECT_EQ(seq.params().size(), 4u);
  EXPECT_GT(seq.num_weights(), 0);
  EXPECT_EQ(seq.num_weights(), 2 * 1 * 9 + 2 + 8 * 3 + 3);
}

TEST(SequentialTest, GradcheckWholeNet) {
  Sequential seq = make_tiny_net();
  Rng rng(2);
  he_init(seq, rng);
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  test::gradcheck_layer(seq, x, /*tol=*/3e-2);
}

TEST(SequentialTest, CloneIsIndependent) {
  Sequential seq = make_tiny_net();
  Rng rng(3);
  he_init(seq, rng);
  Sequential copy(seq);
  const float before = copy.params()[0]->value[0];
  seq.params()[0]->value[0] += 100.0f;
  EXPECT_EQ(copy.params()[0]->value[0], before);
}

TEST(SequentialTest, CloneProducesSameOutputs) {
  Sequential seq = make_tiny_net();
  Rng rng(4);
  he_init(seq, rng);
  Sequential copy(seq);
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  Tensor y1 = seq.forward(x, false);
  Tensor y2 = copy.forward(x, false);
  for (long i = 0; i < y1.numel(); ++i) EXPECT_EQ(y1[i], y2[i]);
}

TEST(SequentialTest, SaveLoadRoundTrip) {
  const std::string path = testing::TempDir() + "/ber_model.bin";
  Sequential seq = make_tiny_net();
  Rng rng(5);
  he_init(seq, rng);
  Tensor x = Tensor::randn({1, 1, 4, 4}, rng);
  Tensor y_before = seq.forward(x, false);
  seq.save(path);

  Sequential fresh = make_tiny_net();
  Rng rng2(999);
  he_init(fresh, rng2);
  fresh.load(path);
  Tensor y_after = fresh.forward(x, false);
  for (long i = 0; i < y_before.numel(); ++i) EXPECT_EQ(y_before[i], y_after[i]);
  std::remove(path.c_str());
}

TEST(SequentialTest, LoadRejectsDifferentArchitecture) {
  const std::string path = testing::TempDir() + "/ber_model2.bin";
  Sequential seq = make_tiny_net();
  Rng rng(6);
  he_init(seq, rng);
  seq.save(path);

  Sequential other;
  other.emplace<Linear>(4, 4);
  EXPECT_THROW(other.load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(SequentialTest, BatchNormBuffersSurviveSaveLoad) {
  const std::string path = testing::TempDir() + "/ber_model3.bin";
  Sequential seq;
  seq.emplace<Conv2d>(1, 2, 3, 1, 1);
  seq.emplace<BatchNorm2d>(2);
  Rng rng(7);
  he_init(seq, rng);
  // Drive running stats away from defaults.
  for (int i = 0; i < 10; ++i) {
    seq.forward(Tensor::randn({4, 1, 4, 4}, rng, 3.0f), true);
  }
  const float rm = (*seq.buffers()[0])[0];
  seq.save(path);
  Sequential fresh;
  fresh.emplace<Conv2d>(1, 2, 3, 1, 1);
  fresh.emplace<BatchNorm2d>(2);
  fresh.load(path);
  EXPECT_EQ((*fresh.buffers()[0])[0], rm);
  std::remove(path.c_str());
}

TEST(ResidualTest, ForwardAddsSkip) {
  Sequential body;
  body.emplace<Conv2d>(2, 2, 3, 1, 1);
  Residual res(std::move(body));
  // Zero body weights -> residual behaves as identity.
  for (Param* p : res.params()) p->value.zero();
  Rng rng(8);
  Tensor x = Tensor::randn({1, 2, 4, 4}, rng);
  Tensor y = res.forward(x, false);
  for (long i = 0; i < x.numel(); ++i) EXPECT_EQ(y[i], x[i]);
}

TEST(ResidualTest, Gradcheck) {
  Sequential body;
  body.emplace<Conv2d>(2, 2, 3, 1, 1);
  body.emplace<ReLU>();
  body.emplace<Conv2d>(2, 2, 3, 1, 1);
  Residual res(std::move(body));
  Rng rng(9);
  for (Param* p : res.params()) {
    for (long i = 0; i < p->value.numel(); ++i) p->value[i] = rng.normal() * 0.3f;
  }
  Tensor x = Tensor::randn({1, 2, 3, 3}, rng);
  test::gradcheck_layer(res, x, /*tol=*/3e-2);
}

TEST(SequentialTest, VisitReachesNestedLayers) {
  Sequential seq;
  Sequential body;
  body.emplace<Conv2d>(2, 2, 3, 1, 1);
  body.emplace<ReLU>();
  seq.emplace<Residual>(std::move(body));
  seq.emplace<ReLU>();
  int relus = 0;
  seq.visit([&](Layer& l) {
    if (dynamic_cast<ReLU*>(&l) != nullptr) ++relus;
  });
  EXPECT_EQ(relus, 2);
}

TEST(SequentialTest, ZeroGradClearsAll) {
  Sequential seq = make_tiny_net();
  Rng rng(10);
  he_init(seq, rng);
  Tensor x = Tensor::randn({2, 1, 4, 4}, rng);
  Tensor y = seq.forward(x, true);
  seq.backward(Tensor::full(y.shape(), 1.0f));
  bool any_nonzero = false;
  for (Param* p : seq.params()) {
    for (long i = 0; i < p->grad.numel(); ++i) {
      if (p->grad[i] != 0.0f) any_nonzero = true;
    }
  }
  EXPECT_TRUE(any_nonzero);
  seq.zero_grad();
  for (Param* p : seq.params()) {
    for (long i = 0; i < p->grad.numel(); ++i) EXPECT_EQ(p->grad[i], 0.0f);
  }
}

TEST(HeInit, ScalesWithFanIn) {
  Sequential seq;
  seq.emplace<Linear>(1000, 10);
  Rng rng(11);
  he_init(seq, rng);
  const Tensor& w = seq.params()[0]->value;
  double sq = 0.0;
  for (long i = 0; i < w.numel(); ++i) sq += static_cast<double>(w[i]) * w[i];
  const double std_measured = std::sqrt(sq / w.numel());
  EXPECT_NEAR(std_measured, std::sqrt(2.0 / 1000.0), 0.005);
  // Bias zero-initialized.
  EXPECT_EQ(seq.params()[1]->value.abs_max(), 0.0f);
}

}  // namespace
}  // namespace ber
