// Adversarial bit-flip attack engine tests: closed-form bit-saliency deltas
// against brute-force single-flip dequantization, budget schedules,
// deterministic (config, seed) -> flip-set reproduction, layout rejection
// paths of AdversarialBitErrorModel, gradient-capture hygiene, and the
// headline property — gradient-guided flips degrade a trained net at least
// as much as budget-matched random flips.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "attack/attacker.h"
#include "attack/bit_saliency.h"
#include "core/rng.h"
#include "data/shapes.h"
#include "eval/metrics.h"
#include "faults/adversarial_model.h"
#include "faults/evaluator.h"
#include "models/factory.h"
#include "quant/quantizer.h"
#include "train/grad_capture.h"
#include "train/trainer.h"

namespace ber {
namespace {

// ------------------------------------------------------------- bit deltas ---

TEST(FlipDelta, MatchesBruteForceSingleFlipDequantization) {
  Rng rng(3);
  const QuantScheme schemes[] = {
      QuantScheme::normal(8),           QuantScheme::rquant(8),
      QuantScheme::rquant(4),           QuantScheme::rquant_trunc(6),
      QuantScheme::symmetric_rounded(8), QuantScheme::normal(2),
      QuantScheme::rquant(12),
  };
  for (const QuantScheme& scheme : schemes) {
    std::vector<float> w(257);
    for (auto& v : w) v = static_cast<float>(rng.uniform(-1.3, 0.9));
    const QuantizedTensor qt = quantize(w, scheme);
    for (std::size_t i = 0; i < qt.codes.size(); i += 3) {
      for (int bit = 0; bit < scheme.bits; ++bit) {
        const std::uint16_t flipped =
            qt.codes[i] ^ static_cast<std::uint16_t>(1u << bit);
        const float brute = decode_code(flipped, scheme, qt.range) -
                            decode_code(qt.codes[i], scheme, qt.range);
        const float closed = flip_delta(qt.codes[i], bit, scheme, qt.range);
        EXPECT_NEAR(closed, brute, 1e-4f * std::abs(brute) + 1e-6f)
            << scheme.str() << " code=" << qt.codes[i] << " bit=" << bit;
        // Sign agreement is what the greedy selection depends on.
        EXPECT_EQ(closed > 0.0f, brute > 0.0f)
            << scheme.str() << " code=" << qt.codes[i] << " bit=" << bit;
      }
    }
  }
}

TEST(FlipDelta, RejectsBitOutsideCodeWidth) {
  const QuantScheme scheme = QuantScheme::rquant(8);
  const QuantRange range{-1.0f, 1.0f};
  EXPECT_THROW(flip_delta(0, 8, scheme, range), std::invalid_argument);
  EXPECT_THROW(flip_delta(0, -1, scheme, range), std::invalid_argument);
}

// -------------------------------------------------------- budget schedules ---

TEST(AttackConfig, ValidationRejectsBadFields) {
  AttackConfig cfg;
  cfg.budget = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.rounds = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.rounds = 31;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.batch = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.attack_examples = -1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(AttackConfig{}.validate());
}

TEST(AttackConfig, RoundFlipsSumToBudget) {
  for (BudgetSchedule schedule :
       {BudgetSchedule::kUniform, BudgetSchedule::kGeometric}) {
    for (int budget : {1, 7, 32, 100}) {
      for (int rounds : {1, 3, 4, 10}) {
        AttackConfig cfg;
        cfg.budget = budget;
        cfg.rounds = rounds;
        cfg.schedule = schedule;
        int sum = 0;
        for (int r = 0; r < rounds; ++r) {
          const int k = cfg.flips_in_round(r);
          EXPECT_GE(k, 0);
          sum += k;
        }
        EXPECT_EQ(sum, budget)
            << "schedule=" << static_cast<int>(schedule)
            << " budget=" << budget << " rounds=" << rounds;
      }
    }
  }
  // Geometric rounds are non-decreasing (bulk lands late).
  AttackConfig cfg;
  cfg.budget = 100;
  cfg.rounds = 5;
  cfg.schedule = BudgetSchedule::kGeometric;
  for (int r = 1; r < cfg.rounds; ++r) {
    EXPECT_GE(cfg.flips_in_round(r), cfg.flips_in_round(r - 1));
  }
}

// ------------------------------------------------------------- selection ---

TEST(TopFlips, PicksHighestGainCellsDeterministically) {
  // One tensor, unsigned 4-bit codes: flip_delta of bit k on a zero-bit is
  // +2^k * Delta. With gradient g_i on weight i, gains are g_i * 2^k * Delta
  // for unset bits.
  const QuantScheme scheme = QuantScheme::rquant(4);
  std::vector<float> w = {0.1f, 0.2f, 0.3f, 0.4f};
  NetSnapshot snap;
  snap.tensors.push_back(quantize(w, scheme));
  snap.offsets.push_back(0);
  std::vector<Tensor> grads;
  grads.push_back(Tensor::from_data({4}, {1.0f, -2.0f, 0.0f, 0.5f}));

  const auto top = top_flips(snap, grads, 3, {});
  ASSERT_EQ(top.size(), 3u);
  // Gains sorted descending, all positive.
  EXPECT_GT(top[0].gain, 0.0f);
  EXPECT_GE(top[0].gain, top[1].gain);
  EXPECT_GE(top[1].gain, top[2].gain);
  // Excluding the winner promotes the runner-up.
  const auto rest = top_flips(snap, grads, 2, {flip_key(top[0].flip)});
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0].flip, top[1].flip);
  EXPECT_EQ(rest[1].flip, top[2].flip);
  // Zero-gradient weight never appears.
  for (const ScoredFlip& s : top) EXPECT_NE(s.flip.index, 2u);
}

TEST(TopFlips, RejectsMismatchedGradients) {
  NetSnapshot snap;
  snap.tensors.push_back(quantize(std::vector<float>{0.1f, 0.2f},
                                  QuantScheme::rquant(8)));
  snap.offsets.push_back(0);
  EXPECT_THROW(top_flips(snap, {}, 1, {}), std::invalid_argument);
  std::vector<Tensor> wrong;
  wrong.push_back(Tensor::from_data({3}, {1.0f, 1.0f, 1.0f}));
  EXPECT_THROW(top_flips(snap, wrong, 1, {}), std::invalid_argument);
}

// --------------------------------------------------------------- fixture ---

// One trained reference net, shared across the expensive attack tests.
struct Trained {
  Dataset train_set, test_set;
  std::unique_ptr<Sequential> model;
  QuantScheme scheme = QuantScheme::rquant(8);

  Trained() {
    SyntheticConfig dc = SyntheticConfig::mnist();
    dc.n_train = 400;
    dc.n_test = 200;
    train_set = make_synthetic(dc, true);
    test_set = make_synthetic(dc, false);
    ModelConfig mc;
    mc.arch = Arch::kMlp;
    mc.in_channels = 1;
    mc.width = 8;
    model = build_model(mc);
    TrainConfig tc;
    tc.quant = scheme;
    tc.epochs = 6;
    tc.batch_size = 50;
    tc.seed = 11;
    train(*model, train_set, test_set, tc);
  }
};

Trained& trained() {
  static Trained t;
  return t;
}

// ----------------------------------------------------------- determinism ---

TEST(BitFlipAttacker, FlipSetReproducibleForFixedConfigAndSeed) {
  Trained& t = trained();
  AttackConfig cfg;
  cfg.budget = 20;
  cfg.rounds = 4;
  cfg.attack_examples = 100;
  cfg.seed = 9;
  const RobustnessEvaluator evaluator(*t.model, t.scheme);

  BitFlipAttacker a(*t.model, t.scheme, t.train_set, cfg);
  BitFlipAttacker b(*t.model, t.scheme, t.train_set, cfg);
  const AttackResult ra = a.attack(evaluator.snapshot());
  const AttackResult rb = b.attack(evaluator.snapshot());
  ASSERT_EQ(ra.flips.size(), rb.flips.size());
  EXPECT_EQ(ra.flips, rb.flips);
  EXPECT_EQ(ra.clean_loss, rb.clean_loss);
  EXPECT_EQ(ra.final_loss, rb.final_loss);
  // Rerunning the same attacker reproduces the set too (no hidden state).
  EXPECT_EQ(a.attack(evaluator.snapshot()).flips, ra.flips);

  EXPECT_LE(ra.flips.size(), static_cast<std::size_t>(cfg.budget));
  EXPECT_GT(ra.predicted_gain, 0.0f);
  // The attack increases the attack-batch loss.
  EXPECT_GT(ra.final_loss, ra.clean_loss);
}

TEST(BitFlipAttacker, RejectsMismatchedSnapshot) {
  Trained& t = trained();
  AttackConfig cfg;
  BitFlipAttacker attacker(*t.model, t.scheme, t.train_set, cfg);
  NetSnapshot wrong;
  wrong.tensors.push_back(quantize(std::vector<float>{0.1f, 0.2f}, t.scheme));
  wrong.offsets.push_back(0);
  EXPECT_THROW(attacker.attack(wrong), std::invalid_argument);
}

// ----------------------------------------------- adversarial beats random ---

TEST(AdversarialAttack, DegradesAtLeastAsMuchAsRandomAtEqualBudget) {
  Trained& t = trained();
  const RobustnessEvaluator evaluator(*t.model, t.scheme);
  const float clean = test_error(*t.model, t.test_set, &t.scheme);

  AttackConfig cfg;
  cfg.budget = 40;
  cfg.rounds = 4;
  cfg.attack_examples = 200;
  cfg.seed = 1;
  BitFlipAttacker attacker(*t.model, t.scheme, t.train_set, cfg);
  const AdversarialBitErrorModel adv =
      make_adversarial_model(attacker, evaluator.snapshot(), 2);
  const RobustResult adv_r = evaluator.run(adv, t.test_set, 2);

  const AdversarialBitErrorModel rnd = random_flip_model(
      evaluator.snapshot(), static_cast<std::size_t>(cfg.budget),
      /*n_trials=*/6);
  const RobustResult rnd_r = evaluator.run(rnd, t.test_set, 6);

  // The gradient-guided flips must hurt, and hurt at least as much as the
  // budget-matched random control.
  EXPECT_GT(adv_r.mean_rerr, clean);
  EXPECT_GE(adv_r.mean_rerr, rnd_r.mean_rerr);
}

TEST(AdversarialError, EntryPointIsDeterministic) {
  Trained& t = trained();
  AttackConfig cfg;
  cfg.budget = 10;
  cfg.rounds = 2;
  cfg.attack_examples = 80;
  const RobustResult a =
      adversarial_error(*t.model, t.scheme, t.test_set, t.train_set, cfg, 2);
  const RobustResult b =
      adversarial_error(*t.model, t.scheme, t.test_set, t.train_set, cfg, 2);
  ASSERT_EQ(a.per_chip.size(), 2u);
  EXPECT_EQ(a.per_chip, b.per_chip);
}

// ------------------------------------------------------- model validation ---

TEST(AdversarialBitErrorModel, ValidateLayoutRejectionPaths) {
  NetSnapshot layout;
  layout.tensors.push_back(
      quantize(std::vector<float>(10, 0.1f), QuantScheme::rquant(8)));
  layout.offsets.push_back(0);

  EXPECT_THROW(AdversarialBitErrorModel({}), std::invalid_argument);

  const AdversarialBitErrorModel bad_tensor({{BitFlip{1, 0, 0}}});
  EXPECT_THROW(bad_tensor.validate_layout(layout), std::invalid_argument);
  const AdversarialBitErrorModel bad_index({{BitFlip{0, 10, 0}}});
  EXPECT_THROW(bad_index.validate_layout(layout), std::invalid_argument);
  const AdversarialBitErrorModel bad_bit({{BitFlip{0, 0, 8}}});
  EXPECT_THROW(bad_bit.validate_layout(layout), std::invalid_argument);
  const AdversarialBitErrorModel ok({{BitFlip{0, 9, 7}}});
  EXPECT_NO_THROW(ok.validate_layout(layout));
}

TEST(AdversarialBitErrorModel, EvaluatorSurfacesLayoutErrorOnCallingThread) {
  Trained& t = trained();
  // A flip set built for a *different* (bigger) net must be rejected before
  // trials fan out to workers.
  const AdversarialBitErrorModel fault({{BitFlip{200, 0, 0}}});
  const RobustnessEvaluator evaluator(*t.model, t.scheme);
  EXPECT_THROW(evaluator.run(fault, t.test_set, 2), std::invalid_argument);
}

TEST(AdversarialBitErrorModel, AppliesFlipsAsXorAndWrapsTrials) {
  NetSnapshot layout;
  layout.tensors.push_back(
      quantize(std::vector<float>(8, 0.3f), QuantScheme::rquant(8)));
  layout.offsets.push_back(0);
  const AdversarialBitErrorModel fault(
      {{BitFlip{0, 1, 3}, BitFlip{0, 1, 0}}, {BitFlip{0, 5, 7}}});

  NetSnapshot snap = layout;
  EXPECT_EQ(fault.apply(snap, 0), 1u);  // two flips, one word changed
  EXPECT_EQ(snap.tensors[0].codes[1], layout.tensors[0].codes[1] ^ 0b1001);
  NetSnapshot snap2 = layout;
  EXPECT_EQ(fault.apply(snap2, 2), 1u);  // trial 2 wraps to set 0
  EXPECT_EQ(snap2.tensors[0].codes, snap.tensors[0].codes);
}

TEST(RandomFlipSet, BudgetedDistinctDeterministic) {
  NetSnapshot layout;
  layout.tensors.push_back(
      quantize(std::vector<float>(50, 0.2f), QuantScheme::rquant(4)));
  layout.offsets.push_back(0);
  layout.tensors.push_back(
      quantize(std::vector<float>(30, -0.4f), QuantScheme::rquant(8)));
  layout.offsets.push_back(50);

  const auto a = random_flip_set(layout, 25, 7);
  const auto b = random_flip_set(layout, 25, 7);
  EXPECT_EQ(a, b);
  ASSERT_EQ(a.size(), 25u);
  std::vector<std::uint64_t> keys;
  for (const BitFlip& f : a) {
    ASSERT_LT(f.tensor, 2u);
    const QuantizedTensor& qt = layout.tensors[f.tensor];
    ASSERT_LT(f.index, qt.codes.size());
    ASSERT_LT(f.bit, qt.scheme.bits);
    keys.push_back(flip_key(f));
  }
  std::sort(keys.begin(), keys.end());
  EXPECT_EQ(std::unique(keys.begin(), keys.end()), keys.end());  // distinct
  EXPECT_NE(random_flip_set(layout, 25, 8), a);  // seed matters
  // 50*4 + 30*8 = 440 cells; budget above that is rejected.
  EXPECT_THROW(random_flip_set(layout, 441, 1), std::invalid_argument);
  EXPECT_NO_THROW(random_flip_set(layout, 440, 1));
}

// -------------------------------------------------------- gradient capture ---

TEST(GradCapture, LeavesModelStateUntouched) {
  Trained& t = trained();
  Sequential clone(*t.model);
  const auto params = clone.params();
  // Seed distinctive state to verify restoration.
  params[0]->grad.fill(3.5f);
  const float w0 = params[0]->value[0];
  const NetQuantizer quantizer(t.scheme);
  const NetSnapshot snap = quantizer.quantize(params);

  const GradCapture cap = capture_weight_gradients(
      clone, quantizer, snap, t.test_set.head(64), /*batch=*/32);
  EXPECT_GT(cap.loss, 0.0f);
  ASSERT_EQ(cap.grads.size(), params.size());
  // Returned gradients are real (not all zero).
  float norm = 0.0f;
  for (const Tensor& g : cap.grads) {
    for (long i = 0; i < g.numel(); ++i) norm += g[i] * g[i];
  }
  EXPECT_GT(norm, 0.0f);
  // Master weights and the caller's gradient accumulators survive.
  EXPECT_EQ(params[0]->value[0], w0);
  EXPECT_EQ(params[0]->grad[0], 3.5f);
}

TEST(GradCapture, BatchSizeDoesNotChangeTheGradient) {
  Trained& t = trained();
  Sequential clone(*t.model);
  const NetQuantizer quantizer(t.scheme);
  const NetSnapshot snap = quantizer.quantize(clone.params());
  const Dataset subset = t.test_set.head(60);
  const GradCapture one = capture_weight_gradients(clone, quantizer, snap,
                                                   subset, /*batch=*/60);
  const GradCapture chunked = capture_weight_gradients(clone, quantizer, snap,
                                                       subset, /*batch=*/17);
  ASSERT_EQ(one.grads.size(), chunked.grads.size());
  EXPECT_NEAR(one.loss, chunked.loss, 1e-5f);
  for (std::size_t i = 0; i < one.grads.size(); ++i) {
    for (long j = 0; j < one.grads[i].numel(); ++j) {
      EXPECT_NEAR(one.grads[i][j], chunked.grads[i][j], 1e-5f);
    }
  }
}

}  // namespace
}  // namespace ber
