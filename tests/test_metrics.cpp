// Evaluation metric tests: Err, RErr (incl. p=0 degenerate case and
// monotone growth), profiled-chip evaluation, L-inf noise and logit stats.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "data/shapes.h"
#include "eval/metrics.h"
#include "models/factory.h"
#include "nn/init.h"
#include "nn/linear.h"

namespace ber {
namespace {

struct Fixture {
  Dataset data;
  std::unique_ptr<Sequential> model;

  explicit Fixture(int n = 200) {
    auto cfg = SyntheticConfig::mnist();
    cfg.n_test = n;
    data = make_synthetic(cfg, false);
    ModelConfig mc;
    mc.arch = Arch::kMlp;
    mc.in_channels = 1;
    mc.width = 8;
    model = build_model(mc);
    Rng rng(5);
    he_init(*model, rng);
  }
};

TEST(Metrics, RandomModelNearChance) {
  Fixture f(400);
  const EvalResult r = evaluate(*f.model, f.data);
  EXPECT_GT(r.error, 0.6f);  // chance is 0.9 for 10 classes
  EXPECT_LE(r.error, 1.0f);
  EXPECT_GT(r.confidence, 0.0f);
}

TEST(Metrics, ConstantLogitsTieBreaksToArgmax) {
  // A model with zero weights outputs identical logits; argmax picks class 0
  // so error = 1 - 1/K on a balanced set.
  Fixture f(200);
  for (Param* p : f.model->params()) p->value.zero();
  const EvalResult r = evaluate(*f.model, f.data);
  EXPECT_NEAR(r.error, 0.9f, 1e-6f);
  EXPECT_NEAR(r.confidence, 0.1f, 1e-4f);
}

TEST(Metrics, TestErrorWithQuantMatchesManualQuantization) {
  Fixture f(200);
  const QuantScheme scheme = QuantScheme::rquant(8);
  const float direct = test_error(*f.model, f.data, &scheme);
  // Quantization at 8 bits barely moves a random model's predictions.
  const float plain = test_error(*f.model, f.data);
  EXPECT_NEAR(direct, plain, 0.08f);
  // The model's weights are restored afterwards (exactly).
  const float plain2 = test_error(*f.model, f.data);
  EXPECT_EQ(plain, plain2);
}

TEST(Metrics, RobustErrorZeroRateEqualsQuantizedError) {
  Fixture f(200);
  const QuantScheme scheme = QuantScheme::rquant(8);
  BitErrorConfig cfg;
  cfg.p = 0.0;
  const RobustResult r = robust_error(*f.model, scheme, f.data, cfg, 3);
  const float qerr = test_error(*f.model, f.data, &scheme);
  EXPECT_EQ(r.per_chip.size(), 3u);
  for (float e : r.per_chip) EXPECT_EQ(e, qerr);
  EXPECT_EQ(r.std_rerr, 0.0f);
}

TEST(Metrics, RobustErrorDeterministicInSeeds) {
  Fixture f(150);
  const QuantScheme scheme = QuantScheme::rquant(8);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const RobustResult a = robust_error(*f.model, scheme, f.data, cfg, 4, 500);
  const RobustResult b = robust_error(*f.model, scheme, f.data, cfg, 4, 500);
  EXPECT_EQ(a.per_chip, b.per_chip);
  const RobustResult c = robust_error(*f.model, scheme, f.data, cfg, 4, 501);
  EXPECT_NE(a.per_chip, c.per_chip);
}

TEST(Metrics, RobustErrorLeavesModelUntouched) {
  Fixture f(100);
  const float before = f.model->params()[0]->value[0];
  BitErrorConfig cfg;
  cfg.p = 0.05;
  robust_error(*f.model, QuantScheme::rquant(8), f.data, cfg, 2);
  EXPECT_EQ(f.model->params()[0]->value[0], before);
}

TEST(Metrics, TrainedModelDegradesWithMassiveErrors) {
  // Train nothing — instead use a hand-built perfect-ish classifier on a
  // linearly-separable toy: one Linear layer reading one pixel per class is
  // hard to arrange here, so rely on the statistical property instead:
  // massive bit error rates drive ANY model toward chance.
  Fixture f(200);
  BitErrorConfig heavy;
  heavy.p = 0.3;
  const RobustResult r =
      robust_error(*f.model, QuantScheme::rquant(8), f.data, heavy, 3);
  EXPECT_GT(r.mean_rerr, 0.7f);
}

TEST(Metrics, ProfiledChipEvaluation) {
  Fixture f(100);
  ProfiledChipConfig cc = ProfiledChipConfig::chip1();
  cc.rows = 512;
  ProfiledChip chip(cc);
  const RobustResult at_vmin = robust_error_profiled(
      *f.model, QuantScheme::rquant(8), f.data, chip, 1.0, 2);
  const float qerr = test_error(*f.model, f.data, nullptr);
  EXPECT_NEAR(at_vmin.mean_rerr, qerr, 0.1f);
  EXPECT_EQ(at_vmin.per_chip.size(), 2u);
}

TEST(Metrics, LinfNoiseZeroEpsIsClean) {
  Fixture f(100);
  const float clean = test_error(*f.model, f.data);
  const RobustResult r = linf_weight_noise_error(*f.model, f.data, 0.0, 3);
  for (float e : r.per_chip) EXPECT_EQ(e, clean);
}

TEST(Metrics, LinfNoiseLargeEpsDegrades) {
  Fixture f(150);
  const RobustResult r = linf_weight_noise_error(*f.model, f.data, 1.0, 3);
  EXPECT_GT(r.mean_rerr, 0.5f);
}

TEST(Metrics, LogitStatsConsistentWithEvaluate) {
  Fixture f(150);
  const LogitStats ls = logit_stats(*f.model, f.data);
  const EvalResult ev = evaluate(*f.model, f.data);
  EXPECT_NEAR(ls.mean_confidence, ev.confidence, 1e-5f);
  EXPECT_GE(ls.mean_logit_gap, 0.0f);
}

TEST(Metrics, SummaryStatsMeanStd) {
  // Hand-check mean/std aggregation through the p=0 + distinct-seed path.
  Fixture f(100);
  BitErrorConfig cfg;
  cfg.p = 0.02;
  const RobustResult r =
      robust_error(*f.model, QuantScheme::rquant(8), f.data, cfg, 5);
  double mean = 0.0;
  for (float e : r.per_chip) mean += e;
  mean /= 5.0;
  EXPECT_NEAR(r.mean_rerr, mean, 1e-6);
  double var = 0.0;
  for (float e : r.per_chip) var += (e - mean) * (e - mean);
  var /= 4.0;  // sample variance
  EXPECT_NEAR(r.std_rerr, std::sqrt(var), 1e-5);
}

}  // namespace
}  // namespace ber
