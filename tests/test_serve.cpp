// Serving-runtime tests: checkpoint round trips (plus BinaryReader
// corruption defenses), the operating-point selection rule, replica
// deploy/step-up bit-exactness, BatchQueue coalescing and concurrent-
// producer correctness, and the HealthMonitor trip -> redeploy loop.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <memory>
#include <thread>

#include "core/serialize.h"
#include "data/shapes.h"
#include "eval/metrics.h"
#include "models/factory.h"
#include "nn/init.h"
#include "serve/batch_queue.h"
#include "serve/checkpoint.h"
#include "serve/health_monitor.h"
#include "serve/planner.h"
#include "serve/replica.h"
#include "serve/replica_pool.h"
#include "tensor/ops.h"
#include "train/trainer.h"

namespace ber {
namespace {

std::string tmp_path(const std::string& name) {
  return testing::TempDir() + name;
}

// One briefly RandBET-trained MLP shared by every test in this binary
// (training it once keeps the suite fast; tests never mutate it).
struct Served {
  Dataset train_set, test_set;
  std::unique_ptr<Sequential> model;
  QuantScheme scheme = QuantScheme::rquant(8);
  float clean_err = 0.0f;

  static Served& instance() {
    static Served s;
    return s;
  }

 private:
  Served() {
    auto cfg = SyntheticConfig::mnist();
    cfg.n_train = 400;
    cfg.n_test = 160;
    train_set = make_synthetic(cfg, true);
    test_set = make_synthetic(cfg, false);
    ModelConfig mc;
    mc.arch = Arch::kMlp;
    mc.in_channels = 1;
    mc.width = 8;
    model = build_model(mc);
    TrainConfig tc;
    tc.method = Method::kRandBET;
    tc.quant = scheme;
    tc.wmax = 0.3f;
    tc.p_train = 0.01;
    tc.bit_error_loss_threshold = 99.0f;
    tc.epochs = 10;
    tc.batch_size = 50;
    tc.sgd.lr = 0.1f;
    tc.augment.max_shift = 1;
    tc.augment.cutout = 0;
    tc.augment.noise_std = 0.0f;
    train(*model, train_set, test_set, tc);
    clean_err = test_error(*model, test_set, &scheme);
  }
};

std::unique_ptr<Sequential> same_arch() {
  ModelConfig mc;
  mc.arch = Arch::kMlp;
  mc.in_channels = 1;
  mc.width = 8;
  return build_model(mc);
}

void expect_params_equal(Sequential& a, Sequential& b) {
  const auto pa = a.params();
  const auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (std::size_t i = 0; i < pa.size(); ++i) {
    ASSERT_EQ(pa[i]->value.numel(), pb[i]->value.numel());
    for (long j = 0; j < pa[i]->value.numel(); ++j) {
      ASSERT_EQ(pa[i]->value[j], pb[i]->value[j])
          << pa[i]->name << "[" << j << "]";
    }
  }
}

// ----------------------------------------------------------- checkpoints ---

TEST(Checkpoint, RoundTripWeightsAndScheme) {
  Served& s = Served::instance();
  const std::string path = tmp_path("ckpt_roundtrip.bin");
  save_checkpoint(path, *s.model, s.scheme);

  auto loaded = same_arch();
  const QuantScheme scheme = load_checkpoint(path, *loaded);
  EXPECT_EQ(scheme, s.scheme);
  expect_params_equal(*s.model, *loaded);
  std::remove(path.c_str());
}

TEST(Checkpoint, ArchitectureMismatchThrows) {
  Served& s = Served::instance();
  const std::string path = tmp_path("ckpt_mismatch.bin");
  save_checkpoint(path, *s.model, s.scheme);
  ModelConfig mc;
  mc.arch = Arch::kMlp;
  mc.in_channels = 1;
  mc.width = 12;  // different width -> different signature
  auto other = build_model(mc);
  EXPECT_THROW(load_checkpoint(path, *other), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedFileThrows) {
  Served& s = Served::instance();
  const std::string path = tmp_path("ckpt_full.bin");
  save_checkpoint(path, *s.model, s.scheme);

  // Rewrite the file at half length; loading must throw, not return garbage.
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 64u);
  const std::string cut = tmp_path("ckpt_truncated.bin");
  std::ofstream out(cut, std::ios::binary);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  out.close();

  auto loaded = same_arch();
  EXPECT_THROW(load_checkpoint(cut, *loaded), std::runtime_error);
  std::remove(path.c_str());
  std::remove(cut.c_str());
}

TEST(Checkpoint, AbsurdLengthPrefixThrows) {
  // A length prefix promising far more payload than the file holds must be
  // rejected before any allocation is attempted.
  const std::string path = tmp_path("absurd_prefix.bin");
  {
    BinaryWriter w(path);
    w.write_pod<std::uint64_t>(0x7fffffffffffffffULL);
  }
  {
    BinaryReader r(path);
    EXPECT_THROW(r.read_string(), std::runtime_error);
  }
  {
    BinaryReader r(path);
    EXPECT_THROW(r.read_vector<float>(), std::runtime_error);
  }
  {
    // Truncated mid-POD.
    BinaryReader r(path);
    r.read_pod<std::uint32_t>();
    r.read_pod<std::uint32_t>();
    EXPECT_THROW(r.read_pod<std::uint64_t>(), std::runtime_error);
  }
  std::remove(path.c_str());
}

// -------------------------------------------------------------- planner ----

RobustResult synthetic_rerr(float mean, float std) {
  RobustResult r;
  r.mean_rerr = mean;
  r.std_rerr = std;
  return r;
}

std::vector<GridPoint> synthetic_grid() {
  // Documented scenario: SLO band 0.10 with z=2. Upper bounds are
  // 0.05, 0.062, 0.09, 0.30 -> the last feasible (lowest-energy) point is
  // index 2 at 0.86 Vmin.
  const SramEnergyModel energy;
  std::vector<GridPoint> grid(4);
  const double voltages[] = {1.0, 0.92, 0.86, 0.80};
  const float means[] = {0.05f, 0.06f, 0.07f, 0.20f};
  const float stds[] = {0.0f, 0.001f, 0.01f, 0.05f};
  for (int i = 0; i < 4; ++i) {
    grid[i].voltage = voltages[i];
    grid[i].rate = energy.bit_error_rate(voltages[i]);
    grid[i].rerr = synthetic_rerr(means[i], stds[i]);
    grid[i].energy = energy.energy_per_access(voltages[i]);
  }
  return grid;
}

TEST(Planner, SelectsDocumentedVoltageOnSyntheticSweep) {
  SloConfig slo;
  slo.max_rerr = 0.10;
  slo.z = 2.0;
  const OperatingPointPlan plan = select_operating_point(synthetic_grid(), slo);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.chosen, 2u);
  EXPECT_DOUBLE_EQ(plan.chosen_point().voltage, 0.86);
  EXPECT_TRUE(plan.below_vmin);
  const SramEnergyModel energy;
  EXPECT_DOUBLE_EQ(plan.energy_saving,
                   energy.energy_saving_at_voltage(0.86));
  EXPECT_GT(plan.energy_saving, 0.2);
  // The SLO holds in expectation (and at the confidence level) at the
  // chosen point: ucb >= mean, and ucb <= max_rerr.
  EXPECT_LE(slo.upper_bound(plan.chosen_point().rerr), slo.max_rerr);
  EXPECT_LE(plan.chosen_point().rerr.mean_rerr, slo.max_rerr);
}

TEST(Planner, InfeasibleAtVminReportsNoSaving) {
  SloConfig slo;
  slo.max_rerr = 0.01;  // below even the Vmin error
  const OperatingPointPlan plan = select_operating_point(synthetic_grid(), slo);
  EXPECT_FALSE(plan.feasible);
  EXPECT_EQ(plan.chosen, 0u);
  EXPECT_FALSE(plan.below_vmin);
  EXPECT_DOUBLE_EQ(plan.energy_saving, 0.0);
}

TEST(Planner, FeasibilityStopsAtFirstViolation) {
  // A noisy "feasible again further down" point must NOT be chosen: the walk
  // stops at the first violation (rates only grow below that voltage).
  auto grid = synthetic_grid();
  grid[1].rerr = synthetic_rerr(0.5f, 0.0f);   // infeasible
  grid[2].rerr = synthetic_rerr(0.01f, 0.0f);  // noise artifact
  SloConfig slo;
  slo.max_rerr = 0.10;
  const OperatingPointPlan plan = select_operating_point(grid, slo);
  EXPECT_TRUE(plan.feasible);
  EXPECT_EQ(plan.chosen, 0u);
}

TEST(Planner, EndToEndPlansBelowVminForRobustModel) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  SloConfig slo;
  slo.max_rerr = s.clean_err + 0.08;
  slo.z = 1.0;
  RandomBitErrorModel fault({/*p=*/0.01});
  const OperatingPointPlan plan = planner.plan(
      fault, s.test_set, {1.0, 0.95, 0.9, 0.85}, slo, /*n_chips=*/3);
  ASSERT_EQ(plan.grid.size(), 4u);
  // Rates follow the energy model and grow as voltage drops.
  const SramEnergyModel energy;
  for (std::size_t i = 0; i < plan.grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(plan.grid[i].rate,
                     energy.bit_error_rate(plan.grid[i].voltage));
    if (i > 0) EXPECT_GE(plan.grid[i].rate, plan.grid[i - 1].rate);
  }
  // The RandBET-trained model must qualify below Vmin (at 0.95 the expected
  // fault count is < 1, so RErr there equals clean error).
  EXPECT_TRUE(plan.feasible);
  EXPECT_TRUE(plan.below_vmin);
  EXPECT_GT(plan.energy_saving, 0.0);
  EXPECT_LE(slo.upper_bound(plan.chosen_point().rerr), slo.max_rerr);
  // Deterministic: planning again gives the same sweep and pick.
  const OperatingPointPlan again = planner.plan(
      fault, s.test_set, {1.0, 0.95, 0.9, 0.85}, slo, /*n_chips=*/3);
  EXPECT_EQ(again.chosen, plan.chosen);
  for (std::size_t i = 0; i < plan.grid.size(); ++i) {
    EXPECT_EQ(again.grid[i].rerr.mean_rerr, plan.grid[i].rerr.mean_rerr);
  }
}

// -------------------------------------------------------------- replicas ---

TEST(Replica, DeployMatchesManualInjection) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  SloConfig slo;
  slo.max_rerr = 1.0;  // qualify everything: exercise a deep grid
  RandomBitErrorModel fault({0.01});
  const OperatingPointPlan plan =
      planner.plan(fault, s.test_set, {1.0, 0.9, 0.8}, slo, 2);
  std::vector<Replica> fleet = planner.deploy_fleet(fault, plan, 2);
  ASSERT_EQ(fleet.size(), 2u);

  // Serving weights must be exactly what a faulty chip at the operating
  // point would hold: base codes + trial-r faults at the chosen rate.
  const NetQuantizer quantizer(s.scheme);
  for (int r = 0; r < 2; ++r) {
    NetSnapshot snap = planner.evaluator().snapshot();
    const ChipFaultList list = fault.fault_list(
        snap, static_cast<std::uint64_t>(r), plan.grid.back().rate);
    list.apply(snap, plan.chosen_point().rate);
    auto reference = same_arch();
    quantizer.write_dequantized(snap, reference->params());
    expect_params_equal(fleet[static_cast<std::size_t>(r)].model(),
                        *reference);
  }
}

TEST(Replica, StepUpReusesListBitExactly) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  SloConfig slo;
  slo.max_rerr = 1.0;
  RandomBitErrorModel fault({0.01});
  const OperatingPointPlan plan =
      planner.plan(fault, s.test_set, {1.0, 0.92, 0.86, 0.8}, slo, 1);
  std::vector<Replica> fleet = planner.deploy_fleet(fault, plan, 1);
  Replica& r = fleet[0];
  r.deploy(3);  // bottom of the grid
  // Walk back up; at every level the weights must match a fresh deploy at
  // that level (the persistence property in action — same list, lower rate).
  std::size_t level = 3;
  while (r.step_up()) {
    --level;
    EXPECT_EQ(r.grid_index(), level);
    std::vector<Replica> fresh = planner.deploy_fleet(fault, plan, 1);
    fresh[0].deploy(level);
    expect_params_equal(r.model(), fresh[0].model());
  }
  EXPECT_EQ(r.grid_index(), 0u);
  EXPECT_FALSE(r.step_up());
  EXPECT_DOUBLE_EQ(r.point().voltage, 1.0);
}

TEST(Replica, DeployByteAccountingHasNoDrift) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  SloConfig slo;
  slo.max_rerr = 1.0;
  RandomBitErrorModel fault({0.01});
  const OperatingPointPlan plan =
      planner.plan(fault, s.test_set, {1.0, 0.92, 0.86, 0.8}, slo, 1);

  // Registry deltas (counters are process-cumulative) alongside the
  // per-replica DeployStats.
  obs::Counter& full_ctr =
      obs::registry().counter("serve.deploys", {{"kind", "full"}});
  obs::Counter& delta_ctr =
      obs::registry().counter("serve.deploys", {{"kind", "delta"}});
  obs::Counter& noop_ctr =
      obs::registry().counter("serve.deploys", {{"kind", "noop"}});
  obs::Counter& bytes_ctr = obs::registry().counter("serve.deploy_bytes");
  const std::uint64_t full0 = full_ctr.value();
  const std::uint64_t delta0 = delta_ctr.value();
  const std::uint64_t noop0 = noop_ctr.value();
  const std::uint64_t bytes0 = bytes_ctr.value();

  std::vector<Replica> fleet = planner.deploy_fleet(fault, plan, 1);
  Replica& r = fleet[0];
  const unsigned long long bpw =
      sizeof(std::uint16_t) + sizeof(float) + (r.compute_on_codes() ? 1 : 0);

  // Independent replay: mirror the replica's deploy sequence on a shadow
  // snapshot and account bytes as (#patched code words) x bytes/word. Any
  // drift between this and DeployStats.bytes_written is an accounting bug.
  const NetSnapshot base = planner.evaluator().snapshot();
  const ChipFaultList list =
      fault.fault_list(base, /*trial=*/0, plan.grid.back().rate);
  NetSnapshot shadow = base;
  list.apply(shadow, plan.chosen_point().rate);
  unsigned long long expected =
      static_cast<unsigned long long>(shadow.total_weights()) * bpw;
  EXPECT_EQ(r.deploy_stats().bytes_written, expected);

  const std::size_t seq[] = {3, 3, 1, 2, 0, plan.chosen};
  std::size_t cur = plan.chosen;
  for (const std::size_t next : seq) {
    r.deploy(next);
    if (next != cur) {
      std::vector<ChipFaultList::ChangedCode> changed;
      list.apply_delta(shadow, base, plan.grid[cur].rate,
                       plan.grid[next].rate, &changed);
      expected += changed.size() * bpw;
      cur = next;
    }
    EXPECT_EQ(r.deploy_stats().bytes_written, expected);
  }

  // The labeled registry counters moved in lockstep with DeployStats.
  const Replica::DeployStats& ds = r.deploy_stats();
  EXPECT_EQ(full_ctr.value() - full0,
            static_cast<std::uint64_t>(ds.deploys - ds.delta_deploys -
                                       ds.noop_deploys));
  EXPECT_EQ(delta_ctr.value() - delta0,
            static_cast<std::uint64_t>(ds.delta_deploys));
  EXPECT_EQ(noop_ctr.value() - noop0,
            static_cast<std::uint64_t>(ds.noop_deploys));
  EXPECT_EQ(bytes_ctr.value() - bytes0, ds.bytes_written);
}

// ------------------------------------------------------------ batch queue --

TEST(BatchQueue, CoalescesUpToMaxBatchWithoutSplitting) {
  BatchQueue q({/*max_batch=*/8, /*max_wait_us=*/0});
  for (int i = 0; i < 5; ++i) q.submit(Tensor({1, 4, 4}));
  q.submit(Tensor({4, 1, 4, 4}));  // pre-batched, would overflow the budget
  WorkBatch first = q.pop();
  EXPECT_EQ(first.requests.size(), 5u);
  EXPECT_EQ(first.total_images, 5);
  WorkBatch second = q.pop();
  ASSERT_EQ(second.requests.size(), 1u);
  EXPECT_EQ(second.total_images, 4);
  EXPECT_EQ(q.depth(), 0);
}

TEST(BatchQueue, OversizedPrebatchedRequestRidesAlone) {
  BatchQueue q({/*max_batch=*/8, /*max_wait_us=*/0});
  q.submit(Tensor({20, 1, 4, 4}));
  q.submit(Tensor({1, 4, 4}));
  WorkBatch first = q.pop();
  ASSERT_EQ(first.requests.size(), 1u);
  EXPECT_EQ(first.total_images, 20);
  WorkBatch second = q.pop();
  EXPECT_EQ(second.total_images, 1);
}

TEST(BatchQueue, CloseDrainsThenReleasesConsumers) {
  BatchQueue q({8, 0});
  auto fut = q.submit(Tensor({1, 4, 4}));
  q.close();
  EXPECT_THROW(q.submit(Tensor({1, 4, 4})), std::runtime_error);
  WorkBatch wb = q.pop();  // queued work still drains
  ASSERT_EQ(wb.requests.size(), 1u);
  wb.requests[0].promise.set_value({Prediction{3, 1.0f}});
  EXPECT_EQ(fut.get()[0].label, 3);
  EXPECT_TRUE(q.pop().empty());  // and consumers are released
}

TEST(BatchQueue, RejectsMalformedInput) {
  BatchQueue q({8, 0});
  EXPECT_THROW(q.submit(Tensor({4, 4})), std::invalid_argument);
  EXPECT_THROW(q.submit(Tensor({0, 1, 4, 4})), std::invalid_argument);
}

TEST(BatchQueue, BoundedQueueRejectsOnFullWithTypedError) {
  BatchQueue q({/*max_batch=*/8, /*max_wait_us=*/0, /*max_queue_images=*/3});
  auto f0 = q.submit(Tensor({1, 4, 4}));
  auto f1 = q.submit(Tensor({2, 1, 4, 4}));  // backlog now 3 images (= bound)
  EXPECT_EQ(q.depth_images(), 3);
  // At the bound: single images and pre-batches both shed, queue untouched.
  EXPECT_THROW(q.submit(Tensor({1, 4, 4})), QueueFullError);
  EXPECT_THROW(q.submit(Tensor({2, 1, 4, 4})), QueueFullError);
  EXPECT_EQ(q.depth(), 2);
  EXPECT_EQ(q.depth_images(), 3);

  // The no-loss/no-dup contract holds for the ACCEPTED work: both requests
  // drain, in FIFO order, exactly once.
  WorkBatch wb = q.pop();
  ASSERT_EQ(wb.requests.size(), 2u);
  EXPECT_EQ(wb.requests[0].n_images, 1);
  EXPECT_EQ(wb.requests[1].n_images, 2);
  EXPECT_EQ(q.depth_images(), 0);

  // Popping freed the budget: submissions are admitted again.
  auto f2 = q.submit(Tensor({3, 1, 4, 4}));
  EXPECT_EQ(q.depth_images(), 3);
  // An oversized request against an EMPTY queue is still admitted (the
  // bound sheds backlog, it never makes a request impossible).
  (void)q.pop();
  auto f3 = q.submit(Tensor({9, 1, 4, 4}));
  EXPECT_EQ(q.depth_images(), 9);
}

TEST(BatchQueue, UnboundedByDefaultAndNegativeBoundRejected) {
  BatchQueue q({8, 0});  // max_queue_images defaults to 0 = unbounded
  for (int i = 0; i < 100; ++i) q.submit(Tensor({1, 4, 4}));
  EXPECT_EQ(q.depth_images(), 100);
  EXPECT_THROW(BatchQueue({8, 0, /*max_queue_images=*/-1}),
               std::invalid_argument);
}

// ------------------------------------------------------------ replica pool -

// Builds a fleet whose replicas all serve the SAME chip (trial 0), so
// predictions are independent of which replica handles a request.
std::vector<Replica> same_chip_fleet(OperatingPointPlanner& planner,
                                     const RandomBitErrorModel& fault,
                                     const OperatingPointPlan& plan, int n) {
  auto base = std::make_shared<NetSnapshot>(planner.evaluator().snapshot());
  const NetQuantizer quantizer(QuantScheme::rquant(8));
  std::vector<Replica> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    fleet.emplace_back(r, *Served::instance().model, quantizer, base,
                       fault.fault_list(*base, /*trial=*/0,
                                        plan.grid.back().rate),
                       plan.voltages(), plan.rates(), plan.chosen);
  }
  return fleet;
}

TEST(ReplicaPool, ConcurrentProducersLoseNothingAndMatchSerial) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  SloConfig slo;
  slo.max_rerr = 1.0;
  RandomBitErrorModel fault({0.005});
  const OperatingPointPlan plan =
      planner.plan(fault, s.test_set, {1.0, 0.9}, slo, 1);

  // Serial reference: the same deployed weights, one image per forward.
  std::vector<Replica> ref = same_chip_fleet(planner, fault, plan, 1);
  const long n_images = 96;
  std::vector<Prediction> serial(static_cast<std::size_t>(n_images));
  Tensor image;
  std::vector<int> labels;
  for (long i = 0; i < n_images; ++i) {
    s.test_set.batch(i, i + 1, image, labels);
    Tensor probs = ref[0].forward(image);
    softmax_rows(probs);
    const long pred = argmax_row(probs, 0);
    serial[static_cast<std::size_t>(i)] = {static_cast<int>(pred),
                                           probs.at(0, pred)};
  }

  ReplicaPool pool(same_chip_fleet(planner, fault, plan, 3),
                   {/*max_batch=*/16, /*max_wait_us=*/500});
  // 4 producers submit disjoint quarters concurrently; every request must be
  // answered exactly once with the serial result.
  std::vector<std::future<std::vector<Prediction>>> futures(
      static_cast<std::size_t>(n_images));
  std::atomic<int> mismatched_shape{0};
  std::vector<std::thread> producers;
  for (int t = 0; t < 4; ++t) {
    producers.emplace_back([&, t] {
      Tensor img;
      std::vector<int> lbl;
      for (long i = t; i < n_images; i += 4) {
        s.test_set.batch(i, i + 1, img, lbl);
        const long c = img.shape(1), h = img.shape(2), w = img.shape(3);
        try {
          futures[static_cast<std::size_t>(i)] =
              pool.submit(img.reshaped({c, h, w}));
        } catch (const std::exception&) {
          ++mismatched_shape;
        }
      }
    });
  }
  for (auto& p : producers) p.join();
  EXPECT_EQ(mismatched_shape.load(), 0);

  long answered = 0;
  for (long i = 0; i < n_images; ++i) {
    auto preds = futures[static_cast<std::size_t>(i)].get();
    ASSERT_EQ(preds.size(), 1u);
    ++answered;
    EXPECT_EQ(preds[0].label, serial[static_cast<std::size_t>(i)].label)
        << "image " << i;
    EXPECT_EQ(preds[0].confidence,
              serial[static_cast<std::size_t>(i)].confidence)
        << "image " << i;
  }
  EXPECT_EQ(answered, n_images);

  pool.drain();
  const ServingStats stats = pool.stats();
  EXPECT_EQ(stats.requests, n_images);
  EXPECT_EQ(stats.images, n_images);
  long per_replica_total = 0;
  for (long b : stats.per_replica_images) per_replica_total += b;
  EXPECT_EQ(per_replica_total, n_images);
  EXPECT_GE(stats.p99_latency_us, stats.p50_latency_us);
  EXPECT_GE(stats.p999_latency_us, stats.p99_latency_us);
  EXPECT_GT(stats.p50_latency_us, 0.0);

  // Every served request also landed in a per-replica registry histogram.
  std::uint64_t hist_count = 0;
  const Json snap = obs::registry().to_json();
  for (const auto& [key, value] : snap.at("histograms").members()) {
    if (key.rfind("serve.request_latency_us{", 0) == 0) {
      hist_count += static_cast<std::uint64_t>(value.at("count").as_int());
    }
  }
  EXPECT_GE(hist_count, static_cast<std::uint64_t>(n_images));
}

TEST(ReplicaPool, PrebatchedTensorsReturnPerImagePredictions) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  SloConfig slo;
  slo.max_rerr = 1.0;
  RandomBitErrorModel fault({0.005});
  const OperatingPointPlan plan =
      planner.plan(fault, s.test_set, {1.0, 0.9}, slo, 1);

  std::vector<Replica> ref = same_chip_fleet(planner, fault, plan, 1);
  Tensor batch;
  std::vector<int> labels;
  s.test_set.batch(0, 10, batch, labels);
  Tensor probs = ref[0].forward(batch);
  softmax_rows(probs);

  ReplicaPool pool(same_chip_fleet(planner, fault, plan, 2), {32, 200});
  auto fut = pool.submit(batch);
  const auto preds = fut.get();
  ASSERT_EQ(preds.size(), 10u);
  for (long i = 0; i < 10; ++i) {
    const long pred = argmax_row(probs, i);
    EXPECT_EQ(preds[static_cast<std::size_t>(i)].label,
              static_cast<int>(pred));
    EXPECT_EQ(preds[static_cast<std::size_t>(i)].confidence,
              probs.at(i, pred));
  }
}

TEST(ReplicaPool, UnforwardableRequestFailsItsFutureNotTheProcess) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  SloConfig slo;
  slo.max_rerr = 1.0;
  RandomBitErrorModel fault({0.005});
  const OperatingPointPlan plan =
      planner.plan(fault, s.test_set, {1.0, 0.9}, slo, 1);
  ReplicaPool pool(same_chip_fleet(planner, fault, plan, 2), {8, 100});

  // First request: a shape the MLP cannot flatten-and-forward. The worker
  // must fail THIS future and keep serving.
  auto bad = pool.submit(Tensor({3, 5, 5}));
  EXPECT_THROW(bad.get(), std::exception);

  // The pool is still alive: a well-formed request... has a different image
  // shape than the first submission, so it is rejected at submit time; a
  // fresh pool serves it fine.
  EXPECT_THROW(pool.submit(Tensor({1, 12, 12})), std::invalid_argument);
  ReplicaPool pool2(same_chip_fleet(planner, fault, plan, 1), {8, 100});
  Tensor img;
  std::vector<int> lbl;
  s.test_set.batch(0, 1, img, lbl);
  auto ok = pool2.submit(img.reshaped({img.shape(1), img.shape(2),
                                       img.shape(3)}));
  EXPECT_EQ(ok.get().size(), 1u);
}

TEST(ReplicaPool, MonitorRunsOnWorkersAndHealsDegradedReplicas) {
  Served& s = Served::instance();
  const QuantScheme fragile = QuantScheme::normal(8);
  OperatingPointPlanner planner(*s.model, fragile);
  SloConfig slo;
  slo.max_rerr = 1.0;
  RandomBitErrorModel fault({0.25});
  const OperatingPointPlan plan =
      planner.plan(fault, s.test_set.head(40), {1.0, 0.9, 0.8, 0.75}, slo, 1);

  // Both replicas start DEGRADED at the bottom of the grid; every canary
  // check on a degraded replica must trip and step it up.
  std::vector<Replica> fleet = planner.deploy_fleet(fault, plan, 2);
  const std::size_t bottom = plan.grid.size() - 1;
  for (Replica& r : fleet) r.deploy(bottom);
  const float fragile_clean = test_error(*s.model, s.test_set, &fragile);
  HealthConfig hc;
  hc.max_err = fragile_clean + 0.1;
  hc.period_batches = 1;  // canary after every served batch
  HealthMonitor monitor(s.test_set.head(80), hc);

  ReplicaPool pool(std::move(fleet), {/*max_batch=*/8, /*max_wait_us=*/100},
                   &monitor);
  std::vector<std::future<std::vector<Prediction>>> futures;
  Tensor img;
  std::vector<int> lbl;
  for (long i = 0; i < 64; ++i) {
    s.test_set.batch(i, i + 1, img, lbl);
    futures.push_back(pool.submit(
        img.reshaped({img.shape(1), img.shape(2), img.shape(3)})));
  }
  for (auto& f : futures) f.get();
  pool.drain();

  // At least one worker served traffic, so at least one canary ran; every
  // trip stepped its (degraded) replica up the grid.
  ASSERT_GE(monitor.events().size(), 1u);
  EXPECT_GE(monitor.trips(), 1);
  for (const HealthEvent& ev : monitor.events()) {
    if (ev.tripped) EXPECT_GT(ev.voltage_after, ev.voltage_before);
  }
  bool any_stepped_up = false;
  for (std::size_t i = 0; i < pool.size(); ++i) {
    if (pool.replica(i).grid_index() < bottom) any_stepped_up = true;
  }
  EXPECT_TRUE(any_stepped_up);
}

// ---------------------------------------------------------- health monitor -

TEST(HealthMonitor, TripsOnDegradationAndRecoversBySteppingUp) {
  Served& s = Served::instance();
  // Serve under the FRAGILE baseline scheme so an aggressive voltage
  // genuinely degrades accuracy (Tab. 1: signed symmetric codes break).
  const QuantScheme fragile = QuantScheme::normal(8);
  OperatingPointPlanner planner(*s.model, fragile);
  SloConfig slo;
  slo.max_rerr = 1.0;
  RandomBitErrorModel fault({0.25});
  const OperatingPointPlan plan =
      planner.plan(fault, s.test_set.head(40), {1.0, 0.9, 0.8, 0.75}, slo, 1);
  std::vector<Replica> fleet = planner.deploy_fleet(fault, plan, 1);
  Replica& replica = fleet[0];
  replica.deploy(3);  // inject the degradation: p(0.75 Vmin) ~ 20%

  const float fragile_clean = test_error(*s.model, s.test_set, &fragile);
  HealthConfig hc;
  hc.max_err = fragile_clean + 0.1;
  hc.period_batches = 2;
  HealthMonitor monitor(s.test_set.head(80), hc);
  EXPECT_FALSE(monitor.due(1));
  EXPECT_TRUE(monitor.due(2));
  EXPECT_FALSE(monitor.due(3));

  // The degraded canary must trip and the monitor step the replica up until
  // it is back inside the band (guaranteed by Vmin at the top of the grid).
  HealthEvent ev = monitor.check(replica);
  EXPECT_TRUE(ev.tripped);
  EXPECT_TRUE(ev.stepped);
  EXPECT_GT(ev.voltage_after, ev.voltage_before);
  int guard = 0;
  while (monitor.check(replica).tripped && guard++ < 8) {
  }
  EXPECT_LE(replica.canary(s.test_set.head(80)).error, hc.max_err);
  EXPECT_GE(monitor.trips(), 1);
  const auto events = monitor.events();
  ASSERT_GE(events.size(), 2u);
  EXPECT_FALSE(events.back().tripped);
  // Voltage only ever moved up.
  for (std::size_t i = 1; i < events.size(); ++i) {
    EXPECT_GE(events[i].voltage_before, events[i - 1].voltage_before);
  }
}

}  // namespace
}  // namespace ber
