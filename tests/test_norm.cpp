// GroupNorm / BatchNorm tests: normalization statistics, the App. E
// reparameterization, running statistics and gradients.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/norm.h"
#include "test_util.h"

namespace ber {
namespace {

Tensor rand_input(std::vector<long> shape, std::uint64_t seed = 1,
                  float mean = 2.0f, float stddev = 3.0f) {
  Rng rng(seed);
  Tensor t = Tensor::randn(std::move(shape), rng, stddev);
  for (long i = 0; i < t.numel(); ++i) t[i] += mean;
  return t;
}

TEST(GroupNormTest, NormalizesPerGroup) {
  GroupNorm gn(2, 4);
  Tensor x = rand_input({2, 4, 3, 3});
  Tensor y = gn.forward(x, false);
  // With alpha' = 0, beta = 0 each (n, group) slab must be ~N(0, 1).
  const long spatial = 9, cpg = 2;
  for (long n = 0; n < 2; ++n) {
    for (long g = 0; g < 2; ++g) {
      double sum = 0.0, sq = 0.0;
      for (long cc = 0; cc < cpg; ++cc) {
        for (long s = 0; s < spatial; ++s) {
          const float v = y.data()[((n * 4 + g * cpg + cc) * spatial) + s];
          sum += v;
          sq += static_cast<double>(v) * v;
        }
      }
      const double m = sum / (cpg * spatial);
      const double var = sq / (cpg * spatial) - m * m;
      EXPECT_NEAR(m, 0.0, 1e-4);
      EXPECT_NEAR(var, 1.0, 1e-3);
    }
  }
}

TEST(GroupNormTest, ReparameterizedScale) {
  GroupNorm gn(1, 2);
  // alpha' = 0.5 means effective gamma = 1.5.
  gn.params()[0]->value.fill(0.5f);
  gn.params()[1]->value.fill(0.25f);
  Tensor x = rand_input({1, 2, 4, 4});
  Tensor y = gn.forward(x, false);
  // Mean of output should be beta (normalized input has zero mean), and
  // variance gamma^2.
  double sum = 0.0, sq = 0.0;
  for (long i = 0; i < y.numel(); ++i) {
    sum += y[i];
    sq += static_cast<double>(y[i]) * y[i];
  }
  const double m = sum / y.numel();
  EXPECT_NEAR(m, 0.25, 1e-3);
  EXPECT_NEAR(sq / y.numel() - m * m, 1.5 * 1.5, 2e-2);
}

TEST(GroupNormTest, RejectsBadGrouping) {
  EXPECT_THROW(GroupNorm(3, 4), std::invalid_argument);
}

TEST(GroupNormTest, Gradcheck) {
  GroupNorm gn(2, 4);
  Rng rng(5);
  for (Param* p : gn.params()) {
    for (long i = 0; i < p->value.numel(); ++i) p->value[i] = rng.normal() * 0.3f;
  }
  test::gradcheck_layer(gn, rand_input({2, 4, 3, 3}, 7), /*tol=*/3e-2);
}

TEST(BatchNormTest, TrainForwardNormalizes) {
  BatchNorm2d bn(3);
  Tensor x = rand_input({4, 3, 4, 4});
  Tensor y = bn.forward(x, true);
  const long spatial = 16;
  for (long ch = 0; ch < 3; ++ch) {
    double sum = 0.0, sq = 0.0;
    for (long n = 0; n < 4; ++n) {
      const float* plane = y.data() + (n * 3 + ch) * spatial;
      for (long s = 0; s < spatial; ++s) {
        sum += plane[s];
        sq += static_cast<double>(plane[s]) * plane[s];
      }
    }
    const double m = sum / (4 * spatial);
    EXPECT_NEAR(m, 0.0, 1e-4);
    EXPECT_NEAR(sq / (4 * spatial) - m * m, 1.0, 1e-3);
  }
}

TEST(BatchNormTest, RunningStatsConverge) {
  BatchNorm2d bn(1);
  // Feed the same distribution repeatedly: running stats approach it.
  for (int it = 0; it < 200; ++it) {
    Tensor x = rand_input({8, 1, 4, 4}, 100 + it, /*mean=*/5.0f, /*stddev=*/2.0f);
    bn.forward(x, true);
  }
  EXPECT_NEAR((*bn.buffers()[0])[0], 5.0f, 0.3f);
  EXPECT_NEAR((*bn.buffers()[1])[0], 4.0f, 0.8f);
}

TEST(BatchNormTest, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  for (int it = 0; it < 100; ++it) {
    bn.forward(rand_input({8, 1, 4, 4}, it, 5.0f, 2.0f), true);
  }
  // Evaluate on data with a DIFFERENT distribution; with running stats the
  // output won't be normalized, proving they were used.
  Tensor x = rand_input({8, 1, 4, 4}, 999, /*mean=*/0.0f, /*stddev=*/1.0f);
  Tensor y = bn.forward(x, false);
  EXPECT_LT(y.mean(), -1.0);  // (0 - 5)/2 = -2.5 ish

  bn.set_use_batch_stats_in_eval(true);
  Tensor y2 = bn.forward(x, false);
  EXPECT_NEAR(y2.mean(), 0.0, 1e-3);  // batch stats re-normalize
}

TEST(BatchNormTest, Gradcheck) {
  BatchNorm2d bn(2);
  Rng rng(6);
  for (Param* p : bn.params()) {
    for (long i = 0; i < p->value.numel(); ++i) p->value[i] = rng.normal() * 0.3f;
  }
  // NOTE: gradcheck re-runs forward in eval mode for the finite differences;
  // set batch-stats-in-eval so both passes use the same statistics.
  bn.set_use_batch_stats_in_eval(true);
  test::gradcheck_layer(bn, rand_input({3, 2, 3, 3}, 8), /*tol=*/3e-2);
}

TEST(BatchNormTest, BuffersExposedForSerialization) {
  BatchNorm2d bn(4);
  EXPECT_EQ(bn.buffers().size(), 2u);
  GroupNorm gn(2, 4);
  EXPECT_TRUE(gn.buffers().empty());
}

}  // namespace
}  // namespace ber
