// Tests for core utilities: RNG, stateless hash, parallel_for, serialization
// and the table printer.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <numeric>
#include <set>

#include "core/env.h"
#include "core/hash.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "core/serialize.h"
#include "core/table.h"

namespace ber {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.next_u64() == b.next_u64();
  EXPECT_LE(same, 1);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000, 0.5, 0.01);
}

TEST(Rng, UniformRange) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    ASSERT_GE(u, -3.0);
    ASSERT_LT(u, 5.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(9);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(-2, 2);
    ASSERT_GE(v, -2);
    ASSERT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, NormalMoments) {
  Rng rng(10);
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, BernoulliRate) {
  Rng rng(11);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += rng.bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.015);
}

TEST(Hash, Deterministic) {
  EXPECT_EQ(hash_mix(1, 2, 3), hash_mix(1, 2, 3));
  EXPECT_EQ(hash_uniform(5, 6, 7), hash_uniform(5, 6, 7));
}

TEST(Hash, ArgumentOrderMatters) {
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(3, 2, 1));
  EXPECT_NE(hash_mix(1, 2, 3), hash_mix(2, 1, 3));
}

TEST(Hash, AvalancheOnSingleBitFlip) {
  // Flipping one input bit should flip roughly half the output bits.
  double total = 0.0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t base = hash_mix(42, static_cast<std::uint64_t>(t), 7);
    const std::uint64_t flipped =
        hash_mix(42, static_cast<std::uint64_t>(t) ^ (1ULL << (t % 63)), 7);
    total += __builtin_popcountll(base ^ flipped);
  }
  EXPECT_NEAR(total / trials, 32.0, 4.0);
}

TEST(Hash, UniformBuckets) {
  // Chi-square-ish check: 10 buckets over 50k draws.
  int buckets[10] = {};
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    buckets[static_cast<int>(hash_uniform(3, i, i * 31 + 1) * 10)]++;
  }
  for (int b = 0; b < 10; ++b) {
    EXPECT_NEAR(buckets[b], n / 10, n / 10 * 0.1) << "bucket " << b;
  }
}

TEST(Hash, SecondStreamDecorrelated) {
  // The two uniform streams over the same coordinates should not correlate.
  double dot = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    dot += (hash_uniform(1, i, 0) - 0.5) * (hash_uniform2(1, i, 0) - 0.5);
  }
  EXPECT_NEAR(dot / n, 0.0, 0.005);
}

TEST(Parallel, CoversAllIndices) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(1000, 4, [&](std::int64_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, SingleThreadFallback) {
  long sum = 0;
  parallel_for(100, 1, [&](std::int64_t i) { sum += i; });
  EXPECT_EQ(sum, 4950);
}

TEST(Parallel, EmptyRange) {
  bool called = false;
  parallel_for(0, 4, [&](std::int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, MoreThreadsThanWork) {
  std::vector<std::atomic<int>> hits(3);
  parallel_for(3, 16, [&](std::int64_t i) { hits[i]++; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Serialize, RoundTrip) {
  const std::string path = testing::TempDir() + "/ber_serialize_test.bin";
  {
    BinaryWriter w(path);
    w.write_pod<std::uint32_t>(0xDEADBEEF);
    w.write_pod<double>(3.25);
    w.write_string("hello world");
    w.write_vector(std::vector<float>{1.0f, -2.0f, 3.5f});
    w.write_vector(std::vector<long>{7, 8});
    ASSERT_TRUE(w.good());
  }
  BinaryReader r(path);
  EXPECT_EQ(r.read_pod<std::uint32_t>(), 0xDEADBEEFu);
  EXPECT_EQ(r.read_pod<double>(), 3.25);
  EXPECT_EQ(r.read_string(), "hello world");
  const auto v = r.read_vector<float>();
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], -2.0f);
  const auto lv = r.read_vector<long>();
  EXPECT_EQ(lv[0], 7);
  std::remove(path.c_str());
}

TEST(Serialize, TruncatedFileThrows) {
  const std::string path = testing::TempDir() + "/ber_truncated.bin";
  {
    BinaryWriter w(path);
    w.write_pod<std::uint8_t>(1);
  }
  BinaryReader r(path);
  r.read_pod<std::uint8_t>();
  EXPECT_THROW(r.read_pod<std::uint64_t>(), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Serialize, MissingFileThrows) {
  EXPECT_THROW(BinaryReader("/nonexistent/path/file.bin"), std::runtime_error);
}

TEST(Table, RendersHeadersAndRows) {
  TablePrinter t({"Model", "Err", "RErr"});
  t.add_row({"Normal", "4.36", "24.76"});
  t.add_separator();
  t.add_row({"RQuant", "4.32", "11.28"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("Model"), std::string::npos);
  EXPECT_NE(s.find("RQuant"), std::string::npos);
  EXPECT_NE(s.find("24.76"), std::string::npos);
}

TEST(Table, FormatHelpers) {
  EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::fmt_pm(5.5, 0.25, 2), "5.50 ±0.25");
}

TEST(Env, ArtifactsDirNonEmpty) { EXPECT_FALSE(artifacts_dir().empty()); }

TEST(Env, EnsureDirAndFileExists) {
  const std::string dir = testing::TempDir() + "/ber_env_test/sub";
  ensure_dir(dir);
  EXPECT_FALSE(file_exists(dir));  // directory, not file
  const std::string f = dir + "/x.txt";
  {
    BinaryWriter w(f);
    w.write_pod<int>(1);
  }
  EXPECT_TRUE(file_exists(f));
}

}  // namespace
}  // namespace ber
