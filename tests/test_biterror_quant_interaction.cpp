// Interaction of bit errors with quantization schemes — the error-magnitude
// structure behind Fig. 4 and the robustness ordering of Tab. 1, pinned as
// analytic invariants rather than end-to-end training results.
#include <gtest/gtest.h>

#include <cmath>

#include "biterror/injector.h"
#include "core/rng.h"
#include "quant/quantizer.h"

namespace ber {
namespace {

struct SchemeBits {
  QuantScheme scheme;
  const char* label;
};

class BitQuantInteraction
    : public ::testing::TestWithParam<std::tuple<SchemeBits, int>> {
 protected:
  QuantScheme scheme() const {
    QuantScheme s = std::get<0>(GetParam()).scheme;
    s.bits = std::get<1>(GetParam());
    return s;
  }
};

// Flipping bit j changes the decoded value by at most 2^j * step — the
// geometric error ladder that makes MSB flips the catastrophic ones.
TEST_P(BitQuantInteraction, BitPositionErrorLadder) {
  const QuantScheme s = scheme();
  Rng rng(11);
  std::vector<float> w(256);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.7, 0.7));
  const QuantizedTensor qt = quantize(w, s);
  const float range = qt.range.qmax - qt.range.qmin;
  const float step = s.asymmetric ? quant_delta(s, qt.range) * range * 0.5f
                                  : quant_delta(s, qt.range);
  for (std::size_t i = 0; i < w.size(); i += 16) {
    const float base = decode_code(qt.codes[i], s, qt.range);
    for (int j = 0; j < s.bits; ++j) {
      const float flipped = decode_code(
          static_cast<std::uint16_t>(qt.codes[i] ^ (1u << j)), s, qt.range);
      const float magnitude = std::abs(flipped - base);
      // Exactly 2^j steps for unsigned codes and for non-sign bits of signed
      // codes; the signed sign bit wraps by 2^bits - 2^(bits-1) steps which
      // is also 2^(bits-1). Allow float slack.
      EXPECT_NEAR(magnitude, step * static_cast<float>(1u << j),
                  step * 0.01f + 1e-6f)
          << std::get<0>(GetParam()).label << " bit " << j;
    }
  }
}

// The maximum possible single-flip damage equals half the representable
// range (MSB), i.e. bit errors can never throw a weight further than the
// quantization range itself — the containment that makes per-layer ranges
// (Tab. 1) so much safer than one global range.
TEST_P(BitQuantInteraction, SingleFlipDamageBounded) {
  const QuantScheme s = scheme();
  Rng rng(12);
  std::vector<float> w(512);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const QuantizedTensor qt = quantize(w, s);
  const float range = qt.range.qmax - qt.range.qmin;
  for (std::size_t i = 0; i < w.size(); i += 8) {
    const float base = decode_code(qt.codes[i], s, qt.range);
    for (int j = 0; j < s.bits; ++j) {
      const float flipped = decode_code(
          static_cast<std::uint16_t>(qt.codes[i] ^ (1u << j)), s, qt.range);
      EXPECT_LE(std::abs(flipped - base), range * 1.02f + 1e-5f);
    }
  }
}

// Under BErr_p, the MEAN absolute weight error grows linearly in p (each
// bit flips independently), which is what makes RErr manageable at small p.
TEST_P(BitQuantInteraction, MeanAbsErrorLinearInP) {
  const QuantScheme s = scheme();
  Rng rng(13);
  std::vector<float> w(20000);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  NetSnapshot base;
  base.tensors.push_back(quantize(w, s));
  base.offsets.push_back(0);

  auto mean_abs_error = [&](double p) {
    NetSnapshot pert = base;
    BitErrorConfig cfg;
    cfg.p = p;
    inject_random_bit_errors(pert, cfg, /*chip=*/3);
    std::vector<float> wc(w.size()), wp(w.size());
    dequantize(base.tensors[0], wc);
    dequantize(pert.tensors[0], wp);
    double acc = 0.0;
    for (std::size_t i = 0; i < w.size(); ++i) acc += std::abs(wp[i] - wc[i]);
    return acc / w.size();
  };
  const double e1 = mean_abs_error(0.002);
  const double e4 = mean_abs_error(0.008);
  ASSERT_GT(e1, 0.0);
  EXPECT_NEAR(e4 / e1, 4.0, 1.2) << std::get<0>(GetParam()).label;
}

// Shrinking the weight range (what clipping does) shrinks the ABSOLUTE bit
// error damage proportionally, while the RELATIVE damage stays put — the
// paper's Sec. 4.2 scale argument, in one assertion.
TEST_P(BitQuantInteraction, RangeShrinkScalesAbsoluteNotRelativeError) {
  const QuantScheme s = scheme();
  Rng rng(14);
  std::vector<float> wide(4000), narrow(4000);
  for (std::size_t i = 0; i < wide.size(); ++i) {
    wide[i] = static_cast<float>(rng.uniform(-0.5, 0.5));
    narrow[i] = wide[i] * 0.2f;  // "clipped" copy
  }
  auto damage = [&](std::vector<float>& values) {
    NetSnapshot snap;
    snap.tensors.push_back(quantize(values, s));
    snap.offsets.push_back(0);
    NetSnapshot pert = snap;
    BitErrorConfig cfg;
    cfg.p = 0.01;
    inject_random_bit_errors(pert, cfg, 5);
    std::vector<float> wc(values.size()), wp(values.size());
    dequantize(snap.tensors[0], wc);
    dequantize(pert.tensors[0], wp);
    double abs_err = 0.0;
    for (std::size_t i = 0; i < values.size(); ++i) {
      abs_err += std::abs(wp[i] - wc[i]);
    }
    const double range = snap.tensors[0].range.qmax - snap.tensors[0].range.qmin;
    return std::pair<double, double>{abs_err / values.size(),
                                     abs_err / values.size() / range};
  };
  const auto [abs_wide, rel_wide] = damage(wide);
  const auto [abs_narrow, rel_narrow] = damage(narrow);
  EXPECT_NEAR(abs_narrow / abs_wide, 0.2, 0.05);  // absolute shrinks 5x
  EXPECT_NEAR(rel_narrow / rel_wide, 1.0, 0.15);  // relative unchanged
}

INSTANTIATE_TEST_SUITE_P(
    Schemes, BitQuantInteraction,
    ::testing::Combine(
        ::testing::Values(
            SchemeBits{QuantScheme::symmetric_rounded(), "sym-signed"},
            SchemeBits{QuantScheme::rquant(), "rquant"}),
        ::testing::Values(4, 8, 12)));

// The global-vs-per-tensor containment (Tab. 1 row 1 vs 2) at the pure
// weight level: with one global range, a small tensor's weights suffer MSB
// errors sized by the LARGEST tensor's range.
TEST(BitQuantGlobal, GlobalRangeAmplifiesSmallTensorErrors) {
  Rng rng(15);
  std::vector<float> small(1000), large(1000);
  for (auto& v : small) v = static_cast<float>(rng.uniform(-0.05, 0.05));
  for (auto& v : large) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const QuantScheme per = QuantScheme::symmetric_rounded(8);
  // Global range must cover the large tensor.
  const QuantRange global{-1.0f, 1.0f};

  // MSB flip damage on the small tensor under each policy.
  auto msb_damage = [&](const QuantRange& range) {
    const QuantizedTensor qt = quantize(small, per, range);
    double acc = 0.0;
    for (std::size_t i = 0; i < small.size(); ++i) {
      const float base = decode_code(qt.codes[i], per, range);
      const float flipped = decode_code(
          static_cast<std::uint16_t>(qt.codes[i] ^ (1u << 7)), per, range);
      acc += std::abs(flipped - base);
    }
    return acc / small.size();
  };
  const double damage_per_tensor = msb_damage(compute_range(small, per));
  const double damage_global = msb_damage(global);
  EXPECT_GT(damage_global, 10.0 * damage_per_tensor);
}

}  // namespace
}  // namespace ber
