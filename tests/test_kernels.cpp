// Tests for the src/kernels/ compute-backend subsystem: registry + env
// selection, scratch arena reuse, blocked-vs-reference GEMM parity on
// odd/edge shapes, threaded-GEMM determinism, batch-coalesced convolution
// parity (forward and backward), per-model backend preferences, and the
// inference-mode backward-cache release.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "ber.h"
#include "test_util.h"

namespace {

using namespace ber;
using kernels::Backend;
using kernels::BlockedBackend;

// Normwise relative error: max |got - want| over the magnitude of the
// expected result (floored at 1). The standard GEMM-verification metric —
// per-element ratios are meaningless where random-walk cancellation leaves
// a near-zero expected value.
float max_rel_err(const Tensor& got, const Tensor& want) {
  EXPECT_EQ(got.numel(), want.numel());
  float worst = 0.0f;
  for (long i = 0; i < got.numel(); ++i) {
    worst = std::max(worst, std::abs(got[i] - want[i]));
  }
  return worst / std::max(1.0f, want.abs_max());
}

// ----------------------------------------------------------- registry ---

// Restores BER_BACKEND and the latched process default on destruction, so
// tests that poke the registry don't leak state — in particular the CI leg
// that runs this whole suite under BER_BACKEND=blocked must still see the
// blocked default in later tests.
struct DefaultBackendRestore {
  std::string env;
  bool had_env;
  DefaultBackendRestore() {
    const char* e = std::getenv("BER_BACKEND");
    had_env = e != nullptr;
    if (e) env = e;
  }
  ~DefaultBackendRestore() {
    if (had_env) {
      setenv("BER_BACKEND", env.c_str(), 1);
    } else {
      unsetenv("BER_BACKEND");
    }
    kernels::detail::refresh_default_from_env();
  }
};

TEST(BackendRegistry, BuiltinsRegistered) {
  const auto names = kernels::backend_names();
  EXPECT_NE(std::find(names.begin(), names.end(), "reference"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "blocked"), names.end());
  EXPECT_EQ(kernels::backend("reference").name(), "reference");
  EXPECT_EQ(kernels::backend("blocked").name(), "blocked");
  EXPECT_TRUE(kernels::backend("blocked").coalesced_conv());
  EXPECT_FALSE(kernels::backend("reference").coalesced_conv());
}

TEST(BackendRegistry, UnknownNameThrows) {
  EXPECT_THROW(kernels::backend("turbo"), std::invalid_argument);
  EXPECT_THROW(kernels::set_default_backend("turbo"), std::invalid_argument);
}

TEST(BackendRegistry, DefaultAndScopedOverride) {
  const DefaultBackendRestore restore;
  kernels::set_default_backend("reference");
  EXPECT_EQ(kernels::current_backend().name(), "reference");
  {
    kernels::ScopedBackend outer("blocked");
    EXPECT_EQ(kernels::current_backend().name(), "blocked");
    {
      kernels::ScopedBackend inner("reference");
      EXPECT_EQ(kernels::current_backend().name(), "reference");
    }
    EXPECT_EQ(kernels::current_backend().name(), "blocked");
  }
  EXPECT_EQ(kernels::current_backend().name(), "reference");
}

TEST(BackendRegistry, EnvOverrideSelectsAndValidates) {
  const DefaultBackendRestore restore;
  ASSERT_EQ(setenv("BER_BACKEND", "blocked", 1), 0);
  kernels::detail::refresh_default_from_env();
  EXPECT_EQ(kernels::default_backend().name(), "blocked");

  ASSERT_EQ(setenv("BER_BACKEND", "no-such-backend", 1), 0);
  EXPECT_THROW(kernels::detail::refresh_default_from_env(),
               std::invalid_argument);

  ASSERT_EQ(unsetenv("BER_BACKEND"), 0);
  kernels::detail::refresh_default_from_env();
  EXPECT_EQ(kernels::default_backend().name(), "reference");
}

// -------------------------------------------------------------- arena ---

TEST(Arena, ScopeRewindsAndPointersStayValid) {
  kernels::Arena arena;
  float* outer = arena.alloc(100);
  outer[0] = 1.0f;
  {
    kernels::ArenaScope scope(arena);
    float* inner = arena.alloc(50);
    // Force growth while `outer` and `inner` are live.
    float* big = arena.alloc(100000);
    inner[0] = 2.0f;
    big[0] = 3.0f;
    EXPECT_EQ(outer[0], 1.0f);  // untouched by growth
    EXPECT_GE(arena.used(), std::size_t{100150});
  }
  EXPECT_EQ(arena.used(), std::size_t{100});  // rewound to the watermark
  EXPECT_EQ(outer[0], 1.0f);
}

TEST(Arena, CapacityConvergesAcrossDifferentlyShapedCalls) {
  kernels::Arena arena;
  const std::vector<std::size_t> shapes{1000, 5000, 3000, 1000, 5000};
  for (std::size_t n : shapes) {
    kernels::ArenaScope scope(arena);
    arena.alloc(n);
  }
  const std::size_t cap = arena.capacity();
  const std::size_t chunks = arena.chunk_count();
  for (int round = 0; round < 3; ++round) {
    for (std::size_t n : shapes) {
      kernels::ArenaScope scope(arena);
      float* p = arena.alloc(n);
      p[n - 1] = 1.0f;
    }
  }
  EXPECT_EQ(arena.capacity(), cap) << "arena kept growing on repeat calls";
  EXPECT_EQ(arena.chunk_count(), chunks);
}

TEST(Arena, ConvForwardReusesArenaAcrossShapes) {
  kernels::ScopedBackend guard("blocked");
  Rng rng(3);
  Conv2d conv(4, 6, 3, 1, 1);
  for (Param* p : conv.params()) {
    for (long i = 0; i < p->value.numel(); ++i) p->value[i] = rng.normal();
  }
  Tensor a = Tensor::randn({2, 4, 10, 10}, rng);
  Tensor b = Tensor::randn({5, 4, 7, 7}, rng);
  // Warm up both shapes, then the arena must stop growing.
  conv.forward(a, false);
  conv.forward(b, false);
  conv.forward(a, false);
  conv.forward(b, false);
  const std::size_t cap = kernels::tls_arena().capacity();
  for (int i = 0; i < 4; ++i) {
    conv.forward(a, false);
    conv.forward(b, false);
  }
  EXPECT_EQ(kernels::tls_arena().capacity(), cap);
}

// -------------------------------------------------------- GEMM parity ---

struct GemmShape {
  long m, n, k;
};

const std::vector<GemmShape>& parity_shapes() {
  // Deliberately not multiples of the register tile (mr x nr), plus
  // degenerate and tile-straddling edges.
  static const std::vector<GemmShape> shapes{
      {1, 1, 1},   {1, 7, 3},    {5, 1, 9},    {3, 5, 7},
      {17, 19, 23}, {31, 33, 1},  {64, 64, 64}, {65, 31, 129},
      {129, 63, 40}, {7, 300, 5}, {130, 70, 260}};
  return shapes;
}

TEST(BlockedGemm, ParityWithReferenceAcrossShapesAndBetas) {
  const Backend& ref = kernels::backend("reference");
  const BlockedBackend blocked(1);
  Rng rng(11);
  for (const auto& s : parity_shapes()) {
    for (float beta : {0.0f, 1.0f, 0.5f}) {
      Tensor a = Tensor::randn({s.m, s.k}, rng);
      Tensor b = Tensor::randn({s.k, s.n}, rng);
      Tensor c0 = Tensor::randn({s.m, s.n}, rng);
      Tensor c1 = c0;
      ref.gemm(s.m, s.n, s.k, 1.3f, a.data(), b.data(), beta, c0.data());
      blocked.gemm(s.m, s.n, s.k, 1.3f, a.data(), b.data(), beta, c1.data());
      EXPECT_LT(max_rel_err(c1, c0), 1e-4f)
          << "gemm " << s.m << "x" << s.n << "x" << s.k << " beta=" << beta;
    }
  }
}

TEST(BlockedGemm, ParityTransposedVariants) {
  const Backend& ref = kernels::backend("reference");
  const BlockedBackend blocked(1);
  Rng rng(12);
  for (const auto& s : parity_shapes()) {
    Tensor at = Tensor::randn({s.k, s.m}, rng);  // A stored [k,m]
    Tensor bt = Tensor::randn({s.n, s.k}, rng);  // B stored [n,k]
    Tensor a = Tensor::randn({s.m, s.k}, rng);
    Tensor b = Tensor::randn({s.k, s.n}, rng);
    Tensor c0 = Tensor::randn({s.m, s.n}, rng);
    Tensor c1 = c0;
    ref.gemm_at(s.m, s.n, s.k, 1.0f, at.data(), b.data(), 1.0f, c0.data());
    blocked.gemm_at(s.m, s.n, s.k, 1.0f, at.data(), b.data(), 1.0f, c1.data());
    EXPECT_LT(max_rel_err(c1, c0), 1e-4f)
        << "gemm_at " << s.m << "x" << s.n << "x" << s.k;

    c0 = Tensor::randn({s.m, s.n}, rng);
    c1 = c0;
    ref.gemm_bt(s.m, s.n, s.k, 1.0f, a.data(), bt.data(), 0.0f, c0.data());
    blocked.gemm_bt(s.m, s.n, s.k, 1.0f, a.data(), bt.data(), 0.0f, c1.data());
    EXPECT_LT(max_rel_err(c1, c0), 1e-4f)
        << "gemm_bt " << s.m << "x" << s.n << "x" << s.k;
  }
}

TEST(BlockedGemm, ThreadedShardingIsBitIdentical) {
  // The row-sharded path must be bit-identical to single-threaded blocked
  // for any shard count: each C element's k-summation order is fixed.
  Rng rng(13);
  const long m = 150, n = 130, k = 530;  // k spans three KC blocks
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c1({m, n}), c4({m, n}), c3({m, n});
  BlockedBackend(1).gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c1.data());
  BlockedBackend(4).gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c4.data());
  BlockedBackend(3).gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c3.data());
  for (long i = 0; i < c1.numel(); ++i) {
    ASSERT_EQ(c1[i], c4[i]) << "shard-count-dependent result at " << i;
    ASSERT_EQ(c1[i], c3[i]) << "shard-count-dependent result at " << i;
  }
}

TEST(BlockedGemm, WorkerMarkerKeepsAutoShardingSerial) {
  // parallel_for worker threads are marked so the blocked backend's auto
  // thread mode ("blocked" in the registry, threads=0) stays serial inside
  // evaluator/serving workers instead of oversubscribing T^2.
  EXPECT_FALSE(in_parallel_worker());
  bool flags[2] = {false, false};
  parallel_for(2, 2, [&](std::int64_t i) { flags[i] = in_parallel_worker(); });
  EXPECT_TRUE(flags[0]);
  EXPECT_TRUE(flags[1]);
  EXPECT_FALSE(in_parallel_worker());
  {
    const ParallelWorkerScope mark;
    EXPECT_TRUE(in_parallel_worker());
  }
  EXPECT_FALSE(in_parallel_worker());
}

TEST(BlockedGemm, RepeatedCallsAreDeterministic) {
  Rng rng(14);
  const long m = 65, n = 33, k = 129;
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c0({m, n}), c1({m, n});
  const BlockedBackend blocked(1);
  blocked.gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c0.data());
  blocked.gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c1.data());
  for (long i = 0; i < c0.numel(); ++i) ASSERT_EQ(c0[i], c1[i]);
}

// -------------------------------------------------------- conv parity ---

struct ConvCase {
  long n, in_c, h, w, out_c, kernel, stride, pad;
  bool bias;
};

const std::vector<ConvCase>& conv_cases() {
  static const std::vector<ConvCase> cases{
      {1, 3, 12, 12, 8, 3, 1, 1, true},
      {8, 16, 12, 12, 32, 3, 1, 1, true},
      {4, 2, 9, 7, 5, 3, 2, 1, true},   // stride 2, non-square input
      {3, 4, 8, 8, 6, 2, 2, 0, false},  // even kernel, no pad, no bias
      {2, 1, 5, 5, 3, 5, 1, 2, true},   // kernel as big as the image
  };
  return cases;
}

Conv2d make_conv(const ConvCase& c, Rng& rng) {
  Conv2d conv(c.in_c, c.out_c, c.kernel, c.stride, c.pad, c.bias);
  for (Param* p : conv.params()) {
    for (long i = 0; i < p->value.numel(); ++i) {
      p->value[i] = rng.normal() * 0.2f;
    }
  }
  return conv;
}

TEST(CoalescedConv, ForwardMatchesPerImage) {
  Rng rng(21);
  for (const auto& c : conv_cases()) {
    Conv2d conv = make_conv(c, rng);
    Tensor x = Tensor::randn({c.n, c.in_c, c.h, c.w}, rng);
    Tensor y_ref, y_blk;
    {
      kernels::ScopedBackend g("reference");
      y_ref = conv.forward(x, false);
    }
    {
      kernels::ScopedBackend g("blocked");
      y_blk = conv.forward(x, false);
    }
    ASSERT_EQ(y_blk.shape(), y_ref.shape());
    EXPECT_LT(max_rel_err(y_blk, y_ref), 1e-4f)
        << "conv N=" << c.n << " stride=" << c.stride << " pad=" << c.pad;
  }
}

TEST(CoalescedConv, BackwardMatchesPerImage) {
  Rng rng(22);
  for (const auto& c : conv_cases()) {
    Conv2d conv_ref = make_conv(c, rng);
    Conv2d conv_blk = conv_ref;  // identical weights
    Tensor x = Tensor::randn({c.n, c.in_c, c.h, c.w}, rng);

    Tensor gin_ref, gin_blk;
    {
      kernels::ScopedBackend g("reference");
      Tensor y = conv_ref.forward(x, true);
      Tensor go = Tensor::uniform(y.shape(), rng, -1.0f, 1.0f);
      gin_ref = conv_ref.backward(go);
      kernels::ScopedBackend g2("blocked");
      Tensor y2 = conv_blk.forward(x, true);
      gin_blk = conv_blk.backward(go);
      ASSERT_EQ(y2.shape(), y.shape());
    }
    EXPECT_LT(max_rel_err(gin_blk, gin_ref), 1e-4f) << "grad_in";
    const auto ps_ref = conv_ref.params();
    const auto ps_blk = conv_blk.params();
    for (std::size_t i = 0; i < ps_ref.size(); ++i) {
      EXPECT_LT(max_rel_err(ps_blk[i]->grad, ps_ref[i]->grad), 1e-4f)
          << "grad of " << ps_ref[i]->name;
    }
  }
}

// 1x1 / stride-1 / no-pad convolutions elide im2col in inference mode (a
// plain GEMM on the input). The GEMM consumes exactly the bytes the lowered
// path would copy, so inference output must be BIT-identical to the
// training-mode forward (which still lowers to fill the backward cache),
// under both backends.
TEST(PointwiseConv, ElisionIsBitExactWithLoweredPath) {
  Rng rng(27);
  for (const long batch : {1L, 5L}) {
    Conv2d conv(6, 9, /*kernel=*/1, /*stride=*/1, /*pad=*/0);
    for (Param* p : conv.params()) {
      for (long i = 0; i < p->value.numel(); ++i) {
        p->value[i] = rng.normal() * 0.2f;
      }
    }
    Tensor x = Tensor::randn({batch, 6, 7, 7}, rng);
    for (const char* backend : {"reference", "blocked"}) {
      kernels::ScopedBackend g(backend);
      Tensor lowered = conv.forward(x, /*training=*/true);
      Tensor elided = conv.forward(x, /*training=*/false);
      ASSERT_EQ(elided.shape(), lowered.shape());
      for (long i = 0; i < elided.numel(); ++i) {
        ASSERT_EQ(elided[i], lowered[i])
            << backend << " batch=" << batch << " i=" << i;
      }
    }
  }
}

// Strided / padded / k>1 convs must NOT take the pointwise shortcut.
TEST(PointwiseConv, NonPointwiseShapesKeepLoweredSemantics) {
  Rng rng(28);
  Conv2d conv(3, 4, /*kernel=*/1, /*stride=*/2, /*pad=*/0);
  for (Param* p : conv.params()) {
    for (long i = 0; i < p->value.numel(); ++i) {
      p->value[i] = rng.normal() * 0.2f;
    }
  }
  Tensor x = Tensor::randn({2, 3, 8, 8}, rng);
  Tensor y_ref, y_blk;
  {
    kernels::ScopedBackend g("reference");
    y_ref = conv.forward(x, false);
  }
  {
    kernels::ScopedBackend g("blocked");
    y_blk = conv.forward(x, false);
  }
  ASSERT_EQ(y_ref.shape(), (std::vector<long>{2, 4, 4, 4}));
  EXPECT_LT(max_rel_err(y_blk, y_ref), 1e-4f);
}

TEST(CoalescedConv, GradcheckUnderBlockedBackend) {
  kernels::ScopedBackend guard("blocked");
  Rng rng(23);
  Conv2d conv(2, 3, 3, 1, 1);
  for (Param* p : conv.params()) {
    for (long i = 0; i < p->value.numel(); ++i) {
      p->value[i] = rng.normal() * 0.3f;
    }
  }
  Tensor x = Tensor::randn({2, 2, 6, 6}, rng);
  test::gradcheck_layer(conv, x);
}

// ------------------------------------------- model-level integration ---

TEST(BackendIntegration, SequentialPreferenceWinsAndSurvivesClone) {
  Rng rng(31);
  ModelConfig mc;
  auto model = build_model(mc);
  he_init(*model, rng);
  Tensor x = Tensor::randn({4, mc.in_channels, mc.image_size, mc.image_size},
                           rng);

  Tensor y_scoped;
  {
    kernels::ScopedBackend g("blocked");
    y_scoped = model->forward(x, false);
  }
  model->set_backend("blocked");
  Tensor y_pref = model->forward(x, false);  // process default is reference
  for (long i = 0; i < y_pref.numel(); ++i) {
    ASSERT_EQ(y_pref[i], y_scoped[i]) << "preference != scoped override";
  }

  Sequential clone(*model);
  EXPECT_EQ(clone.backend(), "blocked");
  Tensor y_clone = clone.forward(x, false);
  for (long i = 0; i < y_clone.numel(); ++i) ASSERT_EQ(y_clone[i], y_pref[i]);

  EXPECT_THROW(model->set_backend("no-such-backend"), std::invalid_argument);
  model->set_backend("");  // back to inherit
  EXPECT_TRUE(model->backend().empty());
}

TEST(BackendIntegration, EvaluatorMatchesAcrossBackendsWithinTolerance) {
  Rng rng(32);
  ModelConfig mc;
  auto model = build_model(mc);
  he_init(*model, rng);
  SyntheticConfig dc = SyntheticConfig::cifar10();
  dc.n_test = 64;
  const Dataset data = make_synthetic(dc, /*train=*/false);
  BitErrorConfig cfg;
  cfg.p = 0.005;
  const RandomBitErrorModel fault(cfg, /*seed_base=*/7);

  RobustResult r_ref, r_blk;
  {
    kernels::ScopedBackend g("reference");
    RobustnessEvaluator ev(*model, QuantScheme::rquant(8));
    r_ref = ev.run(fault, data, /*n_trials=*/3);
  }
  {
    // The evaluator must propagate the caller's scoped choice onto its
    // worker threads.
    kernels::ScopedBackend g("blocked");
    RobustnessEvaluator ev(*model, QuantScheme::rquant(8));
    r_blk = ev.run(fault, data, /*n_trials=*/3);
  }
  // Error rates are means over >= 64 images; kernel reassociation moves
  // logits by ~1e-6, which only flips predictions on razor-thin argmax
  // ties. Allow one image of slack per trial.
  EXPECT_NEAR(r_blk.mean_rerr, r_ref.mean_rerr, 1.0f / 64.0f + 1e-6f);
}

// ------------------------------------------------ inference caches ---

TEST(InferenceCaches, ConvAndLinearReleaseBackwardCaches) {
  Rng rng(41);
  Conv2d conv(3, 8, 3, 1, 1);
  Linear linear(12, 5);
  Tensor x = Tensor::randn({6, 3, 8, 8}, rng);
  Tensor xl = Tensor::randn({6, 12}, rng);

  conv.forward(x, true);
  linear.forward(xl, true);
  EXPECT_GT(conv.cached_bytes(), 0);
  EXPECT_GT(linear.cached_bytes(), 0);

  // Cloning a just-trained layer copies the caches — the serving/eval
  // scenario from the issue: the first inference forward must drop them.
  Conv2d conv_clone = conv;
  EXPECT_GT(conv_clone.cached_bytes(), 0);
  conv_clone.forward(x, false);
  EXPECT_EQ(conv_clone.cached_bytes(), 0);

  conv.forward(x, false);
  linear.forward(xl, false);
  EXPECT_EQ(conv.cached_bytes(), 0);
  EXPECT_EQ(linear.cached_bytes(), 0);
}

}  // namespace
