// Fixed-point quantization semantics (Sec. 4.1 / App. D of the paper):
// encode/decode, sign-bit behaviour under the different schemes, rounding vs
// truncation, per-tensor vs global ranges.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "quant/quantizer.h"
#include "tensor/tensor.h"

namespace ber {
namespace {

TEST(QuantScheme, Presets) {
  const QuantScheme n = QuantScheme::normal(8);
  EXPECT_FALSE(n.asymmetric);
  EXPECT_FALSE(n.unsigned_codes);
  EXPECT_FALSE(n.rounded);
  EXPECT_EQ(n.scope, RangeScope::kPerTensor);

  const QuantScheme r = QuantScheme::rquant(8);
  EXPECT_TRUE(r.asymmetric);
  EXPECT_TRUE(r.unsigned_codes);
  EXPECT_TRUE(r.rounded);

  EXPECT_EQ(QuantScheme::global_symmetric(8).scope, RangeScope::kGlobal);
  EXPECT_FALSE(QuantScheme::rquant_trunc(8).rounded);
}

TEST(QuantScheme, StrIsInformative) {
  EXPECT_EQ(QuantScheme::rquant(4).str(), "m4,per-tensor,asym,unsigned,round");
  EXPECT_EQ(QuantScheme::normal(8).str(), "m8,per-tensor,sym,signed,trunc");
}

TEST(Quant, RangeComputation) {
  const std::vector<float> w{-0.3f, 0.1f, 0.2f};
  const QuantRange sym = compute_range(w, QuantScheme::normal(8));
  EXPECT_FLOAT_EQ(sym.qmax, 0.3f);
  EXPECT_FLOAT_EQ(sym.qmin, -0.3f);
  const QuantRange asym = compute_range(w, QuantScheme::rquant(8));
  EXPECT_FLOAT_EQ(asym.qmin, -0.3f);
  EXPECT_FLOAT_EQ(asym.qmax, 0.2f);
}

TEST(Quant, DegenerateRangeGuarded) {
  const std::vector<float> w{0.0f, 0.0f};
  const QuantRange r = compute_range(w, QuantScheme::normal(8));
  EXPECT_GT(r.qmax, 0.0f);
  const QuantRange ra = compute_range(w, QuantScheme::rquant(8));
  EXPECT_GT(ra.qmax, ra.qmin);
}

TEST(Quant, BadBitsThrow) {
  const std::vector<float> w{0.1f};
  EXPECT_THROW(compute_range(w, QuantScheme{1}), std::invalid_argument);
  EXPECT_THROW(compute_range(w, QuantScheme{17}), std::invalid_argument);
}

TEST(Quant, SymmetricSignedZeroIsExact) {
  const QuantScheme s = QuantScheme::symmetric_rounded(8);
  const QuantRange r{-1.0f, 1.0f};
  EXPECT_EQ(decode_code(encode_value(0.0f, s, r), s, r), 0.0f);
}

TEST(Quant, DeltaFormula) {
  // Eq. (1): delta = qmax / (2^(m-1) - 1).
  const QuantRange r{-0.5f, 0.5f};
  EXPECT_FLOAT_EQ(quant_delta(QuantScheme::normal(8), r), 0.5f / 127.0f);
  EXPECT_FLOAT_EQ(quant_delta(QuantScheme::normal(4), r), 0.5f / 7.0f);
  // Asymmetric schemes quantize the normalized [-1, 1] domain.
  EXPECT_FLOAT_EQ(quant_delta(QuantScheme::rquant(8), r), 1.0f / 127.0f);
}

TEST(Quant, SignBitFlipSymmetricSignedIsCatastrophic) {
  // Paper Sec. 3/4.1: flipping the MSB of a signed two's complement code
  // changes the value by about half the quantization range (qmax).
  const QuantScheme s = QuantScheme::symmetric_rounded(8);
  const QuantRange r{-1.0f, 1.0f};
  const float w = 0.25f;
  std::uint16_t code = encode_value(w, s, r);
  code ^= 1u << 7;  // MSB of the 8-bit word
  const float w_flipped = decode_code(code, s, r);
  EXPECT_NEAR(std::abs(w_flipped - w), 1.0f, 0.02f);  // ~qmax
}

TEST(Quant, LsbFlipIsOneDelta) {
  const QuantScheme s = QuantScheme::symmetric_rounded(8);
  const QuantRange r{-1.0f, 1.0f};
  const float w = 0.25f;
  std::uint16_t code = encode_value(w, s, r);
  const float base = decode_code(code, s, r);
  const float flipped = decode_code(code ^ 1u, s, r);
  EXPECT_NEAR(std::abs(flipped - base), quant_delta(s, r), 1e-6f);
}

TEST(Quant, UnsignedMsbFlipIsMonotone) {
  // For unsigned codes the MSB flip moves the value by ~half range but the
  // direction is consistent with the bit value (0->1 always increases the
  // code, hence the decoded value) — the paper's robustness argument for
  // RQUANT's unsigned representation.
  const QuantScheme s = QuantScheme::rquant(8);
  const QuantRange r{0.1f, 0.9f};  // qmin > 0, like the paper's App. G.2 case
  for (float w : {0.15f, 0.4f, 0.52f}) {
    const std::uint16_t code = encode_value(w, s, r);
    if ((code & (1u << 7)) == 0) {
      const float up = decode_code(code | (1u << 7), s, r);
      EXPECT_GT(up, decode_code(code, s, r));
    }
  }
}

TEST(Quant, SignedAsymmetricSignBitIsNotMeaningful) {
  // App. G.2: with signed codes and an asymmetric range, a sign-bit flip
  // produces a value change unrelated to the weight's sign — here we just
  // pin that it jumps by about the full normalized range.
  QuantScheme s = QuantScheme::rquant(8);
  s.unsigned_codes = false;  // asymmetric + signed (the bad combination)
  const QuantRange r{0.1f, 0.9f};
  const float w = 0.7f;
  const std::uint16_t code = encode_value(w, s, r);
  const float flipped = decode_code(code ^ (1u << 7), s, r);
  EXPECT_GT(std::abs(flipped - w), 0.3f);
}

TEST(Quant, RoundBeatsTruncOnApproximationError) {
  Rng rng(5);
  QuantScheme trunc = QuantScheme::rquant_trunc(4);
  QuantScheme round = QuantScheme::rquant(4);
  double err_trunc = 0.0, err_round = 0.0;
  std::vector<float> w(2000);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.5, 0.5));
  const QuantizedTensor qt = quantize(w, trunc);
  const QuantizedTensor qr = quantize(w, round);
  std::vector<float> dt(w.size()), dr(w.size());
  dequantize(qt, dt);
  dequantize(qr, dr);
  for (std::size_t i = 0; i < w.size(); ++i) {
    err_trunc += std::abs(dt[i] - w[i]);
    err_round += std::abs(dr[i] - w[i]);
  }
  EXPECT_LT(err_round, err_trunc * 0.75);
}

TEST(Quant, ClampAtRangeBoundaries) {
  const QuantScheme s = QuantScheme::symmetric_rounded(8);
  const QuantRange r{-0.5f, 0.5f};
  // Out-of-range values clamp to the extremes.
  EXPECT_NEAR(decode_code(encode_value(10.0f, s, r), s, r), 0.5f, 1e-6f);
  EXPECT_NEAR(decode_code(encode_value(-10.0f, s, r), s, r), -0.5f, 1e-6f);
}

TEST(Quant, UnsignedCodesStayInValidWindow) {
  Rng rng(6);
  const QuantScheme s = QuantScheme::rquant(8);
  std::vector<float> w(512);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  const QuantizedTensor qt = quantize(w, s);
  for (const std::uint16_t c : qt.codes) {
    EXPECT_LE(c, (1u << 8) - 2);  // Eq. (4): max code 2^m - 2
  }
}

TEST(Quant, SignedCodesUseTwosComplementWindow) {
  const QuantScheme s = QuantScheme::symmetric_rounded(4);
  const QuantRange r{-1.0f, 1.0f};
  // -1 maps to level -7 = 0b1001 in 4-bit two's complement.
  EXPECT_EQ(encode_value(-1.0f, s, r), 0b1001u);
  EXPECT_EQ(encode_value(1.0f, s, r), 0b0111u);
}

TEST(Quant, DequantizeSizeMismatchThrows) {
  const std::vector<float> w{0.1f, 0.2f};
  QuantizedTensor qt = quantize(w, QuantScheme::rquant(8));
  std::vector<float> out(3);
  EXPECT_THROW(dequantize(qt, out), std::invalid_argument);
}

TEST(Quant, MidRiseValueRoundTripsThroughAllBits) {
  // Walk every 8-bit unsigned code and verify decode(encode(decode(c)))
  // is the identity — quantization is idempotent on its own grid.
  const QuantScheme s = QuantScheme::rquant(8);
  const QuantRange r{-0.37f, 0.81f};
  for (std::uint32_t c = 0; c <= 254; ++c) {
    const float w = decode_code(static_cast<std::uint16_t>(c), s, r);
    EXPECT_EQ(encode_value(w, s, r), c);
  }
}

}  // namespace
}  // namespace ber
