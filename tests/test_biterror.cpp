// Random bit error model tests: rate concentration, the Sec. 3 persistence
// (subset) property, chip independence and fault-type semantics.
#include <gtest/gtest.h>

#include <cmath>

#include "biterror/injector.h"
#include "core/rng.h"
#include "quant/quantizer.h"

namespace ber {
namespace {

NetSnapshot make_snapshot(std::size_t n_weights, int bits,
                          std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<float> w(n_weights);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  NetSnapshot snap;
  snap.tensors.push_back(quantize(w, QuantScheme::rquant(bits)));
  snap.offsets.push_back(0);
  return snap;
}

long count_flipped_bits(const NetSnapshot& a, const NetSnapshot& b, int bits) {
  long flips = 0;
  for (std::size_t t = 0; t < a.tensors.size(); ++t) {
    for (std::size_t i = 0; i < a.tensors[t].codes.size(); ++i) {
      const std::uint16_t diff =
          (a.tensors[t].codes[i] ^ b.tensors[t].codes[i]) &
          static_cast<std::uint16_t>((1u << bits) - 1u);
      flips += __builtin_popcount(diff);
    }
  }
  return flips;
}

TEST(BitError, ExpectedCountFormula) {
  // Tab. 6: p. m. W, e.g. CIFAR10 with p=1%, m=8, W=5,498,378 -> 439,870.
  EXPECT_NEAR(expected_bit_errors(0.01, 8, 5498378), 439870.2, 0.5);
  EXPECT_NEAR(expected_bit_errors(0.005, 8, 5498378), 219935.1, 0.5);
}

TEST(BitError, EmpiricalRateMatchesP) {
  const int bits = 8;
  const std::size_t n = 40000;
  NetSnapshot clean = make_snapshot(n, bits);
  for (double p : {0.001, 0.01, 0.05}) {
    NetSnapshot pert = clean;
    BitErrorConfig cfg;
    cfg.p = p;
    inject_random_bit_errors(pert, cfg, /*chip=*/7);
    const long flips = count_flipped_bits(clean, pert, bits);
    const double rate = static_cast<double>(flips) / (n * bits);
    EXPECT_NEAR(rate, p, 4.0 * std::sqrt(p / (n * bits)) + 1e-4) << "p=" << p;
  }
}

TEST(BitError, ZeroRateIsNoOp) {
  NetSnapshot clean = make_snapshot(1000, 8);
  NetSnapshot pert = clean;
  BitErrorConfig cfg;
  cfg.p = 0.0;
  EXPECT_EQ(inject_random_bit_errors(pert, cfg, 3), 0u);
  EXPECT_EQ(count_flipped_bits(clean, pert, 8), 0);
}

TEST(BitError, InvalidRateThrows) {
  NetSnapshot snap = make_snapshot(10, 8);
  BitErrorConfig cfg;
  cfg.p = 1.5;
  EXPECT_THROW(inject_random_bit_errors(snap, cfg, 1), std::invalid_argument);
}

TEST(BitError, PersistenceSubsetProperty) {
  // Sec. 3: for a fixed chip, errors at p' <= p are a subset of errors at p.
  const int bits = 8;
  NetSnapshot clean = make_snapshot(20000, bits);
  const std::uint64_t chip = 42;

  NetSnapshot low = clean, high = clean;
  BitErrorConfig cl, ch;
  cl.p = 0.005;
  ch.p = 0.02;
  inject_random_bit_errors(low, cl, chip);
  inject_random_bit_errors(high, ch, chip);

  // Every bit flipped at low p must also be flipped at high p.
  for (std::size_t i = 0; i < clean.tensors[0].codes.size(); ++i) {
    const std::uint16_t dl = clean.tensors[0].codes[i] ^ low.tensors[0].codes[i];
    const std::uint16_t dh = clean.tensors[0].codes[i] ^ high.tensors[0].codes[i];
    EXPECT_EQ(dl & dh, dl) << "bit errors at low p not a subset at index " << i;
  }
}

TEST(BitError, ChipsAreIndependent) {
  const int bits = 8;
  NetSnapshot clean = make_snapshot(20000, bits);
  NetSnapshot a = clean, b = clean;
  BitErrorConfig cfg;
  cfg.p = 0.01;
  inject_random_bit_errors(a, cfg, 1);
  inject_random_bit_errors(b, cfg, 2);
  // Overlap between the two flip sets should be ~p^2 per bit, i.e. tiny.
  long overlap = 0, total_a = 0;
  for (std::size_t i = 0; i < clean.tensors[0].codes.size(); ++i) {
    const std::uint16_t da = clean.tensors[0].codes[i] ^ a.tensors[0].codes[i];
    const std::uint16_t db = clean.tensors[0].codes[i] ^ b.tensors[0].codes[i];
    overlap += __builtin_popcount(da & db);
    total_a += __builtin_popcount(da);
  }
  EXPECT_GT(total_a, 0);
  EXPECT_LT(static_cast<double>(overlap) / total_a, 0.05);
}

TEST(BitError, Deterministic) {
  NetSnapshot a = make_snapshot(5000, 8);
  NetSnapshot b = a;
  BitErrorConfig cfg;
  cfg.p = 0.01;
  inject_random_bit_errors(a, cfg, 99);
  inject_random_bit_errors(b, cfg, 99);
  EXPECT_EQ(a.tensors[0].codes, b.tensors[0].codes);
}

TEST(BitError, FlipTwiceRestores) {
  // Pure flip faults are involutions: applying the same chip twice undoes.
  NetSnapshot clean = make_snapshot(5000, 8);
  NetSnapshot pert = clean;
  BitErrorConfig cfg;
  cfg.p = 0.02;
  inject_random_bit_errors(pert, cfg, 5);
  EXPECT_NE(clean.tensors[0].codes, pert.tensors[0].codes);
  inject_random_bit_errors(pert, cfg, 5);
  EXPECT_EQ(clean.tensors[0].codes, pert.tensors[0].codes);
}

TEST(BitError, ApplyFaultSemantics) {
  EXPECT_EQ(apply_fault(0b0000, 2, FaultType::kFlip), 0b0100);
  EXPECT_EQ(apply_fault(0b0100, 2, FaultType::kFlip), 0b0000);
  EXPECT_EQ(apply_fault(0b0000, 2, FaultType::kSet1), 0b0100);
  EXPECT_EQ(apply_fault(0b0100, 2, FaultType::kSet1), 0b0100);
  EXPECT_EQ(apply_fault(0b0100, 2, FaultType::kSet0), 0b0000);
  EXPECT_EQ(apply_fault(0b0000, 2, FaultType::kSet0), 0b0000);
}

TEST(BitError, Set1BiasOnlyRaisesBits) {
  // With 100% SET1 faults, codes can only gain bits.
  NetSnapshot clean = make_snapshot(20000, 8);
  NetSnapshot pert = clean;
  BitErrorConfig cfg;
  cfg.p = 0.02;
  cfg.flip_fraction = 0.0;
  cfg.set1_fraction = 1.0;
  inject_random_bit_errors(pert, cfg, 11);
  long raised = 0, lowered = 0;
  for (std::size_t i = 0; i < clean.tensors[0].codes.size(); ++i) {
    const std::uint16_t c0 = clean.tensors[0].codes[i];
    const std::uint16_t c1 = pert.tensors[0].codes[i];
    raised += __builtin_popcount(c1 & ~c0);
    lowered += __builtin_popcount(c0 & ~c1);
  }
  EXPECT_GT(raised, 0);
  EXPECT_EQ(lowered, 0);
}

TEST(BitError, BiasedPresetMixesTypes) {
  const BitErrorConfig cfg = BitErrorConfig::biased_set1(0.01);
  EXPECT_NEAR(cfg.flip_fraction + cfg.set1_fraction + cfg.set0_fraction, 1.0,
              1e-9);
  // Sample fault types over many cells; SET1 must dominate.
  long counts[3] = {};
  for (int i = 0; i < 10000; ++i) {
    counts[static_cast<int>(fault_type_at(cfg, 1, i, 0))]++;
  }
  EXPECT_GT(counts[1], counts[0]);  // SET1 > FLIP
  EXPECT_GT(counts[1], counts[2]);  // SET1 > SET0
}

TEST(BitError, MultiTensorOffsetsDecorrelate) {
  // Two tensors in a snapshot get disjoint weight-index ranges, so their
  // error patterns differ even with identical values.
  Rng rng(4);
  std::vector<float> w(4000);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  NetSnapshot snap;
  snap.tensors.push_back(quantize(w, QuantScheme::rquant(8)));
  snap.offsets.push_back(0);
  snap.tensors.push_back(quantize(w, QuantScheme::rquant(8)));
  snap.offsets.push_back(4000);
  NetSnapshot pert = snap;
  BitErrorConfig cfg;
  cfg.p = 0.01;
  inject_random_bit_errors(pert, cfg, 21);
  const auto diff0 = [&](std::size_t i) {
    return snap.tensors[0].codes[i] ^ pert.tensors[0].codes[i];
  };
  const auto diff1 = [&](std::size_t i) {
    return snap.tensors[1].codes[i] ^ pert.tensors[1].codes[i];
  };
  bool patterns_differ = false;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (diff0(i) != diff1(i)) patterns_differ = true;
  }
  EXPECT_TRUE(patterns_differ);
}

TEST(BitError, ChangedCountMatchesDiff) {
  NetSnapshot clean = make_snapshot(10000, 8);
  NetSnapshot pert = clean;
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const std::size_t changed = inject_random_bit_errors(pert, cfg, 9);
  std::size_t diff = 0;
  for (std::size_t i = 0; i < clean.tensors[0].codes.size(); ++i) {
    if (clean.tensors[0].codes[i] != pert.tensors[0].codes[i]) ++diff;
  }
  EXPECT_EQ(changed, diff);
}

}  // namespace
}  // namespace ber
