// Trainer tests: convergence, clipping projection, RANDBET gating and
// variants, PATTBET determinism, post-training (non-QAT) path.
#include <gtest/gtest.h>

#include "data/shapes.h"
#include "models/factory.h"
#include "train/trainer.h"

namespace ber {
namespace {

// Tiny task fixture shared across trainer tests: small dataset, small MLP,
// few epochs — fast but enough signal for loss to drop well below chance.
struct Tiny {
  SyntheticConfig data_cfg;
  Dataset train_set, test_set;
  ModelConfig model_cfg;

  Tiny() {
    data_cfg = SyntheticConfig::mnist();
    data_cfg.n_train = 300;
    data_cfg.n_test = 150;
    train_set = make_synthetic(data_cfg, true);
    test_set = make_synthetic(data_cfg, false);
    model_cfg.arch = Arch::kMlp;
    model_cfg.in_channels = 1;
    model_cfg.width = 8;
  }

  TrainConfig base_train() const {
    TrainConfig tc;
    tc.epochs = 18;
    tc.batch_size = 50;
    tc.sgd.lr = 0.1f;  // small MLP converges faster with a higher base lr
    tc.augment.max_shift = 1;
    tc.augment.cutout = 0;
    tc.augment.noise_std = 0.0f;
    return tc;
  }
};

TEST(Trainer, LossDecreases) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  const TrainStats stats = train(*model, t.train_set, t.test_set, t.base_train());
  ASSERT_EQ(stats.epoch_loss.size(), 18u);
  EXPECT_LT(stats.epoch_loss.back(), 0.6f * stats.epoch_loss.front());
  EXPECT_LT(stats.final_test_err, 0.5f);  // well below 90% chance error
}

TEST(Trainer, DeterministicForSeed) {
  Tiny t;
  auto m1 = build_model(t.model_cfg);
  auto m2 = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.epochs = 3;
  const TrainStats s1 = train(*m1, t.train_set, t.test_set, tc);
  const TrainStats s2 = train(*m2, t.train_set, t.test_set, tc);
  EXPECT_EQ(s1.epoch_loss, s2.epoch_loss);
  EXPECT_EQ(s1.final_test_err, s2.final_test_err);
}

TEST(Trainer, SeedChangesTrajectory) {
  Tiny t;
  auto m1 = build_model(t.model_cfg);
  auto m2 = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.epochs = 2;
  const TrainStats s1 = train(*m1, t.train_set, t.test_set, tc);
  tc.seed = 77;
  const TrainStats s2 = train(*m2, t.train_set, t.test_set, tc);
  EXPECT_NE(s1.epoch_loss, s2.epoch_loss);
}

TEST(Trainer, ClippingProjectionHolds) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.method = Method::kClipping;
  tc.wmax = 0.1f;
  train(*model, t.train_set, t.test_set, tc);
  for (Param* p : model->params()) {
    EXPECT_LE(p->value.abs_max(), 0.1f + 1e-6f) << p->name;
  }
}

TEST(Trainer, ClipWeightsHelper) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  for (Param* p : model->params()) p->value.fill(5.0f);
  clip_weights(model->params(), 0.25f);
  for (Param* p : model->params()) EXPECT_EQ(p->value.abs_max(), 0.25f);
  // wmax <= 0 is a no-op.
  for (Param* p : model->params()) p->value.fill(5.0f);
  clip_weights(model->params(), 0.0f);
  for (Param* p : model->params()) EXPECT_EQ(p->value.abs_max(), 5.0f);
}

TEST(Trainer, RandBETActivatesAfterLossGate) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.method = Method::kRandBET;
  tc.wmax = 0.3f;
  tc.p_train = 0.005;
  tc.bit_error_loss_threshold = 99.0f;  // open gate: activates after epoch 1
  const TrainStats stats = train(*model, t.train_set, t.test_set, tc);
  EXPECT_EQ(stats.bit_error_start_epoch, 1);
  EXPECT_LT(stats.final_test_err, 0.6f);
}

TEST(Trainer, RandBETGateCanStayClosed) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.epochs = 1;
  tc.method = Method::kRandBET;
  tc.p_train = 0.01;
  tc.bit_error_loss_threshold = 0.0f;  // never reached
  const TrainStats stats = train(*model, t.train_set, t.test_set, tc);
  EXPECT_EQ(stats.bit_error_start_epoch, -1);
}

TEST(Trainer, PattBETIsDeterministicInPattern) {
  Tiny t;
  TrainConfig tc = t.base_train();
  tc.method = Method::kPattBET;
  tc.p_train = 0.02;
  tc.wmax = 0.3f;
  tc.bit_error_loss_threshold = 99.0f;
  tc.epochs = 6;
  auto m1 = build_model(t.model_cfg);
  auto m2 = build_model(t.model_cfg);
  const TrainStats s1 = train(*m1, t.train_set, t.test_set, tc);
  tc.pattern_seed = 4242;  // different fixed pattern
  const TrainStats s2 = train(*m2, t.train_set, t.test_set, tc);
  // Different fixed patterns change the trajectory once injection starts.
  EXPECT_NE(s1.epoch_loss, s2.epoch_loss);
}

TEST(Trainer, FaultListReuseIsBitIdentical) {
  // The RandBET inner loop builds each epoch's ChipFaultList once and
  // reapplies it per batch; the reference path re-hashes the same chip with
  // the scalar injector every batch. Persistence makes them byte-identical,
  // so the training trajectories must match bit for bit.
  Tiny t;
  TrainConfig tc = t.base_train();
  tc.method = Method::kRandBET;
  tc.wmax = 0.3f;
  tc.p_train = 0.02;
  tc.bit_error_loss_threshold = 99.0f;  // inject from epoch 1
  tc.epochs = 5;
  auto fast = build_model(t.model_cfg);
  auto reference = build_model(t.model_cfg);
  tc.reuse_fault_lists = true;
  const TrainStats s_fast = train(*fast, t.train_set, t.test_set, tc);
  tc.reuse_fault_lists = false;
  const TrainStats s_ref = train(*reference, t.train_set, t.test_set, tc);
  EXPECT_EQ(s_fast.epoch_loss, s_ref.epoch_loss);
  EXPECT_EQ(s_fast.epoch_train_err, s_ref.epoch_train_err);
  EXPECT_EQ(s_fast.final_test_err, s_ref.final_test_err);
  const auto pf = fast->params();
  const auto pr = reference->params();
  ASSERT_EQ(pf.size(), pr.size());
  for (std::size_t i = 0; i < pf.size(); ++i) {
    for (long j = 0; j < pf[i]->value.numel(); ++j) {
      ASSERT_EQ(pf[i]->value[j], pr[i]->value[j])
          << pf[i]->name << "[" << j << "]";
    }
  }
}

TEST(Trainer, FaultListReuseIsBitIdenticalCurricular) {
  // Same assertion through the curricular ramp (p varies per epoch but the
  // list is built once at p_train and filtered down by persistence).
  Tiny t;
  TrainConfig tc = t.base_train();
  tc.method = Method::kRandBET;
  tc.curricular = true;
  tc.wmax = 0.3f;
  tc.p_train = 0.02;
  tc.bit_error_loss_threshold = 99.0f;
  tc.epochs = 5;
  auto fast = build_model(t.model_cfg);
  auto reference = build_model(t.model_cfg);
  tc.reuse_fault_lists = true;
  const TrainStats s_fast = train(*fast, t.train_set, t.test_set, tc);
  tc.reuse_fault_lists = false;
  const TrainStats s_ref = train(*reference, t.train_set, t.test_set, tc);
  EXPECT_EQ(s_fast.epoch_loss, s_ref.epoch_loss);
  EXPECT_EQ(s_fast.final_test_err, s_ref.final_test_err);
}

TEST(Trainer, NonQuantAwarePath) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.quant_aware = false;
  const TrainStats stats = train(*model, t.train_set, t.test_set, tc);
  EXPECT_LT(stats.final_test_err, 0.5f);
}

TEST(Trainer, LabelSmoothingTrains) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.label_smoothing = 0.1f;
  const TrainStats stats = train(*model, t.train_set, t.test_set, tc);
  // Smoothed loss floor: -0.9 log 0.9 - 0.1 log(0.1/9) ~ 0.55.
  EXPECT_GT(stats.epoch_loss.back(), 0.3f);
  EXPECT_LT(stats.final_test_err, 0.5f);
}

TEST(Trainer, CurricularVariantRuns) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.method = Method::kRandBET;
  tc.curricular = true;
  tc.wmax = 0.3f;
  tc.p_train = 0.01;
  const TrainStats stats = train(*model, t.train_set, t.test_set, tc);
  EXPECT_LT(stats.final_test_err, 0.6f);
}

TEST(Trainer, AlternatingVariantRespectsClip) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.method = Method::kRandBET;
  tc.alternating = true;
  tc.wmax = 0.3f;
  tc.p_train = 0.01;
  tc.bit_error_loss_threshold = 99.0f;
  train(*model, t.train_set, t.test_set, tc);
  for (Param* p : model->params()) {
    EXPECT_LE(p->value.abs_max(), 0.3f + 1e-6f);
  }
}

TEST(Trainer, LowPrecisionQuantAwareTrains) {
  Tiny t;
  auto model = build_model(t.model_cfg);
  TrainConfig tc = t.base_train();
  tc.quant = QuantScheme::rquant(4);
  tc.method = Method::kClipping;
  tc.wmax = 0.3f;
  const TrainStats stats = train(*model, t.train_set, t.test_set, tc);
  EXPECT_LT(stats.final_test_err, 0.5f);
}

}  // namespace
}  // namespace ber
