// Synthetic dataset tests: determinism, split disjointness, balance,
// rendering distinctness and augmentation invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>

#include "core/rng.h"
#include "data/augment.h"
#include "data/shapes.h"

namespace ber {
namespace {

TEST(Data, PresetsDifferInDifficultyKnobs) {
  const auto c10 = SyntheticConfig::cifar10();
  const auto mnist = SyntheticConfig::mnist();
  const auto c100 = SyntheticConfig::cifar100();
  EXPECT_EQ(mnist.channels, 1);
  EXPECT_EQ(c10.channels, 3);
  EXPECT_LT(mnist.noise_std, c10.noise_std);
  EXPECT_LT(c10.noise_std, c100.noise_std);
  EXPECT_EQ(c100.num_classes, 20);
}

TEST(Data, GenerationIsDeterministic) {
  const auto cfg = SyntheticConfig::cifar10();
  const Dataset a = make_synthetic(cfg, true);
  const Dataset b = make_synthetic(cfg, true);
  ASSERT_EQ(a.images.numel(), b.images.numel());
  EXPECT_EQ(0, std::memcmp(a.images.data(), b.images.data(),
                           sizeof(float) * a.images.numel()));
  EXPECT_EQ(a.labels, b.labels);
}

TEST(Data, TrainTestSplitsDiffer) {
  auto cfg = SyntheticConfig::cifar10();
  cfg.n_train = cfg.n_test = 100;
  const Dataset train = make_synthetic(cfg, true);
  const Dataset test = make_synthetic(cfg, false);
  // Same labels (balanced cycling) but different pixels.
  EXPECT_EQ(train.labels, test.labels);
  EXPECT_NE(0, std::memcmp(train.images.data(), test.images.data(),
                           sizeof(float) * train.images.numel()));
}

TEST(Data, ClassBalance) {
  auto cfg = SyntheticConfig::cifar10();
  cfg.n_train = 1000;
  const Dataset d = make_synthetic(cfg, true);
  std::vector<int> counts(10, 0);
  for (int y : d.labels) counts[static_cast<std::size_t>(y)]++;
  for (int c : counts) EXPECT_EQ(c, 100);
}

TEST(Data, PixelsInUnitRange) {
  auto cfg = SyntheticConfig::cifar100();
  cfg.n_train = 200;
  const Dataset d = make_synthetic(cfg, true);
  EXPECT_GE(d.images.min(), 0.0f);
  EXPECT_LE(d.images.max(), 1.0f);
}

TEST(Data, ShapesAreVisuallyDistinct) {
  // Noise-free renders of different classes must differ substantially;
  // repeated renders of the same class with the same seed are identical.
  auto cfg = SyntheticConfig::cifar10();
  cfg.noise_std = 0.0;
  cfg.jitter = 0;
  cfg.scale_lo = cfg.scale_hi = 1.0;
  const long n = 3L * 12 * 12;
  std::vector<float> a(n), b(n), a2(n);
  for (int c1 = 0; c1 < 10; ++c1) {
    render_shape(c1, 10, cfg, /*sample_seed=*/5, a.data());
    render_shape(c1, 10, cfg, /*sample_seed=*/5, a2.data());
    EXPECT_EQ(0, std::memcmp(a.data(), a2.data(), sizeof(float) * n));
    for (int c2 = c1 + 1; c2 < 10; ++c2) {
      // Same sample seed -> same colors/placement, only the shape differs.
      render_shape(c2, 10, cfg, /*sample_seed=*/5, b.data());
      double diff = 0.0;
      for (long i = 0; i < n; ++i) diff += std::abs(a[i] - b[i]);
      EXPECT_GT(diff / n, 0.005) << "classes " << c1 << " vs " << c2;
    }
  }
}

TEST(Data, AllTwentyClassesRender) {
  auto cfg = SyntheticConfig::cifar100();
  std::vector<float> img(3L * 12 * 12);
  for (int c = 0; c < 20; ++c) {
    ASSERT_NO_THROW(render_shape(c, 20, cfg, 1, img.data()));
  }
  EXPECT_THROW(render_shape(20, 20, cfg, 1, img.data()), std::invalid_argument);
  EXPECT_THROW(render_shape(-1, 20, cfg, 1, img.data()), std::invalid_argument);
}

TEST(Data, BatchExtraction) {
  auto cfg = SyntheticConfig::mnist();
  cfg.n_train = 50;
  const Dataset d = make_synthetic(cfg, true);
  Tensor images;
  std::vector<int> labels;
  d.batch(10, 20, images, labels);
  EXPECT_EQ(images.shape(0), 10);
  EXPECT_EQ(labels.size(), 10u);
  EXPECT_EQ(labels[0], d.labels[10]);
  // Pixel content matches the source rows.
  const long stride = d.channels() * d.height() * d.width();
  EXPECT_EQ(0, std::memcmp(images.data(), d.images.data() + 10 * stride,
                           sizeof(float) * 10 * stride));
}

TEST(Data, HeadSubset) {
  auto cfg = SyntheticConfig::mnist();
  cfg.n_train = 30;
  const Dataset d = make_synthetic(cfg, true);
  const Dataset h = d.head(12);
  EXPECT_EQ(h.size(), 12);
  EXPECT_EQ(h.num_classes, d.num_classes);
  const Dataset all = d.head(100);
  EXPECT_EQ(all.size(), 30);
}

TEST(Augment, PreservesShapeAndRange) {
  auto cfg = SyntheticConfig::cifar10();
  cfg.n_train = 20;
  Dataset d = make_synthetic(cfg, true);
  Tensor batch = d.images;
  Rng rng(3);
  AugmentConfig ac;
  augment_batch(batch, ac, rng);
  EXPECT_EQ(batch.shape(), d.images.shape());
  EXPECT_GE(batch.min(), 0.0f);
  EXPECT_LE(batch.max(), 1.0f);
}

TEST(Augment, ChangesPixels) {
  auto cfg = SyntheticConfig::cifar10();
  cfg.n_train = 20;
  Dataset d = make_synthetic(cfg, true);
  Tensor batch = d.images;
  Rng rng(4);
  AugmentConfig ac;
  augment_batch(batch, ac, rng);
  EXPECT_NE(0, std::memcmp(batch.data(), d.images.data(),
                           sizeof(float) * batch.numel()));
}

TEST(Augment, DisabledIsIdentity) {
  auto cfg = SyntheticConfig::cifar10();
  cfg.n_train = 10;
  Dataset d = make_synthetic(cfg, true);
  Tensor batch = d.images;
  Rng rng(5);
  AugmentConfig ac;
  ac.max_shift = 0;
  ac.cutout = 0;
  ac.noise_std = 0.0f;
  augment_batch(batch, ac, rng);
  EXPECT_EQ(0, std::memcmp(batch.data(), d.images.data(),
                           sizeof(float) * batch.numel()));
}

TEST(Augment, CutoutWritesFillValue) {
  Tensor batch = Tensor::zeros({1, 1, 8, 8});
  Rng rng(6);
  AugmentConfig ac;
  ac.max_shift = 0;
  ac.noise_std = 0.0f;
  ac.cutout = 3;
  ac.cutout_fill = 0.77f;
  augment_batch(batch, ac, rng);
  bool found = false;
  for (long i = 0; i < batch.numel(); ++i) {
    if (batch[i] == 0.77f) found = true;
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ber
