// Shared test helpers: finite-difference gradient checking and tiny fixtures.
#pragma once

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "core/rng.h"
#include "nn/layer.h"
#include "nn/sequential.h"
#include "tensor/tensor.h"

namespace ber::test {

// Scalar loss used for gradient checks: weighted sum of outputs with fixed
// pseudo-random weights, so every output element contributes.
inline double probe_loss(const Tensor& y, const Tensor& probe) {
  double s = 0.0;
  for (long i = 0; i < y.numel(); ++i) s += static_cast<double>(y[i]) * probe[i];
  return s;
}

// Checks d(probe_loss)/d(x) and d(probe_loss)/d(params) of `layer` against
// central finite differences. Layers must be deterministic.
inline void gradcheck_layer(Layer& layer, const Tensor& x, double tol = 2e-2,
                            double eps = 1e-3) {
  Rng rng(99);
  Tensor y = layer.forward(x, /*training=*/true);
  Tensor probe = Tensor::uniform(y.shape(), rng, -1.0f, 1.0f);

  layer.zero_grad();
  Tensor grad_in = layer.backward(probe);

  // Input gradient.
  Tensor xm = x;
  for (long i = 0; i < x.numel(); ++i) {
    const float orig = xm[i];
    xm[i] = orig + static_cast<float>(eps);
    const double lp = probe_loss(layer.forward(xm, false), probe);
    xm[i] = orig - static_cast<float>(eps);
    const double lm = probe_loss(layer.forward(xm, false), probe);
    xm[i] = orig;
    const double num = (lp - lm) / (2.0 * eps);
    EXPECT_NEAR(grad_in[i], num, tol * std::max(1.0, std::abs(num)))
        << "input grad mismatch at " << i;
  }

  // Parameter gradients (subsample large tensors to keep tests fast).
  for (Param* p : layer.params()) {
    const long n = p->value.numel();
    const long stride = std::max(1L, n / 24);
    for (long i = 0; i < n; i += stride) {
      const float orig = p->value[i];
      p->value[i] = orig + static_cast<float>(eps);
      const double lp = probe_loss(layer.forward(x, false), probe);
      p->value[i] = orig - static_cast<float>(eps);
      const double lm = probe_loss(layer.forward(x, false), probe);
      p->value[i] = orig;
      const double num = (lp - lm) / (2.0 * eps);
      EXPECT_NEAR(p->grad[i], num, tol * std::max(1.0, std::abs(num)))
          << "param grad mismatch: " << p->name << "[" << i << "]";
    }
  }
}

}  // namespace ber::test
