// Redundancy metric tests (Fig. 10): clipping-style weight distributions
// must score higher relevance and lower relative bit-error damage.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/shapes.h"
#include "eval/redundancy.h"
#include "models/factory.h"
#include "nn/init.h"

namespace ber {
namespace {

std::unique_ptr<Sequential> make_model(std::uint64_t seed) {
  ModelConfig mc;
  mc.arch = Arch::kMlp;
  mc.in_channels = 1;
  mc.width = 8;
  auto model = build_model(mc);
  Rng rng(seed);
  he_init(*model, rng);
  return model;
}

Dataset probe_data() {
  auto cfg = SyntheticConfig::mnist();
  cfg.n_test = 64;
  return make_synthetic(cfg, false);
}

TEST(Redundancy, UniformWeightsScoreHigherRelevanceThanSpiky) {
  auto model = make_model(1);
  const Dataset probe = probe_data();
  // Spiky: He-init Gaussian with one huge outlier.
  model->params()[0]->value[0] = 5.0f;
  const RedundancyStats spiky =
      redundancy_stats(*model, QuantScheme::rquant(8), probe, 0.01);

  // Clipped-style: same weights saturated to a small wmax (mass at the
  // boundary, like Fig. 10's clipped histograms).
  for (Param* p : model->params()) p->value.clamp(-0.05f, 0.05f);
  const RedundancyStats clipped =
      redundancy_stats(*model, QuantScheme::rquant(8), probe, 0.01);

  EXPECT_GT(clipped.weight_relevance, 2.0 * spiky.weight_relevance);
  EXPECT_LT(clipped.max_abs_weight, spiky.max_abs_weight);
}

TEST(Redundancy, RelAbsErrorGrowsWithP) {
  auto model = make_model(2);
  const Dataset probe = probe_data();
  const RedundancyStats lo =
      redundancy_stats(*model, QuantScheme::rquant(8), probe, 0.001);
  const RedundancyStats hi =
      redundancy_stats(*model, QuantScheme::rquant(8), probe, 0.05);
  EXPECT_GT(hi.rel_abs_error, 5.0 * lo.rel_abs_error);
}

TEST(Redundancy, ZeroPGivesZeroError) {
  auto model = make_model(3);
  const RedundancyStats s =
      redundancy_stats(*model, QuantScheme::rquant(8), probe_data(), 0.0);
  EXPECT_EQ(s.rel_abs_error, 0.0);
}

TEST(Redundancy, FracZeroDetectsSparsity) {
  auto model = make_model(4);
  // Zero half of the first weight tensor.
  Param* p = model->params()[0];
  for (long i = 0; i < p->value.numel() / 2; ++i) p->value[i] = 0.0f;
  const RedundancyStats s =
      redundancy_stats(*model, QuantScheme::rquant(8), probe_data(), 0.0);
  EXPECT_GT(s.frac_zero, 0.1);
}

TEST(Redundancy, ReluRelevanceInUnitInterval) {
  auto model = make_model(5);
  const RedundancyStats s =
      redundancy_stats(*model, QuantScheme::rquant(8), probe_data(), 0.01);
  EXPECT_GT(s.relu_relevance, 0.0);
  EXPECT_LE(s.relu_relevance, 1.0);
}

TEST(Redundancy, DeterministicForChipSeed) {
  auto model = make_model(6);
  const Dataset probe = probe_data();
  const RedundancyStats a =
      redundancy_stats(*model, QuantScheme::rquant(8), probe, 0.01, 77);
  const RedundancyStats b =
      redundancy_stats(*model, QuantScheme::rquant(8), probe, 0.01, 77);
  EXPECT_EQ(a.rel_abs_error, b.rel_abs_error);
}

}  // namespace
}  // namespace ber
