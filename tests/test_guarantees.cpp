// Proposition 1 (App. C.2) guarantee tests, pinned against the paper's own
// worked numbers.
#include <gtest/gtest.h>

#include <cmath>

#include "eval/guarantees.h"

namespace ber {
namespace {

TEST(Prop1, PaperWorkedExampleTenThousand) {
  // n = 1e4 test examples, l = 1e6 patterns, delta = 0.01 -> eps ~ 4.1%.
  EXPECT_NEAR(prop1_epsilon(10000, 1000000, 0.01), 0.041, 0.001);
}

TEST(Prop1, PaperWorkedExampleHundredThousand) {
  // n = 1e5 -> eps ~ 1.7%.
  EXPECT_NEAR(prop1_epsilon(100000, 1000000, 0.01), 0.017, 0.001);
}

TEST(Prop1, MoreSamplesTightenTheBound) {
  const double e1 = prop1_epsilon(1000, 1000, 0.01);
  const double e2 = prop1_epsilon(10000, 1000, 0.01);
  const double e3 = prop1_epsilon(10000, 100000, 0.01);
  EXPECT_LT(e2, e1);
  EXPECT_LT(e3, e2);
}

TEST(Prop1, SmallerDeltaWidensTheBound) {
  EXPECT_GT(prop1_epsilon(10000, 10000, 0.001),
            prop1_epsilon(10000, 10000, 0.1));
}

TEST(Prop1, TailProbabilityInverseConsistency) {
  // Plugging eps(n, l, delta) back into the tail bound returns ~delta.
  const long n = 20000, l = 50000;
  const double delta = 0.05;
  const double eps = prop1_epsilon(n, l, delta);
  EXPECT_NEAR(prop1_tail_probability(n, l, eps), delta, delta * 0.01);
}

TEST(Prop1, TailMonotoneInEps) {
  EXPECT_GT(prop1_tail_probability(1000, 1000, 0.01),
            prop1_tail_probability(1000, 1000, 0.05));
}

TEST(Prop1, InvalidArgumentsThrow) {
  EXPECT_THROW(prop1_epsilon(0, 10, 0.1), std::invalid_argument);
  EXPECT_THROW(prop1_epsilon(10, 0, 0.1), std::invalid_argument);
  EXPECT_THROW(prop1_epsilon(10, 10, 0.0), std::invalid_argument);
  EXPECT_THROW(prop1_epsilon(10, 10, 1.0), std::invalid_argument);
  EXPECT_THROW(prop1_tail_probability(10, 10, 0.0), std::invalid_argument);
}

TEST(Prop1, LargePatternCountLimit) {
  // As l -> inf the factor (sqrt(l)+sqrt(n))/sqrt(l) -> 1.
  const double e_inf = prop1_epsilon(10000, 2000000000L, 0.01);
  const double base = std::sqrt(std::log(10001.0 / 0.01) / 10000.0);
  EXPECT_NEAR(e_inf, base, 0.001);
}

}  // namespace
}  // namespace ber
