// Gradient checks and behavioural tests for all basic layers.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/pool.h"
#include "test_util.h"

namespace ber {
namespace {

using test::gradcheck_layer;

Tensor rand_input(std::vector<long> shape, std::uint64_t seed = 1) {
  Rng rng(seed);
  return Tensor::randn(std::move(shape), rng);
}

void rand_params(Layer& layer, std::uint64_t seed = 2) {
  Rng rng(seed);
  for (Param* p : layer.params()) {
    for (long i = 0; i < p->value.numel(); ++i) {
      p->value[i] = rng.normal() * 0.4f;
    }
  }
}

TEST(Conv2d, ForwardShape) {
  Conv2d conv(3, 8, 3, 1, 1);
  Tensor y = conv.forward(rand_input({2, 3, 12, 12}), false);
  EXPECT_EQ(y.shape(), (std::vector<long>{2, 8, 12, 12}));
}

TEST(Conv2d, NoPadShrinks) {
  Conv2d conv(1, 2, 3, 1, 0);
  Tensor y = conv.forward(rand_input({1, 1, 5, 5}), false);
  EXPECT_EQ(y.shape(), (std::vector<long>{1, 2, 3, 3}));
}

TEST(Conv2d, RejectsWrongChannelCount) {
  Conv2d conv(3, 4, 3);
  EXPECT_THROW(conv.forward(rand_input({1, 2, 8, 8}), false),
               std::invalid_argument);
}

TEST(Conv2d, IdentityKernelReproducesInput) {
  Conv2d conv(1, 1, 3, 1, 1);
  for (Param* p : conv.params()) p->value.zero();
  conv.params()[0]->value.at(0, 0, 1, 1) = 1.0f;  // center tap
  Tensor x = rand_input({1, 1, 6, 6});
  Tensor y = conv.forward(x, false);
  for (long i = 0; i < x.numel(); ++i) EXPECT_NEAR(y[i], x[i], 1e-6f);
}

TEST(Conv2d, BiasAddsConstant) {
  Conv2d conv(1, 1, 3, 1, 1);
  for (Param* p : conv.params()) p->value.zero();
  conv.params()[1]->value[0] = 2.5f;
  Tensor y = conv.forward(Tensor::zeros({1, 1, 4, 4}), false);
  for (long i = 0; i < y.numel(); ++i) EXPECT_EQ(y[i], 2.5f);
}

TEST(Conv2d, Gradcheck) {
  Conv2d conv(2, 3, 3, 1, 1);
  rand_params(conv);
  gradcheck_layer(conv, rand_input({2, 2, 5, 5}));
}

TEST(Conv2d, GradcheckStride2NoBias) {
  Conv2d conv(2, 2, 2, 2, 0, /*bias=*/false);
  rand_params(conv);
  EXPECT_EQ(conv.params().size(), 1u);
  gradcheck_layer(conv, rand_input({1, 2, 4, 4}));
}

TEST(Linear, ForwardKnownValues) {
  Linear lin(2, 2);
  lin.params()[0]->value = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  lin.params()[1]->value = Tensor::from_data({2}, {10, 20});
  Tensor y = lin.forward(Tensor::from_data({1, 2}, {1, 1}), false);
  EXPECT_EQ(y.at(0, 0), 13.0f);  // 1+2+10
  EXPECT_EQ(y.at(0, 1), 27.0f);  // 3+4+20
}

TEST(Linear, Gradcheck) {
  Linear lin(6, 4);
  rand_params(lin);
  gradcheck_layer(lin, rand_input({3, 6}));
}

TEST(Linear, RejectsWrongWidth) {
  Linear lin(4, 2);
  EXPECT_THROW(lin.forward(rand_input({1, 3}), false), std::invalid_argument);
}

TEST(ReLUTest, ClampsNegatives) {
  ReLU relu;
  Tensor y = relu.forward(Tensor::from_data({4}, {-1, 0, 2, -3}), false);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[2], 2.0f);
  EXPECT_NEAR(relu.last_active_fraction(), 0.25, 1e-9);
}

TEST(ReLUTest, Gradcheck) {
  ReLU relu;
  // Keep inputs away from the kink for finite differences.
  Tensor x = rand_input({2, 5});
  for (long i = 0; i < x.numel(); ++i) {
    if (std::abs(x[i]) < 0.05f) x[i] = 0.2f;
  }
  gradcheck_layer(relu, x);
}

TEST(FlattenTest, RoundTrip) {
  Flatten f;
  Tensor x = rand_input({2, 3, 4, 4});
  Tensor y = f.forward(x, true);
  EXPECT_EQ(y.shape(), (std::vector<long>{2, 48}));
  Tensor gi = f.backward(y);
  EXPECT_EQ(gi.shape(), x.shape());
}

TEST(MaxPool, ForwardSelectsMax) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 5, 3, 2});
  Tensor y = pool.forward(x, false);
  EXPECT_EQ(y.numel(), 1);
  EXPECT_EQ(y[0], 5.0f);
}

TEST(MaxPool, BackwardRoutesToArgmax) {
  MaxPool2d pool(2);
  Tensor x = Tensor::from_data({1, 1, 2, 2}, {1, 5, 3, 2});
  pool.forward(x, true);
  Tensor gi = pool.backward(Tensor::from_data({1, 1, 1, 1}, {7}));
  EXPECT_EQ(gi[0], 0.0f);
  EXPECT_EQ(gi[1], 7.0f);
}

TEST(MaxPool, Gradcheck) {
  MaxPool2d pool(2);
  // Randomized inputs with distinct values avoid argmax ties.
  Tensor x = rand_input({2, 2, 4, 4}, 33);
  gradcheck_layer(pool, x);
}

TEST(MaxPool, RejectsIndivisible) {
  MaxPool2d pool(2);
  EXPECT_THROW(pool.forward(rand_input({1, 1, 5, 5}), false),
               std::invalid_argument);
}

TEST(GlobalAvgPoolTest, ForwardAverages) {
  GlobalAvgPool gap;
  Tensor x = Tensor::from_data({1, 2, 1, 2}, {1, 3, 10, 20});
  Tensor y = gap.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<long>{1, 2}));
  EXPECT_EQ(y.at(0, 0), 2.0f);
  EXPECT_EQ(y.at(0, 1), 15.0f);
}

TEST(GlobalAvgPoolTest, Gradcheck) {
  GlobalAvgPool gap;
  gradcheck_layer(gap, rand_input({2, 3, 4, 4}));
}

TEST(Layers, CloneIsDeep) {
  Conv2d conv(1, 1, 3);
  rand_params(conv);
  auto copy = conv.clone();
  conv.params()[0]->value[0] = 1234.0f;
  EXPECT_NE(copy->params()[0]->value[0], 1234.0f);
}

}  // namespace
}  // namespace ber
