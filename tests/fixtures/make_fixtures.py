#!/usr/bin/env python3
"""Regenerates the golden dataset fixtures checked in next to this script.

Tiny but fully valid instances of the two on-disk formats the readers in
src/data/ parse:

  idx/      MNIST-layout IDX pair per split: 6 train / 3 test images of
            5x4 gray pixels, labels in {0,1,2}. Pixel (i, r, c) has byte
            value (37*i + 5*r + c) % 256.
  cifar10/  CIFAR-10 binary layout: data_batch_1..5.bin with 2 records
            each + test_batch.bin with 2 records. Record k (global index
            across files) has label k % 10 and pixel byte (k*7 + j) % 256
            at payload offset j (channel-planar RGB).

Run from anywhere: paths are relative to this file. The expected values
are mirrored in tests/test_datasets.cpp — change one, change both.
"""
import os
import struct

root = os.path.dirname(os.path.abspath(__file__))

def write(path, data):
    with open(path, "wb") as f:
        f.write(data)

# ----------------------------------------------------------------- IDX ---
idx = os.path.join(root, "idx")
os.makedirs(idx, exist_ok=True)
ROWS, COLS = 5, 4
for stem, n, label_of in (("train", 6, lambda i: i % 3),
                          ("t10k", 3, lambda i: (i + 2) % 3)):
    images = struct.pack(">IIII", 0x00000803, n, ROWS, COLS)
    images += bytes((37 * i + 5 * r + c) % 256
                    for i in range(n) for r in range(ROWS) for c in range(COLS))
    write(os.path.join(idx, stem + "-images-idx3-ubyte"), images)
    labels = struct.pack(">II", 0x00000801, n)
    labels += bytes(label_of(i) for i in range(n))
    write(os.path.join(idx, stem + "-labels-idx1-ubyte"), labels)

# ------------------------------------------------------------- CIFAR-10 ---
cifar = os.path.join(root, "cifar10")
os.makedirs(cifar, exist_ok=True)
PER_FILE = 2
IMAGE_BYTES = 3 * 32 * 32
k = 0
for name in [f"data_batch_{i}.bin" for i in range(1, 6)] + ["test_batch.bin"]:
    blob = b""
    for _ in range(PER_FILE):
        blob += bytes([k % 10])
        blob += bytes((k * 7 + j) % 256 for j in range(IMAGE_BYTES))
        k += 1
    write(os.path.join(cifar, name), blob)

print("fixtures written under", root)
