// Model factory tests: shapes, parameter counts, norm selection (Tab. 6
// inventory equivalents).
#include <gtest/gtest.h>

#include "core/rng.h"
#include "models/factory.h"
#include "nn/init.h"
#include "nn/norm.h"

namespace ber {
namespace {

TEST(Models, SimpleNetForwardShape) {
  ModelConfig mc;
  auto model = build_model(mc);
  Rng rng(1);
  he_init(*model, rng);
  Tensor y = model->forward(Tensor::randn({2, 3, 12, 12}, rng), false);
  EXPECT_EQ(y.shape(), (std::vector<long>{2, 10}));
}

TEST(Models, SimpleNetRejectsBadImageSize) {
  ModelConfig mc;
  mc.image_size = 10;  // not divisible by 4
  EXPECT_THROW(build_model(mc), std::invalid_argument);
}

TEST(Models, ResNetForwardShape) {
  ModelConfig mc;
  mc.arch = Arch::kResNetSmall;
  auto model = build_model(mc);
  Rng rng(2);
  he_init(*model, rng);
  Tensor y = model->forward(Tensor::randn({2, 3, 12, 12}, rng), false);
  EXPECT_EQ(y.shape(), (std::vector<long>{2, 10}));
}

TEST(Models, MlpForwardShape) {
  ModelConfig mc;
  mc.arch = Arch::kMlp;
  mc.in_channels = 1;
  auto model = build_model(mc);
  Rng rng(3);
  he_init(*model, rng);
  Tensor y = model->forward(Tensor::randn({4, 1, 12, 12}, rng), false);
  EXPECT_EQ(y.shape(), (std::vector<long>{4, 10}));
}

TEST(Models, WeightCountsScaleWithWidth) {
  ModelConfig narrow, wide;
  narrow.width = 8;
  wide.width = 16;
  auto a = build_model(narrow);
  auto b = build_model(wide);
  EXPECT_GT(b->num_weights(), 2 * a->num_weights());
}

TEST(Models, NormKindSelectsLayers) {
  ModelConfig gn, bn, none;
  gn.norm = NormKind::kGroupNorm;
  bn.norm = NormKind::kBatchNorm;
  none.norm = NormKind::kNone;
  auto count_layers = [](Sequential& m, auto pred) {
    int n = 0;
    m.visit([&](Layer& l) {
      if (pred(l)) ++n;
    });
    return n;
  };
  auto gm = build_model(gn);
  auto bm = build_model(bn);
  auto nm = build_model(none);
  EXPECT_GT(count_layers(*gm, [](Layer& l) {
    return dynamic_cast<GroupNorm*>(&l) != nullptr;
  }), 0);
  EXPECT_GT(count_layers(*bm, [](Layer& l) {
    return dynamic_cast<BatchNorm2d*>(&l) != nullptr;
  }), 0);
  EXPECT_EQ(count_layers(*nm, [](Layer& l) {
    return dynamic_cast<GroupNorm*>(&l) != nullptr ||
           dynamic_cast<BatchNorm2d*>(&l) != nullptr;
  }), 0);
}

TEST(Models, SignaturesDistinguishArchitectures) {
  ModelConfig a, b;
  b.arch = Arch::kResNetSmall;
  auto ma = build_model(a);
  auto mb = build_model(b);
  EXPECT_NE(ma->signature(), mb->signature());
}

TEST(Models, GrayscaleInput) {
  ModelConfig mc;
  mc.in_channels = 1;
  auto model = build_model(mc);
  Rng rng(4);
  he_init(*model, rng);
  Tensor y = model->forward(Tensor::randn({1, 1, 12, 12}, rng), false);
  EXPECT_EQ(y.shape(), (std::vector<long>{1, 10}));
}

TEST(Models, NamesAreHumanReadable) {
  EXPECT_STREQ(arch_name(Arch::kSimpleNet), "SimpleNet");
  EXPECT_STREQ(arch_name(Arch::kResNetSmall), "ResNetSmall");
  EXPECT_STREQ(norm_name(NormKind::kGroupNorm), "GN");
  EXPECT_STREQ(norm_name(NormKind::kBatchNorm), "BN");
}

TEST(Models, TwentyClassHead) {
  ModelConfig mc;
  mc.num_classes = 20;
  auto model = build_model(mc);
  Rng rng(5);
  he_init(*model, rng);
  Tensor y = model->forward(Tensor::randn({1, 3, 12, 12}, rng), false);
  EXPECT_EQ(y.shape(1), 20);
}

}  // namespace
}  // namespace ber
