// End-to-end integration tests reproducing the paper's qualitative claims at
// miniature scale: train -> quantize -> inject -> evaluate.
#include <gtest/gtest.h>

#include <cstdio>

#include "biterror/injector.h"
#include "data/shapes.h"
#include "eval/metrics.h"
#include "models/factory.h"
#include "train/trainer.h"

namespace ber {
namespace {

// Shared miniature task; trained models are cached across tests in this
// binary to keep runtime low.
// Miniature CIFAR10-analog task with a small GN CNN — the same architecture
// family as the paper's experiments, so the clipping robustness mechanism
// (normalization absorbs the scale constraint) applies.
struct Mini {
  Dataset train_set, test_set;
  ModelConfig model_cfg;

  Mini() {
    auto cfg = SyntheticConfig::cifar10();
    cfg.n_train = 1500;
    cfg.n_test = 300;
    train_set = make_synthetic(cfg, true);
    test_set = make_synthetic(cfg, false);
    model_cfg.width = 8;
  }

  TrainConfig base() const {
    TrainConfig tc;
    tc.epochs = 30;
    tc.batch_size = 50;
    return tc;
  }
};

Mini& mini() {
  static Mini m;
  return m;
}

Sequential& rquant_model() {
  static std::unique_ptr<Sequential> model = [] {
    auto m = build_model(mini().model_cfg);
    train(*m, mini().train_set, mini().test_set, mini().base());
    return m;
  }();
  return *model;
}

Sequential& clipped_model() {
  static std::unique_ptr<Sequential> model = [] {
    auto m = build_model(mini().model_cfg);
    TrainConfig tc = mini().base();
    tc.method = Method::kClipping;
    tc.wmax = 0.15f;
    train(*m, mini().train_set, mini().test_set, tc);
    return m;
  }();
  return *model;
}

TEST(Integration, TrainingReachesLowError) {
  const float err = test_error(rquant_model(), mini().test_set);
  EXPECT_LT(err, 0.35f);  // miniature budget; chance would be 0.9
}

TEST(Integration, RobustErrorAtLeastCleanError) {
  Sequential& model = rquant_model();
  const QuantScheme scheme = QuantScheme::rquant(8);
  const float clean = test_error(model, mini().test_set, &scheme);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const RobustResult r = robust_error(model, scheme, mini().test_set, cfg, 6);
  EXPECT_GE(r.mean_rerr, clean - 0.01f);
}

TEST(Integration, RobustErrorGrowsWithRate) {
  Sequential& model = rquant_model();
  const QuantScheme scheme = QuantScheme::rquant(8);
  std::vector<float> rerrs;
  for (double p : {0.001, 0.01, 0.05}) {
    BitErrorConfig cfg;
    cfg.p = p;
    rerrs.push_back(
        robust_error(model, scheme, mini().test_set, cfg, 6).mean_rerr);
  }
  EXPECT_LE(rerrs[0], rerrs[1] + 0.02f);
  EXPECT_LT(rerrs[1], rerrs[2] + 0.02f);
  EXPECT_GT(rerrs[2], rerrs[0]);  // clear growth over two decades
}

TEST(Integration, GlobalQuantizationFarLessRobust) {
  // Tab. 1 row 1 vs row 2: one global range makes moderate bit error rates
  // catastrophic, per-tensor ranges contain the damage.
  Sequential& model = rquant_model();
  BitErrorConfig cfg;
  cfg.p = 0.005;
  const RobustResult global = robust_error(
      model, QuantScheme::global_symmetric(8), mini().test_set, cfg, 6);
  const RobustResult per_tensor = robust_error(
      model, QuantScheme::normal(8), mini().test_set, cfg, 6);
  EXPECT_GT(global.mean_rerr, per_tensor.mean_rerr + 0.05f);
}

TEST(Integration, ClippingImprovesHighRateRobustness) {
  // Sec. 5.2: weight clipping reduces the DAMAGE bit errors cause. At
  // miniature training budgets clipping costs some clean accuracy, so the
  // paper-faithful assertion is on the degradation RErr - Err, which
  // clipping must shrink.
  const QuantScheme scheme = QuantScheme::rquant(8);
  const float plain_clean = test_error(rquant_model(), mini().test_set, &scheme);
  const float clip_clean = test_error(clipped_model(), mini().test_set, &scheme);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const RobustResult plain =
      robust_error(rquant_model(), scheme, mini().test_set, cfg, 8);
  const RobustResult clipped =
      robust_error(clipped_model(), scheme, mini().test_set, cfg, 8);
  const float plain_damage = plain.mean_rerr - plain_clean;
  const float clip_damage = clipped.mean_rerr - clip_clean;
  EXPECT_LT(clip_damage, plain_damage);
  // Clean accuracy must not collapse from clipping.
  EXPECT_LT(clip_clean, 0.45f);
}

TEST(Integration, SaveLoadPreservesRobustnessExactly) {
  const std::string path = testing::TempDir() + "/ber_integration_model.bin";
  Sequential& model = rquant_model();
  model.save(path);
  auto fresh = build_model(mini().model_cfg);
  fresh->load(path);
  const QuantScheme scheme = QuantScheme::rquant(8);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const RobustResult a = robust_error(model, scheme, mini().test_set, cfg, 3);
  const RobustResult b = robust_error(*fresh, scheme, mini().test_set, cfg, 3);
  EXPECT_EQ(a.per_chip, b.per_chip);
  std::remove(path.c_str());
}

TEST(Integration, LowerVoltageMeansHigherRErrOnProfiledChip) {
  Sequential& model = rquant_model();
  ProfiledChipConfig cc = ProfiledChipConfig::chip1();
  cc.rows = 1024;
  ProfiledChip chip(cc);
  const QuantScheme scheme = QuantScheme::rquant(8);
  const RobustResult hi =
      robust_error_profiled(model, scheme, mini().test_set, chip, 0.92, 3);
  const RobustResult lo =
      robust_error_profiled(model, scheme, mini().test_set, chip, 0.80, 3);
  EXPECT_GE(lo.mean_rerr, hi.mean_rerr - 0.02f);
  EXPECT_GT(lo.mean_rerr, 0.3f);  // 0.80 Vmin is ~2% bit errors: damaging
}

}  // namespace
}  // namespace ber
