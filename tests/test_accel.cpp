// Accelerator energy model tests: traffic accounting and voltage scaling.
#include <gtest/gtest.h>

#include "accel/accelerator.h"
#include "models/factory.h"
#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"

namespace ber {
namespace {

TEST(Accel, ConvMacAccounting) {
  Sequential seq;
  seq.emplace<Conv2d>(3, 8, 3, 1, 1);
  const auto profiles = profile_model(seq, {1, 3, 12, 12});
  ASSERT_EQ(profiles.size(), 1u);
  // MACs = out elems (8*12*12) * in_ch*k*k (27).
  EXPECT_EQ(profiles[0].macs, 8L * 12 * 12 * 27);
  EXPECT_EQ(profiles[0].weights, 8L * 3 * 9 + 8);
  EXPECT_EQ(profiles[0].activations, 8L * 12 * 12);
}

TEST(Accel, LinearMacAccounting) {
  Sequential seq;
  seq.emplace<Flatten>();
  seq.emplace<Linear>(48, 10);
  const auto profiles = profile_model(seq, {1, 3, 4, 4});
  ASSERT_EQ(profiles.size(), 2u);
  EXPECT_EQ(profiles[1].macs, 480);
  EXPECT_EQ(profiles[1].weights, 490);
}

TEST(Accel, ResidualBlocksExpanded) {
  ModelConfig mc;
  mc.arch = Arch::kResNetSmall;
  auto model = build_model(mc);
  const auto profiles = profile_model(*model, {1, 3, 12, 12});
  long conv_layers = 0;
  for (const auto& p : profiles) {
    if (p.name.rfind("Conv2d", 0) == 0) ++conv_layers;
  }
  EXPECT_GE(conv_layers, 5);  // stem + 2 residual bodies x 2 + head conv
}

TEST(Accel, WeightsMatchModelTotal) {
  ModelConfig mc;
  auto model = build_model(mc);
  const auto profiles = profile_model(*model, {1, 3, 12, 12});
  long total = 0;
  for (const auto& p : profiles) total += p.weights;
  EXPECT_EQ(total, model->num_weights());
}

TEST(Accel, EnergyDecreasesWithVoltage) {
  ModelConfig mc;
  auto model = build_model(mc);
  const auto profiles = profile_model(*model, {1, 3, 12, 12});
  AcceleratorConfig cfg;
  const double at_vmin = inference_energy(profiles, cfg, 1.0).total();
  const double at_low = inference_energy(profiles, cfg, 0.85).total();
  EXPECT_LT(at_low, at_vmin);
  EXPECT_GT(inference_energy_saving(profiles, cfg, 0.85), 0.0);
  EXPECT_NEAR(inference_energy_saving(profiles, cfg, 1.0), 0.0, 1e-12);
}

TEST(Accel, ComputeEnergyIsVoltageIndependent) {
  ModelConfig mc;
  auto model = build_model(mc);
  const auto profiles = profile_model(*model, {1, 3, 12, 12});
  AcceleratorConfig cfg;
  EXPECT_EQ(inference_energy(profiles, cfg, 1.0).compute_energy,
            inference_energy(profiles, cfg, 0.8).compute_energy);
}

TEST(Accel, SavingBoundedByMemoryShare) {
  // Total saving can never exceed the memory fraction of total energy.
  ModelConfig mc;
  auto model = build_model(mc);
  const auto profiles = profile_model(*model, {1, 3, 12, 12});
  AcceleratorConfig cfg;
  const EnergyBreakdown b = inference_energy(profiles, cfg, 1.0);
  const double mem_share = b.memory_energy / b.total();
  EXPECT_LT(inference_energy_saving(profiles, cfg, 0.75), mem_share);
}

TEST(Accel, BreakdownComponentsSum) {
  ModelConfig mc;
  auto model = build_model(mc);
  const auto profiles = profile_model(*model, {1, 3, 12, 12});
  AcceleratorConfig cfg;
  const EnergyBreakdown b = inference_energy(profiles, cfg, 0.9);
  EXPECT_NEAR(b.total(), b.memory_energy + b.compute_energy, 1e-9);
  EXPECT_GT(b.weight_accesses, 0.0);
  EXPECT_GT(b.activation_accesses, 0.0);
}

}  // namespace
}  // namespace ber
