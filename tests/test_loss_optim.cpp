// Cross-entropy loss (incl. label smoothing) and SGD/schedule tests.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "nn/linear.h"
#include "nn/loss.h"
#include "nn/optimizer.h"

namespace ber {
namespace {

TEST(Loss, UniformLogitsGiveLogK) {
  Tensor logits = Tensor::zeros({4, 10});
  std::vector<int> labels{0, 1, 2, 3};
  const LossStats s = softmax_cross_entropy(logits, labels);
  EXPECT_NEAR(s.loss, std::log(10.0f), 1e-5f);
  EXPECT_NEAR(s.confidence, 0.1, 1e-6);
}

TEST(Loss, PerfectPredictionLowLoss) {
  Tensor logits = Tensor::zeros({2, 3});
  logits.at(0, 1) = 20.0f;
  logits.at(1, 2) = 20.0f;
  std::vector<int> labels{1, 2};
  const LossStats s = softmax_cross_entropy(logits, labels);
  EXPECT_LT(s.loss, 1e-4f);
  EXPECT_EQ(s.correct, 2);
  EXPECT_GT(s.confidence, 0.999);
}

TEST(Loss, GradientRowsSumToZero) {
  Rng rng(3);
  Tensor logits = Tensor::randn({5, 7}, rng, 2.0f);
  std::vector<int> labels{0, 1, 2, 3, 4};
  const LossStats s = softmax_cross_entropy(logits, labels);
  for (long r = 0; r < 5; ++r) {
    double sum = 0.0;
    for (long c = 0; c < 7; ++c) sum += s.grad_logits.at(r, c);
    EXPECT_NEAR(sum, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  Rng rng(4);
  Tensor logits = Tensor::randn({3, 5}, rng);
  std::vector<int> labels{1, 0, 4};
  const LossStats s = softmax_cross_entropy(logits, labels, 0.1f);
  const double eps = 1e-3;
  for (long i = 0; i < logits.numel(); ++i) {
    Tensor lp = logits, lm = logits;
    lp[i] += static_cast<float>(eps);
    lm[i] -= static_cast<float>(eps);
    const float fp = softmax_cross_entropy(lp, labels, 0.1f).loss;
    const float fm = softmax_cross_entropy(lm, labels, 0.1f).loss;
    EXPECT_NEAR(s.grad_logits[i], (fp - fm) / (2 * eps), 1e-3);
  }
}

TEST(Loss, LabelSmoothingRaisesMinimumLoss) {
  // With smoothing, even a perfect prediction keeps positive loss.
  Tensor logits = Tensor::zeros({1, 10});
  logits.at(0, 0) = 30.0f;
  std::vector<int> labels{0};
  const LossStats plain = softmax_cross_entropy(logits, labels, 0.0f);
  const LossStats smooth = softmax_cross_entropy(logits, labels, 0.1f);
  EXPECT_LT(plain.loss, 1e-4f);
  EXPECT_GT(smooth.loss, 0.2f);
}

TEST(Loss, SmoothingOptimumIsSoftTarget) {
  // The smoothed loss at the soft-target distribution has zero gradient.
  const int k = 10;
  const float s = 0.1f;
  Tensor logits({1, k});
  // logits proportional to log target reproduce the target as softmax.
  for (int c = 0; c < k; ++c) {
    const float target = c == 0 ? 1.0f - s : s / (k - 1);
    logits.at(0, c) = std::log(target);
  }
  std::vector<int> labels{0};
  const LossStats stats = softmax_cross_entropy(logits, labels, s);
  for (int c = 0; c < k; ++c) EXPECT_NEAR(stats.grad_logits.at(0, c), 0.0f, 1e-6f);
}

TEST(Loss, LabelCountMismatchThrows) {
  Tensor logits = Tensor::zeros({2, 3});
  std::vector<int> labels{0};
  EXPECT_THROW(softmax_cross_entropy(logits, labels), std::invalid_argument);
}

TEST(Sgd, PlainStep) {
  Linear lin(1, 1, /*bias=*/false);
  Param* p = lin.params()[0];
  p->value[0] = 1.0f;
  p->grad[0] = 0.5f;
  Sgd opt({p}, {/*lr=*/0.1f, /*momentum=*/0.0f, /*weight_decay=*/0.0f});
  opt.step();
  EXPECT_NEAR(p->value[0], 1.0f - 0.1f * 0.5f, 1e-6f);
}

TEST(Sgd, WeightDecayPullsTowardZero) {
  Linear lin(1, 1, false);
  Param* p = lin.params()[0];
  p->value[0] = 2.0f;
  p->grad[0] = 0.0f;
  Sgd opt({p}, {0.1f, 0.0f, 0.5f});
  opt.step();
  // v = 0 + (0 + 0.5*2) = 1; w = 2 - 0.1*1 = 1.9
  EXPECT_NEAR(p->value[0], 1.9f, 1e-6f);
}

TEST(Sgd, MomentumAccumulates) {
  Linear lin(1, 1, false);
  Param* p = lin.params()[0];
  p->value[0] = 0.0f;
  Sgd opt({p}, {1.0f, 0.9f, 0.0f});
  p->grad[0] = 1.0f;
  opt.step();  // v=1, w=-1
  EXPECT_NEAR(p->value[0], -1.0f, 1e-6f);
  p->grad[0] = 1.0f;
  opt.step();  // v=1.9, w=-2.9
  EXPECT_NEAR(p->value[0], -2.9f, 1e-6f);
}

TEST(Sgd, LrUpdate) {
  Linear lin(1, 1, false);
  Param* p = lin.params()[0];
  Sgd opt({p}, {0.5f, 0.0f, 0.0f});
  opt.set_lr(0.01f);
  EXPECT_EQ(opt.lr(), 0.01f);
}

TEST(MultiStepLrTest, WarmupRampsLinearly) {
  MultiStepLr sched{0.1f, 0.1f, /*warmup_epochs=*/4};
  const int total = 100;
  EXPECT_NEAR(sched.at(0, total), 0.025f, 1e-7f);
  EXPECT_NEAR(sched.at(1, total), 0.05f, 1e-7f);
  EXPECT_NEAR(sched.at(3, total), 0.1f, 1e-7f);
  EXPECT_NEAR(sched.at(4, total), 0.1f, 1e-7f);  // post-warmup = base
  EXPECT_NEAR(sched.at(40, total), 0.01f, 1e-7f);
}

TEST(MultiStepLrTest, PaperSchedule) {
  MultiStepLr sched{0.05f, 0.1f};
  const int total = 100;
  EXPECT_NEAR(sched.at(0, total), 0.05f, 1e-7f);
  EXPECT_NEAR(sched.at(39, total), 0.05f, 1e-7f);
  EXPECT_NEAR(sched.at(40, total), 0.005f, 1e-7f);   // 2/5
  EXPECT_NEAR(sched.at(60, total), 0.0005f, 1e-7f);  // 3/5
  EXPECT_NEAR(sched.at(80, total), 0.00005f, 1e-8f); // 4/5
}

}  // namespace
}  // namespace ber
