// Synthetic profiled chip tests: voltage persistence, spatial column
// alignment, flip-direction bias, mapping offsets (Fig. 3 / Fig. 8 / Tab. 5
// structure).
#include <gtest/gtest.h>

#include <cmath>

#include "biterror/profiled_chip.h"
#include "core/rng.h"
#include "quant/quantizer.h"

namespace ber {
namespace {

NetSnapshot make_snapshot(std::size_t n_weights, std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<float> w(n_weights);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  NetSnapshot snap;
  snap.tensors.push_back(quantize(w, QuantScheme::rquant(8)));
  snap.offsets.push_back(0);
  return snap;
}

TEST(ProfiledChip, RateMonotoneInVoltage) {
  ProfiledChip chip(ProfiledChipConfig::chip1());
  double prev = 1.0;
  for (double v : {0.80, 0.85, 0.90, 0.95, 1.00}) {
    const double r = chip.error_rate_at(v);
    EXPECT_LE(r, prev);
    prev = r;
  }
  EXPECT_GT(chip.error_rate_at(0.80), chip.error_rate_at(0.95));
}

TEST(ProfiledChip, MeasuredRateTracksModel) {
  // Without vulnerable columns the measured rate matches the base curve.
  ProfiledChipConfig cfg = ProfiledChipConfig::chip1();
  cfg.vulnerable_column_fraction = 0.0;
  ProfiledChip chip(cfg);
  for (double v : {0.82, 0.86, 0.90}) {
    const double model = chip.model_rate_at(v);
    const double measured = chip.error_rate_at(v);
    EXPECT_NEAR(measured, model, 5.0 * std::sqrt(model / chip.num_cells()) + 1e-4);
  }
}

TEST(ProfiledChip, VulnerableColumnsRaiseMeasuredRate) {
  ProfiledChipConfig boosted = ProfiledChipConfig::chip2();
  ProfiledChip chip(boosted);
  const double v = 0.84;
  // Expected inflation: 1 - f + f * boost.
  const double factor = 1.0 - boosted.vulnerable_column_fraction +
                        boosted.vulnerable_column_fraction * boosted.column_boost;
  EXPECT_NEAR(chip.error_rate_at(v), chip.model_rate_at(v) * factor,
              chip.model_rate_at(v) * factor * 0.5);
  EXPECT_GT(chip.error_rate_at(v), 1.5 * chip.model_rate_at(v));
}

TEST(ProfiledChip, ColumnVulnerabilityFractionMatchesConfig) {
  ProfiledChipConfig cfg = ProfiledChipConfig::chip2();
  cfg.cols = 4096;
  ProfiledChip chip(cfg);
  long vulnerable = 0;
  for (long c = 0; c < cfg.cols; ++c) vulnerable += chip.column_vulnerable(c);
  EXPECT_NEAR(static_cast<double>(vulnerable) / cfg.cols,
              cfg.vulnerable_column_fraction, 0.02);
}

TEST(ProfiledChip, FaultsPersistAcrossVoltage) {
  // Cells faulty at the higher voltage stay faulty at the lower one.
  ProfiledChip chip(ProfiledChipConfig::chip1());
  const double v_hi = 0.90, v_lo = 0.84;
  int checked = 0;
  for (long r = 0; r < 256; ++r) {
    for (long c = 0; c < chip.config().cols; ++c) {
      if (chip.is_faulty(r, c, v_hi)) {
        EXPECT_TRUE(chip.is_faulty(r, c, v_lo));
        ++checked;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(ProfiledChip, ColumnCorrelationClusters) {
  // Compare the variance of per-column fault counts: the column-correlated
  // chip-2 map must be far more clustered than the i.i.d.-like chip 1.
  auto column_variance = [](const ProfiledChip& chip, double v) {
    const long rows = chip.config().rows, cols = chip.config().cols;
    std::vector<long> per_col(static_cast<std::size_t>(cols), 0);
    for (long r = 0; r < rows; ++r) {
      for (long c = 0; c < cols; ++c) {
        if (chip.is_faulty(r, c, v)) per_col[static_cast<std::size_t>(c)]++;
      }
    }
    double mean = 0.0;
    for (long c : per_col) mean += static_cast<double>(c);
    mean /= cols;
    double var = 0.0;
    for (long c : per_col) var += (c - mean) * (c - mean);
    return var / cols;
  };
  ProfiledChipConfig c1 = ProfiledChipConfig::chip1();
  ProfiledChipConfig c2 = ProfiledChipConfig::chip2();
  c1.rows = c2.rows = 1024;  // same geometry for a fair comparison
  c1.vulnerable_column_fraction = 0.0;
  ProfiledChip iid(c1), columned(c2);
  const double v = 0.82;  // high enough rate for clear statistics
  EXPECT_GT(column_variance(columned, v), 5.0 * column_variance(iid, v));
}

TEST(ProfiledChip, Chip2IsSetOneBiased) {
  ProfiledChip chip(ProfiledChipConfig::chip2());
  EXPECT_GT(chip.set1_share_at(0.85), 0.6);
  ProfiledChip balanced(ProfiledChipConfig::chip1());
  EXPECT_LT(balanced.set1_share_at(0.85), 0.2);
}

TEST(ProfiledChip, ApplyChangesCodesAtLowVoltage) {
  ProfiledChip chip(ProfiledChipConfig::chip1());
  NetSnapshot snap = make_snapshot(20000);
  NetSnapshot pert = snap;
  const std::size_t changed = chip.apply(pert, 0.85, 0);
  EXPECT_GT(changed, 0u);
  // At Vmin nothing happens (rate ~ p0).
  NetSnapshot pert2 = snap;
  const std::size_t changed2 = chip.apply(pert2, 1.0, 0);
  EXPECT_LT(changed2, 5u);
}

TEST(ProfiledChip, OffsetsChangeThePattern) {
  ProfiledChip chip(ProfiledChipConfig::chip1());
  NetSnapshot snap = make_snapshot(20000);
  NetSnapshot a = snap, b = snap;
  chip.apply(a, 0.85, 0);
  chip.apply(b, 0.85, 12345);
  EXPECT_NE(a.tensors[0].codes, b.tensors[0].codes);
}

TEST(ProfiledChip, ApplyIsDeterministic) {
  ProfiledChip chip(ProfiledChipConfig::chip3());
  NetSnapshot snap = make_snapshot(10000);
  NetSnapshot a = snap, b = snap;
  chip.apply(a, 0.86, 64);
  chip.apply(b, 0.86, 64);
  EXPECT_EQ(a.tensors[0].codes, b.tensors[0].codes);
}

TEST(ProfiledChip, DifferentSeedsGiveDifferentChips) {
  ProfiledChip a(ProfiledChipConfig::chip1(1));
  ProfiledChip b(ProfiledChipConfig::chip1(2));
  int diff = 0;
  for (long r = 0; r < 128; ++r) {
    for (long c = 0; c < a.config().cols; ++c) {
      if (a.is_faulty(r, c, 0.85) != b.is_faulty(r, c, 0.85)) ++diff;
    }
  }
  EXPECT_GT(diff, 0);
}

TEST(ProfiledChip, EmptyGeometryThrows) {
  ProfiledChipConfig cfg;
  cfg.rows = 0;
  EXPECT_THROW(ProfiledChip{cfg}, std::invalid_argument);
}

}  // namespace
}  // namespace ber
