// Unified FaultModel pipeline tests: BitErrorConfig validation, bit-exact
// agreement of the sparse ChipFaultList path with the scalar reference,
// fault persistence across rates, and regression of the metrics.h entry
// points (and the ECC baseline) against the legacy hand-rolled pipelines
// they replaced.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "core/hash.h"
#include "core/rng.h"
#include "data/shapes.h"
#include "eval/metrics.h"
#include "faults/ecc_protected_model.h"
#include "faults/evaluator.h"
#include "faults/linf_noise_model.h"
#include "faults/profiled_chip_model.h"
#include "faults/random_bit_error_model.h"
#include "models/factory.h"
#include "nn/init.h"
#include "quant/net_quantizer.h"

namespace ber {
namespace {

NetSnapshot make_snapshot(std::size_t n_weights, int bits,
                          std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<float> w(n_weights);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  NetSnapshot snap;
  snap.tensors.push_back(quantize(w, QuantScheme::rquant(bits)));
  snap.offsets.push_back(0);
  return snap;
}

struct Fixture {
  Dataset data;
  std::unique_ptr<Sequential> model;

  explicit Fixture(int n = 120) {
    auto cfg = SyntheticConfig::mnist();
    cfg.n_test = n;
    data = make_synthetic(cfg, false);
    ModelConfig mc;
    mc.arch = Arch::kMlp;
    mc.in_channels = 1;
    mc.width = 8;
    model = build_model(mc);
    Rng rng(5);
    he_init(*model, rng);
  }
};

// ------------------------------------------------------------ validation ---

TEST(BitErrorConfigValidation, NegativeFractionThrows) {
  BitErrorConfig cfg;
  cfg.flip_fraction = 1.2;
  cfg.set1_fraction = -0.2;
  NetSnapshot snap = make_snapshot(100, 8);
  EXPECT_THROW(inject_random_bit_errors(snap, cfg, 1), std::invalid_argument);
  EXPECT_THROW(RandomBitErrorModel{cfg}, std::invalid_argument);
}

TEST(BitErrorConfigValidation, FractionsMustSumToOne) {
  BitErrorConfig cfg;
  cfg.flip_fraction = 0.5;
  cfg.set1_fraction = 0.2;
  cfg.set0_fraction = 0.2;  // sums to 0.9
  NetSnapshot snap = make_snapshot(100, 8);
  EXPECT_THROW(inject_random_bit_errors(snap, cfg, 1), std::invalid_argument);
  EXPECT_THROW(RandomBitErrorModel{cfg}, std::invalid_argument);
  cfg.set0_fraction = 0.3;
  EXPECT_NO_THROW(cfg.validate());
  EXPECT_NO_THROW(BitErrorConfig::biased_set1(0.01).validate());
}

TEST(BitErrorConfigValidation, RateOutsideUnitIntervalThrows) {
  BitErrorConfig cfg;
  cfg.p = 1.5;
  NetSnapshot snap = make_snapshot(10, 8);
  EXPECT_THROW(inject_random_bit_errors(snap, cfg, 1), std::invalid_argument);
}

// ---------------------------------------------- sparse path vs scalar path --

TEST(ChipFaultList, ByteIdenticalToScalarPath) {
  const NetSnapshot clean = make_snapshot(30000, 8);
  for (double p : {0.0001, 0.001, 0.01, 0.05}) {
    for (std::uint64_t chip : {7ULL, 42ULL, 1000ULL}) {
      BitErrorConfig cfg;
      cfg.p = p;
      NetSnapshot sparse = clean, scalar = clean;
      const std::size_t changed_sparse =
          ChipFaultList(clean, cfg, chip, p).apply(sparse, p);
      const std::size_t changed_scalar =
          inject_random_bit_errors_scalar(scalar, cfg, chip);
      EXPECT_EQ(changed_sparse, changed_scalar) << "p=" << p;
      EXPECT_EQ(sparse.tensors[0].codes, scalar.tensors[0].codes)
          << "p=" << p << " chip=" << chip;
    }
  }
}

TEST(ChipFaultList, ByteIdenticalWithStuckAtMix) {
  const NetSnapshot clean = make_snapshot(20000, 6);
  const BitErrorConfig cfg = BitErrorConfig::biased_set1(0.02);
  NetSnapshot sparse = clean, scalar = clean;
  ChipFaultList(clean, cfg, 11, cfg.p).apply(sparse, cfg.p);
  inject_random_bit_errors_scalar(scalar, cfg, 11);
  EXPECT_EQ(sparse.tensors[0].codes, scalar.tensors[0].codes);
}

TEST(ChipFaultList, MultiTensorByteIdentical) {
  Rng rng(4);
  std::vector<float> w(5000);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  NetSnapshot clean;
  clean.tensors.push_back(quantize(w, QuantScheme::rquant(8)));
  clean.offsets.push_back(0);
  clean.tensors.push_back(quantize(w, QuantScheme::rquant(4)));
  clean.offsets.push_back(5000);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  NetSnapshot sparse = clean, scalar = clean;
  ChipFaultList(clean, cfg, 77, cfg.p).apply(sparse, cfg.p);
  inject_random_bit_errors_scalar(scalar, cfg, 77);
  for (std::size_t t = 0; t < clean.tensors.size(); ++t) {
    EXPECT_EQ(sparse.tensors[t].codes, scalar.tensors[t].codes) << "t=" << t;
  }
}

TEST(ChipFaultList, ListBuiltAtPMaxServesLowerRates) {
  // The list built once at the top of a rate grid, filtered to p, must equal
  // a fresh injection at p — this is the persistence property that makes
  // multi-rate sweeps cheap.
  const NetSnapshot clean = make_snapshot(20000, 8);
  BitErrorConfig cfg;
  cfg.p = 0.02;
  const ChipFaultList list(clean, cfg, /*chip_seed=*/42, /*p_max=*/0.02);
  for (double p : {0.0, 0.001, 0.005, 0.02}) {
    NetSnapshot from_list = clean, fresh = clean;
    list.apply(from_list, p);
    BitErrorConfig at_p = cfg;
    at_p.p = p;
    inject_random_bit_errors_scalar(fresh, at_p, 42);
    EXPECT_EQ(from_list.tensors[0].codes, fresh.tensors[0].codes)
        << "p=" << p;
  }
  EXPECT_THROW(
      {
        NetSnapshot s = clean;
        list.apply(s, 0.05);  // above p_max
      },
      std::invalid_argument);
}

TEST(ChipFaultList, ApplyRejectsMismatchedLayout) {
  const NetSnapshot built_for = make_snapshot(1000, 8);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const ChipFaultList list(built_for, cfg, 1, cfg.p);
  NetSnapshot smaller = make_snapshot(500, 8);
  EXPECT_THROW(list.apply(smaller, cfg.p), std::invalid_argument);
  NetSnapshot narrower = make_snapshot(1000, 4);
  EXPECT_THROW(list.apply(narrower, cfg.p), std::invalid_argument);
}

TEST(ChipFaultList, ShardedParallelPathByteIdentical) {
  // 150k elements cross the intra-tensor shard boundary, so a multithreaded
  // build/apply exercises several shards of ONE tensor — the case per-tensor
  // parallelism could not split. Results must not depend on thread count.
  const NetSnapshot clean = make_snapshot(150000, 8);
  BitErrorConfig cfg;
  cfg.p = 0.005;
  NetSnapshot sharded = clean, scalar = clean;
  const ChipFaultList list(clean, cfg, /*chip_seed=*/21, cfg.p, /*threads=*/4);
  const std::size_t changed = list.apply(sharded, cfg.p, /*threads=*/4);
  const std::size_t changed_scalar =
      inject_random_bit_errors_scalar(scalar, cfg, 21);
  EXPECT_EQ(changed, changed_scalar);
  EXPECT_EQ(sharded.tensors[0].codes, scalar.tensors[0].codes);
  EXPECT_EQ(list.size(), ChipFaultList(clean, cfg, 21, cfg.p).size());
}

TEST(ChipFaultList, PerTensorVectorCtorMatchesHashedBuild) {
  const NetSnapshot clean = make_snapshot(70000, 8);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const std::uint64_t chip = 5;
  // Recreate the chip's fault pattern coordinate by coordinate, then feed it
  // through the assembly constructor.
  std::vector<std::vector<ChipFault>> per_tensor(1);
  for (std::size_t i = 0; i < clean.tensors[0].codes.size(); ++i) {
    for (int j = 0; j < 8; ++j) {
      const double u = hash_uniform(chip, i, static_cast<std::uint64_t>(j));
      if (u >= cfg.p) continue;
      per_tensor[0].push_back(
          {static_cast<std::uint32_t>(i), static_cast<std::uint8_t>(j),
           static_cast<std::uint8_t>(fault_type_at(cfg, chip, i, j)), u});
    }
  }
  const ChipFaultList assembled(clean, std::move(per_tensor), cfg.p, chip);
  EXPECT_EQ(assembled.chip_seed(), chip);
  NetSnapshot a = clean, b = clean;
  assembled.apply(a, cfg.p);
  ChipFaultList(clean, cfg, chip, cfg.p).apply(b, cfg.p);
  EXPECT_EQ(a.tensors[0].codes, b.tensors[0].codes);
}

TEST(ChipFaultList, PerTensorCtorRejectsBadInput) {
  const NetSnapshot layout = make_snapshot(100, 8);
  EXPECT_THROW((ChipFaultList(layout, {{}, {}}, 0.01)),  // tensor count
               std::invalid_argument);
  std::vector<std::vector<ChipFault>> unsorted(1);
  unsorted[0] = {{5, 0, 0, 0.001}, {2, 0, 0, 0.001}};
  EXPECT_THROW(ChipFaultList(layout, std::move(unsorted), 0.01),
               std::invalid_argument);
  std::vector<std::vector<ChipFault>> outside(1);
  outside[0] = {{100, 0, 0, 0.001}};  // element index == tensor size
  EXPECT_THROW(ChipFaultList(layout, std::move(outside), 0.01),
               std::invalid_argument);
  std::vector<std::vector<ChipFault>> wide(1);
  wide[0] = {{0, 8, 0, 0.001}};  // bit == code width
  EXPECT_THROW(ChipFaultList(layout, std::move(wide), 0.01),
               std::invalid_argument);
}

TEST(ProfiledChip, FaultListServesWholeVoltageGrid) {
  ProfiledChipConfig cc = ProfiledChipConfig::chip2();
  cc.rows = 512;
  cc.cols = 64;
  const ProfiledChip chip(cc);
  const NetSnapshot clean = make_snapshot(20000, 8);
  const std::uint64_t offset = 7919ULL * 64ULL;
  const double v_min = 0.80;
  const ChipFaultList list = chip.fault_list(clean, v_min, offset);
  EXPECT_EQ(list.p_max(), chip.model_rate_at(v_min));
  for (double v : {0.80, 0.85, 0.92, 1.05}) {
    NetSnapshot from_list = clean, fresh = clean;
    list.apply(from_list, chip.model_rate_at(v));
    chip.apply(fresh, v, offset);
    EXPECT_EQ(from_list.tensors[0].codes, fresh.tensors[0].codes)
        << "v=" << v;
  }
}

TEST(RobustnessEvaluator, VoltageSweepMatchesIndividualRuns) {
  Fixture f;
  const QuantScheme scheme = QuantScheme::rquant(8);
  ProfiledChipConfig cc = ProfiledChipConfig::chip2();
  cc.rows = 512;
  cc.cols = 64;
  const ProfiledChip chip(cc);
  const std::vector<double> grid{0.82, 0.86, 0.95};
  const ProfiledChipModel fault(chip, grid[0]);
  const auto sweep = RobustnessEvaluator(*f.model, scheme)
                         .run_voltage_sweep(fault, grid, f.data, 4);
  ASSERT_EQ(sweep.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const RobustResult single =
        robust_error_profiled(*f.model, scheme, f.data, chip, grid[i], 4);
    EXPECT_EQ(sweep[i].per_chip, single.per_chip) << "v=" << grid[i];
  }
}

TEST(ChipFaultList, FaultCountConcentratesAroundExpectation) {
  const NetSnapshot clean = make_snapshot(40000, 8);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const ChipFaultList list(clean, cfg, 9, cfg.p);
  const double expected = expected_bit_errors(cfg.p, 8, 40000);
  EXPECT_NEAR(static_cast<double>(list.size()), expected,
              5.0 * std::sqrt(expected));
}

// ------------------------------------------------------ metric regression ---

// The legacy aggregation formula (pre-refactor eval/metrics.cpp).
RobustResult legacy_summarize(std::vector<float> errs,
                              std::vector<float> confs) {
  RobustResult r;
  r.per_chip = std::move(errs);
  double sum = 0.0, sq = 0.0, csum = 0.0;
  for (float e : r.per_chip) {
    sum += e;
    sq += static_cast<double>(e) * e;
  }
  for (float c : confs) csum += c;
  const double n = static_cast<double>(r.per_chip.size());
  r.mean_rerr = static_cast<float>(sum / n);
  const double var = std::max(0.0, sq / n - (sum / n) * (sum / n));
  r.std_rerr = static_cast<float>(std::sqrt(var * n / std::max(1.0, n - 1)));
  r.mean_confidence = static_cast<float>(csum / n);
  return r;
}

// The legacy robust_error pipeline (fresh clone per chip, scalar injection).
// Code-space legacy loops deploy through the same weight-space/on-codes
// switch the evaluator uses so the regression stays a pipeline-identity
// check under BER_COMPUTE_ON_CODES=1 too.
RobustResult legacy_robust_error(Sequential& model, const QuantScheme& scheme,
                                 const Dataset& data,
                                 const BitErrorConfig& config, int n_chips,
                                 std::uint64_t seed_base) {
  NetQuantizer quantizer(scheme);
  const NetSnapshot base = quantizer.quantize(model.params());
  std::vector<float> errs, confs;
  for (int c = 0; c < n_chips; ++c) {
    Sequential clone(model);
    NetSnapshot snap = base;
    inject_random_bit_errors_scalar(snap, config,
                                    seed_base + static_cast<std::uint64_t>(c));
    deploy_snapshot(snap, param_slots(clone), compute_on_codes_default());
    const EvalResult r = evaluate(clone, data);
    errs.push_back(r.error);
    confs.push_back(r.confidence);
  }
  return legacy_summarize(std::move(errs), std::move(confs));
}

RobustResult legacy_robust_error_profiled(Sequential& model,
                                          const QuantScheme& scheme,
                                          const Dataset& data,
                                          const ProfiledChip& chip, double v,
                                          int n_offsets) {
  NetQuantizer quantizer(scheme);
  const NetSnapshot base = quantizer.quantize(model.params());
  std::vector<float> errs, confs;
  for (int i = 0; i < n_offsets; ++i) {
    Sequential clone(model);
    NetSnapshot snap = base;
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(i) * 7919ULL * 64ULL) %
        static_cast<std::uint64_t>(chip.num_cells());
    chip.apply(snap, v, offset);
    deploy_snapshot(snap, param_slots(clone), compute_on_codes_default());
    const EvalResult r = evaluate(clone, data);
    errs.push_back(r.error);
    confs.push_back(r.confidence);
  }
  return legacy_summarize(std::move(errs), std::move(confs));
}

RobustResult legacy_linf_weight_noise_error(Sequential& model,
                                            const Dataset& data,
                                            double rel_eps, int n_samples,
                                            std::uint64_t seed_base) {
  std::vector<float> errs, confs;
  for (int s = 0; s < n_samples; ++s) {
    Sequential clone(model);
    Rng rng(hash_mix(seed_base, static_cast<std::uint64_t>(s), 0x11FFULL));
    for (Param* p : clone.params()) {
      const float range = p->value.abs_max();
      const float eps = static_cast<float>(rel_eps) * range;
      for (long i = 0; i < p->value.numel(); ++i) {
        p->value[i] += static_cast<float>(rng.uniform(-eps, eps));
      }
    }
    const EvalResult r = evaluate(clone, data);
    errs.push_back(r.error);
    confs.push_back(r.confidence);
  }
  return legacy_summarize(std::move(errs), std::move(confs));
}

void expect_same_result(const RobustResult& now, const RobustResult& legacy) {
  EXPECT_EQ(now.per_chip, legacy.per_chip);
  EXPECT_FLOAT_EQ(now.mean_rerr, legacy.mean_rerr);
  EXPECT_FLOAT_EQ(now.std_rerr, legacy.std_rerr);
  EXPECT_FLOAT_EQ(now.mean_confidence, legacy.mean_confidence);
}

TEST(FaultRegression, RobustErrorUnchanged) {
  Fixture f;
  const QuantScheme scheme = QuantScheme::rquant(8);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  expect_same_result(
      robust_error(*f.model, scheme, f.data, cfg, 5, /*seed_base=*/1000),
      legacy_robust_error(*f.model, scheme, f.data, cfg, 5, 1000));
}

TEST(FaultRegression, RobustErrorProfiledUnchanged) {
  Fixture f;
  const QuantScheme scheme = QuantScheme::rquant(8);
  ProfiledChipConfig cc = ProfiledChipConfig::chip2();
  cc.rows = 512;
  cc.cols = 64;
  const ProfiledChip chip(cc);
  expect_same_result(
      robust_error_profiled(*f.model, scheme, f.data, chip, 0.84, 4),
      legacy_robust_error_profiled(*f.model, scheme, f.data, chip, 0.84, 4));
}

TEST(FaultRegression, LinfWeightNoiseErrorUnchanged) {
  Fixture f;
  expect_same_result(
      linf_weight_noise_error(*f.model, f.data, 0.1, 4, /*seed_base=*/2000),
      legacy_linf_weight_noise_error(*f.model, f.data, 0.1, 4, 2000));
}

// The legacy ECC baseline loop (pre-refactor bench_ecc_baseline.cpp).
RobustResult legacy_rerr_with_secded(Sequential& model,
                                     const QuantScheme& scheme,
                                     const Dataset& data, double p,
                                     int chips) {
  NetQuantizer quantizer(scheme);
  const NetSnapshot base = quantizer.quantize(model.params());
  std::vector<float> errs, confs;
  for (int chip = 0; chip < chips; ++chip) {
    NetSnapshot snap = base;
    Rng rng(hash_mix(7777, static_cast<std::uint64_t>(chip), 1));
    for (auto& qt : snap.tensors) {
      for (std::size_t w0 = 0; w0 < qt.codes.size(); w0 += 8) {
        std::uint64_t data_word = 0;
        const std::size_t count =
            std::min<std::size_t>(8, qt.codes.size() - w0);
        for (std::size_t j = 0; j < count; ++j) {
          data_word |= static_cast<std::uint64_t>(qt.codes[w0 + j] & 0xFF)
                       << (8 * j);
        }
        SecdedWord word = secded_encode(data_word);
        for (int bit = 0; bit < 72; ++bit) {
          if (rng.bernoulli(p)) secded_flip(word, bit);
        }
        const SecdedResult decoded = secded_decode(word);
        for (std::size_t j = 0; j < count; ++j) {
          qt.codes[w0 + j] =
              static_cast<std::uint16_t>((decoded.data >> (8 * j)) & 0xFF);
        }
      }
    }
    Sequential clone(model);
    deploy_snapshot(snap, param_slots(clone), compute_on_codes_default());
    const EvalResult r = evaluate(clone, data);
    errs.push_back(r.error);
    confs.push_back(r.confidence);
  }
  return legacy_summarize(std::move(errs), std::move(confs));
}

TEST(FaultRegression, EccProtectedModelMatchesLegacyBenchLoop) {
  Fixture f;
  const QuantScheme scheme = QuantScheme::rquant(8);
  for (double p : {0.001, 0.01}) {
    const EccProtectedModel fault(p);
    const RobustResult now =
        RobustnessEvaluator(*f.model, scheme).run(fault, f.data, 3);
    const RobustResult legacy =
        legacy_rerr_with_secded(*f.model, scheme, f.data, p, 3);
    expect_same_result(now, legacy);
  }
}

// ------------------------------------------------------------- evaluator ---

TEST(RobustnessEvaluator, RateSweepMatchesIndividualRuns) {
  Fixture f;
  const QuantScheme scheme = QuantScheme::rquant(8);
  const std::vector<double> grid{0.001, 0.005, 0.02};
  BitErrorConfig cfg;
  cfg.p = 0.02;
  const RandomBitErrorModel fault(cfg, /*seed_base=*/1000);
  const auto sweep =
      RobustnessEvaluator(*f.model, scheme).run_rate_sweep(fault, grid, f.data, 4);
  ASSERT_EQ(sweep.size(), grid.size());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    BitErrorConfig at_p = cfg;
    at_p.p = grid[i];
    const RobustResult single =
        robust_error(*f.model, scheme, f.data, at_p, 4, 1000);
    EXPECT_EQ(sweep[i].per_chip, single.per_chip) << "p=" << grid[i];
  }
}

TEST(RobustnessEvaluator, ModelLeftUntouched) {
  Fixture f;
  const float before = f.model->params()[0]->value[0];
  BitErrorConfig cfg;
  cfg.p = 0.05;
  RobustnessEvaluator evaluator(*f.model, QuantScheme::rquant(8));
  evaluator.run(RandomBitErrorModel(cfg), f.data, 3);
  evaluator.run(EccProtectedModel(0.01), f.data, 2);
  EXPECT_EQ(f.model->params()[0]->value[0], before);

  RobustnessEvaluator float_eval(*f.model);
  float_eval.run(LinfNoiseModel(0.2), f.data, 3);
  EXPECT_EQ(f.model->params()[0]->value[0], before);
}

TEST(RobustnessEvaluator, FloatEvaluatorRejectsCodeSpaceModels) {
  Fixture f;
  BitErrorConfig cfg;
  RobustnessEvaluator evaluator(*f.model);
  EXPECT_THROW(evaluator.run(RandomBitErrorModel(cfg), f.data, 2),
               std::invalid_argument);
}

TEST(RobustnessEvaluator, WeightSpaceModelOnQuantizedEvaluator) {
  // A kFloatWeights model on a quantizing evaluator perturbs the dequantized
  // weights; at eps=0 this equals the quantized clean error for every trial.
  Fixture f;
  const QuantScheme scheme = QuantScheme::rquant(8);
  const RobustResult r =
      RobustnessEvaluator(*f.model, scheme).run(LinfNoiseModel(0.0), f.data, 3);
  const float qerr = test_error(*f.model, f.data, &scheme);
  for (float e : r.per_chip) EXPECT_EQ(e, qerr);
}

TEST(EccProtectedModel, ComposesWithPersistentInnerModel) {
  const NetSnapshot clean = make_snapshot(4000, 8);
  BitErrorConfig cfg;
  cfg.p = 0.02;
  const EccProtectedModel fault(std::make_unique<RandomBitErrorModel>(cfg));
  NetSnapshot a = clean, b = clean;
  const std::size_t changed_a = fault.apply(a, /*trial=*/0);
  fault.apply(b, /*trial=*/0);
  EXPECT_EQ(a.tensors[0].codes, b.tensors[0].codes);  // deterministic
  EXPECT_GT(changed_a, 0u);
  NetSnapshot c = clean;
  fault.apply(c, /*trial=*/1);  // different trial, different faults
  EXPECT_NE(a.tensors[0].codes, c.tensors[0].codes);
}

TEST(EccProtectedModel, WideCodesRejectedOnCallingThread) {
  // The evaluator must surface the layout error as a catchable exception
  // (thrown before trials fan out to worker threads).
  Fixture f;
  const EccProtectedModel fault(0.01);
  RobustnessEvaluator evaluator(*f.model, QuantScheme::rquant(12));
  EXPECT_THROW(evaluator.run(fault, f.data, 4), std::invalid_argument);
}

TEST(EccProtectedModel, SubByteCodesStayInRange) {
  // With 4-bit codes packed one per byte, faults on the byte's padding bits
  // may defeat ECC correction but must never leak into the stored code.
  const NetSnapshot clean = make_snapshot(4000, 4);
  const EccProtectedModel fault(0.02);
  NetSnapshot snap = clean;
  fault.apply(snap, 1);
  for (std::uint16_t code : snap.tensors[0].codes) EXPECT_LT(code, 16u);
}

TEST(EccProtectedModel, RejectsInnerWithoutCodewordFaults) {
  EXPECT_THROW(EccProtectedModel(std::make_unique<LinfNoiseModel>(0.1)),
               std::invalid_argument);
}

TEST(EccProtectedModel, CorrectsEverythingAtTinyRates) {
  // At p small enough that multi-bit words are vanishingly rare, SECDED
  // repairs (almost surely) every word.
  const NetSnapshot clean = make_snapshot(2000, 8);
  const EccProtectedModel fault(1e-5);
  NetSnapshot snap = clean;
  fault.apply(snap, 3);
  EXPECT_EQ(snap.tensors[0].codes, clean.tensors[0].codes);
}

TEST(StreamingMoments, MatchesClosedForm) {
  StreamingMoments m;
  for (double x : {1.0, 2.0, 3.0, 4.0}) m.add(x);
  EXPECT_EQ(m.count(), 4);
  EXPECT_DOUBLE_EQ(m.mean(), 2.5);
  // Sample variance of {1,2,3,4} is 5/3.
  EXPECT_NEAR(m.sample_std(), std::sqrt(5.0 / 3.0), 1e-12);
}

}  // namespace
}  // namespace ber
