// Property-based sweeps over quantization schemes and precisions: roundtrip
// error bounds, idempotence and net-level behaviour.
#include <gtest/gtest.h>

#include <cmath>

#include "core/rng.h"
#include "models/factory.h"
#include "nn/init.h"
#include "quant/net_quantizer.h"
#include "quant/quantizer.h"

namespace ber {
namespace {

struct SchemeCase {
  QuantScheme scheme;
  const char* label;
};

class QuantProperty
    : public ::testing::TestWithParam<std::tuple<SchemeCase, int>> {};

QuantScheme with_bits(QuantScheme s, int bits) {
  s.bits = bits;
  return s;
}

TEST_P(QuantProperty, RoundTripErrorBounded) {
  const auto [sc, bits] = GetParam();
  const QuantScheme scheme = with_bits(sc.scheme, bits);
  Rng rng(bits * 31 + 7);
  std::vector<float> w(3000);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-0.8, 0.6));

  const QuantizedTensor qt = quantize(w, scheme);
  std::vector<float> back(w.size());
  dequantize(qt, back);

  // Bound the per-weight error by the step size in the ORIGINAL domain:
  // delta for symmetric schemes; delta * (range/2) after the N-transform.
  const float range = qt.range.qmax - qt.range.qmin;
  const float step = scheme.asymmetric
                         ? quant_delta(scheme, qt.range) * range * 0.5f
                         : quant_delta(scheme, qt.range);
  const float bound = scheme.rounded ? 0.5f * step : step;
  for (std::size_t i = 0; i < w.size(); ++i) {
    EXPECT_LE(std::abs(back[i] - w[i]), bound * 1.001f)
        << sc.label << " m=" << bits << " i=" << i;
  }
}

TEST_P(QuantProperty, Idempotent) {
  const auto [sc, bits] = GetParam();
  const QuantScheme scheme = with_bits(sc.scheme, bits);
  Rng rng(bits * 13 + 3);
  std::vector<float> w(500);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));

  const QuantizedTensor q1 = quantize(w, scheme);
  std::vector<float> d1(w.size());
  dequantize(q1, d1);
  // Re-quantizing the dequantized values with the same range is the identity
  // for ROUNDED schemes. Truncation is not idempotent in float arithmetic:
  // a value epsilon below its grid point truncates one level down — one of
  // the reasons the paper's RQUANT insists on proper rounding. For trunc we
  // therefore only bound the drift to one level.
  const QuantizedTensor q2 = quantize(d1, scheme, q1.range);
  auto level = [&](std::uint16_t code) {
    return static_cast<long>(
        std::lround(decode_code(code, scheme, q1.range) / 1e-6f));
  };
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (scheme.rounded) {
      EXPECT_EQ(q1.codes[i], q2.codes[i]) << sc.label << " m=" << bits;
    } else {
      const float a = decode_code(q1.codes[i], scheme, q1.range);
      const float b = decode_code(q2.codes[i], scheme, q1.range);
      const float step = scheme.asymmetric
                             ? quant_delta(scheme, q1.range) *
                                   (q1.range.qmax - q1.range.qmin) * 0.5f
                             : quant_delta(scheme, q1.range);
      EXPECT_LE(std::abs(a - b), step * 1.001f) << sc.label << " m=" << bits;
    }
  }
  (void)level;
}

TEST_P(QuantProperty, PreservesOrderOfValues) {
  const auto [sc, bits] = GetParam();
  const QuantScheme scheme = with_bits(sc.scheme, bits);
  std::vector<float> w;
  for (int i = 0; i < 10; ++i) w.push_back(-0.9f + 0.2f * i);
  const QuantizedTensor qt = quantize(w, scheme);
  std::vector<float> back(w.size());
  dequantize(qt, back);
  // Quantization never reorders: non-decreasing always; strictly increasing
  // whenever the spacing exceeds two steps in the original domain.
  const float step = scheme.asymmetric
                         ? quant_delta(scheme, qt.range) *
                               (qt.range.qmax - qt.range.qmin) * 0.5f
                         : quant_delta(scheme, qt.range);
  for (std::size_t i = 1; i < back.size(); ++i) {
    EXPECT_LE(back[i - 1], back[i]) << sc.label << " m=" << bits;
    if (0.2f > 2.0f * step) {
      EXPECT_LT(back[i - 1], back[i]) << sc.label << " m=" << bits;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SchemesAndBits, QuantProperty,
    ::testing::Combine(
        ::testing::Values(
            SchemeCase{QuantScheme::normal(), "normal"},
            SchemeCase{QuantScheme::symmetric_rounded(), "sym-round"},
            SchemeCase{QuantScheme::rquant_trunc(), "rquant-trunc"},
            SchemeCase{QuantScheme::rquant(), "rquant"},
            SchemeCase{{8, RangeScope::kPerTensor, true, false, true},
                       "asym-signed-round"}),
        ::testing::Values(2, 3, 4, 6, 8, 12)));

TEST(NetQuantizer, PerTensorRangesDiffer) {
  ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 8;
  mc.width = 4;
  auto model = build_model(mc);
  Rng rng(3);
  he_init(*model, rng);
  NetQuantizer q(QuantScheme::rquant(8));
  const NetSnapshot snap = q.quantize(model->params());
  EXPECT_EQ(snap.tensors.size(), model->params().size());
  // At least two tensors should have different ranges (conv vs bias).
  bool differ = false;
  for (std::size_t i = 1; i < snap.tensors.size(); ++i) {
    if (snap.tensors[i].range.qmax != snap.tensors[0].range.qmax) differ = true;
  }
  EXPECT_TRUE(differ);
}

TEST(NetQuantizer, GlobalScopeSharesOneRange) {
  ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 8;
  mc.width = 4;
  auto model = build_model(mc);
  Rng rng(4);
  he_init(*model, rng);
  NetQuantizer q(QuantScheme::global_symmetric(8));
  const NetSnapshot snap = q.quantize(model->params());
  for (const auto& t : snap.tensors) {
    EXPECT_EQ(t.range.qmax, snap.tensors[0].range.qmax);
    EXPECT_EQ(t.range.qmin, snap.tensors[0].range.qmin);
  }
}

TEST(NetQuantizer, OffsetsAreCumulative) {
  ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 8;
  mc.width = 4;
  auto model = build_model(mc);
  Rng rng(5);
  he_init(*model, rng);
  NetQuantizer q(QuantScheme::rquant(8));
  const NetSnapshot snap = q.quantize(model->params());
  std::size_t expect = 0;
  for (std::size_t i = 0; i < snap.tensors.size(); ++i) {
    EXPECT_EQ(snap.offsets[i], expect);
    expect += snap.tensors[i].size();
  }
  EXPECT_EQ(snap.total_weights(), expect);
  EXPECT_EQ(static_cast<long>(expect), model->num_weights());
}

TEST(NetQuantizer, WriteDequantizedRoundTrips) {
  ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 8;
  mc.width = 4;
  auto model = build_model(mc);
  Rng rng(6);
  he_init(*model, rng);
  const auto params = model->params();
  WeightStash stash;
  stash.save(params);

  NetQuantizer q(QuantScheme::rquant(8));
  const NetSnapshot snap = q.quantize(params);
  q.write_dequantized(snap, params);
  // All weights must now be within half a step of the originals.
  // (Just verify they moved only slightly and stash restores exactly.)
  q.write_dequantized(snap, params);  // idempotent write
  stash.restore(params);
  // After restore, re-quantizing gives the identical snapshot.
  const NetSnapshot snap2 = q.quantize(params);
  for (std::size_t t = 0; t < snap.tensors.size(); ++t) {
    EXPECT_EQ(snap.tensors[t].codes, snap2.tensors[t].codes);
  }
}

TEST(WeightStashTest, RestoreMismatchThrows) {
  ModelConfig mc;
  mc.in_channels = 1;
  mc.image_size = 8;
  mc.width = 4;
  auto model = build_model(mc);
  WeightStash stash;
  stash.save(model->params());
  std::vector<Param*> fewer(model->params());
  fewer.pop_back();
  EXPECT_THROW(stash.restore(fewer), std::invalid_argument);
}

}  // namespace
}  // namespace ber
