// Tests for the tensor container and compute kernels (GEMM, im2col/col2im,
// softmax). GEMM variants are validated against a naive reference over a
// parameterized sweep of shapes.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "core/rng.h"
#include "tensor/ops.h"
#include "tensor/tensor.h"

namespace ber {
namespace {

TEST(Tensor, ConstructionAndShape) {
  Tensor t({2, 3, 4});
  EXPECT_EQ(t.numel(), 24);
  EXPECT_EQ(t.dim(), 3);
  EXPECT_EQ(t.shape(0), 2);
  EXPECT_EQ(t.shape(2), 4);
  EXPECT_EQ(t.shape_str(), "[2,3,4]");
  for (long i = 0; i < t.numel(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, NegativeDimensionThrows) {
  EXPECT_THROW(Tensor({2, -1}), std::invalid_argument);
}

TEST(Tensor, FullAndFill) {
  Tensor t = Tensor::full({5}, 2.5f);
  EXPECT_EQ(t[4], 2.5f);
  t.fill(-1.0f);
  EXPECT_EQ(t[0], -1.0f);
}

TEST(Tensor, FromDataAndMismatch) {
  Tensor t = Tensor::from_data({2, 2}, {1, 2, 3, 4});
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_THROW(Tensor::from_data({2, 2}, {1, 2, 3}), std::invalid_argument);
}

TEST(Tensor, At4d) {
  Tensor t({2, 3, 4, 5});
  t.at(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[t.numel() - 1], 7.0f);
}

TEST(Tensor, ReshapeInference) {
  Tensor t({2, 3, 4});
  Tensor r = t.reshaped({6, -1});
  EXPECT_EQ(r.shape(1), 4);
  EXPECT_THROW(t.reshaped({5, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshaped({-1, -1}), std::invalid_argument);
  EXPECT_THROW(t.reshaped({25}), std::invalid_argument);
}

TEST(Tensor, AxpyScaleClamp) {
  Tensor a = Tensor::from_data({3}, {1, 2, 3});
  Tensor b = Tensor::from_data({3}, {10, 20, 30});
  a.axpy(0.5f, b);
  EXPECT_EQ(a[2], 18.0f);
  a.scale(2.0f);
  EXPECT_EQ(a[0], 12.0f);
  a.clamp(0.0f, 25.0f);
  EXPECT_EQ(a[2], 25.0f);
  Tensor c({2});
  EXPECT_THROW(a.axpy(1.0f, c), std::invalid_argument);
}

TEST(Tensor, Reductions) {
  Tensor t = Tensor::from_data({4}, {-3, 1, 2, -1});
  EXPECT_EQ(t.min(), -3.0f);
  EXPECT_EQ(t.max(), 2.0f);
  EXPECT_EQ(t.abs_max(), 3.0f);
  EXPECT_EQ(t.sum(), -1.0);
  EXPECT_EQ(t.mean(), -0.25);
}

TEST(Tensor, RandnMoments) {
  Rng rng(3);
  Tensor t = Tensor::randn({10000}, rng, 2.0f);
  EXPECT_NEAR(t.mean(), 0.0, 0.1);
  double sq = 0.0;
  for (long i = 0; i < t.numel(); ++i) sq += static_cast<double>(t[i]) * t[i];
  EXPECT_NEAR(std::sqrt(sq / t.numel()), 2.0, 0.1);
}

// ----- GEMM reference checks (parameterized over shapes) -----

void naive_gemm(long m, long n, long k, const float* a, const float* b,
                float* c) {
  for (long i = 0; i < m; ++i) {
    for (long j = 0; j < n; ++j) {
      double acc = 0.0;
      for (long p = 0; p < k; ++p) {
        acc += static_cast<double>(a[i * k + p]) * b[p * n + j];
      }
      c[i * n + j] = static_cast<float>(acc);
    }
  }
}

class GemmShapes : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(GemmShapes, MatchesNaiveReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 100 + n * 10 + k);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n}), ref({m, n});
  gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (long i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST_P(GemmShapes, TransposedAMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(m + n + k);
  Tensor at = Tensor::randn({k, m}, rng);  // stored transposed
  Tensor b = Tensor::randn({k, n}, rng);
  Tensor c({m, n}), ref({m, n});
  // Build the untransposed A for the reference.
  Tensor a({m, k});
  for (long i = 0; i < m; ++i) {
    for (long p = 0; p < k; ++p) a.at(i, p) = at.at(p, i);
  }
  gemm_at(m, n, k, 1.0f, at.data(), b.data(), 0.0f, c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (long i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

TEST_P(GemmShapes, TransposedBMatchesReference) {
  const auto [m, n, k] = GetParam();
  Rng rng(m * 7 + n * 3 + k);
  Tensor a = Tensor::randn({m, k}, rng);
  Tensor bt = Tensor::randn({n, k}, rng);  // stored transposed
  Tensor b({k, n});
  for (long p = 0; p < k; ++p) {
    for (long j = 0; j < n; ++j) b.at(p, j) = bt.at(j, p);
  }
  Tensor c({m, n}), ref({m, n});
  gemm_bt(m, n, k, 1.0f, a.data(), bt.data(), 0.0f, c.data());
  naive_gemm(m, n, k, a.data(), b.data(), ref.data());
  for (long i = 0; i < c.numel(); ++i) EXPECT_NEAR(c[i], ref[i], 1e-3f);
}

INSTANTIATE_TEST_SUITE_P(Shapes, GemmShapes,
                         ::testing::Values(std::make_tuple(1, 1, 1),
                                           std::make_tuple(3, 5, 7),
                                           std::make_tuple(8, 8, 8),
                                           std::make_tuple(16, 33, 9),
                                           std::make_tuple(24, 144, 108),
                                           std::make_tuple(2, 64, 1)));

TEST(Gemm, AlphaBetaSemantics) {
  Tensor a = Tensor::from_data({1, 2}, {1, 2});
  Tensor b = Tensor::from_data({2, 1}, {3, 4});
  Tensor c = Tensor::from_data({1, 1}, {100});
  gemm(1, 1, 2, 2.0f, a.data(), b.data(), 1.0f, c.data());
  EXPECT_EQ(c[0], 100.0f + 2.0f * 11.0f);
  gemm(1, 1, 2, 1.0f, a.data(), b.data(), 0.0f, c.data());
  EXPECT_EQ(c[0], 11.0f);
}

// ----- im2col / col2im -----

TEST(Im2col, KnownSmallCase) {
  // 1 channel 3x3 image, 3x3 kernel, pad 1: center column equals the image.
  Tensor img = Tensor::from_data({1, 3, 3}, {1, 2, 3, 4, 5, 6, 7, 8, 9});
  const long oh = conv_out_size(3, 3, 1, 1);
  ASSERT_EQ(oh, 3);
  Tensor col({9, 9});
  im2col(img.data(), 1, 3, 3, 3, 3, 1, 1, col.data());
  // Row 4 (kernel center, ki=1, kj=1) reproduces the image.
  for (long i = 0; i < 9; ++i) EXPECT_EQ(col.at(4, i), img[i]);
  // Row 0 (ki=0, kj=0) is the image shifted down-right with zero padding.
  EXPECT_EQ(col.at(0, 0), 0.0f);
  EXPECT_EQ(col.at(0, 4), 1.0f);
  EXPECT_EQ(col.at(0, 8), 5.0f);
}

TEST(Im2col, StrideTwoShapes) {
  Tensor img({2, 4, 4});
  for (long i = 0; i < img.numel(); ++i) img[i] = static_cast<float>(i);
  const long oh = conv_out_size(4, 2, 2, 0);
  ASSERT_EQ(oh, 2);
  Tensor col({2 * 2 * 2, oh * oh});
  im2col(img.data(), 2, 4, 4, 2, 2, 2, 0, col.data());
  // First row = top-left element of each 2x2 window of channel 0.
  EXPECT_EQ(col.at(0, 0), 0.0f);
  EXPECT_EQ(col.at(0, 1), 2.0f);
  EXPECT_EQ(col.at(0, 2), 8.0f);
  EXPECT_EQ(col.at(0, 3), 10.0f);
}

TEST(Col2im, AdjointOfIm2col) {
  // <col, im2col(img)> == <col2im(col), img> for random operands — the
  // defining property that makes conv backward correct.
  Rng rng(17);
  const long c = 3, h = 5, w = 4, kh = 3, kw = 3, stride = 1, pad = 1;
  const long oh = conv_out_size(h, kh, stride, pad);
  const long ow = conv_out_size(w, kw, stride, pad);
  Tensor img = Tensor::randn({c, h, w}, rng);
  Tensor col({c * kh * kw, oh * ow});
  im2col(img.data(), c, h, w, kh, kw, stride, pad, col.data());

  Tensor rand_col = Tensor::randn(col.shape(), rng);
  Tensor back = Tensor::zeros({c, h, w});
  col2im(rand_col.data(), c, h, w, kh, kw, stride, pad, back.data());

  double lhs = 0.0, rhs = 0.0;
  for (long i = 0; i < col.numel(); ++i) {
    lhs += static_cast<double>(rand_col[i]) * col[i];
  }
  for (long i = 0; i < img.numel(); ++i) {
    rhs += static_cast<double>(back[i]) * img[i];
  }
  EXPECT_NEAR(lhs, rhs, 1e-3 * std::max(1.0, std::abs(lhs)));
}

TEST(Softmax, RowsSumToOne) {
  Rng rng(5);
  Tensor logits = Tensor::randn({7, 10}, rng, 3.0f);
  softmax_rows(logits);
  for (long r = 0; r < 7; ++r) {
    double sum = 0.0;
    for (long c = 0; c < 10; ++c) {
      EXPECT_GE(logits.at(r, c), 0.0f);
      sum += logits.at(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(Softmax, LargeLogitsStable) {
  Tensor logits = Tensor::from_data({1, 3}, {1000.0f, 999.0f, -1000.0f});
  softmax_rows(logits);
  EXPECT_FALSE(std::isnan(logits[0]));
  EXPECT_GT(logits.at(0, 0), logits.at(0, 1));
  EXPECT_NEAR(logits.at(0, 2), 0.0f, 1e-6f);
}

TEST(Softmax, ArgmaxRow) {
  Tensor m = Tensor::from_data({2, 3}, {1, 5, 2, 9, 0, 3});
  EXPECT_EQ(argmax_row(m, 0), 1);
  EXPECT_EQ(argmax_row(m, 1), 0);
}

TEST(ConvOutSize, Arithmetic) {
  EXPECT_EQ(conv_out_size(12, 3, 1, 1), 12);
  EXPECT_EQ(conv_out_size(12, 2, 2, 0), 6);
  EXPECT_EQ(conv_out_size(5, 3, 1, 0), 3);
}

}  // namespace
}  // namespace ber
