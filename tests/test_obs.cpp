// Tests for the src/obs/ observability subsystem: histogram bucket geometry
// and quantile accuracy vs an exact sort, counter/gauge concurrency, the
// registry's canonical keys / kind checks / JSON round-trip, trace JSON
// well-formedness and span nesting, kernel profiling counters, and the
// disabled-path overhead contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <numeric>
#include <random>
#include <thread>
#include <vector>

#include "ber.h"

namespace {

using namespace ber;
using obs::Histogram;

// Serialize-then-reparse exercises the exporter and the dump in one go.
std::string trace_json_text() { return obs::trace_json().dump(2); }

// ----------------------------------------------------- bucket geometry ---

TEST(ObsHistogram, BucketBoundariesConsistent) {
  // Every bucket's lower bound must map back to its own index, and the
  // value just below the (exclusive) upper bound must too.
  for (std::size_t idx = 0; idx < 1500; ++idx) {
    const std::uint64_t lo = Histogram::bucket_lower(idx);
    const std::uint64_t hi = Histogram::bucket_upper(idx);
    ASSERT_LT(lo, hi) << "idx=" << idx;
    EXPECT_EQ(Histogram::bucket_index(lo), idx) << "lo=" << lo;
    EXPECT_EQ(Histogram::bucket_index(hi - 1), idx) << "hi=" << hi;
  }
}

TEST(ObsHistogram, BucketIndexMonotone) {
  std::uint64_t prev_idx = 0;
  for (std::uint64_t v = 0; v < (1u << 14); ++v) {
    const std::size_t idx = Histogram::bucket_index(v);
    EXPECT_GE(idx, prev_idx) << "v=" << v;
    prev_idx = idx;
  }
  // Spot checks: values below kSub land in exact unit buckets.
  EXPECT_EQ(Histogram::bucket_index(0), 0u);
  EXPECT_EQ(Histogram::bucket_index(static_cast<std::uint64_t>(
                Histogram::kSub - 1)),
            static_cast<std::size_t>(Histogram::kSub - 1));
  // Relative bucket width above the linear range is at most 1/kSub.
  for (std::size_t idx = Histogram::kSub; idx < 1500; ++idx) {
    const double lo = static_cast<double>(Histogram::bucket_lower(idx));
    const double hi = static_cast<double>(Histogram::bucket_upper(idx));
    EXPECT_LE((hi - lo) / lo, 1.0 / Histogram::kSub + 1e-12) << "idx=" << idx;
  }
}

TEST(ObsHistogram, ExtremeValues) {
  Histogram h;
  h.record(0.0);
  h.record(-5.0);  // clamps to 0
  h.record(1e18);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, 3u);
  EXPECT_DOUBLE_EQ(s.max, 1e18);
  EXPECT_EQ(h.snapshot().quantile(0.0), 0.0);
}

// -------------------------------------------- quantiles vs exact sort ---

TEST(ObsHistogram, QuantileAccuracyVsExactSort) {
  std::mt19937 rng(7);
  std::lognormal_distribution<double> dist(6.0, 1.5);  // latency-shaped
  Histogram h;
  std::vector<double> samples;
  samples.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = std::round(dist(rng));
    samples.push_back(v);
    h.record(v);
  }
  std::sort(samples.begin(), samples.end());
  const Histogram::Snapshot s = h.snapshot();
  for (const double q : {0.5, 0.9, 0.99, 0.999}) {
    const double exact =
        samples[static_cast<std::size_t>(q * (samples.size() - 1))];
    const double approx = s.quantile(q);
    // Bucket width is <= ~3.2%; allow 5% for interpolation + rank effects.
    EXPECT_NEAR(approx, exact, 0.05 * exact) << "q=" << q;
  }
  EXPECT_NEAR(s.mean(),
              std::accumulate(samples.begin(), samples.end(), 0.0) /
                  static_cast<double>(samples.size()),
              1e-6);
}

TEST(ObsHistogram, SnapshotDeltaIsolatesWindow) {
  Histogram h;
  for (int i = 0; i < 100; ++i) h.record(10.0);
  const Histogram::Snapshot before = h.snapshot();
  for (int i = 0; i < 50; ++i) h.record(1000.0);
  const Histogram::Snapshot delta = h.snapshot() - before;
  EXPECT_EQ(delta.count, 50u);
  EXPECT_DOUBLE_EQ(delta.sum, 50 * 1000.0);
  // The window's p50 sees only the new samples.
  EXPECT_NEAR(delta.quantile(0.5), 1000.0, 0.05 * 1000.0);
}

// ----------------------------------------------------------- concurrency ---

TEST(ObsConcurrency, CountersAndGaugesExactUnderContention) {
  obs::Counter c;
  obs::Gauge g;
  Histogram h;
  constexpr int kThreads = 8, kPer = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPer; ++i) {
        c.add(1);
        g.add(1.0);
        g.set_max(static_cast<double>(t * kPer + i));
        h.record(static_cast<double>(i % 1024));
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPer);
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_EQ(s.count, static_cast<std::uint64_t>(kThreads) * kPer);
}

TEST(ObsGauge, SetMaxIsMonotone) {
  obs::Gauge g;
  g.set_max(5.0);
  g.set_max(3.0);
  EXPECT_DOUBLE_EQ(g.value(), 5.0);
  g.set_max(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.set(1.0);  // plain set is not monotone
  EXPECT_DOUBLE_EQ(g.value(), 1.0);
}

// -------------------------------------------------------------- registry ---

TEST(ObsRegistry, CanonicalKeysAndStableHandles) {
  EXPECT_EQ(obs::metric_key("m", {}), "m");
  // Labels sort by key regardless of call-site order.
  EXPECT_EQ(obs::metric_key("m", {{"b", "2"}, {"a", "1"}}),
            "m{a=\"1\",b=\"2\"}");
  obs::Counter& c1 =
      obs::registry().counter("test_obs.stable", {{"x", "1"}, {"y", "2"}});
  obs::Counter& c2 =
      obs::registry().counter("test_obs.stable", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&c1, &c2);
  // Same key as a different kind must throw, not alias.
  EXPECT_THROW(
      obs::registry().gauge("test_obs.stable", {{"x", "1"}, {"y", "2"}}),
      std::invalid_argument);
}

TEST(ObsRegistry, SnapshotRoundTripsThroughJson) {
  obs::registry().counter("test_obs.rt_counter").add(42);
  obs::registry().gauge("test_obs.rt_gauge").set(2.5);
  obs::Histogram& h =
      obs::registry().histogram("test_obs.rt_hist", {{"k", "v"}});
  for (int i = 1; i <= 100; ++i) h.record(static_cast<double>(i));

  const Json snap = obs::registry().to_json();
  ASSERT_TRUE(snap.is_object());
  const Json reparsed = Json::parse(snap.dump(2));
  EXPECT_EQ(reparsed, snap);

  EXPECT_EQ(snap.at("counters").at("test_obs.rt_counter").as_int(), 42);
  EXPECT_DOUBLE_EQ(snap.at("gauges").at("test_obs.rt_gauge").as_number(), 2.5);
  const Json& hj = snap.at("histograms").at("test_obs.rt_hist{k=\"v\"}");
  EXPECT_EQ(hj.at("count").as_int(), 100);
  EXPECT_GT(hj.at("p99").as_number(), hj.at("p50").as_number());

  // Prometheus exposition mentions the instruments too.
  const std::string prom = obs::registry().to_prometheus();
  EXPECT_NE(prom.find("test_obs_rt_counter"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
}

TEST(ObsRegistry, ResetZeroesValuesKeepsHandles) {
  obs::Counter& c = obs::registry().counter("test_obs.reset_me");
  c.add(7);
  obs::registry().reset();
  EXPECT_EQ(c.value(), 0u);
  c.add(3);  // handle still live
  EXPECT_EQ(c.value(), 3u);
}

// ---------------------------------------------------------------- tracing ---

TEST(ObsTrace, SpansNestAndExportWellFormedJson) {
  obs::start_tracing();
  obs::set_thread_name("test-main");
  {
    BER_TRACE_SCOPE_ARGS("testcat", "outer", {"n", 3});
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
    {
      BER_TRACE_SCOPE("testcat", "inner");
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    BER_TRACE_INSTANT("othercat", "marker", {"note", "hi"});
  }
  obs::stop_tracing();

  const Json trace = Json::parse(trace_json_text());
  ASSERT_TRUE(trace.is_object());
  const Json& events = trace.at("traceEvents");
  ASSERT_TRUE(events.is_array());

  const Json *outer = nullptr, *inner = nullptr, *marker = nullptr;
  int categories_seen = 0;
  std::vector<std::string> cats;
  for (const Json& ev : events.items()) {
    ASSERT_TRUE(ev.contains("ph"));
    ASSERT_TRUE(ev.contains("ts"));
    const std::string name = ev.at("name").as_string();
    if (name == "outer") outer = &ev;
    if (name == "inner") inner = &ev;
    if (name == "marker") marker = &ev;
    if (ev.contains("cat")) {
      const std::string c = ev.at("cat").as_string();
      if (std::find(cats.begin(), cats.end(), c) == cats.end()) {
        cats.push_back(c);
        ++categories_seen;
      }
    }
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(marker, nullptr);
  EXPECT_GE(categories_seen, 2);

  // Nesting: inner lies strictly within [outer.ts, outer.ts + outer.dur],
  // and both ran on the same (named) thread.
  EXPECT_EQ(outer->at("ph").as_string(), "X");
  EXPECT_EQ(inner->at("ph").as_string(), "X");
  EXPECT_EQ(marker->at("ph").as_string(), "i");
  const double o_ts = outer->at("ts").as_number();
  const double o_dur = outer->at("dur").as_number();
  const double i_ts = inner->at("ts").as_number();
  const double i_dur = inner->at("dur").as_number();
  EXPECT_GE(i_ts, o_ts);
  EXPECT_LE(i_ts + i_dur, o_ts + o_dur + 1.0);  // 1us serialization slack
  EXPECT_EQ(outer->at("tid").as_int(), inner->at("tid").as_int());
  EXPECT_EQ(outer->at("args").at("n").as_number(), 3.0);
  EXPECT_EQ(marker->at("args").at("note").as_string(), "hi");
}

TEST(ObsTrace, StartTracingClearsPriorEvents) {
  obs::start_tracing();
  { BER_TRACE_SCOPE("testcat", "stale"); }
  obs::start_tracing();  // re-base: the stale span must vanish
  { BER_TRACE_SCOPE("testcat", "fresh"); }
  obs::stop_tracing();
  const std::string text = trace_json_text();
  EXPECT_EQ(text.find("\"stale\""), std::string::npos);
  EXPECT_NE(text.find("\"fresh\""), std::string::npos);
}

TEST(ObsTrace, DisabledPathRecordsNothing) {
  ASSERT_FALSE(obs::tracing_enabled());
  { BER_TRACE_SCOPE("testcat", "ghost"); }
  obs::start_tracing();
  obs::stop_tracing();
  EXPECT_EQ(trace_json_text().find("ghost"), std::string::npos);
}

// Disabled tracing must cost ~a relaxed load per scope. This is a smoke
// bound, deliberately generous (3x a bare loop) to stay robust on loaded CI
// machines; the real contract is "no measurable overhead at call sites".
TEST(ObsTrace, DisabledPathOverheadSmoke) {
  ASSERT_FALSE(obs::tracing_enabled());
  constexpr int kIters = 2000000;
  volatile long sink = 0;

  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) sink += i;
  const auto t1 = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    BER_TRACE_SCOPE("testcat", "off");
    sink += i;
  }
  const auto t2 = std::chrono::steady_clock::now();

  const double plain = std::chrono::duration<double>(t1 - t0).count();
  const double traced = std::chrono::duration<double>(t2 - t1).count();
  EXPECT_LT(traced, std::max(3.0 * plain, plain + 0.05))
      << "plain=" << plain << "s traced=" << traced << "s";
}

// ------------------------------------------------------- kernel counters ---

TEST(ObsKernels, ReferenceGemmCountsCallsAndFlops) {
  const kernels::Backend& bk = kernels::backend("reference");
  obs::KernelStats& ks = bk.kstats();
  const std::uint64_t calls0 = ks.gemm_calls->value();
  const std::uint64_t flops0 = ks.gemm_flops->value();

  const long m = 4, n = 5, k = 3;
  Tensor a({m, k}), b({k, n}), c({m, n});
  a.fill(1.0f);
  b.fill(2.0f);
  c.fill(0.0f);
  bk.gemm(m, n, k, 1.0f, a.data(), b.data(), 0.0f, c.data());

  EXPECT_EQ(ks.gemm_calls->value(), calls0 + 1);
  EXPECT_EQ(ks.gemm_flops->value(),
            flops0 + 2ull * static_cast<std::uint64_t>(m * n * k));
  // Counters never touch the math.
  EXPECT_FLOAT_EQ(c.at(0, 0), 6.0f);
}

TEST(ObsKernels, ArenaHighWaterGaugeTracksCapacity) {
  obs::note_arena_capacity(1000);
  obs::Gauge& g = obs::registry().gauge("kernels.arena_hwm_bytes");
  const double before = g.value();
  EXPECT_GE(before, 1000.0);
  obs::note_arena_capacity(10);  // smaller: high-water must not regress
  EXPECT_DOUBLE_EQ(g.value(), before);
}

// ------------------------------------------------------- SLO primitives ---

TEST(ObsHistogram, FractionLeMatchesExactCounts) {
  // Empty snapshot: no traffic reads as no violations (attainment 1.0),
  // never as a breach.
  EXPECT_DOUBLE_EQ(Histogram().snapshot().fraction_le(100.0), 1.0);

  Histogram h;
  for (int i = 1; i <= 1000; ++i) h.record(static_cast<double>(i));
  const Histogram::Snapshot s = h.snapshot();
  EXPECT_DOUBLE_EQ(s.fraction_le(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.fraction_le(1e12), 1.0);
  for (const double v : {10.0, 100.0, 500.0, 900.0}) {
    // Exact fraction is v/1000; bucket resolution is <= ~3.2% relative.
    EXPECT_NEAR(s.fraction_le(v), v / 1000.0, 0.04) << "v=" << v;
  }
  // Monotone in v.
  double prev = 0.0;
  for (double v = 0.0; v <= 1100.0; v += 7.0) {
    const double f = s.fraction_le(v);
    EXPECT_GE(f, prev) << "v=" << v;
    prev = f;
  }
}

// The satellite contract behind the SLO scoreboard's windowing: two
// consecutive snapshot deltas must sum — bucket by bucket — to the delta
// over the whole run, so no completion is counted twice or lost at a
// window boundary.
TEST(ObsHistogram, ConsecutiveWindowDeltasSumToFullRun) {
  std::mt19937 rng(11);
  std::lognormal_distribution<double> dist(5.0, 1.0);
  Histogram h;
  for (int i = 0; i < 500; ++i) h.record(std::round(dist(rng)));  // pre-run
  const Histogram::Snapshot t0 = h.snapshot();
  for (int i = 0; i < 2000; ++i) h.record(std::round(dist(rng)));
  const Histogram::Snapshot s1 = h.snapshot();
  for (int i = 0; i < 3000; ++i) h.record(std::round(dist(rng)));
  const Histogram::Snapshot s2 = h.snapshot();

  const Histogram::Snapshot w1 = s1 - t0;
  const Histogram::Snapshot w2 = s2 - s1;
  const Histogram::Snapshot full = s2 - t0;
  EXPECT_EQ(w1.count + w2.count, full.count);
  EXPECT_NEAR(w1.sum + w2.sum, full.sum, 1e-6 * full.sum);
  ASSERT_EQ(w1.buckets.size(), full.buckets.size());
  for (std::size_t i = 0; i < full.buckets.size(); ++i) {
    ASSERT_EQ(w1.buckets[i] + w2.buckets[i], full.buckets[i]) << "i=" << i;
  }
}

TEST(ObsSlo, ScoreboardWindowsAndBudgetMath) {
  Histogram lat;
  lat.record(1.0);  // pre-scoreboard sample must stay out of the timeline
  obs::SloScoreboard board({1000.0, 0.9}, lat);

  // Window 1: 10 fast requests, all within the 1000us bound.
  for (int i = 0; i < 10; ++i) lat.record(100.0);
  const obs::SloWindow& w1 = board.close_window("steady", 10, 0, 0);
  EXPECT_EQ(w1.completed, 10u);
  EXPECT_DOUBLE_EQ(w1.attainment, 1.0);
  EXPECT_TRUE(w1.slo_met);
  EXPECT_DOUBLE_EQ(w1.burn_rate, 0.0);
  EXPECT_DOUBLE_EQ(w1.budget_remaining, 1.0);

  // Window 2: half the requests blow the bound — attainment 0.5, burn rate
  // (1 - 0.5) / (1 - 0.9) = 5x.
  for (int i = 0; i < 5; ++i) lat.record(100.0);
  for (int i = 0; i < 5; ++i) lat.record(100000.0);
  const obs::SloWindow& w2 = board.close_window("burst", 10, 0, 3);
  EXPECT_EQ(w2.completed, 10u);
  EXPECT_NEAR(w2.attainment, 0.5, 0.05);
  EXPECT_FALSE(w2.slo_met);
  EXPECT_NEAR(w2.burn_rate, 5.0, 0.5);
  EXPECT_EQ(w2.queue_depth, 3);
  // Cumulative: ~5 violations vs a budget of 0.1 * 20 = 2 — overdrawn.
  EXPECT_LT(w2.budget_remaining, 0.0);

  // Shed counts as violation even with a healthy latency distribution.
  for (int i = 0; i < 10; ++i) lat.record(100.0);
  const obs::SloWindow& w3 = board.close_window("shedding", 12, 2, 0);
  EXPECT_FALSE(w3.slo_met);
  EXPECT_GT(w3.burn_rate, 1.0);

  const Json j = board.to_json();
  EXPECT_EQ(j.at("windows").size(), 3u);
  // The pre-scoreboard sample is excluded: 30 completions, not 31.
  EXPECT_EQ(j.at("summary").at("completed").as_int(), 30);
  EXPECT_EQ(j.at("summary").at("offered").as_int(), 32);
  EXPECT_EQ(j.at("summary").at("shed").as_int(), 2);
  EXPECT_EQ(j.at("summary").at("windows_violated").as_int(), 2);
  EXPECT_FALSE(j.at("summary").at("slo_met").as_bool());
}

TEST(ObsRegistry, PrometheusEscapesLabelValues) {
  obs::registry()
      .counter("test_obs.esc", {{"path", "say \"hi\"\\dir\nend"}})
      .add(1);
  const std::string prom = obs::registry().to_prometheus();
  EXPECT_NE(prom.find("path=\"say \\\"hi\\\"\\\\dir\\nend\""),
            std::string::npos)
      << prom;
  // The raw control characters must be gone from the exposition line.
  EXPECT_EQ(prom.find("say \"hi\""), std::string::npos);
}

TEST(ObsRegistry, PrometheusHistogramBucketsCumulativeWithInf) {
  obs::Histogram& h = obs::registry().histogram("test_obs.prom_buckets");
  h.record(1.0);
  h.record(1.0);
  h.record(10.0);
  h.record(1e6);
  const std::string prom = obs::registry().to_prometheus();
  // Unit buckets below kSub are exact and the le bound is inclusive, so the
  // two 1s land on le="1" and the 10 accumulates onto le="10".
  EXPECT_NE(prom.find("test_obs_prom_buckets_bucket{le=\"1\"} 2"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("test_obs_prom_buckets_bucket{le=\"10\"} 3"),
            std::string::npos)
      << prom;
  // The mandatory +Inf bucket closes the series at the total count.
  EXPECT_NE(prom.find("test_obs_prom_buckets_bucket{le=\"+Inf\"} 4"),
            std::string::npos)
      << prom;
  // The log-linear bucket holding 1e6 must carry an le bound that brackets
  // it: lower <= 1e6 <= le (one cumulative line with value 4 before +Inf).
  const std::size_t idx = Histogram::bucket_index(1000000);
  const std::string line = "test_obs_prom_buckets_bucket{le=\"" +
                           std::to_string(Histogram::bucket_upper(idx) - 1) +
                           "\"} 4";
  EXPECT_NE(prom.find(line), std::string::npos) << prom;
  EXPECT_LE(Histogram::bucket_lower(idx), 1000000u);
  EXPECT_GE(Histogram::bucket_upper(idx) - 1, 1000000u);
}

TEST(ObsTrace, BoundedBufferDropsAndCounts) {
  obs::start_tracing();
  const std::uint64_t ctr0 =
      obs::registry().counter("trace.events_dropped").value();
  const std::size_t cap = obs::trace_events_capacity();
  const std::size_t overflow = 100;
  for (std::size_t i = 0; i < cap + overflow; ++i) {
    BER_TRACE_INSTANT("testcat", "flood");
  }
  obs::stop_tracing();
  // start_tracing cleared this thread's buffer, so exactly the events past
  // capacity drop; the registry counter mirrors them.
  EXPECT_EQ(obs::trace_events_dropped(), overflow);
  EXPECT_EQ(obs::registry().counter("trace.events_dropped").value(),
            ctr0 + overflow);
  obs::start_tracing();  // re-base so later tests see an empty buffer
  obs::stop_tracing();
  EXPECT_EQ(obs::trace_events_dropped(), 0u);
}

}  // namespace
