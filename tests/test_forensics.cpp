// Fault-forensics tests (obs/forensics.h): the disabled-path contract
// (bit-exact injection, no forensics.* registry keys), ledger exactness
// against the stateless hash reference, counter reconciliation across all
// three evaluator paths, probe determinism across thread counts, the
// adversarial-vs-random bit-position separation the attribution exists to
// show, and the eval.forensics spec section.
//
// The first test pins the disabled-mode guarantees, so it must run before
// anything in this binary enables the ledger (gtest runs tests in
// declaration order).
#include <gtest/gtest.h>

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "api/spec.h"
#include "core/rng.h"
#include "data/shapes.h"
#include "faults/adversarial_model.h"
#include "faults/evaluator.h"
#include "faults/profiled_chip_model.h"
#include "faults/random_bit_error_model.h"
#include "models/factory.h"
#include "nn/init.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "quant/net_quantizer.h"

namespace ber {
namespace {

NetSnapshot make_snapshot(std::size_t n_weights, int bits,
                          std::uint64_t seed = 1) {
  Rng rng(seed);
  std::vector<float> w(n_weights);
  for (auto& v : w) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  NetSnapshot snap;
  snap.tensors.push_back(quantize(w, QuantScheme::rquant(bits)));
  snap.offsets.push_back(0);
  return snap;
}

struct Fixture {
  Dataset data;
  std::unique_ptr<Sequential> model;

  explicit Fixture(int n = 80) {
    auto cfg = SyntheticConfig::mnist();
    cfg.n_test = n;
    data = make_synthetic(cfg, false);
    ModelConfig mc;
    mc.arch = Arch::kMlp;
    mc.in_channels = 1;
    mc.width = 8;
    model = build_model(mc);
    Rng rng(5);
    he_init(*model, rng);
  }
};

// ------------------------------------------------------------ disabled path --

TEST(ForensicsDisabled, BitExactInjectionAndNoRegistryKeys) {
  ASSERT_FALSE(obs::forensics_enabled());
  const NetSnapshot clean = make_snapshot(20000, 8);
  BitErrorConfig cfg;
  cfg.p = 0.01;
  const ChipFaultList list(clean, cfg, 7, cfg.p);

  NetSnapshot off = clean;
  const std::size_t changed_off = list.apply(off, cfg.p);
  NetSnapshot off_scalar = clean;
  EXPECT_EQ(inject_random_bit_errors_scalar(off_scalar, cfg, 7), changed_off);
  EXPECT_EQ(off.tensors[0].codes, off_scalar.tensors[0].codes);

  // Nothing recorded, and — critically — the instrumentation never touched
  // the registry: a disabled run leaves no forensics.* keys behind.
  EXPECT_EQ(obs::fault_ledger().totals().applies, 0u);
  const Json snapshot = obs::registry().to_json();
  for (const auto& [section, metrics] : snapshot.members()) {
    for (const auto& [key, value] : metrics.members()) {
      EXPECT_EQ(key.find("forensics"), std::string::npos) << key;
    }
  }

  // Enabling the ledger must not perturb the datapath: byte-identical codes
  // and the same changed-word count.
  obs::fault_ledger().set_enabled(true);
  NetSnapshot on = clean;
  {
    const obs::ForensicsTrialScope scope(0, "exact");
    EXPECT_EQ(list.apply(on, cfg.p), changed_off);
  }
  obs::fault_ledger().set_enabled(false);
  EXPECT_EQ(on.tensors[0].codes, off.tensors[0].codes);
  obs::fault_ledger().clear();
}

TEST(ForensicsLedger, EnabledWithoutScopeRecordsNothing) {
  obs::fault_ledger().clear();
  obs::fault_ledger().set_enabled(true);
  NetSnapshot snap = make_snapshot(2000, 8);
  BitErrorConfig cfg;
  cfg.p = 0.02;
  inject_random_bit_errors_scalar(snap, cfg, 3);  // no ForensicsTrialScope
  obs::fault_ledger().set_enabled(false);
  EXPECT_EQ(obs::fault_ledger().totals().applies, 0u);
  obs::fault_ledger().clear();
}

// ------------------------------------------------------------ ledger content --

TEST(ForensicsLedger, ExactAgainstHashReference) {
  const std::size_t n_weights = 5000;
  const int bits = 8;
  const std::uint64_t chip = 42;
  const NetSnapshot clean = make_snapshot(n_weights, bits);
  BitErrorConfig cfg;
  cfg.p = 0.01;  // flip-only: every record must change exactly its bit

  obs::fault_ledger().clear();
  obs::fault_ledger().set_enabled(true);
  NetSnapshot snap = clean;
  std::size_t changed = 0;
  {
    const obs::ForensicsTrialScope scope(9, "exact");
    changed = ChipFaultList(clean, cfg, chip, cfg.p).apply(snap, cfg.p);
  }
  obs::fault_ledger().set_enabled(false);

  // The ledger must hold exactly the cells the stateless hash stream marks
  // faulty at p, in (token, tensor, index, bit) order.
  std::vector<std::pair<std::uint32_t, int>> expected;
  for (std::uint32_t i = 0; i < n_weights; ++i) {
    for (int b = 0; b < bits; ++b) {
      if (cell_faulty(chip, i, b, cfg.p)) expected.push_back({i, b});
    }
  }
  const std::vector<obs::FlipRecord> recs =
      obs::fault_ledger().records("exact");
  ASSERT_EQ(recs.size(), expected.size());
  ASSERT_GT(recs.size(), 0u);
  for (std::size_t k = 0; k < recs.size(); ++k) {
    EXPECT_EQ(recs[k].token, 9u);
    EXPECT_EQ(recs[k].tensor, 0u);
    EXPECT_EQ(recs[k].index, expected[k].first);
    EXPECT_EQ(static_cast<int>(recs[k].bit), expected[k].second);
    EXPECT_EQ(static_cast<int>(recs[k].width), bits);
    EXPECT_EQ(static_cast<obs::BitClass>(recs[k].bit_class),
              obs::classify_bit(expected[k].second, bits));
    // A flip fault changes exactly its bit between the bracketing codes.
    EXPECT_EQ(recs[k].code_after,
              recs[k].code_before ^ (1u << recs[k].bit));
  }
  EXPECT_EQ(obs::fault_ledger().totals("exact").words_changed, changed);
  EXPECT_EQ(obs::registry().counter("forensics.flips").value() > 0, true);
  obs::fault_ledger().clear();
}

TEST(ForensicsLedger, ClassifyBitBoundaries) {
  using obs::BitClass;
  EXPECT_EQ(obs::classify_bit(7, 8), BitClass::kMsb);
  EXPECT_EQ(obs::classify_bit(6, 8), BitClass::kHigh);
  EXPECT_EQ(obs::classify_bit(4, 8), BitClass::kHigh);
  EXPECT_EQ(obs::classify_bit(3, 8), BitClass::kLow);
  EXPECT_EQ(obs::classify_bit(0, 8), BitClass::kLow);
  EXPECT_EQ(obs::classify_bit(1, 2), BitClass::kMsb);
  EXPECT_EQ(obs::classify_bit(0, 2), BitClass::kLow);
}

// -------------------------------------------------- counter reconciliation --

TEST(ForensicsCounters, LedgerReconcilesAcrossEvaluatorPaths) {
  Fixture f;
  RobustnessEvaluator ev(*f.model, QuantScheme::rquant(8));
  obs::Counter& counter = obs::registry().counter("faults.words_patched");

  // Each campaign: fresh ledger, bracket the words_patched counter, and the
  // ledger's changed-word total must equal the counter delta exactly.
  const auto campaign = [&](const std::function<void()>& run) {
    obs::fault_ledger().clear();
    obs::fault_ledger().set_enabled(true);
    const std::uint64_t before = counter.value();
    run();
    obs::fault_ledger().set_enabled(false);
    const std::uint64_t delta = counter.value() - before;
    EXPECT_GT(delta, 0u);
    EXPECT_EQ(obs::fault_ledger().totals().words_changed, delta);
  };

  BitErrorConfig cfg;
  cfg.p = 0.02;
  const RandomBitErrorModel random(cfg);
  campaign([&] { ev.run(random, f.data, 3, 40); });
  campaign(
      [&] { ev.run_rate_sweep(random, {0.005, 0.01, 0.02}, f.data, 3, 40); });
  const ProfiledChipModel profiled(ProfiledChipConfig::chip1(), 0.9);
  campaign([&] { ev.run_voltage_sweep(profiled, {1.0, 0.9}, f.data, 2, 40); });
  obs::fault_ledger().clear();
}

// ----------------------------------------------------------------- probes ---

TEST(ForensicsProbes, DeterministicAcrossThreadCounts) {
  Fixture f(60);
  const QuantScheme scheme = QuantScheme::rquant(8);
  BitErrorConfig cfg;
  cfg.p = 0.02;
  const RandomBitErrorModel random(cfg);
  obs::Counter& counter = obs::registry().counter("faults.words_patched");

  // default_threads() reads BER_THREADS on every call, so the worker count
  // of the trial pool is swappable per campaign.
  const auto run_with_threads = [&](const char* threads) {
    setenv("BER_THREADS", threads, 1);
    RobustnessEvaluator ev(*f.model, scheme);
    obs::fault_ledger().clear();
    obs::fault_ledger().set_enabled(true);
    obs::ForensicsOptions fo;
    fo.probe_images = 16;
    obs::ForensicsCollector collector(fo);
    collector.prepare_probes(*f.model, ev.snapshot(), ev.compute_on_codes(),
                             f.data);
    EXPECT_TRUE(collector.probes_ready());
    ev.set_forensics(&collector, "eval");
    const std::uint64_t before = counter.value();
    ev.run(random, f.data, 6, 30);
    obs::fault_ledger().set_enabled(false);
    const Json j = collector.to_json(counter.value() - before);
    EXPECT_TRUE(j.at("counter_reconciles").as_bool());
    EXPECT_EQ(j.at("profiles").at("eval").at("probes").at("trials").as_int(),
              6);
    unsetenv("BER_THREADS");
    return j.dump(2);
  };

  const std::string one = run_with_threads("1");
  const std::string four = run_with_threads("4");
  EXPECT_EQ(one, four);
  obs::fault_ledger().clear();
}

// ------------------------------------------------------------- attribution --

TEST(ForensicsAttribution, AdversarialSeparatesFromRandomControl) {
  Fixture f(60);
  RobustnessEvaluator ev(*f.model, QuantScheme::rquant(8));
  const NetSnapshot& layout = ev.snapshot();
  const int bits = layout.tensors[0].scheme.bits;

  // A worst-case-shaped attack: every flip on the sign/MSB of tensor 0 —
  // the profile Sec. 5.1's gradient attacks converge to.
  std::vector<std::vector<BitFlip>> attack_trials(2);
  for (std::uint32_t t = 0; t < 2; ++t) {
    for (std::uint32_t i = 0; i < 24; ++i) {
      attack_trials[t].push_back(
          {0, i * 7 + t, static_cast<std::uint8_t>(bits - 1)});
    }
  }
  const AdversarialBitErrorModel attack(std::move(attack_trials), "msb-test");
  const AdversarialBitErrorModel control =
      random_flip_model(layout, 24, 2, 777);

  obs::fault_ledger().clear();
  obs::fault_ledger().set_enabled(true);
  obs::ForensicsOptions fo;
  obs::ForensicsCollector collector(fo);
  obs::Counter& counter = obs::registry().counter("faults.words_patched");
  const std::uint64_t before = counter.value();
  ev.set_forensics(&collector, "eval");
  ev.run(attack, f.data, 2, 30);
  ev.set_forensics(&collector, "control");
  ev.run(control, f.data, 2, 30);
  ev.set_forensics(nullptr);
  obs::fault_ledger().set_enabled(false);

  const Json j = collector.to_json(counter.value() - before);
  EXPECT_TRUE(j.at("counter_reconciles").as_bool());
  const Json& eval_p = j.at("profiles").at("eval");
  const Json& ctrl_p = j.at("profiles").at("control");
  EXPECT_EQ(eval_p.at("trials").as_int(), 2);
  EXPECT_EQ(ctrl_p.at("trials").as_int(), 2);
  // The attack's flip mass sits entirely in the MSB class of one tensor;
  // the budget-matched random control spreads across bits and tensors.
  EXPECT_DOUBLE_EQ(eval_p.at("msb_fraction").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(eval_p.at("top_tensor_fraction").as_number(), 1.0);
  EXPECT_LT(ctrl_p.at("msb_fraction").as_number(), 0.5);
  EXPECT_LT(ctrl_p.at("top_tensor_fraction").as_number(), 1.0);
  obs::fault_ledger().clear();
}

// ------------------------------------------------------------ spec section --

TEST(ForensicsSpec, ParsesRoundTripsAndValidates) {
  const char* text = R"({
    "name": "fx",
    "model": {"zoo": "c10_rquant"},
    "fault": {"model": "random", "p": 0.01},
    "eval": {"n_trials": 2,
             "forensics": {"probe_images": 8, "threshold": 1e-3}}
  })";
  const api::ExperimentSpec spec =
      api::ExperimentSpec::from_json(Json::parse(text));
  EXPECT_TRUE(spec.eval.forensics.enabled);
  EXPECT_EQ(spec.eval.forensics.probe_images, 8);
  EXPECT_DOUBLE_EQ(spec.eval.forensics.threshold, 1e-3);
  EXPECT_FALSE(spec.eval.forensics.control);
  // parse -> emit -> parse is the identity on the normalized form.
  const Json normalized = spec.to_json();
  EXPECT_EQ(api::ExperimentSpec::from_json(normalized).to_json().dump(),
            normalized.dump());

  // Unknown keys are rejected with the accepted ones listed.
  const char* bad = R"({
    "name": "fx",
    "model": {"zoo": "c10_rquant"},
    "fault": {"model": "random", "p": 0.01},
    "eval": {"forensics": {"probes": 8}}
  })";
  try {
    api::ExperimentSpec::from_json(Json::parse(bad));
    FAIL() << "unknown eval.forensics key must throw";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("probes"), std::string::npos) << msg;
    EXPECT_NE(msg.find("probe_images"), std::string::npos) << msg;
  }

  // Float-space faults have no code-space flips to record.
  const char* linf = R"({
    "name": "fx",
    "model": {"zoo": "c10_rquant"},
    "fault": {"model": "linf", "rel_eps": 0.05},
    "eval": {"forensics": {}}
  })";
  EXPECT_THROW(api::ExperimentSpec::from_json(Json::parse(linf)),
               std::invalid_argument);

  // The budget-matched control pass only exists for adversarial faults.
  const char* control = R"({
    "name": "fx",
    "model": {"zoo": "c10_rquant"},
    "fault": {"model": "random", "p": 0.01},
    "eval": {"forensics": {"control": true}}
  })";
  EXPECT_THROW(api::ExperimentSpec::from_json(Json::parse(control)),
               std::invalid_argument);
}

}  // namespace
}  // namespace ber
