// Tests for the declarative experiment API: core/json round-trips, spec
// parse/emit identity, registry construction of every fault model by name,
// unknown-key / invalid-value rejection, and fixed-seed bit-exactness of
// the Runner against the legacy hand-wired evaluation paths.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ber.h"

namespace ber {
namespace {

// ----------------------------------------------------------------- json ---

TEST(Json, ParseScalars) {
  EXPECT_TRUE(Json::parse("null").is_null());
  EXPECT_EQ(Json::parse("true").as_bool(), true);
  EXPECT_EQ(Json::parse("false").as_bool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("-12.5e2").as_number(), -1250.0);
  EXPECT_EQ(Json::parse("42").as_int(), 42);
  EXPECT_EQ(Json::parse("\"a\\nb\\\"c\\u0041\"").as_string(), "a\nb\"cA");
}

TEST(Json, ParseContainersAndComments) {
  const Json j = Json::parse(R"(
    // a commented spec fragment
    {
      "name": "x",       // trailing comment
      "grid": [1, 2.5, 3],
      "nested": {"ok": true}
    })");
  EXPECT_EQ(j.at("name").as_string(), "x");
  EXPECT_EQ(j.at("grid").size(), 3u);
  EXPECT_DOUBLE_EQ(j.at("grid")[1].as_number(), 2.5);
  EXPECT_TRUE(j.at("nested").at("ok").as_bool());
}

TEST(Json, ParseErrorsCarryLocationAndHint) {
  try {
    Json::parse("{\"a\": 1,\n  \"a\": 2}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate object key"),
              std::string::npos);
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(Json::parse("{\"a\": }"), JsonError);
  EXPECT_THROW(Json::parse("[1, 2"), JsonError);
  EXPECT_THROW(Json::parse("{} trailing"), JsonError);
}

TEST(Json, DumpParseRoundTripIsExact) {
  // Doubles survive dump -> parse bit-exactly (shortest-round-trip emit).
  const std::vector<double> values{0.005, 1.0 / 3.0, 6.02e23, -0.0001,
                                   0.1 + 0.2, 1e-300};
  for (double v : values) {
    EXPECT_EQ(Json::parse(Json(v).dump()).as_number(), v) << v;
  }
  Json obj = Json::object();
  obj.set("b", 2);  // insertion order preserved, not sorted
  obj.set("a", Json::array({Json(1), Json("x"), Json()}));
  const Json reparsed = Json::parse(obj.dump());
  EXPECT_EQ(reparsed, obj);
  EXPECT_EQ(reparsed.members()[0].first, "b");
  // Pretty and compact forms parse to the same value.
  EXPECT_EQ(Json::parse(obj.dump(2)), obj);
}

// ------------------------------------------------------------- registry ---

// A tiny quantized net + context shared by the registry tests.
struct RegistryFixture {
  RegistryFixture() {
    SyntheticConfig dc = SyntheticConfig::mnist();
    dc.n_train = 64;
    dc.n_test = 32;
    train_set = make_synthetic(dc, true);
    test_set = make_synthetic(dc, false);
    ModelConfig mc;
    mc.arch = Arch::kMlp;
    mc.in_channels = 1;
    mc.width = 6;
    model = build_model(mc);
    Rng rng(3);
    he_init(*model, rng);
    scheme = QuantScheme::rquant(8);
    evaluator.emplace(*model, scheme);
  }

  api::FaultContext context() {
    api::FaultContext ctx;
    ctx.model = model.get();
    ctx.scheme = &scheme;
    ctx.layout = &evaluator->snapshot();
    ctx.attack_set = &train_set;
    ctx.n_trials = 2;
    return ctx;
  }

  Dataset train_set, test_set;
  std::unique_ptr<Sequential> model;
  QuantScheme scheme;
  std::optional<RobustnessEvaluator> evaluator;
};

TEST(Registry, AllFiveFaultModelsConstructibleByName) {
  RegistryFixture fx;
  const api::FaultContext ctx = fx.context();

  Json random = Json::object();
  random.set("p", 0.01);
  random.set("set1_fraction", 0.2);
  random.set("flip_fraction", 0.8);
  random.set("seed_base", 1234);
  auto rm = api::make_fault_model("random", random, ctx);
  ASSERT_NE(dynamic_cast<RandomBitErrorModel*>(rm.get()), nullptr);
  EXPECT_EQ(dynamic_cast<RandomBitErrorModel*>(rm.get())->seed_base(), 1234u);

  Json profiled = Json::object();
  profiled.set("chip", "chip2");
  profiled.set("voltage", 0.86);
  profiled.set("seed", 7);
  auto pm = api::make_fault_model("profiled", profiled, ctx);
  auto* pmc = dynamic_cast<ProfiledChipModel*>(pm.get());
  ASSERT_NE(pmc, nullptr);
  EXPECT_DOUBLE_EQ(pmc->voltage(), 0.86);
  EXPECT_EQ(pmc->chip().config().seed, 7u);
  EXPECT_GT(pmc->chip().config().vulnerable_column_fraction, 0.0);  // chip2

  Json ecc = Json::object();
  ecc.set("p", 0.01);
  ecc.set("persistent", true);
  auto em = api::make_fault_model("ecc", ecc, ctx);
  ASSERT_NE(dynamic_cast<EccProtectedModel*>(em.get()), nullptr);

  Json linf = Json::object();
  linf.set("rel_eps", 0.02);
  auto lm = api::make_fault_model("linf", linf, ctx);
  auto* lmc = dynamic_cast<LinfNoiseModel*>(lm.get());
  ASSERT_NE(lmc, nullptr);
  EXPECT_EQ(lmc->space(), FaultSpace::kFloatWeights);
  EXPECT_DOUBLE_EQ(lmc->rel_eps(), 0.02);

  Json adv = Json::object();
  adv.set("budget", 4);
  adv.set("rounds", 2);
  adv.set("attack_examples", 32);
  auto am = api::make_fault_model("adversarial", adv, ctx);
  auto* amc = dynamic_cast<AdversarialBitErrorModel*>(am.get());
  ASSERT_NE(amc, nullptr);
  EXPECT_EQ(amc->trials().size(), 2u);  // ctx.n_trials attack trials

  Json control = Json::object();
  control.set("budget", 4);
  control.set("control", true);
  control.set("rounds", 2);  // attack-shaping keys are ignored, not rejected
  control.set("seed", 1);
  auto cm = api::make_fault_model("adversarial", control, ctx);
  auto* cmc = dynamic_cast<AdversarialBitErrorModel*>(cm.get());
  ASSERT_NE(cmc, nullptr);
  EXPECT_EQ(cmc->trials()[0].size(), 4u);  // budget-matched flips
}

TEST(Registry, ProfiledReusesContextChip) {
  RegistryFixture fx;
  ProfiledChip chip(ProfiledChipConfig::chip1(55));
  api::FaultContext ctx;
  ctx.chip = &chip;
  Json params = Json::object();
  params.set("voltage", 0.9);
  auto pm = api::make_fault_model("profiled", params, ctx);
  EXPECT_EQ(&dynamic_cast<ProfiledChipModel&>(*pm).chip(), &chip);
}

TEST(Registry, RejectionsAreActionable) {
  RegistryFixture fx;
  const api::FaultContext ctx = fx.context();
  // Unknown registry name lists the known ones.
  try {
    api::make_fault_model("cosmic_rays", Json::object(), ctx);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("cosmic_rays"), std::string::npos);
    EXPECT_NE(what.find("random"), std::string::npos);
    EXPECT_NE(what.find("adversarial"), std::string::npos);
  }
  // Unknown parameter key names the key and the accepted ones.
  Json typo = Json::object();
  typo.set("p", 0.01);
  typo.set("seed_bass", 1);
  try {
    api::make_fault_model("random", typo, ctx);
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("seed_bass"), std::string::npos);
    EXPECT_NE(what.find("seed_base"), std::string::npos);
  }
  // Invalid values surface the factory's validation.
  Json bad = Json::object();
  bad.set("p", 1.5);
  EXPECT_THROW(api::make_fault_model("random", bad, ctx),
               std::invalid_argument);
  Json missing = Json::object();
  EXPECT_THROW(api::make_fault_model("linf", missing, ctx),
               std::invalid_argument);
}

// ----------------------------------------------------------------- spec ---

const char* kSpecText = R"({
  // comment survives parsing (not emission)
  "name": "round_trip",
  "kind": "robustness",
  "backend": "reference",
  "models": [
    {"zoo": "c10_rquant"},
    {
      "name": "tiny",
      "dataset": {"name": "mnist", "n_train": 100, "n_test": 50},
      "model": {"arch": "mlp", "width": 6},
      "quant": {"scheme": "rquant", "bits": 4},
      "train": {"method": "clipping", "wmax": 0.2, "epochs": 3}
    }
  ],
  "fault": {"model": "random", "p": 0.01, "seed_base": 77},
  "eval": {"n_trials": 2, "split": "test", "rate_grid": [0.001, 0.01]}
})";

TEST(Spec, ParseEmitParseIdentity) {
  const api::ExperimentSpec spec =
      api::ExperimentSpec::from_json(Json::parse(kSpecText));
  const Json emitted = spec.to_json();
  const api::ExperimentSpec reparsed = api::ExperimentSpec::from_json(emitted);
  EXPECT_EQ(reparsed.to_json(), emitted);  // normalization is idempotent

  // Spot-check the normalized fields.
  EXPECT_EQ(spec.models.size(), 2u);
  EXPECT_EQ(spec.models[0].zoo, "c10_rquant");
  EXPECT_EQ(spec.models[1].quant.bits, 4);
  EXPECT_EQ(spec.models[1].train.method, Method::kClipping);
  EXPECT_EQ(spec.models[1].train.quant, spec.models[1].quant);
  EXPECT_EQ(spec.fault.model, "random");
  EXPECT_EQ(spec.fault.params.at("seed_base").as_int(), 77);
  EXPECT_EQ(spec.eval.rate_grid.size(), 2u);
}

TEST(Spec, BuilderSpecSurvivesJsonRoundTrip) {
  Json params = Json::object();
  params.set("seed_base", 1000);
  const api::ExperimentSpec spec = api::Experiment("builder")
                                       .zoo("c10_rquant")
                                       .fault("random", std::move(params))
                                       .rate_grid({0.005, 0.01})
                                       .trials(3)
                                       .split("rerr")
                                       .spec();
  const api::ExperimentSpec reparsed =
      api::ExperimentSpec::from_json(spec.to_json());
  EXPECT_EQ(reparsed.to_json(), spec.to_json());
  EXPECT_EQ(reparsed.eval.n_trials, 3);
}

TEST(Spec, RejectsUnknownKeysAndInvalidValues) {
  const auto parse = [](const std::string& text) {
    return api::ExperimentSpec::from_json(Json::parse(text));
  };
  // Unknown top-level key.
  EXPECT_THROW(parse(R"({"name": "x", "modles": []})"), std::invalid_argument);
  // Unknown eval key, with the known keys in the message.
  try {
    parse(R"({"name": "x", "models": [{"zoo": "c10_rquant"}],
              "fault": {"model": "random", "p": 0.01},
              "eval": {"n_trails": 2}})");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("n_trails"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("n_trials"), std::string::npos);
  }
  // Unknown zoo model / arch / quant scheme / kind / split.
  EXPECT_THROW(parse(R"({"name": "x", "models": [{"zoo": "c10_nope"}],
                         "fault": {"model": "random", "p": 0.01}})"),
               std::invalid_argument);
  // An empty zoo reference must not fall through to a default inline model.
  EXPECT_THROW(parse(R"({"name": "x", "models": [{"zoo": ""}],
                         "fault": {"model": "random", "p": 0.01}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"name": "x", "models": [
                         {"model": {"arch": "transformer"}}],
                         "fault": {"model": "random", "p": 0.01}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"name": "x", "models": [
                         {"quant": {"scheme": "fp8"}}],
                         "fault": {"model": "random", "p": 0.01}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"name": "x", "kind": "sorve",
                         "models": [{"zoo": "c10_rquant"}],
                         "fault": {"model": "random", "p": 0.01}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"name": "x", "models": [{"zoo": "c10_rquant"}],
                         "fault": {"model": "random", "p": 0.01},
                         "eval": {"split": "validation"}})"),
               std::invalid_argument);
  // Grid / fault-model compatibility.
  EXPECT_THROW(parse(R"({"name": "x", "models": [{"zoo": "c10_rquant"}],
                         "fault": {"model": "ecc", "p": 0.01},
                         "eval": {"rate_grid": [0.01]}})"),
               std::invalid_argument);
  EXPECT_THROW(parse(R"({"name": "x", "models": [{"zoo": "c10_rquant"}],
                         "fault": {"model": "random", "p": 0.01},
                         "eval": {"rate_grid": [0.01],
                                  "grid": {"param": "p", "values": [0.1]}}})"),
               std::invalid_argument);
  // Fault parameter typos are caught at parse time (dry construction).
  EXPECT_THROW(parse(R"({"name": "x", "models": [{"zoo": "c10_rquant"}],
                         "fault": {"model": "random", "pp": 0.01}})"),
               std::invalid_argument);
  // Serve shape: ascending voltages rejected.
  EXPECT_THROW(parse(R"({"name": "x", "kind": "serve",
                         "models": [{"zoo": "c10_rquant"}],
                         "fault": {"model": "random"},
                         "serve": {"voltages": [0.9, 1.0]}})"),
               std::invalid_argument);
}

TEST(Spec, ShippedConfigFilesParseValidateAndRoundTrip) {
  const std::filesystem::path dir =
      std::filesystem::path(BER_SOURCE_DIR) / "configs";
  ASSERT_TRUE(std::filesystem::is_directory(dir));
  int n = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".json") continue;
    SCOPED_TRACE(entry.path().string());
    const api::ExperimentSpec spec =
        api::ExperimentSpec::load(entry.path().string());
    const Json emitted = spec.to_json();
    EXPECT_EQ(api::ExperimentSpec::from_json(emitted).to_json(), emitted);
    ++n;
  }
  EXPECT_GE(n, 8);  // the seeded scenario library
}

// --------------------------------------------------------------- runner ---

// Shared tiny recipe: must be cheap enough to train twice in-test.
api::ModelEntry tiny_entry() {
  api::ModelEntry e;
  e.dataset.name = "mnist";
  e.dataset.config = SyntheticConfig::mnist();
  e.dataset.config.n_train = 300;
  e.dataset.config.n_test = 150;
  e.model.arch = Arch::kMlp;
  e.model.in_channels = 1;
  e.model.image_size = e.dataset.config.image_size;
  e.model.num_classes = e.dataset.config.num_classes;
  e.model.width = 8;
  e.quant = QuantScheme::rquant(8);
  e.train.quant = e.quant;
  e.train.method = Method::kClipping;
  e.train.wmax = 0.2f;
  e.train.epochs = 2;
  e.train.batch_size = 50;
  return e;
}

// The legacy hand-wired pipeline for the same recipe. Training pins the
// reference backend exactly like Runner::resolve does — otherwise a
// BER_BACKEND override would train a (slightly) different model here than
// the Runner evaluates, and the bit-exactness comparisons below would be
// comparing two models instead of two pipelines.
struct LegacyRun {
  LegacyRun() {
    const api::ModelEntry e = tiny_entry();
    train_set = make_synthetic(e.dataset.config, true);
    test_set = make_synthetic(e.dataset.config, false);
    model = build_model(e.model);
    const kernels::ScopedBackend guard(kernels::backend("reference"));
    train(*model, train_set, test_set, e.train);
    scheme = e.quant;
  }
  Dataset train_set, test_set;
  std::unique_ptr<Sequential> model;
  QuantScheme scheme;
};

TEST(Runner, RateSweepBitExactVsLegacyPaths) {
  // The spec pins its backend (default "reference") for the whole run, so
  // the hand-wired legacy side must evaluate under that same backend — not
  // the ambient BER_BACKEND — for bit-exactness to be well-defined.
  const kernels::ScopedBackend guard(kernels::backend("reference"));
  const std::vector<double> grid{0.004, 0.02};
  LegacyRun legacy;
  const float legacy_clean =
      test_error(*legacy.model, legacy.test_set, &legacy.scheme);
  // Legacy multi-rate path (what rerr_sweep historically wired by hand).
  BitErrorConfig cfg;
  cfg.p = 0.02;
  const RandomBitErrorModel fault(cfg, /*seed_base=*/1000);
  const std::vector<RobustResult> legacy_sweep =
      RobustnessEvaluator(*legacy.model, legacy.scheme)
          .run_rate_sweep(fault, grid, legacy.test_set, /*n_chips=*/2);
  // Legacy single-point path (robust_error).
  BitErrorConfig single;
  single.p = grid[1];
  const RobustResult legacy_single = robust_error(
      *legacy.model, legacy.scheme, legacy.test_set, single, 2, 1000);

  const api::Report report = api::Experiment("bitexact")
                                 .model(tiny_entry())
                                 .fault("random", Json::object())
                                 .rate_grid(grid)
                                 .trials(2)
                                 .split("test")
                                 .run();
  const api::ModelReport& m = report.models.front();
  ASSERT_EQ(m.points.size(), grid.size());
  EXPECT_EQ(static_cast<float>(m.clean_err), legacy_clean);
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_EQ(m.points[i].result.mean_rerr, legacy_sweep[i].mean_rerr) << i;
    EXPECT_EQ(m.points[i].result.std_rerr, legacy_sweep[i].std_rerr) << i;
    EXPECT_EQ(m.points[i].result.per_chip, legacy_sweep[i].per_chip) << i;
  }
  // The sweep's top rate equals a standalone single-point run bit-exactly.
  EXPECT_EQ(m.points[1].result.mean_rerr, legacy_single.mean_rerr);
}

TEST(Runner, GenericGridMatchesLegacySinglePoints) {
  // Evaluate the legacy side under the spec's pinned backend (see
  // RateSweepBitExactVsLegacyPaths).
  const kernels::ScopedBackend guard(kernels::backend("reference"));
  LegacyRun legacy;
  // ECC persistent sweep over p through the generic grid.
  const std::vector<double> ps{0.002, 0.01};
  Json params = Json::object();
  params.set("persistent", true);
  const api::Report report = api::Experiment("ecc_grid")
                                 .model(tiny_entry())
                                 .fault("ecc", std::move(params))
                                 .param_grid("p", ps)
                                 .trials(2)
                                 .split("test")
                                 .clean_err(false)
                                 .run();
  const RobustnessEvaluator evaluator(*legacy.model, legacy.scheme);
  for (std::size_t i = 0; i < ps.size(); ++i) {
    BitErrorConfig cfg;
    cfg.p = ps[i];
    const EccProtectedModel fault(
        std::make_unique<RandomBitErrorModel>(cfg));
    const RobustResult r = evaluator.run(fault, legacy.test_set, 2);
    EXPECT_EQ(report.models[0].points[i].result.mean_rerr, r.mean_rerr) << i;
  }
}

TEST(Runner, ReportJsonCarriesResults) {
  const api::Report report = api::Experiment("json_report")
                                 .model(tiny_entry())
                                 .fault("random", Json::object())
                                 .rate_grid({0.01})
                                 .trials(2)
                                 .split("test")
                                 .run();
  const Json j = report.to_json();
  EXPECT_EQ(j.at("experiment").as_string(), "json_report");
  EXPECT_EQ(j.at("models")[0].at("points")[0].at("p").as_number(), 0.01);
  EXPECT_EQ(static_cast<float>(
                j.at("models")[0].at("points")[0].at("rerr_mean").as_number()),
            report.models[0].points[0].result.mean_rerr);
  // The report embeds the normalized spec for provenance.
  EXPECT_EQ(api::ExperimentSpec::from_json(j.at("spec")).to_json(),
            j.at("spec"));
}

}  // namespace
}  // namespace ber
