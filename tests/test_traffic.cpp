// Open-loop traffic + SLO observability tests: arrival-schedule
// reproducibility (bit-identical for a fixed seed, regardless of which
// thread materializes it), the statistical shape of the three arrival
// processes, the generator driving a real ReplicaPool (offered ==
// answered + shed, windowed timeline emitted), and the report-diff rules
// behind `ber_run --baseline`.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>
#include <thread>
#include <vector>

#include "api/report_diff.h"
#include "core/rng.h"
#include "data/shapes.h"
#include "eval/metrics.h"
#include "models/factory.h"
#include "serve/planner.h"
#include "serve/replica_pool.h"
#include "serve/traffic_gen.h"
#include "train/trainer.h"

namespace ber {
namespace {

// ------------------------------------------------- schedule determinism ---

ArrivalPhase poisson_phase(double rate, double dur) {
  ArrivalPhase p;
  p.process = "poisson";
  p.rate_rps = rate;
  p.duration_s = dur;
  return p;
}

TEST(ArrivalSchedule, BitReproducibleAcrossThreads) {
  ArrivalPhase phases[3];
  phases[0] = poisson_phase(200.0, 2.0);
  phases[1].process = "diurnal";
  phases[1].rate_rps = 200.0;
  phases[1].duration_s = 2.0;
  phases[1].period_s = 1.0;
  phases[1].amplitude = 0.7;
  phases[2].process = "bursty";
  phases[2].rate_rps = 200.0;
  phases[2].duration_s = 2.0;
  phases[2].mean_on_s = 0.05;
  phases[2].mean_off_s = 0.1;

  for (const ArrivalPhase& p : phases) {
    const std::vector<std::uint64_t> ref = arrival_schedule(p, 42);
    ASSERT_FALSE(ref.empty()) << p.process;
    // Same (phase, seed) from four concurrent threads: bit-identical. The
    // schedule is a pure function — no hidden global RNG, no time seeding.
    std::vector<std::vector<std::uint64_t>> got(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back(
          [&, t] { got[static_cast<std::size_t>(t)] = arrival_schedule(p, 42); });
    }
    for (std::thread& t : threads) t.join();
    for (const auto& g : got) ASSERT_EQ(g, ref) << p.process;
    // A different seed is a different schedule.
    EXPECT_NE(arrival_schedule(p, 43), ref) << p.process;
    // Sorted, strictly inside [0, duration).
    for (std::size_t i = 1; i < ref.size(); ++i) {
      ASSERT_GE(ref[i], ref[i - 1]);
    }
    EXPECT_LT(ref.back(), static_cast<std::uint64_t>(p.duration_s * 1e6));
  }
}

TEST(ArrivalSchedule, PhaseSeedsComeFromOneStream) {
  // The generator derives per-phase seeds from one splitmix stream; pin the
  // derivation so appending a phase never perturbs earlier phases.
  Rng seeder(7);
  const std::uint64_t s0 = seeder.next_u64();
  const std::uint64_t s1 = seeder.next_u64();
  EXPECT_NE(s0, s1);
  Rng again(7);
  EXPECT_EQ(again.next_u64(), s0);
}

TEST(ArrivalSchedule, RejectsInvalidPhases) {
  ArrivalPhase p = poisson_phase(0.0, 1.0);
  EXPECT_THROW(arrival_schedule(p, 1), std::invalid_argument);
  p = poisson_phase(10.0, 1.0);
  p.process = "lunar";
  EXPECT_THROW(arrival_schedule(p, 1), std::invalid_argument);
  p.process = "diurnal";
  p.amplitude = 1.5;
  EXPECT_THROW(arrival_schedule(p, 1), std::invalid_argument);
  p.process = "bursty";
  p.amplitude = 0.5;
  p.mean_on_s = 0.0;
  EXPECT_THROW(arrival_schedule(p, 1), std::invalid_argument);
}

// ------------------------------------------------- statistical shape ---

TEST(ArrivalSchedule, PoissonHitsItsMeanRate) {
  const std::vector<std::uint64_t> s =
      arrival_schedule(poisson_phase(500.0, 4.0), 9);
  // E = 2000, sd = sqrt(2000) ~ 45; +-4 sigma. Deterministic for the fixed
  // seed — the bounds document the contract, they do not gamble.
  EXPECT_GT(s.size(), 1820u);
  EXPECT_LT(s.size(), 2180u);
}

TEST(ArrivalSchedule, DiurnalModulatesWithinThePeriod) {
  ArrivalPhase p;
  p.process = "diurnal";
  p.rate_rps = 300.0;
  p.duration_s = 2.0;
  p.period_s = 2.0;  // one full day: peak in the first half, trough second
  p.amplitude = 0.8;
  const std::vector<std::uint64_t> s = arrival_schedule(p, 21);
  std::size_t first = 0;
  for (const std::uint64_t t : s) first += (t < 1'000'000) ? 1 : 0;
  const std::size_t second = s.size() - first;
  // Mean rate over the halves is 300*(1 +- 0.8*2/pi) ~ 453 vs 147 rps.
  EXPECT_GT(first, 2 * second);
  // Long-run mean is still rate_rps * duration within ~4 sigma.
  EXPECT_NEAR(static_cast<double>(s.size()), 600.0, 100.0);
}

TEST(ArrivalSchedule, BurstyKeepsMeanButConcentrates) {
  ArrivalPhase p;
  p.process = "bursty";
  p.rate_rps = 200.0;
  p.duration_s = 10.0;
  p.mean_on_s = 0.1;
  p.mean_off_s = 0.1;
  const std::vector<std::uint64_t> s = arrival_schedule(p, 3);
  // Long-run mean preserved (ON rate = rate/duty): E = 2000, generous
  // bounds because on/off sojourns add variance beyond Poisson.
  EXPECT_GT(s.size(), 1200u);
  EXPECT_LT(s.size(), 2800u);
  // Burstiness: in 50ms bins, the densest bin runs well above the mean
  // (the ON-state rate is 2x the long-run rate).
  std::vector<int> bins(200, 0);
  for (const std::uint64_t t : s) {
    ++bins[std::min<std::size_t>(static_cast<std::size_t>(t / 50'000), 199)];
  }
  const double mean_bin =
      static_cast<double>(s.size()) / static_cast<double>(bins.size());
  const int max_bin = *std::max_element(bins.begin(), bins.end());
  EXPECT_GT(static_cast<double>(max_bin), 1.5 * mean_bin);
  // And some bins are silent (OFF states exist).
  EXPECT_NE(std::find(bins.begin(), bins.end(), 0), bins.end());
}

// ------------------------------------------- generator over a real pool ---

// One briefly RandBET-trained MLP shared by the pool tests (same pattern as
// tests/test_serve.cpp).
struct Served {
  Dataset train_set, test_set;
  std::unique_ptr<Sequential> model;
  QuantScheme scheme = QuantScheme::rquant(8);

  static Served& instance() {
    static Served s;
    return s;
  }

 private:
  Served() {
    auto cfg = SyntheticConfig::mnist();
    cfg.n_train = 400;
    cfg.n_test = 160;
    train_set = make_synthetic(cfg, true);
    test_set = make_synthetic(cfg, false);
    ModelConfig mc;
    mc.arch = Arch::kMlp;
    mc.in_channels = 1;
    mc.width = 8;
    model = build_model(mc);
    TrainConfig tc;
    tc.method = Method::kRandBET;
    tc.quant = scheme;
    tc.wmax = 0.3f;
    tc.p_train = 0.01;
    tc.bit_error_loss_threshold = 99.0f;
    tc.epochs = 4;
    tc.batch_size = 50;
    tc.sgd.lr = 0.1f;
    tc.augment.max_shift = 1;
    tc.augment.cutout = 0;
    tc.augment.noise_std = 0.0f;
    train(*model, train_set, test_set, tc);
  }
};

std::vector<Replica> small_fleet(OperatingPointPlanner& planner,
                                 const RandomBitErrorModel& fault,
                                 const OperatingPointPlan& plan, int n) {
  auto base = std::make_shared<NetSnapshot>(planner.evaluator().snapshot());
  const NetQuantizer quantizer(QuantScheme::rquant(8));
  std::vector<Replica> fleet;
  fleet.reserve(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) {
    fleet.emplace_back(r, *Served::instance().model, quantizer, base,
                       fault.fault_list(*base, /*trial=*/0,
                                        plan.grid.back().rate),
                       plan.voltages(), plan.rates(), plan.chosen);
  }
  return fleet;
}

OperatingPointPlan tiny_plan(OperatingPointPlanner& planner,
                             const RandomBitErrorModel& fault) {
  SloConfig slo;
  slo.max_rerr = 1.0;
  return planner.plan(fault, Served::instance().test_set, {1.0, 0.9}, slo,
                      /*n_chips=*/1, /*batch=*/80);
}

TEST(TrafficGenerator, OpenLoopAccountingAndTimeline) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  RandomBitErrorModel fault({0.001});
  const OperatingPointPlan plan = tiny_plan(planner, fault);
  ReplicaPool pool(small_fleet(planner, fault, plan, 2),
                   {/*max_batch=*/16, /*max_wait_us=*/200,
                    /*max_queue_images=*/256});

  TrafficConfig cfg;
  cfg.seed = 5;
  cfg.window_ms = 100;
  cfg.slo.latency_us = 200000.0;
  cfg.slo.attainment = 0.9;
  cfg.phases.push_back(poisson_phase(120.0, 0.4));
  ArrivalPhase bursty;
  bursty.process = "bursty";
  bursty.rate_rps = 120.0;
  bursty.duration_s = 0.4;
  bursty.mean_on_s = 0.05;
  bursty.mean_off_s = 0.05;
  cfg.phases.push_back(bursty);

  // The offered count is knowable up front: phase seeds come from one
  // splitmix stream over cfg.seed.
  Rng seeder(cfg.seed);
  std::uint64_t expect_offered = 0;
  for (const ArrivalPhase& p : cfg.phases) {
    expect_offered += arrival_schedule(p, seeder.next_u64()).size();
  }

  TrafficGenerator gen(pool, s.test_set, cfg);
  const TrafficResult r = gen.run();
  pool.drain();

  EXPECT_EQ(r.offered, expect_offered);
  EXPECT_EQ(r.answered + r.shed, r.offered);  // no request unaccounted
  EXPECT_GT(r.answered, 0u);
  // Open loop: wall clock covers the schedule span up to the last arrival.
  EXPECT_GE(r.duration_s, 0.35);

  ASSERT_TRUE(r.timeline.is_object());
  const Json& summary = r.timeline.at("summary");
  EXPECT_EQ(static_cast<std::uint64_t>(summary.at("offered").as_int()),
            r.offered);
  EXPECT_EQ(static_cast<std::uint64_t>(summary.at("shed").as_int()), r.shed);
  const Json& windows = r.timeline.at("windows");
  // ~0.8s of load at 100ms windows plus the drain tail.
  EXPECT_GE(windows.size(), 6u);
  std::uint64_t win_offered = 0, win_completed = 0;
  for (const Json& w : windows.items()) {
    win_offered += static_cast<std::uint64_t>(w.at("offered").as_int());
    win_completed += static_cast<std::uint64_t>(w.at("completed").as_int());
  }
  // Window columns tile the run exactly: no arrival or completion is
  // double-counted across boundaries.
  EXPECT_EQ(win_offered, r.offered);
  EXPECT_EQ(win_completed, r.answered);
}

TEST(TrafficGenerator, ShedsOnAdmissionRejectionWithoutRetry) {
  Served& s = Served::instance();
  OperatingPointPlanner planner(*s.model, s.scheme);
  RandomBitErrorModel fault({0.001});
  const OperatingPointPlan plan = tiny_plan(planner, fault);
  // A 1-image queue in front of 1 replica at 600 rps: most arrivals find
  // the queue full. Open loop means they shed — no retries, no blocking.
  ReplicaPool pool(small_fleet(planner, fault, plan, 1),
                   {/*max_batch=*/1, /*max_wait_us=*/0,
                    /*max_queue_images=*/1});
  TrafficConfig cfg;
  cfg.seed = 11;
  cfg.window_ms = 100;
  cfg.phases.push_back(poisson_phase(600.0, 0.3));

  TrafficGenerator gen(pool, s.test_set, cfg);
  const TrafficResult r = gen.run();
  pool.drain();

  EXPECT_GT(r.shed, 0u);
  EXPECT_EQ(r.answered + r.shed, r.offered);
  // Shed arrivals poison the SLO verdict even if served latency was fine.
  const Json& summary = r.timeline.at("summary");
  EXPECT_FALSE(summary.at("slo_met").as_bool());
}

// ------------------------------------------------------- report diffing ---

Json serve_report(double attainment, double p99_us, long shed, int seed) {
  Json spec = Json::object();
  spec.set("name", "t");
  spec.set("kind", "serve");
  spec.set("seed", seed);
  Json slo = Json::object();
  slo.set("latency_us", 100000.0);
  slo.set("attainment", 0.99);
  Json summary = Json::object();
  summary.set("offered", 100);
  summary.set("attainment", attainment);
  summary.set("p50_us", 500.0);
  summary.set("p99_us", p99_us);
  summary.set("shed", shed);
  summary.set("slo_met", attainment >= 0.99 && shed == 0);
  Json timeline = Json::object();
  timeline.set("slo", std::move(slo));
  timeline.set("summary", std::move(summary));
  Json serve = Json::object();
  serve.set("clean_err", 0.1);
  serve.set("timeline", std::move(timeline));
  Json j = Json::object();
  j.set("kind", "serve");
  j.set("spec", std::move(spec));
  j.set("serve", std::move(serve));
  return j;
}

TEST(ReportDiff, IdenticalReportsPass) {
  const Json r = serve_report(1.0, 800.0, 0, 1);
  const api::DiffResult d = api::diff_reports(r, r);
  EXPECT_TRUE(d.comparable);
  EXPECT_TRUE(d.ok());
  EXPECT_GT(d.checks, 0);
  EXPECT_TRUE(d.regressions.empty());
}

TEST(ReportDiff, AttainmentDropAndShedAreHard) {
  const Json base = serve_report(1.0, 800.0, 0, 1);
  const api::DiffResult drop =
      api::diff_reports(base, serve_report(0.95, 800.0, 0, 1));
  EXPECT_FALSE(drop.ok());
  const api::DiffResult shed =
      api::diff_reports(base, serve_report(1.0, 800.0, 5, 1));
  EXPECT_FALSE(shed.ok());
  // Within tolerance: a 1pp dip is not a regression.
  EXPECT_TRUE(api::diff_reports(base, serve_report(0.995, 800.0, 0, 1)).ok());
}

TEST(ReportDiff, LatencyHardOnlyWhenCrossingTheSloBound) {
  const Json base = serve_report(1.0, 800.0, 0, 1);
  // 800us -> 5ms: loud growth but far under the 100ms bound — warn only.
  const api::DiffResult grew =
      api::diff_reports(base, serve_report(1.0, 5000.0, 0, 1));
  EXPECT_TRUE(grew.ok());
  EXPECT_FALSE(grew.warnings.empty());
  // 800us -> 200ms: crossed the bound the baseline met — hard.
  const api::DiffResult crossed =
      api::diff_reports(base, serve_report(1.0, 200000.0, 0, 1));
  EXPECT_FALSE(crossed.ok());
}

TEST(ReportDiff, MismatchedSpecsAreIncomparableNotPassing) {
  const api::DiffResult d = api::diff_reports(serve_report(1.0, 800.0, 0, 1),
                                              serve_report(1.0, 800.0, 0, 2));
  EXPECT_FALSE(d.comparable);
  EXPECT_FALSE(d.ok());
  EXPECT_FALSE(d.incomparable_reason.empty());
}

TEST(ReportDiff, MissingGatedFieldFailsClosed) {
  const Json base = serve_report(1.0, 800.0, 0, 1);
  Json cur = base;
  Json serve = cur.at("serve");
  Json timeline = serve.at("timeline");
  Json summary = Json::object();  // summary lost all its fields
  timeline.set("summary", std::move(summary));
  serve.set("timeline", std::move(timeline));
  cur.set("serve", std::move(serve));
  const api::DiffResult d = api::diff_reports(base, cur);
  EXPECT_FALSE(d.ok());
}

TEST(ReportDiff, NonReportDocumentsThrow) {
  EXPECT_THROW(api::diff_reports(Json::object(), serve_report(1, 800, 0, 1)),
               JsonError);
  EXPECT_THROW(api::diff_reports(serve_report(1, 800, 0, 1), Json::parse("[]")),
               JsonError);
}

}  // namespace
}  // namespace ber
