// SRAM energy/voltage model tests (Fig. 1 calibration and the paper's
// headline savings numbers).
#include <gtest/gtest.h>

#include "energy/energy_model.h"

namespace ber {
namespace {

TEST(Energy, RateAnchors) {
  SramEnergyModel m;
  EXPECT_NEAR(m.bit_error_rate(1.0), 1e-6, 1e-9);          // ~1e-4 %
  EXPECT_NEAR(m.bit_error_rate(0.75), 0.2, 0.12);          // ~20 %
  EXPECT_EQ(m.bit_error_rate(1.1), 1e-6);                  // >= Vmin
}

TEST(Energy, RateMonotoneDecreasingInVoltage) {
  SramEnergyModel m;
  double prev = 1.0;
  for (double v = 0.75; v <= 1.0; v += 0.01) {
    const double p = m.bit_error_rate(v);
    EXPECT_LE(p, prev + 1e-12);
    prev = p;
  }
}

TEST(Energy, VoltageRateInverseRoundTrip) {
  SramEnergyModel m;
  for (double p : {1e-5, 1e-4, 1e-3, 1e-2, 0.1}) {
    const double v = m.voltage_for_rate(p);
    EXPECT_NEAR(m.bit_error_rate(v), p, p * 0.01);
  }
  EXPECT_EQ(m.voltage_for_rate(1e-9), 1.0);  // below p0 -> Vmin
}

TEST(Energy, EnergyNormalizedAtVmin) {
  SramEnergyModel m;
  EXPECT_NEAR(m.energy_per_access(1.0), 1.0, 1e-9);
  EXPECT_LT(m.energy_per_access(0.8), 1.0);
  EXPECT_GT(m.energy_per_access(0.8), 0.5);
}

TEST(Energy, PaperHeadlineSavings) {
  // Paper: robustness to p = 1% allows ~30% SRAM energy saving; p ~ 0.1%
  // allows ~20%.
  SramEnergyModel m;
  EXPECT_NEAR(m.energy_saving_at_rate(0.01), 0.30, 0.04);
  EXPECT_NEAR(m.energy_saving_at_rate(0.001), 0.22, 0.04);
}

TEST(Energy, SavingsMonotoneInTolerableRate) {
  SramEnergyModel m;
  double prev = 0.0;
  for (double p : {1e-5, 1e-4, 1e-3, 1e-2, 0.05}) {
    const double s = m.energy_saving_at_rate(p);
    EXPECT_GE(s, prev);
    prev = s;
  }
}

TEST(Energy, RateClampedAtHalf) {
  SramEnergyModel m;
  EXPECT_LE(m.bit_error_rate(0.1), 0.5);
}

}  // namespace
}  // namespace ber
