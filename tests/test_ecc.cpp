// SECDED ECC tests: correction/detection guarantees over all bit positions
// and the paper's 13.5% multi-error probability at p = 1%.
#include <gtest/gtest.h>

#include "core/rng.h"
#include "ecc/secded.h"

namespace ber {
namespace {

TEST(Secded, CleanRoundTrip) {
  Rng rng(1);
  for (int t = 0; t < 200; ++t) {
    const std::uint64_t data = rng.next_u64();
    const SecdedWord w = secded_encode(data);
    const SecdedResult r = secded_decode(w);
    EXPECT_EQ(r.status, SecdedStatus::kClean);
    EXPECT_EQ(r.data, data);
  }
}

TEST(Secded, CorrectsEverySingleBitPosition) {
  Rng rng(2);
  for (int bit = 0; bit < 72; ++bit) {
    const std::uint64_t data = rng.next_u64();
    SecdedWord w = secded_encode(data);
    secded_flip(w, bit);
    const SecdedResult r = secded_decode(w);
    EXPECT_EQ(r.status, SecdedStatus::kCorrectedSingle) << "bit " << bit;
    EXPECT_EQ(r.data, data) << "bit " << bit;
  }
}

TEST(Secded, DetectsButCannotCorrectDoubleErrors) {
  Rng rng(3);
  int detected = 0;
  const int trials = 500;
  for (int t = 0; t < trials; ++t) {
    const std::uint64_t data = rng.next_u64();
    SecdedWord w = secded_encode(data);
    const int b1 = rng.uniform_int(0, 71);
    int b2 = rng.uniform_int(0, 71);
    while (b2 == b1) b2 = rng.uniform_int(0, 71);
    secded_flip(w, b1);
    secded_flip(w, b2);
    const SecdedResult r = secded_decode(w);
    if (r.status == SecdedStatus::kDetectedDouble) ++detected;
    // A double error must never be reported as clean or silently
    // "corrected" back to valid data that differs from the original.
    EXPECT_NE(r.status, SecdedStatus::kClean);
    EXPECT_NE(r.status, SecdedStatus::kCorrectedSingle);
  }
  EXPECT_EQ(detected, trials);  // SECDED guarantee: all doubles detected
}

TEST(Secded, TripleErrorsCanEscape) {
  // With three errors the decoder may miscorrect — that is exactly the
  // failure mode that makes ECC insufficient at high p. We only require it
  // not to crash and to produce SOME status.
  Rng rng(4);
  int silent_or_miscorrected = 0;
  for (int t = 0; t < 500; ++t) {
    const std::uint64_t data = rng.next_u64();
    SecdedWord w = secded_encode(data);
    int bits[3];
    bits[0] = rng.uniform_int(0, 71);
    do { bits[1] = rng.uniform_int(0, 71); } while (bits[1] == bits[0]);
    do {
      bits[2] = rng.uniform_int(0, 71);
    } while (bits[2] == bits[0] || bits[2] == bits[1]);
    for (int b : bits) secded_flip(w, b);
    const SecdedResult r = secded_decode(w);
    if (r.status == SecdedStatus::kCorrectedSingle && r.data != data) {
      ++silent_or_miscorrected;
    }
  }
  EXPECT_GT(silent_or_miscorrected, 0);  // miscorrection really happens
}

TEST(Secded, FlipIsInvolution) {
  SecdedWord w = secded_encode(0x123456789ABCDEFULL);
  const SecdedWord orig = w;
  for (int bit : {0, 17, 63, 64, 71}) {
    secded_flip(w, bit);
    secded_flip(w, bit);
  }
  EXPECT_EQ(w.data, orig.data);
  EXPECT_EQ(w.check, orig.check);
  EXPECT_THROW(secded_flip(w, 72), std::invalid_argument);
}

TEST(Secded, PaperUncorrectableProbability) {
  // Intro: "for p = 1%, the probability of two or more bit errors in a
  // 64-bit word is 13.5%".
  EXPECT_NEAR(secded_uncorrectable_probability(0.01, 64), 0.135, 0.002);
  // Over the full 72-bit codeword it is slightly higher.
  EXPECT_GT(secded_uncorrectable_probability(0.01, 72),
            secded_uncorrectable_probability(0.01, 64));
}

TEST(Secded, UncorrectableProbabilityMonotoneInP) {
  double prev = 0.0;
  for (double p : {0.0001, 0.001, 0.01, 0.05}) {
    const double q = secded_uncorrectable_probability(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
  EXPECT_EQ(secded_uncorrectable_probability(0.0), 0.0);
  EXPECT_THROW(secded_uncorrectable_probability(-0.1), std::invalid_argument);
}

TEST(Secded, EmpiricalWordFailureMatchesAnalytic) {
  // Inject i.i.d. bit errors at p over many codewords; the fraction with
  // >= 2 flipped bits must match the analytic formula.
  Rng rng(5);
  const double p = 0.01;
  const int words = 20000;
  int multi = 0;
  for (int w = 0; w < words; ++w) {
    int flips = 0;
    for (int b = 0; b < 72; ++b) {
      if (rng.bernoulli(p)) ++flips;
    }
    if (flips >= 2) ++multi;
  }
  EXPECT_NEAR(static_cast<double>(multi) / words,
              secded_uncorrectable_probability(p, 72), 0.01);
}

}  // namespace
}  // namespace ber
