// Energy/accuracy trade-off explorer: given a robust-trained model and an
// accuracy budget, find the lowest safe operating voltage and report the
// energy saving — the deployment decision the paper's Fig. 1 + Fig. 2
// combination enables.
//
//   ./example_energy_accuracy_tradeoff [max_rerr_increase_pct]
#include <cstdio>
#include <cstdlib>

#include "ber.h"

namespace {

// Trains one model with the given method (quickstart-sized).
std::unique_ptr<ber::Sequential> train_model(const ber::Dataset& train_set,
                                             const ber::Dataset& test_set,
                                             ber::Method method, float wmax,
                                             double p_train) {
  using namespace ber;
  ModelConfig mc;
  mc.width = 8;
  auto model = build_model(mc);
  TrainConfig tc;
  tc.method = method;
  tc.wmax = wmax;
  tc.p_train = p_train;
  tc.epochs = 30;
  tc.lr_warmup_epochs = 3;
  train(*model, train_set, test_set, tc);
  return model;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ber;
  const double budget_pct = argc > 1 ? std::atof(argv[1]) : 2.0;

  SyntheticConfig data_cfg = SyntheticConfig::cifar10();
  data_cfg.n_train = 1500;
  data_cfg.n_test = 500;
  const Dataset train_set = make_synthetic(data_cfg, true);
  const Dataset test_set = make_synthetic(data_cfg, false);

  std::printf("accuracy budget: RErr may exceed clean Err by at most %.1f%%\n\n",
              budget_pct);

  struct Candidate {
    const char* label;
    Method method;
    float wmax;
    double p_train;
  };
  const Candidate candidates[] = {
      {"RQuant only", Method::kNormal, 0.0f, 0.0},
      {"+Clipping 0.15", Method::kClipping, 0.15f, 0.0},
      {"+RandBET p=1%", Method::kRandBET, 0.15f, 0.01},
  };

  const SramEnergyModel energy;
  const QuantScheme scheme = QuantScheme::rquant(8);
  std::printf("%-16s %-9s %-12s %-9s %s\n", "method", "Err (%)",
              "max safe p(%)", "V/Vmin", "energy saving (%)");
  for (const Candidate& c : candidates) {
    auto model = train_model(train_set, test_set, c.method, c.wmax, c.p_train);
    const float clean = 100.0f * test_error(*model, test_set, &scheme);

    // Sweep voltage downward until the accuracy budget is exhausted. RErr is
    // monotone in p (persistence), so the first violation is the frontier.
    double max_safe_p = 0.0;
    for (double p : {0.0005, 0.001, 0.0025, 0.005, 0.0075, 0.01, 0.015, 0.02,
                     0.025}) {
      BitErrorConfig bits;
      bits.p = p;
      const RobustResult r = robust_error(*model, scheme, test_set, bits, 5);
      if (100.0 * r.mean_rerr > clean + budget_pct) break;
      max_safe_p = p;
    }
    if (max_safe_p == 0.0) {
      std::printf("%-16s %-9.2f none safe at tested rates\n", c.label, clean);
      continue;
    }
    std::printf("%-16s %-9.2f %-12.2f %-9.3f %.1f\n", c.label, clean,
                100.0 * max_safe_p, energy.voltage_for_rate(max_safe_p),
                100.0 * energy.energy_saving_at_rate(max_safe_p));
  }
  std::printf(
      "\nPaper headline: the robust recipe turns 'no safe undervolting' into "
      "~20-30%% SRAM energy savings inside a small accuracy budget.\n");
  return 0;
}
