// End-to-end fault-aware serving: train -> plan -> serve -> degrade ->
// recover.
//
// A RandBET-trained model is checkpointed (weights + scheme), an
// OperatingPointPlanner picks the lowest-energy voltage that meets an
// accuracy SLO, a ReplicaPool serves dynamic-batched traffic on replicas
// that hold exactly the weights faulty low-voltage chips would hold, and a
// HealthMonitor canary catches a forced degradation and walks the replica
// back up the voltage grid — the fault subset at each step comes from the
// SAME fault list the planner swept (voltage persistence).
//
//   ./example_serving_deployment
#include <cstdio>
#include <future>
#include <vector>

#include "ber.h"

int main() {
  using namespace ber;

  // 1. Train (RandBET: random bit errors injected during training).
  SyntheticConfig data_cfg = SyntheticConfig::cifar10();
  data_cfg.n_train = 1000;
  data_cfg.n_test = 400;
  const Dataset train_set = make_synthetic(data_cfg, true);
  const Dataset test_set = make_synthetic(data_cfg, false);

  ModelConfig mc;
  mc.width = 8;
  auto model = build_model(mc);
  TrainConfig tc;
  tc.method = Method::kRandBET;
  tc.wmax = 0.15f;
  tc.p_train = 0.015;
  tc.epochs = 20;
  tc.lr_warmup_epochs = 2;
  std::printf("training RandBET model (p_train=%.3f)...\n", tc.p_train);
  train(*model, train_set, test_set, tc);

  // 2. Checkpoint the deployable artifact: weights + quantization scheme.
  ensure_dir(artifacts_dir());
  const std::string ckpt = artifacts_dir() + "/serving_example.ckpt";
  save_checkpoint(ckpt, *model, tc.quant);
  auto served = build_model(mc);
  const QuantScheme scheme = load_checkpoint(ckpt, *served);
  const float clean = 100.0f * test_error(*served, test_set, &scheme);
  std::printf("checkpoint round-tripped, clean Err %.2f%%\n\n", clean);

  // 3. Plan: lowest-energy voltage whose RErr upper bound meets the SLO.
  SloConfig slo;
  slo.max_rerr = clean / 100.0 + 0.04;
  slo.z = 2.0;
  OperatingPointPlanner planner(*served, scheme);
  RandomBitErrorModel fault({/*p=*/0.02});
  const OperatingPointPlan plan = planner.plan(
      fault, test_set, {1.0, 0.94, 0.88, 0.84, 0.8, 0.76}, slo, /*n_chips=*/3);
  std::printf("SLO: RErr mean + %.0f std <= %.2f%%\n", slo.z,
              100.0 * slo.max_rerr);
  std::printf("  %-8s %-12s %-18s %-8s %s\n", "V/Vmin", "p (%)", "RErr (%)",
              "E/access", "verdict");
  for (const GridPoint& g : plan.grid) {
    std::printf("  %-8.2f %-12.4f %6.2f +-%-9.2f %-8.3f %s\n", g.voltage,
                100.0 * g.rate, 100.0 * g.rerr.mean_rerr,
                100.0 * g.rerr.std_rerr, g.energy,
                g.feasible ? "OK" : "too risky");
  }
  std::printf("-> deploy at %.2f Vmin: %.1f%% energy saving per access\n\n",
              plan.chosen_point().voltage, 100.0 * plan.energy_saving);

  // 4. Serve: three replicas (chips 0..2) behind the dynamic-batching pool,
  // with the canary monitor attached.
  HealthConfig hc;
  hc.max_err = slo.max_rerr;
  hc.period_batches = 10;
  HealthMonitor monitor(test_set.head(100), hc);
  ReplicaPool pool(planner.deploy_fleet(fault, plan, 3),
                   {/*max_batch=*/32, /*max_wait_us=*/1000}, &monitor);
  const long n_requests = 300;
  std::vector<std::future<std::vector<Prediction>>> futures;
  futures.reserve(static_cast<std::size_t>(n_requests));
  Tensor img;
  std::vector<int> lbl;
  for (long i = 0; i < n_requests; ++i) {
    const long j = i % test_set.size();
    test_set.batch(j, j + 1, img, lbl);
    futures.push_back(pool.submit(
        img.reshaped({img.shape(1), img.shape(2), img.shape(3)})));
  }
  long correct = 0;
  for (long i = 0; i < n_requests; ++i) {
    const auto preds = futures[static_cast<std::size_t>(i)].get();
    if (preds[0].label == test_set.labels[static_cast<std::size_t>(
                              i % test_set.size())]) {
      ++correct;
    }
  }
  pool.drain();
  const ServingStats stats = pool.stats();
  std::printf("served %ld requests on %zu replicas: served Err %.2f%%, "
              "mean batch %.1f, p50 %.0fus, p99 %.0fus\n\n",
              stats.requests, pool.size(),
              100.0 * (1.0 - static_cast<double>(correct) / n_requests),
              stats.mean_batch_images, stats.p50_latency_us,
              stats.p99_latency_us);

  // 5. Degrade and recover: push one replica below the plan; the canary
  // trips and steps it back up the SAME swept fault list.
  std::vector<Replica> drill = planner.deploy_fleet(fault, plan, 1);
  Replica& sick = drill[0];
  sick.deploy(plan.grid.size() - 1);
  std::printf("degradation drill: forced replica to %.2f Vmin (p=%.2f%%)\n",
              sick.point().voltage, 100.0 * sick.point().rate);
  HealthMonitor drill_monitor(test_set.head(100), hc);
  for (int i = 0; i < 16; ++i) {
    const HealthEvent ev = drill_monitor.check(sick);
    std::printf("  canary Err %.2f%% at %.2f Vmin -> %s\n",
                100.0 * ev.canary_err, ev.voltage_before,
                ev.tripped ? "TRIP, redeploy one step up" : "healthy");
    if (!ev.tripped) break;
  }
  std::printf("recovered at %.2f Vmin after %d redeploys\n",
              sick.point().voltage, drill_monitor.trips());
  return 0;
}
