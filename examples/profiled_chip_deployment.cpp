// Deployment rehearsal on unseen profiled chips: take a RandBET-trained
// model (trained ONLY on uniform random bit errors) and qualify it on three
// synthetic profiled chips with different error structure — the Tab. 5
// cross-chip generalization story as a go/no-go voltage selection tool.
//
//   ./example_profiled_chip_deployment
#include <cstdio>

#include "ber.h"

int main() {
  using namespace ber;

  SyntheticConfig data_cfg = SyntheticConfig::cifar10();
  data_cfg.n_train = 1500;
  data_cfg.n_test = 500;
  const Dataset train_set = make_synthetic(data_cfg, true);
  const Dataset test_set = make_synthetic(data_cfg, false);

  ModelConfig mc;
  mc.width = 8;
  auto model = build_model(mc);
  TrainConfig tc;
  tc.method = Method::kRandBET;
  tc.wmax = 0.15f;
  tc.p_train = 0.015;
  tc.epochs = 30;
  tc.lr_warmup_epochs = 3;
  train(*model, train_set, test_set, tc);
  const QuantScheme scheme = tc.quant;
  const float clean = 100.0f * test_error(*model, test_set, &scheme);
  std::printf("RandBET model ready, clean Err %.2f%%\n", clean);
  std::printf("qualification rule: RErr must stay below clean Err + 3%%\n\n");

  const std::pair<const char*, ProfiledChipConfig> chips[] = {
      {"chip A (uniform-like)", ProfiledChipConfig::chip1(11)},
      {"chip B (column-aligned, 0->1 biased)", ProfiledChipConfig::chip2(22)},
      {"chip C (mildly column-aligned)", ProfiledChipConfig::chip3(33)},
  };
  const SramEnergyModel energy;

  // One evaluator (one quantization) qualifies every chip and voltage.
  RobustnessEvaluator evaluator(*model, scheme);
  for (const auto& [label, cfg] : chips) {
    const ProfiledChip chip(cfg);
    std::printf("%s\n", label);
    std::printf("  %-9s %-14s %-16s %s\n", "V/Vmin", "measured p(%)",
                "RErr (%)", "verdict");
    double best_saving = 0.0;
    for (double v : {0.92, 0.88, 0.86, 0.84, 0.82}) {
      const RobustResult r = evaluator.run(ProfiledChipModel(chip, v),
                                           test_set, /*n_trials=*/4);
      const bool ok = 100.0 * r.mean_rerr < clean + 3.0;
      if (ok) best_saving = 1.0 - energy.energy_per_access(v);
      std::printf("  %-9.2f %-14.3f %6.2f +-%-7.2f %s\n", v,
                  100.0 * chip.error_rate_at(v), 100.0 * r.mean_rerr,
                  100.0 * r.std_rerr, ok ? "OK" : "too risky");
      if (!ok) break;  // rates only grow below this voltage
    }
    std::printf("  -> qualified energy saving on this chip: %.1f%%\n\n",
                100.0 * best_saving);
  }
  std::printf(
      "No per-chip profiling went into TRAINING — the model generalizes "
      "across chips and voltages, which is the paper's key deployment "
      "property.\n");
  return 0;
}
