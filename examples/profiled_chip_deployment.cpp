// Deployment rehearsal on unseen profiled chips: take a RandBET-trained
// model (trained ONLY on uniform random bit errors) and qualify it on three
// synthetic profiled chips with different error structure — the Tab. 5
// cross-chip generalization story as a go/no-go voltage selection tool.
//
// Declared through the experiment API: one api::Experiment per chip with a
// "profiled" fault and a voltage grid; the Runner sweeps every voltage from
// ONE cell-lookup pass per weight-to-memory mapping (profiled maps are
// persistent in voltage) and the model checkpoint is shared across the
// three experiments via the api cache.
//
//   ./example_profiled_chip_deployment
#include <cstdio>

#include "ber.h"

int main() {
  using namespace ber;

  // The RandBET model under test — an inline spec entry; the first
  // experiment trains it, the cache serves the other two.
  api::ModelEntry entry;
  entry.name = "profiled_deploy_cnn";
  entry.dataset.name = "c10";
  entry.dataset.config = SyntheticConfig::cifar10();
  entry.dataset.config.n_train = 1500;
  entry.dataset.config.n_test = 500;
  entry.model.width = 8;
  entry.quant = QuantScheme::rquant(8);
  entry.train.method = Method::kRandBET;
  entry.train.quant = entry.quant;
  entry.train.wmax = 0.15f;
  entry.train.p_train = 0.015;
  entry.train.epochs = 30;
  entry.train.lr_warmup_epochs = 3;

  struct ChipCase {
    const char* label;
    const char* preset;
    long seed;
  };
  const ChipCase chips[] = {
      {"chip A (uniform-like)", "chip1", 11},
      {"chip B (column-aligned, 0->1 biased)", "chip2", 22},
      {"chip C (mildly column-aligned)", "chip3", 33},
  };
  const std::vector<double> voltages{0.92, 0.88, 0.86, 0.84, 0.82};
  const SramEnergyModel energy;

  double clean_pct = -1.0;
  for (const ChipCase& c : chips) {
    Json params = Json::object();
    params.set("chip", c.preset);
    params.set("seed", c.seed);
    const api::Report report =
        api::Experiment(std::string("deploy_") + c.preset)
            .model(entry)
            .fault("profiled", std::move(params))
            .voltage_grid(voltages)
            .trials(4)
            .split("test")
            .run();
    const api::ModelReport& m = report.models.front();
    if (clean_pct < 0.0) {
      clean_pct = 100.0 * m.clean_err;
      std::printf("RandBET model ready, clean Err %.2f%%\n", clean_pct);
      std::printf("qualification rule: RErr must stay below clean Err + 3%%\n\n");
    }

    std::printf("%s\n", c.label);
    std::printf("  %-9s %-16s %s\n", "V/Vmin", "RErr (%)", "verdict");
    double best_saving = 0.0;
    bool still_ok = true;
    for (const api::ReportPoint& pt : m.points) {
      const bool ok =
          still_ok && 100.0 * pt.result.mean_rerr < clean_pct + 3.0;
      if (ok) best_saving = 1.0 - energy.energy_per_access(pt.x);
      still_ok = still_ok && ok;  // rates only grow below this voltage
      std::printf("  %-9.2f %6.2f +-%-7.2f %s\n", pt.x,
                  100.0 * pt.result.mean_rerr, 100.0 * pt.result.std_rerr,
                  ok ? "OK" : "too risky");
    }
    std::printf("  -> qualified energy saving on this chip: %.1f%%\n\n",
                100.0 * best_saving);
  }
  std::printf(
      "No per-chip profiling went into TRAINING — the model generalizes "
      "across chips and voltages, which is the paper's key deployment "
      "property.\n");
  return 0;
}
