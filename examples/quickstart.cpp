// Quickstart: train a small CNN with quantization-aware training, deploy it
// at 8-bit fixed point, inject low-voltage bit errors and measure robust
// test error — the library's core loop, declared through the experiment API
// instead of hand-wired (the identical scenario ships as
// configs/quickstart.json for ber_run).
//
//   ./example_quickstart
#include <cstdio>

#include "ber.h"

int main() {
  using namespace ber;

  // 1. Declare the scenario: dataset, model, quantization scheme, the
  //    paper's full training recipe (RQuant + clipping + RandBET, Alg. 1)
  //    and the rate grid to sweep. Everything below is data — the same
  //    sections a configs/*.json spec file has.
  api::ModelEntry entry;
  entry.name = "quickstart_cnn";  // checkpoint cache stem (reruns skip training)
  entry.dataset.name = "c10";
  entry.dataset.config = SyntheticConfig::cifar10();
  entry.dataset.config.n_train = 1500;  // quickstart-sized
  entry.dataset.config.n_test = 500;
  entry.model.width = 8;
  entry.quant = QuantScheme::rquant(8);
  entry.train.method = Method::kRandBET;
  entry.train.quant = entry.quant;
  entry.train.wmax = 0.15f;
  entry.train.p_train = 0.01;  // train against 1% bit error rate
  entry.train.epochs = 30;
  entry.train.lr_warmup_epochs = 3;

  const std::vector<double> rates{0.001, 0.005, 0.01, 0.02};

  // 2. Run it: the Runner owns train -> quantize once -> inject -> evaluate
  //    (one fault-list build per chip covers the whole rate grid).
  const api::Report report = api::Experiment("quickstart")
                                 .model(entry)
                                 .fault("random", Json::object())
                                 .rate_grid(rates)
                                 .trials(5)
                                 .split("test")
                                 .run();

  // 3. Read the results off the structured report: RErr at increasing bit
  //    error rates, i.e. at decreasing SRAM supply voltage.
  const api::ModelReport& m = report.models.front();
  std::printf("clean Err %.2f%% (quantized, fault-free)\n\n",
              100.0 * m.clean_err);
  const SramEnergyModel energy;
  std::printf("%-8s %-10s %-18s %s\n", "p (%)", "V/Vmin", "RErr (%)",
              "energy saving (%)");
  for (const api::ReportPoint& pt : m.points) {
    std::printf("%-8.2f %-10.3f %6.2f +-%-8.2f %.1f\n", 100 * pt.x,
                energy.voltage_for_rate(pt.x), 100 * pt.result.mean_rerr,
                100 * pt.result.std_rerr,
                100.0 * energy.energy_saving_at_rate(pt.x));
  }

  // 4. The full machine-readable report (what `ber_run` would emit).
  std::printf("\nreport JSON:\n%s\n", report.to_json().dump(2).c_str());

  // 5. The Prop. 1 guarantee for this estimate.
  std::printf("\nProp. 1: with n=%d test examples and l=5 patterns, the "
              "expected RErr lies within +-%.1f%% of the estimate w.p. 99%%.\n",
              entry.dataset.config.n_test,
              100.0 * prop1_epsilon(entry.dataset.config.n_test, 5, 0.01));
  return 0;
}
