// Quickstart: train a small CNN with quantization-aware training, deploy it
// at 8-bit fixed point, inject low-voltage bit errors and measure robust
// test error — the library's core loop in ~60 lines.
//
//   ./example_quickstart
#include <cstdio>

#include "ber.h"

int main() {
  using namespace ber;

  // 1. Data: the CIFAR10-analog synthetic shape dataset (see DESIGN.md).
  SyntheticConfig data_cfg = SyntheticConfig::cifar10();
  data_cfg.n_train = 1500;  // quickstart-sized
  data_cfg.n_test = 500;
  const Dataset train_set = make_synthetic(data_cfg, /*train=*/true);
  const Dataset test_set = make_synthetic(data_cfg, /*train=*/false);

  // 2. Model: SimpleNet-style CNN with GroupNorm (the paper's robust norm).
  ModelConfig model_cfg;
  model_cfg.width = 8;
  auto model = build_model(model_cfg);
  std::printf("model: %ld weights\n", model->num_weights());

  // 3. Train with the paper's full recipe: robust quantization (RQuant),
  //    weight clipping and random bit error training (RandBET, Alg. 1).
  TrainConfig train_cfg;
  train_cfg.method = Method::kRandBET;
  train_cfg.quant = QuantScheme::rquant(8);
  train_cfg.wmax = 0.15f;
  train_cfg.p_train = 0.01;  // train against 1% bit error rate
  train_cfg.epochs = 30;
  train_cfg.lr_warmup_epochs = 3;
  const TrainStats stats = train(*model, train_set, test_set, train_cfg);
  std::printf("trained %d epochs, clean Err %.2f%% (bit errors active from "
              "epoch %d)\n",
              train_cfg.epochs, 100.0 * stats.final_test_err,
              stats.bit_error_start_epoch);

  // 4. Evaluate robustness: RErr at increasing bit error rates, i.e. at
  //    decreasing SRAM supply voltage.
  const SramEnergyModel energy;
  std::printf("\n%-8s %-10s %-18s %s\n", "p (%)", "V/Vmin", "RErr (%)",
              "energy saving (%)");
  for (double p : {0.001, 0.005, 0.01, 0.02}) {
    BitErrorConfig bits;
    bits.p = p;
    const RobustResult r =
        robust_error(*model, train_cfg.quant, test_set, bits, /*n_chips=*/5);
    std::printf("%-8.2f %-10.3f %6.2f +-%-8.2f %.1f\n", 100 * p,
                energy.voltage_for_rate(p), 100 * r.mean_rerr,
                100 * r.std_rerr, 100 * energy.energy_saving_at_rate(p));
  }

  // 5. The Prop. 1 guarantee for this estimate.
  std::printf("\nProp. 1: with n=%ld test examples and l=5 patterns, the "
              "expected RErr lies within +-%.1f%% of the estimate w.p. 99%%.\n",
              test_set.size(),
              100.0 * prop1_epsilon(test_set.size(), 5, 0.01));
  return 0;
}
