// Worked example: mounting a gradient-guided bit-flip attack against a
// deployed quantized network, and measuring how much worse the adversarial
// case is than the random bit errors the paper defends against.
//
// The attacker (src/attack/attacker.h) knows the network and its
// quantization scheme, holds a batch of in-domain data, and may corrupt a
// small BUDGET of memory cells. Each round it computes weight gradients on
// its attack batch, maps them through the quantizer onto per-bit saliency
// (flipping bit k of a stored code changes the weight by a known, sign-aware
// delta of magnitude 2^k * Delta), commits the top flips, and re-evaluates.
//
//   ./example_adversarial_attack
#include <cstdio>

#include "ber.h"

int main() {
  using namespace ber;

  // 1. A deployed model: MLP on the MNIST-analog, 8-bit robust quantization.
  SyntheticConfig data_cfg = SyntheticConfig::mnist();
  data_cfg.n_train = 1000;
  data_cfg.n_test = 500;
  const Dataset train_set = make_synthetic(data_cfg, /*train=*/true);
  const Dataset test_set = make_synthetic(data_cfg, /*train=*/false);
  ModelConfig model_cfg;
  model_cfg.arch = Arch::kMlp;
  model_cfg.in_channels = 1;
  model_cfg.width = 12;
  auto model = build_model(model_cfg);
  TrainConfig train_cfg;
  train_cfg.quant = QuantScheme::rquant(8);
  train_cfg.epochs = 20;
  train_cfg.sgd.lr = 0.1f;  // small MLP converges faster with a higher lr
  train_cfg.seed = 11;
  train(*model, train_set, test_set, train_cfg);

  const RobustnessEvaluator evaluator(*model, train_cfg.quant);
  const float clean = test_error(*model, test_set, &train_cfg.quant);
  const std::size_t weights = evaluator.snapshot().total_weights();
  std::printf("deployed: %zu weights at %d bits, clean Err %.2f%%\n", weights,
              train_cfg.quant.bits, 100.0f * clean);

  // 2. Mount a 32-flip attack: 4 progressive rounds, gradients re-evaluated
  //    between rounds on a 256-example attack batch.
  AttackConfig attack_cfg;
  attack_cfg.budget = 32;
  attack_cfg.rounds = 4;
  attack_cfg.attack_examples = 256;
  BitFlipAttacker attacker(*model, train_cfg.quant, train_set, attack_cfg);
  const AttackResult result = attacker.attack(evaluator.snapshot());
  std::printf("\nattack: %zu flips committed, attack-batch loss %.3f -> %.3f\n",
              result.flips.size(), result.clean_loss, result.final_loss);
  for (std::size_t r = 0; r < result.round_loss.size(); ++r) {
    std::printf("  after round %zu: loss %.3f\n", r + 1, result.round_loss[r]);
  }

  // 3. Evaluate as a FaultModel: the same RobustnessEvaluator pipeline that
  //    runs every other scenario runs the adversary (3 independent trials),
  //    next to the budget-matched random control.
  const AdversarialBitErrorModel adv =
      make_adversarial_model(attacker, evaluator.snapshot(), 3);
  const RobustResult adv_r = evaluator.run(adv, test_set, 3);
  const AdversarialBitErrorModel rnd = random_flip_model(
      evaluator.snapshot(), static_cast<std::size_t>(attack_cfg.budget), 10);
  const RobustResult rnd_r = evaluator.run(rnd, test_set, 10);
  std::printf("\n%-34s RErr %.2f%% +-%.2f\n", adv.describe().c_str(),
              100.0f * adv_r.mean_rerr, 100.0f * adv_r.std_rerr);
  std::printf("%-34s RErr %.2f%% +-%.2f\n", rnd.describe().c_str(),
              100.0f * rnd_r.mean_rerr, 100.0f * rnd_r.std_rerr);
  std::printf("\n%d chosen flips cost %+.1f points of test error; %d random "
              "flips cost %+.1f.\n",
              attack_cfg.budget, 100.0f * (adv_r.mean_rerr - clean),
              attack_cfg.budget, 100.0f * (rnd_r.mean_rerr - clean));
  return 0;
}
