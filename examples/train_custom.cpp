// CLI training driver: train any (dataset, method, scheme) combination and
// write a checkpoint — the building block for custom experiments.
//
//   ./example_train_custom [dataset] [method] [bits] [wmax] [p_train%] [out]
//     dataset: c10 | mnist | c100        (default c10)
//     method:  normal | clip | randbet | pattbet   (default randbet)
//     bits:    2..16                     (default 8)
//     wmax:    weight clipping bound     (default 0.1; 0 disables)
//     p_train: bit error rate in %       (default 1)
//     out:     checkpoint path           (default ./custom.model)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "ber.h"

int main(int argc, char** argv) {
  using namespace ber;
  const std::string dataset = argc > 1 ? argv[1] : "c10";
  const std::string method = argc > 2 ? argv[2] : "randbet";
  const int bits = argc > 3 ? std::atoi(argv[3]) : 8;
  const float wmax = argc > 4 ? static_cast<float>(std::atof(argv[4])) : 0.1f;
  const double p_train = (argc > 5 ? std::atof(argv[5]) : 1.0) / 100.0;
  const std::string out = argc > 6 ? argv[6] : "custom.model";

  SyntheticConfig data_cfg;
  if (dataset == "c10") {
    data_cfg = SyntheticConfig::cifar10();
  } else if (dataset == "mnist") {
    data_cfg = SyntheticConfig::mnist();
  } else if (dataset == "c100") {
    data_cfg = SyntheticConfig::cifar100();
  } else {
    std::fprintf(stderr, "unknown dataset '%s'\n", dataset.c_str());
    return 1;
  }
  const Dataset train_set = make_synthetic(data_cfg, true);
  const Dataset test_set = make_synthetic(data_cfg, false);

  ModelConfig mc;
  mc.in_channels = data_cfg.channels;
  mc.image_size = data_cfg.image_size;
  mc.num_classes = data_cfg.num_classes;
  auto model = build_model(mc);

  TrainConfig tc;
  tc.quant = QuantScheme::rquant(bits);
  tc.wmax = wmax;
  tc.p_train = p_train;
  tc.epochs = dataset == "mnist" ? 12 : 25;
  tc.lr_warmup_epochs = 3;
  if (dataset == "c100") tc.bit_error_loss_threshold = 3.0f;
  if (method == "normal") {
    tc.method = Method::kNormal;
  } else if (method == "clip") {
    tc.method = Method::kClipping;
  } else if (method == "randbet") {
    tc.method = Method::kRandBET;
  } else if (method == "pattbet") {
    tc.method = Method::kPattBET;
  } else {
    std::fprintf(stderr, "unknown method '%s'\n", method.c_str());
    return 1;
  }

  std::printf("training %s / %s, m=%d, wmax=%.3f, p_train=%.2f%% (%d epochs, "
              "W=%ld)\n",
              dataset.c_str(), method.c_str(), bits, wmax, 100 * p_train,
              tc.epochs, model->num_weights());
  const TrainStats stats = train(*model, train_set, test_set, tc);
  std::printf("clean Err %.2f%%\n", 100.0 * stats.final_test_err);

  for (double p : {0.001, 0.01}) {
    BitErrorConfig bits_cfg;
    bits_cfg.p = p;
    const RobustResult r =
        robust_error(*model, tc.quant, test_set, bits_cfg, 5);
    std::printf("RErr p=%.1f%%: %.2f%% +-%.2f\n", 100 * p, 100 * r.mean_rerr,
                100 * r.std_rerr);
  }

  model->save(out);
  std::printf("checkpoint written to %s\n", out.c_str());
  return 0;
}
