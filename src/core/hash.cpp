#include "core/hash.h"

#include "core/rng.h"

namespace ber {

std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c) {
  // Two dependent splitmix64 rounds give full avalanche across the three
  // keys; constants differ per operand so (a,b,c) permutations differ.
  std::uint64_t s = a ^ (b * 0xD1B54A32D192ED03ULL) ^ (c * 0x8CB92BA72F3D8DD7ULL);
  std::uint64_t h = splitmix64(s);
  s ^= h;
  return splitmix64(s);
}

double hash_uniform(std::uint64_t seed, std::uint64_t i, std::uint64_t j) {
  return static_cast<double>(hash_mix(seed, i, j) >> 11) * 0x1.0p-53;
}

double hash_uniform2(std::uint64_t seed, std::uint64_t i, std::uint64_t j) {
  // Domain-separate from hash_uniform by perturbing the seed lane.
  return static_cast<double>(hash_mix(seed ^ 0xA5A5A5A5A5A5A5A5ULL, i, j) >> 11) *
         0x1.0p-53;
}

}  // namespace ber
