#include "core/json.h"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ber {

namespace {

const char* type_name(Json::Type t) {
  switch (t) {
    case Json::Type::kNull: return "null";
    case Json::Type::kBool: return "bool";
    case Json::Type::kNumber: return "number";
    case Json::Type::kString: return "string";
    case Json::Type::kArray: return "array";
    case Json::Type::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void type_error(const char* want, Json::Type got) {
  throw JsonError(std::string("json: expected ") + want + ", got " +
                  type_name(got));
}

// ------------------------------------------------------------------ parse ---

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  Json parse_document() {
    Json v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    std::size_t line = 1, col = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') { ++line; col = 1; } else { ++col; }
    }
    throw JsonError("json parse error at line " + std::to_string(line) + ":" +
                    std::to_string(col) + ": " + why);
  }

  bool eof() const { return pos_ >= text_.size(); }
  char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!eof()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else if (c == '/' && pos_ + 1 < text_.size() &&
                 text_[pos_ + 1] == '/') {
        while (!eof() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  void expect(char c) {
    if (eof() || text_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(const char* lit) {
    const std::size_t n = std::char_traits<char>::length(lit);
    if (text_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  Json parse_value() {
    skip_ws();
    if (eof()) fail("unexpected end of input");
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return Json(parse_string());
      case 't':
        if (consume_literal("true")) return Json(true);
        fail("invalid literal (expected 'true')");
      case 'f':
        if (consume_literal("false")) return Json(false);
        fail("invalid literal (expected 'false')");
      case 'n':
        if (consume_literal("null")) return Json();
        fail("invalid literal (expected 'null')");
      default:
        return parse_number();
    }
  }

  Json parse_object() {
    expect('{');
    Json obj = Json::object();
    skip_ws();
    if (!eof() && peek() == '}') { ++pos_; return obj; }
    for (;;) {
      skip_ws();
      if (eof() || peek() != '"') fail("expected object key string");
      std::string key = parse_string();
      if (obj.contains(key)) fail("duplicate object key \"" + key + "\"");
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return obj;
    }
  }

  Json parse_array() {
    expect('[');
    Json arr = Json::array();
    skip_ws();
    if (!eof() && peek() == ']') { ++pos_; return arr; }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (!eof()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (eof()) fail("unterminated escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text_[pos_++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
              else fail("invalid \\u escape digit");
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported —
            // spec files are ASCII in practice).
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: fail("unknown escape sequence");
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        fail("unescaped control character in string");
      } else {
        out += c;
      }
    }
    fail("unterminated string");
  }

  Json parse_number() {
    const std::size_t start = pos_;
    if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
    bool any = false;
    auto digits = [&] {
      while (!eof() && peek() >= '0' && peek() <= '9') { ++pos_; any = true; }
    };
    digits();
    if (!eof() && peek() == '.') { ++pos_; digits(); }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos_;
      if (!eof() && (peek() == '-' || peek() == '+')) ++pos_;
      digits();
    }
    if (!any) { pos_ = start; fail("invalid value"); }
    // std::from_chars, not strtod: locale-independent, so spec files parse
    // identically in embedding processes that set a comma-decimal locale
    // (and it mirrors the std::to_chars emitter — parse(dump(x)) == x).
    const char* tok_begin = text_.data() + start;
    const char* tok_end = text_.data() + pos_;
    const char* parse_begin = *tok_begin == '+' ? tok_begin + 1 : tok_begin;
    double v = 0.0;
    const auto res = std::from_chars(parse_begin, tok_end, v);
    if (res.ec != std::errc() || res.ptr != tok_end) {
      pos_ = start;
      fail("invalid number");
    }
    return Json(v);
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

void dump_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(std::string& out, double v) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan
    out += "null";
    return;
  }
  // Integral doubles print without a fraction; everything else uses the
  // shortest form that round-trips exactly.
  if (v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    out += buf;
    return;
  }
  char buf[64];
  const auto res = std::to_chars(buf, buf + sizeof(buf), v);
  out.append(buf, res.ptr);
}

}  // namespace

// -------------------------------------------------------------- accessors ---

bool Json::as_bool() const {
  if (type_ != Type::kBool) type_error("bool", type_);
  return bool_;
}

double Json::as_number() const {
  if (type_ != Type::kNumber) type_error("number", type_);
  return num_;
}

long Json::as_int() const {
  const double v = as_number();
  // 2^53: the largest magnitude below which every integer is exactly
  // representable as a double (and the bound the metrics adapters use to
  // decide a seed can ride a JSON parameter map losslessly).
  if (v != std::floor(v) || std::fabs(v) > 9007199254740992.0) {
    throw JsonError("json: expected integer, got " + dump());
  }
  return static_cast<long>(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) type_error("string", type_);
  return str_;
}

const Json::Array& Json::items() const {
  if (type_ != Type::kArray) type_error("array", type_);
  return arr_;
}

const Json::Object& Json::members() const {
  if (type_ != Type::kObject) type_error("object", type_);
  return obj_;
}

Json& Json::push_back(Json v) {
  if (type_ != Type::kArray) type_error("array", type_);
  arr_.push_back(std::move(v));
  return *this;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  type_error("array or object", type_);
}

const Json& Json::operator[](std::size_t i) const {
  const Array& a = items();
  if (i >= a.size()) throw JsonError("json: array index out of range");
  return a[i];
}

Json& Json::set(const std::string& key, Json value) {
  if (type_ != Type::kObject) type_error("object", type_);
  for (Member& m : obj_) {
    if (m.first == key) {
      m.second = std::move(value);
      return *this;
    }
  }
  obj_.emplace_back(key, std::move(value));
  return *this;
}

bool Json::contains(const std::string& key) const {
  return find(key) != nullptr;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) type_error("object", type_);
  for (const Member& m : obj_) {
    if (m.first == key) return &m.second;
  }
  return nullptr;
}

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) throw JsonError("json: missing key \"" + key + "\"");
  return *v;
}

bool Json::operator==(const Json& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case Type::kNull: return true;
    case Type::kBool: return bool_ == other.bool_;
    case Type::kNumber: return num_ == other.num_;
    case Type::kString: return str_ == other.str_;
    case Type::kArray: return arr_ == other.arr_;
    case Type::kObject: return obj_ == other.obj_;
  }
  return false;
}

// ------------------------------------------------------------ parse / dump ---

Json Json::parse(const std::string& text) {
  return Parser(text).parse_document();
}

Json Json::parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonError("json: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse(buf.str());
  } catch (const JsonError& e) {
    throw JsonError(path + ": " + e.what());
  }
}

void Json::dump_to(std::string& out, int indent, int depth) const {
  const bool pretty = indent >= 0;
  const auto newline = [&](int d) {
    if (!pretty) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: dump_number(out, num_); break;
    case Type::kString: dump_string(out, str_); break;
    case Type::kArray: {
      if (arr_.empty()) { out += "[]"; break; }
      // Arrays of scalars stay on one line even in pretty mode (rate grids
      // read better horizontally); arrays holding containers break.
      bool scalar = true;
      for (const Json& v : arr_) {
        if (v.is_array() || v.is_object()) { scalar = false; break; }
      }
      out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += pretty && scalar ? ", " : ",";
        if (!scalar) newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!scalar) newline(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) { out += "{}"; break; }
      out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        dump_string(out, obj_[i].first);
        out += pretty ? ": " : ":";
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

}  // namespace ber
