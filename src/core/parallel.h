// Minimal fork-join parallelism.
//
// The library's hot loops (RErr evaluation across chips, zoo training of
// independent models) are embarrassingly parallel at coarse granularity, so
// plain thread spawns per call are cheap relative to the work. No global
// pool, no nested-parallelism hazards.
#pragma once

#include <cstdint>
#include <functional>

namespace ber {

// Number of worker threads to use (hardware concurrency, overridable via
// BER_THREADS for tests).
int default_threads();

// Runs fn(i) for i in [0, n) on up to `threads` threads. Work is split into
// contiguous chunks. fn must be safe to call concurrently for distinct i.
void parallel_for(std::int64_t n, int threads,
                  const std::function<void(std::int64_t)>& fn);

// Convenience overload using default_threads().
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

}  // namespace ber
