// Minimal fork-join parallelism.
//
// The library's hot loops (RErr evaluation across chips, zoo training of
// independent models) are embarrassingly parallel at coarse granularity, so
// plain thread spawns per call are cheap relative to the work. No global
// pool, no nested-parallelism hazards.
#pragma once

#include <cstdint>
#include <functional>

namespace ber {

// Number of worker threads to use (hardware concurrency, overridable via
// BER_THREADS for tests).
int default_threads();

// Runs fn(i) for i in [0, n) on up to `threads` threads. Work is split into
// contiguous chunks. fn must be safe to call concurrently for distinct i.
void parallel_for(std::int64_t n, int threads,
                  const std::function<void(std::int64_t)>& fn);

// Convenience overload using default_threads().
void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn);

// True on threads spawned by parallel_for (or marked with
// ParallelWorkerScope). Lets inner layers — e.g. the blocked GEMM's
// intra-call sharding — fall back to serial instead of oversubscribing the
// machine T^2 when they already run inside a coarse-grained worker.
bool in_parallel_worker();

// RAII marker for worker threads created outside parallel_for (serving
// replicas, custom pools).
class ParallelWorkerScope {
 public:
  ParallelWorkerScope();
  ~ParallelWorkerScope();
  ParallelWorkerScope(const ParallelWorkerScope&) = delete;
  ParallelWorkerScope& operator=(const ParallelWorkerScope&) = delete;

 private:
  bool prev_;
};

}  // namespace ber
