// Minimal JSON value, parser and emitter — no third-party dependencies.
//
// This is the serialization substrate of the declarative experiment API
// (src/api/): ExperimentSpec round-trips through it, ber_run reads spec
// files with it, the Runner emits structured Reports with it, and the JSON
// benches (bench_injection / bench_kernels / bench_serving /
// bench_adv_attack) build their reports on it instead of ad-hoc printf
// string-building.
//
// Scope, deliberately small:
//   * values: null, bool, number (double), string, array, object;
//   * objects preserve insertion order (spec files stay diff-able after a
//     parse -> emit round trip) — equality is therefore order-sensitive;
//   * the parser accepts // line comments (spec files are documented
//     in-line; the emitter never writes comments);
//   * numbers are emitted with the shortest representation that parses back
//     to the same double (std::to_chars), so parse(dump(x)) == x exactly —
//     the property the spec round-trip tests pin.
//
// Parse errors throw JsonError with a line:column location and a hint.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace ber {

class JsonError : public std::runtime_error {
 public:
  explicit JsonError(const std::string& what) : std::runtime_error(what) {}
};

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };
  using Array = std::vector<Json>;
  using Member = std::pair<std::string, Json>;
  using Object = std::vector<Member>;  // insertion-ordered

  Json() : type_(Type::kNull) {}
  Json(std::nullptr_t) : type_(Type::kNull) {}
  Json(bool v) : type_(Type::kBool), bool_(v) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::uint64_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(const char* v) : type_(Type::kString), str_(v) {}
  Json(std::string v) : type_(Type::kString), str_(std::move(v)) {}

  static Json array() { Json j; j.type_ = Type::kArray; return j; }
  static Json array(Array items) {
    Json j; j.type_ = Type::kArray; j.arr_ = std::move(items); return j;
  }
  static Json object() { Json j; j.type_ = Type::kObject; return j; }

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  // Typed accessors; throw JsonError on a type mismatch.
  bool as_bool() const;
  double as_number() const;
  // as_number, checked to be integral and in range.
  long as_int() const;
  const std::string& as_string() const;
  const Array& items() const;
  const Object& members() const;

  // Array building / access.
  Json& push_back(Json v);
  std::size_t size() const;              // array items or object members
  const Json& operator[](std::size_t i) const;

  // Object building / access. set() replaces an existing key in place.
  Json& set(const std::string& key, Json value);
  bool contains(const std::string& key) const;
  // Pointer to the member value, or nullptr when absent (object only).
  const Json* find(const std::string& key) const;
  // Member lookup; throws JsonError when the key is absent.
  const Json& at(const std::string& key) const;

  bool operator==(const Json& other) const;

  // Parses a JSON document (with optional // line comments). Trailing
  // non-whitespace after the document is an error.
  static Json parse(const std::string& text);
  // Reads and parses a file; errors mention the path.
  static Json parse_file(const std::string& path);

  // Serializes. indent < 0 -> compact one-liner; indent >= 0 -> pretty,
  // `indent` spaces per level.
  std::string dump(int indent = -1) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  Array arr_;
  Object obj_;
};

}  // namespace ber
