// Process-level repro knobs (artifact cache dir, fast mode). Centralized so
// benches, tests and examples agree on behaviour.
#pragma once

#include <string>

namespace ber {

// Directory for trained-model artifacts (the bench zoo cache). Controlled by
// BER_ARTIFACTS; defaults to "artifacts" relative to the current directory,
// falling back to /root/repo/artifacts if that exists.
std::string artifacts_dir();

// True when BER_FAST=1: benches and the zoo shrink epochs / chips / test
// subsets to smoke-test scale.
bool fast_mode();

// Ensures a directory exists (mkdir -p semantics). Throws on failure.
void ensure_dir(const std::string& path);

// True if a regular file exists at `path`.
bool file_exists(const std::string& path);

}  // namespace ber
