// Tiny binary (de)serialization for model checkpoints and artifacts.
//
// Format: little-endian PODs, length-prefixed strings/vectors, and a magic +
// version header written by users of the API. Intentionally simple — files
// are produced and consumed by this library only.
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace ber {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary) {
    if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
  }

  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  void write_string(const std::string& s) {
    write_pod<std::uint64_t>(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_pod<std::uint64_t>(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  bool good() const { return out_.good(); }

 private:
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    in_.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in_) throw std::runtime_error("BinaryReader: truncated file");
    return v;
  }

  std::string read_string() {
    const auto n = read_pod<std::uint64_t>();
    std::string s(n, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(n));
    if (!in_) throw std::runtime_error("BinaryReader: truncated string");
    return s;
  }

  template <typename T>
  std::vector<T> read_vector() {
    const auto n = read_pod<std::uint64_t>();
    std::vector<T> v(n);
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(n * sizeof(T)));
    if (!in_) throw std::runtime_error("BinaryReader: truncated vector");
    return v;
  }

 private:
  std::ifstream in_;
};

}  // namespace ber
