// Tiny binary (de)serialization for model checkpoints and artifacts.
//
// Format: little-endian PODs, length-prefixed strings/vectors, and a magic +
// version header written by users of the API. Intentionally simple — files
// are produced and consumed by this library only — but reads are defensive:
// a truncated or corrupt file (short read, length prefix larger than the
// bytes that remain) throws std::runtime_error instead of returning garbage
// or attempting an absurd allocation.
#pragma once

#include <cstdint>
#include <fstream>
#include <stdexcept>
#include <string>
#include <type_traits>
#include <vector>

namespace ber {

class BinaryWriter {
 public:
  explicit BinaryWriter(const std::string& path)
      : out_(path, std::ios::binary) {
    if (!out_) throw std::runtime_error("BinaryWriter: cannot open " + path);
  }

  template <typename T>
  void write_pod(const T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    out_.write(reinterpret_cast<const char*>(&v), sizeof(T));
  }

  void write_string(const std::string& s) {
    write_pod<std::uint64_t>(s.size());
    out_.write(s.data(), static_cast<std::streamsize>(s.size()));
  }

  template <typename T>
  void write_vector(const std::vector<T>& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    write_pod<std::uint64_t>(v.size());
    out_.write(reinterpret_cast<const char*>(v.data()),
               static_cast<std::streamsize>(v.size() * sizeof(T)));
  }

  bool good() const { return out_.good(); }

 private:
  std::ofstream out_;
};

class BinaryReader {
 public:
  explicit BinaryReader(const std::string& path)
      : in_(path, std::ios::binary) {
    if (!in_) throw std::runtime_error("BinaryReader: cannot open " + path);
    in_.seekg(0, std::ios::end);
    size_ = static_cast<std::uint64_t>(in_.tellg());
    in_.seekg(0, std::ios::beg);
  }

  template <typename T>
  T read_pod() {
    static_assert(std::is_trivially_copyable_v<T>);
    T v{};
    in_.read(reinterpret_cast<char*>(&v), sizeof(T));
    if (!in_) throw std::runtime_error("BinaryReader: truncated file");
    return v;
  }

  std::string read_string() {
    const auto n = checked_length(read_pod<std::uint64_t>(), 1, "string");
    std::string s(n, '\0');
    in_.read(s.data(), static_cast<std::streamsize>(n));
    if (!in_) throw std::runtime_error("BinaryReader: truncated string");
    return s;
  }

  template <typename T>
  std::vector<T> read_vector() {
    const auto n =
        checked_length(read_pod<std::uint64_t>(), sizeof(T), "vector");
    std::vector<T> v(n);
    in_.read(reinterpret_cast<char*>(v.data()),
             static_cast<std::streamsize>(n * sizeof(T)));
    if (!in_) throw std::runtime_error("BinaryReader: truncated vector");
    return v;
  }

  // Bytes left between the read cursor and end-of-file.
  std::uint64_t remaining() {
    return size_ - static_cast<std::uint64_t>(in_.tellg());
  }

 private:
  // Rejects length prefixes that promise more payload than the file holds —
  // the signature of corruption — before any allocation happens.
  std::size_t checked_length(std::uint64_t n, std::size_t elem_size,
                             const char* what) {
    if (n > remaining() / elem_size) {
      throw std::runtime_error(std::string("BinaryReader: corrupt ") + what +
                               " length prefix (" + std::to_string(n) +
                               " elements exceeds remaining file size)");
    }
    return static_cast<std::size_t>(n);
  }

  std::ifstream in_;
  std::uint64_t size_ = 0;
};

}  // namespace ber
