#include "core/parallel.h"

#include <algorithm>
#include <cstdlib>
#include <thread>
#include <vector>

namespace ber {

int default_threads() {
  if (const char* env = std::getenv("BER_THREADS")) {
    const int n = std::atoi(env);
    if (n > 0) return n;
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {
thread_local bool tls_in_worker = false;
}  // namespace

bool in_parallel_worker() { return tls_in_worker; }

ParallelWorkerScope::ParallelWorkerScope() : prev_(tls_in_worker) {
  tls_in_worker = true;
}

ParallelWorkerScope::~ParallelWorkerScope() { tls_in_worker = prev_; }

void parallel_for(std::int64_t n, int threads,
                  const std::function<void(std::int64_t)>& fn) {
  if (n <= 0) return;
  threads = static_cast<int>(
      std::max<std::int64_t>(1, std::min<std::int64_t>(threads, n)));
  if (threads == 1) {
    for (std::int64_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> workers;
  workers.reserve(threads);
  const std::int64_t chunk = (n + threads - 1) / threads;
  for (int t = 0; t < threads; ++t) {
    const std::int64_t begin = t * chunk;
    const std::int64_t end = std::min<std::int64_t>(begin + chunk, n);
    if (begin >= end) break;
    workers.emplace_back([&fn, begin, end] {
      const ParallelWorkerScope worker_mark;
      for (std::int64_t i = begin; i < end; ++i) fn(i);
    });
  }
  for (auto& w : workers) w.join();
}

void parallel_for(std::int64_t n, const std::function<void(std::int64_t)>& fn) {
  parallel_for(n, default_threads(), fn);
}

}  // namespace ber
