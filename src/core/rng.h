// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (weight init, data synthesis,
// augmentation, SGD shuffling) draw from this stateful generator; bit error
// *sampling* instead uses the stateless counter hash in core/hash.h so that
// "chips" are pure seeds and the persistence property of Sec. 3 of the paper
// holds exactly.
#pragma once

#include <cstdint>

namespace ber {

// splitmix64 step: advances `state` and returns a 64-bit pseudo-random value.
// Public because tests and the stateless hash build on it.
std::uint64_t splitmix64(std::uint64_t& state);

// Small, fast, seedable RNG (splitmix64 stream). Deliberately not
// std::mt19937: we want identical results across platforms/libstdc++
// versions, and we rely on documented, frozen bit streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() { return splitmix64(state_); }

  // Uniform in [0, 1).
  double uniform();
  // Uniform in [lo, hi).
  double uniform(double lo, double hi);
  // Uniform integer in [lo, hi] (inclusive).
  int uniform_int(int lo, int hi);
  // Standard normal via Box-Muller (no caching; two draws per call).
  float normal();
  // Bernoulli with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  std::uint64_t state_;
};

}  // namespace ber
