#include "core/table.h"

#include <cstdio>
#include <iostream>
#include <sstream>

namespace ber {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::add_separator() { rows_.emplace_back(); }

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      os << (c == 0 ? "| " : " ") << cell
         << std::string(widths[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };
  auto emit_rule = [&] {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      os << (c == 0 ? "|-" : "-") << std::string(widths[c], '-') << "-|";
    }
    os << '\n';
  };
  emit_row(headers_);
  emit_rule();
  for (const auto& row : rows_) {
    if (row.empty()) {
      emit_rule();
    } else {
      emit_row(row);
    }
  }
  return os.str();
}

void TablePrinter::print() const { std::cout << to_string() << std::flush; }

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::fmt_pm(double mean, double stddev, int precision) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%.*f ±%.*f", precision, mean, precision,
                stddev);
  return buf;
}

}  // namespace ber
