// Fixed-width console table printer used by every bench binary to emit
// paper-style rows ("Model | Err | RErr p=0.1 | ...").
#pragma once

#include <string>
#include <vector>

namespace ber {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  // Adds a row; cells beyond the header count are dropped, missing cells are
  // blank-filled.
  void add_row(std::vector<std::string> cells);
  void add_separator();

  // Renders with per-column widths and writes to stdout.
  void print() const;
  std::string to_string() const;

  // Formatting helpers for numeric cells.
  static std::string fmt(double v, int precision = 2);
  static std::string fmt_pm(double mean, double stddev, int precision = 2);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;  // empty row == separator
};

}  // namespace ber
