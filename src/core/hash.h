// Stateless counter-based hashing to U[0,1).
//
// The random bit error model of the paper (Sec. 3) requires that, for a
// fixed memory array ("chip"), the bit errors at rate p' <= p are a subset
// of those at rate p. We get this for free by assigning every (chip, weight,
// bit) coordinate a fixed uniform value u and flipping iff u < p: the flip
// set grows monotonically with p. Instead of materializing W×m uniforms per
// chip, we derive u on demand from a stateless hash of the coordinates.
#pragma once

#include <cstdint>

namespace ber {

// Mixes three 64-bit keys into one well-distributed 64-bit value.
std::uint64_t hash_mix(std::uint64_t a, std::uint64_t b, std::uint64_t c);

// Uniform double in [0, 1) derived from (seed, i, j). Fixed forever; tests
// pin distributional properties (mean, uniformity, independence proxies).
double hash_uniform(std::uint64_t seed, std::uint64_t i, std::uint64_t j);

// A second, decorrelated uniform stream over the same coordinates (used to
// pick fault *types* independently of fault *occurrence*).
double hash_uniform2(std::uint64_t seed, std::uint64_t i, std::uint64_t j);

}  // namespace ber
