#include "core/rng.h"

#include <cmath>

namespace ber {

std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

double Rng::uniform() {
  // 53-bit mantissa → uniform double in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  // Bias is negligible for our ranges (≤ 2^31) vs 2^64 modulus.
  const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

float Rng::normal() {
  // Box-Muller; guard u1 away from 0 to keep log() finite.
  double u1 = uniform();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  return static_cast<float>(r * std::cos(2.0 * M_PI * u2));
}

}  // namespace ber
