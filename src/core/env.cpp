#include "core/env.h"

#include <cstdlib>
#include <filesystem>

namespace ber {

namespace fs = std::filesystem;

std::string artifacts_dir() {
  if (const char* env = std::getenv("BER_ARTIFACTS")) return env;
  if (fs::exists("/root/repo/artifacts")) return "/root/repo/artifacts";
  return "artifacts";
}

bool fast_mode() {
  const char* env = std::getenv("BER_FAST");
  return env != nullptr && env[0] == '1';
}

void ensure_dir(const std::string& path) { fs::create_directories(path); }

bool file_exists(const std::string& path) {
  return fs::is_regular_file(path);
}

}  // namespace ber
