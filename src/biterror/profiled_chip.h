// Synthetic "profiled chip" error maps (Fig. 3 / Fig. 8 / Tab. 5).
//
// The paper evaluates generalization on bit error maps profiled from real
// SRAM arrays; those maps have structure the uniform model lacks:
//   * persistence: the faulty cells at a higher voltage are a subset of the
//     faulty cells at any lower voltage;
//   * spatial bias: some chips (chip 2) fail along memory columns;
//   * direction bias: 0-to-1 flips can dominate 1-to-0 flips.
// We reproduce all three. Each cell of a rows x cols array owns a fixed
// uniform vulnerability u; the cell is faulty at normalized voltage v iff
// u < p_model(v) where p_model is the Fig. 1 rate curve. A fraction of
// columns is "vulnerable" (process variation along bitlines): their cells
// fail at column_boost times the base rate, producing the column-aligned
// stripes of Fig. 3 (right). The chip's measured rate is therefore slightly
// above the base curve — as with real profiled chips, benches report the
// measured rate.
//
// Weights are mapped linearly onto the array (bit b of global weight w goes
// to cell (offset + w*m + b) mod (rows*cols)); varying `offset` simulates
// different weight-to-memory mappings as in Tab. 5.
#pragma once

#include <cstdint>

#include "biterror/injector.h"
#include "energy/energy_model.h"
#include "quant/net_quantizer.h"

namespace ber {

struct ProfiledChipConfig {
  long rows = 2048;
  long cols = 128;
  std::uint64_t seed = 1;
  double vulnerable_column_fraction = 0.0;  // 0 = i.i.d. faults
  double column_boost = 1.0;  // fault-rate multiplier in vulnerable columns
  // Fault type mix among faulty cells.
  double flip_fraction = 1.0;
  double set1_fraction = 0.0;
  double set0_fraction = 0.0;
  SramEnergyModel rate_model;

  // Presets modeled after the paper's chips (Fig. 3/8):
  // chip 1: approximately uniform random faults, balanced flip direction.
  static ProfiledChipConfig chip1(std::uint64_t seed = 101);
  // chip 2: strong column alignment, 0-to-1 dominated.
  static ProfiledChipConfig chip2(std::uint64_t seed = 202);
  // chip 3: mild column alignment, 0-to-1 biased.
  static ProfiledChipConfig chip3(std::uint64_t seed = 303);
};

class ProfiledChip {
 public:
  explicit ProfiledChip(const ProfiledChipConfig& config);

  const ProfiledChipConfig& config() const { return config_; }
  long num_cells() const { return config_.rows * config_.cols; }

  // Measured fault rate of the map at voltage v (fraction of cells).
  double error_rate_at(double v) const;

  // Model rate (the target the map was drawn from).
  double model_rate_at(double v) const {
    return config_.rate_model.bit_error_rate(v);
  }

  // True iff the cell at (row, col) is faulty at voltage v.
  bool is_faulty(long row, long col, double v) const;
  FaultType fault_type(long row, long col) const;
  bool column_vulnerable(long col) const;

  // Fraction of faulty cells at v that are 0-to-1 biased (SET1); Fig. 8
  // style breakdown.
  double set1_share_at(double v) const;

  // Injects this chip's faults into a quantized network snapshot with the
  // given linear mapping offset (in bits). Returns changed code count.
  std::size_t apply(NetSnapshot& snap, double v, std::uint64_t offset) const;

  // The chip's sparse fault pattern over `layout` under mapping `offset`,
  // covering every voltage >= v_min. Each cell the mapping touches is
  // recorded with its effective vulnerability u, so applying the list at
  // rate model_rate_at(v) reproduces apply(snap, v, offset) bit-exactly for
  // any v >= v_min — the profiled map is persistent in voltage (faulty cells
  // at a higher voltage are a subset of those at a lower one), so ONE cell
  // lookup sweep per mapping serves a whole voltage grid
  // (RobustnessEvaluator::run_voltage_sweep).
  ChipFaultList fault_list(const NetSnapshot& layout, double v_min,
                           std::uint64_t offset) const;

 private:
  ProfiledChipConfig config_;
  std::vector<float> vulnerability_;  // per-cell u
  std::vector<std::uint8_t> type_;    // FaultType per cell
};

}  // namespace ber
