#include "biterror/injector.h"

#include <stdexcept>

#include "core/hash.h"

namespace ber {

double expected_bit_errors(double p, int bits, std::size_t weights) {
  return p * bits * static_cast<double>(weights);
}

bool cell_faulty(std::uint64_t chip_seed, std::uint64_t weight_index,
                 std::uint64_t bit, double p) {
  return hash_uniform(chip_seed, weight_index, bit) < p;
}

FaultType fault_type_at(const BitErrorConfig& config, std::uint64_t chip_seed,
                        std::uint64_t weight_index, std::uint64_t bit) {
  const double u = hash_uniform2(chip_seed, weight_index, bit);
  if (u < config.flip_fraction) return FaultType::kFlip;
  if (u < config.flip_fraction + config.set1_fraction) return FaultType::kSet1;
  return FaultType::kSet0;
}

std::uint16_t apply_fault(std::uint16_t code, int bit, FaultType type) {
  const std::uint16_t mask = static_cast<std::uint16_t>(1u << bit);
  switch (type) {
    case FaultType::kFlip:
      return code ^ mask;
    case FaultType::kSet1:
      return code | mask;
    case FaultType::kSet0:
      return static_cast<std::uint16_t>(code & ~mask);
  }
  return code;
}

std::size_t inject_random_bit_errors(NetSnapshot& snap,
                                     const BitErrorConfig& config,
                                     std::uint64_t chip_seed) {
  if (config.p < 0.0 || config.p > 1.0) {
    throw std::invalid_argument("BitErrorConfig: p must be in [0,1]");
  }
  std::size_t changed = 0;
  for (std::size_t t = 0; t < snap.tensors.size(); ++t) {
    QuantizedTensor& qt = snap.tensors[t];
    const int bits = qt.scheme.bits;
    const std::uint64_t base = snap.offsets[t];
    for (std::size_t i = 0; i < qt.codes.size(); ++i) {
      const std::uint64_t widx = base + i;
      std::uint16_t code = qt.codes[i];
      const std::uint16_t before = code;
      for (int j = 0; j < bits; ++j) {
        if (!cell_faulty(chip_seed, widx, static_cast<std::uint64_t>(j),
                         config.p)) {
          continue;
        }
        code = apply_fault(code, j,
                           fault_type_at(config, chip_seed, widx,
                                         static_cast<std::uint64_t>(j)));
      }
      if (code != before) {
        qt.codes[i] = code;
        ++changed;
      }
    }
  }
  return changed;
}

}  // namespace ber
