#include "biterror/injector.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/hash.h"
#include "core/parallel.h"
#include "obs/forensics.h"

namespace ber {

void BitErrorConfig::validate() const {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("BitErrorConfig: p must be in [0,1]");
  }
  if (flip_fraction < 0.0 || set1_fraction < 0.0 || set0_fraction < 0.0) {
    throw std::invalid_argument(
        "BitErrorConfig: fault-type fractions must be non-negative");
  }
  const double sum = flip_fraction + set1_fraction + set0_fraction;
  if (std::abs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument(
        "BitErrorConfig: fault-type fractions must sum to 1");
  }
}

double expected_bit_errors(double p, int bits, std::size_t weights) {
  return p * bits * static_cast<double>(weights);
}

bool cell_faulty(std::uint64_t chip_seed, std::uint64_t weight_index,
                 std::uint64_t bit, double p) {
  return hash_uniform(chip_seed, weight_index, bit) < p;
}

FaultType fault_type_at(const BitErrorConfig& config, std::uint64_t chip_seed,
                        std::uint64_t weight_index, std::uint64_t bit) {
  const double u = hash_uniform2(chip_seed, weight_index, bit);
  if (u < config.flip_fraction) return FaultType::kFlip;
  if (u < config.flip_fraction + config.set1_fraction) return FaultType::kSet1;
  return FaultType::kSet0;
}

std::uint16_t apply_fault(std::uint16_t code, int bit, FaultType type) {
  const std::uint16_t mask = static_cast<std::uint16_t>(1u << bit);
  switch (type) {
    case FaultType::kFlip:
      return code ^ mask;
    case FaultType::kSet1:
      return code | mask;
    case FaultType::kSet0:
      return static_cast<std::uint16_t>(code & ~mask);
  }
  return code;
}

namespace {

// Elements per shard. Small enough that a single dominant conv tensor splits
// into many independent work items, large enough that per-shard overhead is
// noise. Boundaries depend only on the layout, so lists are identical for
// every thread count.
constexpr std::size_t kShardElems = 1 << 16;

}  // namespace

void ChipFaultList::init_layout(const NetSnapshot& layout) {
  tensor_sizes_.reserve(layout.tensors.size());
  tensor_bits_.reserve(layout.tensors.size());
  for (std::size_t t = 0; t < layout.tensors.size(); ++t) {
    const std::size_t size = layout.tensors[t].codes.size();
    tensor_sizes_.push_back(size);
    tensor_bits_.push_back(layout.tensors[t].scheme.bits);
    for (std::size_t b = 0; b < size; b += kShardElems) {
      shards_.push_back({static_cast<std::uint32_t>(t),
                         static_cast<std::uint32_t>(b),
                         static_cast<std::uint32_t>(
                             std::min(size, b + kShardElems)),
                         {}});
    }
  }
}

ChipFaultList::ChipFaultList(const NetSnapshot& layout,
                             const BitErrorConfig& config,
                             std::uint64_t chip_seed, double p_max,
                             int threads)
    : chip_seed_(chip_seed), p_max_(p_max) {
  config.validate();
  if (!(p_max >= 0.0 && p_max <= 1.0)) {
    throw std::invalid_argument("ChipFaultList: p_max must be in [0,1]");
  }
  init_layout(layout);
  // The sweep visits coordinates in the same (tensor, element, bit) order as
  // the scalar path; element-range shards keep that order under parallelism.
  parallel_for(static_cast<std::int64_t>(shards_.size()), threads,
               [&](std::int64_t s) {
                 Shard& shard = shards_[static_cast<std::size_t>(s)];
                 const QuantizedTensor& qt = layout.tensors[shard.tensor];
                 const int bits = qt.scheme.bits;
                 const std::uint64_t base = layout.offsets[shard.tensor];
                 for (std::uint32_t i = shard.begin; i < shard.end; ++i) {
                   const std::uint64_t widx = base + i;
                   for (int j = 0; j < bits; ++j) {
                     const double u = hash_uniform(
                         chip_seed, widx, static_cast<std::uint64_t>(j));
                     if (u >= p_max) continue;
                     const FaultType type = fault_type_at(
                         config, chip_seed, widx,
                         static_cast<std::uint64_t>(j));
                     shard.faults.push_back({i, static_cast<std::uint8_t>(j),
                                             static_cast<std::uint8_t>(type),
                                             u});
                   }
                 }
               });
}

ChipFaultList::ChipFaultList(const NetSnapshot& layout,
                             std::vector<std::vector<ChipFault>> per_tensor,
                             double p_max, std::uint64_t tag)
    : chip_seed_(tag), p_max_(p_max) {
  if (per_tensor.size() != layout.tensors.size()) {
    throw std::invalid_argument("ChipFaultList: per-tensor count mismatch");
  }
  init_layout(layout);
  for (std::size_t t = 0; t < per_tensor.size(); ++t) {
    for (std::size_t k = 0; k + 1 < per_tensor[t].size(); ++k) {
      if (per_tensor[t][k].index > per_tensor[t][k + 1].index) {
        throw std::invalid_argument(
            "ChipFaultList: per-tensor faults must be in ascending element "
            "order");
      }
    }
    if (!per_tensor[t].empty() &&
        per_tensor[t].back().index >= tensor_sizes_[t]) {
      throw std::invalid_argument(
          "ChipFaultList: fault element index outside tensor");
    }
    for (const ChipFault& f : per_tensor[t]) {
      if (f.bit >= tensor_bits_[t]) {
        throw std::invalid_argument(
            "ChipFaultList: fault bit outside the tensor's code width");
      }
    }
  }
  const auto by_index = [](const ChipFault& f, std::uint32_t b) {
    return f.index < b;
  };
  for (Shard& shard : shards_) {
    const std::vector<ChipFault>& src = per_tensor[shard.tensor];
    const auto lo =
        std::lower_bound(src.begin(), src.end(), shard.begin, by_index);
    const auto hi = std::lower_bound(lo, src.end(), shard.end, by_index);
    shard.faults.assign(lo, hi);
  }
}

std::size_t ChipFaultList::size() const {
  std::size_t n = 0;
  for (const Shard& s : shards_) n += s.faults.size();
  return n;
}

std::size_t ChipFaultList::apply(NetSnapshot& snap, double p,
                                 int threads) const {
  if (p > p_max_) {
    throw std::invalid_argument("ChipFaultList::apply: p exceeds p_max");
  }
  if (snap.tensors.size() != tensor_sizes_.size()) {
    throw std::invalid_argument("ChipFaultList::apply: layout mismatch");
  }
  for (std::size_t t = 0; t < snap.tensors.size(); ++t) {
    if (snap.tensors[t].codes.size() != tensor_sizes_[t] ||
        snap.tensors[t].scheme.bits != tensor_bits_[t]) {
      throw std::invalid_argument("ChipFaultList::apply: layout mismatch");
    }
  }
  // Forensics hook (obs/forensics.h): one relaxed load when disabled. When
  // recording, flips collect into per-shard vectors (race-free for any
  // thread count) and append to the ledger in a single batch.
  const bool forensics = obs::forensics_recording();
  std::vector<std::vector<obs::FlipRecord>> flip_recs;
  if (forensics) flip_recs.resize(shards_.size());
  std::vector<std::size_t> changed(shards_.size(), 0);
  parallel_for(
      static_cast<std::int64_t>(shards_.size()), threads,
      [&](std::int64_t s) {
        const Shard& shard = shards_[static_cast<std::size_t>(s)];
        const std::vector<ChipFault>& faults = shard.faults;
        QuantizedTensor& qt = snap.tensors[shard.tensor];
        const int width = tensor_bits_[shard.tensor];
        std::size_t n_changed = 0;
        // Entries are grouped by element index; apply each group to its code
        // word once. Shards own disjoint element ranges, so writes are
        // race-free.
        for (std::size_t k = 0; k < faults.size();) {
          const std::uint32_t idx = faults[k].index;
          const std::uint16_t before = qt.codes[idx];
          std::uint16_t code = before;
          for (; k < faults.size() && faults[k].index == idx; ++k) {
            if (faults[k].u >= p) continue;
            const std::uint16_t prev = code;
            code = apply_fault(code, faults[k].bit,
                               static_cast<FaultType>(faults[k].type));
            if (forensics) {
              flip_recs[static_cast<std::size_t>(s)].push_back(
                  {0, shard.tensor, idx, faults[k].bit,
                   static_cast<std::uint8_t>(width),
                   static_cast<std::uint8_t>(
                       obs::classify_bit(faults[k].bit, width)),
                   prev, code});
            }
          }
          if (code != before) {
            qt.codes[idx] = code;
            ++n_changed;
          }
        }
        changed[static_cast<std::size_t>(s)] = n_changed;
      });
  std::size_t total = 0;
  for (std::size_t c : changed) total += c;
  if (forensics) {
    std::vector<obs::FlipRecord> flat;
    for (auto& v : flip_recs) {
      flat.insert(flat.end(), v.begin(), v.end());
    }
    obs::fault_ledger().record_apply(std::move(flat), total);
  }
  return total;
}

std::size_t ChipFaultList::apply_delta(NetSnapshot& cur,
                                       const NetSnapshot& base, double p_from,
                                       double p_to,
                                       std::vector<ChangedCode>* changed) const {
  if (p_from > p_max_ || p_to > p_max_) {
    throw std::invalid_argument("ChipFaultList::apply_delta: p exceeds p_max");
  }
  if (cur.tensors.size() != tensor_sizes_.size() ||
      base.tensors.size() != tensor_sizes_.size()) {
    throw std::invalid_argument("ChipFaultList::apply_delta: layout mismatch");
  }
  for (std::size_t t = 0; t < cur.tensors.size(); ++t) {
    if (cur.tensors[t].codes.size() != tensor_sizes_[t] ||
        cur.tensors[t].scheme.bits != tensor_bits_[t] ||
        base.tensors[t].codes.size() != tensor_sizes_[t]) {
      throw std::invalid_argument(
          "ChipFaultList::apply_delta: layout mismatch");
    }
  }
  std::size_t faulted_at_to = 0;
  for (const Shard& shard : shards_) {
    const std::vector<ChipFault>& faults = shard.faults;
    QuantizedTensor& qt = cur.tensors[shard.tensor];
    const QuantizedTensor& bt = base.tensors[shard.tensor];
    for (std::size_t k = 0; k < faults.size();) {
      const std::uint32_t idx = faults[k].index;
      const std::uint16_t clean = bt.codes[idx];
      std::uint16_t code_from = clean;
      std::uint16_t code_to = clean;
      for (; k < faults.size() && faults[k].index == idx; ++k) {
        const int bit = faults[k].bit;
        const FaultType type = static_cast<FaultType>(faults[k].type);
        if (faults[k].u < p_from) code_from = apply_fault(code_from, bit, type);
        if (faults[k].u < p_to) code_to = apply_fault(code_to, bit, type);
      }
      if (code_to != clean) ++faulted_at_to;
      if (code_to != code_from) {
        qt.codes[idx] = code_to;
        if (changed != nullptr) changed->push_back({shard.tensor, idx});
      }
    }
  }
  return faulted_at_to;
}

std::size_t inject_random_bit_errors(NetSnapshot& snap,
                                     const BitErrorConfig& config,
                                     std::uint64_t chip_seed) {
  return inject_random_bit_errors_scalar(snap, config, chip_seed);
}

std::size_t inject_random_bit_errors_scalar(NetSnapshot& snap,
                                            const BitErrorConfig& config,
                                            std::uint64_t chip_seed) {
  config.validate();
  // Same forensics contract as ChipFaultList::apply — this is the path
  // RandomBitErrorModel::apply takes through RobustnessEvaluator::run().
  const bool forensics = obs::forensics_recording();
  std::vector<obs::FlipRecord> flip_recs;
  std::size_t changed = 0;
  for (std::size_t t = 0; t < snap.tensors.size(); ++t) {
    QuantizedTensor& qt = snap.tensors[t];
    const int bits = qt.scheme.bits;
    const std::uint64_t base = snap.offsets[t];
    for (std::size_t i = 0; i < qt.codes.size(); ++i) {
      const std::uint64_t widx = base + i;
      std::uint16_t code = qt.codes[i];
      const std::uint16_t before = code;
      for (int j = 0; j < bits; ++j) {
        if (!cell_faulty(chip_seed, widx, static_cast<std::uint64_t>(j),
                         config.p)) {
          continue;
        }
        const std::uint16_t prev = code;
        code = apply_fault(code, j,
                           fault_type_at(config, chip_seed, widx,
                                         static_cast<std::uint64_t>(j)));
        if (forensics) {
          flip_recs.push_back({0, static_cast<std::uint32_t>(t),
                               static_cast<std::uint32_t>(i),
                               static_cast<std::uint8_t>(j),
                               static_cast<std::uint8_t>(bits),
                               static_cast<std::uint8_t>(
                                   obs::classify_bit(j, bits)),
                               prev, code});
        }
      }
      if (code != before) {
        qt.codes[i] = code;
        ++changed;
      }
    }
  }
  if (forensics) {
    obs::fault_ledger().record_apply(std::move(flip_recs), changed);
  }
  return changed;
}

}  // namespace ber
