// Random bit error model BErr_p (Sec. 3 of the paper).
//
// A "chip" is a 64-bit seed. Every (chip, weight index, bit index)
// coordinate has a fixed uniform value u drawn from a stateless hash; the
// bit is faulty at rate p iff u < p. Consequences, exactly as the paper's
// error model demands:
//   * for a fixed chip, the faulty bits at p' <= p are a subset of those at
//     p (persistence across supply voltages);
//   * across chips (seeds), fault patterns are independent;
//   * the expected number of bit errors is p * m * W.
//
// Fault types: the base model flips the stored bit (0->1 and 1->0 equally
// likely on random data). For profiled-chip-style evaluation a biased mix of
// stuck-at-style faults is supported: a SET1 cell reads 1 regardless of the
// stored bit (an error iff a 0 was stored), a SET0 cell reads 0.
//
// Injection has two paths:
//   * ChipFaultList — the hot path. One O(W*m) hash sweep materializes the
//     chip's sparse fault pattern (every cell with u < p_max, together with
//     its u), after which applying the faults at ANY rate p <= p_max is
//     O(p_max*W*m): the faults at p are exactly the entries with u < p.
//     Evaluators reuse one list across every batch / voltage / rate of a
//     trial, which is where the throughput win comes from.
//   * inject_random_bit_errors_scalar — the original per-(weight,bit)
//     scalar loop, kept as the bit-exactness reference for tests and the
//     injection microbenchmark.
// Both paths consume the same hash stream, so they produce byte-identical
// snapshots for a fixed chip seed.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/net_quantizer.h"

namespace ber {

enum class FaultType { kFlip, kSet1, kSet0 };

struct BitErrorConfig {
  double p = 0.01;  // per-bit fault probability (fraction, not %)
  // Mix of fault types among faulty cells; must sum to 1. Defaults to the
  // paper's uniform flip model.
  double flip_fraction = 1.0;
  double set1_fraction = 0.0;
  double set0_fraction = 0.0;

  // Throws std::invalid_argument unless p is in [0,1] and the fractions are
  // non-negative and sum to 1 (within floating-point tolerance).
  void validate() const;

  // Chip-2-like bias from Fig. 8 (0-to-1 flips dominate): mostly SET1.
  static BitErrorConfig biased_set1(double p) {
    return {p, 0.1, 0.75, 0.15};
  }
};

// Number of bit errors that BErr_p introduces in expectation: p * m * W
// (Tab. 6 right column).
double expected_bit_errors(double p, int bits, std::size_t weights);

// One faulty cell of a chip, in tensor-local coordinates. `u` is the cell's
// hash_uniform vulnerability, kept so a list built at p_max can be filtered
// to any lower rate without re-hashing.
struct ChipFault {
  std::uint32_t index;  // element within its tensor
  std::uint8_t bit;
  std::uint8_t type;  // FaultType
  double u;
};

// The precomputed sparse fault pattern of one chip over a snapshot layout.
//
// Storage is sharded WITHIN tensors: each tensor's element range is split
// into fixed-size chunks (boundaries depend only on the layout, never on
// `threads`), and both the build sweep and apply() parallelize over shards.
// Without this, parallelism was per-tensor and one dominant conv tensor
// serialized the whole sweep. Shards partition the element space, so no two
// shards touch the same code word and the result is independent of thread
// count.
class ChipFaultList {
 public:
  // Scans every (weight, bit) coordinate of `layout` once and records the
  // cells with u < p_max. The layout only provides tensor sizes / offsets /
  // bit widths; codes are not read. `threads` > 1 opts into a shard-parallel
  // sweep — leave it at 1 when the caller is already parallel (the
  // RobustnessEvaluator runs one list per worker; nesting thread spawns
  // would oversubscribe, see core/parallel.h).
  ChipFaultList(const NetSnapshot& layout, const BitErrorConfig& config,
                std::uint64_t chip_seed, double p_max, int threads = 1);

  // Assembles a list from precomputed per-tensor fault vectors (one vector
  // per layout tensor, entries in ascending element order — checked). This
  // is how non-hash fault sources reuse the sharded apply path: e.g.
  // ProfiledChip::fault_list records each faulty cell with its vulnerability
  // u so one list serves a whole voltage grid. `tag` is reported as
  // chip_seed() for labeling.
  ChipFaultList(const NetSnapshot& layout,
                std::vector<std::vector<ChipFault>> per_tensor, double p_max,
                std::uint64_t tag = 0);

  // Applies the chip's faults at rate p <= p_max to `snap` (which must have
  // the layout the list was built for — tensor count, sizes and bit widths
  // are checked). Returns the number of code words that changed.
  // O(#faults); no hashing. Same `threads` contract as the constructor.
  std::size_t apply(NetSnapshot& snap, double p, int threads = 1) const;

  // One (tensor, element) coordinate whose code word apply_delta rewrote.
  struct ChangedCode {
    std::uint32_t tensor;
    std::uint32_t index;
  };

  // Moves a deployed snapshot between fault rates without a full redeploy:
  // `cur` holds base + faults(p_from) and is patched in place to
  // base + faults(p_to); `base` is the clean snapshot the faults were
  // applied to (same layout, also checked). Because faults are persistent
  // (the cells faulty at min(p_from, p_to) are a subset of those at the
  // larger rate), only code words whose faulted value differs between the
  // two rates are rewritten — each is appended to `changed` (if non-null)
  // so the caller can patch downstream mirrors in O(#delta) instead of
  // O(W). Works in both directions (step up or down). The return value is
  // the number of code words differing from `base` at p_to — identical to
  // what apply(base-copy, p_to) would return, so fault-count accounting is
  // unchanged under delta deploys.
  std::size_t apply_delta(NetSnapshot& cur, const NetSnapshot& base,
                          double p_from, double p_to,
                          std::vector<ChangedCode>* changed) const;

  std::uint64_t chip_seed() const { return chip_seed_; }
  double p_max() const { return p_max_; }
  std::size_t size() const;

 private:
  // One contiguous element range [begin, end) of one tensor.
  struct Shard {
    std::uint32_t tensor;
    std::uint32_t begin;
    std::uint32_t end;
    std::vector<ChipFault> faults;
  };

  void init_layout(const NetSnapshot& layout);

  std::uint64_t chip_seed_ = 0;
  double p_max_ = 0.0;
  std::vector<Shard> shards_;
  std::vector<std::size_t> tensor_sizes_;  // layout fingerprint for apply()
  std::vector<int> tensor_bits_;
};

// Injects bit errors into all tensors of the snapshot. Only the low
// `scheme.bits` of each code participate. Returns the number of code words
// that changed. One-shot convenience (a single in-place scalar pass — the
// right tool when every call uses a fresh chip, like the RandBET trainer);
// build a ChipFaultList instead when one chip's faults are reused across
// batches or rates.
std::size_t inject_random_bit_errors(NetSnapshot& snap,
                                     const BitErrorConfig& config,
                                     std::uint64_t chip_seed);

// The scalar injection loop itself (one hash per (weight, bit) coordinate,
// applied in place) — also the bit-exactness reference for ChipFaultList
// tests and the bench_injection baseline.
std::size_t inject_random_bit_errors_scalar(NetSnapshot& snap,
                                            const BitErrorConfig& config,
                                            std::uint64_t chip_seed);

// Applies one cell's fault to bit j of a code word; returns the new code.
std::uint16_t apply_fault(std::uint16_t code, int bit, FaultType type);

// The fault type of a given (chip, weight, bit) cell under `config`,
// independent of whether the cell is faulty.
FaultType fault_type_at(const BitErrorConfig& config, std::uint64_t chip_seed,
                        std::uint64_t weight_index, std::uint64_t bit);

// True iff the cell is faulty at rate p for this chip (monotone in p).
bool cell_faulty(std::uint64_t chip_seed, std::uint64_t weight_index,
                 std::uint64_t bit, double p);

}  // namespace ber
