// Random bit error model BErr_p (Sec. 3 of the paper).
//
// A "chip" is a 64-bit seed. Every (chip, weight index, bit index)
// coordinate has a fixed uniform value u drawn from a stateless hash; the
// bit is faulty at rate p iff u < p. Consequences, exactly as the paper's
// error model demands:
//   * for a fixed chip, the faulty bits at p' <= p are a subset of those at
//     p (persistence across supply voltages);
//   * across chips (seeds), fault patterns are independent;
//   * the expected number of bit errors is p * m * W.
//
// Fault types: the base model flips the stored bit (0->1 and 1->0 equally
// likely on random data). For profiled-chip-style evaluation a biased mix of
// stuck-at-style faults is supported: a SET1 cell reads 1 regardless of the
// stored bit (an error iff a 0 was stored), a SET0 cell reads 0.
#pragma once

#include <cstdint>

#include "quant/net_quantizer.h"

namespace ber {

enum class FaultType { kFlip, kSet1, kSet0 };

struct BitErrorConfig {
  double p = 0.01;  // per-bit fault probability (fraction, not %)
  // Mix of fault types among faulty cells; must sum to 1. Defaults to the
  // paper's uniform flip model.
  double flip_fraction = 1.0;
  double set1_fraction = 0.0;
  double set0_fraction = 0.0;

  // Chip-2-like bias from Fig. 8 (0-to-1 flips dominate): mostly SET1.
  static BitErrorConfig biased_set1(double p) {
    return {p, 0.1, 0.75, 0.15};
  }
};

// Number of bit errors that BErr_p introduces in expectation: p * m * W
// (Tab. 6 right column).
double expected_bit_errors(double p, int bits, std::size_t weights);

// Injects bit errors into all tensors of the snapshot. Only the low
// `scheme.bits` of each code participate. Returns the number of code words
// that changed.
std::size_t inject_random_bit_errors(NetSnapshot& snap,
                                     const BitErrorConfig& config,
                                     std::uint64_t chip_seed);

// Applies one cell's fault to bit j of a code word; returns the new code.
std::uint16_t apply_fault(std::uint16_t code, int bit, FaultType type);

// The fault type of a given (chip, weight, bit) cell under `config`,
// independent of whether the cell is faulty.
FaultType fault_type_at(const BitErrorConfig& config, std::uint64_t chip_seed,
                        std::uint64_t weight_index, std::uint64_t bit);

// True iff the cell is faulty at rate p for this chip (monotone in p).
bool cell_faulty(std::uint64_t chip_seed, std::uint64_t weight_index,
                 std::uint64_t bit, double p);

}  // namespace ber
