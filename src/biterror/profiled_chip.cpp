#include "biterror/profiled_chip.h"

#include <stdexcept>
#include <vector>

#include "core/hash.h"
#include "obs/forensics.h"

namespace ber {

ProfiledChipConfig ProfiledChipConfig::chip1(std::uint64_t seed) {
  ProfiledChipConfig c;
  c.seed = seed;
  c.vulnerable_column_fraction = 0.02;
  c.column_boost = 2.0;
  c.flip_fraction = 0.9;
  c.set1_fraction = 0.05;
  c.set0_fraction = 0.05;
  return c;
}

ProfiledChipConfig ProfiledChipConfig::chip2(std::uint64_t seed) {
  ProfiledChipConfig c;
  c.seed = seed;
  c.rows = 8192;
  c.vulnerable_column_fraction = 0.12;
  c.column_boost = 25.0;
  c.flip_fraction = 0.1;
  c.set1_fraction = 0.75;
  c.set0_fraction = 0.15;
  return c;
}

ProfiledChipConfig ProfiledChipConfig::chip3(std::uint64_t seed) {
  ProfiledChipConfig c;
  c.seed = seed;
  c.rows = 8192;
  c.vulnerable_column_fraction = 0.06;
  c.column_boost = 10.0;
  c.flip_fraction = 0.2;
  c.set1_fraction = 0.65;
  c.set0_fraction = 0.15;
  return c;
}

ProfiledChip::ProfiledChip(const ProfiledChipConfig& config) : config_(config) {
  const long n = num_cells();
  if (n <= 0) throw std::invalid_argument("ProfiledChip: empty array");
  vulnerability_.resize(static_cast<std::size_t>(n));
  type_.resize(static_cast<std::size_t>(n));
  for (long r = 0; r < config_.rows; ++r) {
    for (long c = 0; c < config_.cols; ++c) {
      const std::size_t idx = static_cast<std::size_t>(r * config_.cols + c);
      // Vulnerable columns store u / boost: their cells cross the u < p
      // threshold at column_boost times the base rate, producing the
      // column-aligned stripes of Fig. 3 while keeping persistence exact.
      double u = hash_uniform(config_.seed, static_cast<std::uint64_t>(r),
                              static_cast<std::uint64_t>(c));
      if (column_vulnerable(c)) u /= config_.column_boost;
      vulnerability_[idx] = static_cast<float>(u);
      const double t = hash_uniform2(config_.seed, static_cast<std::uint64_t>(r),
                                     static_cast<std::uint64_t>(c));
      FaultType ft;
      if (t < config_.flip_fraction) {
        ft = FaultType::kFlip;
      } else if (t < config_.flip_fraction + config_.set1_fraction) {
        ft = FaultType::kSet1;
      } else {
        ft = FaultType::kSet0;
      }
      type_[idx] = static_cast<std::uint8_t>(ft);
    }
  }
}

double ProfiledChip::error_rate_at(double v) const {
  const double p = model_rate_at(v);
  long faulty = 0;
  for (float u : vulnerability_) {
    if (u < p) ++faulty;
  }
  return static_cast<double>(faulty) / static_cast<double>(num_cells());
}

bool ProfiledChip::is_faulty(long row, long col, double v) const {
  const double p = model_rate_at(v);
  return vulnerability_[static_cast<std::size_t>(row * config_.cols + col)] < p;
}

FaultType ProfiledChip::fault_type(long row, long col) const {
  return static_cast<FaultType>(
      type_[static_cast<std::size_t>(row * config_.cols + col)]);
}

bool ProfiledChip::column_vulnerable(long col) const {
  return hash_uniform(config_.seed ^ 0x55AA55AA55AA55AAULL, 0xC01ULL,
                      static_cast<std::uint64_t>(col)) <
         config_.vulnerable_column_fraction;
}

double ProfiledChip::set1_share_at(double v) const {
  const double p = model_rate_at(v);
  long faulty = 0, set1 = 0;
  for (std::size_t i = 0; i < vulnerability_.size(); ++i) {
    if (vulnerability_[i] < p) {
      ++faulty;
      if (static_cast<FaultType>(type_[i]) == FaultType::kSet1) ++set1;
    }
  }
  return faulty == 0 ? 0.0 : static_cast<double>(set1) / faulty;
}

std::size_t ProfiledChip::apply(NetSnapshot& snap, double v,
                                std::uint64_t offset) const {
  const double p = model_rate_at(v);
  const std::uint64_t cells = static_cast<std::uint64_t>(num_cells());
  const bool forensics = obs::forensics_recording();
  std::vector<obs::FlipRecord> flip_recs;
  std::size_t changed = 0;
  for (std::size_t t = 0; t < snap.tensors.size(); ++t) {
    QuantizedTensor& qt = snap.tensors[t];
    const int bits = qt.scheme.bits;
    const std::uint64_t base = snap.offsets[t];
    for (std::size_t i = 0; i < qt.codes.size(); ++i) {
      std::uint16_t code = qt.codes[i];
      const std::uint16_t before = code;
      for (int j = 0; j < bits; ++j) {
        const std::uint64_t bit_addr = (base + i) * bits + j;
        const std::uint64_t cell = (offset + bit_addr) % cells;
        if (vulnerability_[static_cast<std::size_t>(cell)] >= p) continue;
        const std::uint16_t prev = code;
        code = apply_fault(code, j, static_cast<FaultType>(type_[cell]));
        if (forensics) {
          flip_recs.push_back({0, static_cast<std::uint32_t>(t),
                               static_cast<std::uint32_t>(i),
                               static_cast<std::uint8_t>(j),
                               static_cast<std::uint8_t>(bits),
                               static_cast<std::uint8_t>(
                                   obs::classify_bit(j, bits)),
                               prev, code});
        }
      }
      if (code != before) {
        qt.codes[i] = code;
        ++changed;
      }
    }
  }
  if (forensics) {
    obs::fault_ledger().record_apply(std::move(flip_recs), changed);
  }
  return changed;
}

ChipFaultList ProfiledChip::fault_list(const NetSnapshot& layout, double v_min,
                                       std::uint64_t offset) const {
  const double p_max = model_rate_at(v_min);
  const std::uint64_t cells = static_cast<std::uint64_t>(num_cells());
  std::vector<std::vector<ChipFault>> per_tensor(layout.tensors.size());
  for (std::size_t t = 0; t < layout.tensors.size(); ++t) {
    const QuantizedTensor& qt = layout.tensors[t];
    const int bits = qt.scheme.bits;
    const std::uint64_t base = layout.offsets[t];
    for (std::size_t i = 0; i < qt.codes.size(); ++i) {
      for (int j = 0; j < bits; ++j) {
        const std::uint64_t bit_addr = (base + i) * bits + j;
        const std::uint64_t cell = (offset + bit_addr) % cells;
        const float u = vulnerability_[static_cast<std::size_t>(cell)];
        if (u >= p_max) continue;
        per_tensor[t].push_back({static_cast<std::uint32_t>(i),
                                 static_cast<std::uint8_t>(j), type_[cell],
                                 static_cast<double>(u)});
      }
    }
  }
  return ChipFaultList(layout, std::move(per_tensor), p_max, offset);
}

}  // namespace ber
