#include "train/grad_capture.h"

#include <algorithm>
#include <stdexcept>

#include "nn/loss.h"

namespace ber {

GradCapture capture_weight_gradients(Sequential& model,
                                     const NetQuantizer& quantizer,
                                     const NetSnapshot& snap,
                                     const Dataset& data, long batch) {
  const long n = data.size();
  if (n <= 0) {
    throw std::invalid_argument("capture_weight_gradients: empty dataset");
  }
  const std::vector<Param*> params = model.params();

  // Save everything the probe clobbers: master weights, the caller's
  // accumulated gradients, and normalization buffers (training-mode forward
  // updates BatchNorm running statistics).
  WeightStash master;
  master.save(params);
  std::vector<Tensor> saved_grads;
  saved_grads.reserve(params.size());
  for (Param* p : params) saved_grads.push_back(p->grad);
  const std::vector<Tensor*> buffers = model.buffers();
  std::vector<Tensor> saved_buffers;
  saved_buffers.reserve(buffers.size());
  for (Tensor* b : buffers) saved_buffers.push_back(*b);

  quantizer.write_dequantized(snap, params);
  model.zero_grad();

  GradCapture out;
  double loss_sum = 0.0;
  Tensor images;
  std::vector<int> labels;
  for (long start = 0; start < n; start += batch) {
    const long end = std::min(start + batch, n);
    data.batch(start, end, images, labels);
    Tensor logits = model.forward(images, /*training=*/true);
    LossStats stats = softmax_cross_entropy(logits, labels);
    // Accumulated gradients must be d(mean over n)/d(w): each pass computes
    // the batch mean, so rescale its logit gradient by b / n before backward.
    stats.grad_logits.scale(static_cast<float>(end - start) /
                            static_cast<float>(n));
    model.backward(stats.grad_logits);
    loss_sum += static_cast<double>(stats.loss) * (end - start);
  }
  out.loss = static_cast<float>(loss_sum / n);
  out.grads.reserve(params.size());
  for (Param* p : params) out.grads.push_back(p->grad);

  master.restore(params);
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->grad = saved_grads[i];
  }
  for (std::size_t i = 0; i < buffers.size(); ++i) {
    *buffers[i] = saved_buffers[i];
  }
  return out;
}

}  // namespace ber
