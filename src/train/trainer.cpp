#include "train/trainer.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <optional>

#include "biterror/injector.h"
#include "core/hash.h"
#include "core/rng.h"
#include "data/prefetch.h"
#include "eval/metrics.h"
#include "kernels/backend.h"
#include "nn/init.h"
#include "nn/loss.h"
#include "quant/net_quantizer.h"

namespace ber {

void clip_weights(const std::vector<Param*>& params, float wmax) {
  if (wmax <= 0.0f) return;
  for (Param* p : params) p->value.clamp(-wmax, wmax);
}

namespace {

// One fake-quantized forward/backward accumulation: writes dequantized
// (optionally perturbed) weights, runs the pass, leaves gradients
// accumulated in the params. Master weights must be stashed by the caller.
LossStats quantized_pass(Sequential& model, const NetQuantizer& quantizer,
                         const NetSnapshot& snap,
                         const std::vector<Param*>& params, const Tensor& x,
                         std::span<const int> labels, float label_smoothing) {
  quantizer.write_dequantized(snap, params);
  Tensor logits = model.forward(x, /*training=*/true);
  LossStats stats = softmax_cross_entropy(logits, labels, label_smoothing);
  model.backward(stats.grad_logits);
  return stats;
}

}  // namespace

TrainStats train(Sequential& model, const Dataset& train_set,
                 const Dataset& test_set, const TrainConfig& config) {
  // Per-run compute-backend override (config.backend); empty inherits the
  // caller's current backend. Training runs on this thread only, so a
  // thread-scoped override covers the whole run.
  std::optional<kernels::ScopedBackend> backend_guard;
  if (!config.backend.empty()) backend_guard.emplace(config.backend);
  Rng rng(config.seed);
  he_init(model, rng);
  const std::vector<Param*> params = model.params();

  Sgd opt(params, config.sgd);
  MultiStepLr schedule{config.sgd.lr};
  schedule.warmup_epochs = config.lr_warmup_epochs;
  NetQuantizer quantizer(config.quant);
  WeightStash stash;

  const long n = train_set.size();
  std::vector<long> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0L);

  TrainStats out;
  const bool uses_bit_errors =
      config.method == Method::kRandBET || config.method == Method::kPattBET;
  bool injection_active = false;
  int activation_epoch = -1;
  // The epoch's chip fault list, built lazily on the first injected batch
  // (PATTBET's chip never changes, so its list survives across epochs). The
  // list depends only on the snapshot layout — sizes and bit widths, which
  // are fixed for the whole run — never on the codes or ranges.
  std::optional<ChipFaultList> chip_faults;
  std::uint64_t chip_faults_seed = ~0ull;

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    opt.set_lr(schedule.at(epoch, config.epochs));
    // Fisher-Yates shuffle from our deterministic stream.
    for (long i = n - 1; i > 0; --i) {
      std::swap(order[static_cast<std::size_t>(i)],
                order[static_cast<std::size_t>(rng.uniform_int(
                    0, static_cast<int>(i)))]);
    }

    double loss_sum = 0.0;
    long correct = 0, seen = 0;

    // Gather shuffled batches through the prefetch pipeline: the producer
    // thread assembles the next batches while this thread runs the passes.
    // Gathering consumes no RNG and the epoch order is fixed above, so the
    // batch stream is bit-identical to the inline gather for any depth
    // (BER_PREFETCH_DEPTH=0 produces synchronously through the same code).
    const data::DatasetSource batch_source(train_set);
    data::PrefetchConfig prefetch;
    prefetch.chunk_images = config.batch_size;
    prefetch.depth = data::prefetch_depth();
    prefetch.order = order;
    data::PrefetchPipeline batches(batch_source, prefetch);

    data::DataChunk chunk;
    while (batches.next(chunk)) {
      Tensor& batch_images = chunk.images;
      std::vector<int>& batch_labels = chunk.labels;
      const long b = batch_images.shape(0);
      augment_batch(batch_images, config.augment, rng);

      // Projection before quantization (Alg. 1 line 6).
      clip_weights(params, config.wmax);
      model.zero_grad();

      LossStats clean_stats;
      if (config.quant_aware) {
        stash.save(params);
        const NetSnapshot snap = quantizer.quantize(params);
        clean_stats =
            quantized_pass(model, quantizer, snap, params, batch_images,
                           batch_labels, config.label_smoothing);

        if (uses_bit_errors && injection_active) {
          double p_now = config.p_train;
          if (config.curricular && activation_epoch >= 0) {
            // Ramp p/20 -> p over the remaining epochs after activation.
            const double frac = std::min(
                1.0, static_cast<double>(epoch - activation_epoch + 1) /
                         std::max(1, (config.epochs - activation_epoch) / 2));
            p_now = config.p_train * (0.05 + 0.95 * frac);
          }
          const std::uint64_t chip =
              config.method == Method::kPattBET
                  ? config.pattern_seed
                  : hash_mix(config.seed, 0xB17E44ULL,
                             static_cast<std::uint64_t>(epoch));
          NetSnapshot perturbed = snap;
          if (config.reuse_fault_lists) {
            if (!chip_faults || chip_faults_seed != chip) {
              BitErrorConfig bec;
              bec.p = config.p_train;
              chip_faults.emplace(snap, bec, chip, /*p_max=*/config.p_train);
              chip_faults_seed = chip;
            }
            chip_faults->apply(perturbed, p_now);
          } else {
            // Reference path: per-batch scalar re-hash of the same chip.
            // Persistence makes both paths byte-identical (u < p_now picks
            // the same cells whether filtered from the list or re-hashed).
            BitErrorConfig bec;
            bec.p = p_now;
            inject_random_bit_errors(perturbed, bec, chip);
          }

          if (config.alternating) {
            // Two separate updates: clean first, then perturbed with a
            // range projection so bit errors cannot grow the quantization
            // range (App. G.4 "alternating" variant).
            stash.restore(params);
            opt.step();
            clip_weights(params, config.wmax);
            std::vector<float> pre_range(params.size());
            for (std::size_t i = 0; i < params.size(); ++i) {
              pre_range[i] = params[i]->value.abs_max();
            }
            stash.save(params);
            model.zero_grad();
            quantized_pass(model, quantizer, perturbed, params, batch_images,
                           batch_labels, config.label_smoothing);
            stash.restore(params);
            opt.step();
            for (std::size_t i = 0; i < params.size(); ++i) {
              if (pre_range[i] > 0.0f) {
                params[i]->value.clamp(-pre_range[i], pre_range[i]);
              }
            }
            clip_weights(params, config.wmax);
            loss_sum += clean_stats.loss * b;
            correct += clean_stats.correct;
            seen += b;
            continue;
          }
          // Standard RANDBET: accumulate perturbed gradients on top
          // (summed update, Alg. 1 line 16).
          quantized_pass(model, quantizer, perturbed, params, batch_images,
                         batch_labels, config.label_smoothing);
        }
        stash.restore(params);
      } else {
        // Plain float training (post-training quantization experiments).
        Tensor logits = model.forward(batch_images, /*training=*/true);
        clean_stats = softmax_cross_entropy(logits, batch_labels,
                                            config.label_smoothing);
        model.backward(clean_stats.grad_logits);
      }

      opt.step();
      clip_weights(params, config.wmax);

      loss_sum += clean_stats.loss * b;
      correct += clean_stats.correct;
      seen += b;
    }

    const float epoch_loss = static_cast<float>(loss_sum / seen);
    out.epoch_loss.push_back(epoch_loss);
    out.epoch_train_err.push_back(1.0f - static_cast<float>(correct) /
                                             static_cast<float>(seen));
    // Gate bit error injection on the clean loss (Sec. 4.3: "as soon as the
    // (clean) cross-entropy loss is below 1.75").
    if (uses_bit_errors && !injection_active &&
        epoch_loss < config.bit_error_loss_threshold) {
      injection_active = true;
      activation_epoch = epoch + 1;
      out.bit_error_start_epoch = activation_epoch;
    }
  }

  // Final projection + report clean test error of the quantized model.
  clip_weights(params, config.wmax);
  out.final_test_err = test_error(model, test_set,
                                  config.quant_aware ? &config.quant : nullptr);
  return out;
}

}  // namespace ber
