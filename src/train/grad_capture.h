// Weight-gradient capture without an optimizer step.
//
// The trainer's backward pass accumulates d(loss)/d(weight) into Param::grad
// as a side effect of the update loop; the adversarial bit-flip attacker
// (src/attack/) needs exactly those gradients — of the task loss, evaluated
// at the *dequantized perturbed* weights — but must not touch the master
// weights, the accumulated gradients or the normalization buffers of the
// model it is attacking. capture_weight_gradients() packages the trainer's
// fake-quantized forward/backward (trainer.cpp quantized_pass) into a
// side-effect-free probe: weights, gradients and buffers are saved and
// restored around the pass, and the gradients are returned by value.
#pragma once

#include <vector>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "quant/net_quantizer.h"

namespace ber {

struct GradCapture {
  float loss = 0.0f;          // mean cross-entropy over `data`
  std::vector<Tensor> grads;  // d(mean loss)/d(weight), one per param
};

// Writes `snap`'s dequantized weights into `model`, runs forward/backward
// over all of `data` in chunks of `batch`, and returns the mean-loss weight
// gradients. The model is restored to its prior state (master weights,
// gradient accumulators, norm buffers) before returning.
GradCapture capture_weight_gradients(Sequential& model,
                                     const NetQuantizer& quantizer,
                                     const NetSnapshot& snap,
                                     const Dataset& data, long batch = 256);

}  // namespace ber
