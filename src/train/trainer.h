// Training methods of the paper (Sec. 4 / Alg. 1).
//
//   NORMAL   — quantization-aware training with a given fixed-point scheme
//              (fake quantization: forward on dequantized quantized weights,
//              straight-through gradients, float master weights).
//   CLIPPING — NORMAL + projection of the master weights onto
//              [-wmax, wmax] every step (Sec. 4.2).
//   RANDBET  — CLIPPING + a second forward/backward pass on weights whose
//              quantized codes received random bit errors at rate p_train;
//              the update uses the SUM of clean and perturbed gradients
//              (Alg. 1 line 16). Injection starts once the clean loss drops
//              below a threshold (the paper's 1.75 / 3.5 gating). One chip
//              (error pattern) is sampled per EPOCH — a real chip's pattern
//              is fixed, so this is the hardware-faithful granularity — and
//              its sparse ChipFaultList is built once and reapplied per
//              batch (O(#faults) instead of an O(W*m) hash sweep per step).
//   PATTBET  — like RANDBET but with ONE fixed bit error pattern (chip seed)
//              for the whole training run — the co-design baseline of
//              Tab. 3 that fails to generalize.
//
// Variants (App. G.4): curricular RANDBET ramps p from p/20 to p over the
// epochs after activation; alternating RANDBET applies clean and perturbed
// gradients as two separate updates, with the perturbed update projected
// back onto the per-tensor weight range it started from.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/augment.h"
#include "data/dataset.h"
#include "nn/optimizer.h"
#include "nn/sequential.h"
#include "quant/quantizer.h"

namespace ber {

enum class Method { kNormal, kClipping, kRandBET, kPattBET };

struct TrainConfig {
  Method method = Method::kNormal;
  QuantScheme quant = QuantScheme::rquant();
  bool quant_aware = true;  // false = plain float training (Tab. 9 top)
  float wmax = 0.0f;        // 0 disables clipping
  double p_train = 0.0;     // bit error rate during training (fraction)
  float label_smoothing = 0.0f;
  float bit_error_loss_threshold = 1.75f;  // gate for RANDBET injection
  bool curricular = false;
  bool alternating = false;
  // Build each epoch's chip fault list once and reapply it per batch (the
  // fast path). false = re-hash the same chip per batch via the scalar
  // injector — kept as the bit-exactness reference; trajectories are
  // identical for a fixed seed (tested in test_trainer.cpp).
  bool reuse_fault_lists = true;
  // Compute backend for this training run ("" = inherit the caller's
  // current backend; see src/kernels/backend.h). "blocked" trades bit-exact
  // reproducibility of trajectories across backends for throughput.
  std::string backend;

  int epochs = 20;
  int batch_size = 100;
  int lr_warmup_epochs = 0;  // linear lr ramp over the first epochs
  SgdConfig sgd;  // lr 0.05, momentum 0.9, wd 5e-4 (paper defaults)
  AugmentConfig augment;
  std::uint64_t seed = 1;          // init + shuffling + per-step chips
  std::uint64_t pattern_seed = 42; // the fixed PATTBET chip
};

struct TrainStats {
  std::vector<float> epoch_loss;
  std::vector<float> epoch_train_err;
  float final_test_err = 0.0f;
  int bit_error_start_epoch = -1;  // first epoch with injection active
};

// Initializes (He) and trains `model` in place. The returned model carries
// float master weights; callers quantize for deployment/evaluation.
TrainStats train(Sequential& model, const Dataset& train_set,
                 const Dataset& test_set, const TrainConfig& config);

// Projects all parameters onto [-wmax, wmax] (no-op if wmax <= 0).
void clip_weights(const std::vector<Param*>& params, float wmax);

}  // namespace ber
