// Model architectures.
//
// Scaled-down counterparts of the paper's networks (Tab. 6 / App. G.7):
//   * kSimpleNet — the default conv-GN-ReLU stack (SimpleNet style);
//   * kResNetSmall — residual blocks (ResNet-20/50 stand-in);
//   * kMlp — small fully-connected net (tests / MNIST-analog ablations).
// NormKind selects GroupNorm (the paper's robust default), BatchNorm (the
// Tab. 10 comparison) or no normalization.
#pragma once

#include <memory>
#include <string>

#include "nn/sequential.h"

namespace ber {

enum class Arch { kSimpleNet, kResNetSmall, kMlp };
enum class NormKind { kGroupNorm, kBatchNorm, kNone };

struct ModelConfig {
  Arch arch = Arch::kSimpleNet;
  NormKind norm = NormKind::kGroupNorm;
  int in_channels = 3;
  int image_size = 12;
  int num_classes = 10;
  int width = 12;  // base channel count (SimpleNet doubles it twice)
};

std::unique_ptr<Sequential> build_model(const ModelConfig& config);

const char* arch_name(Arch arch);
const char* norm_name(NormKind norm);

}  // namespace ber
