#include "models/factory.h"

#include <stdexcept>

#include "nn/activation.h"
#include "nn/conv2d.h"
#include "nn/linear.h"
#include "nn/norm.h"
#include "nn/pool.h"

namespace ber {

namespace {

// Largest group count <= 4 that divides `channels`.
long gn_groups(long channels) {
  for (long g = 4; g >= 1; --g) {
    if (channels % g == 0) return g;
  }
  return 1;
}

void add_norm(Sequential& seq, NormKind norm, long channels) {
  switch (norm) {
    case NormKind::kGroupNorm:
      seq.emplace<GroupNorm>(gn_groups(channels), channels);
      break;
    case NormKind::kBatchNorm:
      seq.emplace<BatchNorm2d>(channels);
      break;
    case NormKind::kNone:
      break;
  }
}

void add_conv_block(Sequential& seq, NormKind norm, long in, long out) {
  seq.emplace<Conv2d>(in, out, 3, 1, 1);
  add_norm(seq, norm, out);
  seq.emplace<ReLU>();
}

std::unique_ptr<Sequential> build_simplenet(const ModelConfig& c) {
  if (c.image_size % 4 != 0) {
    throw std::invalid_argument("SimpleNet: image_size must be divisible by 4");
  }
  auto model = std::make_unique<Sequential>();
  const long w1 = c.width, w2 = 2 * c.width, w3 = 4 * c.width;
  add_conv_block(*model, c.norm, c.in_channels, w1);
  add_conv_block(*model, c.norm, w1, w1);
  model->emplace<MaxPool2d>(2);
  add_conv_block(*model, c.norm, w1, w2);
  add_conv_block(*model, c.norm, w2, w2);
  model->emplace<MaxPool2d>(2);
  add_conv_block(*model, c.norm, w2, w3);
  model->emplace<GlobalAvgPool>();
  model->emplace<Linear>(w3, c.num_classes);
  return model;
}

Sequential make_res_body(NormKind norm, long channels) {
  Sequential body;
  body.emplace<Conv2d>(channels, channels, 3, 1, 1);
  add_norm(body, norm, channels);
  body.emplace<ReLU>();
  body.emplace<Conv2d>(channels, channels, 3, 1, 1);
  add_norm(body, norm, channels);
  return body;
}

std::unique_ptr<Sequential> build_resnet_small(const ModelConfig& c) {
  auto model = std::make_unique<Sequential>();
  const long w1 = c.width + 4;  // 16 for the default width 12
  add_conv_block(*model, c.norm, c.in_channels, w1);
  model->emplace<Residual>(make_res_body(c.norm, w1));
  model->emplace<ReLU>();
  model->emplace<MaxPool2d>(2);
  model->emplace<Residual>(make_res_body(c.norm, w1));
  model->emplace<ReLU>();
  model->emplace<MaxPool2d>(2);
  add_conv_block(*model, c.norm, w1, 2 * w1);
  model->emplace<GlobalAvgPool>();
  model->emplace<Linear>(2 * w1, c.num_classes);
  return model;
}

std::unique_ptr<Sequential> build_mlp(const ModelConfig& c) {
  auto model = std::make_unique<Sequential>();
  const long in = static_cast<long>(c.in_channels) * c.image_size * c.image_size;
  model->emplace<Flatten>();
  model->emplace<Linear>(in, 8 * c.width);
  model->emplace<ReLU>();
  model->emplace<Linear>(8 * c.width, 4 * c.width);
  model->emplace<ReLU>();
  model->emplace<Linear>(4 * c.width, c.num_classes);
  return model;
}

}  // namespace

std::unique_ptr<Sequential> build_model(const ModelConfig& config) {
  switch (config.arch) {
    case Arch::kSimpleNet:
      return build_simplenet(config);
    case Arch::kResNetSmall:
      return build_resnet_small(config);
    case Arch::kMlp:
      return build_mlp(config);
  }
  throw std::invalid_argument("build_model: unknown arch");
}

const char* arch_name(Arch arch) {
  switch (arch) {
    case Arch::kSimpleNet:
      return "SimpleNet";
    case Arch::kResNetSmall:
      return "ResNetSmall";
    case Arch::kMlp:
      return "MLP";
  }
  return "?";
}

const char* norm_name(NormKind norm) {
  switch (norm) {
    case NormKind::kGroupNorm:
      return "GN";
    case NormKind::kBatchNorm:
      return "BN";
    case NormKind::kNone:
      return "none";
  }
  return "?";
}

}  // namespace ber
