// Reference compute kernels: GEMM, im2col/col2im and softmax utilities.
//
// The GEMM here is the bit-exact seed implementation — a cache-friendly ikj
// loop — retained as the "reference" backend of src/kernels/ (the blocked,
// packed backend lives in kernels/blocked_backend.*). Layers route through
// kernels::current_backend(); these free functions stay as the determinism
// anchor for paper benches and as the parity oracle in tests.
#pragma once

#include "tensor/tensor.h"

namespace ber {

// C[m,n] = alpha * A[m,k] x B[k,n] + beta * C. Row-major, no transposes;
// callers lay out operands accordingly.
void gemm(long m, long n, long k, float alpha, const float* a, const float* b,
          float beta, float* c);

// C[m,n] += A^T[m,k] x B[k,n] where A is stored as [k,m] (i.e. implicit
// transpose of the first operand). Used by conv backward-input.
void gemm_at(long m, long n, long k, float alpha, const float* a,
             const float* b, float beta, float* c);

// C[m,n] += A[m,k] x B^T[k,n] where B is stored as [n,k]. Used by conv
// weight gradients.
void gemm_bt(long m, long n, long k, float alpha, const float* a,
             const float* b, float beta, float* c);

// Lowers one image [C,H,W] to a column matrix [C*kh*kw, OH*OW] for
// convolution with given kernel/stride/pad (zero padding).
void im2col(const float* img, long channels, long height, long width, long kh,
            long kw, long stride, long pad, float* col);

// im2col with an explicit row stride: row r of the column matrix is written
// at col + r*ld (ld >= OH*OW). Lets batch-coalesced convolution scatter N
// images into one [C*kh*kw, N*OH*OW] matrix, image i at column offset
// i*OH*OW. im2col == im2col_ld with ld = OH*OW.
void im2col_ld(const float* img, long channels, long height, long width,
               long kh, long kw, long stride, long pad, float* col, long ld);

// Adjoint of im2col: accumulates the column matrix back into the image
// gradient buffer (which must be pre-zeroed by the caller).
void col2im(const float* col, long channels, long height, long width, long kh,
            long kw, long stride, long pad, float* img);

// col2im reading rows at col + r*ld — the adjoint of im2col_ld.
void col2im_ld(const float* col, long channels, long height, long width,
               long kh, long kw, long stride, long pad, float* img, long ld);

// Output spatial size for conv/pool arithmetic.
long conv_out_size(long in, long kernel, long stride, long pad);

// In-place row-wise softmax over a [rows, cols] matrix.
void softmax_rows(Tensor& logits);

// Index of the max element of row `r` in a [rows, cols] matrix.
long argmax_row(const Tensor& m, long r);

}  // namespace ber
