// Dense float tensor with value semantics.
//
// Row-major, contiguous, NCHW convention for image batches. Deliberately
// minimal: the NN layers own all the interesting math; Tensor is storage +
// shape bookkeeping + a few elementwise helpers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ber {

class Rng;

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<long> shape);

  static Tensor zeros(std::vector<long> shape);
  static Tensor full(std::vector<long> shape, float value);
  // i.i.d. N(0, stddev^2).
  static Tensor randn(std::vector<long> shape, Rng& rng, float stddev = 1.0f);
  static Tensor uniform(std::vector<long> shape, Rng& rng, float lo, float hi);
  static Tensor from_data(std::vector<long> shape, std::vector<float> data);

  long numel() const { return static_cast<long>(data_.size()); }
  int dim() const { return static_cast<int>(shape_.size()); }
  long shape(int i) const;
  const std::vector<long>& shape() const { return shape_; }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }
  std::span<float> span() { return {data_.data(), data_.size()}; }
  std::span<const float> span() const { return {data_.data(), data_.size()}; }

  float& operator[](long i) { return data_[static_cast<std::size_t>(i)]; }
  float operator[](long i) const { return data_[static_cast<std::size_t>(i)]; }

  // Multi-dimensional access (debug-checked in tests via shape()).
  float& at(long i, long j);
  float at(long i, long j) const;
  float& at(long n, long c, long h, long w);
  float at(long n, long c, long h, long w) const;

  // Returns a copy with a new shape; numel must match. A -1 entry is
  // inferred from the remaining dimensions.
  Tensor reshaped(std::vector<long> shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  // this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);
  void scale(float alpha);
  // Element-wise clamp to [lo, hi].
  void clamp(float lo, float hi);

  float min() const;
  float max() const;
  float abs_max() const;
  double sum() const;
  double mean() const;

  std::string shape_str() const;

 private:
  std::vector<long> shape_;
  std::vector<float> data_;
};

}  // namespace ber
