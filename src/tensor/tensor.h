// Dense float tensor with value semantics.
//
// Row-major, contiguous, NCHW convention for image batches. Deliberately
// minimal: the NN layers own all the interesting math; Tensor is storage +
// shape bookkeeping + a few elementwise helpers.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ber {

class Rng;

// Thread-local toggle for arena-backed tensors. While enabled, tensors
// constructed (or copied) on this thread place their storage in the
// thread's kernel scratch arena (kernels/arena.h) instead of the heap —
// Sequential's outermost inference forward brackets the layer loop with
// this so intermediate activations cost zero heap allocations in steady
// state. Arena storage is only valid until the enclosing ArenaScope
// unwinds; whoever opens the region must copy any tensor that outlives it
// back to the heap with the toggle off (Sequential does this for the
// network output). Tensors built while the toggle is off are ordinary
// heap tensors regardless of where they are later moved or read.
bool arena_tensors_enabled();
void set_arena_tensors_enabled(bool on);

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(std::vector<long> shape);
  // Value semantics over both storage classes: copies deep-copy into
  // storage chosen by arena_tensors_enabled() at copy time (this is how a
  // result escapes an arena region — toggle off, then copy); moves steal
  // the source's storage as-is.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept;
  Tensor& operator=(Tensor&& other) noexcept;
  ~Tensor() = default;

  static Tensor zeros(std::vector<long> shape);
  static Tensor full(std::vector<long> shape, float value);
  // i.i.d. N(0, stddev^2).
  static Tensor randn(std::vector<long> shape, Rng& rng, float stddev = 1.0f);
  static Tensor uniform(std::vector<long> shape, Rng& rng, float lo, float hi);
  static Tensor from_data(std::vector<long> shape, std::vector<float> data);

  long numel() const { return ext_ ? ext_n_ : static_cast<long>(data_.size()); }
  int dim() const { return static_cast<int>(shape_.size()); }
  long shape(int i) const;
  const std::vector<long>& shape() const { return shape_; }

  float* data() { return ext_ ? ext_ : data_.data(); }
  const float* data() const { return ext_ ? ext_ : data_.data(); }
  std::span<float> span() {
    return {data(), static_cast<std::size_t>(numel())};
  }
  std::span<const float> span() const {
    return {data(), static_cast<std::size_t>(numel())};
  }

  float& operator[](long i) { return data()[i]; }
  float operator[](long i) const { return data()[i]; }

  // Multi-dimensional access (debug-checked in tests via shape()).
  float& at(long i, long j);
  float at(long i, long j) const;
  float& at(long n, long c, long h, long w);
  float at(long n, long c, long h, long w) const;

  // Returns a copy with a new shape; numel must match. A -1 entry is
  // inferred from the remaining dimensions.
  Tensor reshaped(std::vector<long> shape) const;

  void fill(float v);
  void zero() { fill(0.0f); }

  // this += alpha * other (shapes must match).
  void axpy(float alpha, const Tensor& other);
  void scale(float alpha);
  // Element-wise clamp to [lo, hi].
  void clamp(float lo, float hi);

  float min() const;
  float max() const;
  float abs_max() const;
  double sum() const;
  double mean() const;

  std::string shape_str() const;

 private:
  std::vector<long> shape_;
  std::vector<float> data_;
  // Arena-backed storage (exclusive with data_): a borrowed pointer into
  // the thread's kernel arena, valid until the enclosing ArenaScope
  // unwinds. Never freed here.
  float* ext_ = nullptr;
  long ext_n_ = 0;
};

}  // namespace ber
