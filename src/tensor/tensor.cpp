#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/rng.h"
#include "kernels/arena.h"

namespace ber {

namespace {

long shape_numel(const std::vector<long>& shape) {
  long n = 1;
  for (long s : shape) {
    if (s < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= s;
  }
  return n;
}

thread_local bool g_arena_tensors = false;

}  // namespace

bool arena_tensors_enabled() { return g_arena_tensors; }
void set_arena_tensors_enabled(bool on) { g_arena_tensors = on; }

Tensor::Tensor(std::vector<long> shape) : shape_(std::move(shape)) {
  const long n = shape_numel(shape_);
  if (g_arena_tensors && n > 0) {
    ext_ = kernels::tls_arena().alloc(static_cast<std::size_t>(n));
    ext_n_ = n;
    std::memset(ext_, 0, sizeof(float) * static_cast<std::size_t>(n));
  } else {
    data_.assign(static_cast<std::size_t>(n), 0.0f);
  }
}

Tensor::Tensor(const Tensor& other) : shape_(other.shape_) {
  const long n = other.numel();
  if (g_arena_tensors && n > 0) {
    ext_ = kernels::tls_arena().alloc(static_cast<std::size_t>(n));
    ext_n_ = n;
    std::memcpy(ext_, other.data(), sizeof(float) * static_cast<std::size_t>(n));
  } else {
    data_.assign(other.data(), other.data() + n);
  }
}

Tensor& Tensor::operator=(const Tensor& other) {
  if (this == &other) return *this;
  shape_ = other.shape_;
  const long n = other.numel();
  if (g_arena_tensors && n > 0) {
    ext_ = kernels::tls_arena().alloc(static_cast<std::size_t>(n));
    ext_n_ = n;
    std::memcpy(ext_, other.data(), sizeof(float) * static_cast<std::size_t>(n));
    data_.clear();
  } else {
    data_.assign(other.data(), other.data() + n);
    ext_ = nullptr;
    ext_n_ = 0;
  }
  return *this;
}

Tensor::Tensor(Tensor&& other) noexcept
    : shape_(std::move(other.shape_)),
      data_(std::move(other.data_)),
      ext_(other.ext_),
      ext_n_(other.ext_n_) {
  other.shape_.clear();
  other.ext_ = nullptr;
  other.ext_n_ = 0;
}

Tensor& Tensor::operator=(Tensor&& other) noexcept {
  if (this == &other) return *this;
  shape_ = std::move(other.shape_);
  data_ = std::move(other.data_);
  ext_ = other.ext_;
  ext_n_ = other.ext_n_;
  other.shape_.clear();
  other.ext_ = nullptr;
  other.ext_n_ = 0;
  return *this;
}

Tensor Tensor::zeros(std::vector<long> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<long> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<long> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  float* d = t.data();
  const long n = t.numel();
  for (long i = 0; i < n; ++i) d[i] = rng.normal() * stddev;
  return t;
}

Tensor Tensor::uniform(std::vector<long> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  float* d = t.data();
  const long n = t.numel();
  for (long i = 0; i < n; ++i) d[i] = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_data(std::vector<long> shape, std::vector<float> data) {
  if (shape_numel(shape) != static_cast<long>(data.size())) {
    throw std::invalid_argument("Tensor::from_data: shape/data mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

long Tensor::shape(int i) const {
  if (i < 0 || i >= dim()) throw std::out_of_range("Tensor::shape index");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(long i, long j) { return data()[i * shape_[1] + j]; }
float Tensor::at(long i, long j) const { return data()[i * shape_[1] + j]; }

float& Tensor::at(long n, long c, long h, long w) {
  return data()[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}
float Tensor::at(long n, long c, long h, long w) const {
  return data()[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(std::vector<long> shape) const {
  long known = 1;
  int infer = -1;
  for (int i = 0; i < static_cast<int>(shape.size()); ++i) {
    if (shape[i] == -1) {
      if (infer >= 0) throw std::invalid_argument("reshaped: multiple -1");
      infer = i;
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("reshaped: cannot infer dimension");
    }
    shape[infer] = numel() / known;
    known *= shape[infer];
  }
  if (known != numel()) throw std::invalid_argument("reshaped: numel mismatch");
  Tensor t(*this);  // deep copy into the storage class of the call site
  t.shape_ = std::move(shape);
  return t;
}

void Tensor::fill(float v) { std::fill(data(), data() + numel(), v); }

void Tensor::axpy(float alpha, const Tensor& other) {
  if (other.numel() != numel()) throw std::invalid_argument("axpy: size mismatch");
  const float* __restrict o = other.data();
  float* __restrict d = data();
  const long n = numel();
  for (long i = 0; i < n; ++i) d[i] += alpha * o[i];
}

void Tensor::scale(float alpha) {
  float* d = data();
  const long n = numel();
  for (long i = 0; i < n; ++i) d[i] *= alpha;
}

void Tensor::clamp(float lo, float hi) {
  float* d = data();
  const long n = numel();
  for (long i = 0; i < n; ++i) d[i] = std::min(hi, std::max(lo, d[i]));
}

float Tensor::min() const {
  return numel() == 0 ? 0.0f : *std::min_element(data(), data() + numel());
}

float Tensor::max() const {
  return numel() == 0 ? 0.0f : *std::max_element(data(), data() + numel());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  const float* d = data();
  const long n = numel();
  for (long i = 0; i < n; ++i) m = std::max(m, std::abs(d[i]));
  return m;
}

double Tensor::sum() const {
  return std::accumulate(data(), data() + numel(), 0.0);
}

double Tensor::mean() const { return numel() == 0 ? 0.0 : sum() / numel(); }

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    os << shape_[i] << (i + 1 < shape_.size() ? "," : "");
  }
  os << ']';
  return os.str();
}

}  // namespace ber
