#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>
#include <stdexcept>

#include "core/rng.h"

namespace ber {

namespace {
long shape_numel(const std::vector<long>& shape) {
  long n = 1;
  for (long s : shape) {
    if (s < 0) throw std::invalid_argument("Tensor: negative dimension");
    n *= s;
  }
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<long> shape)
    : shape_(std::move(shape)),
      data_(static_cast<std::size_t>(shape_numel(shape_)), 0.0f) {}

Tensor Tensor::zeros(std::vector<long> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<long> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::randn(std::vector<long> shape, Rng& rng, float stddev) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = rng.normal() * stddev;
  return t;
}

Tensor Tensor::uniform(std::vector<long> shape, Rng& rng, float lo, float hi) {
  Tensor t(std::move(shape));
  for (auto& v : t.data_) v = static_cast<float>(rng.uniform(lo, hi));
  return t;
}

Tensor Tensor::from_data(std::vector<long> shape, std::vector<float> data) {
  if (shape_numel(shape) != static_cast<long>(data.size())) {
    throw std::invalid_argument("Tensor::from_data: shape/data mismatch");
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = std::move(data);
  return t;
}

long Tensor::shape(int i) const {
  if (i < 0 || i >= dim()) throw std::out_of_range("Tensor::shape index");
  return shape_[static_cast<std::size_t>(i)];
}

float& Tensor::at(long i, long j) { return data_[i * shape_[1] + j]; }
float Tensor::at(long i, long j) const { return data_[i * shape_[1] + j]; }

float& Tensor::at(long n, long c, long h, long w) {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}
float Tensor::at(long n, long c, long h, long w) const {
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

Tensor Tensor::reshaped(std::vector<long> shape) const {
  long known = 1;
  int infer = -1;
  for (int i = 0; i < static_cast<int>(shape.size()); ++i) {
    if (shape[i] == -1) {
      if (infer >= 0) throw std::invalid_argument("reshaped: multiple -1");
      infer = i;
    } else {
      known *= shape[i];
    }
  }
  if (infer >= 0) {
    if (known == 0 || numel() % known != 0) {
      throw std::invalid_argument("reshaped: cannot infer dimension");
    }
    shape[infer] = numel() / known;
    known *= shape[infer];
  }
  if (known != numel()) throw std::invalid_argument("reshaped: numel mismatch");
  Tensor t;
  t.shape_ = std::move(shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float v) { std::fill(data_.begin(), data_.end(), v); }

void Tensor::axpy(float alpha, const Tensor& other) {
  if (other.numel() != numel()) throw std::invalid_argument("axpy: size mismatch");
  const float* __restrict o = other.data();
  float* __restrict d = data();
  const long n = numel();
  for (long i = 0; i < n; ++i) d[i] += alpha * o[i];
}

void Tensor::scale(float alpha) {
  for (auto& v : data_) v *= alpha;
}

void Tensor::clamp(float lo, float hi) {
  for (auto& v : data_) v = std::min(hi, std::max(lo, v));
}

float Tensor::min() const {
  return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::abs(v));
  return m;
}

double Tensor::sum() const {
  return std::accumulate(data_.begin(), data_.end(), 0.0);
}

double Tensor::mean() const { return data_.empty() ? 0.0 : sum() / numel(); }

std::string Tensor::shape_str() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < shape_.size(); ++i) {
    os << shape_[i] << (i + 1 < shape_.size() ? "," : "");
  }
  os << ']';
  return os.str();
}

}  // namespace ber
