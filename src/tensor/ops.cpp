#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

namespace ber {

void gemm(long m, long n, long k, float alpha, const float* a, const float* b,
          float beta, float* c) {
  if (beta == 0.0f) {
    std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m * n));
  } else if (beta != 1.0f) {
    for (long i = 0; i < m * n; ++i) c[i] *= beta;
  }
  for (long i = 0; i < m; ++i) {
    float* __restrict ci = c + i * n;
    const float* ai = a + i * k;
    for (long p = 0; p < k; ++p) {
      const float av = alpha * ai[p];
      if (av == 0.0f) continue;
      const float* __restrict bp = b + p * n;
      for (long j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void gemm_at(long m, long n, long k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  if (beta == 0.0f) {
    std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m * n));
  } else if (beta != 1.0f) {
    for (long i = 0; i < m * n; ++i) c[i] *= beta;
  }
  // A stored [k,m]: A^T(i,p) = a[p*m + i].
  for (long p = 0; p < k; ++p) {
    const float* ap = a + p * m;
    const float* __restrict bp = b + p * n;
    for (long i = 0; i < m; ++i) {
      const float av = alpha * ap[i];
      if (av == 0.0f) continue;
      float* __restrict ci = c + i * n;
      for (long j = 0; j < n; ++j) ci[j] += av * bp[j];
    }
  }
}

void gemm_bt(long m, long n, long k, float alpha, const float* a,
             const float* b, float beta, float* c) {
  if (beta == 0.0f) {
    std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m * n));
  } else if (beta != 1.0f) {
    for (long i = 0; i < m * n; ++i) c[i] *= beta;
  }
  // B stored [n,k]: B^T(p,j) = b[j*k + p]. Dot products over k are
  // contiguous in both operands.
  for (long i = 0; i < m; ++i) {
    const float* __restrict ai = a + i * k;
    float* ci = c + i * n;
    for (long j = 0; j < n; ++j) {
      const float* __restrict bj = b + j * k;
      float acc = 0.0f;
      for (long p = 0; p < k; ++p) acc += ai[p] * bj[p];
      ci[j] += alpha * acc;
    }
  }
}

long conv_out_size(long in, long kernel, long stride, long pad) {
  return (in + 2 * pad - kernel) / stride + 1;
}

void im2col(const float* img, long channels, long height, long width, long kh,
            long kw, long stride, long pad, float* col) {
  const long oh = conv_out_size(height, kh, stride, pad);
  const long ow = conv_out_size(width, kw, stride, pad);
  im2col_ld(img, channels, height, width, kh, kw, stride, pad, col, oh * ow);
}

void im2col_ld(const float* img, long channels, long height, long width,
               long kh, long kw, long stride, long pad, float* col, long ld) {
  const long oh = conv_out_size(height, kh, stride, pad);
  const long ow = conv_out_size(width, kw, stride, pad);
  long row = 0;
  for (long c = 0; c < channels; ++c) {
    const float* plane = img + c * height * width;
    for (long ki = 0; ki < kh; ++ki) {
      for (long kj = 0; kj < kw; ++kj, ++row) {
        float* __restrict out = col + row * ld;
        for (long y = 0; y < oh; ++y) {
          const long iy = y * stride - pad + ki;
          if (iy < 0 || iy >= height) {
            std::memset(out + y * ow, 0, sizeof(float) * static_cast<std::size_t>(ow));
            continue;
          }
          const float* src = plane + iy * width;
          for (long x = 0; x < ow; ++x) {
            const long ix = x * stride - pad + kj;
            out[y * ow + x] =
                (ix >= 0 && ix < width) ? src[ix] : 0.0f;
          }
        }
      }
    }
  }
}

void col2im(const float* col, long channels, long height, long width, long kh,
            long kw, long stride, long pad, float* img) {
  const long oh = conv_out_size(height, kh, stride, pad);
  const long ow = conv_out_size(width, kw, stride, pad);
  col2im_ld(col, channels, height, width, kh, kw, stride, pad, img, oh * ow);
}

void col2im_ld(const float* col, long channels, long height, long width,
               long kh, long kw, long stride, long pad, float* img, long ld) {
  const long oh = conv_out_size(height, kh, stride, pad);
  const long ow = conv_out_size(width, kw, stride, pad);
  long row = 0;
  for (long c = 0; c < channels; ++c) {
    float* plane = img + c * height * width;
    for (long ki = 0; ki < kh; ++ki) {
      for (long kj = 0; kj < kw; ++kj, ++row) {
        const float* __restrict in = col + row * ld;
        for (long y = 0; y < oh; ++y) {
          const long iy = y * stride - pad + ki;
          if (iy < 0 || iy >= height) continue;
          float* dst = plane + iy * width;
          for (long x = 0; x < ow; ++x) {
            const long ix = x * stride - pad + kj;
            if (ix >= 0 && ix < width) dst[ix] += in[y * ow + x];
          }
        }
      }
    }
  }
}

void softmax_rows(Tensor& logits) {
  if (logits.dim() != 2) throw std::invalid_argument("softmax_rows: need 2-D");
  const long rows = logits.shape(0);
  const long cols = logits.shape(1);
  float* data = logits.data();
  for (long r = 0; r < rows; ++r) {
    float* row = data + r * cols;
    const float mx = *std::max_element(row, row + cols);
    float sum = 0.0f;
    for (long c = 0; c < cols; ++c) {
      row[c] = std::exp(row[c] - mx);
      sum += row[c];
    }
    const float inv = 1.0f / sum;
    for (long c = 0; c < cols; ++c) row[c] *= inv;
  }
}

long argmax_row(const Tensor& m, long r) {
  const long cols = m.shape(1);
  const float* row = m.data() + r * cols;
  return std::max_element(row, row + cols) - row;
}

}  // namespace ber
