#include "eval/guarantees.h"

#include <cmath>
#include <stdexcept>

namespace ber {

double prop1_epsilon(long n, long l, double delta) {
  if (n <= 0 || l <= 0 || delta <= 0.0 || delta >= 1.0) {
    throw std::invalid_argument("prop1_epsilon: invalid arguments");
  }
  const double nn = static_cast<double>(n);
  const double ll = static_cast<double>(l);
  return std::sqrt(std::log((nn + 1.0) / delta) / nn) *
         (std::sqrt(ll) + std::sqrt(nn)) / std::sqrt(ll);
}

double prop1_tail_probability(long n, long l, double eps) {
  if (n <= 0 || l <= 0 || eps <= 0.0) {
    throw std::invalid_argument("prop1_tail_probability: invalid arguments");
  }
  const double nn = static_cast<double>(n);
  const double ll = static_cast<double>(l);
  const double denom = (std::sqrt(ll) + std::sqrt(nn)) *
                       (std::sqrt(ll) + std::sqrt(nn));
  return (nn + 1.0) * std::exp(-nn * eps * eps * ll / denom);
}

}  // namespace ber
