#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "attack/attacker.h"
#include "faults/adversarial_model.h"
#include "faults/evaluator.h"
#include "faults/linf_noise_model.h"
#include "faults/profiled_chip_model.h"
#include "faults/random_bit_error_model.h"
#include "quant/net_quantizer.h"
#include "tensor/ops.h"

namespace ber {

EvalResult evaluate(Sequential& model, const Dataset& data, long batch) {
  const long n = data.size();
  long wrong = 0;
  double conf_sum = 0.0;
  Tensor images;
  std::vector<int> labels;
  for (long start = 0; start < n; start += batch) {
    const long end = std::min(start + batch, n);
    data.batch(start, end, images, labels);
    Tensor logits = model.forward(images, /*training=*/false);
    softmax_rows(logits);
    for (long i = 0; i < end - start; ++i) {
      const long pred = argmax_row(logits, i);
      if (pred != labels[static_cast<std::size_t>(i)]) ++wrong;
      conf_sum += logits.at(i, pred);
    }
  }
  EvalResult r;
  r.error = static_cast<float>(wrong) / static_cast<float>(n);
  r.confidence = static_cast<float>(conf_sum / n);
  return r;
}

float test_error(Sequential& model, const Dataset& data,
                 const QuantScheme* scheme, long batch) {
  if (scheme == nullptr) return evaluate(model, data, batch).error;
  const auto params = model.params();
  WeightStash stash;
  stash.save(params);
  NetQuantizer quantizer(*scheme);
  const NetSnapshot snap = quantizer.quantize(params);
  quantizer.write_dequantized(snap, params);
  const float err = evaluate(model, data, batch).error;
  stash.restore(params);
  return err;
}

RobustResult robust_error(Sequential& model, const QuantScheme& scheme,
                          const Dataset& data, const BitErrorConfig& config,
                          int n_chips, std::uint64_t seed_base, long batch) {
  const RandomBitErrorModel fault(config, seed_base);
  return RobustnessEvaluator(model, scheme).run(fault, data, n_chips, batch);
}

RobustResult robust_error_profiled(Sequential& model,
                                   const QuantScheme& scheme,
                                   const Dataset& data,
                                   const ProfiledChip& chip, double v,
                                   int n_offsets, long batch) {
  const ProfiledChipModel fault(chip, v);
  return RobustnessEvaluator(model, scheme).run(fault, data, n_offsets, batch);
}

RobustResult adversarial_error(Sequential& model, const QuantScheme& scheme,
                               const Dataset& data, const Dataset& attack_set,
                               const AttackConfig& config, int n_trials,
                               long batch) {
  const RobustnessEvaluator evaluator(model, scheme);
  BitFlipAttacker attacker(model, scheme, attack_set, config);
  const AdversarialBitErrorModel fault =
      make_adversarial_model(attacker, evaluator.snapshot(), n_trials);
  return evaluator.run(fault, data, n_trials, batch);
}

RobustResult linf_weight_noise_error(Sequential& model, const Dataset& data,
                                     double rel_eps, int n_samples,
                                     std::uint64_t seed_base, long batch) {
  const LinfNoiseModel fault(rel_eps, seed_base);
  return RobustnessEvaluator(model).run(fault, data, n_samples, batch);
}

LogitStats logit_stats(Sequential& model, const Dataset& data, long batch) {
  const long n = data.size();
  double max_sum = 0.0, gap_sum = 0.0, conf_sum = 0.0;
  Tensor images;
  std::vector<int> labels;
  for (long start = 0; start < n; start += batch) {
    const long end = std::min(start + batch, n);
    data.batch(start, end, images, labels);
    Tensor logits = model.forward(images, /*training=*/false);
    const long k = logits.shape(1);
    for (long i = 0; i < end - start; ++i) {
      const float* row = logits.data() + i * k;
      float best = row[0], second = -1e30f;
      for (long c = 1; c < k; ++c) {
        if (row[c] > best) {
          second = best;
          best = row[c];
        } else if (row[c] > second) {
          second = row[c];
        }
      }
      max_sum += best;
      gap_sum += best - second;
    }
    softmax_rows(logits);
    for (long i = 0; i < end - start; ++i) {
      conf_sum += logits.at(i, argmax_row(logits, i));
    }
  }
  LogitStats s;
  s.mean_max_logit = static_cast<float>(max_sum / n);
  s.mean_logit_gap = static_cast<float>(gap_sum / n);
  s.mean_confidence = static_cast<float>(conf_sum / n);
  return s;
}

}  // namespace ber
