#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "api/registry.h"
#include "attack/attacker.h"
#include "faults/evaluator.h"
#include "faults/linf_noise_model.h"
#include "faults/random_bit_error_model.h"
#include "quant/net_quantizer.h"
#include "tensor/ops.h"

namespace ber {

EvalResult evaluate(Sequential& model, const Dataset& data, long batch) {
  const long n = data.size();
  long wrong = 0;
  double conf_sum = 0.0;
  Tensor images;
  std::vector<int> labels;
  for (long start = 0; start < n; start += batch) {
    const long end = std::min(start + batch, n);
    data.batch(start, end, images, labels);
    Tensor logits = model.forward(images, /*training=*/false);
    softmax_rows(logits);
    for (long i = 0; i < end - start; ++i) {
      const long pred = argmax_row(logits, i);
      if (pred != labels[static_cast<std::size_t>(i)]) ++wrong;
      conf_sum += logits.at(i, pred);
    }
  }
  EvalResult r;
  r.error = static_cast<float>(wrong) / static_cast<float>(n);
  r.confidence = static_cast<float>(conf_sum / n);
  return r;
}

float test_error(Sequential& model, const Dataset& data,
                 const QuantScheme* scheme, long batch) {
  if (scheme == nullptr) return evaluate(model, data, batch).error;
  const auto params = model.params();
  WeightStash stash;
  stash.save(params);
  NetQuantizer quantizer(*scheme);
  const NetSnapshot snap = quantizer.quantize(params);
  quantizer.write_dequantized(snap, params);
  const float err = evaluate(model, data, batch).error;
  stash.restore(params);
  return err;
}

// The four robustness adapters below construct their FaultModel through the
// api registry (name + parameter map) — the same path spec files take — so
// the registry names and the C++ entry points provably agree, and all
// evaluation runs through the one RobustnessEvaluator pipeline.
//
// One caveat: JSON numbers are doubles, so seeds above 2^53 cannot ride the
// parameter map losslessly. These signatures accept full uint64 seeds, so
// adapters fall back to direct construction for the (rare) seeds a spec
// file could not express.

namespace {

constexpr std::uint64_t kMaxJsonSeed = 1ull << 53;

}  // namespace

RobustResult robust_error(Sequential& model, const QuantScheme& scheme,
                          const Dataset& data, const BitErrorConfig& config,
                          int n_chips, std::uint64_t seed_base, long batch) {
  if (seed_base > kMaxJsonSeed) {
    const RandomBitErrorModel fault(config, seed_base);
    return RobustnessEvaluator(model, scheme).run(fault, data, n_chips, batch);
  }
  Json params = Json::object();
  params.set("p", config.p);
  params.set("flip_fraction", config.flip_fraction);
  params.set("set1_fraction", config.set1_fraction);
  params.set("set0_fraction", config.set0_fraction);
  params.set("seed_base", seed_base);
  const auto fault =
      api::make_fault_model("random", params, api::FaultContext{});
  return RobustnessEvaluator(model, scheme).run(*fault, data, n_chips, batch);
}

RobustResult robust_error_profiled(Sequential& model,
                                   const QuantScheme& scheme,
                                   const Dataset& data,
                                   const ProfiledChip& chip, double v,
                                   int n_offsets, long batch) {
  Json params = Json::object();
  params.set("voltage", v);
  api::FaultContext ctx;
  ctx.chip = &chip;  // reuse the caller's profiled map (no rebuild)
  const auto fault = api::make_fault_model("profiled", params, ctx);
  return RobustnessEvaluator(model, scheme).run(*fault, data, n_offsets, batch);
}

RobustResult adversarial_error(Sequential& model, const QuantScheme& scheme,
                               const Dataset& data, const Dataset& attack_set,
                               const AttackConfig& config, int n_trials,
                               long batch) {
  const RobustnessEvaluator evaluator(model, scheme);
  if (config.seed > kMaxJsonSeed) {
    BitFlipAttacker attacker(model, scheme, attack_set, config);
    const AdversarialBitErrorModel fault =
        make_adversarial_model(attacker, evaluator.snapshot(), n_trials);
    return evaluator.run(fault, data, n_trials, batch);
  }
  Json params = Json::object();
  params.set("budget", config.budget);
  params.set("rounds", config.rounds);
  params.set("schedule", config.schedule == BudgetSchedule::kGeometric
                             ? "geometric"
                             : "uniform");
  params.set("attack_examples", config.attack_examples);
  params.set("batch", config.batch);
  params.set("seed", config.seed);
  api::FaultContext ctx;
  ctx.model = &model;
  ctx.scheme = &scheme;
  ctx.layout = &evaluator.snapshot();
  ctx.attack_set = &attack_set;
  ctx.n_trials = n_trials;
  const auto fault = api::make_fault_model("adversarial", params, ctx);
  return evaluator.run(*fault, data, n_trials, batch);
}

RobustResult linf_weight_noise_error(Sequential& model, const Dataset& data,
                                     double rel_eps, int n_samples,
                                     std::uint64_t seed_base, long batch) {
  if (seed_base > kMaxJsonSeed) {
    const LinfNoiseModel fault(rel_eps, seed_base);
    return RobustnessEvaluator(model).run(fault, data, n_samples, batch);
  }
  Json params = Json::object();
  params.set("rel_eps", rel_eps);
  params.set("seed_base", seed_base);
  const auto fault = api::make_fault_model("linf", params, api::FaultContext{});
  return RobustnessEvaluator(model).run(*fault, data, n_samples, batch);
}

LogitStats logit_stats(Sequential& model, const Dataset& data, long batch) {
  const long n = data.size();
  double max_sum = 0.0, gap_sum = 0.0, conf_sum = 0.0;
  Tensor images;
  std::vector<int> labels;
  for (long start = 0; start < n; start += batch) {
    const long end = std::min(start + batch, n);
    data.batch(start, end, images, labels);
    Tensor logits = model.forward(images, /*training=*/false);
    const long k = logits.shape(1);
    for (long i = 0; i < end - start; ++i) {
      const float* row = logits.data() + i * k;
      float best = row[0], second = -1e30f;
      for (long c = 1; c < k; ++c) {
        if (row[c] > best) {
          second = best;
          best = row[c];
        } else if (row[c] > second) {
          second = row[c];
        }
      }
      max_sum += best;
      gap_sum += best - second;
    }
    softmax_rows(logits);
    for (long i = 0; i < end - start; ++i) {
      conf_sum += logits.at(i, argmax_row(logits, i));
    }
  }
  LogitStats s;
  s.mean_max_logit = static_cast<float>(max_sum / n);
  s.mean_logit_gap = static_cast<float>(gap_sum / n);
  s.mean_confidence = static_cast<float>(conf_sum / n);
  return s;
}

}  // namespace ber
