#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "core/hash.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "quant/net_quantizer.h"
#include "tensor/ops.h"

namespace ber {

EvalResult evaluate(Sequential& model, const Dataset& data, long batch) {
  const long n = data.size();
  long wrong = 0;
  double conf_sum = 0.0;
  Tensor images;
  std::vector<int> labels;
  for (long start = 0; start < n; start += batch) {
    const long end = std::min(start + batch, n);
    data.batch(start, end, images, labels);
    Tensor logits = model.forward(images, /*training=*/false);
    softmax_rows(logits);
    for (long i = 0; i < end - start; ++i) {
      const long pred = argmax_row(logits, i);
      if (pred != labels[static_cast<std::size_t>(i)]) ++wrong;
      conf_sum += logits.at(i, pred);
    }
  }
  EvalResult r;
  r.error = static_cast<float>(wrong) / static_cast<float>(n);
  r.confidence = static_cast<float>(conf_sum / n);
  return r;
}

float test_error(Sequential& model, const Dataset& data,
                 const QuantScheme* scheme, long batch) {
  if (scheme == nullptr) return evaluate(model, data, batch).error;
  const auto params = model.params();
  WeightStash stash;
  stash.save(params);
  NetQuantizer quantizer(*scheme);
  const NetSnapshot snap = quantizer.quantize(params);
  quantizer.write_dequantized(snap, params);
  const float err = evaluate(model, data, batch).error;
  stash.restore(params);
  return err;
}

namespace {

RobustResult summarize(std::vector<float> errs, std::vector<float> confs) {
  RobustResult r;
  r.per_chip = std::move(errs);
  double sum = 0.0, sq = 0.0, csum = 0.0;
  for (float e : r.per_chip) {
    sum += e;
    sq += static_cast<double>(e) * e;
  }
  for (float c : confs) csum += c;
  const double n = static_cast<double>(r.per_chip.size());
  r.mean_rerr = static_cast<float>(sum / n);
  const double var = std::max(0.0, sq / n - (sum / n) * (sum / n));
  r.std_rerr = static_cast<float>(std::sqrt(var * n / std::max(1.0, n - 1)));
  r.mean_confidence = static_cast<float>(csum / n);
  return r;
}

}  // namespace

RobustResult robust_error(Sequential& model, const QuantScheme& scheme,
                          const Dataset& data, const BitErrorConfig& config,
                          int n_chips, std::uint64_t seed_base, long batch) {
  NetQuantizer quantizer(scheme);
  const NetSnapshot base_snap = quantizer.quantize(model.params());

  std::vector<float> errs(static_cast<std::size_t>(n_chips));
  std::vector<float> confs(static_cast<std::size_t>(n_chips));
  parallel_for(n_chips, [&](std::int64_t c) {
    Sequential clone(model);
    NetSnapshot snap = base_snap;
    inject_random_bit_errors(snap, config,
                             seed_base + static_cast<std::uint64_t>(c));
    quantizer.write_dequantized(snap, clone.params());
    const EvalResult r = evaluate(clone, data, batch);
    errs[static_cast<std::size_t>(c)] = r.error;
    confs[static_cast<std::size_t>(c)] = r.confidence;
  });
  return summarize(std::move(errs), std::move(confs));
}

RobustResult robust_error_profiled(Sequential& model,
                                   const QuantScheme& scheme,
                                   const Dataset& data,
                                   const ProfiledChip& chip, double v,
                                   int n_offsets, long batch) {
  NetQuantizer quantizer(scheme);
  const NetSnapshot base_snap = quantizer.quantize(model.params());

  std::vector<float> errs(static_cast<std::size_t>(n_offsets));
  std::vector<float> confs(static_cast<std::size_t>(n_offsets));
  parallel_for(n_offsets, [&](std::int64_t i) {
    Sequential clone(model);
    NetSnapshot snap = base_snap;
    // Spread offsets over the array with a large odd stride so different
    // mappings overlap as little as possible.
    const std::uint64_t offset =
        (static_cast<std::uint64_t>(i) * 7919ULL * 64ULL) %
        static_cast<std::uint64_t>(chip.num_cells());
    chip.apply(snap, v, offset);
    quantizer.write_dequantized(snap, clone.params());
    const EvalResult r = evaluate(clone, data, batch);
    errs[static_cast<std::size_t>(i)] = r.error;
    confs[static_cast<std::size_t>(i)] = r.confidence;
  });
  return summarize(std::move(errs), std::move(confs));
}

RobustResult linf_weight_noise_error(Sequential& model, const Dataset& data,
                                     double rel_eps, int n_samples,
                                     std::uint64_t seed_base, long batch) {
  std::vector<float> errs(static_cast<std::size_t>(n_samples));
  std::vector<float> confs(static_cast<std::size_t>(n_samples));
  parallel_for(n_samples, [&](std::int64_t s) {
    Sequential clone(model);
    Rng rng(hash_mix(seed_base, static_cast<std::uint64_t>(s), 0x11FFULL));
    for (Param* p : clone.params()) {
      const float range = p->value.abs_max();
      const float eps = static_cast<float>(rel_eps) * range;
      for (long i = 0; i < p->value.numel(); ++i) {
        p->value[i] += static_cast<float>(rng.uniform(-eps, eps));
      }
    }
    const EvalResult r = evaluate(clone, data, batch);
    errs[static_cast<std::size_t>(s)] = r.error;
    confs[static_cast<std::size_t>(s)] = r.confidence;
  });
  return summarize(std::move(errs), std::move(confs));
}

LogitStats logit_stats(Sequential& model, const Dataset& data, long batch) {
  const long n = data.size();
  double max_sum = 0.0, gap_sum = 0.0, conf_sum = 0.0;
  Tensor images;
  std::vector<int> labels;
  for (long start = 0; start < n; start += batch) {
    const long end = std::min(start + batch, n);
    data.batch(start, end, images, labels);
    Tensor logits = model.forward(images, /*training=*/false);
    const long k = logits.shape(1);
    for (long i = 0; i < end - start; ++i) {
      const float* row = logits.data() + i * k;
      float best = row[0], second = -1e30f;
      for (long c = 1; c < k; ++c) {
        if (row[c] > best) {
          second = best;
          best = row[c];
        } else if (row[c] > second) {
          second = row[c];
        }
      }
      max_sum += best;
      gap_sum += best - second;
    }
    softmax_rows(logits);
    for (long i = 0; i < end - start; ++i) {
      conf_sum += logits.at(i, argmax_row(logits, i));
    }
  }
  LogitStats s;
  s.mean_max_logit = static_cast<float>(max_sum / n);
  s.mean_logit_gap = static_cast<float>(gap_sum / n);
  s.mean_confidence = static_cast<float>(conf_sum / n);
  return s;
}

}  // namespace ber
