#include "eval/redundancy.h"

#include <cmath>

#include "biterror/injector.h"
#include "nn/activation.h"
#include "quant/net_quantizer.h"

namespace ber {

RedundancyStats redundancy_stats(Sequential& model, const QuantScheme& scheme,
                                 const Dataset& probe, double p,
                                 std::uint64_t chip_seed) {
  RedundancyStats stats;
  const auto params = model.params();

  // Weight statistics.
  double sum_abs = 0.0;
  double max_abs = 0.0;
  long total = 0, zeros = 0;
  for (Param* prm : params) {
    for (long i = 0; i < prm->value.numel(); ++i) {
      sum_abs += std::abs(prm->value[i]);
      max_abs = std::max(max_abs, static_cast<double>(std::abs(prm->value[i])));
    }
    total += prm->value.numel();
  }
  for (Param* prm : params) {
    const double thresh = 1e-3 * max_abs;
    for (long i = 0; i < prm->value.numel(); ++i) {
      if (std::abs(prm->value[i]) < thresh) ++zeros;
    }
  }
  stats.max_abs_weight = max_abs;
  stats.weight_relevance =
      max_abs > 0.0 ? sum_abs / (max_abs * static_cast<double>(total)) : 0.0;
  stats.frac_zero = static_cast<double>(zeros) / static_cast<double>(total);

  // Relative absolute error under BErr_p.
  NetQuantizer quantizer(scheme);
  NetSnapshot clean = quantizer.quantize(params);
  NetSnapshot perturbed = clean;
  BitErrorConfig bec;
  bec.p = p;
  inject_random_bit_errors(perturbed, bec, chip_seed);
  double err_sum = 0.0;
  long err_count = 0;
  for (std::size_t t = 0; t < clean.tensors.size(); ++t) {
    std::vector<float> w_clean(clean.tensors[t].size());
    std::vector<float> w_pert(perturbed.tensors[t].size());
    dequantize(clean.tensors[t], w_clean);
    dequantize(perturbed.tensors[t], w_pert);
    const float range = std::max(
        1e-12f, clean.tensors[t].range.qmax - clean.tensors[t].range.qmin);
    for (std::size_t i = 0; i < w_clean.size(); ++i) {
      err_sum += std::abs(w_pert[i] - w_clean[i]) / range;
      ++err_count;
    }
  }
  stats.rel_abs_error = err_count > 0 ? err_sum / err_count : 0.0;

  // ReLU relevance: run a probe batch and read the final ReLU's activity.
  Tensor images;
  std::vector<int> labels;
  probe.batch(0, std::min<long>(probe.size(), 200), images, labels);
  model.forward(images, /*training=*/false);
  ReLU* last_relu = nullptr;
  model.visit([&](Layer& l) {
    if (auto* r = dynamic_cast<ReLU*>(&l)) last_relu = r;
  });
  stats.relu_relevance =
      last_relu != nullptr ? last_relu->last_active_fraction() : 0.0;
  return stats;
}

}  // namespace ber
