// Evaluation metrics: clean test error (Err), robust test error under random
// bit errors (RErr, mean ± std over chips), profiled-chip RErr, L-inf weight
// noise robustness and logit/confidence statistics.
//
// The robustness entry points are thin adapters over the unified FaultModel
// / RobustnessEvaluator pipeline (src/faults/), and construct their fault
// models through the api registry by name ("random" / "profiled" /
// "adversarial" / "linf" — src/api/registry.h), so these helpers and spec
// files provably share one construction path. Use api::Experiment (or a
// ber_run config file) for new scenarios, model reuse across sweeps, or
// multi-rate evaluation.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/attack_config.h"
#include "biterror/injector.h"
#include "biterror/profiled_chip.h"
#include "data/dataset.h"
#include "faults/evaluator.h"
#include "nn/sequential.h"
#include "quant/quantizer.h"

namespace ber {

struct EvalResult {
  float error = 0.0f;       // fraction misclassified
  float confidence = 0.0f;  // mean max softmax probability
};

// Forward-only evaluation (eval mode).
EvalResult evaluate(Sequential& model, const Dataset& data, long batch = 200);

// Clean test error; if `scheme` is non-null the parameters are
// quantize-dequantized for the evaluation and restored afterwards.
float test_error(Sequential& model, const Dataset& data,
                 const QuantScheme* scheme = nullptr, long batch = 200);

// RobustResult lives in faults/evaluator.h (re-exported here for callers).

// RErr under the random bit error model: quantizes the model once, then for
// each of `n_chips` seeds injects errors at rate `config.p` and evaluates.
// Chips run in parallel on model clones; the input model is unchanged.
RobustResult robust_error(Sequential& model, const QuantScheme& scheme,
                          const Dataset& data, const BitErrorConfig& config,
                          int n_chips, std::uint64_t seed_base = 1000,
                          long batch = 200);

// RErr against a profiled chip at normalized voltage `v`; averages over
// `n_offsets` linear weight-to-memory mappings (Tab. 5 protocol).
RobustResult robust_error_profiled(Sequential& model,
                                   const QuantScheme& scheme,
                                   const Dataset& data,
                                   const ProfiledChip& chip, double v,
                                   int n_offsets, long batch = 200);

// RErr under gradient-guided adversarial bit flips (Stutz et al. 2021,
// arXiv:2104.08323): trial t mounts an independent BitFlipAttacker run with
// budget `config.budget`, its gradient batch subsampled from `attack_set`
// with seed config.seed + t. Deterministic per (config, model) — rerunning
// reproduces the flip sets bit-for-bit.
RobustResult adversarial_error(Sequential& model, const QuantScheme& scheme,
                               const Dataset& data, const Dataset& attack_set,
                               const AttackConfig& config, int n_trials,
                               long batch = 200);

// RErr under i.i.d. uniform L-inf weight noise of magnitude
// rel_eps * per-tensor weight range (Fig. 9). No quantization involved.
RobustResult linf_weight_noise_error(Sequential& model, const Dataset& data,
                                     double rel_eps, int n_samples,
                                     std::uint64_t seed_base = 2000,
                                     long batch = 200);

struct LogitStats {
  float mean_max_logit = 0.0f;
  float mean_logit_gap = 0.0f;  // max minus runner-up
  float mean_confidence = 0.0f;
};

// Logit/confidence statistics on a dataset (Fig. 6).
LogitStats logit_stats(Sequential& model, const Dataset& data,
                       long batch = 200);

}  // namespace ber
