// Probabilistic guarantee of App. C.2 (Proposition 1).
//
// With n i.i.d. test examples and l i.i.d. bit-error patterns, the empirical
// robust error deviates from the expected robust error by at most
//   eps(n, l, delta) = sqrt(log((n+1)/delta) / n) * (sqrt(l)+sqrt(n))/sqrt(l)
// with probability at least 1 - delta. The paper instantiates n = 1e4,
// l = 1e6, delta = 0.01 -> eps ~= 4.1%.
#pragma once

namespace ber {

// The deviation bound eps(n, l, delta) above.
double prop1_epsilon(long n, long l, double delta);

// The tail probability of Prop. 1 for a given eps:
// (n+1) * exp(-n eps^2 l / (sqrt(l)+sqrt(n))^2).
double prop1_tail_probability(long n, long l, double eps);

}  // namespace ber
