// Redundancy metrics of Fig. 10: how weight clipping changes what the
// network uses.
//
//   * weight relevance: sum_i |w_i| / (max_i |w_i| * W) — how many weights
//     are "large" relative to the maximum (clipping raises this);
//   * ReLU relevance: fraction of non-zero activations after the final ReLU
//     on a probe batch;
//   * relative absolute weight error under BErr_p: mean_i |w~_i - w_i|
//     normalized by the per-tensor weight range (clipping lowers this);
//   * fraction of (near-)zero weights (log-scale spike in Fig. 10 left).
#pragma once

#include <cstdint>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "quant/quantizer.h"

namespace ber {

struct RedundancyStats {
  double weight_relevance = 0.0;
  double relu_relevance = 0.0;
  double rel_abs_error = 0.0;
  double frac_zero = 0.0;  // |w| < 1e-3 * max|w|
  double max_abs_weight = 0.0;
};

RedundancyStats redundancy_stats(Sequential& model, const QuantScheme& scheme,
                                 const Dataset& probe, double p,
                                 std::uint64_t chip_seed = 9000);

}  // namespace ber
