#include "accel/accelerator.h"

#include "nn/conv2d.h"
#include "nn/linear.h"
#include "tensor/ops.h"

namespace ber {

namespace {

// Recursively profiles `layer` on input x; appends profiles and returns the
// layer output (eval mode).
Tensor profile_layer(Layer& layer, const Tensor& x,
                     std::vector<LayerProfile>& out) {
  if (auto* seq = dynamic_cast<Sequential*>(&layer)) {
    Tensor cur = x;
    for (std::size_t i = 0; i < seq->size(); ++i) {
      cur = profile_layer(seq->layer(i), cur, out);
    }
    return cur;
  }
  if (auto* res = dynamic_cast<Residual*>(&layer)) {
    Tensor y = profile_layer(res->body(), x, out);
    y.axpy(1.0f, x);
    return y;
  }

  Tensor y = layer.forward(x, /*training=*/false);
  LayerProfile p;
  p.name = layer.name();
  for (Param* prm : layer.params()) p.weights += prm->value.numel();
  p.activations = y.numel() / (y.dim() > 0 ? y.shape(0) : 1);  // per example
  if (auto* conv = dynamic_cast<Conv2d*>(&layer)) {
    // MACs = out_elems_per_image * in_ch * k * k.
    const long per_image = y.numel() / y.shape(0);
    p.macs = per_image * conv->in_channels() * conv->kernel() * conv->kernel();
  } else if (auto* lin = dynamic_cast<Linear*>(&layer)) {
    p.macs = lin->in_features() * lin->out_features();
  }
  out.push_back(std::move(p));
  return y;
}

}  // namespace

std::vector<LayerProfile> profile_model(Sequential& model,
                                        const std::vector<long>& input_shape) {
  std::vector<LayerProfile> profiles;
  Tensor x(input_shape);
  profile_layer(model, x, profiles);
  return profiles;
}

EnergyBreakdown inference_energy(const std::vector<LayerProfile>& profiles,
                                 const AcceleratorConfig& config, double v) {
  EnergyBreakdown b;
  double macs = 0.0;
  for (const LayerProfile& p : profiles) {
    b.weight_accesses += config.weight_reads_per_inference * p.weights;
    b.activation_accesses += config.activation_accesses * p.activations;
    macs += p.macs;
  }
  const double per_access = config.sram.energy_per_access(v);
  b.memory_energy = (b.weight_accesses + b.activation_accesses) * per_access;
  b.compute_energy = macs * config.mac_energy_rel;
  return b;
}

double inference_energy_saving(const std::vector<LayerProfile>& profiles,
                               const AcceleratorConfig& config, double v) {
  const double at_vmin = inference_energy(profiles, config, 1.0).total();
  const double at_v = inference_energy(profiles, config, v).total();
  return 1.0 - at_v / at_vmin;
}

}  // namespace ber
