// Accelerator energy model (App. A of the paper).
//
// The paper's energy argument: total dynamic SRAM energy of an accelerator
// is (number of SRAM accesses) x (energy per access), and low-voltage
// operation scales the second factor quadratically. This module counts
// per-layer weight/activation traffic and MACs for any Sequential model and
// combines them with the Fig. 1 voltage model into an inference-energy
// estimate — with the compute (MAC) energy held at nominal voltage, since
// only the memory macros are undervolted in the paper's setting.
#pragma once

#include <string>
#include <vector>

#include "energy/energy_model.h"
#include "nn/sequential.h"

namespace ber {

struct LayerProfile {
  std::string name;
  long weights = 0;      // parameters read per inference
  long macs = 0;         // multiply-accumulates
  long activations = 0;  // output activations written (and later read)
};

// Traces one inference of `model` on an input of the given shape and
// returns per-layer traffic profiles (residual blocks are expanded).
std::vector<LayerProfile> profile_model(Sequential& model,
                                        const std::vector<long>& input_shape);

struct AcceleratorConfig {
  SramEnergyModel sram;
  // Reads per weight per inference; optimized dataflows (Eyeriss-style
  // reuse) approach 1.
  double weight_reads_per_inference = 1.0;
  // Each activation is written once and read once downstream.
  double activation_accesses = 2.0;
  // Energy of one MAC relative to one SRAM access at Vmin. SRAM accesses
  // cost 10-100x a MAC in the accelerators the paper cites (Chen et al.,
  // 2016), which is exactly why memory dominates and undervolting pays.
  double mac_energy_rel = 0.05;
};

struct EnergyBreakdown {
  double weight_accesses = 0;
  double activation_accesses = 0;
  double memory_energy = 0;   // voltage-dependent (normalized units)
  double compute_energy = 0;  // voltage-independent
  double total() const { return memory_energy + compute_energy; }
};

// Energy per inference at normalized memory voltage v (1.0 = Vmin).
EnergyBreakdown inference_energy(const std::vector<LayerProfile>& profiles,
                                 const AcceleratorConfig& config, double v);

// Fractional total-energy saving of running the memory at voltage v instead
// of Vmin.
double inference_energy_saving(const std::vector<LayerProfile>& profiles,
                               const AcceleratorConfig& config, double v);

}  // namespace ber
