#include "attack/attack_config.h"

#include <stdexcept>

namespace ber {

void AttackConfig::validate() const {
  if (budget <= 0) {
    throw std::invalid_argument("AttackConfig: budget must be positive");
  }
  if (rounds <= 0 || rounds > 30) {
    throw std::invalid_argument("AttackConfig: rounds must be in [1,30]");
  }
  if (batch <= 0) {
    throw std::invalid_argument("AttackConfig: batch must be positive");
  }
  if (attack_examples < 0) {
    throw std::invalid_argument(
        "AttackConfig: attack_examples must be non-negative");
  }
}

int AttackConfig::flips_in_round(int round) const {
  validate();
  if (round < 0 || round >= rounds) {
    throw std::invalid_argument("AttackConfig: round out of range");
  }
  if (schedule == BudgetSchedule::kUniform) {
    const int base = budget / rounds;
    return round < budget % rounds ? base + 1 : base;
  }
  // Geometric: round r owns weight 2^r of total 2^rounds - 1. Allocate via
  // cumulative floors so the rounds sum to the budget exactly.
  const long long total = (1LL << rounds) - 1;
  const auto cum = [&](int r) {
    return static_cast<long long>(budget) * ((1LL << (r + 1)) - 1) / total;
  };
  return static_cast<int>(cum(round) - (round == 0 ? 0 : cum(round - 1)));
}

}  // namespace ber
