// Per-bit flip saliency: mapping weight gradients onto stored bits.
//
// A bit-flip attacker does not perturb weights continuously — it flips
// stored quantized bits, and each candidate flip (weight i, bit k) changes
// the dequantized weight by a KNOWN, sign-aware delta (quant/quantizer.h
// flip_delta: magnitude 2^k * Delta, sign from the stored bit and the two's
// complement sign-bit weight). The first-order change of the task loss under
// that flip is therefore
//
//     gain(i, k) = dL/dw_i * flip_delta(code_i, k)
//
// which ranks every (weight, bit) cell of the memory by how much damage
// flipping it does — the core of the gradient-guided attacks of Stutz et
// al. 2021 (arXiv:2104.08323) / Hacene et al. 2019 (arXiv:1911.10287).
// top_flips() scans all W*m cells of a snapshot and returns the k
// highest-gain flips under a strict deterministic total order.
#pragma once

#include <cstdint>
#include <vector>

#include "quant/net_quantizer.h"
#include "tensor/tensor.h"

namespace ber {

// One bit of the stored network image, in (tensor, element, bit) coordinates
// (the same tensor-local addressing as ChipFault).
struct BitFlip {
  std::uint32_t tensor = 0;
  std::uint32_t index = 0;
  std::uint8_t bit = 0;

  bool operator==(const BitFlip&) const = default;
};

// Packs a flip into one sortable/hashable key (tensor-major, then element,
// then bit — matches the scalar injection sweep order).
std::uint64_t flip_key(const BitFlip& f);

// A candidate flip with its first-order loss increase.
struct ScoredFlip {
  BitFlip flip;
  float gain = 0.0f;
};

// The `k` highest-gain flips of `snap` under gradients `grads` (one tensor
// per snapshot tensor, matching sizes), excluding the cells whose flip_key is
// in `excluded`. Ties and ordering are deterministic: results are sorted by
// gain descending, then by flip_key ascending. Only flips with positive gain
// (first-order loss increase) are returned, so the result may have fewer
// than `k` entries.
std::vector<ScoredFlip> top_flips(const NetSnapshot& snap,
                                  const std::vector<Tensor>& grads,
                                  std::size_t k,
                                  const std::vector<std::uint64_t>& excluded);

}  // namespace ber
