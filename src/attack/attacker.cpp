#include "attack/attacker.h"

#include <algorithm>
#include <stdexcept>

#include "core/hash.h"
#include "core/rng.h"
#include "train/grad_capture.h"

namespace ber {

namespace {

// Deterministic `n`-example subsample of `data` (partial Fisher-Yates on the
// seeded stream). n <= 0 or n >= size returns the whole set.
Dataset sample_subset(const Dataset& data, long n, std::uint64_t seed) {
  const long total = data.size();
  Dataset out;
  out.num_classes = data.num_classes;
  if (n <= 0 || n >= total) {
    out.images = data.images;
    out.labels = data.labels;
    return out;
  }
  std::vector<long> idx(static_cast<std::size_t>(total));
  for (long i = 0; i < total; ++i) idx[static_cast<std::size_t>(i)] = i;
  Rng rng(hash_mix(seed, 0xA77AC4ULL, static_cast<std::uint64_t>(total)));
  for (long i = 0; i < n; ++i) {
    const long j = i + rng.uniform_int(0, static_cast<int>(total - 1 - i));
    std::swap(idx[static_cast<std::size_t>(i)],
              idx[static_cast<std::size_t>(j)]);
  }
  const long stride = data.channels() * data.height() * data.width();
  out.images = Tensor({n, data.channels(), data.height(), data.width()});
  out.labels.resize(static_cast<std::size_t>(n));
  for (long i = 0; i < n; ++i) {
    const long src = idx[static_cast<std::size_t>(i)];
    std::copy(data.images.data() + src * stride,
              data.images.data() + (src + 1) * stride,
              out.images.data() + i * stride);
    out.labels[static_cast<std::size_t>(i)] =
        data.labels[static_cast<std::size_t>(src)];
  }
  return out;
}

}  // namespace

BitFlipAttacker::BitFlipAttacker(const Sequential& model,
                                 const QuantScheme& scheme,
                                 const Dataset& attack_set,
                                 const AttackConfig& config)
    : model_(model),
      quantizer_(scheme),
      attack_set_(attack_set),
      config_(config) {
  config_.validate();
  if (attack_set.size() <= 0) {
    throw std::invalid_argument("BitFlipAttacker: empty attack set");
  }
}

AttackResult BitFlipAttacker::attack(const NetSnapshot& base) {
  return attack(base, config_.seed);
}

AttackResult BitFlipAttacker::attack(const NetSnapshot& base,
                                     std::uint64_t seed) {
  const std::vector<Param*> params = model_.params();
  if (base.tensors.size() != params.size()) {
    throw std::invalid_argument(
        "BitFlipAttacker: snapshot does not match the model layout");
  }
  for (std::size_t t = 0; t < params.size(); ++t) {
    if (base.tensors[t].codes.size() !=
        static_cast<std::size_t>(params[t]->value.numel())) {
      throw std::invalid_argument(
          "BitFlipAttacker: snapshot does not match the model layout");
    }
  }
  const Dataset attack_data =
      sample_subset(attack_set_, config_.attack_examples, seed);

  NetSnapshot snap = base;
  AttackResult out;
  std::vector<std::uint64_t> excluded;
  excluded.reserve(static_cast<std::size_t>(config_.budget));
  float last_loss = 0.0f;
  for (int r = 0; r < config_.rounds; ++r) {
    const int want = config_.flips_in_round(r);
    // A zero-flip round (small budget under a geometric schedule) leaves the
    // snapshot unchanged — its loss and gradients equal the previous
    // round's, so skip the forward/backward.
    std::vector<Tensor> grads;
    if (r == 0 || want > 0) {
      GradCapture cap = capture_weight_gradients(model_, quantizer_, snap,
                                                 attack_data, config_.batch);
      last_loss = cap.loss;
      grads = std::move(cap.grads);
    }
    if (r == 0) {
      out.clean_loss = last_loss;
    } else {
      out.round_loss.push_back(last_loss);
    }
    if (want == 0) continue;
    const std::vector<ScoredFlip> scored =
        top_flips(snap, grads, static_cast<std::size_t>(want), excluded);
    if (scored.empty()) break;  // no loss-increasing flip remains
    for (const ScoredFlip& s : scored) {
      snap.tensors[s.flip.tensor].codes[s.flip.index] ^=
          static_cast<std::uint16_t>(1u << s.flip.bit);
      excluded.push_back(flip_key(s.flip));
      out.flips.push_back(s.flip);
      out.predicted_gain += s.gain;
    }
  }
  const GradCapture fin = capture_weight_gradients(
      model_, quantizer_, snap, attack_data, config_.batch);
  out.final_loss = fin.loss;
  out.round_loss.push_back(fin.loss);
  return out;
}

AdversarialBitErrorModel make_adversarial_model(BitFlipAttacker& attacker,
                                                const NetSnapshot& base,
                                                int n_trials) {
  if (n_trials <= 0) {
    throw std::invalid_argument("make_adversarial_model: need n_trials > 0");
  }
  std::vector<std::vector<BitFlip>> trials;
  trials.reserve(static_cast<std::size_t>(n_trials));
  for (int t = 0; t < n_trials; ++t) {
    trials.push_back(
        attacker
            .attack(base, attacker.config().seed + static_cast<std::uint64_t>(t))
            .flips);
  }
  return AdversarialBitErrorModel(std::move(trials));
}

}  // namespace ber
