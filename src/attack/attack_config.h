// Attack budgets and round schedules.
//
// The attacker is budgeted in FLIPS, not rates: an adversary who controls
// which cells to corrupt needs orders of magnitude fewer flips than the
// random model's p * m * W expectation, so budgets are small integers.
// Progressive (multi-round) selection re-evaluates gradients after each
// committed batch of flips: the loss surface moves as flips land, and the
// next round's saliency is computed against the already-perturbed codes.
#pragma once

#include <cstdint>

namespace ber {

// How the flip budget is spread over the rounds.
enum class BudgetSchedule {
  kUniform,    // budget / rounds flips per round (remainder to early rounds)
  kGeometric,  // doubling rounds 1, 2, 4, ... — cheap coarse start, precise
               // (frequently re-evaluated) early rounds, bulk at the end
};

struct AttackConfig {
  int budget = 32;  // total bit flips the adversary may commit
  int rounds = 4;   // gradient re-evaluations; 1 = single-shot top-k
  BudgetSchedule schedule = BudgetSchedule::kUniform;

  // Gradients are estimated on a held-out attack batch: a fixed-size random
  // subsample (drawn with `seed`) of the attack set. 0 = use the whole set.
  long attack_examples = 256;
  long batch = 256;  // forward/backward chunk size
  std::uint64_t seed = 0;

  // Throws std::invalid_argument on non-positive budget/rounds/batch or
  // negative attack_examples.
  void validate() const;

  // Flips committed in 0-based round `round`; sums to `budget` over
  // [0, rounds).
  int flips_in_round(int round) const;
};

}  // namespace ber
