#include "attack/bit_saliency.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

#include "quant/quantizer.h"

namespace ber {

std::uint64_t flip_key(const BitFlip& f) {
  return (static_cast<std::uint64_t>(f.tensor) << 40) |
         (static_cast<std::uint64_t>(f.index) << 8) |
         static_cast<std::uint64_t>(f.bit);
}

namespace {

// Strict total order for the selection: higher gain first, then the scalar
// sweep order — makes the chosen set independent of scan implementation.
bool better(const ScoredFlip& a, const ScoredFlip& b) {
  if (a.gain != b.gain) return a.gain > b.gain;
  return flip_key(a.flip) < flip_key(b.flip);
}

}  // namespace

std::vector<ScoredFlip> top_flips(const NetSnapshot& snap,
                                  const std::vector<Tensor>& grads,
                                  std::size_t k,
                                  const std::vector<std::uint64_t>& excluded) {
  if (grads.size() != snap.tensors.size()) {
    throw std::invalid_argument("top_flips: gradient/tensor count mismatch");
  }
  for (std::size_t t = 0; t < grads.size(); ++t) {
    if (static_cast<std::size_t>(grads[t].numel()) !=
        snap.tensors[t].codes.size()) {
      throw std::invalid_argument("top_flips: gradient size mismatch");
    }
  }
  const std::unordered_set<std::uint64_t> skip(excluded.begin(),
                                               excluded.end());
  // Bounded selection: keep the current best `k` in a small sorted buffer
  // (k is a flip budget, tiny next to W*m candidates).
  std::vector<ScoredFlip> best;
  best.reserve(k + 1);
  if (k == 0) return best;
  for (std::size_t t = 0; t < snap.tensors.size(); ++t) {
    const QuantizedTensor& qt = snap.tensors[t];
    const int bits = qt.scheme.bits;
    const float* g = grads[t].data();
    for (std::size_t i = 0; i < qt.codes.size(); ++i) {
      const float gi = g[i];
      if (gi == 0.0f) continue;
      for (int j = 0; j < bits; ++j) {
        const float gain =
            gi * flip_delta(qt.codes[i], j, qt.scheme, qt.range);
        if (gain <= 0.0f) continue;
        ScoredFlip cand{{static_cast<std::uint32_t>(t),
                         static_cast<std::uint32_t>(i),
                         static_cast<std::uint8_t>(j)},
                        gain};
        if (best.size() == k && !better(cand, best.back())) continue;
        if (skip.count(flip_key(cand.flip))) continue;
        best.insert(std::upper_bound(best.begin(), best.end(), cand, better),
                    cand);
        if (best.size() > k) best.pop_back();
      }
    }
  }
  return best;
}

}  // namespace ber
