// Gradient-guided adversarial bit-flip attacks (Stutz et al. 2021,
// arXiv:2104.08323; fault-attack framing in Hacene et al. 2019,
// arXiv:1911.10287).
//
// Threat model: the adversary knows the deployed network (white box — its
// quantized codes and the quantization scheme), holds a batch of in-domain
// data, and can corrupt a BUDGETED number of memory cells of the weight
// array (e.g. via targeted voltage glitching or rowhammer-style disturbance).
// The attack greedily/progressively picks the flips: each round computes
// weight gradients of the task loss on the attack batch against the
// currently-perturbed codes (train/grad_capture.h — no optimizer step), maps
// them through the quantizer onto per-bit saliency scores
// (attack/bit_saliency.h), commits the top-k positive-gain flips, and
// repeats until the budget is spent or no loss-increasing flip remains.
//
// Everything is deterministic in (config, base snapshot): a fixed seed
// reproduces the flip set bit-for-bit, which is what makes adversarial RErr
// numbers comparable across runs and machines.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/attack_config.h"
#include "attack/bit_saliency.h"
#include "data/dataset.h"
#include "faults/adversarial_model.h"
#include "nn/sequential.h"
#include "quant/net_quantizer.h"

namespace ber {

struct AttackResult {
  std::vector<BitFlip> flips;     // committed flips, in application order
  float clean_loss = 0.0f;        // attack-batch loss before any flip
  float final_loss = 0.0f;        // attack-batch loss after the full set
  std::vector<float> round_loss;  // attack-batch loss after each round
  float predicted_gain = 0.0f;    // sum of first-order gains of the flips
};

class BitFlipAttacker {
 public:
  // Clones `model` internally (the original is never touched). `attack_set`
  // is held by reference and must outlive the attacker; deleted for rvalues.
  BitFlipAttacker(const Sequential& model, const QuantScheme& scheme,
                  const Dataset& attack_set, const AttackConfig& config);
  BitFlipAttacker(const Sequential& model, const QuantScheme& scheme,
                  Dataset&& attack_set, const AttackConfig& config) = delete;

  const AttackConfig& config() const { return config_; }

  // Mounts the attack against `base` (a snapshot of the model under the
  // attacker's scheme). Uses config().seed for the attack-batch subsample.
  AttackResult attack(const NetSnapshot& base);

  // Same, with an explicit subsample seed (overrides config().seed) — the
  // per-trial entry point for adversarial sweeps.
  AttackResult attack(const NetSnapshot& base, std::uint64_t seed);

 private:
  Sequential model_;
  NetQuantizer quantizer_;
  const Dataset& attack_set_;
  AttackConfig config_;
};

// Mounts `n_trials` independent attacks against `base` (trial t subsamples
// its attack batch with seed config().seed + t) and wraps the flip sets in
// an AdversarialBitErrorModel ready for the RobustnessEvaluator.
AdversarialBitErrorModel make_adversarial_model(BitFlipAttacker& attacker,
                                                const NetSnapshot& base,
                                                int n_trials);

}  // namespace ber
