#include "faults/ecc_protected_model.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>

#include "core/hash.h"
#include "core/rng.h"

namespace ber {

EccProtectedModel::EccProtectedModel(double p, std::uint64_t seed_base)
    : p_(p), seed_base_(seed_base) {
  if (!(p >= 0.0 && p <= 1.0)) {
    throw std::invalid_argument("EccProtectedModel: p must be in [0,1]");
  }
}

EccProtectedModel::EccProtectedModel(std::unique_ptr<FaultModel> inner)
    : inner_(std::move(inner)) {
  if (!inner_ || !inner_->supports_codeword_faults()) {
    throw std::invalid_argument(
        "EccProtectedModel: inner model must support codeword faults");
  }
}

std::string EccProtectedModel::describe() const {
  if (inner_) return "SECDED(72,64) over " + inner_->describe();
  char buf[64];
  std::snprintf(buf, sizeof(buf), "SECDED(72,64) @ p=%.4g%%", 100.0 * p_);
  return buf;
}

void EccProtectedModel::validate_layout(const NetSnapshot& layout) const {
  for (const auto& qt : layout.tensors) {
    if (qt.scheme.bits > 8) {
      throw std::invalid_argument(
          "EccProtectedModel: needs codes of at most 8 bits (8 per 64-bit "
          "data word)");
    }
  }
}

std::size_t EccProtectedModel::apply(NetSnapshot& snap,
                                     std::uint64_t trial) const {
  validate_layout(snap);
  Rng rng(hash_mix(seed_base_, trial, 1));
  std::uint64_t word_index = 0;
  std::size_t changed = 0;
  for (auto& qt : snap.tensors) {
    // Pack 8 consecutive 8-bit codes per 64-bit data word, tensor by tensor.
    for (std::size_t w0 = 0; w0 < qt.codes.size(); w0 += 8, ++word_index) {
      std::uint64_t data = 0;
      const std::size_t count = std::min<std::size_t>(8, qt.codes.size() - w0);
      for (std::size_t j = 0; j < count; ++j) {
        data |= static_cast<std::uint64_t>(qt.codes[w0 + j] & 0xFF) << (8 * j);
      }
      SecdedWord word = secded_encode(data);
      if (inner_) {
        inner_->corrupt_codeword(word, word_index, trial);
      } else {
        for (int bit = 0; bit < 72; ++bit) {
          if (rng.bernoulli(p_)) secded_flip(word, bit);
        }
      }
      const SecdedResult decoded = secded_decode(word);
      // Mask to the live code width: for sub-8-bit codes the byte's high
      // bits are padding cells — their faults can defeat the ECC correction
      // but never reach the stored weight.
      const std::uint16_t mask =
          static_cast<std::uint16_t>((1u << qt.scheme.bits) - 1u);
      for (std::size_t j = 0; j < count; ++j) {
        const std::uint16_t code =
            static_cast<std::uint16_t>((decoded.data >> (8 * j)) & mask);
        if (code != qt.codes[w0 + j]) {
          qt.codes[w0 + j] = code;
          ++changed;
        }
      }
    }
  }
  return changed;
}

}  // namespace ber
