#include "faults/adversarial_model.h"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <unordered_set>

#include "biterror/injector.h"
#include "core/hash.h"
#include "obs/forensics.h"

namespace ber {

AdversarialBitErrorModel::AdversarialBitErrorModel(
    std::vector<std::vector<BitFlip>> trials, std::string label)
    : trials_(std::move(trials)), label_(std::move(label)) {
  if (trials_.empty()) {
    throw std::invalid_argument(
        "AdversarialBitErrorModel: need at least one flip set");
  }
}

std::string AdversarialBitErrorModel::describe() const {
  std::size_t lo = trials_[0].size(), hi = lo;
  for (const auto& t : trials_) {
    lo = std::min(lo, t.size());
    hi = std::max(hi, t.size());
  }
  char buf[128];
  if (lo == hi) {
    std::snprintf(buf, sizeof(buf), "AdvBErr(%s, trials=%zu, flips=%zu)",
                  label_.c_str(), trials_.size(), hi);
  } else {
    std::snprintf(buf, sizeof(buf), "AdvBErr(%s, trials=%zu, flips=%zu..%zu)",
                  label_.c_str(), trials_.size(), lo, hi);
  }
  return buf;
}

void AdversarialBitErrorModel::validate_layout(
    const NetSnapshot& layout) const {
  for (const auto& trial : trials_) {
    for (const BitFlip& f : trial) {
      if (f.tensor >= layout.tensors.size()) {
        throw std::invalid_argument(
            "AdversarialBitErrorModel: flip tensor index outside layout");
      }
      const QuantizedTensor& qt = layout.tensors[f.tensor];
      if (f.index >= qt.codes.size()) {
        throw std::invalid_argument(
            "AdversarialBitErrorModel: flip element index outside tensor");
      }
      if (f.bit >= qt.scheme.bits) {
        throw std::invalid_argument(
            "AdversarialBitErrorModel: flip bit outside the code width");
      }
    }
  }
}

std::size_t AdversarialBitErrorModel::apply(NetSnapshot& snap,
                                            std::uint64_t trial) const {
  const std::vector<BitFlip>& flips = trials_[trial % trials_.size()];
  // Attack flip sets land in the same forensics ledger as random injection
  // (obs/forensics.h), so an adversarial campaign and its rate-matched
  // random control are directly comparable. One relaxed load when off.
  const bool forensics = obs::forensics_recording();
  std::vector<obs::FlipRecord> flip_recs;
  if (forensics) flip_recs.reserve(flips.size());
  // Flips are distinct cells, so every touched word ends up changed; the
  // changed count is the number of distinct words (several bits of one
  // weight may be attacked together).
  std::unordered_set<std::uint64_t> words;
  for (const BitFlip& f : flips) {
    std::uint16_t& code = snap.tensors[f.tensor].codes[f.index];
    const std::uint16_t before = code;
    code = apply_fault(code, f.bit, FaultType::kFlip);
    if (forensics) {
      const int width = snap.tensors[f.tensor].scheme.bits;
      flip_recs.push_back({0, f.tensor, f.index, f.bit,
                           static_cast<std::uint8_t>(width),
                           static_cast<std::uint8_t>(
                               obs::classify_bit(f.bit, width)),
                           before, code});
    }
    words.insert((static_cast<std::uint64_t>(f.tensor) << 32) | f.index);
  }
  if (forensics) {
    obs::fault_ledger().record_apply(std::move(flip_recs), words.size());
  }
  return words.size();
}

std::vector<BitFlip> random_flip_set(const NetSnapshot& layout,
                                     std::size_t budget, std::uint64_t seed) {
  // Flat cell space: tensor-major, then element, then bit.
  std::uint64_t total = 0;
  for (const QuantizedTensor& qt : layout.tensors) {
    total += static_cast<std::uint64_t>(qt.codes.size()) * qt.scheme.bits;
  }
  if (budget > total) {
    throw std::invalid_argument(
        "random_flip_set: budget exceeds the number of cells");
  }
  // Rejection-sample distinct flat ids from the stateless hash stream —
  // deterministic in `seed` and independent of iteration platform.
  std::unordered_set<std::uint64_t> chosen;
  std::vector<BitFlip> out;
  out.reserve(budget);
  for (std::uint64_t draw = 0; out.size() < budget; ++draw) {
    const std::uint64_t id =
        hash_mix(seed, 0xAD5EC7ULL, draw) % total;
    if (!chosen.insert(id).second) continue;
    std::uint64_t rest = id;
    BitFlip f;
    for (std::size_t t = 0; t < layout.tensors.size(); ++t) {
      const QuantizedTensor& qt = layout.tensors[t];
      const std::uint64_t span =
          static_cast<std::uint64_t>(qt.codes.size()) * qt.scheme.bits;
      if (rest < span) {
        f.tensor = static_cast<std::uint32_t>(t);
        f.index = static_cast<std::uint32_t>(rest / qt.scheme.bits);
        f.bit = static_cast<std::uint8_t>(rest % qt.scheme.bits);
        break;
      }
      rest -= span;
    }
    out.push_back(f);
  }
  return out;
}

AdversarialBitErrorModel random_flip_model(const NetSnapshot& layout,
                                           std::size_t budget, int n_trials,
                                           std::uint64_t seed_base) {
  if (n_trials <= 0) {
    throw std::invalid_argument("random_flip_model: need n_trials > 0");
  }
  std::vector<std::vector<BitFlip>> trials;
  trials.reserve(static_cast<std::size_t>(n_trials));
  for (int t = 0; t < n_trials; ++t) {
    trials.push_back(random_flip_set(
        layout, budget, seed_base + static_cast<std::uint64_t>(t)));
  }
  return AdversarialBitErrorModel(std::move(trials), "random-control");
}

}  // namespace ber
