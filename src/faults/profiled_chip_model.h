// A profiled SRAM array at a fixed operating voltage as a FaultModel
// (Tab. 5 protocol).
//
// Trial t selects the t-th linear weight-to-memory mapping: offsets are
// spread over the array with a large odd stride so different mappings
// overlap as little as possible — identical to the historical
// robust_error_profiled() offsets, so trial indices reproduce its results.
#pragma once

#include <memory>

#include "biterror/profiled_chip.h"
#include "faults/fault_model.h"

namespace ber {

class ProfiledChipModel : public FaultModel {
 public:
  // Non-owning: `chip` must outlive the model (profiled maps are large;
  // benches share one across models and voltages). Deleted for rvalues —
  // binding a temporary chip would dangle.
  ProfiledChipModel(const ProfiledChip& chip, double v);
  ProfiledChipModel(ProfiledChip&& chip, double v) = delete;
  // Owning: builds the chip described by `config`.
  ProfiledChipModel(const ProfiledChipConfig& config, double v);

  const ProfiledChip& chip() const { return *chip_; }
  double voltage() const { return v_; }

  // The mapping offset (in bits) used for trial `trial`.
  std::uint64_t offset_for_trial(std::uint64_t trial) const;

  std::string describe() const override;
  std::size_t apply(NetSnapshot& snap, std::uint64_t trial) const override;

  // The sparse fault pattern of trial `trial`'s mapping over `layout`,
  // covering every voltage >= v_min (pass the bottom of a sweep grid; this
  // model's own voltage() need not be in the grid). Apply at rate
  // chip().model_rate_at(v) — see ProfiledChip::fault_list.
  ChipFaultList fault_list(const NetSnapshot& layout, std::uint64_t trial,
                           double v_min) const;

 private:
  std::shared_ptr<const ProfiledChip> chip_;
  double v_;
};

}  // namespace ber
