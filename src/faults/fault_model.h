// The unified fault-scenario interface.
//
// The paper's experimental loop is always the same shape: quantize a network
// once, perturb the stored representation per "trial" (a chip, an offset
// mapping, a noise sample), evaluate, aggregate over trials. What varies is
// only HOW the representation is perturbed. A FaultModel captures that
// variation point so one RobustnessEvaluator (faults/evaluator.h) can run
// every scenario — uniform random bit errors (Sec. 3), profiled chips
// (Tab. 5), SECDED-protected memories (Sec. 1) and L-inf weight noise
// (Fig. 9) — and so new scenarios (adversarial bit errors, new memories)
// plug in without another hand-rolled sweep.
//
// A model perturbs one of two spaces, reported by space():
//   * kQuantizedCodes — apply(snapshot, trial) mutates quantized codes; the
//     evaluator dequantizes afterwards. The deterministic trial index is the
//     only randomness input: models derive their own seeds from it, so a
//     fixed (model config, trial) pair is a reproducible chip.
//   * kFloatWeights — apply_weights(params, trial) perturbs float weights
//     directly (no quantization involved).
// Calling the hook for the wrong space throws std::logic_error.
//
// Models must be safe to call concurrently for distinct trials (the
// evaluator runs trials chip-parallel on one shared const model).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ecc/secded.h"
#include "nn/layer.h"
#include "quant/net_quantizer.h"

namespace ber {

enum class FaultSpace { kQuantizedCodes, kFloatWeights };

class FaultModel {
 public:
  virtual ~FaultModel() = default;

  // Human-readable scenario description for bench/report labeling.
  virtual std::string describe() const = 0;

  virtual FaultSpace space() const { return FaultSpace::kQuantizedCodes; }

  // Throws std::invalid_argument if this model cannot operate on snapshots
  // with `layout`'s shape (e.g. bit widths it cannot pack). The evaluator
  // calls this once on the calling thread before fanning trials out to
  // workers — exceptions thrown inside worker threads would terminate the
  // process (core/parallel.h does not marshal them).
  virtual void validate_layout(const NetSnapshot& layout) const;

  // Injects trial `trial`'s faults into the quantized snapshot. Returns the
  // number of code words changed. Only for kQuantizedCodes models.
  virtual std::size_t apply(NetSnapshot& snap, std::uint64_t trial) const;

  // Perturbs float weights in place for trial `trial`. Only for
  // kFloatWeights models.
  virtual void apply_weights(const std::vector<Param*>& params,
                             std::uint64_t trial) const;

  // Optional capability: injecting faults into an arbitrary 72-bit SECDED
  // codeword memory (data + check bits). EccProtectedModel composes with any
  // model that supports this — check bits live outside the weight snapshot,
  // so apply() alone cannot express them.
  virtual bool supports_codeword_faults() const { return false; }
  virtual void corrupt_codeword(SecdedWord& word, std::uint64_t word_index,
                                std::uint64_t trial) const;
};

}  // namespace ber
