#include "faults/linf_noise_model.h"

#include <cstdio>
#include <stdexcept>

#include "core/hash.h"
#include "core/rng.h"

namespace ber {

LinfNoiseModel::LinfNoiseModel(double rel_eps, std::uint64_t seed_base)
    : rel_eps_(rel_eps), seed_base_(seed_base) {
  if (rel_eps < 0.0) {
    throw std::invalid_argument("LinfNoiseModel: rel_eps must be >= 0");
  }
}

std::string LinfNoiseModel::describe() const {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "LinfNoise(eps=%g%% of range)",
                100.0 * rel_eps_);
  return buf;
}

void LinfNoiseModel::apply_weights(const std::vector<Param*>& params,
                                   std::uint64_t trial) const {
  Rng rng(hash_mix(seed_base_, trial, 0x11FFULL));
  for (Param* p : params) {
    const float range = p->value.abs_max();
    const float eps = static_cast<float>(rel_eps_) * range;
    for (long i = 0; i < p->value.numel(); ++i) {
      p->value[i] += static_cast<float>(rng.uniform(-eps, eps));
    }
  }
}

}  // namespace ber
