// I.i.d. uniform L-inf weight noise (Fig. 9) as a FaultModel.
//
// A kFloatWeights scenario: trial t adds uniform noise in
// [-rel_eps * range, +rel_eps * range] to every weight, where range is each
// tensor's max |w|. Noise draws follow the historical
// linf_weight_noise_error() stream (Rng seeded per trial from seed_base), so
// trial indices reproduce its results exactly.
#pragma once

#include "faults/fault_model.h"

namespace ber {

class LinfNoiseModel : public FaultModel {
 public:
  explicit LinfNoiseModel(double rel_eps, std::uint64_t seed_base = 2000);

  double rel_eps() const { return rel_eps_; }

  std::string describe() const override;
  FaultSpace space() const override { return FaultSpace::kFloatWeights; }
  void apply_weights(const std::vector<Param*>& params,
                     std::uint64_t trial) const override;

 private:
  double rel_eps_;
  std::uint64_t seed_base_;
};

}  // namespace ber
