// Adversarial (chosen-cell) bit errors as a FaultModel.
//
// Where RandomBitErrorModel samples faults, this model REPLAYS precomputed
// flip sets — typically chosen by the gradient-guided BitFlipAttacker
// (src/attack/attacker.h), or drawn uniformly by random_flip_model() as the
// budget-matched control. Trial t applies flip set t (modulo the number of
// sets, so any n_trials is safe inside worker threads); applying a set is
// pure XOR on the stored codes, so the existing RobustnessEvaluator, the
// metrics adapters and the bench harness run adversarial sweeps unchanged.
#pragma once

#include <string>
#include <vector>

#include "attack/bit_saliency.h"
#include "faults/fault_model.h"

namespace ber {

class AdversarialBitErrorModel : public FaultModel {
 public:
  // `trials` must be non-empty; trial t replays trials[t % trials.size()].
  // `label` distinguishes scenarios in describe() (e.g. "gradient-guided"
  // vs "random-control").
  explicit AdversarialBitErrorModel(std::vector<std::vector<BitFlip>> trials,
                                    std::string label = "gradient-guided");

  const std::vector<std::vector<BitFlip>>& trials() const { return trials_; }

  std::string describe() const override;
  // Rejects flip sets whose coordinates fall outside `layout` (tensor index,
  // element index, or bit >= the tensor's code width).
  void validate_layout(const NetSnapshot& layout) const override;
  std::size_t apply(NetSnapshot& snap, std::uint64_t trial) const override;

 private:
  std::vector<std::vector<BitFlip>> trials_;
  std::string label_;
};

// Budget-matched random control: trial t flips `budget` distinct uniformly
// random cells of `layout` (derived from seed_base + t). Same flip count as
// an adversarial trial, no gradient guidance — the baseline that adversarial
// sweeps must beat.
AdversarialBitErrorModel random_flip_model(const NetSnapshot& layout,
                                           std::size_t budget, int n_trials,
                                           std::uint64_t seed_base = 3000);

// One such random flip set (exposed for tests and custom controls).
std::vector<BitFlip> random_flip_set(const NetSnapshot& layout,
                                     std::size_t budget, std::uint64_t seed);

}  // namespace ber
