// RobustnessEvaluator: the one quantize -> inject -> evaluate -> aggregate
// pipeline behind every robustness number in the repo.
//
// The evaluator snapshots (quantizes) the model's parameters ONCE, then runs
// n trials of a FaultModel chip-parallel: worker threads each own one model
// clone (a clone pool — write_dequantized fully overwrites the weights, so a
// clone is reusable across that worker's trials) and stream per-trial
// error/confidence into mean/std aggregation. Trials are indexed 0..n-1 and
// deterministic per (model config, trial), so results are reproducible and
// independent of thread count.
//
// run_rate_sweep() is the multi-rate fast path for random bit errors: the
// persistence property (faults at p' <= p are a subset of those at p) lets
// one ChipFaultList per chip, built at the top of the rate grid, serve every
// rate — each rate's results are bit-identical to a standalone run() at that
// rate, at a fraction of the hashing cost.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "data/dataset.h"
#include "faults/fault_model.h"
#include "nn/sequential.h"
#include "quant/net_quantizer.h"

namespace ber {

namespace obs {
class ForensicsCollector;
}

class ChipFaultList;
class ProfiledChipModel;
class RandomBitErrorModel;

struct RobustResult {
  float mean_rerr = 0.0f;
  float std_rerr = 0.0f;
  float mean_confidence = 0.0f;
  std::vector<float> per_chip;
};

// Single-pass mean / sample-std accumulator (O(1) state).
class StreamingMoments {
 public:
  void add(double x) {
    ++n_;
    sum_ += x;
    sumsq_ += x * x;
  }
  long count() const { return n_; }
  double mean() const { return n_ == 0 ? 0.0 : sum_ / n_; }
  double sample_std() const;

 private:
  long n_ = 0;
  double sum_ = 0.0;
  double sumsq_ = 0.0;
};

class RobustnessEvaluator {
 public:
  // Quantizing evaluator: snapshots `model`'s parameters once under
  // `scheme`; each trial perturbs a copy of the snapshot (kQuantizedCodes
  // models) or the dequantized weights (kFloatWeights models). The model
  // itself is never modified; it must outlive the evaluator.
  RobustnessEvaluator(Sequential& model, const QuantScheme& scheme);

  // Float-space evaluator (no quantization) — for kFloatWeights models only.
  explicit RobustnessEvaluator(Sequential& model);

  // The quantized baseline snapshot (empty in float-space mode).
  const NetSnapshot& snapshot() const { return base_snap_; }

  // Compute-on-codes deployment for code-space trials: weight layers adopt
  // the faulted code words (nn/code_compute.h) and inference runs the
  // backend's int8 qgemm over them instead of dequantize-then-float. Only
  // affects kQuantizedCodes fault models; defaults to the
  // BER_COMPUTE_ON_CODES environment toggle.
  void set_compute_on_codes(bool on) { on_codes_ = on; }
  bool compute_on_codes() const { return on_codes_; }

  // Opt-in fault forensics (obs/forensics.h). Code-space trials always run
  // their injection inside a ForensicsTrialScope tagged `profile` — free
  // when the global forensics gate is off — so an enabled ledger attributes
  // every flip to its trial. A non-null collector additionally gets a
  // propagation probe per trial (when prepared) and the per-trial error.
  // The collector must outlive the evaluator calls; nullptr detaches it.
  void set_forensics(obs::ForensicsCollector* collector,
                     const char* profile = "eval") {
    forensics_ = collector;
    forensics_profile_ = profile;
  }

  // Runs `n_trials` trials of `fault` and aggregates RErr / confidence.
  RobustResult run(const FaultModel& fault, const Dataset& data, int n_trials,
                   long batch = 200) const;

  // Evaluates `fault`'s scenario across a whole rate grid, building each
  // chip's fault list once at max(rates). Returns one RobustResult per rate,
  // bit-identical to run() with the model's config at that rate.
  std::vector<RobustResult> run_rate_sweep(const RandomBitErrorModel& fault,
                                           const std::vector<double>& rates,
                                           const Dataset& data, int n_chips,
                                           long batch = 200) const;

  // The voltage-grid analog of run_rate_sweep for profiled chips: profiled
  // maps are persistent in voltage too (faulty cells at a higher voltage are
  // a subset of those at a lower one), so each trial's offset mapping is
  // swept over the chip's cells once — at min(voltages) — and the resulting
  // fault list serves the whole grid. Returns one RobustResult per voltage,
  // bit-identical to run() with a ProfiledChipModel at that voltage.
  // `fault`'s own voltage is ignored; only its chip and mapping are used.
  std::vector<RobustResult> run_voltage_sweep(
      const ProfiledChipModel& fault, const std::vector<double>& voltages,
      const Dataset& data, int n_offsets, long batch = 200) const;

 private:
  // Shared scaffolding of the persistence-based grid sweeps: per trial,
  // build one fault list and apply it at every grid point's rate.
  std::vector<RobustResult> run_grid_sweep(
      std::size_t n_points, int n_trials, const Dataset& data, long batch,
      const std::function<ChipFaultList(std::uint64_t trial)>& build_list,
      const std::function<double(std::size_t point)>& rate_of) const;

  Sequential& model_;
  std::optional<NetQuantizer> quantizer_;
  NetSnapshot base_snap_;
  bool on_codes_ = compute_on_codes_default();
  obs::ForensicsCollector* forensics_ = nullptr;
  const char* forensics_profile_ = "eval";
};

}  // namespace ber
