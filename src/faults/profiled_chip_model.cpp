#include "faults/profiled_chip_model.h"

#include <cstdio>

namespace ber {

ProfiledChipModel::ProfiledChipModel(const ProfiledChip& chip, double v)
    : chip_(&chip, [](const ProfiledChip*) {}), v_(v) {}

ProfiledChipModel::ProfiledChipModel(const ProfiledChipConfig& config,
                                     double v)
    : chip_(std::make_shared<const ProfiledChip>(config)), v_(v) {}

std::uint64_t ProfiledChipModel::offset_for_trial(std::uint64_t trial) const {
  return (trial * 7919ULL * 64ULL) %
         static_cast<std::uint64_t>(chip_->num_cells());
}

std::string ProfiledChipModel::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "ProfiledChip(v=%.2f, measured p=%.4g%%, %ldx%ld)", v_,
                100.0 * chip_->error_rate_at(v_), chip_->config().rows,
                chip_->config().cols);
  return buf;
}

std::size_t ProfiledChipModel::apply(NetSnapshot& snap,
                                     std::uint64_t trial) const {
  return chip_->apply(snap, v_, offset_for_trial(trial));
}

ChipFaultList ProfiledChipModel::fault_list(const NetSnapshot& layout,
                                            std::uint64_t trial,
                                            double v_min) const {
  return chip_->fault_list(layout, v_min, offset_for_trial(trial));
}

}  // namespace ber
