// SECDED-protected weight memory (Sec. 1's hardware baseline) as a
// FaultModel.
//
// Eight 8-bit codes are packed per 64-bit data word and stored with their 8
// SECDED check bits; faults hit the full 72-bit codeword; decode corrects
// single-bit errors (and silently fails beyond — exactly the collapse the
// paper's intro quantifies) before the weights are deployed.
//
// Two fault sources:
//   * the built-in i.i.d. Bernoulli source (rate p, one RNG per trial drawn
//     over codeword bits in storage order) — reproduces the historical
//     bench_ecc_baseline streams exactly;
//   * composition with any inner FaultModel that supports_codeword_faults()
//     (e.g. RandomBitErrorModel: persistent monotone faults with stuck-at
//     type mixes reaching the check bits too).
#pragma once

#include <memory>

#include "faults/fault_model.h"

namespace ber {

class EccProtectedModel : public FaultModel {
 public:
  // Built-in Bernoulli fault source at per-bit rate `p`; trial t draws from
  // Rng(hash_mix(seed_base, t, 1)).
  explicit EccProtectedModel(double p, std::uint64_t seed_base = 7777);

  // Composes the SECDED memory with `inner`'s codeword faults. Throws
  // std::invalid_argument if inner lacks the capability.
  explicit EccProtectedModel(std::unique_ptr<FaultModel> inner);

  std::string describe() const override;
  // Rejects layouts with codes wider than 8 bits (8 codes per data word).
  void validate_layout(const NetSnapshot& layout) const override;
  std::size_t apply(NetSnapshot& snap, std::uint64_t trial) const override;

 private:
  double p_ = 0.0;
  std::uint64_t seed_base_ = 7777;
  std::unique_ptr<FaultModel> inner_;
};

}  // namespace ber
