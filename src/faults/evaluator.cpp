#include "faults/evaluator.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/parallel.h"
#include "eval/metrics.h"
#include "kernels/backend.h"
#include "faults/profiled_chip_model.h"
#include "faults/random_bit_error_model.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ber {

double StreamingMoments::sample_std() const {
  if (n_ == 0) return 0.0;
  const double m = mean();
  const double var = std::max(0.0, sumsq_ / n_ - m * m);
  return std::sqrt(var * n_ / std::max<long>(1, n_ - 1));
}

namespace {

RobustResult summarize(std::vector<float> errs,
                       const std::vector<float>& confs) {
  StreamingMoments err_moments, conf_moments;
  for (float e : errs) err_moments.add(e);
  for (float c : confs) conf_moments.add(c);
  RobustResult r;
  r.per_chip = std::move(errs);
  r.mean_rerr = static_cast<float>(err_moments.mean());
  r.std_rerr = static_cast<float>(err_moments.sample_std());
  r.mean_confidence = static_cast<float>(conf_moments.mean());
  return r;
}

// Runs fn(clone, pristine, trial) for trials [0, n) on a pool of workers;
// each worker owns one model clone plus — when `need_pristine` — a stash of
// its pristine weights (only the float-space path restores between trials;
// the quantizer paths fully overwrite, so skip the copy there). The
// caller's compute backend (thread-scoped overrides included) is captured
// here and re-installed on every worker thread.
template <typename PerTrial>
void run_trials(Sequential& model, int n_trials, bool need_pristine,
                const PerTrial& fn) {
  const kernels::Backend& backend = kernels::current_backend();
  const int threads =
      std::max(1, std::min(default_threads(), std::max(1, n_trials)));
  const std::int64_t chunk = (n_trials + threads - 1) / threads;
  parallel_for(threads, threads, [&](std::int64_t t) {
    const kernels::ScopedBackend backend_guard(backend);
    const std::int64_t lo = t * chunk;
    const std::int64_t hi = std::min<std::int64_t>(lo + chunk, n_trials);
    if (lo >= hi) return;
    Sequential clone(model);
    WeightStash pristine;
    if (need_pristine) pristine.save(clone.params());
    for (std::int64_t trial = lo; trial < hi; ++trial) {
      fn(clone, pristine, trial);
    }
  });
}

// Injection-campaign telemetry. The per-fault-word hot loops inside
// ChipFaultList stay uninstrumented (bench_injection measures them raw);
// everything here is per-trial / per-sweep-point granularity.
struct EvalMetrics {
  obs::Counter& trials = obs::registry().counter("faults.trials");
  obs::Counter& fault_lists =
      obs::registry().counter("faults.fault_lists_built");
  obs::Counter& words_patched =
      obs::registry().counter("faults.words_patched");
  obs::Histogram& trial_us = obs::registry().histogram("faults.trial_us");
  obs::Histogram& sweep_point_us =
      obs::registry().histogram("faults.sweep_point_us");
};

EvalMetrics& eval_metrics() {
  static EvalMetrics m;
  return m;
}

}  // namespace

RobustnessEvaluator::RobustnessEvaluator(Sequential& model,
                                         const QuantScheme& scheme)
    : model_(model), quantizer_(NetQuantizer(scheme)) {
  base_snap_ = quantizer_->quantize(model_.params());
}

RobustnessEvaluator::RobustnessEvaluator(Sequential& model) : model_(model) {}

RobustResult RobustnessEvaluator::run(const FaultModel& fault,
                                      const Dataset& data, int n_trials,
                                      long batch) const {
  if (n_trials <= 0) return {};
  const bool weight_space = fault.space() == FaultSpace::kFloatWeights;
  if (!quantizer_ && !weight_space) {
    throw std::invalid_argument(
        "RobustnessEvaluator: code-space fault models need a quantizing "
        "evaluator (construct with a QuantScheme)");
  }
  // Fail on the calling thread: worker-thread exceptions would terminate.
  if (quantizer_ && !weight_space) fault.validate_layout(base_snap_);
  std::vector<float> errs(static_cast<std::size_t>(n_trials));
  std::vector<float> confs(static_cast<std::size_t>(n_trials));
  run_trials(model_, n_trials, /*need_pristine=*/!quantizer_,
             [&](Sequential& clone, const WeightStash& pristine,
                 std::int64_t trial) {
               BER_TRACE_SCOPE_ARGS("faults", "trial", {"trial", trial});
               EvalMetrics& em = eval_metrics();
               em.trials.add(1);
               const obs::ScopedTimerUs timer(em.trial_us);
               const auto params = clone.params();
               if (quantizer_) {
                 if (weight_space) {
                   quantizer_->write_dequantized(base_snap_, params);
                   fault.apply_weights(params,
                                       static_cast<std::uint64_t>(trial));
                 } else {
                   NetSnapshot snap = base_snap_;
                   {
                     const obs::ForensicsTrialScope fscope(
                         static_cast<std::uint64_t>(trial),
                         forensics_profile_);
                     em.words_patched.add(fault.apply(
                         snap, static_cast<std::uint64_t>(trial)));
                   }
                   deploy_snapshot(snap, param_slots(clone), on_codes_);
                   if (forensics_ != nullptr && forensics_->probes_ready()) {
                     forensics_->probe_trial(
                         clone, static_cast<std::uint64_t>(trial),
                         forensics_profile_);
                   }
                 }
               } else {
                 // Reset to the pristine weights before perturbing: unlike
                 // write_dequantized, apply_weights accumulates.
                 pristine.restore(params);
                 fault.apply_weights(params,
                                     static_cast<std::uint64_t>(trial));
               }
               const EvalResult r = evaluate(clone, data, batch);
               if (forensics_ != nullptr && quantizer_ && !weight_space) {
                 forensics_->record_trial_error(
                     static_cast<std::uint64_t>(trial), forensics_profile_,
                     r.error);
               }
               errs[static_cast<std::size_t>(trial)] = r.error;
               confs[static_cast<std::size_t>(trial)] = r.confidence;
             });
  return summarize(std::move(errs), confs);
}

std::vector<RobustResult> RobustnessEvaluator::run_grid_sweep(
    std::size_t n_points, int n_trials, const Dataset& data, long batch,
    const std::function<ChipFaultList(std::uint64_t)>& build_list,
    const std::function<double(std::size_t)>& rate_of) const {
  std::vector<std::vector<float>> errs(n_points), confs(n_points);
  for (std::size_t r = 0; r < n_points; ++r) {
    errs[r].resize(static_cast<std::size_t>(n_trials));
    confs[r].resize(static_cast<std::size_t>(n_trials));
  }
  run_trials(model_, n_trials, /*need_pristine=*/false,
             [&](Sequential& clone, const WeightStash&, std::int64_t trial) {
               BER_TRACE_SCOPE_ARGS("faults", "chip_trial", {"trial", trial});
               EvalMetrics& em = eval_metrics();
               em.trials.add(1);
               // One fault-list build per trial covers the whole grid; each
               // point keeps the subset of faults with u below its rate
               // (persistence).
               const ChipFaultList faults =
                   build_list(static_cast<std::uint64_t>(trial));
               em.fault_lists.add(1);
               const std::vector<ParamSlot> slots = param_slots(clone);
               for (std::size_t r = 0; r < n_points; ++r) {
                 BER_TRACE_SCOPE_ARGS("faults", "sweep_point", {"point", r});
                 const obs::ScopedTimerUs timer(em.sweep_point_us);
                 // Point-distinct trial token: grid points of one trial are
                 // separate injections with their own ledger / probe rows.
                 const std::uint64_t token =
                     static_cast<std::uint64_t>(trial) * n_points + r;
                 NetSnapshot snap = base_snap_;
                 {
                   const obs::ForensicsTrialScope fscope(token,
                                                         forensics_profile_);
                   em.words_patched.add(faults.apply(snap, rate_of(r)));
                 }
                 deploy_snapshot(snap, slots, on_codes_);
                 if (forensics_ != nullptr && forensics_->probes_ready()) {
                   forensics_->probe_trial(clone, token, forensics_profile_);
                 }
                 const EvalResult res = evaluate(clone, data, batch);
                 if (forensics_ != nullptr) {
                   forensics_->record_trial_error(token, forensics_profile_,
                                                  res.error);
                 }
                 errs[r][static_cast<std::size_t>(trial)] = res.error;
                 confs[r][static_cast<std::size_t>(trial)] = res.confidence;
               }
             });
  std::vector<RobustResult> out;
  out.reserve(n_points);
  for (std::size_t r = 0; r < n_points; ++r) {
    out.push_back(summarize(std::move(errs[r]), confs[r]));
  }
  return out;
}

std::vector<RobustResult> RobustnessEvaluator::run_rate_sweep(
    const RandomBitErrorModel& fault, const std::vector<double>& rates,
    const Dataset& data, int n_chips, long batch) const {
  if (!quantizer_) {
    throw std::invalid_argument(
        "RobustnessEvaluator::run_rate_sweep: needs a quantizing evaluator");
  }
  if (rates.empty() || n_chips <= 0) return {};
  double p_max = 0.0;
  for (double p : rates) {
    if (!(p >= 0.0 && p <= 1.0)) {
      throw std::invalid_argument("run_rate_sweep: rates must be in [0,1]");
    }
    p_max = std::max(p_max, p);
  }
  return run_grid_sweep(
      rates.size(), n_chips, data, batch,
      [&](std::uint64_t chip) {
        return fault.fault_list(base_snap_, chip, p_max);
      },
      [&](std::size_t r) { return rates[r]; });
}

std::vector<RobustResult> RobustnessEvaluator::run_voltage_sweep(
    const ProfiledChipModel& fault, const std::vector<double>& voltages,
    const Dataset& data, int n_offsets, long batch) const {
  if (!quantizer_) {
    throw std::invalid_argument(
        "RobustnessEvaluator::run_voltage_sweep: needs a quantizing "
        "evaluator");
  }
  if (voltages.empty() || n_offsets <= 0) return {};
  double v_min = voltages[0];
  for (double v : voltages) v_min = std::min(v_min, v);
  return run_grid_sweep(
      voltages.size(), n_offsets, data, batch,
      [&](std::uint64_t trial) {
        return fault.fault_list(base_snap_, trial, v_min);
      },
      [&](std::size_t r) { return fault.chip().model_rate_at(voltages[r]); });
}

}  // namespace ber
