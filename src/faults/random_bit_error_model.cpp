#include "faults/random_bit_error_model.h"

#include <cstdio>

namespace ber {

namespace {

// Reads / writes bit `bit` (0..63 data, 64..71 check) of a SECDED codeword.
bool codeword_bit(const SecdedWord& word, int bit) {
  if (bit < 64) return (word.data >> bit) & 1u;
  return (word.check >> (bit - 64)) & 1u;
}

void apply_codeword_fault(SecdedWord& word, int bit, FaultType type) {
  const bool stored = codeword_bit(word, bit);
  switch (type) {
    case FaultType::kFlip:
      secded_flip(word, bit);
      return;
    case FaultType::kSet1:
      if (!stored) secded_flip(word, bit);
      return;
    case FaultType::kSet0:
      if (stored) secded_flip(word, bit);
      return;
  }
}

}  // namespace

RandomBitErrorModel::RandomBitErrorModel(const BitErrorConfig& config,
                                         std::uint64_t seed_base)
    : config_(config), seed_base_(seed_base) {
  config_.validate();
}

std::string RandomBitErrorModel::describe() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "BErr(p=%.4g%%, flip/set1/set0=%g/%g/%g)",
                100.0 * config_.p, config_.flip_fraction,
                config_.set1_fraction, config_.set0_fraction);
  return buf;
}

std::size_t RandomBitErrorModel::apply(NetSnapshot& snap,
                                       std::uint64_t trial) const {
  // Single-rate, fresh-chip injection: the one-shot scalar pass wins (no
  // list to amortize). Sweeps go through fault_list() instead.
  return inject_random_bit_errors_scalar(snap, config_, seed_base_ + trial);
}

ChipFaultList RandomBitErrorModel::fault_list(const NetSnapshot& layout,
                                              std::uint64_t trial,
                                              double p_max) const {
  return ChipFaultList(layout, config_, seed_base_ + trial, p_max);
}

void RandomBitErrorModel::corrupt_codeword(SecdedWord& word,
                                           std::uint64_t word_index,
                                           std::uint64_t trial) const {
  const std::uint64_t chip_seed = seed_base_ + trial;
  for (int bit = 0; bit < 72; ++bit) {
    if (!cell_faulty(chip_seed, word_index, static_cast<std::uint64_t>(bit),
                     config_.p)) {
      continue;
    }
    apply_codeword_fault(word, bit,
                         fault_type_at(config_, chip_seed, word_index,
                                       static_cast<std::uint64_t>(bit)));
  }
}

}  // namespace ber
