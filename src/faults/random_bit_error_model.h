// Uniform random bit errors BErr_p (Sec. 3) as a FaultModel.
//
// Trial t is the chip with seed `seed_base + t`, so trial indices reproduce
// the historical robust_error() chips exactly. Injection goes through the
// sparse ChipFaultList hot path (biterror/injector.h); fault_list() exposes
// the list so multi-rate sweeps can build it once per chip at the highest
// rate and filter down — the persistence property of the model guarantees
// the faults at p' <= p are the subset with u < p'.
//
// Also supports SECDED codeword faults (supports_codeword_faults), mapping
// cell coordinates (codeword index, bit 0..71) through the same monotone
// hash — this is what EccProtectedModel composes with for a persistent,
// typed ECC-space fault scenario.
#pragma once

#include "biterror/injector.h"
#include "faults/fault_model.h"

namespace ber {

class RandomBitErrorModel : public FaultModel {
 public:
  explicit RandomBitErrorModel(const BitErrorConfig& config,
                               std::uint64_t seed_base = 1000);

  const BitErrorConfig& config() const { return config_; }
  std::uint64_t seed_base() const { return seed_base_; }

  std::string describe() const override;
  std::size_t apply(NetSnapshot& snap, std::uint64_t trial) const override;

  // The sparse fault pattern of trial `trial` over `layout`, covering every
  // rate up to p_max (>= config().p allowed; pass the top of a sweep grid).
  ChipFaultList fault_list(const NetSnapshot& layout, std::uint64_t trial,
                           double p_max) const;

  bool supports_codeword_faults() const override { return true; }
  void corrupt_codeword(SecdedWord& word, std::uint64_t word_index,
                        std::uint64_t trial) const override;

 private:
  BitErrorConfig config_;
  std::uint64_t seed_base_;
};

}  // namespace ber
