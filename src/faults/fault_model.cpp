#include "faults/fault_model.h"

#include <stdexcept>

namespace ber {

void FaultModel::validate_layout(const NetSnapshot&) const {}

std::size_t FaultModel::apply(NetSnapshot&, std::uint64_t) const {
  throw std::logic_error(describe() +
                         ": code-space injection not supported");
}

void FaultModel::apply_weights(const std::vector<Param*>&,
                               std::uint64_t) const {
  throw std::logic_error(describe() +
                         ": weight-space injection not supported");
}

void FaultModel::corrupt_codeword(SecdedWord&, std::uint64_t,
                                  std::uint64_t) const {
  throw std::logic_error(describe() + ": codeword faults not supported");
}

}  // namespace ber
