#include "obs/forensics.h"

#include <algorithm>
#include <cmath>
#include <set>

#include "data/dataset.h"
#include "nn/sequential.h"
#include "obs/metrics.h"
#include "quant/net_quantizer.h"
#include "tensor/tensor.h"

namespace ber::obs {

namespace detail {
std::atomic<bool> g_forensics{false};

TrialContext& trial_context() {
  thread_local TrialContext ctx;
  return ctx;
}
}  // namespace detail

BitClass classify_bit(int bit, int width) {
  if (bit >= width - 1) return BitClass::kMsb;  // two's-complement sign bit
  if (2 * bit >= width) return BitClass::kHigh;
  return BitClass::kLow;
}

const char* bit_class_name(BitClass c) {
  switch (c) {
    case BitClass::kLow: return "low";
    case BitClass::kHigh: return "high";
    case BitClass::kMsb: return "msb";
  }
  return "?";
}

// -------------------------------------------------------------- FaultLedger --

void FaultLedger::set_enabled(bool on) {
  detail::g_forensics.store(on, std::memory_order_relaxed);
}

void FaultLedger::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  profiles_.clear();
}

void FaultLedger::record_apply(std::vector<FlipRecord>&& records,
                               std::size_t words_changed) {
  const detail::TrialContext& ctx = detail::trial_context();
  if (!forensics_enabled() || ctx.profile == nullptr) return;
  for (FlipRecord& r : records) r.token = ctx.token;
  // Resolved here, not at namespace scope: the forensics.* keys must not
  // exist in the registry unless forensics actually recorded something.
  registry().counter("forensics.flips").add(records.size());
  registry().counter("forensics.words_changed").add(words_changed);
  std::lock_guard<std::mutex> lock(mu_);
  ProfileData& pd = profiles_[ctx.profile];
  pd.totals.flips += records.size();
  pd.totals.words_changed += words_changed;
  ++pd.totals.applies;
  pd.records.insert(pd.records.end(),
                    std::make_move_iterator(records.begin()),
                    std::make_move_iterator(records.end()));
}

std::vector<std::string> FaultLedger::profiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(profiles_.size());
  for (const auto& [name, _] : profiles_) out.push_back(name);
  return out;
}

FaultLedger::ProfileTotals FaultLedger::totals(
    const std::string& profile) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = profiles_.find(profile);
  return it == profiles_.end() ? ProfileTotals{} : it->second.totals;
}

FaultLedger::ProfileTotals FaultLedger::totals() const {
  std::lock_guard<std::mutex> lock(mu_);
  ProfileTotals t;
  for (const auto& [_, pd] : profiles_) {
    t.flips += pd.totals.flips;
    t.words_changed += pd.totals.words_changed;
    t.applies += pd.totals.applies;
  }
  return t;
}

std::vector<FlipRecord> FaultLedger::records(const std::string& profile) const {
  std::vector<FlipRecord> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = profiles_.find(profile);
    if (it == profiles_.end()) return out;
    out = it->second.records;
  }
  // Worker threads append in completion order; sort so the view is a pure
  // function of the trial set.
  std::sort(out.begin(), out.end(),
            [](const FlipRecord& a, const FlipRecord& b) {
              if (a.token != b.token) return a.token < b.token;
              if (a.tensor != b.tensor) return a.tensor < b.tensor;
              if (a.index != b.index) return a.index < b.index;
              return a.bit < b.bit;
            });
  return out;
}

FaultLedger& fault_ledger() {
  static FaultLedger* ledger = new FaultLedger();  // never destroyed, like
                                                   // the metrics registry
  return *ledger;
}

// ------------------------------------------------------- ForensicsCollector --

void ForensicsCollector::prepare_probes(const Sequential& model,
                                        const NetSnapshot& base,
                                        bool on_codes, const Dataset& data) {
  if (opts_.probe_images <= 0 || data.size() == 0) return;
  const long n = std::min<long>(opts_.probe_images, data.size());
  Tensor x;
  std::vector<int> labels;
  data.batch(0, n, x, labels);
  probe_shape_ = x.shape();
  probe_data_.assign(x.data(), x.data() + x.numel());
  Sequential clone(model);
  deploy_snapshot(base, param_slots(clone), on_codes);
  clean_acts_.clear();
  clone.forward_observed(
      x, [&](std::size_t layer, const Layer&, const Tensor& out) {
        clean_acts_.emplace_back(
            layer, std::vector<float>(out.data(), out.data() + out.numel()));
      });
}

void ForensicsCollector::probe_trial(Sequential& clone, std::uint64_t token,
                                     const std::string& profile) {
  if (clean_acts_.empty()) return;
  const Tensor x = Tensor::from_data(probe_shape_, probe_data_);
  ProbeResult pr;
  pr.divergence.reserve(clean_acts_.size());
  std::size_t pos = 0;
  bool mismatch = false;
  clone.forward_observed(
      x, [&](std::size_t layer, const Layer&, const Tensor& out) {
        if (pos >= clean_acts_.size() || clean_acts_[pos].first != layer ||
            static_cast<long>(clean_acts_[pos].second.size()) !=
                out.numel()) {
          mismatch = true;
          ++pos;
          return;
        }
        const std::vector<float>& clean = clean_acts_[pos].second;
        const float* d = out.data();
        double num = 0.0, den = 0.0;
        for (std::size_t k = 0; k < clean.size(); ++k) {
          const double diff = static_cast<double>(d[k]) - clean[k];
          num += diff * diff;
          den += static_cast<double>(clean[k]) * clean[k];
        }
        const double rel = std::sqrt(num) / (std::sqrt(den) + 1e-12);
        if (pr.first_divergence < 0 && rel > opts_.divergence_threshold) {
          pr.first_divergence = static_cast<int>(pos);
        }
        pr.divergence.push_back(rel);
        ++pos;
      });
  if (mismatch || pos != clean_acts_.size()) return;  // shape drifted; skip
  // Histograms are commutative, so their contents are thread-count
  // invariant; depth "never diverged" records one past the last layer.
  registry()
      .histogram("forensics.probe_first_divergence")
      .record(pr.first_divergence < 0
                  ? static_cast<double>(clean_acts_.size())
                  : pr.first_divergence);
  Histogram& ppm = registry().histogram("forensics.probe_divergence_ppm");
  for (double rel : pr.divergence) ppm.record(rel * 1e6);
  std::lock_guard<std::mutex> lock(mu_);
  agg_[profile].probes[token] = std::move(pr);
}

void ForensicsCollector::record_trial_error(std::uint64_t token,
                                            const std::string& profile,
                                            double error) {
  std::lock_guard<std::mutex> lock(mu_);
  agg_[profile].errors[token] = error;
}

namespace {

struct ClassAgg {
  std::size_t flips = 0;
  double err_weight = 0.0;  // sum over trials of err(trial) * flips(trial)
};

}  // namespace

Json ForensicsCollector::to_json(std::uint64_t counter_words_patched) const {
  std::lock_guard<std::mutex> lock(mu_);
  const FaultLedger& ledger = fault_ledger();
  Json j = Json::object();
  Json opts = Json::object();
  opts.set("probe_images", opts_.probe_images);
  opts.set("divergence_threshold", opts_.divergence_threshold);
  j.set("options", std::move(opts));

  const FaultLedger::ProfileTotals all = ledger.totals();
  Json lj = Json::object();
  lj.set("flips", static_cast<std::uint64_t>(all.flips));
  lj.set("words_changed", static_cast<std::uint64_t>(all.words_changed));
  lj.set("applies", static_cast<std::uint64_t>(all.applies));
  j.set("ledger", std::move(lj));
  j.set("counter_words_patched", counter_words_patched);
  j.set("counter_reconciles", all.words_changed == counter_words_patched);

  Json profiles = Json::object();
  for (const std::string& name : ledger.profiles()) {
    const std::vector<FlipRecord> recs = ledger.records(name);
    const FaultLedger::ProfileTotals totals = ledger.totals(name);
    const auto agg_it = agg_.find(name);
    const ProfileAgg* agg = agg_it == agg_.end() ? nullptr : &agg_it->second;

    Json pj = Json::object();
    pj.set("flips", static_cast<std::uint64_t>(totals.flips));
    pj.set("words_changed", static_cast<std::uint64_t>(totals.words_changed));
    pj.set("applies", static_cast<std::uint64_t>(totals.applies));

    // Per-trial flip tallies by tensor / bit position / bit class.
    std::map<std::uint32_t, std::size_t> by_tensor;
    std::map<int, std::size_t> by_bit;
    ClassAgg by_class[3];
    std::map<std::uint64_t, std::size_t> class_token_flips[3];
    std::set<std::uint64_t> tokens;
    for (const FlipRecord& r : recs) {
      tokens.insert(r.token);
      ++by_tensor[r.tensor];
      ++by_bit[r.bit];
      ++by_class[r.bit_class].flips;
      ++class_token_flips[r.bit_class][r.token];
    }
    pj.set("trials", static_cast<std::uint64_t>(tokens.size()));

    double mean_err = 0.0;
    if (agg != nullptr && !agg->errors.empty()) {
      for (const auto& [_, e] : agg->errors) mean_err += e;
      mean_err /= static_cast<double>(agg->errors.size());
      pj.set("mean_err", mean_err);
    }

    Json tj = Json::array();
    for (const auto& [tensor, flips] : by_tensor) {
      Json e = Json::object();
      e.set("tensor", static_cast<long>(tensor));
      e.set("flips", static_cast<std::uint64_t>(flips));
      e.set("fraction", totals.flips == 0
                            ? 0.0
                            : static_cast<double>(flips) / totals.flips);
      tj.push_back(std::move(e));
    }
    pj.set("by_tensor", std::move(tj));
    // Flip mass concentration across tensors: max single-tensor share. An
    // adversarial campaign piles onto few layers; random spreads by size.
    std::size_t top_tensor = 0;
    for (const auto& [_, flips] : by_tensor) {
      top_tensor = std::max(top_tensor, flips);
    }
    pj.set("top_tensor_fraction",
           totals.flips == 0
               ? 0.0
               : static_cast<double>(top_tensor) / totals.flips);

    Json bj = Json::array();
    for (const auto& [bit, flips] : by_bit) {
      Json e = Json::object();
      e.set("bit", bit);
      e.set("flips", static_cast<std::uint64_t>(flips));
      bj.push_back(std::move(e));
    }
    pj.set("by_bit", std::move(bj));

    Json cj = Json::object();
    for (int c = 0; c < 3; ++c) {
      Json e = Json::object();
      e.set("flips", static_cast<std::uint64_t>(by_class[c].flips));
      // Error co-occurrence: mean trial error weighted by this class's
      // flip count per trial, vs the profile's unweighted mean. A class
      // whose flips drive misclassification pulls its weighted mean above
      // the baseline.
      if (agg != nullptr && by_class[c].flips > 0) {
        double w_err = 0.0, w = 0.0;
        for (const auto& [token, flips] : class_token_flips[c]) {
          const auto e_it = agg->errors.find(token);
          if (e_it == agg->errors.end()) continue;
          w_err += e_it->second * static_cast<double>(flips);
          w += static_cast<double>(flips);
        }
        if (w > 0.0) e.set("err_weighted", w_err / w);
      }
      cj.set(bit_class_name(static_cast<BitClass>(c)), std::move(e));
    }
    pj.set("by_class", std::move(cj));
    pj.set("msb_fraction", totals.flips == 0
                               ? 0.0
                               : static_cast<double>(
                                     by_class[static_cast<int>(
                                         BitClass::kMsb)].flips) /
                                     totals.flips);

    if (agg != nullptr && !agg->probes.empty()) {
      Json prj = Json::object();
      std::vector<double> layer_sum;
      double depth_sum = 0.0;
      std::size_t never = 0;
      for (const auto& [_, pr] : agg->probes) {
        if (layer_sum.size() < pr.divergence.size()) {
          layer_sum.resize(pr.divergence.size(), 0.0);
        }
        for (std::size_t i = 0; i < pr.divergence.size(); ++i) {
          layer_sum[i] += pr.divergence[i];
        }
        if (pr.first_divergence < 0) {
          ++never;
          depth_sum += static_cast<double>(layer_sum.size());
        } else {
          depth_sum += pr.first_divergence;
        }
      }
      const double n = static_cast<double>(agg->probes.size());
      prj.set("trials", static_cast<std::uint64_t>(agg->probes.size()));
      prj.set("mean_first_divergence", depth_sum / n);
      prj.set("never_diverged", static_cast<std::uint64_t>(never));
      Json layers = Json::array();
      for (double s : layer_sum) layers.push_back(s / n);
      prj.set("mean_layer_divergence", std::move(layers));
      pj.set("probes", std::move(prj));
    }
    profiles.set(name, std::move(pj));
  }
  j.set("profiles", std::move(profiles));
  return j;
}

}  // namespace ber::obs
