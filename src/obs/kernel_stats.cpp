#include "obs/kernel_stats.h"

#include <map>
#include <memory>
#include <mutex>

namespace ber::obs {

KernelStats& kernel_stats(const std::string& backend) {
  static std::mutex mu;
  static std::map<std::string, std::unique_ptr<KernelStats>>* cache =
      new std::map<std::string, std::unique_ptr<KernelStats>>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(backend);
  if (it != cache->end()) return *it->second;
  Registry& reg = registry();
  const Labels labels = {{"backend", backend}};
  auto ks = std::make_unique<KernelStats>();
  ks->gemm_calls = &reg.counter("kernels.gemm_calls", labels);
  ks->gemm_flops = &reg.counter("kernels.gemm_flops", labels);
  ks->conv_calls = &reg.counter("kernels.conv_calls", labels);
  ks->conv_images = &reg.counter("kernels.conv_images", labels);
  ks->im2col_bytes = &reg.counter("kernels.im2col_bytes", labels);
  ks->qgemm_calls = &reg.counter("kernels.qgemm_calls", labels);
  ks->qgemm_flops = &reg.counter("kernels.qgemm_flops", labels);
  ks->qconv_calls = &reg.counter("kernels.qconv_calls", labels);
  ks->qconv_images = &reg.counter("kernels.qconv_images", labels);
  ks->pack_ns = &reg.counter("kernels.pack_ns", labels);
  KernelStats& ref = *ks;
  (*cache)[backend] = std::move(ks);
  return ref;
}

void note_arena_capacity(std::size_t bytes) {
  static Gauge& hwm = registry().gauge("kernels.arena_hwm_bytes");
  hwm.set_max(static_cast<double>(bytes));
}

}  // namespace ber::obs
