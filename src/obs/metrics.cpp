#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

namespace ber::obs {

std::uint64_t monotonic_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

std::string metric_key(const std::string& name, const Labels& labels) {
  if (labels.empty()) return name;
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string key = name + "{";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    if (i > 0) key += ",";
    key += sorted[i].first + "=\"" + sorted[i].second + "\"";
  }
  key += "}";
  return key;
}

// ------------------------------------------------------------------- Gauge --

void Gauge::add(double d) {
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void Gauge::set_max(double v) {
  double cur = v_.load(std::memory_order_relaxed);
  while (cur < v &&
         !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

// --------------------------------------------------------------- Histogram --

Histogram::Histogram() : buckets_(static_cast<std::size_t>(kBuckets)) {}

std::size_t Histogram::bucket_index(std::uint64_t v) {
  if (v < static_cast<std::uint64_t>(kSub)) return static_cast<std::size_t>(v);
  const int e = std::bit_width(v) - 1;  // v in [2^e, 2^(e+1)), e >= kSubBits
  const std::uint64_t sub = (v >> (e - kSubBits)) - kSub;
  return static_cast<std::size_t>((e - kSubBits + 1) * kSub + sub);
}

std::uint64_t Histogram::bucket_lower(std::size_t idx) {
  if (idx < static_cast<std::size_t>(kSub)) return idx;
  const std::size_t group = idx / kSub;  // >= 1
  const std::uint64_t sub = idx % kSub;
  return (static_cast<std::uint64_t>(kSub) + sub) << (group - 1);
}

std::uint64_t Histogram::bucket_upper(std::size_t idx) {
  if (idx + 1 >= static_cast<std::size_t>(kBuckets)) return ~0ull;
  return bucket_lower(idx + 1);
}

void Histogram::record(double v) {
  if (!(v > 0.0)) v = 0.0;  // negatives and NaN clamp to the zero bucket
  const std::uint64_t iv = static_cast<std::uint64_t>(std::llround(
      std::min(v, 9.2e18)));
  buckets_[bucket_index(iv)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v,
                                     std::memory_order_relaxed)) {
  }
  double mx = max_.load(std::memory_order_relaxed);
  while (mx < v &&
         !max_.compare_exchange_weak(mx, v, std::memory_order_relaxed)) {
  }
}

Histogram::Snapshot Histogram::snapshot() const {
  Snapshot s;
  s.buckets.resize(static_cast<std::size_t>(kBuckets));
  for (std::size_t i = 0; i < s.buckets.size(); ++i) {
    s.buckets[i] = buckets_[i].load(std::memory_order_relaxed);
  }
  s.count = count_.load(std::memory_order_relaxed);
  s.sum = sum_.load(std::memory_order_relaxed);
  s.max = max_.load(std::memory_order_relaxed);
  return s;
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  max_.store(0.0, std::memory_order_relaxed);
}

double Histogram::Snapshot::quantile(double q) const {
  // Recompute the total from the buckets: under concurrent recording the
  // atomic count may run ahead of the bucket copies, and the walk must use
  // a rank consistent with what it will actually find.
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total - 1);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    if (buckets[i] == 0) continue;
    const double lo_rank = static_cast<double>(cum);
    cum += buckets[i];
    if (rank < static_cast<double>(cum)) {
      const double lower = static_cast<double>(bucket_lower(i));
      // Linear-range buckets hold exactly one integer value each — the
      // lower bound is the value; interpolating would only add error.
      if (i < static_cast<std::size_t>(kSub)) return lower;
      const double upper = static_cast<double>(bucket_upper(i));
      const double frac =
          (rank - lo_rank + 0.5) / static_cast<double>(buckets[i]);
      return lower + (upper - lower) * std::min(1.0, frac);
    }
  }
  return static_cast<double>(bucket_upper(buckets.size() - 1));
}

double Histogram::Snapshot::fraction_le(double v) const {
  std::uint64_t total = 0;
  for (std::uint64_t b : buckets) total += b;
  if (total == 0) return 1.0;
  if (v < 0.0) return 0.0;
  const std::uint64_t iv = static_cast<std::uint64_t>(
      std::llround(std::min(v, 9.2e18)));
  const std::size_t idx = bucket_index(iv);
  std::uint64_t below = 0;
  for (std::size_t i = 0; i < idx; ++i) below += buckets[i];
  double in_bucket = static_cast<double>(buckets[idx]);
  if (idx >= static_cast<std::size_t>(kSub)) {
    // Wide bucket: count the straddling bucket's samples proportionally to
    // how much of it lies at or below v (linear buckets hold one integer
    // value each, so they are entirely <= v already).
    const double lo = static_cast<double>(bucket_lower(idx));
    const double hi = static_cast<double>(bucket_upper(idx));
    in_bucket *= std::clamp((static_cast<double>(iv) + 1.0 - lo) / (hi - lo),
                            0.0, 1.0);
  }
  return std::min(1.0, (static_cast<double>(below) + in_bucket) /
                           static_cast<double>(total));
}

Histogram::Snapshot Histogram::Snapshot::operator-(
    const Snapshot& earlier) const {
  Snapshot d;
  d.count = count - std::min(earlier.count, count);
  d.sum = sum - earlier.sum;
  d.max = max;  // max is not subtractable; keep the cumulative high-water
  d.buckets.resize(buckets.size());
  for (std::size_t i = 0; i < buckets.size(); ++i) {
    const std::uint64_t base =
        i < earlier.buckets.size() ? earlier.buckets[i] : 0;
    d.buckets[i] = buckets[i] - std::min(base, buckets[i]);
  }
  return d;
}

Json Histogram::Snapshot::to_json() const {
  Json j = Json::object();
  j.set("count", static_cast<std::uint64_t>(count));
  j.set("sum", sum);
  j.set("mean", mean());
  j.set("p50", quantile(0.50));
  j.set("p90", quantile(0.90));
  j.set("p99", quantile(0.99));
  j.set("p999", quantile(0.999));
  j.set("max", max);
  return j;
}

// ---------------------------------------------------------------- Registry --

namespace {
enum Kind { kCounter = 0, kGauge = 1, kHistogram = 2 };
const char* kind_name(int k) {
  return k == kCounter ? "counter" : k == kGauge ? "gauge" : "histogram";
}
}  // namespace

struct Registry::Entry {
  std::string key;
  std::string name;
  Labels labels;
  int kind;
  std::unique_ptr<Counter> counter;
  std::unique_ptr<Gauge> gauge;
  std::unique_ptr<Histogram> histogram;
};

std::vector<Registry::Entry>& Registry::entries() const {
  if (entries_ == nullptr) {
    const_cast<Registry*>(this)->entries_ = new std::vector<Entry>();
  }
  return *entries_;
}

Registry::Entry& Registry::find_or_create(const std::string& name,
                                          const Labels& labels, int kind) {
  const std::string key = metric_key(name, labels);
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Entry>& es = entries();
  for (Entry& e : es) {
    if (e.key == key) {
      if (e.kind != kind) {
        throw std::invalid_argument(
            "obs::Registry: \"" + key + "\" already registered as a " +
            kind_name(e.kind) + ", requested as a " + kind_name(kind));
      }
      return e;
    }
  }
  Entry e;
  e.key = key;
  e.name = name;
  e.labels = labels;
  e.kind = kind;
  switch (kind) {
    case kCounter: e.counter = std::make_unique<Counter>(); break;
    case kGauge: e.gauge = std::make_unique<Gauge>(); break;
    default: e.histogram = std::make_unique<Histogram>(); break;
  }
  es.push_back(std::move(e));
  return es.back();
}

Counter& Registry::counter(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, kCounter).counter;
}

Gauge& Registry::gauge(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, kGauge).gauge;
}

Histogram& Registry::histogram(const std::string& name, const Labels& labels) {
  return *find_or_create(name, labels, kHistogram).histogram;
}

Json Registry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> sorted;
  for (const Entry& e : entries()) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  Json counters = Json::object(), gauges = Json::object(),
       histograms = Json::object();
  for (const Entry* e : sorted) {
    switch (e->kind) {
      case kCounter: counters.set(e->key, e->counter->value()); break;
      case kGauge: gauges.set(e->key, e->gauge->value()); break;
      default:
        histograms.set(e->key, e->histogram->snapshot().to_json());
        break;
    }
  }
  Json j = Json::object();
  j.set("counters", std::move(counters));
  j.set("gauges", std::move(gauges));
  j.set("histograms", std::move(histograms));
  return j;
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*.
std::string prom_name(const std::string& name) {
  std::string out = name;
  for (char& c : out) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    if (!ok) c = '_';
  }
  return out;
}

// Exposition-format label values escape backslash, double-quote and
// newline; anything else passes through verbatim.
std::string prom_escape(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

std::string prom_labels(const Labels& labels, const char* extra_key = nullptr,
                        const std::string& extra_val = "") {
  if (labels.empty() && extra_key == nullptr) return "";
  Labels sorted = labels;
  std::sort(sorted.begin(), sorted.end());
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : sorted) {
    if (!first) out += ",";
    first = false;
    out += prom_name(k) + "=\"" + prom_escape(v) + "\"";
  }
  if (extra_key) {
    if (!first) out += ",";
    out += std::string(extra_key) + "=\"" + prom_escape(extra_val) + "\"";
  }
  out += "}";
  return out;
}

void append_sample(std::string& out, const std::string& name,
                   const std::string& labels, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += name + labels + " " + buf + "\n";
}

}  // namespace

std::string Registry::to_prometheus() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<const Entry*> sorted;
  for (const Entry& e : entries()) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const Entry* a, const Entry* b) { return a->key < b->key; });
  std::string out;
  for (const Entry* e : sorted) {
    const std::string name = prom_name(e->name);
    const std::string labels = prom_labels(e->labels);
    switch (e->kind) {
      case kCounter:
        append_sample(out, name, labels,
                      static_cast<double>(e->counter->value()));
        break;
      case kGauge:
        append_sample(out, name, labels, e->gauge->value());
        break;
      default: {
        const Histogram::Snapshot s = e->histogram->snapshot();
        append_sample(out, name + "_count", labels,
                      static_cast<double>(s.count));
        append_sample(out, name + "_sum", labels, s.sum);
        const std::pair<double, const char*> quantiles[] = {
            {0.5, "0.5"}, {0.9, "0.9"}, {0.99, "0.99"}, {0.999, "0.999"}};
        for (const auto& [q, qname] : quantiles) {
          append_sample(out, name, prom_labels(e->labels, "quantile", qname),
                        s.quantile(q));
        }
        // Cumulative Prometheus buckets alongside the quantile summaries.
        // Recorded values round to integers, so the exclusive bucket upper
        // bound maps to an inclusive le of upper-1; only non-empty buckets
        // are emitted (1920 mostly-zero lines per histogram would dwarf the
        // exposition). The mandatory +Inf bucket takes max(cum, count):
        // under a relaxed snapshot the count can run ahead of the bucket
        // copies, and _bucket{+Inf} must stay >= every other bucket AND
        // match _count for scrape-side consistency.
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < s.buckets.size(); ++i) {
          if (s.buckets[i] == 0) continue;
          cum += s.buckets[i];
          const std::uint64_t upper = Histogram::bucket_upper(i);
          if (upper == ~0ull) continue;  // folds into +Inf below
          char le[24];
          std::snprintf(le, sizeof(le), "%llu",
                        static_cast<unsigned long long>(upper - 1));
          append_sample(out, name + "_bucket",
                        prom_labels(e->labels, "le", le),
                        static_cast<double>(cum));
        }
        append_sample(out, name + "_bucket",
                      prom_labels(e->labels, "le", "+Inf"),
                      static_cast<double>(std::max(cum, s.count)));
        break;
      }
    }
  }
  return out;
}

void Registry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (Entry& e : entries()) {
    switch (e.kind) {
      case kCounter: e.counter->reset(); break;
      case kGauge: e.gauge->reset(); break;
      default: e.histogram->reset(); break;
    }
  }
}

Registry& registry() {
  static Registry* r = new Registry();  // never destroyed: instruments may
                                        // be touched by late-exiting threads
  return *r;
}

// ------------------------------------------------------------ ScopedTimer --

ScopedTimerUs::ScopedTimerUs(Histogram& h) : h_(h), start_ns_(monotonic_ns()) {}

ScopedTimerUs::~ScopedTimerUs() {
  h_.record(static_cast<double>(monotonic_ns() - start_ns_) * 1e-3);
}

}  // namespace ber::obs
