#include "obs/trace.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "obs/metrics.h"

namespace ber::obs {

namespace detail {
std::atomic<bool> g_tracing{false};
}

namespace {

constexpr std::size_t kMaxEventsPerThread = 1u << 18;

struct TraceEvent {
  const char* cat;
  const char* name;        // static-string events (spans / instants)
  std::string name_owned;  // metadata events (thread names)
  char ph;                 // 'X' complete, 'i' instant, 'M' metadata
  std::uint64_t ts_us = 0;
  std::uint64_t dur_us = 0;
  std::string args_json;   // pre-serialized {"k":v,...} or ""
};

struct ThreadBuf {
  std::mutex mu;
  std::vector<TraceEvent> events;
  std::uint32_t tid = 0;
};

struct Global {
  std::mutex mu;
  std::vector<std::shared_ptr<ThreadBuf>> bufs;  // live + retired threads
  std::uint32_t next_tid = 1;
  std::atomic<std::uint64_t> t0_ns{0};
  std::atomic<std::uint64_t> dropped{0};
};

Global& global() {
  static Global* g = new Global();  // never destroyed: worker threads may
                                    // outlive main's static teardown
  return *g;
}

// The calling thread's buffer; registered globally on first use and kept
// alive by the global list after thread exit (events must survive joins).
ThreadBuf& tls_buf() {
  thread_local std::shared_ptr<ThreadBuf> buf = [] {
    auto b = std::make_shared<ThreadBuf>();
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    b->tid = g.next_tid++;
    g.bufs.push_back(b);
    return b;
  }();
  return *buf;
}

std::uint64_t trace_now_us() {
  const std::uint64_t t0 = global().t0_ns.load(std::memory_order_relaxed);
  const std::uint64_t now = monotonic_ns();
  return (now - std::min(t0, now)) / 1000;
}

// Registry mirror of the drop count — resolved once (the registry lookup
// is mutex-guarded) and bumped lock-free on the overflow path.
Counter& dropped_counter() {
  static Counter& c = registry().counter("trace.events_dropped");
  return c;
}

void append_event(TraceEvent ev) {
  ThreadBuf& buf = tls_buf();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.events.size() >= kMaxEventsPerThread) {
    global().dropped.fetch_add(1, std::memory_order_relaxed);
    dropped_counter().add(1);
    return;
  }
  buf.events.push_back(std::move(ev));
}

void append_json_escaped(std::string& out, const char* s) {
  for (; *s; ++s) {
    const char c = *s;
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
}

std::string serialize_args(std::initializer_list<TraceArg> args) {
  if (args.size() == 0) return "";
  std::string out = "{";
  bool first = true;
  for (const TraceArg& a : args) {
    if (!first) out += ",";
    first = false;
    out += "\"";
    append_json_escaped(out, a.key);
    out += "\":";
    if (a.str != nullptr) {
      out += "\"";
      append_json_escaped(out, a.str);
      out += "\"";
    } else {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", a.num);
      out += buf;
    }
  }
  out += "}";
  return out;
}

}  // namespace

void start_tracing() {
  (void)dropped_counter();  // key exists (at 0) in every traced snapshot
  Global& g = global();
  {
    std::lock_guard<std::mutex> lock(g.mu);
    for (const auto& buf : g.bufs) {
      std::lock_guard<std::mutex> bl(buf->mu);
      buf->events.clear();
    }
    g.dropped.store(0, std::memory_order_relaxed);
    g.t0_ns.store(monotonic_ns(), std::memory_order_relaxed);
  }
  detail::g_tracing.store(true, std::memory_order_relaxed);
}

void stop_tracing() {
  detail::g_tracing.store(false, std::memory_order_relaxed);
}

std::uint64_t trace_events_dropped() {
  return global().dropped.load(std::memory_order_relaxed);
}

std::size_t trace_events_capacity() { return kMaxEventsPerThread; }

void set_thread_name(const std::string& name) {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.cat = "__metadata";
  ev.name = "thread_name";
  ev.name_owned = name;
  ev.ph = 'M';
  ev.ts_us = 0;
  append_event(std::move(ev));
}

void TraceScope::begin(const char* cat, const char* name,
                       std::initializer_list<TraceArg> args) {
  cat_ = cat;
  name_ = name;
  args_json_ = serialize_args(args);
  start_us_ = trace_now_us();
  active_ = true;
}

void TraceScope::end() {
  active_ = false;
  // A span still open when the trace stops is dropped: its duration would
  // straddle the stop and the exporter is simpler without partial spans.
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.cat = cat_;
  ev.name = name_;
  ev.ph = 'X';
  ev.ts_us = start_us_;
  ev.dur_us = trace_now_us() - start_us_;
  ev.args_json = std::move(args_json_);
  append_event(std::move(ev));
}

void trace_instant(const char* cat, const char* name,
                   std::initializer_list<TraceArg> args) {
  if (!tracing_enabled()) return;
  TraceEvent ev;
  ev.cat = cat;
  ev.name = name;
  ev.ph = 'i';
  ev.ts_us = trace_now_us();
  ev.args_json = serialize_args(args);
  append_event(std::move(ev));
}

Json trace_json() {
  // Collect a copy of every thread's events (taking each buffer's own lock
  // so in-flight appends on still-running threads stay safe).
  std::vector<std::pair<TraceEvent, std::uint32_t>> all;
  {
    Global& g = global();
    std::lock_guard<std::mutex> lock(g.mu);
    for (const auto& buf : g.bufs) {
      std::lock_guard<std::mutex> bl(buf->mu);
      for (const TraceEvent& ev : buf->events) {
        all.emplace_back(ev, buf->tid);
      }
    }
  }
  std::stable_sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return a.first.ts_us < b.first.ts_us;
  });

  Json events = Json::array();
  for (const auto& [ev, tid] : all) {
    Json e = Json::object();
    e.set("ph", std::string(1, ev.ph));
    e.set("pid", 1);
    e.set("tid", static_cast<long>(tid));
    if (ev.ph == 'M') {
      e.set("name", std::string(ev.name));
      e.set("ts", static_cast<std::uint64_t>(ev.ts_us));
      Json args = Json::object();
      args.set("name", ev.name_owned);
      e.set("args", std::move(args));
    } else {
      e.set("name", std::string(ev.name));
      e.set("cat", std::string(ev.cat));
      e.set("ts", static_cast<std::uint64_t>(ev.ts_us));
      if (ev.ph == 'X') e.set("dur", static_cast<std::uint64_t>(ev.dur_us));
      if (ev.ph == 'i') e.set("s", "t");  // instant scope: thread
      if (!ev.args_json.empty()) e.set("args", Json::parse(ev.args_json));
    }
    events.push_back(std::move(e));
  }
  Json j = Json::object();
  j.set("traceEvents", std::move(events));
  j.set("displayTimeUnit", "ms");
  return j;
}

void write_trace(const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("obs::write_trace: cannot write " + path);
  }
  out << trace_json().dump(1) << "\n";
}

}  // namespace ber::obs
