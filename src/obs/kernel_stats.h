// Kernel profiling hooks: per-backend invocation counters, FLOP and byte
// tallies, pack-time attribution and arena high-water marks, surfaced
// through the metrics registry so bench_kernels-style GFLOP/s numbers are
// observable in ANY run (serve traffic, sweeps, training), not only in the
// microbench.
//
// One KernelStats bundle per backend name, resolved once and cached on the
// Backend instance (kernels/backend.h): the per-call cost in the GEMM hot
// path is a couple of relaxed fetch_adds — never a registry lookup, never a
// lock. Counters (registry keys, all labeled {backend="<name>"}):
//   kernels.gemm_calls / kernels.gemm_flops      float GEMM (2*m*n*k)
//   kernels.conv_calls / kernels.conv_images     conv forward lowerings
//   kernels.im2col_bytes                         column-matrix bytes built
//   kernels.qgemm_calls / kernels.qgemm_flops    quantized GEMM on codes
//   kernels.qconv_calls / kernels.qconv_images   quantized conv forward
//   kernels.pack_ns                              A/B panel packing time
// plus the unlabeled gauge kernels.arena_hwm_bytes — the largest per-thread
// scratch arena capacity seen anywhere in the process.
#pragma once

#include <cstddef>
#include <string>

#include "obs/metrics.h"

namespace ber::obs {

struct KernelStats {
  Counter* gemm_calls;
  Counter* gemm_flops;
  Counter* conv_calls;
  Counter* conv_images;
  Counter* im2col_bytes;
  Counter* qgemm_calls;
  Counter* qgemm_flops;
  Counter* qconv_calls;
  Counter* qconv_images;
  Counter* pack_ns;
};

// The stats bundle for `backend` (creating its instruments on first use).
// The returned reference lives for the process.
KernelStats& kernel_stats(const std::string& backend);

// Reports a thread arena's capacity after growth; keeps the global
// kernels.arena_hwm_bytes gauge at the max seen.
void note_arena_capacity(std::size_t bytes);

}  // namespace ber::obs
