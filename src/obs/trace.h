// Structured tracing: scoped span events over the serve pipeline, the
// Runner lifecycles and deployment/health transitions, exported as
// chrome://tracing (trace_event) JSON loadable in Perfetto.
//
// Design constraints, in order:
//   1. The disabled path must be free. BER_TRACE_SCOPE compiles to a stack
//      object whose constructor is one relaxed atomic load + branch when
//      tracing is off; defining BER_OBS_NO_TRACING compiles every macro to
//      nothing (no object, no load).
//   2. Recording must not serialize worker threads: events append to
//      per-thread buffers (own mutex each, uncontended in steady state);
//      the global lock is only taken when a thread first appears and when
//      the trace is collected.
//
// Spans are "complete" events (ph "X": name, category, thread, start,
// duration, optional args); instants are ph "i". Buffers cap at
// kMaxEventsPerThread events; overflow increments a drop counter instead of
// growing without bound.
//
// Usage:
//   obs::start_tracing();
//   { BER_TRACE_SCOPE("serve", "forward"); ... }
//   BER_TRACE_SCOPE_ARGS("serve", "batch", {"images", n}, {"replica", i});
//   BER_TRACE_INSTANT("health", "trip");
//   obs::write_trace("trace.json");   // or trace_json()
#pragma once

#include <atomic>
#include <cstdint>
#include <initializer_list>
#include <string>

#include "core/json.h"

namespace ber::obs {

namespace detail {
extern std::atomic<bool> g_tracing;
}

// True while a trace is being collected. Inline relaxed load: this is the
// whole cost of a disabled BER_TRACE_SCOPE.
inline bool tracing_enabled() {
  return detail::g_tracing.load(std::memory_order_relaxed);
}

// Starts a fresh trace (clears any previous events and re-bases the clock).
void start_tracing();
// Stops recording; collected events stay available to trace_json().
void stop_tracing();

// {"traceEvents": [...], "displayTimeUnit": "ms"} — the chrome://tracing /
// Perfetto JSON object model. Events are sorted by timestamp.
Json trace_json();
// Writes trace_json() to `path` (pretty-printed). Throws on I/O failure.
void write_trace(const std::string& path);

// Spans recorded but discarded because a thread buffer was full. Resets
// with start_tracing(); the cumulative process-wide count is additionally
// mirrored into the registry counter "trace.events_dropped", so a long
// traffic run with tracing on surfaces its truncation in every metrics
// snapshot instead of growing memory without bound.
std::uint64_t trace_events_dropped();

// The per-thread event-buffer bound (events beyond it are dropped).
std::size_t trace_events_capacity();

// Names the calling thread in the trace (chrome "thread_name" metadata).
// Cheap no-op when tracing is off.
void set_thread_name(const std::string& name);

// One span argument; value is numeric or a (static or outliving) C string.
struct TraceArg {
  const char* key;
  double num = 0.0;
  const char* str = nullptr;
  TraceArg(const char* k, double v) : key(k), num(v) {}
  TraceArg(const char* k, long v) : key(k), num(static_cast<double>(v)) {}
  TraceArg(const char* k, int v) : key(k), num(v) {}
  TraceArg(const char* k, std::size_t v)
      : key(k), num(static_cast<double>(v)) {}
  TraceArg(const char* k, const char* v) : key(k), str(v) {}
};

// RAII span. `cat` and `name` must be string literals (or otherwise outlive
// the trace); args are serialized eagerly at construction.
class TraceScope {
 public:
  TraceScope(const char* cat, const char* name) {
    if (tracing_enabled()) begin(cat, name, {});
  }
  TraceScope(const char* cat, const char* name,
             std::initializer_list<TraceArg> args) {
    if (tracing_enabled()) begin(cat, name, args);
  }
  ~TraceScope() {
    if (active_) end();
  }
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void begin(const char* cat, const char* name,
             std::initializer_list<TraceArg> args);
  void end();

  const char* cat_ = nullptr;
  const char* name_ = nullptr;
  std::uint64_t start_us_ = 0;
  std::string args_json_;
  bool active_ = false;
};

// Zero-duration marker event.
void trace_instant(const char* cat, const char* name,
                   std::initializer_list<TraceArg> args = {});

}  // namespace ber::obs

#if defined(BER_OBS_NO_TRACING)
#define BER_TRACE_SCOPE(cat, name) ((void)0)
#define BER_TRACE_SCOPE_ARGS(cat, name, ...) ((void)0)
#define BER_TRACE_INSTANT(cat, name, ...) ((void)0)
#else
#define BER_TRACE_CONCAT2(a, b) a##b
#define BER_TRACE_CONCAT(a, b) BER_TRACE_CONCAT2(a, b)
#define BER_TRACE_SCOPE(cat, name) \
  ::ber::obs::TraceScope BER_TRACE_CONCAT(ber_trace_scope_, __LINE__)(cat, name)
#define BER_TRACE_SCOPE_ARGS(cat, name, ...)                             \
  ::ber::obs::TraceScope BER_TRACE_CONCAT(ber_trace_scope_, __LINE__)(   \
      cat, name, {__VA_ARGS__})
#define BER_TRACE_INSTANT(cat, name, ...)                              \
  do {                                                                 \
    if (::ber::obs::tracing_enabled()) {                               \
      ::ber::obs::trace_instant(cat, name, {__VA_ARGS__});             \
    }                                                                  \
  } while (0)
#endif
