// SLO scoreboard: turns the cumulative instruments of obs/metrics.h into a
// windowed time-series verdict — "did serving meet its latency SLO in each
// window of this run, and how much error budget is left?"
//
// The scoreboard owns no clock and no thread. A driver (serve/traffic_gen)
// calls close_window() at window boundaries; each call diffs the latency
// histogram against the previous snapshot (Histogram::Snapshot::operator-),
// so a window's p50/p99/p999 and attainment see exactly the requests
// completed inside it — the registry's counters stay cumulative and
// lock-free, the scoreboard does the windowing.
//
// Vocabulary (SRE-standard):
//   attainment   — fraction of a window's completed requests with latency
//                  <= target.latency_us (1.0 for an idle window);
//   slo_met      — attainment >= target.attainment for that window;
//   burn rate    — (1 - attainment) / (1 - target.attainment): 1.0 burns
//                  the error budget exactly as fast as the SLO allows,
//                  >1 is over-budget spending;
//   error budget — the run-level allowance of violating requests,
//                  (1 - target.attainment) * completed; budget_remaining
//                  is the unspent fraction (negative once overdrawn).
//
// Every close_window() also publishes the live values as registry gauges
// (slo.attainment, slo.burn_rate, slo.error_budget_remaining) and counters
// (slo.windows_total, slo.windows_violated), so the Prometheus exposition
// carries the scoreboard alongside the raw latency series. to_json() emits
// the timeline section embedded in the serve Report.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.h"
#include "obs/metrics.h"

namespace ber::obs {

// The latency SLO a serving run is held to.
struct SloTarget {
  double latency_us = 100000.0;  // per-request latency bound
  double attainment = 0.99;      // goal fraction within bound, in (0, 1)
};

// One closed window of the timeline.
struct SloWindow {
  double t_start_ms = 0.0;  // since scoreboard construction
  double t_end_ms = 0.0;
  std::string phase;         // driver-supplied label (arrival process)
  std::uint64_t offered = 0;    // arrivals the driver generated
  std::uint64_t completed = 0;  // requests fulfilled in the window
  std::uint64_t shed = 0;       // arrivals rejected by admission control
  long queue_depth = 0;         // live backlog (images) at window close
  double p50_us = 0.0, p99_us = 0.0, p999_us = 0.0;
  double attainment = 1.0;
  bool slo_met = true;
  double burn_rate = 0.0;
  double budget_remaining = 1.0;  // cumulative, after this window

  Json to_json() const;
};

class SloScoreboard {
 public:
  // `latency_us` is the histogram completed requests record into (the
  // ReplicaPool's pool-level latency distribution); it must outlive the
  // scoreboard. Construction takes the t0 snapshot: samples recorded
  // before it never enter the timeline.
  SloScoreboard(SloTarget target, const Histogram& latency_us);

  // Closes the window [previous close, now). `offered` / `shed` are the
  // driver's deltas for this window; `queue_depth` is sampled live.
  const SloWindow& close_window(const std::string& phase,
                                std::uint64_t offered, std::uint64_t shed,
                                long queue_depth);

  const std::vector<SloWindow>& windows() const { return windows_; }
  const SloTarget& target() const { return target_; }

  // The timeline section of the serve report:
  // {slo: {...}, windows: [...], summary: {...}} where summary aggregates
  // the whole run (overall attainment, full-run quantiles, budget left).
  Json to_json() const;

 private:
  SloTarget target_;
  const Histogram& latency_;
  Histogram::Snapshot last_;      // at the previous window boundary
  Histogram::Snapshot t0_;        // at construction (full-run baseline)
  std::uint64_t t0_ns_;
  std::uint64_t last_ns_;
  std::uint64_t cum_offered_ = 0, cum_completed_ = 0, cum_shed_ = 0;
  double cum_violations_ = 0.0;   // expected violating requests so far
  std::vector<SloWindow> windows_;
};

}  // namespace ber::obs
