// Fault forensics: the opt-in record of WHERE injected bit errors land and
// HOW they become misclassifications.
//
// The RobustnessEvaluator reports aggregate RErr; this module keeps the
// per-flip evidence behind those numbers:
//
//   FaultLedger — a process-wide, per-trial structured record of every
//   injected flip (tensor, word index, bit position, MSB/sign class, code
//   before/after), filled from instrumentation hooks inside the injection
//   hot paths (ChipFaultList::apply, the scalar injector, ProfiledChip and
//   AdversarialBitErrorModel). The disabled path follows the BER_TRACE_SCOPE
//   contract: one relaxed atomic load per apply() call, no allocation, no
//   branch into recording code. Recording happens only inside a
//   ForensicsTrialScope, so stray apply() calls (planner warm-ups, tests of
//   other subsystems) never pollute the ledger even while it is enabled.
//
//   PropagationProbe — clean-vs-faulted forwards on a fixed probe batch with
//   per-layer activation capture (Sequential::forward_observed), recording
//   per-layer relative divergence and the first-divergence depth. Per-trial
//   results are keyed by a deterministic trial token and aggregated
//   serially, so the output is identical for every thread count.
//
//   ForensicsCollector — rolls the ledger plus per-trial errors into the
//   `forensics` section of api::Report: per-(tensor, bit) flip counts,
//   bit-class mass (low / high / MSB), error co-occurrence per class, and
//   probe summaries, per ledger profile. Attack flip sets land in the same
//   ledger as random ones (profile "eval" vs "control"), so an adversarial
//   campaign is directly comparable to its rate-matched random baseline.
//
// Registry instruments (created ONLY when forensics is enabled — a disabled
// run leaves no forensics.* keys behind):
//   forensics.flips                      counter, ledger appends
//   forensics.words_changed              counter, changed words per apply
//   forensics.probe_first_divergence     histogram, executed-layer depth
//   forensics.probe_divergence_ppm       histogram, per-layer relative
//                                        divergence in parts per million
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/json.h"

namespace ber {
class Dataset;
class Sequential;
struct NetSnapshot;
class Tensor;
}  // namespace ber

namespace ber::obs {

namespace detail {
extern std::atomic<bool> g_forensics;

// Thread-local trial context installed by ForensicsTrialScope. profile ==
// nullptr means "no scope active" — instrumentation sites then skip
// recording even while the ledger is enabled.
struct TrialContext {
  std::uint64_t token = 0;
  const char* profile = nullptr;
};
TrialContext& trial_context();
}  // namespace detail

// True while the ledger accepts records. Inline relaxed load: the whole
// disabled-path cost of an instrumented injection site.
inline bool forensics_enabled() {
  return detail::g_forensics.load(std::memory_order_relaxed);
}

// The injection-site gate: enabled AND a trial scope is active on this
// thread. Sites that pass it collect FlipRecords locally and hand them to
// fault_ledger().record_apply() in one batch.
inline bool forensics_recording() {
  return forensics_enabled() && detail::trial_context().profile != nullptr;
}

// Bit-position class under the two's-complement code layout (quantizer.h):
// bit width-1 is the sign/MSB, the top half below it is "high", the rest
// "low". A flip's weight-space magnitude is 2^bit * Delta, so these classes
// order the expected damage.
enum class BitClass : std::uint8_t { kLow = 0, kHigh = 1, kMsb = 2 };
BitClass classify_bit(int bit, int width);
const char* bit_class_name(BitClass c);

// One injected fault application. code_before/code_after bracket THIS
// fault's application (a SET fault on an already-set bit records equal
// codes: injected, but a no-op on the stored word).
struct FlipRecord {
  std::uint64_t token = 0;  // trial token of the enclosing scope
  std::uint32_t tensor = 0;
  std::uint32_t index = 0;  // element within its tensor
  std::uint8_t bit = 0;
  std::uint8_t width = 0;      // code width of the tensor
  std::uint8_t bit_class = 0;  // BitClass
  std::uint16_t code_before = 0;
  std::uint16_t code_after = 0;
};

// RAII trial context: installed by the evaluator around one trial's
// injection (and probes). Free when forensics is disabled (one relaxed
// load). Nests by save/restore, so a model composing another model's
// apply() keeps the outer scope.
class ForensicsTrialScope {
 public:
  ForensicsTrialScope(std::uint64_t token, const char* profile) {
    if (!forensics_enabled()) return;
    prev_ = detail::trial_context();
    detail::trial_context() = {token, profile};
    active_ = true;
  }
  ~ForensicsTrialScope() {
    if (active_) detail::trial_context() = prev_;
  }
  ForensicsTrialScope(const ForensicsTrialScope&) = delete;
  ForensicsTrialScope& operator=(const ForensicsTrialScope&) = delete;

 private:
  detail::TrialContext prev_;
  bool active_ = false;
};

// The process-wide flip ledger. Appends are batched (one mutex acquisition
// per apply() call, not per flip) and bucketed by the scope's profile
// string, so concurrent worker threads interleave cleanly.
class FaultLedger {
 public:
  // Toggles the global forensics gate. Enabling does NOT clear: a sweep
  // accumulates across points. clear() resets all profiles.
  void set_enabled(bool on);
  bool enabled() const { return forensics_enabled(); }
  void clear();

  // Instrumentation-site entry point: the flips of one apply() call plus
  // its changed-word count, attributed to the calling thread's trial scope.
  // No-op without an active scope.
  void record_apply(std::vector<FlipRecord>&& records,
                    std::size_t words_changed);

  struct ProfileTotals {
    std::size_t flips = 0;
    std::size_t words_changed = 0;
    std::size_t applies = 0;
  };

  std::vector<std::string> profiles() const;
  ProfileTotals totals(const std::string& profile) const;
  // Sum over every profile — the number to reconcile against the
  // faults.words_patched counter delta of the instrumented run.
  ProfileTotals totals() const;
  // Copy of one profile's records, sorted by (token, tensor, index, bit) so
  // the view is deterministic regardless of worker interleaving.
  std::vector<FlipRecord> records(const std::string& profile) const;

 private:
  struct ProfileData {
    std::vector<FlipRecord> records;
    ProfileTotals totals;
  };
  mutable std::mutex mu_;
  std::map<std::string, ProfileData> profiles_;
};

FaultLedger& fault_ledger();

// ------------------------------------------------------------------ probes --

struct ForensicsOptions {
  int probe_images = 0;  // 0 disables the propagation probes
  // A layer counts as diverged once its relative L2 activation divergence
  // exceeds this.
  double divergence_threshold = 1e-4;
};

// Per-trial probe result: executed-layer divergences of one faulted forward
// against the clean baseline.
struct ProbeResult {
  std::vector<double> divergence;  // relative L2, one per executed layer
  int first_divergence = -1;       // executed-layer depth; -1 = never
};

// Aggregates one model's forensics over an evaluator campaign. Thread-safe:
// probe_trial / record_trial_error run on evaluator workers; to_json
// aggregates under the lock with token-sorted iteration, so the report is
// deterministic per (config, trial set) regardless of thread count.
class ForensicsCollector {
 public:
  explicit ForensicsCollector(ForensicsOptions opts) : opts_(opts) {}

  const ForensicsOptions& options() const { return opts_; }

  // Captures the clean per-layer activations of `model` with `base`
  // deployed (on_codes as the evaluator will deploy faulted trials) on the
  // first probe_images examples of `data`. Must run before probe_trial.
  // No-op when probe_images <= 0.
  void prepare_probes(const Sequential& model, const NetSnapshot& base,
                      bool on_codes, const Dataset& data);
  bool probes_ready() const { return !clean_acts_.empty(); }

  // Clean-vs-faulted propagation probe for one trial: `clone` must already
  // hold the trial's faulted deployment. Records into the forensics.*
  // histograms and stores the per-layer divergences under `token`.
  void probe_trial(Sequential& clone, std::uint64_t token,
                   const std::string& profile);

  // Per-trial evaluation error, for flip/misclassification co-occurrence.
  void record_trial_error(std::uint64_t token, const std::string& profile,
                          double error);

  // The report's `forensics` section: ledger totals + per-profile
  // attribution (by tensor, by bit, by class, error co-occurrence) + probe
  // summaries + the words-patched counter delta handed in by the caller.
  Json to_json(std::uint64_t counter_words_patched) const;

 private:
  struct ProfileAgg {
    std::map<std::uint64_t, double> errors;       // token -> error
    std::map<std::uint64_t, ProbeResult> probes;  // token -> probe
  };

  ForensicsOptions opts_;
  // Probe batch + clean baseline activations: (executed layer index, data).
  std::vector<std::pair<std::size_t, std::vector<float>>> clean_acts_;
  // Heap copies (never arena tensors) of the probe inputs.
  std::vector<float> probe_data_;
  std::vector<long> probe_shape_;
  mutable std::mutex mu_;
  std::map<std::string, ProfileAgg> agg_;
};

}  // namespace ber::obs
