// Process-wide metrics registry: the one place every subsystem reports its
// operating signals — serve latency/traffic, deploy churn, fault-injection
// volume, kernel FLOP tallies — addressable by name + label set.
//
// Three instrument kinds, all safe to hammer from worker threads:
//   Counter   — monotone relaxed-atomic add; the hot-path cost is one
//               fetch_add, so instruments stay enabled even on bit-exact
//               reference paths (counters never touch the math).
//   Gauge     — last-written value (or monotone max) as an atomic double.
//   Histogram — log-linear buckets (32 linear sub-buckets per power of two,
//               <= 3.2% relative bucket width), giving proper p50/p99/p999
//               without storing samples and without a sort per snapshot —
//               this replaces the serving pool's lossy latency ring buffer.
//
// registry() hands out stable references: call sites resolve an instrument
// once (mutex-guarded map lookup) and then update it lock-free forever.
// Snapshots serialize to core/json (embedded in api::Report, written by
// `ber_run --metrics-out`) and to Prometheus-style text exposition.
//
// Naming convention: dotted subsystem.metric names ("serve.requests",
// "kernels.gemm_flops"), snake_case, unit suffix where it matters (_us,
// _ms, _bytes). Labels are sorted into the canonical key
// `name{k="v",k2="v2"}` so the same (name, labels) always resolves to the
// same instrument regardless of the label order at the call site.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/json.h"

namespace ber::obs {

using Labels = std::vector<std::pair<std::string, std::string>>;

// Canonical instrument key: `name` alone, or `name{k="v",...}` with labels
// sorted by key. This is the key used in snapshot JSON (grep-able by CI).
std::string metric_key(const std::string& name, const Labels& labels);

class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  // CAS loops (not C++20 atomic-float fetch_add) so the instrument works on
  // every toolchain the library builds with.
  void add(double d);
  void set_max(double v);  // monotone high-water update
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

class Histogram {
 public:
  // Log-linear bucketing: values below kSub land in exact unit buckets;
  // above that, each power of two splits into kSub linear sub-buckets, so a
  // bucket's width is at most 1/kSub of its lower bound.
  static constexpr int kSubBits = 5;
  static constexpr long kSub = 1 << kSubBits;                 // 32
  static constexpr long kBuckets = (64 - kSubBits + 1) * kSub;  // 1920

  Histogram();
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  // Records a sample. Negative values clamp to 0; non-integral values round
  // to nearest (record in a unit fine enough that rounding is noise — us
  // for latencies).
  void record(double v);

  // A consistent-enough copy of the instrument (buckets are read relaxed;
  // concurrent recording may skew count vs sum by in-flight samples, which
  // is inherent to lock-free snapshots and irrelevant at reporting time).
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0.0;
    double max = 0.0;
    std::vector<std::uint64_t> buckets;  // dense, kBuckets entries

    // Quantile by bucket walk + intra-bucket linear interpolation; exact
    // for values < kSub, within one bucket width (<= ~3.2% relative) above.
    double quantile(double q) const;
    // Fraction of samples <= v (bucket resolution, linear interpolation in
    // the straddling bucket). 1.0 on an empty snapshot — "no traffic" must
    // read as "no violations" for SLO attainment, not as a breach.
    double fraction_le(double v) const;
    double mean() const { return count == 0 ? 0.0 : sum / count; }
    // Windowed stats: the samples recorded since `earlier` was taken.
    Snapshot operator-(const Snapshot& earlier) const;
    Json to_json() const;  // {count,sum,mean,p50,p90,p99,p999,max}
  };
  Snapshot snapshot() const;
  void reset();

  // Bucket geometry (exposed for the boundary tests).
  static std::size_t bucket_index(std::uint64_t v);
  static std::uint64_t bucket_lower(std::size_t idx);
  static std::uint64_t bucket_upper(std::size_t idx);  // exclusive

 private:
  std::vector<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> max_{0.0};
};

// The process-wide registry. Instruments live for the process once created;
// re-requesting the same (name, labels) returns the same instrument, and
// requesting an existing key as a different kind throws.
class Registry {
 public:
  Counter& counter(const std::string& name, const Labels& labels = {});
  Gauge& gauge(const std::string& name, const Labels& labels = {});
  Histogram& histogram(const std::string& name, const Labels& labels = {});

  // {"counters": {key: n}, "gauges": {key: x}, "histograms": {key: {...}}}
  // with keys sorted, so snapshots diff cleanly run over run.
  Json to_json() const;

  // Prometheus-style text exposition: counters/gauges as samples, histograms
  // as summaries (_count, _sum, {quantile="..."}). Dots become underscores.
  std::string to_prometheus() const;

  // Zeroes every value, keeping registrations (handles stay valid) — for
  // tests and benches that need a clean window.
  void reset();

  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

 private:
  struct Entry;
  // Sorted by key under mu_; pointers to instruments are stable (unique_ptr
  // payloads never move).
  std::vector<Entry>& entries() const;
  Entry& find_or_create(const std::string& name, const Labels& labels,
                        int kind);

  mutable std::mutex mu_;
  std::vector<Entry>* entries_ = nullptr;  // defined in metrics.cpp
};

Registry& registry();

// RAII timer recording elapsed microseconds (or milliseconds) into a
// histogram on destruction.
class ScopedTimerUs {
 public:
  explicit ScopedTimerUs(Histogram& h);
  ~ScopedTimerUs();
  ScopedTimerUs(const ScopedTimerUs&) = delete;
  ScopedTimerUs& operator=(const ScopedTimerUs&) = delete;

 private:
  Histogram& h_;
  std::uint64_t start_ns_;
};

// Monotonic nanoseconds (steady_clock) — the obs layer's shared clock.
std::uint64_t monotonic_ns();

}  // namespace ber::obs
