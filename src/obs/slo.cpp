#include "obs/slo.h"

#include <algorithm>

namespace ber::obs {

namespace {

// Scoreboard registry instruments, shared across scoreboards (a process
// serves one load run at a time; the gauges carry the latest window).
struct SloMetrics {
  Gauge& attainment;
  Gauge& burn_rate;
  Gauge& budget_remaining;
  Counter& windows_total;
  Counter& windows_violated;

  static SloMetrics& get() {
    static SloMetrics m{
        registry().gauge("slo.attainment"),
        registry().gauge("slo.burn_rate"),
        registry().gauge("slo.error_budget_remaining"),
        registry().counter("slo.windows_total"),
        registry().counter("slo.windows_violated"),
    };
    return m;
  }
};

}  // namespace

Json SloWindow::to_json() const {
  Json j = Json::object();
  j.set("t_start_ms", t_start_ms);
  j.set("t_end_ms", t_end_ms);
  j.set("phase", phase);
  j.set("offered", offered);
  j.set("completed", completed);
  j.set("shed", shed);
  j.set("queue_depth", queue_depth);
  j.set("p50_us", p50_us);
  j.set("p99_us", p99_us);
  j.set("p999_us", p999_us);
  j.set("attainment", attainment);
  j.set("slo_met", slo_met);
  j.set("burn_rate", burn_rate);
  j.set("budget_remaining", budget_remaining);
  return j;
}

SloScoreboard::SloScoreboard(SloTarget target, const Histogram& latency_us)
    : target_(target),
      latency_(latency_us),
      last_(latency_us.snapshot()),
      t0_(last_),
      t0_ns_(monotonic_ns()),
      last_ns_(t0_ns_) {
  (void)SloMetrics::get();  // keys exist (at zero) from the first snapshot
}

const SloWindow& SloScoreboard::close_window(const std::string& phase,
                                             std::uint64_t offered,
                                             std::uint64_t shed,
                                             long queue_depth) {
  const std::uint64_t now_ns = monotonic_ns();
  const Histogram::Snapshot cur = latency_.snapshot();
  const Histogram::Snapshot delta = cur - last_;

  SloWindow w;
  w.t_start_ms = static_cast<double>(last_ns_ - t0_ns_) * 1e-6;
  w.t_end_ms = static_cast<double>(now_ns - t0_ns_) * 1e-6;
  w.phase = phase;
  w.offered = offered;
  w.completed = delta.count;
  w.shed = shed;
  w.queue_depth = queue_depth;
  w.p50_us = delta.quantile(0.50);
  w.p99_us = delta.quantile(0.99);
  w.p999_us = delta.quantile(0.999);
  w.attainment = delta.fraction_le(target_.latency_us);
  w.slo_met = w.attainment >= target_.attainment && shed == 0;
  // Burn rate: how fast this window spends the error budget, 1.0 = exactly
  // the allowed violation rate. Shed arrivals count as violations — a
  // rejected request certainly did not meet its latency target.
  const double violations =
      (1.0 - w.attainment) * static_cast<double>(w.completed) +
      static_cast<double>(shed);
  const double served =
      static_cast<double>(w.completed) + static_cast<double>(shed);
  const double allowed_frac = 1.0 - target_.attainment;
  w.burn_rate = served > 0.0 ? (violations / served) / allowed_frac : 0.0;

  cum_offered_ += offered;
  cum_completed_ += delta.count;
  cum_shed_ += shed;
  cum_violations_ += violations;
  const double cum_served =
      static_cast<double>(cum_completed_) + static_cast<double>(cum_shed_);
  const double budget = allowed_frac * cum_served;
  w.budget_remaining =
      budget > 0.0 ? 1.0 - cum_violations_ / budget : 1.0;

  SloMetrics& m = SloMetrics::get();
  m.attainment.set(w.attainment);
  m.burn_rate.set(w.burn_rate);
  m.budget_remaining.set(w.budget_remaining);
  m.windows_total.add(1);
  if (!w.slo_met) m.windows_violated.add(1);

  last_ = cur;
  last_ns_ = now_ns;
  windows_.push_back(std::move(w));
  return windows_.back();
}

Json SloScoreboard::to_json() const {
  Json j = Json::object();
  Json slo = Json::object();
  slo.set("latency_us", target_.latency_us);
  slo.set("attainment", target_.attainment);
  j.set("slo", std::move(slo));

  Json ws = Json::array();
  std::uint64_t violated = 0;
  for (const SloWindow& w : windows_) {
    ws.push_back(w.to_json());
    if (!w.slo_met) ++violated;
  }
  j.set("windows", std::move(ws));

  // Full-run aggregate: every request completed since construction (NOT the
  // sum of window quantiles — quantiles do not add; this is the exact
  // distribution over the union of windows).
  const Histogram::Snapshot full = latency_.snapshot() - t0_;
  Json sum = Json::object();
  sum.set("offered", cum_offered_);
  sum.set("completed", cum_completed_);
  sum.set("shed", cum_shed_);
  const double attainment = full.fraction_le(target_.latency_us);
  sum.set("attainment", attainment);
  sum.set("slo_met", attainment >= target_.attainment && cum_shed_ == 0);
  sum.set("p50_us", full.quantile(0.50));
  sum.set("p99_us", full.quantile(0.99));
  sum.set("p999_us", full.quantile(0.999));
  sum.set("mean_us", full.mean());
  sum.set("windows", static_cast<std::uint64_t>(windows_.size()));
  sum.set("windows_violated", violated);
  sum.set("budget_remaining",
          windows_.empty() ? 1.0 : windows_.back().budget_remaining);
  j.set("summary", std::move(sum));
  return j;
}

}  // namespace ber::obs
