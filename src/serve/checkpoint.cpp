#include "serve/checkpoint.h"

#include <cstdint>
#include <stdexcept>

#include "core/serialize.h"

namespace ber {

namespace {
constexpr std::uint32_t kCheckpointMagic = 0x42455244u;  // "BERD"
constexpr std::uint32_t kCheckpointVersion = 1;
}  // namespace

void save_checkpoint(const std::string& path, Sequential& model,
                     const QuantScheme& scheme) {
  BinaryWriter w(path);
  w.write_pod(kCheckpointMagic);
  w.write_pod(kCheckpointVersion);
  w.write_pod<std::int32_t>(scheme.bits);
  w.write_pod<std::uint8_t>(scheme.scope == RangeScope::kGlobal ? 0 : 1);
  w.write_pod<std::uint8_t>(scheme.asymmetric ? 1 : 0);
  w.write_pod<std::uint8_t>(scheme.unsigned_codes ? 1 : 0);
  w.write_pod<std::uint8_t>(scheme.rounded ? 1 : 0);
  model.write_weights(w);
  if (!w.good()) throw std::runtime_error("save_checkpoint failed: " + path);
}

QuantScheme load_checkpoint(const std::string& path, Sequential& model) {
  BinaryReader r(path);
  if (r.read_pod<std::uint32_t>() != kCheckpointMagic) {
    throw std::runtime_error("load_checkpoint: bad magic in " + path);
  }
  if (r.read_pod<std::uint32_t>() != kCheckpointVersion) {
    throw std::runtime_error("load_checkpoint: version mismatch in " + path);
  }
  QuantScheme scheme;
  scheme.bits = static_cast<int>(r.read_pod<std::int32_t>());
  if (scheme.bits < 2 || scheme.bits > 16) {
    throw std::runtime_error("load_checkpoint: corrupt scheme bits in " +
                             path);
  }
  scheme.scope = r.read_pod<std::uint8_t>() == 0 ? RangeScope::kGlobal
                                                 : RangeScope::kPerTensor;
  scheme.asymmetric = r.read_pod<std::uint8_t>() != 0;
  scheme.unsigned_codes = r.read_pod<std::uint8_t>() != 0;
  scheme.rounded = r.read_pod<std::uint8_t>() != 0;
  model.read_weights(r);
  return scheme;
}

}  // namespace ber
