// Open-loop traffic generation for the serving runtime.
//
// The closed-loop microbench (submit, wait, submit) can never observe
// queueing delay: its arrival rate adapts to the service rate, so latency
// claims made under it are unfalsifiable. This generator is open-loop in
// the serving-literature sense (Clockwork, OSDI 2020): arrival times come
// from a precomputed schedule on the generator's own clock, requests are
// submitted at their scheduled instant whether or not earlier ones have
// completed, and an admission rejection sheds the request instead of
// retrying — so queue depth, tail latency and shed counts are properties
// of the system under test, not of the client.
//
// Three arrival processes, all deterministic functions of (phase, seed):
//   poisson  — homogeneous Poisson: i.i.d. exponential inter-arrivals at
//              rate_rps;
//   diurnal  — inhomogeneous Poisson with a sinusoidal rate
//              rate(t) = rate_rps * (1 + amplitude * sin(2*pi*t/period_s)),
//              sampled by Lewis-Shedler thinning — a compressed day/night
//              load curve;
//   bursty   — Markov-modulated on/off (exponential sojourns mean_on_s /
//              mean_off_s): silent in OFF, Poisson in ON at a rate scaled
//              so the long-run mean stays rate_rps — the flash-crowd /
//              antagonist-tenant shape.
//
// arrival_schedule() materializes the whole schedule up front as
// microsecond offsets (pure function of its arguments: bit-reproducible
// for a fixed seed regardless of thread count — pinned in
// tests/test_traffic.cpp). A run chains phases back to back through one
// ReplicaPool and closes SLO-scoreboard windows (obs/slo.h) on the wire
// clock, so the emitted timeline interleaves offered load, completions,
// shed and queue depth per window.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/json.h"
#include "obs/slo.h"

namespace ber {

struct Dataset;
class ReplicaPool;

// One segment of offered load.
struct ArrivalPhase {
  std::string process = "poisson";  // poisson | diurnal | bursty
  double rate_rps = 100.0;          // long-run mean arrival rate
  double duration_s = 1.0;
  // diurnal only:
  double period_s = 1.0;
  double amplitude = 0.5;  // in [0, 1)
  // bursty only (ON-state rate is derived so the mean stays rate_rps):
  double mean_on_s = 0.1;
  double mean_off_s = 0.1;
};

struct TrafficConfig {
  std::vector<ArrivalPhase> phases;  // run back to back
  std::uint64_t seed = 1;
  long window_ms = 250;  // SLO scoreboard window
  obs::SloTarget slo;

  bool enabled() const { return !phases.empty(); }
};

// The phase's arrival instants as microsecond offsets from phase start,
// strictly within [0, duration_s). Sorted. Deterministic in (phase, seed).
std::vector<std::uint64_t> arrival_schedule(const ArrivalPhase& phase,
                                            std::uint64_t seed);

struct TrafficResult {
  std::uint64_t offered = 0;   // scheduled arrivals submitted or shed
  std::uint64_t shed = 0;      // rejected by admission control (no retry)
  std::uint64_t answered = 0;  // predictions received
  double duration_s = 0.0;     // wall clock, first arrival to last answer
  Json timeline;               // SloScoreboard::to_json()
};

// Drives one TrafficConfig through a ReplicaPool: submits single images
// from `data` (cycling) at the scheduled instants, never waiting on
// completions, and closes scoreboard windows as their boundaries pass.
// run() returns once every accepted request has answered; the pool is left
// un-drained (canaries still need it).
class TrafficGenerator {
 public:
  // `pool` and `data` must outlive the generator.
  TrafficGenerator(ReplicaPool& pool, const Dataset& data, TrafficConfig cfg);

  TrafficResult run();

 private:
  ReplicaPool& pool_;
  const Dataset& data_;
  TrafficConfig cfg_;
};

}  // namespace ber
