#include "serve/batch_queue.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ber {

namespace {

// Process-wide queue metrics; references resolved once, then relaxed atomics.
struct QueueMetrics {
  obs::Counter& submitted = obs::registry().counter("serve.requests_submitted");
  obs::Counter& rejections = obs::registry().counter("serve.queue_rejections");
  obs::Gauge& depth_images = obs::registry().gauge("serve.queue_depth_images");
};

QueueMetrics& queue_metrics() {
  static QueueMetrics m;
  return m;
}

}  // namespace

BatchQueue::BatchQueue(BatchQueueConfig config) : config_(config) {
  if (config_.max_batch < 1 || config_.max_wait_us < 0) {
    throw std::invalid_argument(
        "BatchQueue: max_batch must be >= 1 and max_wait_us >= 0");
  }
  if (config_.max_queue_images < 0) {
    throw std::invalid_argument(
        "BatchQueue: max_queue_images must be >= 0 (0 = unbounded)");
  }
}

std::future<std::vector<Prediction>> BatchQueue::submit(Tensor input) {
  if (input.dim() != 3 && input.dim() != 4) {
    throw std::invalid_argument(
        "BatchQueue::submit: expected [C,H,W] or [N,C,H,W], got " +
        input.shape_str());
  }
  Request req;
  req.n_images = input.dim() == 4 ? input.shape(0) : 1;
  if (req.n_images < 1) {
    throw std::invalid_argument("BatchQueue::submit: empty batch");
  }
  req.input = std::move(input);
  req.enqueued = std::chrono::steady_clock::now();
  const long n_images = req.n_images;
  std::future<std::vector<Prediction>> fut = req.promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (closed_) throw std::runtime_error("BatchQueue::submit: queue closed");
    // Admission control: reject (leaving the queue untouched) rather than
    // letting an unserved backlog grow without bound. An oversized request
    // against an empty queue is still admitted — like max_batch, the bound
    // never makes a request impossible, only a backlog.
    if (config_.max_queue_images > 0 && queued_images_ > 0 &&
        queued_images_ + req.n_images > config_.max_queue_images) {
      queue_metrics().rejections.add(1);
      BER_TRACE_INSTANT("queue", "reject",
                        {"queued_images", queued_images_},
                        {"n_images", n_images});
      throw QueueFullError(
          "BatchQueue::submit: queue full (" + std::to_string(queued_images_) +
          " images queued, max_queue_images=" +
          std::to_string(config_.max_queue_images) + ")");
    }
    queue_.push_back(std::move(req));
    queued_images_ += queue_.back().n_images;
    QueueMetrics& qm = queue_metrics();
    qm.submitted.add(1);
    qm.depth_images.set(static_cast<double>(queued_images_));
  }
  BER_TRACE_INSTANT("queue", "submit", {"n_images", n_images});
  cv_.notify_one();
  return fut;
}

WorkBatch BatchQueue::pop() {
  WorkBatch wb;
  std::unique_lock<std::mutex> lk(mu_);
  cv_.wait(lk, [&] { return closed_ || !queue_.empty(); });
  if (queue_.empty()) return wb;  // closed and drained

  // Spans the coalescing window (including the straggler linger), not the
  // idle wait above.
  BER_TRACE_SCOPE("queue", "batch_form");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(config_.max_wait_us);
  for (;;) {
    while (!queue_.empty()) {
      const long n = queue_.front().n_images;
      // Never split a request; stop when the next one would overflow the
      // budget (unless the batch is still empty — an oversized pre-batched
      // request rides alone).
      if (!wb.requests.empty() && wb.total_images + n > config_.max_batch) {
        return wb;
      }
      wb.requests.push_back(std::move(queue_.front()));
      queue_.pop_front();
      queued_images_ -= n;
      queue_metrics().depth_images.set(static_cast<double>(queued_images_));
      wb.total_images += n;
      if (wb.total_images >= config_.max_batch) return wb;
    }
    // Budget left and queue momentarily empty: linger for stragglers.
    if (!cv_.wait_until(lk, deadline,
                        [&] { return closed_ || !queue_.empty(); })) {
      return wb;  // max_wait elapsed
    }
    if (queue_.empty()) return wb;  // woken by close()
  }
}

void BatchQueue::close() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool BatchQueue::closed() const {
  std::lock_guard<std::mutex> lk(mu_);
  return closed_;
}

long BatchQueue::depth() const {
  std::lock_guard<std::mutex> lk(mu_);
  return static_cast<long>(queue_.size());
}

long BatchQueue::depth_images() const {
  std::lock_guard<std::mutex> lk(mu_);
  return queued_images_;
}

}  // namespace ber
