// Energy/SLO operating-point planning: turns a robustness sweep plus the
// SRAM energy model into a deployment voltage.
//
// The accuracy SLO is an upper bound on served RErr at a confidence level:
// a grid point is feasible when mean + z * std over the swept chips stays
// below max_rerr (Gaussian upper-bound proxy on the per-chip RErr
// distribution, from RobustResult's streaming moments — z = 2 covers ~97.7%
// of chips). The planner walks the voltage grid from Vmin down and stops at
// the first infeasible point: error grows monotonically as voltage drops
// (fault persistence), so the feasible region is a contiguous prefix and
// the last feasible point is the lowest-energy voltage that meets the SLO.
//
// Sweeps reuse the evaluator's fast paths — run_rate_sweep for uniform
// random bit errors (rates from SramEnergyModel's Fig. 1 curve),
// run_voltage_sweep for profiled chips — so the whole grid costs one fault
// list build per chip. deploy_fleet() then hands each replica the chip of
// one sweep trial, its list built once at the grid bottom, deployed at the
// planned voltage.
#pragma once

#include <cstddef>
#include <vector>

#include "core/json.h"
#include "data/dataset.h"
#include "energy/energy_model.h"
#include "faults/evaluator.h"
#include "faults/profiled_chip_model.h"
#include "faults/random_bit_error_model.h"
#include "serve/replica.h"

namespace ber {

// Accuracy SLO: served RErr must stay below max_rerr with confidence.
struct SloConfig {
  double max_rerr = 0.1;  // fraction misclassified
  double z = 2.0;         // upper-bound multiplier on the chip std

  // The chip-distribution upper bound the SLO is checked against.
  double upper_bound(const RobustResult& r) const {
    return static_cast<double>(r.mean_rerr) + z * static_cast<double>(r.std_rerr);
  }
};

struct GridPoint {
  double voltage = 1.0;  // normalized V/Vmin
  double rate = 0.0;     // bit error rate at this voltage
  RobustResult rerr;     // swept robustness at this rate
  double energy = 1.0;   // per SRAM access, vs Vmin
  bool feasible = false;
};

struct OperatingPointPlan {
  std::vector<GridPoint> grid;  // descending voltage
  std::size_t chosen = 0;       // lowest feasible voltage (0 if none)
  bool feasible = false;        // grid[chosen] meets the SLO
  bool below_vmin = false;      // chosen voltage < 1.0
  double energy_saving = 0.0;   // 1 - grid[chosen].energy (0 if infeasible)

  const GridPoint& chosen_point() const { return grid[chosen]; }
  std::vector<double> voltages() const;
  std::vector<double> rates() const;
};

// The pure selection rule (unit-testable without an evaluator): fills in
// feasibility, walks the grid from index 0 down while feasible, and picks
// the last feasible point. `grid` must be in descending-voltage order.
OperatingPointPlan select_operating_point(std::vector<GridPoint> grid,
                                          const SloConfig& slo);

// The plan as a JSON object — one schema shared by every report that
// carries a planner section (api::Report, bench_serving): per-point
// {v, p, rerr_mean, rerr_std, ucb, energy, feasible} under "grid", plus
// feasible / chosen_v / chosen_p / below_vmin / energy_saving.
Json plan_to_json(const OperatingPointPlan& plan, const SloConfig& slo);

class OperatingPointPlanner {
 public:
  // Quantizes `model` once under `scheme`; the model must outlive the
  // planner (replica clones are cut from it at deploy time).
  OperatingPointPlanner(Sequential& model, const QuantScheme& scheme,
                        SramEnergyModel energy = {});

  // Plans against uniform random bit errors: voltages (strictly descending,
  // normalized; include 1.0 to always have a Vmin fallback) are mapped to
  // rates via the energy model and swept with n_chips trials each.
  OperatingPointPlan plan(const RandomBitErrorModel& fault, const Dataset& data,
                          const std::vector<double>& voltages,
                          const SloConfig& slo, int n_chips,
                          long batch = 200) const;

  // Profiled-chip variant: rates come from the chip's own voltage curve and
  // the sweep runs over n_offsets weight-to-memory mappings.
  OperatingPointPlan plan_profiled(const ProfiledChipModel& fault,
                                   const Dataset& data,
                                   const std::vector<double>& voltages,
                                   const SloConfig& slo, int n_offsets,
                                   long batch = 200) const;

  // Builds n_replicas replicas of the planned deployment: replica r serves
  // the chip of sweep trial r, with ONE fault list built at the grid bottom
  // (so step_up()/deploy() can move along the whole grid), deployed at
  // plan.chosen.
  std::vector<Replica> deploy_fleet(const RandomBitErrorModel& fault,
                                    const OperatingPointPlan& plan,
                                    int n_replicas) const;

  // Profiled-chip fleet: replica r serves the chip under mapping trial r
  // (one fault list per mapping, swept once at the grid bottom).
  std::vector<Replica> deploy_fleet_profiled(const ProfiledChipModel& fault,
                                             const OperatingPointPlan& plan,
                                             int n_replicas) const;

  // Mean energy per access of a fleet (vs Vmin), from each replica's
  // current operating point.
  double fleet_energy_per_access(const std::vector<Replica>& fleet) const;

  const RobustnessEvaluator& evaluator() const { return evaluator_; }
  const SramEnergyModel& energy() const { return energy_; }

  // Compute-on-codes for both the planning sweeps and the deployed fleet
  // (see RobustnessEvaluator::set_compute_on_codes / Replica). Defaults to
  // the BER_COMPUTE_ON_CODES environment toggle.
  void set_compute_on_codes(bool on) {
    on_codes_ = on;
    evaluator_.set_compute_on_codes(on);
  }
  bool compute_on_codes() const { return on_codes_; }

 private:
  std::vector<GridPoint> make_grid(const std::vector<double>& voltages,
                                   const std::vector<double>& rates,
                                   std::vector<RobustResult> sweep) const;

  Sequential& model_;
  QuantScheme scheme_;
  SramEnergyModel energy_;
  RobustnessEvaluator evaluator_;
  bool on_codes_ = compute_on_codes_default();
};

}  // namespace ber
