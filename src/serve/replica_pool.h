// The serving runtime: N fault-injected replicas on worker threads behind a
// dynamic-batching queue.
//
// Each worker owns one Replica exclusively (core/parallel-style coarse
// threads; no shared model state) and loops: pop a coalesced WorkBatch,
// concatenate the requests into one forward pass, softmax, fulfill each
// request's promise with per-image predictions. When a HealthMonitor is
// attached, the worker runs its replica's canary every period_batches
// batches — on its own thread, so a tripped redeploy never races serving
// traffic on that replica.
//
// Request → replica assignment is whichever worker pops first, so per-image
// results are only replica-independent if the fleet shares one chip. What
// IS deterministic regardless of assignment: each prediction equals a
// serial forward of the same image on the replica that served it, and the
// dynamic batch composition never changes per-image results (all layers are
// per-sample in eval mode).
#pragma once

#include <cstddef>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "serve/batch_queue.h"
#include "serve/health_monitor.h"
#include "serve/replica.h"

namespace ber {

namespace kernels {
class Backend;
}

struct ServingStats {
  long requests = 0;
  long images = 0;
  long batches = 0;
  double mean_batch_images = 0.0;
  // Latency percentiles (submit -> promise fulfilled, per request) from a
  // log-linear histogram over the pool's whole lifetime (obs/metrics.h):
  // O(1) recording, <= ~3.2% relative bucket error, no window truncation
  // and no per-snapshot sort. The field names predate the histogram port.
  double p50_latency_us = 0.0;
  double p99_latency_us = 0.0;
  double p999_latency_us = 0.0;
  std::vector<long> per_replica_batches;
  std::vector<long> per_replica_images;
  // Deployment telemetry aggregated over the fleet (Replica::DeployStats):
  // how many deploys ran, how many were served by the delta / no-op fast
  // paths, and the weight-memory bytes rewritten. With delta redeploys the
  // bytes stay proportional to the fault-set difference instead of W per
  // redeploy.
  long deploys = 0;
  long delta_deploys = 0;
  long noop_deploys = 0;
  unsigned long long deploy_bytes = 0;
};

class ReplicaPool {
 public:
  // Takes ownership of the replicas and starts one worker thread per
  // replica. `monitor` (optional) must outlive the pool.
  ReplicaPool(std::vector<Replica> replicas, BatchQueueConfig queue_config,
              HealthMonitor* monitor = nullptr);
  ~ReplicaPool();

  // Enqueues a [C,H,W] image or [N,C,H,W] pre-batched tensor; the future
  // resolves to one Prediction per image. All requests must share the
  // image shape of the first submission.
  std::future<std::vector<Prediction>> submit(Tensor input);

  // Closes the queue, lets queued work finish, joins workers. Idempotent;
  // also run by the destructor.
  void drain();

  // Consistent once drain() has returned; a live snapshot before that.
  ServingStats stats() const;

  std::size_t size() const { return replicas_.size(); }
  Replica& replica(std::size_t i) { return replicas_[i]; }

  // The pool-level latency distribution (submit -> fulfilled, us) — the
  // histogram the SLO scoreboard windows over.
  const obs::Histogram& latency_histogram() const { return latency_hist_; }
  // Live queued-but-unserved image backlog.
  long queue_depth_images() const { return queue_.depth_images(); }

 private:
  void worker(std::size_t i);

  std::vector<Replica> replicas_;
  BatchQueue queue_;
  HealthMonitor* monitor_;
  // Compute backend current at construction, re-installed on each worker.
  // Like `monitor_`, it must outlive the pool — always true for registry
  // backends; only a caller-owned backend installed via ScopedBackend at
  // construction time carries a lifetime obligation.
  const kernels::Backend* backend_;

  mutable std::mutex stats_mu_;
  struct WorkerStats {
    long batches = 0;
    long images = 0;
    long requests = 0;
    // Snapshot of the replica's deploy counters, refreshed by its worker
    // under stats_mu_ (replicas themselves are lock-free; stats() must not
    // read them while a monitor-triggered redeploy runs on the worker).
    Replica::DeployStats deploy;
  };
  std::vector<WorkerStats> worker_stats_;
  // Pool-local latency distribution backing the ServingStats percentile
  // fields (per-pool semantics); the process-wide registry additionally gets
  // per-replica serve.request_latency_us{replica=i} histograms.
  obs::Histogram latency_hist_;

  // Shape check on the submit hot path has its own mutex so producers never
  // contend with worker stat updates.
  std::mutex shape_mu_;
  std::vector<long> image_shape_;  // [C,H,W] of the first submission

  std::vector<std::thread> threads_;
  bool drained_ = false;
};

}  // namespace ber
