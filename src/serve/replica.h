// One serving replica of a quantized model on a simulated faulty chip.
//
// A replica owns a clone of the served model plus everything needed to
// (re)deploy it along a voltage grid: the shared quantized base snapshot,
// the chip's sparse ChipFaultList — built ONCE at the most aggressive grid
// voltage — and the aligned (voltage, rate) grid. deploy(i) materializes
// exactly the weights a chip at grid voltage i would hold: base codes plus
// the chip's faults at that voltage's rate.
//
// Deploys are incremental: the replica keeps its currently-deployed
// snapshot, so moving to another grid point rewrites only the code words
// whose faulted value differs between the two rates
// (ChipFaultList::apply_delta) — O(#fault-delta) work and bytes instead of
// O(W) — and re-deploying the current point is a no-op. deploy_full() is
// the from-scratch path (also the first deploy), kept public as the
// bit-identity oracle for the delta path. deploy_stats() reports how many
// deploys were delta/no-op and the bytes written, which bench_serving
// surfaces per fleet.
//
// Deployment is weight-space by default (dequantize into the float
// params); with compute-on-codes enabled (BER_COMPUTE_ON_CODES=1 or the
// constructor flag) weight layers adopt the code words themselves
// (nn/code_compute.h) and inference runs the backend's int8 qgemm over
// them — a delta redeploy then patches code, int8 mirror and float mirror
// together, O(1) per changed word.
//
// Thread model: a replica has no internal locking. The ReplicaPool gives
// each worker thread exclusive ownership of one replica; forward/deploy/
// canary must not be called concurrently on the same replica.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "biterror/injector.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "nn/sequential.h"
#include "quant/net_quantizer.h"

namespace ber {

// The (voltage, rate, chip) triple a replica currently serves at.
struct OperatingPoint {
  double voltage = 1.0;    // normalized V/Vmin
  double rate = 0.0;       // bit error rate the chip exhibits at `voltage`
  std::uint64_t chip = 0;  // chip identity (fault-model trial index)
};

class Replica {
 public:
  // Per-replica deployment telemetry (monotone counters; the pool folds
  // them into ServingStats).
  struct DeployStats {
    long deploys = 0;        // deploy() calls (incl. the constructor's)
    long delta_deploys = 0;  // served by the incremental path
    long noop_deploys = 0;   // same grid point, nothing to do
    // Weight-memory traffic: bytes of code words + mirrors rewritten. A
    // full deploy writes every word; a delta deploy only the changed ones.
    unsigned long long bytes_written = 0;
  };

  // `voltages` must be strictly descending (index 0 = safest, closest to
  // Vmin) with `rates` aligned and non-decreasing; `faults` must cover the
  // bottom of the grid (p_max() >= rates.back()). Deploys at `deploy_index`
  // immediately. `on_codes` selects compute-on-codes deployment; it
  // defaults to the BER_COMPUTE_ON_CODES environment toggle.
  Replica(int id, const Sequential& model, const NetQuantizer& quantizer,
          std::shared_ptr<const NetSnapshot> base, ChipFaultList faults,
          std::vector<double> voltages, std::vector<double> rates,
          std::size_t deploy_index, bool on_codes = compute_on_codes_default());

  // Moves the clone to grid point `i`: no-op if already there, otherwise a
  // delta redeploy patching only the code words whose faulted value
  // differs from the currently deployed ones.
  void deploy(std::size_t grid_index);

  // From-scratch deploy at grid point `i`: copy base, apply faults, write
  // every weight. Bit-identical outcome to any deploy() sequence ending at
  // `i` (tested in test_serve.cpp); public as that oracle and as the
  // escape hatch if the deployed snapshot is ever externally clobbered.
  void deploy_full(std::size_t grid_index);

  // One voltage step up (toward Vmin, i.e. safer). The new fault set is a
  // strict subset of the current one, so the delta patch is exactly the
  // faults that healed. Returns false at the top of the grid.
  bool step_up();

  int id() const { return id_; }
  std::size_t grid_index() const { return index_; }
  OperatingPoint point() const;
  const std::vector<double>& voltages() const { return voltages_; }
  const std::vector<double>& rates() const { return rates_; }
  // Code words the last deploy() left differing from the clean base (same
  // meaning under full and delta deploys).
  std::size_t faults_applied() const { return last_changed_; }
  const DeployStats& deploy_stats() const { return deploy_stats_; }
  bool compute_on_codes() const { return on_codes_; }

  // Eval-mode forward pass on an [N,C,H,W] batch; returns logits.
  Tensor forward(const Tensor& batch) {
    return model_.forward(batch, /*training=*/false);
  }

  // The replica's private clone (deployed weights) — for inspection/tests.
  Sequential& model() { return model_; }

  // Scores the replica on a held-out probe set (the canary).
  EvalResult canary(const Dataset& probe, long batch = 200) {
    return evaluate(model_, probe, batch);
  }

 private:
  // Bytes accounted per rewritten code word: the stored code (uint16), its
  // float mirror, and the int8 level mirror in code mode.
  unsigned long long bytes_per_word() const {
    return sizeof(std::uint16_t) + sizeof(float) + (on_codes_ ? 1 : 0);
  }

  int id_;
  Sequential model_;  // this replica's private clone
  NetQuantizer quantizer_;
  std::shared_ptr<const NetSnapshot> base_;
  ChipFaultList faults_;
  std::vector<double> voltages_;
  std::vector<double> rates_;
  std::size_t index_ = 0;
  std::size_t last_changed_ = 0;
  bool on_codes_ = false;
  std::vector<ParamSlot> slots_;  // into model_, snapshot-tensor order
  NetSnapshot snap_;              // the currently deployed snapshot
  bool snap_valid_ = false;
  DeployStats deploy_stats_;
};

}  // namespace ber
