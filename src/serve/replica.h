// One serving replica of a quantized model on a simulated faulty chip.
//
// A replica owns a clone of the served model plus everything needed to
// (re)deploy it along a voltage grid: the shared quantized base snapshot,
// the chip's sparse ChipFaultList — built ONCE at the most aggressive grid
// voltage — and the aligned (voltage, rate) grid. deploy(i) materializes
// exactly the weights a chip at grid voltage i would hold: base codes, the
// chip's faults at that voltage's rate, dequantized. Voltage persistence
// (faults at a higher voltage are a subset of those at a lower one) is what
// lets one list serve every grid point, so a HealthMonitor redeploy never
// re-profiles or re-hashes: the O(W*m) sweep happened once at fleet build;
// a redeploy is one snapshot copy + O(#faults) apply + dequantize.
//
// Thread model: a replica has no internal locking. The ReplicaPool gives
// each worker thread exclusive ownership of one replica; forward/deploy/
// canary must not be called concurrently on the same replica.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "biterror/injector.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "nn/sequential.h"
#include "quant/net_quantizer.h"

namespace ber {

// The (voltage, rate, chip) triple a replica currently serves at.
struct OperatingPoint {
  double voltage = 1.0;    // normalized V/Vmin
  double rate = 0.0;       // bit error rate the chip exhibits at `voltage`
  std::uint64_t chip = 0;  // chip identity (fault-model trial index)
};

class Replica {
 public:
  // `voltages` must be strictly descending (index 0 = safest, closest to
  // Vmin) with `rates` aligned and non-decreasing; `faults` must cover the
  // bottom of the grid (p_max() >= rates.back()). Deploys at `deploy_index`
  // immediately.
  Replica(int id, const Sequential& model, const NetQuantizer& quantizer,
          std::shared_ptr<const NetSnapshot> base, ChipFaultList faults,
          std::vector<double> voltages, std::vector<double> rates,
          std::size_t deploy_index);

  // Rewrites the clone's weights as base + faults at grid point `i`.
  void deploy(std::size_t grid_index);

  // One voltage step up (toward Vmin, i.e. safer). The new fault set is a
  // strict subset of the current one. Returns false at the top of the grid.
  bool step_up();

  int id() const { return id_; }
  std::size_t grid_index() const { return index_; }
  OperatingPoint point() const;
  const std::vector<double>& voltages() const { return voltages_; }
  const std::vector<double>& rates() const { return rates_; }
  // Code words the last deploy() changed.
  std::size_t faults_applied() const { return last_changed_; }

  // Eval-mode forward pass on an [N,C,H,W] batch; returns logits.
  Tensor forward(const Tensor& batch) {
    return model_.forward(batch, /*training=*/false);
  }

  // The replica's private clone (deployed weights) — for inspection/tests.
  Sequential& model() { return model_; }

  // Scores the replica on a held-out probe set (the canary).
  EvalResult canary(const Dataset& probe, long batch = 200) {
    return evaluate(model_, probe, batch);
  }

 private:
  int id_;
  Sequential model_;  // this replica's private clone
  NetQuantizer quantizer_;
  std::shared_ptr<const NetSnapshot> base_;
  ChipFaultList faults_;
  std::vector<double> voltages_;
  std::vector<double> rates_;
  std::size_t index_ = 0;
  std::size_t last_changed_ = 0;
};

}  // namespace ber
