#include "serve/traffic_gen.h"

#include <chrono>
#include <cmath>
#include <future>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/rng.h"
#include "data/dataset.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/replica_pool.h"

namespace ber {

namespace {

constexpr double kUsPerS = 1e6;

// Exponential inter-arrival draw; 1-u keeps log's argument in (0, 1].
double exp_draw(Rng& rng, double rate) {
  return -std::log(1.0 - rng.uniform()) / rate;
}

std::vector<std::uint64_t> poisson_schedule(double rate, double duration_s,
                                            Rng& rng) {
  std::vector<std::uint64_t> out;
  double t = exp_draw(rng, rate);
  while (t < duration_s) {
    out.push_back(static_cast<std::uint64_t>(t * kUsPerS));
    t += exp_draw(rng, rate);
  }
  return out;
}

// Lewis-Shedler thinning: homogeneous candidates at the peak rate, kept
// with probability rate(t)/peak — exact for any bounded rate function.
std::vector<std::uint64_t> diurnal_schedule(const ArrivalPhase& p, Rng& rng) {
  const double peak = p.rate_rps * (1.0 + p.amplitude);
  std::vector<std::uint64_t> out;
  double t = exp_draw(rng, peak);
  while (t < p.duration_s) {
    const double rate_t =
        p.rate_rps *
        (1.0 + p.amplitude * std::sin(2.0 * M_PI * t / p.period_s));
    if (rng.uniform() < rate_t / peak) {
      out.push_back(static_cast<std::uint64_t>(t * kUsPerS));
    }
    t += exp_draw(rng, peak);
  }
  return out;
}

// Two-state MMPP: OFF emits nothing, ON is Poisson at rate_rps scaled by
// the inverse duty cycle, so the long-run mean matches rate_rps exactly.
std::vector<std::uint64_t> bursty_schedule(const ArrivalPhase& p, Rng& rng) {
  const double duty = p.mean_on_s / (p.mean_on_s + p.mean_off_s);
  const double on_rate = p.rate_rps / duty;
  std::vector<std::uint64_t> out;
  // Start in the stationary state so short phases are not biased toward ON.
  bool on = rng.uniform() < duty;
  double t = 0.0;
  while (t < p.duration_s) {
    const double sojourn = exp_draw(rng, 1.0 / (on ? p.mean_on_s
                                                   : p.mean_off_s));
    const double end = std::min(t + sojourn, p.duration_s);
    if (on) {
      double a = t + exp_draw(rng, on_rate);
      while (a < end) {
        out.push_back(static_cast<std::uint64_t>(a * kUsPerS));
        a += exp_draw(rng, on_rate);
      }
    }
    t = end;
    on = !on;
  }
  return out;
}

}  // namespace

std::vector<std::uint64_t> arrival_schedule(const ArrivalPhase& phase,
                                            std::uint64_t seed) {
  if (phase.rate_rps <= 0.0 || phase.duration_s <= 0.0) {
    throw std::invalid_argument(
        "arrival_schedule: rate_rps and duration_s must be > 0");
  }
  Rng rng(seed);
  if (phase.process == "poisson") {
    return poisson_schedule(phase.rate_rps, phase.duration_s, rng);
  }
  if (phase.process == "diurnal") {
    if (phase.period_s <= 0.0 || phase.amplitude < 0.0 ||
        phase.amplitude >= 1.0) {
      throw std::invalid_argument(
          "arrival_schedule: diurnal needs period_s > 0 and amplitude in "
          "[0, 1)");
    }
    return diurnal_schedule(phase, rng);
  }
  if (phase.process == "bursty") {
    if (phase.mean_on_s <= 0.0 || phase.mean_off_s <= 0.0) {
      throw std::invalid_argument(
          "arrival_schedule: bursty needs mean_on_s and mean_off_s > 0");
    }
    return bursty_schedule(phase, rng);
  }
  throw std::invalid_argument(
      "arrival_schedule: unknown process \"" + phase.process +
      "\" (known: poisson, diurnal, bursty)");
}

TrafficGenerator::TrafficGenerator(ReplicaPool& pool, const Dataset& data,
                                   TrafficConfig cfg)
    : pool_(pool), data_(data), cfg_(std::move(cfg)) {
  if (!cfg_.enabled()) {
    throw std::invalid_argument("TrafficGenerator: no phases configured");
  }
  if (cfg_.window_ms < 1) {
    throw std::invalid_argument("TrafficGenerator: window_ms must be >= 1");
  }
  if (data_.size() < 1) {
    throw std::invalid_argument("TrafficGenerator: empty dataset");
  }
}

TrafficResult TrafficGenerator::run() {
  using Clock = std::chrono::steady_clock;
  // Phase seeds come from one splitmix stream, so adding a phase never
  // changes the earlier phases' schedules.
  Rng seeder(cfg_.seed);
  std::vector<std::vector<std::uint64_t>> schedules;
  schedules.reserve(cfg_.phases.size());
  for (const ArrivalPhase& p : cfg_.phases) {
    schedules.push_back(arrival_schedule(p, seeder.next_u64()));
  }

  obs::Counter& offered_ctr = obs::registry().counter("traffic.offered");
  obs::Counter& shed_ctr = obs::registry().counter("traffic.shed");
  // Shared with the Runner's closed-loop path (and CI's shed gate).
  obs::Counter& requests_shed =
      obs::registry().counter("serve.requests_shed");
  obs::SloScoreboard board(cfg_.slo, pool_.latency_histogram());

  TrafficResult result;
  const auto t0 = Clock::now();
  const auto window = std::chrono::milliseconds(cfg_.window_ms);
  auto window_end = t0 + window;
  std::uint64_t win_offered = 0, win_shed = 0;
  const auto close_window = [&](const std::string& phase) {
    board.close_window(phase, win_offered, win_shed,
                       pool_.queue_depth_images());
    win_offered = 0;
    win_shed = 0;
    window_end += window;
  };

  std::vector<std::future<std::vector<Prediction>>> futures;
  Tensor image;
  std::vector<int> labels;
  long next_image = 0;
  auto phase_base = t0;
  for (std::size_t pi = 0; pi < cfg_.phases.size(); ++pi) {
    const ArrivalPhase& phase = cfg_.phases[pi];
    BER_TRACE_SCOPE_ARGS("traffic", "phase", {"process", phase.process.c_str()},
                         {"arrivals", schedules[pi].size()});
    for (const std::uint64_t off_us : schedules[pi]) {
      const auto deadline = phase_base + std::chrono::microseconds(off_us);
      while (window_end <= deadline) {
        std::this_thread::sleep_until(window_end);
        close_window(phase.process);
      }
      std::this_thread::sleep_until(deadline);

      const long j = next_image++ % data_.size();
      data_.batch(j, j + 1, image, labels);
      Tensor single = image.reshaped(
          {image.shape(1), image.shape(2), image.shape(3)});
      ++result.offered;
      ++win_offered;
      offered_ctr.add(1);
      try {
        // Open loop: submit and move on. A rejection is a shed, full stop —
        // retrying would turn the generator back into a closed loop.
        futures.push_back(pool_.submit(std::move(single)));
      } catch (const QueueFullError&) {
        ++result.shed;
        ++win_shed;
        shed_ctr.add(1);
        requests_shed.add(1);
      }
    }
    phase_base += std::chrono::microseconds(
        static_cast<std::uint64_t>(phase.duration_s * kUsPerS));
  }

  // Harvest: wait out the in-flight tail, still closing windows on time so
  // the timeline covers the drain (queue depth decaying to zero).
  {
    BER_TRACE_SCOPE_ARGS("traffic", "harvest", {"in_flight", futures.size()});
    for (auto& f : futures) {
      while (f.wait_until(window_end) == std::future_status::timeout) {
        close_window("drain");
      }
      result.answered += static_cast<std::uint64_t>(f.get().size());
    }
  }
  close_window("drain");  // final (partial) window: the last completions

  result.duration_s =
      std::chrono::duration<double>(Clock::now() - t0).count();
  result.timeline = board.to_json();
  return result;
}

}  // namespace ber
