// Deployment checkpoints: trained weights + the quantization scheme they
// were trained for, in one artifact.
//
// A served model is only meaningful together with its QuantScheme — the
// fault models perturb quantized codes, so deploying under a different
// scheme silently changes the robustness story. save_checkpoint bundles
// both ("BERD" magic + version header on top of core/serialize.h);
// load_checkpoint restores the weights into an identically-built
// architecture and returns the stored scheme. Truncated or corrupt files
// throw (BinaryReader is defensive about short reads and absurd length
// prefixes — regression-tested in tests/test_serve.cpp).
#pragma once

#include <string>

#include "nn/sequential.h"
#include "quant/quantizer.h"

namespace ber {

void save_checkpoint(const std::string& path, Sequential& model,
                     const QuantScheme& scheme);

// Loads into `model` (must match the saved architecture) and returns the
// scheme the weights were trained for.
QuantScheme load_checkpoint(const std::string& path, Sequential& model);

}  // namespace ber
