#include "serve/replica_pool.h"

#include <algorithm>
#include <cstring>
#include <exception>
#include <stdexcept>
#include <string>
#include <utility>

#include "core/parallel.h"
#include "kernels/backend.h"
#include "obs/trace.h"
#include "tensor/ops.h"

namespace ber {

namespace {

// [C,H,W] of a request tensor (3-d single image or 4-d batch).
std::vector<long> image_shape_of(const Tensor& t) {
  const int d = t.dim();
  return {t.shape(d - 3), t.shape(d - 2), t.shape(d - 1)};
}

// Registry-side per-replica serving instruments, resolved once per worker.
struct ReplicaMetrics {
  obs::Counter& requests;
  obs::Counter& images;
  obs::Counter& batches;
  obs::Histogram& latency_us;

  explicit ReplicaMetrics(std::size_t i)
      : requests(obs::registry().counter(
            "serve.requests", {{"replica", std::to_string(i)}})),
        images(obs::registry().counter("serve.images",
                                       {{"replica", std::to_string(i)}})),
        batches(obs::registry().counter("serve.batches",
                                        {{"replica", std::to_string(i)}})),
        latency_us(obs::registry().histogram(
            "serve.request_latency_us", {{"replica", std::to_string(i)}})) {}
};

}  // namespace

ReplicaPool::ReplicaPool(std::vector<Replica> replicas,
                         BatchQueueConfig queue_config, HealthMonitor* monitor)
    : replicas_(std::move(replicas)),
      queue_(queue_config),
      monitor_(monitor),
      backend_(&kernels::current_backend()),
      worker_stats_(replicas_.size()) {
  if (replicas_.empty()) {
    throw std::invalid_argument("ReplicaPool: need at least one replica");
  }
  // Seed the deploy-counter snapshots with the constructor-time deploys
  // before any worker (or stats reader) runs.
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    worker_stats_[i].deploy = replicas_[i].deploy_stats();
  }
  threads_.reserve(replicas_.size());
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    threads_.emplace_back([this, i] { worker(i); });
  }
}

ReplicaPool::~ReplicaPool() { drain(); }

std::future<std::vector<Prediction>> ReplicaPool::submit(Tensor input) {
  if (input.dim() == 3 || input.dim() == 4) {
    const std::vector<long> shape = image_shape_of(input);
    std::lock_guard<std::mutex> lk(shape_mu_);
    if (image_shape_.empty()) {
      image_shape_ = shape;
    } else if (shape != image_shape_) {
      throw std::invalid_argument(
          "ReplicaPool::submit: image shape differs from earlier requests");
    }
  }
  return queue_.submit(std::move(input));
}

void ReplicaPool::drain() {
  if (drained_) return;
  drained_ = true;
  queue_.close();
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void ReplicaPool::worker(std::size_t i) {
  // Serve under the backend that was current when the pool was built, so a
  // deployment can opt the whole fleet into the blocked kernels with one
  // ScopedBackend around construction (per-model preferences still win).
  // The worker marker keeps intra-GEMM sharding serial on these threads:
  // one replica per core is already the right granularity.
  const kernels::ScopedBackend backend_guard(*backend_);
  const ParallelWorkerScope worker_mark;
  obs::set_thread_name("serve.worker/" + std::to_string(i));
  const ReplicaMetrics metrics(i);
  Replica& replica = replicas_[i];
  for (;;) {
    WorkBatch wb = queue_.pop();
    if (wb.empty()) return;  // closed and drained

    BER_TRACE_SCOPE_ARGS("serve", "batch", {"replica", i},
                         {"images", wb.total_images},
                         {"requests", wb.requests.size()});
    std::vector<double> latencies;
    std::size_t fulfilled = 0;
    try {
      // Concatenate the coalesced requests into one [N,C,H,W] pass.
      const std::vector<long> img = image_shape_of(wb.requests.front().input);
      const long stride = img[0] * img[1] * img[2];
      Tensor batch({wb.total_images, img[0], img[1], img[2]});
      long row = 0;
      for (const Request& req : wb.requests) {
        std::memcpy(batch.data() + row * stride, req.input.data(),
                    static_cast<std::size_t>(req.n_images * stride) *
                        sizeof(float));
        row += req.n_images;
      }

      Tensor probs = [&] {
        BER_TRACE_SCOPE_ARGS("serve", "forward", {"images", wb.total_images});
        Tensor p = replica.forward(batch);
        softmax_rows(p);
        return p;
      }();

      BER_TRACE_SCOPE("serve", "reply");
      const auto done = std::chrono::steady_clock::now();
      latencies.reserve(wb.requests.size());
      row = 0;
      for (Request& req : wb.requests) {
        std::vector<Prediction> out(static_cast<std::size_t>(req.n_images));
        for (long k = 0; k < req.n_images; ++k) {
          const long pred = argmax_row(probs, row + k);
          out[static_cast<std::size_t>(k)] = {
              static_cast<int>(pred), probs.at(row + k, pred)};
        }
        row += req.n_images;
        const double lat_us =
            std::chrono::duration<double, std::micro>(done - req.enqueued)
                .count();
        // Record BEFORE fulfilling the promise: anyone who observes the
        // future ready (the SLO scoreboard closes windows on exactly that)
        // must also find the sample in the histogram.
        latency_hist_.record(lat_us);
        metrics.latency_us.record(lat_us);
        latencies.push_back(lat_us);
        req.promise.set_value(std::move(out));
        ++fulfilled;
      }
    } catch (...) {
      // A bad request (e.g. an input the model cannot forward) must fail
      // its own batch's futures, not std::terminate the serving process.
      for (std::size_t r = fulfilled; r < wb.requests.size(); ++r) {
        wb.requests[r].promise.set_exception(std::current_exception());
      }
    }

    // Histogram recording is lock-free; only the legacy counter snapshot
    // still wants stats_mu_.
    metrics.requests.add(latencies.size());
    metrics.images.add(static_cast<std::uint64_t>(wb.total_images));
    metrics.batches.add(1);

    long batches_served;
    {
      std::lock_guard<std::mutex> lk(stats_mu_);
      WorkerStats& ws = worker_stats_[i];
      ++ws.batches;
      ws.images += wb.total_images;
      ws.requests += static_cast<long>(wb.requests.size());
      batches_served = ws.batches;
    }
    if (monitor_ && monitor_->due(batches_served)) {
      monitor_->check(replica);
      // A tripped check may have redeployed; refresh the counters the
      // stats() reader sees (it must never touch the replica directly).
      std::lock_guard<std::mutex> lk(stats_mu_);
      worker_stats_[i].deploy = replica.deploy_stats();
    }
  }
}

ServingStats ReplicaPool::stats() const {
  std::lock_guard<std::mutex> lk(stats_mu_);
  ServingStats s;
  s.per_replica_batches.reserve(worker_stats_.size());
  s.per_replica_images.reserve(worker_stats_.size());
  for (const WorkerStats& ws : worker_stats_) {
    s.requests += ws.requests;
    s.images += ws.images;
    s.batches += ws.batches;
    s.per_replica_batches.push_back(ws.batches);
    s.per_replica_images.push_back(ws.images);
    s.deploys += ws.deploy.deploys;
    s.delta_deploys += ws.deploy.delta_deploys;
    s.noop_deploys += ws.deploy.noop_deploys;
    s.deploy_bytes += ws.deploy.bytes_written;
  }
  s.mean_batch_images =
      s.batches > 0 ? static_cast<double>(s.images) / s.batches : 0.0;
  const obs::Histogram::Snapshot lat = latency_hist_.snapshot();
  s.p50_latency_us = lat.quantile(0.50);
  s.p99_latency_us = lat.quantile(0.99);
  s.p999_latency_us = lat.quantile(0.999);
  return s;
}

}  // namespace ber
