// Dynamic-batching request queue for the serving runtime.
//
// Producers submit single images ([C,H,W]) or pre-batched tensors
// ([N,C,H,W]) and get a future of one Prediction per image. Consumers
// (replica workers) pop() coalesced WorkBatches: after the first request is
// dequeued, the pop lingers up to max_wait_us for more, stopping early once
// max_batch images are gathered — classic "max batch or max wait, whichever
// first" batching. A pre-batched request is never split; one larger than
// max_batch is taken alone.
//
// Admission control: max_queue_images bounds the queued-but-unserved image
// count. A submit() that would push the backlog past the bound throws
// QueueFullError (a typed rejection — callers shed load or retry) and the
// queue is untouched; 0 keeps the queue unbounded. The bound only rejects at
// the front door: every ACCEPTED request keeps the full contract below.
//
// Correctness contract (tested in tests/test_serve.cpp): every accepted
// request is delivered to exactly one pop() — no losses, no duplicates, in
// FIFO order — and close() wakes all consumers while letting queued work
// drain.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <future>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "tensor/tensor.h"

namespace ber {

// Thrown by BatchQueue::submit when the queue is at max_queue_images.
class QueueFullError : public std::runtime_error {
 public:
  explicit QueueFullError(const std::string& what)
      : std::runtime_error(what) {}
};

struct Prediction {
  int label = -1;
  float confidence = 0.0f;  // max softmax probability
};

struct BatchQueueConfig {
  long max_batch = 32;      // images per coalesced forward pass
  long max_wait_us = 1000;  // linger after the first dequeued request
  // Queued-image bound for admission control; submissions that would exceed
  // it throw QueueFullError. 0 = unbounded (the historical behaviour).
  long max_queue_images = 0;
};

// One queued request plus its fulfillment slot.
struct Request {
  Tensor input;   // [C,H,W] or [N,C,H,W]
  long n_images;  // 1 for single-image requests
  std::promise<std::vector<Prediction>> promise;
  std::chrono::steady_clock::time_point enqueued;
};

// A popped unit of work: requests meant for one forward pass.
struct WorkBatch {
  std::vector<Request> requests;
  long total_images = 0;
  bool empty() const { return requests.empty(); }
};

class BatchQueue {
 public:
  explicit BatchQueue(BatchQueueConfig config);

  // Enqueues `input` and returns a future resolving to one Prediction per
  // image, in input order. Throws std::invalid_argument for tensors that are
  // not [C,H,W] / [N,C,H,W], QueueFullError when the bound would be
  // exceeded, std::runtime_error after close().
  std::future<std::vector<Prediction>> submit(Tensor input);

  // Blocks until work is available, then coalesces. An empty WorkBatch means
  // the queue is closed AND drained — the consumer should exit.
  WorkBatch pop();

  // Rejects new submissions and wakes blocked consumers; already-queued
  // requests still drain through pop().
  void close();

  bool closed() const;
  long depth() const;         // queued (not yet popped) requests
  long depth_images() const;  // queued (not yet popped) images

 private:
  BatchQueueConfig config_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Request> queue_;
  long queued_images_ = 0;
  bool closed_ = false;
};

}  // namespace ber
