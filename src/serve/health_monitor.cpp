#include "serve/health_monitor.h"

#include <stdexcept>
#include <utility>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ber {

namespace {

struct HealthMetrics {
  obs::Counter& canaries = obs::registry().counter("health.canaries");
  obs::Counter& trips = obs::registry().counter("health.trips");
  obs::Counter& redeploys = obs::registry().counter("health.redeploys");
};

HealthMetrics& health_metrics() {
  static HealthMetrics m;
  return m;
}

}  // namespace

HealthMonitor::HealthMonitor(Dataset probe, HealthConfig config)
    : probe_(std::move(probe)), config_(config) {
  if (probe_.size() == 0) {
    throw std::invalid_argument("HealthMonitor: empty probe set");
  }
  if (!(config_.max_err >= 0.0 && config_.max_err <= 1.0)) {
    throw std::invalid_argument("HealthMonitor: max_err must be in [0,1]");
  }
}

bool HealthMonitor::due(long batches_served) const {
  return config_.period_batches > 0 && batches_served > 0 &&
         batches_served % config_.period_batches == 0;
}

HealthEvent HealthMonitor::check(Replica& replica) {
  BER_TRACE_SCOPE_ARGS("health", "canary", {"replica", replica.id()});
  HealthMetrics& hm = health_metrics();
  hm.canaries.add(1);
  HealthEvent ev;
  ev.replica = replica.id();
  ev.voltage_before = replica.point().voltage;
  ev.canary_err = replica.canary(probe_, config_.probe_batch).error;
  ev.tripped = ev.canary_err > config_.max_err;
  if (ev.tripped) {
    hm.trips.add(1);
    BER_TRACE_INSTANT("health", "trip", {"replica", ev.replica},
                      {"canary_err", ev.canary_err});
    ev.stepped = replica.step_up();
    if (ev.stepped) hm.redeploys.add(1);
  }
  ev.voltage_after = replica.point().voltage;
  {
    std::lock_guard<std::mutex> lk(mu_);
    events_.push_back(ev);
    if (ev.tripped) ++trips_;
  }
  return ev;
}

std::vector<HealthEvent> HealthMonitor::events() const {
  std::lock_guard<std::mutex> lk(mu_);
  return events_;
}

int HealthMonitor::trips() const {
  std::lock_guard<std::mutex> lk(mu_);
  return trips_;
}

}  // namespace ber
