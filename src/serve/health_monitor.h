// Online canary for deployed replicas.
//
// Each replica periodically scores a small held-out probe set. A replica
// whose canary error exceeds the SLO band trips a redeploy one voltage step
// up: persistence makes the stepped-up fault set a strict subset of the
// already-built ChipFaultList, so recovery needs no re-profiling, no
// re-hashing and no model reload — just a rewrite of the replica's weights
// from the base snapshot plus the list filtered to the higher voltage.
//
// check() runs on the worker thread that owns the replica (the replica has
// no locking of its own); only the event log is shared and mutex-protected.
#pragma once

#include <mutex>
#include <vector>

#include "data/dataset.h"
#include "serve/replica.h"

namespace ber {

struct HealthConfig {
  double max_err = 0.1;     // canary error band (absolute fraction)
  int period_batches = 50;  // canary every N served batches; <= 0 disables
  long probe_batch = 200;   // probe-set forward batch size
};

struct HealthEvent {
  int replica = -1;
  double canary_err = 0.0;
  double voltage_before = 1.0;
  double voltage_after = 1.0;
  bool tripped = false;  // canary above the band
  bool stepped = false;  // a redeploy happened (false when already at top)
};

class HealthMonitor {
 public:
  HealthMonitor(Dataset probe, HealthConfig config);

  // True when a worker that has served `batches_served` batches should run
  // its canary now.
  bool due(long batches_served) const;

  // Scores `replica` on the probe set; steps it one voltage up if the error
  // exceeds the band. The caller must own the replica's thread.
  HealthEvent check(Replica& replica);

  const HealthConfig& config() const { return config_; }
  std::vector<HealthEvent> events() const;
  int trips() const;

 private:
  Dataset probe_;
  HealthConfig config_;
  mutable std::mutex mu_;
  std::vector<HealthEvent> events_;
  int trips_ = 0;
};

}  // namespace ber
