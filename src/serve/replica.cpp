#include "serve/replica.h"

#include <stdexcept>
#include <utility>

namespace ber {

Replica::Replica(int id, const Sequential& model, const NetQuantizer& quantizer,
                 std::shared_ptr<const NetSnapshot> base, ChipFaultList faults,
                 std::vector<double> voltages, std::vector<double> rates,
                 std::size_t deploy_index)
    : id_(id),
      model_(model),
      quantizer_(quantizer),
      base_(std::move(base)),
      faults_(std::move(faults)),
      voltages_(std::move(voltages)),
      rates_(std::move(rates)) {
  if (!base_) throw std::invalid_argument("Replica: null base snapshot");
  if (voltages_.empty() || voltages_.size() != rates_.size()) {
    throw std::invalid_argument("Replica: voltage/rate grids must align");
  }
  for (std::size_t i = 1; i < voltages_.size(); ++i) {
    if (voltages_[i] >= voltages_[i - 1] || rates_[i] < rates_[i - 1]) {
      throw std::invalid_argument(
          "Replica: voltages must descend with non-decreasing rates");
    }
  }
  if (faults_.p_max() < rates_.back()) {
    throw std::invalid_argument(
        "Replica: fault list does not cover the bottom of the voltage grid");
  }
  deploy(deploy_index);
}

void Replica::deploy(std::size_t grid_index) {
  if (grid_index >= voltages_.size()) {
    throw std::out_of_range("Replica::deploy: grid index out of range");
  }
  index_ = grid_index;
  NetSnapshot snap = *base_;
  last_changed_ = faults_.apply(snap, rates_[index_]);
  quantizer_.write_dequantized(snap, model_.params());
}

bool Replica::step_up() {
  if (index_ == 0) return false;
  deploy(index_ - 1);
  return true;
}

OperatingPoint Replica::point() const {
  return {voltages_[index_], rates_[index_], faults_.chip_seed()};
}

}  // namespace ber
