#include "serve/replica.h"

#include <stdexcept>
#include <utility>

#include "nn/code_compute.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace ber {

namespace {

// Fleet-wide deploy telemetry, labeled by which path served the deploy.
struct DeployMetrics {
  obs::Counter& full = obs::registry().counter("serve.deploys",
                                               {{"kind", "full"}});
  obs::Counter& delta = obs::registry().counter("serve.deploys",
                                                {{"kind", "delta"}});
  obs::Counter& noop = obs::registry().counter("serve.deploys",
                                               {{"kind", "noop"}});
  obs::Counter& bytes = obs::registry().counter("serve.deploy_bytes");
};

DeployMetrics& deploy_metrics() {
  static DeployMetrics m;
  return m;
}

}  // namespace

Replica::Replica(int id, const Sequential& model, const NetQuantizer& quantizer,
                 std::shared_ptr<const NetSnapshot> base, ChipFaultList faults,
                 std::vector<double> voltages, std::vector<double> rates,
                 std::size_t deploy_index, bool on_codes)
    : id_(id),
      model_(model),
      quantizer_(quantizer),
      base_(std::move(base)),
      faults_(std::move(faults)),
      voltages_(std::move(voltages)),
      rates_(std::move(rates)),
      on_codes_(on_codes) {
  if (!base_) throw std::invalid_argument("Replica: null base snapshot");
  if (voltages_.empty() || voltages_.size() != rates_.size()) {
    throw std::invalid_argument("Replica: voltage/rate grids must align");
  }
  for (std::size_t i = 1; i < voltages_.size(); ++i) {
    if (voltages_[i] >= voltages_[i - 1] || rates_[i] < rates_[i - 1]) {
      throw std::invalid_argument(
          "Replica: voltages must descend with non-decreasing rates");
    }
  }
  if (faults_.p_max() < rates_.back()) {
    throw std::invalid_argument(
        "Replica: fault list does not cover the bottom of the voltage grid");
  }
  slots_ = param_slots(model_);
  if (slots_.size() != base_->tensors.size()) {
    throw std::invalid_argument(
        "Replica: base snapshot does not match the model's parameters");
  }
  deploy(deploy_index);
}

void Replica::deploy(std::size_t grid_index) {
  if (grid_index >= voltages_.size()) {
    throw std::out_of_range("Replica::deploy: grid index out of range");
  }
  ++deploy_stats_.deploys;
  if (!snap_valid_) {
    deploy_full(grid_index);
    return;
  }
  if (grid_index == index_) {
    // Same grid point and the deployed snapshot is intact: fault
    // persistence makes the redeploy a strict no-op.
    ++deploy_stats_.noop_deploys;
    deploy_metrics().noop.add(1);
    BER_TRACE_INSTANT("deploy", "noop", {"replica", id_});
    return;
  }
  BER_TRACE_SCOPE_ARGS("deploy", "delta", {"replica", id_},
                       {"grid_index", grid_index});
  const double p_from = rates_[index_];
  index_ = grid_index;
  std::vector<ChipFaultList::ChangedCode> changed;
  last_changed_ =
      faults_.apply_delta(snap_, *base_, p_from, rates_[index_], &changed);
  ++deploy_stats_.delta_deploys;
  const unsigned long long bytes = changed.size() * bytes_per_word();
  deploy_stats_.bytes_written += bytes;
  DeployMetrics& dm = deploy_metrics();
  dm.delta.add(1);
  dm.bytes.add(bytes);
  for (const ChipFaultList::ChangedCode& c : changed) {
    const QuantizedTensor& qt = snap_.tensors[c.tensor];
    const std::uint16_t code = qt.codes[c.index];
    const ParamSlot& slot = slots_[c.tensor];
    if (on_codes_ && slot.code_layer != nullptr) {
      slot.code_layer->patch_weight_code(c.index, code);
    } else {
      slot.param->value.data()[c.index] =
          decode_code(code, qt.scheme, qt.range);
    }
  }
}

void Replica::deploy_full(std::size_t grid_index) {
  if (grid_index >= voltages_.size()) {
    throw std::out_of_range("Replica::deploy_full: grid index out of range");
  }
  BER_TRACE_SCOPE_ARGS("deploy", "full", {"replica", id_},
                       {"grid_index", grid_index});
  index_ = grid_index;
  snap_ = *base_;
  last_changed_ = faults_.apply(snap_, rates_[index_]);
  deploy_snapshot(snap_, slots_, on_codes_);
  snap_valid_ = true;
  const unsigned long long bytes =
      static_cast<unsigned long long>(snap_.total_weights()) *
      bytes_per_word();
  deploy_stats_.bytes_written += bytes;
  DeployMetrics& dm = deploy_metrics();
  dm.full.add(1);
  dm.bytes.add(bytes);
}

bool Replica::step_up() {
  if (index_ == 0) return false;
  deploy(index_ - 1);
  return true;
}

OperatingPoint Replica::point() const {
  return {voltages_[index_], rates_[index_], faults_.chip_seed()};
}

}  // namespace ber
