#include "serve/planner.h"

#include <memory>
#include <stdexcept>
#include <utility>

namespace ber {

namespace {

void check_descending(const std::vector<double>& voltages) {
  if (voltages.empty()) {
    throw std::invalid_argument("planner: empty voltage grid");
  }
  for (std::size_t i = 0; i < voltages.size(); ++i) {
    if (voltages[i] <= 0.0 || voltages[i] > 1.5) {
      throw std::invalid_argument(
          "planner: voltages must be normalized (0, 1.5]");
    }
    if (i > 0 && voltages[i] >= voltages[i - 1]) {
      throw std::invalid_argument(
          "planner: voltages must be strictly descending");
    }
  }
}

}  // namespace

std::vector<double> OperatingPointPlan::voltages() const {
  std::vector<double> v;
  v.reserve(grid.size());
  for (const GridPoint& g : grid) v.push_back(g.voltage);
  return v;
}

std::vector<double> OperatingPointPlan::rates() const {
  std::vector<double> r;
  r.reserve(grid.size());
  for (const GridPoint& g : grid) r.push_back(g.rate);
  return r;
}

OperatingPointPlan select_operating_point(std::vector<GridPoint> grid,
                                          const SloConfig& slo) {
  if (grid.empty()) {
    throw std::invalid_argument("select_operating_point: empty grid");
  }
  OperatingPointPlan plan;
  for (GridPoint& g : grid) g.feasible = slo.upper_bound(g.rerr) <= slo.max_rerr;
  plan.grid = std::move(grid);
  // Contiguous-prefix walk: stop at the first point above the band — rates
  // only grow below that voltage, so nothing further down can qualify.
  std::size_t last_ok = 0;
  bool any_ok = false;
  for (std::size_t i = 0; i < plan.grid.size(); ++i) {
    if (!plan.grid[i].feasible) break;
    last_ok = i;
    any_ok = true;
  }
  plan.chosen = last_ok;
  plan.feasible = any_ok;
  plan.below_vmin = any_ok && plan.grid[last_ok].voltage < 1.0;
  plan.energy_saving = any_ok ? 1.0 - plan.grid[last_ok].energy : 0.0;
  return plan;
}

OperatingPointPlanner::OperatingPointPlanner(Sequential& model,
                                             const QuantScheme& scheme,
                                             SramEnergyModel energy)
    : model_(model),
      scheme_(scheme),
      energy_(energy),
      evaluator_(model, scheme) {}

std::vector<GridPoint> OperatingPointPlanner::make_grid(
    const std::vector<double>& voltages, const std::vector<double>& rates,
    std::vector<RobustResult> sweep) const {
  std::vector<GridPoint> grid(voltages.size());
  for (std::size_t i = 0; i < voltages.size(); ++i) {
    grid[i].voltage = voltages[i];
    grid[i].rate = rates[i];
    grid[i].rerr = std::move(sweep[i]);
    grid[i].energy = energy_.energy_per_access(voltages[i]);
  }
  return grid;
}

OperatingPointPlan OperatingPointPlanner::plan(
    const RandomBitErrorModel& fault, const Dataset& data,
    const std::vector<double>& voltages, const SloConfig& slo, int n_chips,
    long batch) const {
  check_descending(voltages);
  std::vector<double> rates;
  rates.reserve(voltages.size());
  for (double v : voltages) rates.push_back(energy_.bit_error_rate(v));
  std::vector<RobustResult> sweep =
      evaluator_.run_rate_sweep(fault, rates, data, n_chips, batch);
  return select_operating_point(make_grid(voltages, rates, std::move(sweep)),
                                slo);
}

OperatingPointPlan OperatingPointPlanner::plan_profiled(
    const ProfiledChipModel& fault, const Dataset& data,
    const std::vector<double>& voltages, const SloConfig& slo, int n_offsets,
    long batch) const {
  check_descending(voltages);
  std::vector<double> rates;
  rates.reserve(voltages.size());
  for (double v : voltages) rates.push_back(fault.chip().model_rate_at(v));
  std::vector<RobustResult> sweep = evaluator_.run_voltage_sweep(
      fault, voltages, data, n_offsets, batch);
  return select_operating_point(make_grid(voltages, rates, std::move(sweep)),
                                slo);
}

std::vector<Replica> OperatingPointPlanner::deploy_fleet(
    const RandomBitErrorModel& fault, const OperatingPointPlan& plan,
    int n_replicas) const {
  if (n_replicas < 1) {
    throw std::invalid_argument("deploy_fleet: need at least one replica");
  }
  auto base = std::make_shared<NetSnapshot>(evaluator_.snapshot());
  const NetQuantizer quantizer(scheme_);
  const double p_bottom = plan.grid.back().rate;
  std::vector<Replica> fleet;
  fleet.reserve(static_cast<std::size_t>(n_replicas));
  for (int r = 0; r < n_replicas; ++r) {
    ChipFaultList faults =
        fault.fault_list(*base, static_cast<std::uint64_t>(r), p_bottom);
    fleet.emplace_back(r, model_, quantizer, base, std::move(faults),
                       plan.voltages(), plan.rates(), plan.chosen, on_codes_);
  }
  return fleet;
}

std::vector<Replica> OperatingPointPlanner::deploy_fleet_profiled(
    const ProfiledChipModel& fault, const OperatingPointPlan& plan,
    int n_replicas) const {
  if (n_replicas < 1) {
    throw std::invalid_argument(
        "deploy_fleet_profiled: need at least one replica");
  }
  auto base = std::make_shared<NetSnapshot>(evaluator_.snapshot());
  const NetQuantizer quantizer(scheme_);
  const double v_bottom = plan.grid.back().voltage;
  std::vector<Replica> fleet;
  fleet.reserve(static_cast<std::size_t>(n_replicas));
  for (int r = 0; r < n_replicas; ++r) {
    ChipFaultList faults =
        fault.fault_list(*base, static_cast<std::uint64_t>(r), v_bottom);
    fleet.emplace_back(r, model_, quantizer, base, std::move(faults),
                       plan.voltages(), plan.rates(), plan.chosen, on_codes_);
  }
  return fleet;
}

double OperatingPointPlanner::fleet_energy_per_access(
    const std::vector<Replica>& fleet) const {
  if (fleet.empty()) return 1.0;
  double sum = 0.0;
  for (const Replica& r : fleet) {
    sum += energy_.energy_per_access(r.point().voltage);
  }
  return sum / static_cast<double>(fleet.size());
}

Json plan_to_json(const OperatingPointPlan& plan, const SloConfig& slo) {
  Json grid = Json::array();
  for (const GridPoint& g : plan.grid) {
    Json gj = Json::object();
    gj.set("v", g.voltage);
    gj.set("p", g.rate);
    gj.set("rerr_mean", static_cast<double>(g.rerr.mean_rerr));
    gj.set("rerr_std", static_cast<double>(g.rerr.std_rerr));
    gj.set("ucb", slo.upper_bound(g.rerr));
    gj.set("energy", g.energy);
    gj.set("feasible", g.feasible);
    grid.push_back(std::move(gj));
  }
  Json j = Json::object();
  j.set("grid", std::move(grid));
  j.set("feasible", plan.feasible);
  j.set("chosen_v", plan.chosen_point().voltage);
  j.set("chosen_p", plan.chosen_point().rate);
  j.set("below_vmin", plan.below_vmin);
  j.set("energy_saving", plan.energy_saving);
  return j;
}

}  // namespace ber
