#include "ecc/secded.h"

#include <cmath>
#include <stdexcept>

namespace ber {

namespace {

// Extended Hamming code layout: 7 syndrome bits cover positions 1..127 of
// which we use positions for 64 data bits; the 8th check bit is overall
// parity (distinguishes single from double errors).
//
// We place data bit i at codeword position pos_of_data(i): positions that
// are powers of two hold the 7 Hamming check bits.
int pos_of_data(int i) {
  // Skip positions 1, 2, 4, 8, 16, 32, 64 (1-based power-of-two slots).
  int pos = 1;
  int seen = -1;
  while (true) {
    ++pos;
    if ((pos & (pos - 1)) == 0) continue;  // power of two -> check slot
    ++seen;
    if (seen == i) return pos;
  }
}

// Precomputed positions for the 64 data bits (1-based, in [3, 127]).
const int* data_positions() {
  static int table[64];
  static bool init = [] {
    for (int i = 0; i < 64; ++i) table[i] = pos_of_data(i);
    return true;
  }();
  (void)init;
  return table;
}

// Hamming syndrome (7 bits) of the data+check configuration.
int syndrome_of(std::uint64_t data, std::uint8_t check) {
  int syn = 0;
  const int* pos = data_positions();
  for (int i = 0; i < 64; ++i) {
    if ((data >> i) & 1ULL) syn ^= pos[i];
  }
  // Check bits 0..6 sit at positions 1, 2, 4, ..., 64.
  for (int c = 0; c < 7; ++c) {
    if ((check >> c) & 1) syn ^= (1 << c);
  }
  return syn;
}

int parity64(std::uint64_t v) { return __builtin_parityll(v); }

// Overall parity over data + all 8 check bits.
int overall_parity(std::uint64_t data, std::uint8_t check) {
  return parity64(data) ^ __builtin_parity(check);
}

}  // namespace

SecdedWord secded_encode(std::uint64_t data) {
  SecdedWord w;
  w.data = data;
  // Choose check bits 0..6 so the syndrome is zero.
  int syn = 0;
  const int* pos = data_positions();
  for (int i = 0; i < 64; ++i) {
    if ((data >> i) & 1ULL) syn ^= pos[i];
  }
  std::uint8_t check = 0;
  for (int c = 0; c < 7; ++c) {
    if ((syn >> c) & 1) check |= static_cast<std::uint8_t>(1 << c);
  }
  // Overall parity bit (check bit 7) makes total parity even.
  if (overall_parity(data, check) != 0) check |= 0x80;
  w.check = check;
  return w;
}

SecdedResult secded_decode(const SecdedWord& word) {
  SecdedResult r;
  r.data = word.data;
  const int syn = syndrome_of(word.data, word.check & 0x7F);
  const int par = overall_parity(word.data, word.check);

  if (syn == 0 && par == 0) {
    r.status = SecdedStatus::kClean;
    return r;
  }
  if (par == 1) {
    // Odd number of errors -> treat as single and correct via syndrome.
    r.status = SecdedStatus::kCorrectedSingle;
    if (syn == 0) return r;  // the overall parity bit itself flipped
    if ((syn & (syn - 1)) == 0) return r;  // a Hamming check bit flipped
    const int* pos = data_positions();
    for (int i = 0; i < 64; ++i) {
      if (pos[i] == syn) {
        r.data ^= (1ULL << i);
        return r;
      }
    }
    // Syndrome points at an unused position: must be multiple errors.
    r.status = SecdedStatus::kUndetectedOrMis;
    return r;
  }
  // Even parity with non-zero syndrome: double error detected.
  r.status = SecdedStatus::kDetectedDouble;
  return r;
}

void secded_flip(SecdedWord& word, int bit) {
  if (bit < 0 || bit >= 72) throw std::invalid_argument("secded_flip: bit");
  if (bit < 64) {
    word.data ^= (1ULL << bit);
  } else {
    word.check ^= static_cast<std::uint8_t>(1u << (bit - 64));
  }
}

double secded_uncorrectable_probability(double p, int word_bits) {
  if (p < 0.0 || p > 1.0 || word_bits <= 1) {
    throw std::invalid_argument("secded_uncorrectable_probability");
  }
  const double n = static_cast<double>(word_bits);
  const double p0 = std::pow(1.0 - p, n);
  const double p1 = n * p * std::pow(1.0 - p, n - 1.0);
  return 1.0 - p0 - p1;
}

}  // namespace ber
