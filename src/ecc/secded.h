// SECDED error correcting code (Hamming(72,64) style) — the hardware
// alternative the paper argues against.
//
// The paper's intro: "Common error correcting codes (ECCs such as SECDED)
// cannot correct multiple bit errors per word (containing multiple DNN
// weights). However, for p = 1%, the probability of two or more bit errors
// in a 64-bit word is 13.5%." This module makes that argument executable:
// a single-error-correcting, double-error-detecting extended Hamming code
// over 64-bit data words (8 check bits), plus the analytic multi-error
// probability, so benches can show exactly where ECC protection collapses
// versus where RandBET keeps working.
#pragma once

#include <cstdint>

namespace ber {

// A 64-bit data word with its 8 SECDED check bits.
struct SecdedWord {
  std::uint64_t data = 0;
  std::uint8_t check = 0;
};

enum class SecdedStatus {
  kClean,              // no error detected
  kCorrectedSingle,    // single bit error corrected
  kDetectedDouble,     // double error detected, NOT correctable
  kUndetectedOrMis,    // >=3 errors: miscorrection or silent corruption
};

struct SecdedResult {
  SecdedStatus status = SecdedStatus::kClean;
  std::uint64_t data = 0;  // best-effort decoded data
};

// Encodes a 64-bit word into data + check bits.
SecdedWord secded_encode(std::uint64_t data);

// Decodes a (possibly corrupted) codeword: corrects single-bit errors in
// data or check bits, flags double errors. With >= 3 errors the syndrome can
// alias a single-bit error and silently miscorrect — the decoder cannot
// distinguish this case; callers learn it only by comparing with ground
// truth (which tests do).
SecdedResult secded_decode(const SecdedWord& word);

// Flips bit `bit` (0..71) of the codeword: 0..63 = data, 64..71 = check.
void secded_flip(SecdedWord& word, int bit);

// Analytic probability that a 72-bit SECDED codeword suffers >= 2 bit
// errors at per-bit rate p — i.e. the fraction of words ECC cannot correct.
// The paper quotes ~13.5% for 64-bit words at p = 1% (we model all 72 cells
// as vulnerable, which is the hardware reality).
double secded_uncorrectable_probability(double p, int word_bits = 72);

}  // namespace ber
