#include "kernels/backend.h"

#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <stdexcept>
#include <utility>

#include "kernels/blocked_backend.h"
#include "kernels/reference_backend.h"
#include "obs/kernel_stats.h"

namespace ber::kernels {

obs::KernelStats& Backend::kstats() const {
  obs::KernelStats* s = kstats_.load(std::memory_order_acquire);
  if (s == nullptr) {
    s = &obs::kernel_stats(name());
    kstats_.store(s, std::memory_order_release);
  }
  return *s;
}

namespace {

struct Registry {
  std::mutex mu;
  std::map<std::string, std::unique_ptr<Backend>> backends;
  const Backend* default_bk = nullptr;
  bool env_latched = false;

  Registry() {
    backends.emplace("reference", std::make_unique<ReferenceBackend>());
    backends.emplace("blocked", std::make_unique<BlockedBackend>());
  }

  // Call with mu held.
  const Backend* find(const std::string& name) {
    auto it = backends.find(name);
    return it == backends.end() ? nullptr : it->second.get();
  }

  const Backend* lookup_or_throw(const std::string& name) {
    if (const Backend* bk = find(name)) return bk;
    std::ostringstream os;
    os << "unknown compute backend \"" << name << "\"; known:";
    for (const auto& [n, bk] : backends) os << " " << n;
    throw std::invalid_argument(os.str());
  }

  const Backend* resolve_default() {
    if (!env_latched) {
      env_latched = true;
      if (const char* env = std::getenv("BER_BACKEND")) {
        default_bk = lookup_or_throw(env);
      }
    }
    if (!default_bk) default_bk = find("reference");
    return default_bk;
  }
};

Registry& registry() {
  static Registry r;
  return r;
}

thread_local const Backend* tls_override = nullptr;

}  // namespace

const Backend& backend(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return *r.lookup_or_throw(name);
}

std::vector<std::string> backend_names() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  std::vector<std::string> names;
  names.reserve(r.backends.size());
  for (const auto& [name, bk] : r.backends) names.push_back(name);
  return names;
}

void register_backend(std::unique_ptr<Backend> bk) {
  if (!bk) throw std::invalid_argument("register_backend: null backend");
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  const std::string name = bk->name();
  if (!r.backends.emplace(name, std::move(bk)).second) {
    throw std::invalid_argument("register_backend: duplicate \"" + name +
                                "\"");
  }
}

const Backend& default_backend() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  return *r.resolve_default();
}

void set_default_backend(const std::string& name) {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.default_bk = r.lookup_or_throw(name);
  r.env_latched = true;  // an explicit choice beats a later env latch
}

const Backend& current_backend() {
  if (tls_override) return *tls_override;
  return default_backend();
}

ScopedBackend::ScopedBackend(const Backend& bk) : prev_(tls_override) {
  tls_override = &bk;
}

ScopedBackend::ScopedBackend(const std::string& name)
    : ScopedBackend(backend(name)) {}

ScopedBackend::~ScopedBackend() { tls_override = prev_; }

namespace detail {
void refresh_default_from_env() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  r.default_bk = nullptr;
  r.env_latched = false;
  r.resolve_default();
}
}  // namespace detail

}  // namespace ber::kernels
