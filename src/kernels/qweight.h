// Quantized-weight views for the compute-on-codes GEMM surface.
//
// A QWeightView is how a layer hands its code-resident weight matrix to
// Backend::qgemm / qgemm_bt without materializing floats. It carries two
// redundant representations:
//
//   * codes + scheme + range — the stored words themselves. The reference
//     oracle decodes each word with quant/quantizer.h's exact arithmetic,
//     which makes it bit-exact with dequantize-then-float-reference for
//     every scheme (rounding happened at encode time; decode is exact).
//   * q + row_sums + slope/shift — the int8 fast-path data. q[i] is the
//     code's integer level rebased so that ANY faulted pattern of <= 8 bits
//     fits int8 (unsigned code schemes store q = code - 128; signed schemes
//     the sign-extended level), and decoding is exactly affine:
//     w = slope * q + shift. The blocked backend computes the GEMM in
//     int32 over q and folds `slope` into one per-output multiplier; the
//     `shift` contribution is sum_k shift * x[k], corrected via activation
//     column sums. q is null when bits > 8 — callers fall back to the
//     decode-on-the-fly oracle, so every scheme width works, just not fast.
//
// QEpilogue is the fused writeback: per-output-channel bias add and optional
// ReLU applied while the accumulators are still hot, so a Linear/Conv layer
// is one pass instead of GEMM + bias + activation.
#pragma once

#include <cstdint>

#include "quant/quantizer.h"

namespace ber::kernels {

struct QWeightView {
  long rows = 0;  // output channels
  long cols = 0;  // reduction length (in features / in_c * k * k)

  // Stored code words, [rows, cols] row-major, plus their decode parameters.
  const std::uint16_t* codes = nullptr;
  QuantScheme scheme;
  QuantRange range;

  // int8 fast path (null when scheme.bits > 8): w = slope * q + shift.
  const std::int8_t* q = nullptr;
  const std::int32_t* row_sums = nullptr;  // sum_j q[i, j], length rows
  float slope = 1.0f;
  float shift = 0.0f;

  bool has_int8() const { return q != nullptr; }
};

// Fused writeback: y = relu?(y + bias[row]) per output channel. The bias add
// and the ReLU mirror the unfused layer loops element for element, so fusing
// changes nothing numerically (pinned in tests/test_kernels.cpp).
struct QEpilogue {
  const float* bias = nullptr;  // length rows; null = no bias
  bool relu = false;
};

}  // namespace ber::kernels
