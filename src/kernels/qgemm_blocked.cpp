// int8 compute-on-codes GEMM for the blocked backend.
//
// NOTE: like blocked_backend.cpp, this translation unit is compiled with
// -march=native (see CMakeLists.txt); nothing else in the library gets that
// flag.
//
// Algorithm (both layouts reduce to one channel-major core):
//   1. Activations are quantized once per call, symmetric 8-bit per output
//      column: sx_j = absmax(x[:, j]) / 127, p = round(x/sx_j) in
//      [-127, 127], stored biased as u8 = p + 128 because AVX512-VNNI's
//      VPDPBUSD takes an unsigned left operand. The bias is exact to
//      remove: dp = sum (p+128)*q adds 128 * row_sum(q), and the view
//      precomputes those row sums. Per-column (per spatial position /
//      per sample) scales matter beyond accuracy: each output column
//      depends only on its own input column, so a forward's results do
//      not change with how requests are batched together — the serving
//      pool pins that bit-for-bit (tests/test_serve.cpp).
//   2. The GEMM runs over the stored int8 levels q with int32 accumulation.
//      VPDPBUSD contributes 4 k-steps per lane per instruction, so
//      activations are packed into [k/4][64-column][4] byte panels and the
//      micro-kernel keeps a 4-row x 64-column int32 accumulator block.
//   3. The writeback folds everything the float path did in separate passes:
//      y = (slope*sx_j) * (dp - 128*row_sum_q[i])
//          + (shift*sx_j) * colsum_p[j] + bias[i], then optional ReLU.
//      `slope/shift` are the exact affine decode of the scheme
//      (quant/quantizer.h:decode_affine), so the result equals
//      decoded-weights x quantized-activations exactly; the only error vs
//      the scalar oracle is the activation quantization.
//
// The non-VNNI fallback accumulates the identical integers with scalar
// loops and shares the same writeback expression (std::fma where the vector
// path uses a fused multiply-add), so both paths agree bit for bit.
#include <algorithm>
#include <cmath>
#include <cstring>

#include "kernels/arena.h"
#include "kernels/blocked_backend.h"
#include "kernels/conv.h"
#include "obs/kernel_stats.h"

#if defined(__AVX512F__) && defined(__AVX512VNNI__)
#include <immintrin.h>
#define BER_QGEMM_VNNI 1
#endif

namespace ber::kernels {

namespace {

constexpr long kQMR = 4;   // W rows per register tile
constexpr long kQNR = 64;  // activation columns per tile (4 zmm of int32)

// Tallies for the non-fallback paths only; the scalar-oracle fallbacks count
// inside Backend::qgemm/qgemm_bt.
inline void count_qgemm(const Backend& bk, const QWeightView& w, long n) {
  obs::KernelStats& ks = bk.kstats();
  ks.qgemm_calls->add(1);
  ks.qgemm_flops->add(2ull * static_cast<unsigned long long>(w.rows) *
                      static_cast<unsigned long long>(w.cols) *
                      static_cast<unsigned long long>(n));
}

#if defined(BER_QGEMM_VNNI)
float absmax(const float* x, long n) {
  __m512 acc = _mm512_setzero_ps();
  for (long t = 0; t < n; t += 16) {
    const long rem = n - t;
    const __mmask16 mask =
        rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                  : static_cast<__mmask16>((1u << rem) - 1u);
    acc = _mm512_max_ps(acc, _mm512_abs_ps(_mm512_maskz_loadu_ps(mask, x + t)));
  }
  return _mm512_reduce_max_ps(acc);
}
#else
float absmax(const float* x, long n) {
  float m = 0.0f;
  for (long i = 0; i < n; ++i) m = std::max(m, std::fabs(x[i]));
  return m;
}
#endif

// Folds the per-column activation scale into the quantization and writeback
// multipliers: invj = 127/colmax (0 for all-zero columns), swj = slope*sx,
// scj = shift*sx with sx = colmax/127.
void compute_scales(const QWeightView& w, const float* colmax, long n,
                    float* invj, float* swj, float* scj) {
  for (long j = 0; j < n; ++j) {
    const float sx = colmax[j] > 0.0f ? colmax[j] / 127.0f : 0.0f;
    invj[j] = colmax[j] > 0.0f ? 127.0f / colmax[j] : 0.0f;
    swj[j] = w.slope * sx;
    if (scj != nullptr) scj[j] = w.shift * sx;
  }
}

// Pads W levels to a [round_up(rows, kQMR)] x [k4*4] block (zero fill): the
// micro-kernel always broadcasts full dwords and full row quads; zero levels
// contribute nothing.
const std::int8_t* pad_weights(const QWeightView& w, long k4, Arena& arena) {
  const long kp = k4 * 4;
  const long rows_pad = ((w.rows + kQMR - 1) / kQMR) * kQMR;
  std::int8_t* wq = reinterpret_cast<std::int8_t*>(
      arena.alloc_bytes(static_cast<std::size_t>(rows_pad * kp)));
  std::memset(wq, 0, static_cast<std::size_t>(rows_pad * kp));
  for (long i = 0; i < w.rows; ++i) {
    std::memcpy(wq + i * kp, w.q + i * w.cols,
                static_cast<std::size_t>(w.cols));
  }
  return wq;
}

#if BER_QGEMM_VNNI

// Quantizes one k-row of a row-major column matrix: dst[j] =
// round(src[j] * invj[j]) + 128 for j in [0, n), clamped to [-127, 127]
// before biasing. Masked stores — never writes past dst + n. When `colsum`
// is non-null the unbiased levels are accumulated into it in the same pass
// (exactly the integers the scalar fallback sums).
void quantize_row_u8_cols(const float* src, long n, const float* invj,
                          std::uint8_t* dst, std::int32_t* colsum) {
  const __m512i vlo = _mm512_set1_epi32(-127);
  const __m512i vhi = _mm512_set1_epi32(127);
  const __m512i vbias = _mm512_set1_epi32(128);
  for (long t = 0; t < n; t += 16) {
    const long rem = n - t;
    const __mmask16 mask =
        rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                  : static_cast<__mmask16>((1u << rem) - 1u);
    const __m512 xv = _mm512_maskz_loadu_ps(mask, src + t);
    const __m512 iv = _mm512_maskz_loadu_ps(mask, invj + t);
    __m512i pi = _mm512_cvtps_epi32(_mm512_mul_ps(xv, iv));
    pi = _mm512_min_epi32(_mm512_max_epi32(pi, vlo), vhi);
    if (colsum != nullptr) {
      const __m512i cs = _mm512_maskz_loadu_epi32(mask, colsum + t);
      _mm512_mask_storeu_epi32(colsum + t, mask, _mm512_add_epi32(cs, pi));
    }
    _mm512_mask_cvtepi32_storeu_epi8(dst + t, mask,
                                     _mm512_add_epi32(pi, vbias));
  }
}

// Quantizes `count` floats of `src` into biased u8 levels (p + 128) at
// `dst`, which must have room for round_up(count, 16); lanes past `count`
// get the pad value 128 (p = 0). Returns sum of the (unbiased) levels.
std::int64_t quantize_row_u8(const float* src, long count, long padded,
                             float inv, std::uint8_t* dst) {
  const __m512 vinv = _mm512_set1_ps(inv);
  const __m512i vlo = _mm512_set1_epi32(-127);
  const __m512i vhi = _mm512_set1_epi32(127);
  const __m512i vbias = _mm512_set1_epi32(128);
  __m512i vsum = _mm512_setzero_si512();
  for (long t = 0; t < padded; t += 16) {
    const long rem = count - t;
    const __mmask16 mask =
        rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                  : static_cast<__mmask16>(rem > 0 ? (1u << rem) - 1u : 0u);
    const __m512 xv = _mm512_maskz_loadu_ps(mask, src + t);
    __m512i pi = _mm512_cvtps_epi32(_mm512_mul_ps(xv, vinv));
    pi = _mm512_min_epi32(_mm512_max_epi32(pi, vlo), vhi);
    vsum = _mm512_add_epi32(vsum, pi);
    const __m512i biased = _mm512_add_epi32(pi, vbias);
    _mm_storeu_si128(reinterpret_cast<__m128i*>(dst + t),
                     _mm512_cvtepi32_epi8(biased));
  }
  return _mm512_reduce_add_epi32(vsum);
}

// Interleaves 4 quantized k-rows (qrow, each `n` bytes, consecutive) into
// the packed panels' dword lanes for k-group ki. Lanes past n get the
// biased zero 0x80808080.
void pack_qrows(const std::uint8_t* qrow, long n, long ki, long k4,
                std::uint8_t* xpack) {
  for (long j0 = 0; j0 < n; j0 += kQNR) {
    std::uint32_t* dst = reinterpret_cast<std::uint32_t*>(
        xpack + ((j0 / kQNR) * k4 + ki) * (kQNR * 4));
    const long jb = std::min(kQNR, n - j0);
    const std::uint8_t* r0 = qrow + j0;
    const std::uint8_t* r1 = qrow + n + j0;
    const std::uint8_t* r2 = qrow + 2 * n + j0;
    const std::uint8_t* r3 = qrow + 3 * n + j0;
    // 4x16 byte transpose per group of 16 columns: two unpack levels turn
    // four 16-byte row slices into sixteen [r0 r1 r2 r3] dwords.
    const long jb16 = jb & ~15L;
    for (long j = 0; j < jb16; j += 16) {
      const __m128i a0 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r0 + j));
      const __m128i a1 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r1 + j));
      const __m128i a2 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r2 + j));
      const __m128i a3 =
          _mm_loadu_si128(reinterpret_cast<const __m128i*>(r3 + j));
      const __m128i lo01 = _mm_unpacklo_epi8(a0, a1);
      const __m128i hi01 = _mm_unpackhi_epi8(a0, a1);
      const __m128i lo23 = _mm_unpacklo_epi8(a2, a3);
      const __m128i hi23 = _mm_unpackhi_epi8(a2, a3);
      __m128i* out = reinterpret_cast<__m128i*>(dst + j);
      _mm_storeu_si128(out + 0, _mm_unpacklo_epi16(lo01, lo23));
      _mm_storeu_si128(out + 1, _mm_unpackhi_epi16(lo01, lo23));
      _mm_storeu_si128(out + 2, _mm_unpacklo_epi16(hi01, hi23));
      _mm_storeu_si128(out + 3, _mm_unpackhi_epi16(hi01, hi23));
    }
    for (long j = jb16; j < jb; ++j) {
      dst[j] = static_cast<std::uint32_t>(r0[j]) |
               (static_cast<std::uint32_t>(r1[j]) << 8) |
               (static_cast<std::uint32_t>(r2[j]) << 16) |
               (static_cast<std::uint32_t>(r3[j]) << 24);
    }
    for (long j = jb; j < kQNR; ++j) dst[j] = 0x80808080u;
  }
}

// The register micro-kernel plus fused writeback for one [i0, j0] tile of
// channel-major y [rows, ld]. xpanel points at this j-block's packed
// activations ([k4][kQNR*4] bytes).
void tile_vnni(const std::int8_t* wq, long kp, long k4, long i0, long mb,
               const std::uint8_t* xpanel, long j0, long n,
               const std::int32_t* row_sums, const std::int32_t* colsum,
               const float* swj, const float* scj, const QEpilogue& ep,
               float* y, long ld) {
  __m512i acc[kQMR][4];
  for (long r = 0; r < kQMR; ++r) {
    for (int v = 0; v < 4; ++v) acc[r][v] = _mm512_setzero_si512();
  }
  for (long ki = 0; ki < k4; ++ki) {
    const std::uint8_t* xp = xpanel + ki * (kQNR * 4);
    const __m512i x0 = _mm512_loadu_si512(xp);
    const __m512i x1 = _mm512_loadu_si512(xp + 64);
    const __m512i x2 = _mm512_loadu_si512(xp + 128);
    const __m512i x3 = _mm512_loadu_si512(xp + 192);
    for (long r = 0; r < kQMR; ++r) {
      std::int32_t wd;
      std::memcpy(&wd, wq + (i0 + r) * kp + ki * 4, 4);
      const __m512i wb = _mm512_set1_epi32(wd);
      acc[r][0] = _mm512_dpbusd_epi32(acc[r][0], x0, wb);
      acc[r][1] = _mm512_dpbusd_epi32(acc[r][1], x1, wb);
      acc[r][2] = _mm512_dpbusd_epi32(acc[r][2], x2, wb);
      acc[r][3] = _mm512_dpbusd_epi32(acc[r][3], x3, wb);
    }
  }
  const __m512 vzero = _mm512_setzero_ps();
  for (long r = 0; r < mb; ++r) {
    const __m512i vcorr = _mm512_set1_epi32(128 * row_sums[i0 + r]);
    const __m512 vbias =
        _mm512_set1_ps(ep.bias != nullptr ? ep.bias[i0 + r] : 0.0f);
    for (int v = 0; v < 4; ++v) {
      const long j = j0 + 16 * v;
      if (j >= n) break;
      const long rem = n - j;
      const __mmask16 mask =
          rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                    : static_cast<__mmask16>((1u << rem) - 1u);
      const __m512 dpf =
          _mm512_cvtepi32_ps(_mm512_sub_epi32(acc[r][v], vcorr));
      const __m512 vsw = _mm512_maskz_loadu_ps(mask, swj + j);
      __m512 yv = _mm512_mul_ps(dpf, vsw);
      if (colsum != nullptr) {
        const __m512 vsc = _mm512_maskz_loadu_ps(mask, scj + j);
        const __m512 cs = _mm512_cvtepi32_ps(
            _mm512_maskz_loadu_epi32(mask, colsum + j));
        yv = _mm512_fmadd_ps(vsc, cs, yv);
      }
      if (ep.bias != nullptr) yv = _mm512_add_ps(yv, vbias);
      if (ep.relu) yv = _mm512_max_ps(yv, vzero);
      _mm512_mask_storeu_ps(y + (i0 + r) * ld + j, mask, yv);
    }
  }
}

// plane[p] = max over channels of |xi[c * hw + p]|.
void channel_absmax(const float* xi, long in_c, long hw, float* plane) {
  std::memset(plane, 0, sizeof(float) * static_cast<std::size_t>(hw));
  for (long c = 0; c < in_c; ++c) {
    const float* xc = xi + c * hw;
    for (long t = 0; t < hw; t += 16) {
      const long rem = hw - t;
      const __mmask16 mask =
          rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                    : static_cast<__mmask16>((1u << rem) - 1u);
      const __m512 pv = _mm512_maskz_loadu_ps(mask, plane + t);
      const __m512 xv = _mm512_abs_ps(_mm512_maskz_loadu_ps(mask, xc + t));
      _mm512_mask_storeu_ps(plane + t, mask, _mm512_max_ps(pv, xv));
    }
  }
}

// Quantizes im2col row k = (c, kh, kw) of the whole batch straight from x:
// for each output position the sampled input element (0 in the padding
// ring) is scaled by that column's invj, rounded, clamped and biased —
// exactly the bytes quantize_row_u8_cols would produce from a materialized
// column matrix. Each output row is a (clipped) contiguous slice of an
// input row, so the interior runs through the vector quantizer.
void quantize_im2col_row(const ConvShape& s, const float* x, long k,
                         const float* invj, std::uint8_t* qdst,
                         std::int32_t* colsum) {
  const long K = s.kernel, ohn = s.oh(), own = s.ow(), sp = ohn * own;
  const long c = k / (K * K), kh = (k / K) % K, kw = k % K;
  for (long i = 0; i < s.n; ++i) {
    const float* pl = x + (i * s.in_c + c) * s.h * s.w;
    for (long oy = 0; oy < ohn; ++oy) {
      const long iy = oy * s.stride + kh - s.pad;
      const long base = i * sp + oy * own;
      std::uint8_t* dst = qdst + base;
      if (iy < 0 || iy >= s.h) {  // whole row in the padding ring: level 0
        std::memset(dst, 128, static_cast<std::size_t>(own));
        continue;
      }
      const float* row = pl + iy * s.w;
      const float* iv = invj + base;
      std::int32_t* cs = colsum != nullptr ? colsum + base : nullptr;
      if (s.stride == 1) {
        const long x0 = kw - s.pad;  // ix = ox + x0
        const long lo = std::clamp(-x0, 0L, own);
        const long hi = std::clamp(s.w - x0, lo, own);
        if (lo > 0) std::memset(dst, 128, static_cast<std::size_t>(lo));
        if (hi > lo) {
          quantize_row_u8_cols(row + x0 + lo, hi - lo, iv + lo, dst + lo,
                               cs != nullptr ? cs + lo : nullptr);
        }
        if (hi < own) {
          std::memset(dst + hi, 128, static_cast<std::size_t>(own - hi));
        }
      } else {
        for (long ox = 0; ox < own; ++ox) {
          const long ix = ox * s.stride + kw - s.pad;
          if (ix < 0 || ix >= s.w) {
            dst[ox] = 128;
            continue;
          }
          const long p =
              std::clamp(std::lrintf(row[ix] * iv[ox]), -127L, 127L);
          dst[ox] = static_cast<std::uint8_t>(p + 128);
          if (cs != nullptr) cs[ox] += static_cast<std::int32_t>(p);
        }
      }
    }
  }
}

#else  // !BER_QGEMM_VNNI

long round_level(float x, float inv) {
  const long v = std::lrintf(x * inv);
  return std::clamp(v, -127L, 127L);
}

#endif  // BER_QGEMM_VNNI

// y [rows, n] (ld = n) = W levels x quantized activations + epilogue, with
// the activation matrix described by strides: X'(k, j) = x[k*xs_k + j*xs_j]
// for k in [0, cols), j in [0, n). Conv passes the column matrix directly
// (xs_k = n, xs_j = 1); the Linear wrapper passes its input transposed
// (xs_k = 1, xs_j = cols) and transposes the channel-major result back.
void qgemm_core(const QWeightView& w, long n, const float* x, long xs_k,
                long xs_j, float* y, const QEpilogue& ep, Arena& arena) {
  const long k4 = (w.cols + 3) / 4;
  const long kp = k4 * 4;
  const bool need_colsum = w.shift != 0.0f;

  // Per-column symmetric activation scales (see the file header): colmax[j]
  // = absmax over x[:, j], invj[j] = 127/colmax, and the writeback scales
  // swj = slope*sx_j, scj = shift*sx_j folded once up front.
  float* colmax = arena.alloc(static_cast<std::size_t>(n));
  if (xs_j == 1) {
    std::memset(colmax, 0, sizeof(float) * static_cast<std::size_t>(n));
#if BER_QGEMM_VNNI
    for (long k = 0; k < w.cols; ++k) {
      const float* xk = x + k * xs_k;
      for (long t = 0; t < n; t += 16) {
        const long rem = n - t;
        const __mmask16 mask =
            rem >= 16 ? static_cast<__mmask16>(0xFFFF)
                      : static_cast<__mmask16>((1u << rem) - 1u);
        const __m512 cv = _mm512_maskz_loadu_ps(mask, colmax + t);
        const __m512 xv = _mm512_abs_ps(_mm512_maskz_loadu_ps(mask, xk + t));
        _mm512_mask_storeu_ps(colmax + t, mask, _mm512_max_ps(cv, xv));
      }
    }
#else
    for (long k = 0; k < w.cols; ++k) {
      const float* xk = x + k * xs_k;
      for (long j = 0; j < n; ++j) {
        colmax[j] = std::max(colmax[j], std::fabs(xk[j]));
      }
    }
#endif
  } else {
    for (long j = 0; j < n; ++j) colmax[j] = absmax(x + j * xs_j, w.cols);
  }
  float* invj = arena.alloc(static_cast<std::size_t>(n));
  float* swj = arena.alloc(static_cast<std::size_t>(n));
  float* scj =
      need_colsum ? arena.alloc(static_cast<std::size_t>(n)) : nullptr;
  compute_scales(w, colmax, n, invj, swj, scj);

  const std::int8_t* wq = pad_weights(w, k4, arena);
  std::int32_t* colsum =
      need_colsum ? arena.alloc_i32(static_cast<std::size_t>(n)) : nullptr;

#if BER_QGEMM_VNNI
  const long nblocks = (n + kQNR - 1) / kQNR;
  std::uint8_t* xpack = arena.alloc_bytes(
      static_cast<std::size_t>(nblocks * k4 * kQNR * 4));
  if (xs_j == 1) {
    // Row-major source (conv column matrix): quantize 4 k-rows at a time
    // and interleave them into the panels' dword lanes.
    std::uint8_t* qrow = arena.alloc_bytes(static_cast<std::size_t>(4 * n));
    if (colsum) std::memset(colsum, 0, sizeof(std::int32_t) *
                                           static_cast<std::size_t>(n));
    for (long ki = 0; ki < k4; ++ki) {
      for (long kk = 0; kk < 4; ++kk) {
        const long k = ki * 4 + kk;
        std::uint8_t* dst = qrow + kk * n;
        if (k < w.cols) {
          quantize_row_u8_cols(x + k * xs_k, n, invj, dst, colsum);
        } else {
          std::memset(dst, 128, static_cast<std::size_t>(n));
        }
      }
      pack_qrows(qrow, n, ki, k4, xpack);
    }
  } else {
    // Column-strided source (transposed Linear input): each j is a
    // k-contiguous row of the original X, so quantize it in one sweep.
    // Columns are packed 16 at a time so every panel write is a full,
    // sequential 64-byte line (a per-column dword scatter touches k4 cache
    // lines per column and dominated the small-GEMM profile). Pad columns
    // (j >= n) get level 0 (biased 128), so no up-front panel memset.
    const long kp16 = ((kp + 15) / 16) * 16;
    std::uint8_t* qrow16 =
        arena.alloc_bytes(static_cast<std::size_t>(16 * kp16));
    const long stride = kp16 / 4;  // dwords per quantized row
    for (long g = 0; g < nblocks * kQNR; g += 16) {
      for (long l = 0; l < 16; ++l) {
        const long j = g + l;
        std::uint8_t* row = qrow16 + l * kp16;
        if (j < n) {
          const std::int64_t psum =
              quantize_row_u8(x + j * xs_j, w.cols, kp, invj[j], row);
          if (colsum) colsum[j] = static_cast<std::int32_t>(psum);
        } else {
          std::memset(row, 128, static_cast<std::size_t>(kp));
        }
      }
      std::uint32_t* base = reinterpret_cast<std::uint32_t*>(
          xpack + (g / kQNR) * k4 * (kQNR * 4) + (g % kQNR) * 4);
      const std::uint32_t* src =
          reinterpret_cast<const std::uint32_t*>(qrow16);
      for (long ki = 0; ki < k4; ++ki) {
        alignas(64) std::uint32_t line[16];
        for (long l = 0; l < 16; ++l) line[l] = src[l * stride + ki];
        std::memcpy(base + ki * kQNR, line, 64);
      }
    }
  }

  // Column blocks outer: one packed panel (k4 * 256B) stays L1-resident
  // across every row tile, so the multi-megabyte packed matrix is streamed
  // from memory once, not rows/kQMR times.
  for (long j0 = 0; j0 < n; j0 += kQNR) {
    const std::uint8_t* panel = xpack + (j0 / kQNR) * k4 * (kQNR * 4);
    for (long i0 = 0; i0 < w.rows; i0 += kQMR) {
      tile_vnni(wq, kp, k4, i0, std::min(kQMR, w.rows - i0), panel, j0, n,
                w.row_sums, colsum, swj, scj, ep, y, n);
    }
  }
#else
  // Scalar fallback: identical integers (same rounding, same int32 sums),
  // same writeback expression — only the instruction selection differs.
  std::int8_t* xq = reinterpret_cast<std::int8_t*>(
      arena.alloc_bytes(static_cast<std::size_t>(w.cols * n)));
  if (colsum) {
    std::memset(colsum, 0,
                sizeof(std::int32_t) * static_cast<std::size_t>(n));
  }
  for (long k = 0; k < w.cols; ++k) {
    for (long j = 0; j < n; ++j) {
      const long p = round_level(x[k * xs_k + j * xs_j], invj[j]);
      xq[k * n + j] = static_cast<std::int8_t>(p);
      if (colsum) colsum[j] += static_cast<std::int32_t>(p);
    }
  }
  std::int32_t* accrow = arena.alloc_i32(static_cast<std::size_t>(n));
  for (long i = 0; i < w.rows; ++i) {
    std::memset(accrow, 0, sizeof(std::int32_t) * static_cast<std::size_t>(n));
    const std::int8_t* qi = w.q + i * w.cols;
    for (long k = 0; k < w.cols; ++k) {
      const std::int32_t qv = qi[k];
      if (qv == 0) continue;
      const std::int8_t* xk = xq + k * n;
      for (long j = 0; j < n; ++j) accrow[j] += qv * xk[j];
    }
    const float b = ep.bias != nullptr ? ep.bias[i] : 0.0f;
    float* yi = y + i * n;
    for (long j = 0; j < n; ++j) {
      float v = static_cast<float>(accrow[j]) * swj[j];
      if (colsum) v = std::fma(scj[j], static_cast<float>(colsum[j]), v);
      if (ep.bias != nullptr) v += b;
      if (ep.relu && !(v > 0.0f)) v = 0.0f;
      yi[j] = v;
    }
  }
  (void)wq;
  (void)kp;
#endif
}

}  // namespace

void BlockedBackend::qgemm(const QWeightView& w, long n, const float* x,
                           float* y, const QEpilogue& ep) const {
  if (!w.has_int8() || w.rows <= 0 || w.cols <= 0 || n <= 0) {
    Backend::qgemm(w, n, x, y, ep);  // scalar oracle (bits > 8 / degenerate)
    return;
  }
  count_qgemm(*this, w, n);
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  qgemm_core(w, n, x, /*xs_k=*/n, /*xs_j=*/1, y, ep, arena);
}

void BlockedBackend::qgemm_bt(const QWeightView& w, long m, const float* x,
                              float* y, const QEpilogue& ep) const {
  if (!w.has_int8() || w.rows <= 0 || w.cols <= 0 || m <= 0) {
    Backend::qgemm_bt(w, m, x, y, ep);
    return;
  }
  count_qgemm(*this, w, m);
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  // Run the channel-major core on X^T (a stride choice, not a copy), then
  // transpose the [rows, m] result into the [m, rows] output. The epilogue
  // is per output channel, i.e. per core row, so it is already applied.
  float* tmp = arena.alloc(static_cast<std::size_t>(w.rows * m));
  qgemm_core(w, m, x, /*xs_k=*/1, /*xs_j=*/w.cols, tmp, ep, arena);
  // Blocked transpose: both the 32-row source window and the 32-column
  // destination window stay cache-resident.
  constexpr long kTB = 32;
  for (long r0 = 0; r0 < m; r0 += kTB) {
    const long rb = std::min(kTB, m - r0);
    for (long i0 = 0; i0 < w.rows; i0 += kTB) {
      const long ib = std::min(kTB, w.rows - i0);
      for (long i = i0; i < i0 + ib; ++i) {
        const float* src = tmp + i * m;
        for (long r = r0; r < r0 + rb; ++r) y[r * w.rows + i] = src[r];
      }
    }
  }
}

void BlockedBackend::qconv(const ConvShape& s, const float* x,
                           const QWeightView& w, const QEpilogue& ep,
                           float* y) const {
#if BER_QGEMM_VNNI
  const long ohn = s.oh(), own = s.ow();
  const long sp = ohn * own, ld = s.n * sp;
  if (!w.has_int8() || w.rows <= 0 || w.cols <= 0 || ld <= 0 ||
      w.cols != s.cols_k() || w.rows != s.out_c) {
    Backend::qconv(s, x, w, ep, y);  // scalar oracle (bits > 8 / degenerate)
    return;
  }
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  const long k4 = (w.cols + 3) / 4;
  const long kp = k4 * 4;
  const long K = s.kernel;
  const bool need_colsum = w.shift != 0.0f;

  // Per-column |x| maxima without the column matrix: a column's patch max
  // is a K x K window max over the channel-max plane (separable: horizontal
  // pass over input rows, then vertical over window rows). O(N*(C+K)*H*W)
  // reads of the input vs O(N*C*K*K*H*W) of the lowered matrix.
  float* colmax = arena.alloc(static_cast<std::size_t>(ld));
  {
    float* plane = arena.alloc(static_cast<std::size_t>(s.h * s.w));
    float* hmax = arena.alloc(static_cast<std::size_t>(s.h * own));
    for (long i = 0; i < s.n; ++i) {
      channel_absmax(x + i * s.in_c * s.h * s.w, s.in_c, s.h * s.w, plane);
      for (long iy = 0; iy < s.h; ++iy) {
        const float* pr = plane + iy * s.w;
        float* hr = hmax + iy * own;
        for (long ox = 0; ox < own; ++ox) {
          const long x0 = ox * s.stride - s.pad;
          float m = 0.0f;
          for (long dx = 0; dx < K; ++dx) {
            const long ix = x0 + dx;
            if (ix >= 0 && ix < s.w) m = std::max(m, pr[ix]);
          }
          hr[ox] = m;
        }
      }
      float* cm = colmax + i * sp;
      for (long oy = 0; oy < ohn; ++oy) {
        const long y0 = oy * s.stride - s.pad;
        float* cr = cm + oy * own;
        std::memset(cr, 0, sizeof(float) * static_cast<std::size_t>(own));
        for (long dy = 0; dy < K; ++dy) {
          const long iy = y0 + dy;
          if (iy < 0 || iy >= s.h) continue;
          const float* hr = hmax + iy * own;
          for (long ox = 0; ox < own; ++ox) {
            cr[ox] = std::max(cr[ox], hr[ox]);
          }
        }
      }
    }
  }
  float* invj = arena.alloc(static_cast<std::size_t>(ld));
  float* swj = arena.alloc(static_cast<std::size_t>(ld));
  float* scj =
      need_colsum ? arena.alloc(static_cast<std::size_t>(ld)) : nullptr;
  compute_scales(w, colmax, ld, invj, swj, scj);

  // Quantize + pack straight from x, 4 k-rows per panel dword group.
  const std::int8_t* wq = pad_weights(w, k4, arena);
  std::int32_t* colsum =
      need_colsum ? arena.alloc_i32(static_cast<std::size_t>(ld)) : nullptr;
  if (colsum != nullptr) {
    std::memset(colsum, 0, sizeof(std::int32_t) * static_cast<std::size_t>(ld));
  }
  const long nblocks = (ld + kQNR - 1) / kQNR;
  std::uint8_t* xpack =
      arena.alloc_bytes(static_cast<std::size_t>(nblocks * k4 * kQNR * 4));
  std::uint8_t* qrow = arena.alloc_bytes(static_cast<std::size_t>(4 * ld));
  for (long ki = 0; ki < k4; ++ki) {
    for (long kk = 0; kk < 4; ++kk) {
      const long k = ki * 4 + kk;
      std::uint8_t* dst = qrow + kk * ld;
      if (k < w.cols) {
        quantize_im2col_row(s, x, k, invj, dst, colsum);
      } else {
        std::memset(dst, 128, static_cast<std::size_t>(ld));
      }
    }
    pack_qrows(qrow, ld, ki, k4, xpack);
  }

  // One batch-wide GEMM into channel-major tmp [out_c, N*sp], panels
  // streamed once (column blocks outer, as in qgemm_core), then the
  // coalesced writeback to [N, out_c, sp]. The epilogue already ran per
  // channel row inside the tiles.
  float* tmp = arena.alloc(static_cast<std::size_t>(w.rows * ld));
  for (long j0 = 0; j0 < ld; j0 += kQNR) {
    const std::uint8_t* panel = xpack + (j0 / kQNR) * k4 * (kQNR * 4);
    for (long i0 = 0; i0 < w.rows; i0 += kQMR) {
      tile_vnni(wq, kp, k4, i0, std::min(kQMR, w.rows - i0), panel, j0, ld,
                w.row_sums, colsum, swj, scj, ep, tmp, ld);
    }
  }
  for (long i = 0; i < s.n; ++i) {
    for (long c = 0; c < s.out_c; ++c) {
      std::memcpy(y + (i * s.out_c + c) * sp, tmp + c * ld + i * sp,
                  sizeof(float) * static_cast<std::size_t>(sp));
    }
  }
#else
  // Without VNNI the fused packing buys nothing over the oracle's per-image
  // lowering (which dispatches back into the scalar qgemm fallback above).
  Backend::qconv(s, x, w, ep, y);
#endif
}

}  // namespace ber::kernels
