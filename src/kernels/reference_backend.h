// The reference backend: delegates to the original tensor/ops.h loops.
//
// This is the determinism anchor of the repo — bit-exact with the seed
// implementation, so every fixed-seed paper artifact reproduces unchanged.
// Registered as "reference" and used as the process default.
#pragma once

#include "kernels/backend.h"

namespace ber::kernels {

class ReferenceBackend final : public Backend {
 public:
  std::string name() const override { return "reference"; }
  void gemm(long m, long n, long k, float alpha, const float* a,
            const float* b, float beta, float* c) const override;
  void gemm_at(long m, long n, long k, float alpha, const float* a,
               const float* b, float beta, float* c) const override;
  void gemm_bt(long m, long n, long k, float alpha, const float* a,
               const float* b, float beta, float* c) const override;
  // Per-image conv lowering: matches the seed Conv2d loop exactly.
  bool coalesced_conv() const override { return false; }
};

}  // namespace ber::kernels
