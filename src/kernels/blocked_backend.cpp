// NOTE: this translation unit is compiled with -march=native when the
// compiler supports it (see CMakeLists.txt) so the micro-kernel can use the
// widest vectors the build machine has. Nothing else in the library gets
// that flag: the reference kernels must keep the exact seed codegen.
#include "kernels/blocked_backend.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "core/parallel.h"
#include "kernels/arena.h"
#include "obs/kernel_stats.h"
#include "obs/metrics.h"

namespace ber::kernels {

namespace {

// Register tile: MR x NR accumulators must fit the register file together
// with one A broadcast and NR/vector-width B loads.
#if defined(__AVX512F__)
constexpr long kMR = 8, kNR = 32;  // 16 zmm accumulators
#elif defined(__AVX__)
constexpr long kMR = 6, kNR = 16;  // 12 ymm accumulators
#else
constexpr long kMR = 4, kNR = 8;  // 8 xmm accumulators (baseline SSE2)
#endif

// Cache blocking: A block [MC x KC] targets L2, B panel [KC x NC] L3.
constexpr long kMC = 120;   // multiple of every kMR above
constexpr long kKC = 256;
constexpr long kNC = 2048;  // multiple of every kNR above

// Below this many FLOPs (2mnk) sharding costs more than it saves: thread
// spawn + join in core/parallel is ~10us.
constexpr double kShardMinFlops = 8e6;

// Packs an [mc x kc] block of A into kMR-row panels, zero-padded to kMR:
// panel i0 stores, for each p, the kMR values A(i0..i0+MR, p) contiguously.
// A(i, p) of the block is src[i*i_stride + p*p_stride].
void pack_a(const float* src, long i_stride, long p_stride, long mc, long kc,
            float* __restrict dst) {
  for (long i0 = 0; i0 < mc; i0 += kMR) {
    const long ib = std::min(kMR, mc - i0);
    const float* s = src + i0 * i_stride;
    for (long p = 0; p < kc; ++p) {
      for (long i = 0; i < ib; ++i) dst[i] = s[i * i_stride + p * p_stride];
      for (long i = ib; i < kMR; ++i) dst[i] = 0.0f;
      dst += kMR;
    }
  }
}

// Packs a [kc x nc] block of B into kNR-column panels, zero-padded to kNR:
// panel j0 stores, for each p, the kNR values B(p, j0..j0+NR) contiguously.
// B(p, j) of the block is src[p*p_stride + j*j_stride].
void pack_b(const float* src, long p_stride, long j_stride, long kc, long nc,
            float* __restrict dst) {
  for (long j0 = 0; j0 < nc; j0 += kNR) {
    const long jb = std::min(kNR, nc - j0);
    const float* s = src + j0 * j_stride;
    for (long p = 0; p < kc; ++p) {
      const float* sp = s + p * p_stride;
      if (j_stride == 1) {
        std::memcpy(dst, sp, sizeof(float) * static_cast<std::size_t>(jb));
      } else {
        for (long j = 0; j < jb; ++j) dst[j] = sp[j * j_stride];
      }
      for (long j = jb; j < kNR; ++j) dst[j] = 0.0f;
      dst += kNR;
    }
  }
}

// C[0..mr, 0..nr] += alpha * sum_p ap[p][:] (x) bp[p][:]. The packed panels
// are zero-padded, so the hot loop always runs the full kMR x kNR tile with
// compile-time trip counts; only the writeback respects the edges.
void micro_kernel(long kc, const float* __restrict ap,
                  const float* __restrict bp, float* c, long ldc, long mr,
                  long nr, float alpha) {
  float acc[kMR][kNR];
  for (long i = 0; i < kMR; ++i) {
    for (long j = 0; j < kNR; ++j) acc[i][j] = 0.0f;
  }
  for (long p = 0; p < kc; ++p) {
    const float* __restrict a = ap + p * kMR;
    const float* __restrict b = bp + p * kNR;
    for (long i = 0; i < kMR; ++i) {
      const float av = a[i];
      for (long j = 0; j < kNR; ++j) acc[i][j] += av * b[j];
    }
  }
  for (long i = 0; i < mr; ++i) {
    float* __restrict ci = c + i * ldc;
    for (long j = 0; j < nr; ++j) ci[j] += alpha * acc[i][j];
  }
}

// The ic/jr/ir loops of the blocked nest over C rows [m0, m1) for one
// already-packed [kc x nc] B panel. A panels are packed from this thread's
// arena; shards own disjoint C rows, so no synchronization.
void gemm_rows(long m0, long m1, long kc, const float* a, long a_is,
               long a_ps, const float* bpack, float* c, long ldc, long jc,
               long nc, float alpha, std::atomic<std::uint64_t>* pack_ns) {
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  float* apack = arena.alloc(static_cast<std::size_t>(kMC * kKC));
  for (long ic = m0; ic < m1; ic += kMC) {
    const long mc = std::min(kMC, m1 - ic);
    // Pack-time attribution: two clock reads per [MC x KC] block, far off
    // the micro-kernel's inner loops.
    const std::uint64_t t0 = obs::monotonic_ns();
    pack_a(a + ic * a_is, a_is, a_ps, mc, kc, apack);
    pack_ns->fetch_add(obs::monotonic_ns() - t0, std::memory_order_relaxed);
    for (long jr = 0; jr < nc; jr += kNR) {
      const long nr = std::min(kNR, nc - jr);
      const float* bp = bpack + (jr / kNR) * (kc * kNR);
      for (long ir = 0; ir < mc; ir += kMR) {
        micro_kernel(kc, apack + (ir / kMR) * (kc * kMR), bp,
                     c + (ic + ir) * ldc + jc + jr, ldc,
                     std::min(kMR, mc - ir), nr, alpha);
      }
    }
  }
}

}  // namespace

long BlockedBackend::mr() { return kMR; }
long BlockedBackend::nr() { return kNR; }

void BlockedBackend::run(long m, long n, long k, float alpha, const float* a,
                         long a_is, long a_ps, const float* b, long b_ps,
                         long b_js, float beta, float* c) const {
  // Same beta semantics as the reference kernels.
  if (beta == 0.0f) {
    std::memset(c, 0, sizeof(float) * static_cast<std::size_t>(m * n));
  } else if (beta != 1.0f) {
    for (long i = 0; i < m * n; ++i) c[i] *= beta;
  }
  if (m <= 0 || n <= 0 || k <= 0 || alpha == 0.0f) return;

  obs::KernelStats& kstats = this->kstats();
  kstats.gemm_calls->add(1);
  kstats.gemm_flops->add(2ull * static_cast<unsigned long long>(m) *
                         static_cast<unsigned long long>(n) *
                         static_cast<unsigned long long>(k));
  std::atomic<std::uint64_t> pack_ns{0};

  // Sharding geometry. Inside an evaluator/serving worker (coarse-grained
  // parallelism already saturates the cores) auto mode stays serial instead
  // of oversubscribing T^2; an explicit thread count is always honored.
  const int threads =
      threads_ > 0 ? threads_
                   : (in_parallel_worker() ? 1 : default_threads());
  const double flops = 2.0 * static_cast<double>(m) * n * k;
  const bool threaded =
      threads > 1 && flops >= kShardMinFlops && m >= 2 * kMR;
  // Contiguous row shards rounded to the register tile; each C element's
  // accumulation order is shard-independent (the pc loop below is outside
  // the row split), so results are bit-identical for any shard count.
  const long per = (m + threads - 1) / threads;
  const long step = ((per + kMR - 1) / kMR) * kMR;
  const long shards = (m + step - 1) / step;

  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  const long nc_cap = std::min(kNC, ((n + kNR - 1) / kNR) * kNR);
  float* bpack = arena.alloc(static_cast<std::size_t>(kKC * nc_cap));

  for (long jc = 0; jc < n; jc += kNC) {
    const long nc = std::min(kNC, n - jc);
    for (long pc = 0; pc < k; pc += kKC) {
      const long kc = std::min(kKC, k - pc);
      // B is packed ONCE per (jc, pc) panel, on the caller; row shards only
      // read it (arena chunks never move, so the pointer stays valid).
      const std::uint64_t t0 = obs::monotonic_ns();
      pack_b(b + pc * b_ps + jc * b_js, b_ps, b_js, kc, nc, bpack);
      pack_ns.fetch_add(obs::monotonic_ns() - t0, std::memory_order_relaxed);
      const float* a_panel = a + pc * a_ps;
      if (threaded) {
        parallel_for(shards, threads, [&](std::int64_t s) {
          const long lo = s * step;
          const long hi = std::min(m, lo + step);
          gemm_rows(lo, hi, kc, a_panel, a_is, a_ps, bpack, c, n, jc, nc,
                    alpha, &pack_ns);
        });
      } else {
        gemm_rows(0, m, kc, a_panel, a_is, a_ps, bpack, c, n, jc, nc, alpha,
                  &pack_ns);
      }
    }
  }
  kstats.pack_ns->add(pack_ns.load(std::memory_order_relaxed));
}

void BlockedBackend::gemm(long m, long n, long k, float alpha, const float* a,
                          const float* b, float beta, float* c) const {
  run(m, n, k, alpha, a, /*a_is=*/k, /*a_ps=*/1, b, /*b_ps=*/n, /*b_js=*/1,
      beta, c);
}

void BlockedBackend::gemm_at(long m, long n, long k, float alpha,
                             const float* a, const float* b, float beta,
                             float* c) const {
  // A stored [k,m]: A^T(i,p) = a[p*m + i].
  run(m, n, k, alpha, a, /*a_is=*/1, /*a_ps=*/m, b, /*b_ps=*/n, /*b_js=*/1,
      beta, c);
}

void BlockedBackend::gemm_bt(long m, long n, long k, float alpha,
                             const float* a, const float* b, float beta,
                             float* c) const {
  // B stored [n,k]: B^T(p,j) = b[j*k + p].
  run(m, n, k, alpha, a, /*a_is=*/k, /*a_ps=*/1, b, /*b_ps=*/1, /*b_js=*/k,
      beta, c);
}

}  // namespace ber::kernels
