#include "kernels/conv.h"

#include <stdexcept>

#include "kernels/arena.h"
#include "obs/kernel_stats.h"
#include "tensor/ops.h"

namespace ber::kernels {

long ConvShape::oh() const { return conv_out_size(h, kernel, stride, pad); }
long ConvShape::ow() const { return conv_out_size(w, kernel, stride, pad); }

namespace {

// 1x1 / stride-1 / no-pad convolutions need no column matrix at all: the
// im2col of image i IS its input plane [C, H*W], so the GEMM can read x
// directly. Only taken in inference mode (no cache to fill) — it elides the
// whole copy, and the GEMM consumes the exact bytes the copy would have
// produced, so results are bit-identical to the lowered path under every
// backend (parity-pinned in tests/test_kernels.cpp).
bool is_pointwise(const ConvShape& s) {
  return s.kernel == 1 && s.stride == 1 && s.pad == 0;
}

void forward_pointwise(const Backend& bk, const ConvShape& s, const float* x,
                       const float* weight, const float* bias, float* y) {
  const long spatial = s.spatial();
  for (long i = 0; i < s.n; ++i) {
    bk.gemm(s.out_c, spatial, s.in_c, 1.0f, weight,
            x + i * s.in_c * spatial, 0.0f, y + i * s.out_c * spatial);
    if (bias) {
      for (long c = 0; c < s.out_c; ++c) {
        float* plane = y + (i * s.out_c + c) * spatial;
        const float b = bias[c];
        for (long p = 0; p < spatial; ++p) plane[p] += b;
      }
    }
  }
}

// The seed Conv2d loop, kept order-identical so the reference backend stays
// bit-exact: per image, im2col then one [out_c, spatial] GEMM then bias.
void forward_per_image(const Backend& bk, const ConvShape& s, const float* x,
                       const float* weight, const float* bias, float* y,
                       Tensor* cache) {
  const long k = s.cols_k(), spatial = s.spatial();
  bk.kstats().im2col_bytes->add(static_cast<unsigned long long>(s.n) * k *
                                spatial * sizeof(float));
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  float* scratch = cache ? nullptr
                         : arena.alloc(static_cast<std::size_t>(k * spatial));
  for (long i = 0; i < s.n; ++i) {
    float* col = cache ? cache->data() + i * k * spatial : scratch;
    im2col(x + i * s.in_c * s.h * s.w, s.in_c, s.h, s.w, s.kernel, s.kernel,
           s.stride, s.pad, col);
    bk.gemm(s.out_c, spatial, k, 1.0f, weight, col, 0.0f,
            y + i * s.out_c * spatial);
    if (bias) {
      for (long c = 0; c < s.out_c; ++c) {
        float* plane = y + (i * s.out_c + c) * spatial;
        const float b = bias[c];
        for (long p = 0; p < spatial; ++p) plane[p] += b;
      }
    }
  }
}

// One im2col + one GEMM across the whole batch. The GEMM result comes out
// [out_c, N*spatial] (channel-major); the writeback transposes it into the
// [N, out_c, spatial] output layout and folds the bias in.
void forward_coalesced(const Backend& bk, const ConvShape& s, const float* x,
                       const float* weight, const float* bias, float* y,
                       Tensor* cache) {
  const long k = s.cols_k(), spatial = s.spatial();
  const long ld = s.n * spatial;
  bk.kstats().im2col_bytes->add(static_cast<unsigned long long>(k) * ld *
                                sizeof(float));
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  float* cols =
      cache ? cache->data() : arena.alloc(static_cast<std::size_t>(k * ld));
  for (long i = 0; i < s.n; ++i) {
    im2col_ld(x + i * s.in_c * s.h * s.w, s.in_c, s.h, s.w, s.kernel,
              s.kernel, s.stride, s.pad, cols + i * spatial, ld);
  }
  float* tmp = arena.alloc(static_cast<std::size_t>(s.out_c * ld));
  bk.gemm(s.out_c, ld, k, 1.0f, weight, cols, 0.0f, tmp);
  for (long i = 0; i < s.n; ++i) {
    for (long c = 0; c < s.out_c; ++c) {
      const float* src = tmp + c * ld + i * spatial;
      float* dst = y + (i * s.out_c + c) * spatial;
      const float b = bias ? bias[c] : 0.0f;
      for (long p = 0; p < spatial; ++p) dst[p] = src[p] + b;
    }
  }
}

void backward_per_image(const Backend& bk, const ConvShape& s,
                        const Tensor& cols, const float* grad_out,
                        const float* weight, float* grad_weight,
                        float* grad_bias, float* grad_in) {
  const long k = s.cols_k(), spatial = s.spatial();
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  float* grad_col = arena.alloc(static_cast<std::size_t>(k * spatial));
  for (long i = 0; i < s.n; ++i) {
    const float* go = grad_out + i * s.out_c * spatial;
    const float* col = cols.data() + i * k * spatial;
    // dW [out, k] += gO [out, spatial] x col^T [spatial, k]
    bk.gemm_bt(s.out_c, k, spatial, 1.0f, go, col, 1.0f, grad_weight);
    if (grad_bias) {
      for (long c = 0; c < s.out_c; ++c) {
        const float* plane = go + c * spatial;
        float acc = 0.0f;
        for (long p = 0; p < spatial; ++p) acc += plane[p];
        grad_bias[c] += acc;
      }
    }
    // dcol [k, spatial] = W^T [k, out] x gO [out, spatial]
    bk.gemm_at(k, spatial, s.out_c, 1.0f, weight, go, 0.0f, grad_col);
    col2im(grad_col, s.in_c, s.h, s.w, s.kernel, s.kernel, s.stride, s.pad,
           grad_in + i * s.in_c * s.h * s.w);
  }
}

void backward_coalesced(const Backend& bk, const ConvShape& s,
                        const Tensor& cols, const float* grad_out,
                        const float* weight, float* grad_weight,
                        float* grad_bias, float* grad_in) {
  const long k = s.cols_k(), spatial = s.spatial();
  const long ld = s.n * spatial;
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  // Gather grad_out [N, out_c, spatial] into channel-major [out_c, N*spatial]
  // so the whole batch is two GEMMs.
  float* go_all = arena.alloc(static_cast<std::size_t>(s.out_c * ld));
  for (long i = 0; i < s.n; ++i) {
    for (long c = 0; c < s.out_c; ++c) {
      const float* src = grad_out + (i * s.out_c + c) * spatial;
      float* dst = go_all + c * ld + i * spatial;
      for (long p = 0; p < spatial; ++p) dst[p] = src[p];
    }
  }
  // dW [out, k] += gO_all [out, N*spatial] x cols^T [N*spatial, k]
  bk.gemm_bt(s.out_c, k, ld, 1.0f, go_all, cols.data(), 1.0f, grad_weight);
  if (grad_bias) {
    for (long c = 0; c < s.out_c; ++c) {
      const float* row = go_all + c * ld;
      float acc = 0.0f;
      for (long p = 0; p < ld; ++p) acc += row[p];
      grad_bias[c] += acc;
    }
  }
  // dcol [k, N*spatial] = W^T [k, out] x gO_all [out, N*spatial]
  float* grad_col = arena.alloc(static_cast<std::size_t>(k * ld));
  bk.gemm_at(k, ld, s.out_c, 1.0f, weight, go_all, 0.0f, grad_col);
  for (long i = 0; i < s.n; ++i) {
    col2im_ld(grad_col + i * spatial, s.in_c, s.h, s.w, s.kernel, s.kernel,
              s.stride, s.pad, grad_in + i * s.in_c * s.h * s.w, ld);
  }
}

// Quantized-weight lowerings mirror the float ones above, with the bias /
// ReLU epilogue fused into the qgemm writeback (so the coalesced transpose
// below is a plain copy — the epilogue already ran per channel row, which
// is elementwise-identical to folding it during the transpose).
void forward_quant_pointwise(const Backend& bk, const ConvShape& s,
                             const float* x, const QWeightView& w,
                             const QEpilogue& ep, float* y) {
  const long spatial = s.spatial();
  for (long i = 0; i < s.n; ++i) {
    bk.qgemm(w, spatial, x + i * s.in_c * spatial,
             y + i * s.out_c * spatial, ep);
  }
}

}  // namespace

// Default quantized conv: per-image lowering + qgemm, the oracle every
// backend's override must match (bit-exactly under the scalar-oracle qgemm,
// up to activation quantization otherwise).
void Backend::qconv(const ConvShape& s, const float* x, const QWeightView& w,
                    const QEpilogue& ep, float* y) const {
  const long k = s.cols_k(), spatial = s.spatial();
  kstats().im2col_bytes->add(static_cast<unsigned long long>(s.n) * k *
                             spatial * sizeof(float));
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  float* col = arena.alloc(static_cast<std::size_t>(k * spatial));
  for (long i = 0; i < s.n; ++i) {
    im2col(x + i * s.in_c * s.h * s.w, s.in_c, s.h, s.w, s.kernel, s.kernel,
           s.stride, s.pad, col);
    qgemm(w, spatial, col, y + i * s.out_c * spatial, ep);
  }
}

void conv2d_forward_quant(const Backend& bk, const ConvShape& s,
                          const float* x, const QWeightView& w,
                          const QEpilogue& ep, float* y) {
  obs::KernelStats& ks = bk.kstats();
  ks.qconv_calls->add(1);
  ks.qconv_images->add(static_cast<unsigned long long>(s.n));
  if (is_pointwise(s)) {
    forward_quant_pointwise(bk, s, x, w, ep, y);
  } else {
    bk.qconv(s, x, w, ep, y);
  }
}

void conv2d_forward(const Backend& bk, const ConvShape& s, const float* x,
                    const float* weight, const float* bias, float* y,
                    Tensor* cols_cache) {
  obs::KernelStats& ks = bk.kstats();
  ks.conv_calls->add(1);
  ks.conv_images->add(static_cast<unsigned long long>(s.n));
  if (cols_cache == nullptr && is_pointwise(s)) {
    // Inference-mode 1x1 conv: plain GEMM on the input, no im2col (and, for
    // coalesced backends, no channel-major writeback transpose either).
    // Training keeps the lowered paths — backward consumes the cache.
    forward_pointwise(bk, s, x, weight, bias, y);
    return;
  }
  if (bk.coalesced_conv()) {
    forward_coalesced(bk, s, x, weight, bias, y, cols_cache);
  } else {
    forward_per_image(bk, s, x, weight, bias, y, cols_cache);
  }
}

void conv2d_backward(const Backend& bk, const ConvShape& s, const Tensor& cols,
                     const float* grad_out, const float* weight,
                     float* grad_weight, float* grad_bias, float* grad_in) {
  // The cache layout tells us which lowering produced it: [N, k, spatial]
  // from the per-image path, [k, N*spatial] from the coalesced one.
  if (cols.dim() == 3) {
    backward_per_image(bk, s, cols, grad_out, weight, grad_weight, grad_bias,
                       grad_in);
  } else if (cols.dim() == 2) {
    backward_coalesced(bk, s, cols, grad_out, weight, grad_weight, grad_bias,
                       grad_in);
  } else {
    throw std::invalid_argument(
        "conv2d_backward: column cache has unexpected rank (was forward run "
        "in training mode?)");
  }
}

}  // namespace ber::kernels
