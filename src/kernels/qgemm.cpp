// Default (reference-oracle) implementations of the compute-on-codes GEMM
// surface. These decode the code words on the fly — with the exact
// quant/quantizer.h arithmetic — into arena scratch and run the reference
// float kernels, so the result is bit-identical to dequantizing the weights
// and running the unfused gemm + bias + ReLU passes. That property is what
// pins the int8 backends: any override must match this within its
// documented tolerance.
#include <cstddef>

#include "kernels/arena.h"
#include "kernels/backend.h"
#include "obs/kernel_stats.h"
#include "tensor/ops.h"

namespace ber::kernels {

namespace {

// Tallies only — never touches the math, so the oracle stays bit-exact.
inline void count_qgemm(const Backend& bk, long rows, long cols, long n) {
  obs::KernelStats& ks = bk.kstats();
  ks.qgemm_calls->add(1);
  ks.qgemm_flops->add(2ull * static_cast<unsigned long long>(rows) *
                      static_cast<unsigned long long>(cols) *
                      static_cast<unsigned long long>(n));
}

// Decodes the full weight matrix into arena scratch; byte-identical to
// ber::dequantize on the same codes.
const float* decode_weights(const QWeightView& w, Arena& arena) {
  const std::size_t n = static_cast<std::size_t>(w.rows * w.cols);
  float* wf = arena.alloc(n);
  for (std::size_t i = 0; i < n; ++i) {
    wf[i] = decode_code(w.codes[i], w.scheme, w.range);
  }
  return wf;
}

// Epilogue over channel-major y [rows, n]: the bias loop is the exact loop
// the conv lowering runs per output plane; ReLU clamps elementwise, so
// per-row application matches a whole-tensor pass element for element.
void epilogue_channel_major(float* y, long rows, long n, const QEpilogue& ep) {
  if (ep.bias == nullptr && !ep.relu) return;
  for (long c = 0; c < rows; ++c) {
    float* row = y + c * n;
    if (ep.bias) {
      const float b = ep.bias[c];
      for (long p = 0; p < n; ++p) row[p] += b;
    }
    if (ep.relu) {
      for (long p = 0; p < n; ++p) {
        if (!(row[p] > 0.0f)) row[p] = 0.0f;
      }
    }
  }
}

// Epilogue over batch-major y [m, rows]: the Linear bias loop.
void epilogue_batch_major(float* y, long m, long rows, const QEpilogue& ep) {
  if (ep.bias == nullptr && !ep.relu) return;
  for (long i = 0; i < m; ++i) {
    float* row = y + i * rows;
    if (ep.bias) {
      for (long j = 0; j < rows; ++j) row[j] += ep.bias[j];
    }
    if (ep.relu) {
      for (long j = 0; j < rows; ++j) {
        if (!(row[j] > 0.0f)) row[j] = 0.0f;
      }
    }
  }
}

}  // namespace

void Backend::qgemm(const QWeightView& w, long n, const float* x, float* y,
                    const QEpilogue& ep) const {
  count_qgemm(*this, w.rows, w.cols, n);
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  const float* wf = decode_weights(w, arena);
  ber::gemm(w.rows, n, w.cols, 1.0f, wf, x, 0.0f, y);
  epilogue_channel_major(y, w.rows, n, ep);
}

void Backend::qgemm_bt(const QWeightView& w, long m, const float* x, float* y,
                       const QEpilogue& ep) const {
  count_qgemm(*this, w.rows, w.cols, m);
  Arena& arena = tls_arena();
  ArenaScope scope(arena);
  const float* wf = decode_weights(w, arena);
  ber::gemm_bt(m, w.rows, w.cols, 1.0f, x, wf, 0.0f, y);
  epilogue_batch_major(y, m, w.rows, ep);
}

}  // namespace ber::kernels
