#include "kernels/arena.h"

#include <algorithm>

#include "obs/kernel_stats.h"

namespace ber::kernels {

float* Arena::alloc(std::size_t n) {
  for (Chunk& c : chunks_) {
    if (c.used + n <= c.buf.size()) {
      float* p = c.buf.data() + c.used;
      c.used += n;
      return p;
    }
  }
  // Grow geometrically so capacity converges after a few calls even when
  // shapes vary; existing chunks are left in place (stable pointers).
  Chunk c;
  c.buf.resize(std::max(n, 2 * capacity()));
  c.used = n;
  chunks_.push_back(std::move(c));
  // Growth is rare (capacity converges), so the high-water gauge update
  // stays off the steady-state alloc path.
  obs::note_arena_capacity(capacity() * sizeof(float));
  return chunks_.back().buf.data();
}

void Arena::reset() {
  for (Chunk& c : chunks_) c.used = 0;
}

std::size_t Arena::capacity() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.buf.size();
  return total;
}

std::size_t Arena::used() const {
  std::size_t total = 0;
  for (const Chunk& c : chunks_) total += c.used;
  return total;
}

ArenaScope::ArenaScope(Arena& arena) : arena_(arena) {
  saved_used_.reserve(arena_.chunks_.size());
  for (const Arena::Chunk& c : arena_.chunks_) saved_used_.push_back(c.used);
}

ArenaScope::~ArenaScope() {
  // Chunks present at entry rewind to their watermark; chunks added inside
  // the scope become fully reusable.
  for (std::size_t i = 0; i < arena_.chunks_.size(); ++i) {
    arena_.chunks_[i].used = i < saved_used_.size() ? saved_used_[i] : 0;
  }
}

Arena& tls_arena() {
  thread_local Arena arena;
  return arena;
}

}  // namespace ber::kernels
