// Pluggable compute backends: the GEMM (and conv-lowering policy) behind
// every forward/backward pass in the library.
//
// Two built-ins are always registered:
//   reference — the original tensor/ops.h loops, kept bit-exact with the
//               seed implementation. Paper benches and fixed-seed artifacts
//               pin this backend so published numbers never shift.
//   blocked   — cache-blocked, A/B-packed GEMM with an MR x NR register
//               micro-kernel and batch-coalesced conv lowering; same math,
//               different floating-point summation order (documented
//               tolerance: ~1e-4 relative vs reference).
//
// Selection, from lowest to highest precedence:
//   1. process-wide default: "reference", overridable once at startup via
//      the BER_BACKEND environment variable or set_default_backend();
//   2. per-call/thread override: ScopedBackend (RAII, nestable) — this is
//      how the evaluator / serving workers propagate their caller's choice
//      onto pool threads;
//   3. per-model preference: Sequential::set_backend() (see nn/sequential.h)
//      installs a scoped override for that model's forward/backward.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <vector>

#include "kernels/qweight.h"

namespace ber::obs {
struct KernelStats;
}

namespace ber::kernels {

struct ConvShape;

class Backend {
 public:
  virtual ~Backend() = default;

  virtual std::string name() const = 0;

  // This backend's profiling counters (obs/kernel_stats.h), labeled
  // {backend=name()}. Resolved lazily on first use and cached, so the GEMM
  // hot paths pay relaxed fetch_adds only — no lookup, no lock.
  obs::KernelStats& kstats() const;

  // C[m,n] = alpha * A[m,k] x B[k,n] + beta * C. Row-major, like
  // ber::gemm in tensor/ops.h.
  virtual void gemm(long m, long n, long k, float alpha, const float* a,
                    const float* b, float beta, float* c) const = 0;

  // C[m,n] = alpha * A^T x B + beta * C with A stored [k,m].
  virtual void gemm_at(long m, long n, long k, float alpha, const float* a,
                       const float* b, float beta, float* c) const = 0;

  // C[m,n] = alpha * A x B^T + beta * C with B stored [n,k].
  virtual void gemm_bt(long m, long n, long k, float alpha, const float* a,
                       const float* b, float beta, float* c) const = 0;

  // Whether convolution should lower the whole batch into one column matrix
  // ([in*k*k, N*OH*OW], one GEMM) instead of per-image lowering.
  virtual bool coalesced_conv() const { return false; }

  // ------------------------------------------ compute-on-codes surface ---
  //
  // Quantized-weight GEMM: the weight operand arrives as stored code words
  // (kernels/qweight.h) and the bias/ReLU epilogue is fused into the
  // writeback. The default implementations are the pinned scalar oracle:
  // decode every code with quant/quantizer.h's exact arithmetic into arena
  // scratch, then run the reference float loops — bit-exact with
  // dequantizing the weights and calling gemm()/gemm_bt() + bias + ReLU as
  // separate passes, for every scheme. Backends override these to compute
  // on the int8 levels directly (documented tolerance vs the oracle).

  // y[rows, n] = decode(W)[rows, cols] x X[cols, n] (+ epilogue) — the conv
  // lowering layout (X is a column matrix, y channel-major).
  virtual void qgemm(const QWeightView& w, long n, const float* x, float* y,
                     const QEpilogue& ep) const;

  // y[m, rows] = X[m, cols] x decode(W)^T (+ epilogue) — the Linear layout
  // (W stored [out, in] like nn/linear.h).
  virtual void qgemm_bt(const QWeightView& w, long m, const float* x,
                        float* y, const QEpilogue& ep) const;

  // Quantized-weight convolution forward: x [N, in_c, H, W] against the
  // weight code words, y [N, out_c, OH, OW], epilogue fused. The default
  // (kernels/conv.cpp) lowers per image and calls qgemm — the oracle for
  // every backend. Backends that quantize activations may override to fuse
  // lowering with activation quantization so the float column matrix is
  // never materialized; the override must produce exactly the bits qgemm on
  // the lowered columns would (the blocked one does — same per-column
  // scales, same integers).
  virtual void qconv(const ConvShape& s, const float* x, const QWeightView& w,
                     const QEpilogue& ep, float* y) const;

 private:
  // Cached kstats() resolution; the store is idempotent (kernel_stats
  // returns a process-stable reference), so a benign race just looks it up
  // twice.
  mutable std::atomic<obs::KernelStats*> kstats_{nullptr};
};

// ------------------------------------------------------------- registry ---

// Looks up a registered backend by name; throws std::invalid_argument with
// the known names on a miss. Returned reference lives for the process.
const Backend& backend(const std::string& name);

// Registered names, sorted.
std::vector<std::string> backend_names();

// Registers a custom backend under bk->name(); throws on duplicates.
void register_backend(std::unique_ptr<Backend> bk);

// ------------------------------------------- default + per-call override ---

// The process-wide default. First use latches BER_BACKEND from the
// environment (unknown values throw); falls back to "reference".
const Backend& default_backend();

// Replaces the process-wide default (e.g. paper benches pinning
// "reference"). Throws on unknown names.
void set_default_backend(const std::string& name);

// The backend in effect on this thread: innermost ScopedBackend if any,
// else the process default. All layers route their GEMMs through this.
const Backend& current_backend();

// RAII thread-local override; nests and restores the previous override.
class ScopedBackend {
 public:
  explicit ScopedBackend(const Backend& bk);
  explicit ScopedBackend(const std::string& name);
  ~ScopedBackend();
  ScopedBackend(const ScopedBackend&) = delete;
  ScopedBackend& operator=(const ScopedBackend&) = delete;

 private:
  const Backend* prev_;
};

namespace detail {
// Re-reads BER_BACKEND and resets the latched process default — tests only
// (the normal path latches the environment once, before any threads race).
void refresh_default_from_env();
}  // namespace detail

}  // namespace ber::kernels
