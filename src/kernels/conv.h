// Convolution lowering through a compute backend.
//
// Two strategies, chosen by Backend::coalesced_conv():
//
//   per-image  — the seed path: for each image, im2col to [C*k*k, OH*OW]
//                and one GEMM. Bit-exact with the original Conv2d loops
//                under the reference backend.
//   coalesced  — ONE column matrix [C*k*k, N*OH*OW] (image i occupies
//                columns [i*OH*OW, (i+1)*OH*OW)) and ONE GEMM for the whole
//                batch, so dynamic batching pays even on a single core: the
//                GEMM amortizes A-packing of the weights over N images and
//                runs at full tile occupancy instead of N skinny calls.
//                Backward is coalesced the same way (one gemm_bt for dW,
//                one gemm_at for dcol).
//
// The column matrix doubles as the backward cache: in training mode the
// caller passes a Tensor to retain ([N, C*k*k, OH*OW] per-image,
// [C*k*k, N*OH*OW] coalesced — backward infers the layout from the rank);
// in inference mode it lives in the thread-local arena and no per-call heap
// allocation or layer-held cache survives the call.
#pragma once

#include "kernels/backend.h"
#include "tensor/tensor.h"

namespace ber::kernels {

struct ConvShape {
  long n;        // batch
  long in_c, h, w;
  long out_c;
  long kernel;   // square
  long stride;
  long pad;

  long oh() const;
  long ow() const;
  long spatial() const { return oh() * ow(); }        // OH*OW
  long cols_k() const { return in_c * kernel * kernel; }  // GEMM inner dim
};

// Forward: x [N, in_c, H, W], weight [out_c, in_c, k, k], bias [out_c] (may
// be null), y [N, out_c, OH, OW]. If cols_cache is non-null it is filled
// with the column matrix for backward; its Tensor must already have the
// layout-appropriate shape (Conv2d handles this).
void conv2d_forward(const Backend& bk, const ConvShape& s, const float* x,
                    const float* weight, const float* bias, float* y,
                    Tensor* cols_cache);

// Inference-only compute-on-codes forward: the same lowering strategies
// (pointwise elision / per-image / coalesced), but the GEMM consumes the
// stored weight code words through the backend's qgemm and the bias +
// optional ReLU ride in the fused epilogue instead of separate passes.
// w.rows must be out_c and w.cols must be cols_k(). Under the reference
// backend (scalar oracle qgemm) the result is bit-identical to
// conv2d_forward on the dequantized weights followed by ReLU.
void conv2d_forward_quant(const Backend& bk, const ConvShape& s,
                          const float* x, const QWeightView& w,
                          const QEpilogue& ep, float* y);

// Backward: cols is the cache written by forward (layout inferred from its
// rank), grad_out [N, out_c, OH, OW]. Accumulates into grad_weight /
// grad_bias (grad_bias may be null); writes grad_in [N, in_c, H, W], which
// must be pre-zeroed by the caller.
void conv2d_backward(const Backend& bk, const ConvShape& s, const Tensor& cols,
                     const float* grad_out, const float* weight,
                     float* grad_weight, float* grad_bias, float* grad_in);

}  // namespace ber::kernels
