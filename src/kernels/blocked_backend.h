// Cache-blocked, packed GEMM with an MR x NR register micro-kernel.
//
// BLIS-style three-level blocking: B panels of [KC x NC] and A panels of
// [MC x KC] are packed into contiguous, tile-ordered scratch (from the
// thread-local arena) so the micro-kernel streams both operands linearly
// and keeps a full MR x NR accumulator block in registers. One packing
// routine parameterized by source strides serves all three variants
// (gemm / gemm_at / gemm_bt) — a transpose is just a different stride pair.
//
// Determinism: for fixed (m, n, k), every C element is accumulated in the
// same order regardless of shard count — KC blocks in sequence, then
// sequential p within a block — so the optional intra-GEMM sharding over
// core/parallel (contiguous row ranges of C) is bit-identical to the
// single-threaded result for ANY thread count. Results differ from the
// reference backend only in summation order (and FMA contraction when the
// translation unit is compiled with -march=native); parity is within ~1e-4
// relative error, tested in tests/test_kernels.cpp.
#pragma once

#include "kernels/backend.h"

namespace ber::kernels {

class BlockedBackend final : public Backend {
 public:
  // threads == 0: use default_threads() at call time. Sharding only kicks
  // in above a FLOP threshold, so small GEMMs never pay thread spawns.
  explicit BlockedBackend(int threads = 0) : threads_(threads) {}

  std::string name() const override { return "blocked"; }
  void gemm(long m, long n, long k, float alpha, const float* a,
            const float* b, float beta, float* c) const override;
  void gemm_at(long m, long n, long k, float alpha, const float* a,
               const float* b, float beta, float* c) const override;
  void gemm_bt(long m, long n, long k, float alpha, const float* a,
               const float* b, float beta, float* c) const override;
  // One im2col + one GEMM across the whole batch.
  bool coalesced_conv() const override { return true; }

  // int8 compute-on-codes path (kernels/qgemm_blocked.cpp): activations are
  // dynamically quantized to 8-bit symmetric per call, the GEMM accumulates
  // in int32 over the stored levels (AVX512-VNNI micro-kernel when the
  // build machine has it, an identical-integer scalar loop otherwise), and
  // the decode scales + bias + ReLU are folded into the writeback. Falls
  // back to the scalar oracle when the view has no int8 data (bits > 8).
  // Integer accumulation is order-independent, so results are bit-identical
  // across the ISA paths; vs the oracle the error is the activation
  // quantization (~1e-2 relative, exact on integer grids — see tests).
  void qgemm(const QWeightView& w, long n, const float* x, float* y,
             const QEpilogue& ep) const override;
  void qgemm_bt(const QWeightView& w, long m, const float* x, float* y,
                const QEpilogue& ep) const override;
  // Fused quantized conv: activation quantization + packing read straight
  // from x (the im2col column matrix is never materialized in float), with
  // the per-column absmax computed as a channel-max plane + kxk window max.
  // Produces exactly the bits qgemm over the lowered columns would; the
  // point is memory traffic — the float column matrix is k*k times the
  // input and was read twice more on top of being written.
  void qconv(const ConvShape& s, const float* x, const QWeightView& w,
             const QEpilogue& ep, float* y) const override;

  // Micro-kernel tile sizes (compile-time, ISA-dependent); exposed so tests
  // can pick shapes that are deliberately not tile multiples.
  static long mr();
  static long nr();

 private:
  void run(long m, long n, long k, float alpha, const float* a, long a_is,
           long a_ps, const float* b, long b_ps, long b_js, float beta,
           float* c) const;

  int threads_;
};

}  // namespace ber::kernels
