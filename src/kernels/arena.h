// Reusable scratch memory for the compute backends.
//
// GEMM packing buffers and im2col column matrices are large, short-lived and
// requested with the same handful of shapes call after call. A chunked bump
// arena keeps that memory alive across calls: alloc() is a pointer bump into
// an existing chunk once capacity has converged, so the steady state of a
// sweep / serving loop performs no heap allocation in the conv/GEMM hot path.
//
// Chunks are never moved or freed while the arena lives, so pointers handed
// out stay valid even when a later alloc() has to grow the arena — this is
// what lets a conv lowering hold its column matrix while the nested GEMM
// allocates packing buffers. Nested use follows stack discipline via
// ArenaScope, which rewinds the arena to its construction-time watermark.
//
// One arena per thread (tls_arena()): backends and conv lowering are called
// from evaluator / serving worker threads concurrently, and a thread-local
// arena makes the whole scheme lock-free.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace ber::kernels {

class Arena {
 public:
  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Returns `n` floats of scratch (uninitialized). The pointer stays valid
  // until the enclosing ArenaScope unwinds past the allocation (or reset()).
  float* alloc(std::size_t n);

  // Byte / int32 views of float-granular scratch for the int8 kernels —
  // same lifetime rules, 4-byte aligned.
  std::uint8_t* alloc_bytes(std::size_t n) {
    return reinterpret_cast<std::uint8_t*>(
        alloc((n + sizeof(float) - 1) / sizeof(float)));
  }
  std::int32_t* alloc_i32(std::size_t n) {
    return reinterpret_cast<std::int32_t*>(alloc(n));
  }

  // Rewinds every chunk to empty; capacity is retained for reuse.
  void reset();

  // Introspection (used by tests to prove reuse across calls).
  std::size_t capacity() const;     // total floats across all chunks
  std::size_t used() const;         // floats currently allocated
  std::size_t chunk_count() const { return chunks_.size(); }

 private:
  friend class ArenaScope;
  struct Chunk {
    std::vector<float> buf;
    std::size_t used = 0;
  };
  std::vector<Chunk> chunks_;
};

// RAII watermark: allocations made after construction are released (made
// reusable) on destruction. Scopes must nest like a stack.
class ArenaScope {
 public:
  explicit ArenaScope(Arena& arena);
  ~ArenaScope();
  ArenaScope(const ArenaScope&) = delete;
  ArenaScope& operator=(const ArenaScope&) = delete;

 private:
  Arena& arena_;
  std::vector<std::size_t> saved_used_;  // per-chunk watermark at entry
};

// The calling thread's scratch arena.
Arena& tls_arena();

}  // namespace ber::kernels
