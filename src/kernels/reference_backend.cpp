#include "kernels/reference_backend.h"

#include "obs/kernel_stats.h"
#include "tensor/ops.h"

namespace ber::kernels {

namespace {

// Profiling tallies only — counters never touch the math, so the reference
// results stay bit-exact with the seed implementation.
inline void count_gemm(const Backend& bk, long m, long n, long k) {
  obs::KernelStats& ks = bk.kstats();
  ks.gemm_calls->add(1);
  ks.gemm_flops->add(2ull * static_cast<unsigned long long>(m) *
                     static_cast<unsigned long long>(n) *
                     static_cast<unsigned long long>(k));
}

}  // namespace

void ReferenceBackend::gemm(long m, long n, long k, float alpha,
                            const float* a, const float* b, float beta,
                            float* c) const {
  count_gemm(*this, m, n, k);
  ber::gemm(m, n, k, alpha, a, b, beta, c);
}

void ReferenceBackend::gemm_at(long m, long n, long k, float alpha,
                               const float* a, const float* b, float beta,
                               float* c) const {
  count_gemm(*this, m, n, k);
  ber::gemm_at(m, n, k, alpha, a, b, beta, c);
}

void ReferenceBackend::gemm_bt(long m, long n, long k, float alpha,
                               const float* a, const float* b, float beta,
                               float* c) const {
  count_gemm(*this, m, n, k);
  ber::gemm_bt(m, n, k, alpha, a, b, beta, c);
}

}  // namespace ber::kernels
