#include "kernels/reference_backend.h"

#include "tensor/ops.h"

namespace ber::kernels {

void ReferenceBackend::gemm(long m, long n, long k, float alpha,
                            const float* a, const float* b, float beta,
                            float* c) const {
  ber::gemm(m, n, k, alpha, a, b, beta, c);
}

void ReferenceBackend::gemm_at(long m, long n, long k, float alpha,
                               const float* a, const float* b, float beta,
                               float* c) const {
  ber::gemm_at(m, n, k, alpha, a, b, beta, c);
}

void ReferenceBackend::gemm_bt(long m, long n, long k, float alpha,
                               const float* a, const float* b, float beta,
                               float* c) const {
  ber::gemm_bt(m, n, k, alpha, a, b, beta, c);
}

}  // namespace ber::kernels
