#include "nn/activation.h"

namespace ber {

Tensor ReLU::forward(const Tensor& x, bool training) {
  Tensor out = x;
  long active = 0;
  const long n = out.numel();
  float* d = out.data();
  for (long i = 0; i < n; ++i) {
    if (d[i] > 0.0f) {
      ++active;
    } else {
      d[i] = 0.0f;
    }
  }
  last_active_fraction_ = n > 0 ? static_cast<double>(active) / n : 0.0;
  if (training) {
    mask_ = Tensor::zeros(x.shape());
    const float* xd = x.data();
    float* md = mask_.data();
    for (long i = 0; i < n; ++i) md[i] = xd[i] > 0.0f ? 1.0f : 0.0f;
  }
  return out;
}

Tensor ReLU::backward(const Tensor& grad_out) {
  Tensor grad_in = grad_out;
  const float* m = mask_.data();
  float* g = grad_in.data();
  const long n = grad_in.numel();
  for (long i = 0; i < n; ++i) g[i] *= m[i];
  return grad_in;
}

Tensor Flatten::forward(const Tensor& x, bool training) {
  if (training) in_shape_ = x.shape();
  return x.reshaped({x.shape(0), -1});
}

Tensor Flatten::backward(const Tensor& grad_out) {
  return grad_out.reshaped(in_shape_);
}

}  // namespace ber
