// 2-D convolution via im2col + GEMM, with full backward.
#pragma once

#include "nn/layer.h"

namespace ber {

class Conv2d : public Layer {
 public:
  // Square kernels only (all paper architectures use 3x3); zero padding.
  Conv2d(long in_channels, long out_channels, long kernel, long stride = 1,
         long pad = 1, bool bias = true);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }

  long in_channels() const { return in_channels_; }
  long out_channels() const { return out_channels_; }
  long kernel() const { return kernel_; }

 private:
  long in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;  // [out, in, k, k]
  Param bias_;    // [out]
  // Cached for backward.
  Tensor input_;
  Tensor cols_;  // [N, in*k*k, OH*OW]
};

}  // namespace ber
