// 2-D convolution lowered through the compute backend (kernels/conv.h):
// per-image im2col + GEMM on the reference backend, batch-coalesced
// (one column matrix + one GEMM for the whole batch) on the blocked one.
#pragma once

#include "nn/layer.h"

namespace ber {

class Conv2d : public Layer {
 public:
  // Square kernels only (all paper architectures use 3x3); zero padding.
  Conv2d(long in_channels, long out_channels, long kernel, long stride = 1,
         long pad = 1, bool bias = true);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }

  long in_channels() const { return in_channels_; }
  long out_channels() const { return out_channels_; }
  long kernel() const { return kernel_; }

  // Bytes held by the backward caches (input + column matrix). Inference
  // forwards release them — evaluation sweeps and serving replicas must not
  // pin O(N*C*k^2*OH*OW) per layer; tested in test_kernels.cpp.
  long cached_bytes() const {
    return static_cast<long>(sizeof(float)) *
           (input_.numel() + cols_.numel());
  }

 private:
  long in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;  // [out, in, k, k]
  Param bias_;    // [out]
  // Cached for backward (training mode only). cols_ layout depends on the
  // backend that ran forward — [N, in*k*k, OH*OW] per-image, [in*k*k,
  // N*OH*OW] coalesced — and backward infers the lowering from the rank,
  // so forward and backward may legally run under different backends.
  Tensor input_;
  Tensor cols_;
};

}  // namespace ber
