// 2-D convolution lowered through the compute backend (kernels/conv.h):
// per-image im2col + GEMM on the reference backend, batch-coalesced
// (one column matrix + one GEMM for the whole batch) on the blocked one.
#pragma once

#include <optional>

#include "nn/code_compute.h"
#include "nn/layer.h"
#include "quant/qweights.h"

namespace ber {

class Conv2d : public Layer, public CodeComputeLayer {
 public:
  // Square kernels only (all paper architectures use 3x3); zero padding.
  Conv2d(long in_channels, long out_channels, long kernel, long stride = 1,
         long pad = 1, bool bias = true);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Conv2d>(*this);
  }

  // Compute-on-codes (nn/code_compute.h): inference forwards lower through
  // kernels::conv2d_forward_quant with bias (and optionally the following
  // ReLU) fused into the qgemm writeback.
  void adopt_weight_codes(QuantizedTensor qt) override;
  void release_weight_codes() override { wcodes_.reset(); }
  bool code_compute_active() const override { return wcodes_.has_value(); }
  void patch_weight_code(std::size_t index, std::uint16_t code) override;
  Tensor forward_on_codes(const Tensor& x, bool fuse_relu) override;

  long in_channels() const { return in_channels_; }
  long out_channels() const { return out_channels_; }
  long kernel() const { return kernel_; }

  // Bytes held by the backward caches (input + column matrix). Inference
  // forwards release them — evaluation sweeps and serving replicas must not
  // pin O(N*C*k^2*OH*OW) per layer; tested in test_kernels.cpp.
  long cached_bytes() const {
    return static_cast<long>(sizeof(float)) *
           (input_.numel() + cols_.numel());
  }

 private:
  long in_channels_, out_channels_, kernel_, stride_, pad_;
  bool has_bias_;
  Param weight_;  // [out, in, k, k]
  Param bias_;    // [out]
  // Cached for backward (training mode only). cols_ layout depends on the
  // backend that ran forward — [N, in*k*k, OH*OW] per-image, [in*k*k,
  // N*OH*OW] coalesced — and backward infers the lowering from the rank,
  // so forward and backward may legally run under different backends.
  Tensor input_;
  Tensor cols_;
  // Weight code store when compute-on-codes is active (deep-copied by
  // clone(), so replicas patch independent codes).
  std::optional<QuantWeightStore> wcodes_;
};

}  // namespace ber
