// Stateless shape/activation layers: ReLU and Flatten.
#pragma once

#include "nn/layer.h"

namespace ber {

class ReLU : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "ReLU"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<ReLU>(*this);
  }

  // Fraction of non-zero outputs in the last forward; feeds the "ReLU
  // relevance" redundancy metric (Fig. 10).
  double last_active_fraction() const { return last_active_fraction_; }

 private:
  Tensor mask_;  // 1 where x > 0
  double last_active_fraction_ = 0.0;
};

// Collapses [N, ...] to [N, features].
class Flatten : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "Flatten"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Flatten>(*this);
  }

 private:
  std::vector<long> in_shape_;
};

}  // namespace ber
