#include "nn/norm.h"

#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ber {

GroupNorm::GroupNorm(long groups, long channels, float eps)
    : groups_(groups), channels_(channels), eps_(eps) {
  if (channels % groups != 0) {
    throw std::invalid_argument("GroupNorm: channels % groups != 0");
  }
  scale_.name = "gn.scale";
  scale_.kind = ParamKind::kNormScale;
  scale_.value = Tensor::zeros({channels});  // alpha' = 0 -> gamma = 1
  scale_.grad = Tensor::zeros({channels});
  bias_.name = "gn.bias";
  bias_.kind = ParamKind::kNormBias;
  bias_.value = Tensor::zeros({channels});
  bias_.grad = Tensor::zeros({channels});
}

Tensor GroupNorm::forward(const Tensor& x, bool training) {
  if (x.dim() != 4 || x.shape(1) != channels_) {
    throw std::invalid_argument("GroupNorm: bad input " + x.shape_str());
  }
  const long n = x.shape(0), c = x.shape(1), spatial = x.shape(2) * x.shape(3);
  const long cpg = c / groups_;
  const long m = cpg * spatial;  // elements per (n, group)

  Tensor out(x.shape());
  Tensor xhat(x.shape());
  Tensor inv_std({n, groups_});
  for (long i = 0; i < n; ++i) {
    for (long g = 0; g < groups_; ++g) {
      const float* src = x.data() + (i * c + g * cpg) * spatial;
      double sum = 0.0, sq = 0.0;
      for (long e = 0; e < m; ++e) {
        sum += src[e];
        sq += static_cast<double>(src[e]) * src[e];
      }
      const double mu = sum / m;
      const double var = sq / m - mu * mu;
      const float istd = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
      inv_std.at(i, g) = istd;
      float* xh = xhat.data() + (i * c + g * cpg) * spatial;
      float* dst = out.data() + (i * c + g * cpg) * spatial;
      for (long cc = 0; cc < cpg; ++cc) {
        const long ch = g * cpg + cc;
        const float gamma = 1.0f + scale_.value[ch];
        const float beta = bias_.value[ch];
        for (long s = 0; s < spatial; ++s) {
          const long e = cc * spatial + s;
          const float h = (src[e] - static_cast<float>(mu)) * istd;
          xh[e] = h;
          dst[e] = gamma * h + beta;
        }
      }
    }
  }
  if (training) {
    xhat_ = std::move(xhat);
    inv_std_ = std::move(inv_std);
  }
  return out;
}

Tensor GroupNorm::backward(const Tensor& grad_out) {
  const long n = grad_out.shape(0), c = grad_out.shape(1),
             spatial = grad_out.shape(2) * grad_out.shape(3);
  const long cpg = c / groups_;
  const long m = cpg * spatial;

  Tensor grad_in(grad_out.shape());
  for (long i = 0; i < n; ++i) {
    for (long g = 0; g < groups_; ++g) {
      const float* go = grad_out.data() + (i * c + g * cpg) * spatial;
      const float* xh = xhat_.data() + (i * c + g * cpg) * spatial;
      const float istd = inv_std_.at(i, g);
      // Accumulate per-channel param grads and per-group sums of
      // dxhat and dxhat*xhat.
      double sum_dxh = 0.0, sum_dxh_xh = 0.0;
      for (long cc = 0; cc < cpg; ++cc) {
        const long ch = g * cpg + cc;
        const float gamma = 1.0f + scale_.value[ch];
        double dscale = 0.0, dbias = 0.0;
        for (long s = 0; s < spatial; ++s) {
          const long e = cc * spatial + s;
          dscale += static_cast<double>(go[e]) * xh[e];
          dbias += go[e];
          const double dxh = static_cast<double>(go[e]) * gamma;
          sum_dxh += dxh;
          sum_dxh_xh += dxh * xh[e];
        }
        scale_.grad[ch] += static_cast<float>(dscale);
        bias_.grad[ch] += static_cast<float>(dbias);
      }
      float* gi = grad_in.data() + (i * c + g * cpg) * spatial;
      const float inv_m = 1.0f / static_cast<float>(m);
      for (long cc = 0; cc < cpg; ++cc) {
        const long ch = g * cpg + cc;
        const float gamma = 1.0f + scale_.value[ch];
        for (long s = 0; s < spatial; ++s) {
          const long e = cc * spatial + s;
          const float dxh = go[e] * gamma;
          gi[e] = istd * (dxh - inv_m * static_cast<float>(sum_dxh) -
                          xh[e] * inv_m * static_cast<float>(sum_dxh_xh));
        }
      }
    }
  }
  return grad_in;
}

std::string GroupNorm::name() const {
  std::ostringstream os;
  os << "GroupNorm(g" << groups_ << ",c" << channels_ << ")";
  return os.str();
}

BatchNorm2d::BatchNorm2d(long channels, float eps, float momentum)
    : channels_(channels), eps_(eps), momentum_(momentum) {
  scale_.name = "bn.scale";
  scale_.kind = ParamKind::kNormScale;
  scale_.value = Tensor::zeros({channels});
  scale_.grad = Tensor::zeros({channels});
  bias_.name = "bn.bias";
  bias_.kind = ParamKind::kNormBias;
  bias_.value = Tensor::zeros({channels});
  bias_.grad = Tensor::zeros({channels});
  running_mean_ = Tensor::zeros({channels});
  running_var_ = Tensor::full({channels}, 1.0f);
}

Tensor BatchNorm2d::forward(const Tensor& x, bool training) {
  if (x.dim() != 4 || x.shape(1) != channels_) {
    throw std::invalid_argument("BatchNorm2d: bad input " + x.shape_str());
  }
  const long n = x.shape(0), c = channels_, spatial = x.shape(2) * x.shape(3);
  const long m = n * spatial;

  const bool batch_stats = training || use_batch_stats_in_eval_;
  Tensor out(x.shape());
  Tensor xhat;
  Tensor inv_std({c});
  if (training) xhat = Tensor(x.shape());

  for (long ch = 0; ch < c; ++ch) {
    float mu, var;
    if (batch_stats) {
      double sum = 0.0, sq = 0.0;
      for (long i = 0; i < n; ++i) {
        const float* plane = x.data() + (i * c + ch) * spatial;
        for (long s = 0; s < spatial; ++s) {
          sum += plane[s];
          sq += static_cast<double>(plane[s]) * plane[s];
        }
      }
      mu = static_cast<float>(sum / m);
      var = static_cast<float>(sq / m - static_cast<double>(mu) * mu);
      if (training) {
        running_mean_[ch] =
            (1.0f - momentum_) * running_mean_[ch] + momentum_ * mu;
        running_var_[ch] =
            (1.0f - momentum_) * running_var_[ch] + momentum_ * var;
      }
    } else {
      mu = running_mean_[ch];
      var = running_var_[ch];
    }
    const float istd = 1.0f / std::sqrt(var + eps_);
    inv_std[ch] = istd;
    const float gamma = 1.0f + scale_.value[ch];
    const float beta = bias_.value[ch];
    for (long i = 0; i < n; ++i) {
      const float* src = x.data() + (i * c + ch) * spatial;
      float* dst = out.data() + (i * c + ch) * spatial;
      float* xh =
          training ? xhat.data() + (i * c + ch) * spatial : nullptr;
      for (long s = 0; s < spatial; ++s) {
        const float h = (src[s] - mu) * istd;
        if (xh != nullptr) xh[s] = h;
        dst[s] = gamma * h + beta;
      }
    }
  }
  if (training) {
    xhat_ = std::move(xhat);
    inv_std_ = std::move(inv_std);
  }
  return out;
}

Tensor BatchNorm2d::backward(const Tensor& grad_out) {
  const long n = grad_out.shape(0), c = channels_,
             spatial = grad_out.shape(2) * grad_out.shape(3);
  const long m = n * spatial;

  Tensor grad_in(grad_out.shape());
  for (long ch = 0; ch < c; ++ch) {
    const float gamma = 1.0f + scale_.value[ch];
    const float istd = inv_std_[ch];
    double sum_go = 0.0, sum_go_xh = 0.0;
    for (long i = 0; i < n; ++i) {
      const float* go = grad_out.data() + (i * c + ch) * spatial;
      const float* xh = xhat_.data() + (i * c + ch) * spatial;
      for (long s = 0; s < spatial; ++s) {
        sum_go += go[s];
        sum_go_xh += static_cast<double>(go[s]) * xh[s];
      }
    }
    scale_.grad[ch] += static_cast<float>(sum_go_xh);
    bias_.grad[ch] += static_cast<float>(sum_go);
    const float inv_m = 1.0f / static_cast<float>(m);
    for (long i = 0; i < n; ++i) {
      const float* go = grad_out.data() + (i * c + ch) * spatial;
      const float* xh = xhat_.data() + (i * c + ch) * spatial;
      float* gi = grad_in.data() + (i * c + ch) * spatial;
      for (long s = 0; s < spatial; ++s) {
        gi[s] = gamma * istd *
                (go[s] - inv_m * static_cast<float>(sum_go) -
                 xh[s] * inv_m * static_cast<float>(sum_go_xh));
      }
    }
  }
  return grad_in;
}

std::string BatchNorm2d::name() const {
  std::ostringstream os;
  os << "BatchNorm2d(c" << channels_ << ")";
  return os.str();
}

}  // namespace ber
