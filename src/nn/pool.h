// Spatial pooling layers.
#pragma once

#include "nn/layer.h"

namespace ber {

// Non-overlapping max pooling (kernel == stride), the paper's "Pool".
class MaxPool2d : public Layer {
 public:
  explicit MaxPool2d(long kernel) : kernel_(kernel) {}

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<MaxPool2d>(*this);
  }

 private:
  long kernel_;
  std::vector<long> in_shape_;
  std::vector<long> argmax_;  // flat input index of each output element
};

// Global average pooling: [N,C,H,W] -> [N,C].
class GlobalAvgPool : public Layer {
 public:
  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::string name() const override { return "GlobalAvgPool"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GlobalAvgPool>(*this);
  }

 private:
  std::vector<long> in_shape_;
};

}  // namespace ber
