// Layer abstraction for the training framework.
//
// Layers own their parameters (value + gradient) and expose them through
// Param so that the quantization / bit-injection machinery can snapshot,
// perturb and restore them without knowing layer internals. ParamKind lets
// policies treat normalization parameters differently (e.g. the GN/BN scale
// reparameterization of App. E interacts with weight clipping).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "tensor/tensor.h"

namespace ber {

enum class ParamKind { kWeight, kBias, kNormScale, kNormBias };

struct Param {
  std::string name;
  ParamKind kind = ParamKind::kWeight;
  Tensor value;
  Tensor grad;
};

class Layer {
 public:
  virtual ~Layer() = default;

  // Computes the layer output; `training` selects train-time behaviour
  // (batch statistics, caching for backward).
  virtual Tensor forward(const Tensor& x, bool training) = 0;

  // Consumes d(loss)/d(output), accumulates parameter gradients (+=) and
  // returns d(loss)/d(input). Must be called after a training-mode forward.
  virtual Tensor backward(const Tensor& grad_out) = 0;

  // Learnable parameters (empty for stateless layers). Pointers remain valid
  // for the lifetime of the layer.
  virtual std::vector<Param*> params() { return {}; }

  // Non-learnable state that must survive serialization (e.g. BatchNorm
  // running statistics).
  virtual std::vector<Tensor*> buffers() { return {}; }

  virtual std::string name() const = 0;

  // Deep copy; used for parallel evaluation across bit-error "chips".
  virtual std::unique_ptr<Layer> clone() const = 0;

  void zero_grad() {
    for (Param* p : params()) p->grad.zero();
  }
};

}  // namespace ber
