// Sequential container + residual block, with checkpoint serialization.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.h"

namespace ber {

namespace kernels {
class Backend;
}

class BinaryReader;
class BinaryWriter;

class Sequential : public Layer {
 public:
  Sequential() = default;
  Sequential(const Sequential& other);
  Sequential& operator=(const Sequential& other);
  Sequential(Sequential&&) = default;
  Sequential& operator=(Sequential&&) = default;

  // Appends a layer; returns a reference typed as the concrete layer for
  // call-site configuration.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto layer = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *layer;
    layers_.push_back(std::move(layer));
    return ref;
  }
  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;

  // Per-layer activation observer for inference forwards: called once per
  // EXECUTED top-level layer with its index and output. When a ReLU is
  // fused into the preceding layer's code-compute epilogue, the observer
  // sees one call for the weight layer's (post-ReLU) output and none for
  // the skipped ReLU — the executed sequence, not the declared one.
  using ActivationObserver =
      std::function<void(std::size_t layer, const Layer& l, const Tensor& out)>;

  // Inference forward with activation capture (obs/forensics propagation
  // probes). Runs OUTSIDE the arena-tensor region, so observed tensors are
  // ordinary heap tensors the observer may copy from freely; probe batches
  // are small, steady-state allocation behavior doesn't apply here.
  Tensor forward_observed(const Tensor& x, const ActivationObserver& observer);
  std::vector<Param*> params() override;
  std::vector<Tensor*> buffers() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override;

  // Per-model compute-backend preference: when set, forward/backward run
  // under a kernels::ScopedBackend override on the calling thread. Empty
  // (default) inherits kernels::current_backend(). Validated against the
  // registry; copied by clone(), not part of the checkpoint signature.
  void set_backend(const std::string& name);
  const std::string& backend() const { return backend_; }

  // Bytes of thread-local arena scratch (intermediate activations + im2col
  // / GEMM packing) consumed by the most recent outermost inference
  // forward on this model. Inference forwards bracket the layer loop in an
  // arena-tensor region (tensor/tensor.h), so this is also the proof knob
  // for "no heap allocation in steady-state eval": the arena converges to
  // a fixed capacity and this value stays constant across calls (tested in
  // tests/test_kernels.cpp).
  std::size_t last_forward_arena_bytes() const {
    return last_forward_arena_bytes_;
  }

  std::size_t size() const { return layers_.size(); }
  Layer& layer(std::size_t i) { return *layers_[i]; }
  const Layer& layer(std::size_t i) const { return *layers_[i]; }

  // Applies fn to every layer, recursing into nested containers.
  void visit(const std::function<void(Layer&)>& fn);

  // Total number of learnable scalars (the paper's W).
  long num_weights();

  // Architecture signature used to validate checkpoints.
  std::string signature();

  // Checkpoint I/O. Load requires an identically-built architecture.
  void save(const std::string& path);
  void load(const std::string& path);

  // Stream variants of save/load: the signature + params + buffers payload
  // without the file-level magic/version header, so larger artifacts (e.g.
  // serve/checkpoint.h's weights-plus-scheme bundles) can embed a model.
  void write_weights(BinaryWriter& w);
  void read_weights(BinaryReader& r);

 private:
  void read_params_and_buffers(BinaryReader& r);

  // The layer loop. In inference mode, a layer with active weight codes
  // (nn/code_compute.h) runs forward_on_codes; when the next layer is a
  // ReLU, the activation is folded into the kernel epilogue and the ReLU
  // layer is skipped (its last_active_fraction() is then not refreshed).
  // A non-null observer sees every executed layer's output.
  Tensor run_layers(const Tensor& x, bool training,
                    const ActivationObserver* observer = nullptr);

  std::vector<std::unique_ptr<Layer>> layers_;
  std::string backend_;
  // Resolved once in set_backend (registry backends live for the process),
  // so forward/backward skip the registry mutex + map lookup per call.
  const kernels::Backend* backend_ptr_ = nullptr;
  std::size_t last_forward_arena_bytes_ = 0;
};

// y = body(x) + x. Shapes must match (same channels / spatial size).
class Residual : public Layer {
 public:
  explicit Residual(Sequential body) : body_(std::move(body)) {}

  Tensor forward(const Tensor& x, bool training) override {
    Tensor y = body_.forward(x, training);
    y.axpy(1.0f, x);
    return y;
  }
  Tensor backward(const Tensor& grad_out) override {
    Tensor gi = body_.backward(grad_out);
    gi.axpy(1.0f, grad_out);
    return gi;
  }
  std::vector<Param*> params() override { return body_.params(); }
  std::vector<Tensor*> buffers() override { return body_.buffers(); }
  std::string name() const override { return "Residual(" + body_.name() + ")"; }
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Residual>(*this);
  }
  Sequential& body() { return body_; }

 private:
  Sequential body_;
};

}  // namespace ber
