#include "nn/sequential.h"

#include <functional>
#include <optional>
#include <sstream>
#include <stdexcept>

#include "core/serialize.h"
#include "kernels/arena.h"
#include "kernels/backend.h"
#include "nn/activation.h"
#include "nn/code_compute.h"

namespace ber {

namespace {

constexpr std::uint32_t kModelMagic = 0x4245524Du;  // "BERM"
constexpr std::uint32_t kModelVersion = 1;

// Exception-safe arena-tensor toggle for the inference region.
struct ArenaTensorRegion {
  ArenaTensorRegion() { set_arena_tensors_enabled(true); }
  ~ArenaTensorRegion() { set_arena_tensors_enabled(false); }
};

}  // namespace

Sequential::Sequential(const Sequential& other)
    : backend_(other.backend_), backend_ptr_(other.backend_ptr_) {
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
}

Sequential& Sequential::operator=(const Sequential& other) {
  if (this == &other) return *this;
  layers_.clear();
  layers_.reserve(other.layers_.size());
  for (const auto& l : other.layers_) layers_.push_back(l->clone());
  backend_ = other.backend_;
  backend_ptr_ = other.backend_ptr_;
  return *this;
}

void Sequential::set_backend(const std::string& name) {
  backend_ptr_ = name.empty() ? nullptr : &kernels::backend(name);
  backend_ = name;
}

Tensor Sequential::forward(const Tensor& x, bool training) {
  std::optional<kernels::ScopedBackend> guard;
  if (backend_ptr_) guard.emplace(*backend_ptr_);
  if (!training && !arena_tensors_enabled()) {
    // Outermost inference forward: run every intermediate activation (and
    // the layers' im2col/GEMM scratch beneath them) out of the thread
    // arena. Once the arena's capacity has converged, repeated forwards
    // perform no heap allocation; only the network output is copied back
    // to the heap. Nested containers (inner Sequentials, Residual bodies)
    // see the toggle already on and just run their layer loop.
    kernels::Arena& arena = kernels::tls_arena();
    const std::size_t used_before = arena.used();
    Tensor result;
    {
      kernels::ArenaScope scope(arena);
      Tensor cur;
      {
        ArenaTensorRegion region;
        cur = run_layers(x, false);
        last_forward_arena_bytes_ =
            (arena.used() - used_before) * sizeof(float);
      }
      result = cur;  // toggle is off again: deep copy to the heap
    }
    return result;
  }
  return run_layers(x, training);
}

Tensor Sequential::run_layers(const Tensor& x, bool training,
                              const ActivationObserver* observer) {
  Tensor cur = x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Layer* l = layers_[i].get();
    if (!training) {
      auto* cc = dynamic_cast<CodeComputeLayer*>(l);
      if (cc != nullptr && cc->code_compute_active()) {
        const bool fuse_relu =
            i + 1 < layers_.size() &&
            dynamic_cast<ReLU*>(layers_[i + 1].get()) != nullptr;
        cur = cc->forward_on_codes(cur, fuse_relu);
        if (observer != nullptr) (*observer)(i, *l, cur);
        if (fuse_relu) ++i;  // the epilogue already applied the ReLU
        continue;
      }
    }
    cur = l->forward(cur, training);
    if (observer != nullptr) (*observer)(i, *l, cur);
  }
  return cur;
}

Tensor Sequential::forward_observed(const Tensor& x,
                                    const ActivationObserver& observer) {
  std::optional<kernels::ScopedBackend> guard;
  if (backend_ptr_) guard.emplace(*backend_ptr_);
  return run_layers(x, /*training=*/false, &observer);
}

Tensor Sequential::backward(const Tensor& grad_out) {
  std::optional<kernels::ScopedBackend> guard;
  if (backend_ptr_) guard.emplace(*backend_ptr_);
  Tensor cur = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    cur = (*it)->backward(cur);
  }
  return cur;
}

std::vector<Param*> Sequential::params() {
  std::vector<Param*> all;
  for (auto& l : layers_) {
    for (Param* p : l->params()) all.push_back(p);
  }
  return all;
}

std::vector<Tensor*> Sequential::buffers() {
  std::vector<Tensor*> all;
  for (auto& l : layers_) {
    for (Tensor* b : l->buffers()) all.push_back(b);
  }
  return all;
}

std::string Sequential::name() const {
  std::ostringstream os;
  os << "Sequential[";
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    os << layers_[i]->name() << (i + 1 < layers_.size() ? "," : "");
  }
  os << ']';
  return os.str();
}

std::unique_ptr<Layer> Sequential::clone() const {
  return std::make_unique<Sequential>(*this);
}

void Sequential::visit(const std::function<void(Layer&)>& fn) {
  for (auto& l : layers_) {
    fn(*l);
    if (auto* seq = dynamic_cast<Sequential*>(l.get())) {
      seq->visit(fn);
    } else if (auto* res = dynamic_cast<Residual*>(l.get())) {
      fn(res->body());
      res->body().visit(fn);
    }
  }
}

long Sequential::num_weights() {
  long n = 0;
  for (Param* p : params()) n += p->value.numel();
  return n;
}

std::string Sequential::signature() {
  std::ostringstream os;
  os << name() << "#";
  for (Param* p : params()) os << p->value.shape_str();
  return os.str();
}

void Sequential::write_weights(BinaryWriter& w) {
  w.write_string(signature());
  const auto ps = params();
  w.write_pod<std::uint64_t>(ps.size());
  for (Param* p : ps) {
    w.write_string(p->name);
    w.write_vector(std::vector<long>(p->value.shape()));
    std::vector<float> data(p->value.data(), p->value.data() + p->value.numel());
    w.write_vector(data);
  }
  const auto bs = buffers();
  w.write_pod<std::uint64_t>(bs.size());
  for (Tensor* b : bs) {
    std::vector<float> data(b->data(), b->data() + b->numel());
    w.write_vector(data);
  }
}

void Sequential::save(const std::string& path) {
  BinaryWriter w(path);
  w.write_pod(kModelMagic);
  w.write_pod(kModelVersion);
  write_weights(w);
  if (!w.good()) throw std::runtime_error("Sequential::save failed: " + path);
}

void Sequential::read_weights(BinaryReader& r) {
  const std::string sig = r.read_string();
  if (sig != signature()) {
    throw std::runtime_error("Sequential::load: architecture mismatch:\n  file:  " +
                             sig + "\n  model: " + signature());
  }
  read_params_and_buffers(r);
}

void Sequential::load(const std::string& path) {
  BinaryReader r(path);
  if (r.read_pod<std::uint32_t>() != kModelMagic) {
    throw std::runtime_error("Sequential::load: bad magic in " + path);
  }
  if (r.read_pod<std::uint32_t>() != kModelVersion) {
    throw std::runtime_error("Sequential::load: version mismatch in " + path);
  }
  read_weights(r);
}

void Sequential::read_params_and_buffers(BinaryReader& r) {
  const auto ps = params();
  if (r.read_pod<std::uint64_t>() != ps.size()) {
    throw std::runtime_error("Sequential::load: param count mismatch");
  }
  for (Param* p : ps) {
    r.read_string();  // name (informational)
    const auto shape = r.read_vector<long>();
    const auto data = r.read_vector<float>();
    if (static_cast<long>(data.size()) != p->value.numel()) {
      throw std::runtime_error("Sequential::load: size mismatch for " + p->name);
    }
    std::copy(data.begin(), data.end(), p->value.data());
  }
  const auto bs = buffers();
  if (r.read_pod<std::uint64_t>() != bs.size()) {
    throw std::runtime_error("Sequential::load: buffer count mismatch");
  }
  for (Tensor* b : bs) {
    const auto data = r.read_vector<float>();
    if (static_cast<long>(data.size()) != b->numel()) {
      throw std::runtime_error("Sequential::load: buffer size mismatch");
    }
    std::copy(data.begin(), data.end(), b->data());
  }
}

}  // namespace ber
