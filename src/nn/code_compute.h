// Compute-on-codes capability for weight-bearing layers.
//
// Layers that can run their inference GEMM directly over stored weight code
// words (Linear, Conv2d) implement this interface in addition to Layer.
// Deployment machinery (quant/net_quantizer.h:deploy_snapshot, the serving
// replicas) hands them the QuantizedTensor for their weight; the layer keeps
// it in a QuantWeightStore and routes inference forwards through the
// backend's fused qgemm surface. The float weight Param is kept as a
// dequantized mirror the whole time, so weight-space consumers (profilers,
// clipping stats, serialization) observe exactly the values the code path
// computes with.
//
// Ownership notes:
//   * adopt_weight_codes is only called on models that are NOT being
//     trained (evaluation clones, serving replicas). A training-mode
//     forward on a layer with active codes drops them — the optimizer has
//     made the float params the source of truth again.
//   * patch_weight_code is the delta-redeploy hook: O(1) per changed code
//     word, updating code, int8 mirror and float mirror together.
#pragma once

#include <cstdint>

#include "quant/quantizer.h"
#include "tensor/tensor.h"

namespace ber {

class CodeComputeLayer {
 public:
  virtual ~CodeComputeLayer() = default;

  // Adopts code words for this layer's weight (size must match) and
  // refreshes the float mirror. Enables forward_on_codes.
  virtual void adopt_weight_codes(QuantizedTensor qt) = 0;

  // Drops the code store; forwards go back to the float path.
  virtual void release_weight_codes() = 0;

  virtual bool code_compute_active() const = 0;

  // Patches one weight code word and its mirrors in O(1).
  virtual void patch_weight_code(std::size_t index, std::uint16_t code) = 0;

  // Inference forward over the stored codes through the backend qgemm;
  // fuse_relu additionally folds the ReLU that follows this layer into the
  // kernel epilogue (the caller — Sequential — skips the ReLU layer).
  virtual Tensor forward_on_codes(const Tensor& x, bool fuse_relu) = 0;
};

}  // namespace ber
