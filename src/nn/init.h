// Weight initialization (He et al., 2015 — the paper's initializer).
#pragma once

#include "nn/sequential.h"

namespace ber {

class Rng;

// He-normal on conv/linear weights (std = sqrt(2/fan_in)); biases and
// normalization parameters start at zero (GN/BN scales are alpha' = 0, i.e.
// effective gamma = 1 under the App. E reparameterization).
void he_init(Sequential& model, Rng& rng);

}  // namespace ber
