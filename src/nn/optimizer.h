// SGD with momentum + weight decay and the paper's multi-step LR schedule.
#pragma once

#include <vector>

#include "nn/layer.h"

namespace ber {

struct SgdConfig {
  float lr = 0.05f;
  float momentum = 0.9f;
  float weight_decay = 5e-4f;
};

// PyTorch-style SGD: v <- mu*v + (g + wd*w); w <- w - lr*v.
class Sgd {
 public:
  Sgd(std::vector<Param*> params, SgdConfig config);

  void step();
  void set_lr(float lr) { config_.lr = lr; }
  float lr() const { return config_.lr; }

 private:
  std::vector<Param*> params_;
  std::vector<Tensor> velocity_;
  SgdConfig config_;
};

// The paper's schedule: lr multiplied by `gamma` after 2/5, 3/5 and 4/5 of
// total epochs, with an optional linear warmup (helps the small GN CNNs of
// this reproduction escape their initial plateau reliably).
struct MultiStepLr {
  float base_lr = 0.05f;
  float gamma = 0.1f;
  int warmup_epochs = 0;

  float at(int epoch, int total_epochs) const {
    if (epoch < warmup_epochs) {
      return base_lr * static_cast<float>(epoch + 1) /
             static_cast<float>(warmup_epochs);
    }
    float lr = base_lr;
    const double frac = total_epochs > 0
                            ? static_cast<double>(epoch) / total_epochs
                            : 0.0;
    if (frac >= 0.4) lr *= gamma;
    if (frac >= 0.6) lr *= gamma;
    if (frac >= 0.8) lr *= gamma;
    return lr;
  }
};

}  // namespace ber
