#include "nn/optimizer.h"

namespace ber {

Sgd::Sgd(std::vector<Param*> params, SgdConfig config)
    : params_(std::move(params)), config_(config) {
  velocity_.reserve(params_.size());
  for (Param* p : params_) velocity_.push_back(Tensor::zeros(p->value.shape()));
}

void Sgd::step() {
  for (std::size_t i = 0; i < params_.size(); ++i) {
    Param* p = params_[i];
    float* __restrict w = p->value.data();
    const float* __restrict g = p->grad.data();
    float* __restrict v = velocity_[i].data();
    const long n = p->value.numel();
    const float mu = config_.momentum;
    const float wd = config_.weight_decay;
    const float lr = config_.lr;
    for (long j = 0; j < n; ++j) {
      v[j] = mu * v[j] + g[j] + wd * w[j];
      w[j] -= lr * v[j];
    }
  }
}

}  // namespace ber
