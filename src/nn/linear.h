// Fully-connected layer.
#pragma once

#include "nn/layer.h"

namespace ber {

class Linear : public Layer {
 public:
  Linear(long in_features, long out_features, bool bias = true);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Linear>(*this);
  }

  long in_features() const { return in_features_; }
  long out_features() const { return out_features_; }

  // Bytes held by the backward cache; inference forwards release it.
  long cached_bytes() const {
    return static_cast<long>(sizeof(float)) * input_.numel();
  }

 private:
  long in_features_, out_features_;
  bool has_bias_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor input_;  // cached for backward
};

}  // namespace ber
