// Fully-connected layer.
#pragma once

#include <optional>

#include "nn/code_compute.h"
#include "nn/layer.h"
#include "quant/qweights.h"

namespace ber {

class Linear : public Layer, public CodeComputeLayer {
 public:
  Linear(long in_features, long out_features, bool bias = true);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override;
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<Linear>(*this);
  }

  // Compute-on-codes (nn/code_compute.h): inference forwards run
  // backend.qgemm_bt over the stored codes with bias (and optionally the
  // following ReLU) fused into the writeback.
  void adopt_weight_codes(QuantizedTensor qt) override;
  void release_weight_codes() override { wcodes_.reset(); }
  bool code_compute_active() const override { return wcodes_.has_value(); }
  void patch_weight_code(std::size_t index, std::uint16_t code) override;
  Tensor forward_on_codes(const Tensor& x, bool fuse_relu) override;

  long in_features() const { return in_features_; }
  long out_features() const { return out_features_; }

  // Bytes held by the backward cache; inference forwards release it.
  long cached_bytes() const {
    return static_cast<long>(sizeof(float)) * input_.numel();
  }

 private:
  long in_features_, out_features_;
  bool has_bias_;
  Param weight_;  // [out, in]
  Param bias_;    // [out]
  Tensor input_;  // cached for backward
  // Weight code store when compute-on-codes is active (deep-copied by
  // clone(), so replicas patch independent codes).
  std::optional<QuantWeightStore> wcodes_;
};

}  // namespace ber
