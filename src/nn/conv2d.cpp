#include "nn/conv2d.h"

#include <sstream>
#include <stdexcept>

#include "kernels/backend.h"
#include "kernels/conv.h"
#include "tensor/ops.h"

namespace ber {

Conv2d::Conv2d(long in_channels, long out_channels, long kernel, long stride,
               long pad, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias) {
  weight_.name = "conv.weight";
  weight_.kind = ParamKind::kWeight;
  weight_.value = Tensor::zeros({out_channels, in_channels, kernel, kernel});
  weight_.grad = Tensor::zeros(weight_.value.shape());
  if (has_bias_) {
    bias_.name = "conv.bias";
    bias_.kind = ParamKind::kBias;
    bias_.value = Tensor::zeros({out_channels});
    bias_.grad = Tensor::zeros({out_channels});
  }
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  if (x.dim() != 4 || x.shape(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: bad input " + x.shape_str());
  }
  if (wcodes_.has_value()) {
    if (!training) return forward_on_codes(x, /*fuse_relu=*/false);
    wcodes_.reset();  // optimizer steps make the float weights the truth
  }
  const kernels::Backend& bk = kernels::current_backend();
  const kernels::ConvShape s{x.shape(0), in_channels_, x.shape(2), x.shape(3),
                             out_channels_, kernel_,   stride_,    pad_};
  Tensor out({s.n, out_channels_, s.oh(), s.ow()});
  const float* bias = has_bias_ ? bias_.value.data() : nullptr;
  if (training) {
    // Retain the column matrix for backward; reuse the previous step's
    // allocation when the shape (and lowering layout) is unchanged.
    const std::vector<long> want =
        bk.coalesced_conv()
            ? std::vector<long>{s.cols_k(), s.n * s.spatial()}
            : std::vector<long>{s.n, s.cols_k(), s.spatial()};
    if (cols_.shape() != want) cols_ = Tensor(want);
    kernels::conv2d_forward(bk, s, x.data(), weight_.value.data(), bias,
                            out.data(), &cols_);
    input_ = x;
  } else {
    // Inference: the column matrix lives in the thread-local arena, and any
    // stale training caches (e.g. copied in when a trained model was cloned
    // for an evaluation sweep or a serving replica) are released.
    kernels::conv2d_forward(bk, s, x.data(), weight_.value.data(), bias,
                            out.data(), nullptr);
    if (input_.numel() != 0 || cols_.numel() != 0) {
      input_ = Tensor();
      cols_ = Tensor();
    }
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  if (input_.dim() != 4) {
    throw std::logic_error("Conv2d::backward: no cached forward pass");
  }
  // conv2d_backward infers the cached lowering from cols_'s rank, so it is
  // safe (and numerically fine) if the current backend changed since
  // forward — no pointer to a possibly-dead backend is retained.
  const kernels::Backend& bk = kernels::current_backend();
  const kernels::ConvShape s{input_.shape(0), in_channels_,  input_.shape(2),
                             input_.shape(3), out_channels_, kernel_,
                             stride_,         pad_};
  Tensor grad_in(input_.shape());
  kernels::conv2d_backward(bk, s, cols_, grad_out.data(),
                           weight_.value.data(), weight_.grad.data(),
                           has_bias_ ? bias_.grad.data() : nullptr,
                           grad_in.data());
  return grad_in;
}

void Conv2d::adopt_weight_codes(QuantizedTensor qt) {
  wcodes_.emplace(std::move(qt), out_channels_,
                  in_channels_ * kernel_ * kernel_);
  // Refresh the float mirror so weight-space observers agree with the codes.
  dequantize(wcodes_->tensor(),
             std::span<float>(weight_.value.data(),
                              static_cast<std::size_t>(weight_.value.numel())));
}

void Conv2d::patch_weight_code(std::size_t index, std::uint16_t code) {
  weight_.value.data()[index] = wcodes_->set_code(index, code);
}

Tensor Conv2d::forward_on_codes(const Tensor& x, bool fuse_relu) {
  if (!wcodes_.has_value()) {
    throw std::logic_error("Conv2d::forward_on_codes: no codes adopted");
  }
  // Sequential's fused-ReLU dispatch enters here directly, so the input
  // check from forward() must be repeated before touching x's geometry.
  if (x.dim() != 4 || x.shape(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: bad input " + x.shape_str());
  }
  const kernels::Backend& bk = kernels::current_backend();
  const kernels::ConvShape s{x.shape(0), in_channels_, x.shape(2), x.shape(3),
                             out_channels_, kernel_,   stride_,    pad_};
  Tensor out({s.n, out_channels_, s.oh(), s.ow()});
  kernels::QEpilogue ep{has_bias_ ? bias_.value.data() : nullptr, fuse_relu};
  kernels::conv2d_forward_quant(bk, s, x.data(), wcodes_->view(), ep,
                                out.data());
  if (input_.numel() != 0 || cols_.numel() != 0) {  // as the float path
    input_ = Tensor();
    cols_ = Tensor();
  }
  return out;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ",k" << kernel_
     << ",s" << stride_ << ",p" << pad_ << ")";
  return os.str();
}

}  // namespace ber
