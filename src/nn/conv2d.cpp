#include "nn/conv2d.h"

#include <sstream>
#include <stdexcept>

#include "tensor/ops.h"

namespace ber {

Conv2d::Conv2d(long in_channels, long out_channels, long kernel, long stride,
               long pad, bool bias)
    : in_channels_(in_channels),
      out_channels_(out_channels),
      kernel_(kernel),
      stride_(stride),
      pad_(pad),
      has_bias_(bias) {
  weight_.name = "conv.weight";
  weight_.kind = ParamKind::kWeight;
  weight_.value = Tensor::zeros({out_channels, in_channels, kernel, kernel});
  weight_.grad = Tensor::zeros(weight_.value.shape());
  if (has_bias_) {
    bias_.name = "conv.bias";
    bias_.kind = ParamKind::kBias;
    bias_.value = Tensor::zeros({out_channels});
    bias_.grad = Tensor::zeros({out_channels});
  }
}

Tensor Conv2d::forward(const Tensor& x, bool training) {
  if (x.dim() != 4 || x.shape(1) != in_channels_) {
    throw std::invalid_argument("Conv2d: bad input " + x.shape_str());
  }
  const long n = x.shape(0), h = x.shape(2), w = x.shape(3);
  const long oh = conv_out_size(h, kernel_, stride_, pad_);
  const long ow = conv_out_size(w, kernel_, stride_, pad_);
  const long k = in_channels_ * kernel_ * kernel_;
  const long spatial = oh * ow;

  Tensor cols({n, k, spatial});
  Tensor out({n, out_channels_, oh, ow});
  for (long i = 0; i < n; ++i) {
    float* col = cols.data() + i * k * spatial;
    im2col(x.data() + i * in_channels_ * h * w, in_channels_, h, w, kernel_,
           kernel_, stride_, pad_, col);
    // out_i [out, spatial] = W [out, k] x col [k, spatial]
    gemm(out_channels_, spatial, k, 1.0f, weight_.value.data(), col, 0.0f,
         out.data() + i * out_channels_ * spatial);
    if (has_bias_) {
      for (long c = 0; c < out_channels_; ++c) {
        float* plane = out.data() + (i * out_channels_ + c) * spatial;
        const float b = bias_.value[c];
        for (long s = 0; s < spatial; ++s) plane[s] += b;
      }
    }
  }
  if (training) {
    input_ = x;
    cols_ = std::move(cols);
  }
  return out;
}

Tensor Conv2d::backward(const Tensor& grad_out) {
  const long n = input_.shape(0), h = input_.shape(2), w = input_.shape(3);
  const long oh = grad_out.shape(2), ow = grad_out.shape(3);
  const long k = in_channels_ * kernel_ * kernel_;
  const long spatial = oh * ow;

  Tensor grad_in(input_.shape());
  Tensor grad_col({k, spatial});
  for (long i = 0; i < n; ++i) {
    const float* go = grad_out.data() + i * out_channels_ * spatial;
    const float* col = cols_.data() + i * k * spatial;
    // dW [out, k] += gO [out, spatial] x col^T [spatial, k]
    gemm_bt(out_channels_, k, spatial, 1.0f, go, col, 1.0f,
            weight_.grad.data());
    if (has_bias_) {
      for (long c = 0; c < out_channels_; ++c) {
        const float* plane = go + c * spatial;
        float acc = 0.0f;
        for (long s = 0; s < spatial; ++s) acc += plane[s];
        bias_.grad[c] += acc;
      }
    }
    // dcol [k, spatial] = W^T [k, out] x gO [out, spatial]
    gemm_at(k, spatial, out_channels_, 1.0f, weight_.value.data(), go, 0.0f,
            grad_col.data());
    col2im(grad_col.data(), in_channels_, h, w, kernel_, kernel_, stride_,
           pad_, grad_in.data() + i * in_channels_ * h * w);
  }
  return grad_in;
}

std::vector<Param*> Conv2d::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

std::string Conv2d::name() const {
  std::ostringstream os;
  os << "Conv2d(" << in_channels_ << "->" << out_channels_ << ",k" << kernel_
     << ",s" << stride_ << ",p" << pad_ << ")";
  return os.str();
}

}  // namespace ber
