// Normalization layers.
//
// The paper (App. G.1) shows BatchNorm is markedly less robust to weight bit
// errors than GroupNorm, so GN is the default in all architectures; BN is
// kept for the Tab. 10 comparison, including the "batch statistics at test
// time" evaluation mode.
//
// Both layers use the App. E reparameterization: the learnable scale is
// stored as alpha' with effective scale gamma = 1 + alpha', so aggressive
// weight clipping (|alpha'| <= wmax < 1) cannot destroy the identity
// behaviour of the normalization.
#pragma once

#include "nn/layer.h"

namespace ber {

class GroupNorm : public Layer {
 public:
  GroupNorm(long groups, long channels, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&scale_, &bias_}; }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<GroupNorm>(*this);
  }

 private:
  long groups_, channels_;
  float eps_;
  Param scale_;  // alpha' (effective gamma = 1 + alpha')
  Param bias_;
  // Backward caches.
  Tensor xhat_;
  Tensor inv_std_;  // [N, groups]
};

class BatchNorm2d : public Layer {
 public:
  explicit BatchNorm2d(long channels, float eps = 1e-5f, float momentum = 0.1f);

  Tensor forward(const Tensor& x, bool training) override;
  Tensor backward(const Tensor& grad_out) override;
  std::vector<Param*> params() override { return {&scale_, &bias_}; }
  std::vector<Tensor*> buffers() override {
    return {&running_mean_, &running_var_};
  }
  std::string name() const override;
  std::unique_ptr<Layer> clone() const override {
    return std::make_unique<BatchNorm2d>(*this);
  }

  // Tab. 10 evaluation mode: when true, eval-mode forward uses the current
  // batch statistics instead of the accumulated running statistics.
  void set_use_batch_stats_in_eval(bool v) { use_batch_stats_in_eval_ = v; }
  bool use_batch_stats_in_eval() const { return use_batch_stats_in_eval_; }

 private:
  long channels_;
  float eps_, momentum_;
  bool use_batch_stats_in_eval_ = false;
  Param scale_;  // alpha' (effective gamma = 1 + alpha')
  Param bias_;
  Tensor running_mean_, running_var_;
  Tensor xhat_;
  Tensor inv_std_;  // [channels]
};

}  // namespace ber
