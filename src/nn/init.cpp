#include "nn/init.h"

#include <cmath>

#include "core/rng.h"

namespace ber {

void he_init(Sequential& model, Rng& rng) {
  for (Param* p : model.params()) {
    switch (p->kind) {
      case ParamKind::kWeight: {
        const long fan_in = p->value.numel() / p->value.shape(0);
        const float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
        for (long i = 0; i < p->value.numel(); ++i) {
          p->value[i] = rng.normal() * stddev;
        }
        break;
      }
      case ParamKind::kBias:
      case ParamKind::kNormScale:
      case ParamKind::kNormBias:
        p->value.zero();
        break;
    }
  }
}

}  // namespace ber
