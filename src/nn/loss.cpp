#include "nn/loss.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "tensor/ops.h"

namespace ber {

LossStats softmax_cross_entropy(const Tensor& logits,
                                std::span<const int> labels,
                                float label_smoothing) {
  if (logits.dim() != 2) throw std::invalid_argument("loss: logits not 2-D");
  const long n = logits.shape(0);
  const long k = logits.shape(1);
  if (static_cast<long>(labels.size()) != n) {
    throw std::invalid_argument("loss: label count mismatch");
  }

  Tensor probs = logits;
  softmax_rows(probs);

  LossStats stats;
  stats.grad_logits = Tensor::zeros({n, k});
  const float off_target = k > 1 ? label_smoothing / static_cast<float>(k - 1) : 0.0f;
  const float on_target = 1.0f - label_smoothing;
  double loss = 0.0;
  const float inv_n = 1.0f / static_cast<float>(n);
  for (long i = 0; i < n; ++i) {
    const float* p = probs.data() + i * k;
    float* g = stats.grad_logits.data() + i * k;
    const int y = labels[static_cast<std::size_t>(i)];
    float pmax = 0.0f;
    long amax = 0;
    for (long c = 0; c < k; ++c) {
      const float target = (c == y) ? on_target : off_target;
      const float pc = std::max(p[c], 1e-12f);
      if (target > 0.0f) loss -= target * std::log(pc);
      g[c] = (p[c] - target) * inv_n;
      if (p[c] > pmax) {
        pmax = p[c];
        amax = c;
      }
    }
    if (amax == y) ++stats.correct;
    stats.confidence += pmax;
  }
  stats.loss = static_cast<float>(loss / n);
  stats.confidence /= n;
  return stats;
}

}  // namespace ber
