// Softmax cross-entropy with optional label smoothing.
//
// Label smoothing is the Tab. 2 control experiment: it caps the confidence
// the network is asked to produce, which removes most of weight clipping's
// robustness benefit (the paper's logit-margin mechanism).
#pragma once

#include <span>

#include "tensor/tensor.h"

namespace ber {

struct LossStats {
  float loss = 0.0f;        // mean cross-entropy over the batch
  long correct = 0;         // argmax == label count
  double confidence = 0.0;  // mean max softmax probability
  Tensor grad_logits;       // d(mean loss)/d(logits), shape [N, K]
};

// logits: [N, K]; labels: N entries in [0, K). With label_smoothing = s the
// target distribution is (1 - s) on the true class and s/(K-1) elsewhere
// (the paper targets 0.9 / 0.1/9 on 10 classes, i.e. s = 0.1).
LossStats softmax_cross_entropy(const Tensor& logits,
                                std::span<const int> labels,
                                float label_smoothing = 0.0f);

}  // namespace ber
