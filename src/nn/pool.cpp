#include "nn/pool.h"

#include <sstream>
#include <stdexcept>

namespace ber {

Tensor MaxPool2d::forward(const Tensor& x, bool training) {
  if (x.dim() != 4) throw std::invalid_argument("MaxPool2d: need NCHW");
  const long n = x.shape(0), c = x.shape(1), h = x.shape(2), w = x.shape(3);
  if (h % kernel_ != 0 || w % kernel_ != 0) {
    throw std::invalid_argument("MaxPool2d: size not divisible by kernel");
  }
  const long oh = h / kernel_, ow = w / kernel_;
  Tensor out({n, c, oh, ow});
  argmax_.assign(static_cast<std::size_t>(out.numel()), 0);
  long oidx = 0;
  for (long i = 0; i < n; ++i) {
    for (long ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * h * w;
      const long plane_base = (i * c + ch) * h * w;
      for (long y = 0; y < oh; ++y) {
        for (long xcol = 0; xcol < ow; ++xcol, ++oidx) {
          float best = plane[(y * kernel_) * w + xcol * kernel_];
          long best_idx = (y * kernel_) * w + xcol * kernel_;
          for (long ki = 0; ki < kernel_; ++ki) {
            for (long kj = 0; kj < kernel_; ++kj) {
              const long idx = (y * kernel_ + ki) * w + xcol * kernel_ + kj;
              if (plane[idx] > best) {
                best = plane[idx];
                best_idx = idx;
              }
            }
          }
          out[oidx] = best;
          argmax_[static_cast<std::size_t>(oidx)] = plane_base + best_idx;
        }
      }
    }
  }
  if (training) in_shape_ = x.shape();
  return out;
}

Tensor MaxPool2d::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  const long n = grad_out.numel();
  for (long i = 0; i < n; ++i) {
    grad_in[argmax_[static_cast<std::size_t>(i)]] += grad_out[i];
  }
  return grad_in;
}

std::string MaxPool2d::name() const {
  std::ostringstream os;
  os << "MaxPool2d(k" << kernel_ << ")";
  return os.str();
}

Tensor GlobalAvgPool::forward(const Tensor& x, bool training) {
  if (x.dim() != 4) throw std::invalid_argument("GlobalAvgPool: need NCHW");
  const long n = x.shape(0), c = x.shape(1), spatial = x.shape(2) * x.shape(3);
  Tensor out({n, c});
  const float inv = 1.0f / static_cast<float>(spatial);
  for (long i = 0; i < n; ++i) {
    for (long ch = 0; ch < c; ++ch) {
      const float* plane = x.data() + (i * c + ch) * spatial;
      float acc = 0.0f;
      for (long s = 0; s < spatial; ++s) acc += plane[s];
      out.at(i, ch) = acc * inv;
    }
  }
  if (training) in_shape_ = x.shape();
  return out;
}

Tensor GlobalAvgPool::backward(const Tensor& grad_out) {
  Tensor grad_in(in_shape_);
  const long n = in_shape_[0], c = in_shape_[1],
             spatial = in_shape_[2] * in_shape_[3];
  const float inv = 1.0f / static_cast<float>(spatial);
  for (long i = 0; i < n; ++i) {
    for (long ch = 0; ch < c; ++ch) {
      const float g = grad_out.at(i, ch) * inv;
      float* plane = grad_in.data() + (i * c + ch) * spatial;
      for (long s = 0; s < spatial; ++s) plane[s] = g;
    }
  }
  return grad_in;
}

}  // namespace ber
