#include "nn/linear.h"

#include <sstream>
#include <stdexcept>

#include "kernels/backend.h"
#include "tensor/ops.h"

namespace ber {

Linear::Linear(long in_features, long out_features, bool bias)
    : in_features_(in_features), out_features_(out_features), has_bias_(bias) {
  weight_.name = "linear.weight";
  weight_.kind = ParamKind::kWeight;
  weight_.value = Tensor::zeros({out_features, in_features});
  weight_.grad = Tensor::zeros(weight_.value.shape());
  if (has_bias_) {
    bias_.name = "linear.bias";
    bias_.kind = ParamKind::kBias;
    bias_.value = Tensor::zeros({out_features});
    bias_.grad = Tensor::zeros({out_features});
  }
}

Tensor Linear::forward(const Tensor& x, bool training) {
  if (x.dim() != 2 || x.shape(1) != in_features_) {
    throw std::invalid_argument("Linear: bad input " + x.shape_str());
  }
  if (wcodes_.has_value()) {
    if (!training) return forward_on_codes(x, /*fuse_relu=*/false);
    wcodes_.reset();  // optimizer steps make the float weights the truth
  }
  const long n = x.shape(0);
  Tensor out({n, out_features_});
  // out [n, out] = x [n, in] x W^T [in, out]; W stored [out, in].
  kernels::current_backend().gemm_bt(n, out_features_, in_features_, 1.0f,
                                     x.data(), weight_.value.data(), 0.0f,
                                     out.data());
  if (has_bias_) {
    for (long i = 0; i < n; ++i) {
      float* row = out.data() + i * out_features_;
      for (long j = 0; j < out_features_; ++j) row[j] += bias_.value[j];
    }
  }
  if (training) {
    input_ = x;
  } else if (input_.numel() != 0) {
    input_ = Tensor();  // release stale backward cache (cloned models)
  }
  return out;
}

Tensor Linear::backward(const Tensor& grad_out) {
  const long n = input_.shape(0);
  const kernels::Backend& bk = kernels::current_backend();
  // dW [out, in] += gO^T [out, n] x X [n, in]
  bk.gemm_at(out_features_, in_features_, n, 1.0f, grad_out.data(),
             input_.data(), 1.0f, weight_.grad.data());
  if (has_bias_) {
    for (long i = 0; i < n; ++i) {
      const float* row = grad_out.data() + i * out_features_;
      for (long j = 0; j < out_features_; ++j) bias_.grad[j] += row[j];
    }
  }
  // dX [n, in] = gO [n, out] x W [out, in]
  Tensor grad_in({n, in_features_});
  bk.gemm(n, in_features_, out_features_, 1.0f, grad_out.data(),
          weight_.value.data(), 0.0f, grad_in.data());
  return grad_in;
}

void Linear::adopt_weight_codes(QuantizedTensor qt) {
  wcodes_.emplace(std::move(qt), out_features_, in_features_);
  // Refresh the float mirror so weight-space observers agree with the codes.
  dequantize(wcodes_->tensor(),
             std::span<float>(weight_.value.data(),
                              static_cast<std::size_t>(weight_.value.numel())));
}

void Linear::patch_weight_code(std::size_t index, std::uint16_t code) {
  weight_.value.data()[index] = wcodes_->set_code(index, code);
}

Tensor Linear::forward_on_codes(const Tensor& x, bool fuse_relu) {
  if (!wcodes_.has_value()) {
    throw std::logic_error("Linear::forward_on_codes: no codes adopted");
  }
  // Sequential's fused-ReLU dispatch enters here directly, so the input
  // check from forward() must be repeated: qgemm_bt trusts x's geometry.
  if (x.dim() != 2 || x.shape(1) != in_features_) {
    throw std::invalid_argument("Linear: bad input " + x.shape_str());
  }
  const long n = x.shape(0);
  Tensor out({n, out_features_});
  kernels::QEpilogue ep{has_bias_ ? bias_.value.data() : nullptr, fuse_relu};
  kernels::current_backend().qgemm_bt(wcodes_->view(), n, x.data(),
                                      out.data(), ep);
  if (input_.numel() != 0) input_ = Tensor();  // as the float inference path
  return out;
}

std::vector<Param*> Linear::params() {
  std::vector<Param*> ps{&weight_};
  if (has_bias_) ps.push_back(&bias_);
  return ps;
}

std::string Linear::name() const {
  std::ostringstream os;
  os << "Linear(" << in_features_ << "->" << out_features_ << ")";
  return os.str();
}

}  // namespace ber
