// SRAM low-voltage energy / bit-error-rate model (Fig. 1 of the paper).
//
// The paper characterizes 32 SRAM arrays of a 14nm accelerator
// (Chandramoorthy et al., 2019): scaling supply voltage below Vmin (the
// lowest voltage with zero bit cell failures) reduces access energy roughly
// quadratically while the bit error rate grows exponentially. We fit an
// analytic model to the published anchor points:
//   * p(Vmin)       ~ 1e-4 %   (just below error-free operation)
//   * p(0.75 Vmin)  ~ 20 %
//   * energy(v) = 0.85 v^2 + 0.15 (dynamic CV^2f + leakage floor),
//     normalized to 1 at Vmin
// which reproduces the paper's headline trade-offs: ~30% energy saving at
// p = 1% and ~20% at p ~ 0.1%.
//
// All voltages are normalized by Vmin; rates are fractions in [0, 1].
#pragma once

namespace ber {

struct SramEnergyModel {
  // p(v) = p0 * 10^(slope * (1 - v)), clamped to [0, 0.5].
  double p0 = 1e-6;
  double slope = 21.2;
  // E(v) = dynamic_fraction * v^2 + (1 - dynamic_fraction).
  double dynamic_fraction = 0.85;

  // Bit error rate at normalized voltage v (= V / Vmin).
  double bit_error_rate(double v) const;

  // Inverse of bit_error_rate: the normalized voltage at which the array
  // exhibits rate p. p <= p0 returns 1.0 (at or above Vmin).
  double voltage_for_rate(double p) const;

  // Energy per SRAM access at voltage v, normalized to 1 at Vmin.
  double energy_per_access(double v) const;

  // Fractional energy saving vs Vmin operation at voltage v.
  double energy_saving_at_voltage(double v) const;

  // Fractional energy saving vs Vmin operation when tolerating rate p.
  double energy_saving_at_rate(double p) const;
};

}  // namespace ber
