#include "energy/energy_model.h"

#include <algorithm>
#include <cmath>

namespace ber {

double SramEnergyModel::bit_error_rate(double v) const {
  if (v >= 1.0) return p0;
  const double p = p0 * std::pow(10.0, slope * (1.0 - v));
  return std::min(p, 0.5);
}

double SramEnergyModel::voltage_for_rate(double p) const {
  if (p <= p0) return 1.0;
  return 1.0 - std::log10(p / p0) / slope;
}

double SramEnergyModel::energy_per_access(double v) const {
  return dynamic_fraction * v * v + (1.0 - dynamic_fraction);
}

double SramEnergyModel::energy_saving_at_voltage(double v) const {
  return 1.0 - energy_per_access(v);
}

double SramEnergyModel::energy_saving_at_rate(double p) const {
  return energy_saving_at_voltage(voltage_for_rate(p));
}

}  // namespace ber
