// Whole-network quantization snapshots.
//
// The training loop and the evaluation harness both need to (a) quantize all
// parameters of a model, (b) optionally perturb the codes (bit errors), and
// (c) write the dequantized weights back into the model ("fake
// quantization", App. D: the forward pass runs in floating point on
// dequantized weights; weight updates happen on the float master copy).
#pragma once

#include <vector>

#include "nn/layer.h"
#include "quant/quantizer.h"

namespace ber {

// A quantized image of every parameter tensor of a network. `offsets` gives
// each tensor's first global weight index so bit-error coordinates (weight
// index, bit index) are stable across the whole net — this is the "linear
// weight-to-memory mapping" of Sec. 3.
struct NetSnapshot {
  std::vector<QuantizedTensor> tensors;
  std::vector<std::size_t> offsets;

  std::size_t total_weights() const {
    return tensors.empty()
               ? 0
               : offsets.back() + tensors.back().size();
  }
};

class NetQuantizer {
 public:
  explicit NetQuantizer(QuantScheme scheme) : scheme_(scheme) {}

  const QuantScheme& scheme() const { return scheme_; }

  // Quantizes all parameters. Per-tensor scope computes one range per
  // parameter tensor (the paper treats each layer's weights and biases
  // separately, like PyTorch); global scope computes a single range over the
  // concatenation of all parameters.
  NetSnapshot quantize(const std::vector<Param*>& params) const;

  // Dequantizes the snapshot into the parameter tensors (must be the same
  // parameter list, in order).
  void write_dequantized(const NetSnapshot& snap,
                         const std::vector<Param*>& params) const;

 private:
  QuantScheme scheme_;
};

// Saves/restores float master weights around fake-quantized passes.
class WeightStash {
 public:
  void save(const std::vector<Param*>& params);
  void restore(const std::vector<Param*>& params) const;

 private:
  std::vector<Tensor> saved_;
};

// ------------------------------------------------- snapshot deployment ---
//
// Deploying a (possibly faulted) snapshot into a model has two modes:
//   weight-space — dequantize every tensor into the float params (the
//     seed behaviour, write_dequantized);
//   compute-on-codes — hand each weight tensor's code words to its layer
//     (nn/code_compute.h) so inference runs the backend's quantized GEMM
//     directly over them; the float params become a dequantized mirror.
// ParamSlot pre-resolves, per snapshot tensor, the Param it deploys into
// and (for weight tensors of code-capable layers) the CodeComputeLayer —
// replicas cache the slot list so per-deploy work is O(#tensors), and
// delta deploys can patch single code words through it.

class Sequential;
class CodeComputeLayer;

struct ParamSlot {
  Param* param = nullptr;
  CodeComputeLayer* code_layer = nullptr;  // non-null only for weights of
                                           // code-capable layers
};

// The model's parameters in Sequential::params() order (asserted by
// construction: the walk recurses exactly like params() does), each paired
// with its owning layer's code-compute interface where applicable.
std::vector<ParamSlot> param_slots(Sequential& model);

// Writes `snap` into the model through the slots. on_codes=false matches
// write_dequantized and additionally DROPS any previously adopted codes —
// otherwise a stale code store would keep overriding the freshly written
// float weights at inference time. on_codes=true adopts weight codes into
// code-capable layers (refreshing their float mirrors) and dequantizes the
// rest (biases, norm params).
void deploy_snapshot(const NetSnapshot& snap,
                     const std::vector<ParamSlot>& slots, bool on_codes);

// Process-wide default for compute-on-codes deployment, latched from the
// BER_COMPUTE_ON_CODES environment variable ("1"/"true"; default off) on
// first use. The evaluator and serving replicas consult this unless
// explicitly configured.
bool compute_on_codes_default();

}  // namespace ber
