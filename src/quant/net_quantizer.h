// Whole-network quantization snapshots.
//
// The training loop and the evaluation harness both need to (a) quantize all
// parameters of a model, (b) optionally perturb the codes (bit errors), and
// (c) write the dequantized weights back into the model ("fake
// quantization", App. D: the forward pass runs in floating point on
// dequantized weights; weight updates happen on the float master copy).
#pragma once

#include <vector>

#include "nn/layer.h"
#include "quant/quantizer.h"

namespace ber {

// A quantized image of every parameter tensor of a network. `offsets` gives
// each tensor's first global weight index so bit-error coordinates (weight
// index, bit index) are stable across the whole net — this is the "linear
// weight-to-memory mapping" of Sec. 3.
struct NetSnapshot {
  std::vector<QuantizedTensor> tensors;
  std::vector<std::size_t> offsets;

  std::size_t total_weights() const {
    return tensors.empty()
               ? 0
               : offsets.back() + tensors.back().size();
  }
};

class NetQuantizer {
 public:
  explicit NetQuantizer(QuantScheme scheme) : scheme_(scheme) {}

  const QuantScheme& scheme() const { return scheme_; }

  // Quantizes all parameters. Per-tensor scope computes one range per
  // parameter tensor (the paper treats each layer's weights and biases
  // separately, like PyTorch); global scope computes a single range over the
  // concatenation of all parameters.
  NetSnapshot quantize(const std::vector<Param*>& params) const;

  // Dequantizes the snapshot into the parameter tensors (must be the same
  // parameter list, in order).
  void write_dequantized(const NetSnapshot& snap,
                         const std::vector<Param*>& params) const;

 private:
  QuantScheme scheme_;
};

// Saves/restores float master weights around fake-quantized passes.
class WeightStash {
 public:
  void save(const std::vector<Param*>& params);
  void restore(const std::vector<Param*>& params) const;

 private:
  std::vector<Tensor> saved_;
};

}  // namespace ber
