#include "quant/net_quantizer.h"

#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "nn/code_compute.h"
#include "nn/sequential.h"

namespace ber {

NetSnapshot NetQuantizer::quantize(const std::vector<Param*>& params) const {
  NetSnapshot snap;
  snap.tensors.reserve(params.size());
  snap.offsets.reserve(params.size());

  QuantRange global_range;
  if (scheme_.scope == RangeScope::kGlobal) {
    // One range across the whole network.
    if (scheme_.asymmetric) {
      float lo = 0.0f, hi = 0.0f;
      bool first = true;
      for (Param* p : params) {
        for (long i = 0; i < p->value.numel(); ++i) {
          const float v = p->value[i];
          if (first) {
            lo = hi = v;
            first = false;
          } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        }
      }
      if (hi - lo < 1e-8f) hi = lo + 1e-8f;
      global_range = {lo, hi};
    } else {
      float m = 0.0f;
      for (Param* p : params) m = std::max(m, p->value.abs_max());
      if (m < 1e-8f) m = 1e-8f;
      global_range = {-m, m};
    }
  }

  std::size_t offset = 0;
  for (Param* p : params) {
    const auto values = std::span<const float>(
        p->value.data(), static_cast<std::size_t>(p->value.numel()));
    QuantizedTensor qt =
        scheme_.scope == RangeScope::kGlobal
            ? ber::quantize(values, scheme_, global_range)
            : ber::quantize(values, scheme_);
    snap.offsets.push_back(offset);
    offset += qt.size();
    snap.tensors.push_back(std::move(qt));
  }
  return snap;
}

void NetQuantizer::write_dequantized(const NetSnapshot& snap,
                                     const std::vector<Param*>& params) const {
  if (snap.tensors.size() != params.size()) {
    throw std::invalid_argument("write_dequantized: param count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    dequantize(snap.tensors[i],
               std::span<float>(params[i]->value.data(),
                                static_cast<std::size_t>(params[i]->value.numel())));
  }
}

namespace {

// Mirrors Sequential::params() exactly: iterate layers in order, recursing
// into nested containers, and take each leaf's params() in order. Any
// change to params() traversal must be reflected here — deploy_snapshot
// pairs snapshot tensors with slots positionally.
void collect_slots(Sequential& seq, std::vector<ParamSlot>& out) {
  for (std::size_t i = 0; i < seq.size(); ++i) {
    Layer& l = seq.layer(i);
    if (auto* nested = dynamic_cast<Sequential*>(&l)) {
      collect_slots(*nested, out);
      continue;
    }
    if (auto* res = dynamic_cast<Residual*>(&l)) {
      collect_slots(res->body(), out);
      continue;
    }
    auto* cc = dynamic_cast<CodeComputeLayer*>(&l);
    for (Param* p : l.params()) {
      out.push_back(
          {p, cc != nullptr && p->kind == ParamKind::kWeight ? cc : nullptr});
    }
  }
}

}  // namespace

std::vector<ParamSlot> param_slots(Sequential& model) {
  std::vector<ParamSlot> slots;
  collect_slots(model, slots);
  return slots;
}

void deploy_snapshot(const NetSnapshot& snap,
                     const std::vector<ParamSlot>& slots, bool on_codes) {
  if (snap.tensors.size() != slots.size()) {
    throw std::invalid_argument("deploy_snapshot: slot count mismatch");
  }
  for (std::size_t i = 0; i < slots.size(); ++i) {
    const QuantizedTensor& qt = snap.tensors[i];
    const ParamSlot& slot = slots[i];
    if (on_codes && slot.code_layer != nullptr) {
      slot.code_layer->adopt_weight_codes(qt);  // also refreshes the mirror
      continue;
    }
    if (slot.code_layer != nullptr) slot.code_layer->release_weight_codes();
    dequantize(qt, std::span<float>(
                       slot.param->value.data(),
                       static_cast<std::size_t>(slot.param->value.numel())));
  }
}

bool compute_on_codes_default() {
  static const bool on = [] {
    const char* v = std::getenv("BER_COMPUTE_ON_CODES");
    return v != nullptr &&
           (std::strcmp(v, "1") == 0 || std::strcmp(v, "true") == 0);
  }();
  return on;
}

void WeightStash::save(const std::vector<Param*>& params) {
  saved_.clear();
  saved_.reserve(params.size());
  for (Param* p : params) saved_.push_back(p->value);
}

void WeightStash::restore(const std::vector<Param*>& params) const {
  if (saved_.size() != params.size()) {
    throw std::invalid_argument("WeightStash::restore: param count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = saved_[i];
  }
}

}  // namespace ber
