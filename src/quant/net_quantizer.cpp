#include "quant/net_quantizer.h"

#include <stdexcept>

namespace ber {

NetSnapshot NetQuantizer::quantize(const std::vector<Param*>& params) const {
  NetSnapshot snap;
  snap.tensors.reserve(params.size());
  snap.offsets.reserve(params.size());

  QuantRange global_range;
  if (scheme_.scope == RangeScope::kGlobal) {
    // One range across the whole network.
    if (scheme_.asymmetric) {
      float lo = 0.0f, hi = 0.0f;
      bool first = true;
      for (Param* p : params) {
        for (long i = 0; i < p->value.numel(); ++i) {
          const float v = p->value[i];
          if (first) {
            lo = hi = v;
            first = false;
          } else {
            lo = std::min(lo, v);
            hi = std::max(hi, v);
          }
        }
      }
      if (hi - lo < 1e-8f) hi = lo + 1e-8f;
      global_range = {lo, hi};
    } else {
      float m = 0.0f;
      for (Param* p : params) m = std::max(m, p->value.abs_max());
      if (m < 1e-8f) m = 1e-8f;
      global_range = {-m, m};
    }
  }

  std::size_t offset = 0;
  for (Param* p : params) {
    const auto values = std::span<const float>(
        p->value.data(), static_cast<std::size_t>(p->value.numel()));
    QuantizedTensor qt =
        scheme_.scope == RangeScope::kGlobal
            ? ber::quantize(values, scheme_, global_range)
            : ber::quantize(values, scheme_);
    snap.offsets.push_back(offset);
    offset += qt.size();
    snap.tensors.push_back(std::move(qt));
  }
  return snap;
}

void NetQuantizer::write_dequantized(const NetSnapshot& snap,
                                     const std::vector<Param*>& params) const {
  if (snap.tensors.size() != params.size()) {
    throw std::invalid_argument("write_dequantized: param count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    dequantize(snap.tensors[i],
               std::span<float>(params[i]->value.data(),
                                static_cast<std::size_t>(params[i]->value.numel())));
  }
}

void WeightStash::save(const std::vector<Param*>& params) {
  saved_.clear();
  saved_.reserve(params.size());
  for (Param* p : params) saved_.push_back(p->value);
}

void WeightStash::restore(const std::vector<Param*>& params) const {
  if (saved_.size() != params.size()) {
    throw std::invalid_argument("WeightStash::restore: param count mismatch");
  }
  for (std::size_t i = 0; i < params.size(); ++i) {
    params[i]->value = saved_[i];
  }
}

}  // namespace ber
