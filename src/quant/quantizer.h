// Fixed-point quantization schemes (Sec. 4.1, App. D of the paper).
//
// A weight w in the quantization range is represented by a real m-bit code
// word; codes are stored in the low m bits of a uint16_t so that injected
// bit flips behave exactly like hardware bit flips — including the two's
// complement semantics of the sign bit, which is what makes the
// signed-asymmetric scheme fragile (Tab. 1) and the unsigned scheme robust.
//
// Scheme axes (each an explicit knob so the Tab. 1/Tab. 8 ablation is a
// parameter sweep, not a code fork):
//   * range scope:   global (one range for the whole net) vs per-tensor
//   * symmetric [-qmax, qmax] vs asymmetric [qmin, qmax] via the N-transform
//     of Eq. (3): N(w) = 2 (w - qmin)/(qmax - qmin) - 1
//   * signed two's complement codes vs unsigned codes with additive offset
//     2^(m-1) - 1 (Eq. (4))
//   * trunc-toward-zero ("float-to-integer conversion") vs proper rounding
//
// NORMAL  = per-tensor, symmetric, signed, trunc   (the paper's baseline)
// RQUANT  = per-tensor, asymmetric, unsigned, round (the paper's robust one)
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace ber {

enum class RangeScope { kGlobal, kPerTensor };

struct QuantScheme {
  int bits = 8;  // m, 2..16
  RangeScope scope = RangeScope::kPerTensor;
  bool asymmetric = false;
  bool unsigned_codes = false;
  bool rounded = false;

  static QuantScheme normal(int bits = 8) { return {bits}; }
  static QuantScheme rquant(int bits = 8) {
    return {bits, RangeScope::kPerTensor, true, true, true};
  }
  // NORMAL with a single global range (Tab. 1 row 1).
  static QuantScheme global_symmetric(int bits = 8) {
    return {bits, RangeScope::kGlobal};
  }
  // RQUANT without rounding (Tab. 1 4-bit ablation).
  static QuantScheme rquant_trunc(int bits = 8) {
    return {bits, RangeScope::kPerTensor, true, true, false};
  }
  // Symmetric signed with rounding (Tab. 9/12 "symmetric" variant).
  static QuantScheme symmetric_rounded(int bits = 8) {
    return {bits, RangeScope::kPerTensor, false, false, true};
  }

  std::string str() const;
  bool operator==(const QuantScheme&) const = default;
};

// Per-tensor (or global) quantization range.
struct QuantRange {
  float qmin = -1.0f;
  float qmax = 1.0f;
};

// Codes for one tensor plus everything needed to decode them.
struct QuantizedTensor {
  QuantScheme scheme;
  QuantRange range;
  std::vector<std::uint16_t> codes;

  std::size_t size() const { return codes.size(); }
};

// Computes the range used for quantizing `values` under `scheme`:
// symmetric -> [-max|w|, max|w|], asymmetric -> [min w, max w]. Degenerate
// ranges are widened to a tiny non-empty interval.
QuantRange compute_range(std::span<const float> values,
                         const QuantScheme& scheme);

// Quantizes values with the given range (use compute_range unless a global /
// externally-fixed range is wanted).
QuantizedTensor quantize(std::span<const float> values,
                         const QuantScheme& scheme, const QuantRange& range);
QuantizedTensor quantize(std::span<const float> values,
                         const QuantScheme& scheme);

// Decodes codes back to floats. out.size() must equal qt.size().
void dequantize(const QuantizedTensor& qt, std::span<float> out);

// Single-value encode/decode, exposed for tests and for Fig. 4 error
// structure analysis.
std::uint16_t encode_value(float w, const QuantScheme& scheme,
                           const QuantRange& range);
float decode_code(std::uint16_t code, const QuantScheme& scheme,
                  const QuantRange& range);

// Quantization step size Delta of Eq. (1) for the scheme/range.
float quant_delta(const QuantScheme& scheme, const QuantRange& range);

// The sign-extended (signed schemes) or offset-removed (unsigned schemes)
// integer level v of a stored code word: decode_code(c) is from_normalized
// applied to Delta * v. Exposed for the compute-on-codes kernels, which
// carry levels instead of floats.
long code_level(std::uint16_t code, const QuantScheme& scheme);

// Decoding is affine in the level: decode_code(c) == slope * v + shift up to
// float rounding (symmetric: slope = Delta, shift = 0; asymmetric: the
// N-transform of Eq. (3) folds into slope = Delta * (qmax - qmin)/2 and
// shift = (qmax + qmin)/2). The int8 GEMM path folds `slope` into one
// per-output multiplier and corrects for `shift` with activation column
// sums — see kernels/qweight.h.
struct DecodeAffine {
  float slope = 1.0f;
  float shift = 0.0f;
};
DecodeAffine decode_affine(const QuantScheme& scheme, const QuantRange& range);

// Change of the dequantized weight when bit `bit` of stored code `code` is
// flipped: decode(code ^ (1 << bit)) - decode(code), in closed form. Decoding
// is linear in the (sign-extended) level, so the magnitude is
// 2^bit * Delta * (asymmetric ? (qmax - qmin)/2 : 1) regardless of the code;
// only the sign depends on the stored bit (and, for signed codes, on whether
// `bit` is the two's complement sign bit). This is what makes high bits the
// prime targets of gradient-guided bit-flip attacks (src/attack/).
float flip_delta(std::uint16_t code, int bit, const QuantScheme& scheme,
                 const QuantRange& range);

}  // namespace ber
