#include "quant/qweights.h"

#include <stdexcept>
#include <string>

namespace ber {

namespace {

// The rebased int8 level for a stored code word (see header). Callers
// guarantee bits <= 8.
std::int8_t rebased_level(std::uint16_t code, const QuantScheme& scheme) {
  if (scheme.unsigned_codes) {
    const long half = 1L << (scheme.bits - 1);
    return static_cast<std::int8_t>(static_cast<long>(code) - half);
  }
  return static_cast<std::int8_t>(code_level(code, scheme));
}

}  // namespace

QuantWeightStore::QuantWeightStore(QuantizedTensor qt, long rows, long cols)
    : qt_(std::move(qt)), rows_(rows), cols_(cols) {
  if (static_cast<long>(qt_.codes.size()) != rows_ * cols_) {
    throw std::invalid_argument(
        "QuantWeightStore: " + std::to_string(qt_.codes.size()) +
        " codes for a " + std::to_string(rows_) + "x" + std::to_string(cols_) +
        " matrix");
  }
  const DecodeAffine aff = decode_affine(qt_.scheme, qt_.range);
  slope_ = aff.slope;
  shift_ = qt_.scheme.unsigned_codes ? aff.shift + aff.slope : aff.shift;
  if (qt_.scheme.bits > 8) return;  // oracle fallback, no int8 mirror
  q_.resize(qt_.codes.size());
  row_sums_.assign(static_cast<std::size_t>(rows_), 0);
  for (long i = 0; i < rows_; ++i) {
    std::int32_t sum = 0;
    for (long k = 0; k < cols_; ++k) {
      const std::int8_t q =
          rebased_level(qt_.codes[static_cast<std::size_t>(i * cols_ + k)],
                        qt_.scheme);
      q_[static_cast<std::size_t>(i * cols_ + k)] = q;
      sum += q;
    }
    row_sums_[static_cast<std::size_t>(i)] = sum;
  }
}

kernels::QWeightView QuantWeightStore::view() const {
  kernels::QWeightView v;
  v.rows = rows_;
  v.cols = cols_;
  v.codes = qt_.codes.data();
  v.scheme = qt_.scheme;
  v.range = qt_.range;
  if (!q_.empty()) {
    v.q = q_.data();
    v.row_sums = row_sums_.data();
  }
  v.slope = slope_;
  v.shift = shift_;
  return v;
}

float QuantWeightStore::set_code(std::size_t index, std::uint16_t code) {
  qt_.codes[index] = code;
  if (!q_.empty()) {
    const std::int8_t q = rebased_level(code, qt_.scheme);
    row_sums_[index / static_cast<std::size_t>(cols_)] +=
        static_cast<std::int32_t>(q) - static_cast<std::int32_t>(q_[index]);
    q_[index] = q;
  }
  return decode_code(code, qt_.scheme, qt_.range);
}

}  // namespace ber
