#include "quant/quantizer.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace ber {

namespace {

// Largest positive level: 2^(m-1) - 1 (Eq. (1)).
long max_level(int bits) { return (1L << (bits - 1)) - 1; }

// Rounds x toward nearest (half away from zero) or truncates toward zero —
// the latter replicates C float-to-integer conversion, the paper's
// non-robust default.
long to_level(float x, bool rounded) {
  return rounded ? std::lround(x) : static_cast<long>(x);
}

void check_scheme(const QuantScheme& s) {
  if (s.bits < 2 || s.bits > 16) {
    throw std::invalid_argument("QuantScheme: bits must be in [2,16]");
  }
}

// Maps w into the normalized domain: identity for symmetric schemes,
// N-transform (Eq. (3)) onto [-1, 1] for asymmetric ones.
float to_normalized(float w, const QuantScheme& s, const QuantRange& r) {
  if (!s.asymmetric) return w;
  return 2.0f * (w - r.qmin) / (r.qmax - r.qmin) - 1.0f;
}

float from_normalized(float t, const QuantScheme& s, const QuantRange& r) {
  if (!s.asymmetric) return t;
  return (t + 1.0f) * 0.5f * (r.qmax - r.qmin) + r.qmin;
}

}  // namespace

std::string QuantScheme::str() const {
  std::ostringstream os;
  os << "m" << bits << (scope == RangeScope::kGlobal ? ",global" : ",per-tensor")
     << (asymmetric ? ",asym" : ",sym") << (unsigned_codes ? ",unsigned" : ",signed")
     << (rounded ? ",round" : ",trunc");
  return os.str();
}

QuantRange compute_range(std::span<const float> values,
                         const QuantScheme& scheme) {
  check_scheme(scheme);
  QuantRange r;
  if (scheme.asymmetric) {
    float lo = 0.0f, hi = 0.0f;
    if (!values.empty()) {
      lo = *std::min_element(values.begin(), values.end());
      hi = *std::max_element(values.begin(), values.end());
    }
    if (hi - lo < 1e-8f) hi = lo + 1e-8f;
    r.qmin = lo;
    r.qmax = hi;
  } else {
    float m = 0.0f;
    for (float v : values) m = std::max(m, std::abs(v));
    if (m < 1e-8f) m = 1e-8f;
    r.qmin = -m;
    r.qmax = m;
  }
  return r;
}

float quant_delta(const QuantScheme& scheme, const QuantRange& range) {
  // In the asymmetric case quantization happens in the normalized [-1, 1]
  // domain, so the effective qmax is 1.
  const float qmax = scheme.asymmetric ? 1.0f : range.qmax;
  return qmax / static_cast<float>(max_level(scheme.bits));
}

std::uint16_t encode_value(float w, const QuantScheme& scheme,
                           const QuantRange& range) {
  const long ml = max_level(scheme.bits);
  const float delta = quant_delta(scheme, range);
  const float t = std::clamp(to_normalized(w, scheme, range),
                             scheme.asymmetric ? -1.0f : range.qmin,
                             scheme.asymmetric ? 1.0f : range.qmax);
  long v = to_level(t / delta, scheme.rounded);
  v = std::clamp(v, -ml, ml);
  if (scheme.unsigned_codes) {
    // Eq. (4): additive offset makes all codes non-negative.
    return static_cast<std::uint16_t>(v + ml);
  }
  // Two's complement in the low m bits.
  const std::uint16_t mask =
      static_cast<std::uint16_t>((1u << scheme.bits) - 1u);
  return static_cast<std::uint16_t>(static_cast<std::uint32_t>(v) & mask);
}

long code_level(std::uint16_t code, const QuantScheme& scheme) {
  if (scheme.unsigned_codes) {
    return static_cast<long>(code) - max_level(scheme.bits);
  }
  // Sign-extend the m-bit two's complement code.
  const std::uint32_t mask = (1u << scheme.bits) - 1u;
  std::uint32_t u = code & mask;
  const std::uint32_t sign_bit = 1u << (scheme.bits - 1);
  return (u & sign_bit) ? static_cast<long>(u) - (1L << scheme.bits)
                        : static_cast<long>(u);
}

DecodeAffine decode_affine(const QuantScheme& scheme, const QuantRange& range) {
  const float delta = quant_delta(scheme, range);
  if (!scheme.asymmetric) return {delta, 0.0f};
  const float half_span = 0.5f * (range.qmax - range.qmin);
  return {delta * half_span, half_span + range.qmin};
}

float decode_code(std::uint16_t code, const QuantScheme& scheme,
                  const QuantRange& range) {
  const float delta = quant_delta(scheme, range);
  const long v = code_level(code, scheme);
  return from_normalized(delta * static_cast<float>(v), scheme, range);
}

float flip_delta(std::uint16_t code, int bit, const QuantScheme& scheme,
                 const QuantRange& range) {
  check_scheme(scheme);
  if (bit < 0 || bit >= scheme.bits) {
    throw std::invalid_argument("flip_delta: bit outside the code width");
  }
  // Level change of the flip. Unsigned codes weight every bit +2^bit; signed
  // two's complement codes weight the top bit -2^(bits-1).
  double dv = static_cast<double>(1L << bit);
  if (!scheme.unsigned_codes && bit == scheme.bits - 1) dv = -dv;
  if ((code >> bit) & 1u) dv = -dv;  // stored 1: the flip clears the bit
  // Weight change per level: Delta, times the N-transform slope when the
  // normalized [-1, 1] domain maps back onto [qmin, qmax].
  double dw = dv * static_cast<double>(quant_delta(scheme, range));
  if (scheme.asymmetric) {
    dw *= 0.5 * (static_cast<double>(range.qmax) - range.qmin);
  }
  return static_cast<float>(dw);
}

QuantizedTensor quantize(std::span<const float> values,
                         const QuantScheme& scheme, const QuantRange& range) {
  check_scheme(scheme);
  QuantizedTensor qt;
  qt.scheme = scheme;
  qt.range = range;
  qt.codes.resize(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    qt.codes[i] = encode_value(values[i], scheme, range);
  }
  return qt;
}

QuantizedTensor quantize(std::span<const float> values,
                         const QuantScheme& scheme) {
  return quantize(values, scheme, compute_range(values, scheme));
}

void dequantize(const QuantizedTensor& qt, std::span<float> out) {
  if (out.size() != qt.codes.size()) {
    throw std::invalid_argument("dequantize: output size mismatch");
  }
  for (std::size_t i = 0; i < qt.codes.size(); ++i) {
    out[i] = decode_code(qt.codes[i], qt.scheme, qt.range);
  }
}

}  // namespace ber
