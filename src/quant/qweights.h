// Code-resident weight storage for compute-on-codes inference.
//
// A QuantWeightStore owns one weight matrix as stored code words plus the
// derived int8 mirror the blocked qgemm consumes (kernels/qweight.h): the
// rebased levels q, their per-row sums, and the affine decode folded onto
// the rebased levels. Both representations are kept consistent under O(1)
// single-code patches, which is what makes delta fault redeploys
// (serve/replica.h) O(#changed codes) instead of O(#weights).
//
// Rebasing: stored levels v (quant/quantizer.h:code_level) span
// [-2^(m-1), 2^(m-1)] once faults are injected — unsigned codes reach
// v = 2^m-1 - (2^(m-1)-1) = 2^(m-1), one past int8. The store therefore
// keeps q = code - 2^(m-1) for unsigned schemes (so v = q + 1) and the
// sign-extended v for signed schemes; both fit int8 exactly for m <= 8.
// The +1 is folded into the view's shift term (shift' = shift + slope), so
// decode(code) == slope * q + shift' for every possible faulted code word.
//
// For m > 8 the int8 mirror is absent and the view falls back to the
// scalar decode oracle inside the backend.
#pragma once

#include <cstdint>
#include <vector>

#include "kernels/qweight.h"
#include "quant/quantizer.h"

namespace ber {

class QuantWeightStore {
 public:
  // Adopts codes for a [rows, cols] weight matrix; qt.size() must be
  // rows * cols. Builds the int8 mirror when the scheme has bits <= 8.
  QuantWeightStore(QuantizedTensor qt, long rows, long cols);

  long rows() const { return rows_; }
  long cols() const { return cols_; }
  const QuantizedTensor& tensor() const { return qt_; }
  bool has_int8() const { return !q_.empty(); }

  // The kernel-facing view. Valid until the store is mutated or destroyed.
  kernels::QWeightView view() const;

  // Patches one code word (e.g. one injected fault) in O(1), keeping the
  // int8 mirror and row sums consistent. Returns the decoded float so the
  // caller can refresh its dequantized mirror in the same step.
  float set_code(std::size_t index, std::uint16_t code);

 private:
  QuantizedTensor qt_;
  long rows_ = 0;
  long cols_ = 0;
  std::vector<std::int8_t> q_;          // rebased levels (empty if bits > 8)
  std::vector<std::int32_t> row_sums_;  // per-row sums of q_
  float slope_ = 1.0f;                  // decode slope on q
  float shift_ = 0.0f;                  // decode shift incl. rebase fold
};

}  // namespace ber
