#include "data/store.h"

namespace ber::data {

const Dataset& DatasetStore::get(const std::string& key,
                                 const std::function<Dataset()>& build) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;
  return cache_.emplace(key, build()).first->second;
}

bool DatasetStore::contains(const std::string& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.find(key) != cache_.end();
}

std::size_t DatasetStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

DatasetStore& dataset_store() {
  static DatasetStore store;
  return store;
}

}  // namespace ber::data
