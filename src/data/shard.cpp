#include "data/shard.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>
#include <utility>
#include <vector>

#include "data/io.h"
#include "obs/metrics.h"

namespace ber::data {

namespace {

constexpr std::uint64_t kMaxShardCount = 100'000'000;
constexpr std::uint32_t kMaxShardDim = 4096;
constexpr std::uint64_t kChecksumSeed = 1469598103934665603ull;

void put_le32(unsigned char* p, std::uint32_t v) {
  p[0] = static_cast<unsigned char>(v);
  p[1] = static_cast<unsigned char>(v >> 8);
  p[2] = static_cast<unsigned char>(v >> 16);
  p[3] = static_cast<unsigned char>(v >> 24);
}

void put_le64(unsigned char* p, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) p[i] = static_cast<unsigned char>(v >> (8 * i));
}

std::uint32_t le32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         (static_cast<std::uint32_t>(p[1]) << 8) |
         (static_cast<std::uint32_t>(p[2]) << 16) |
         (static_cast<std::uint32_t>(p[3]) << 24);
}

std::uint64_t le64(const unsigned char* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

void encode_header(unsigned char* buf, const ShardHeader& h) {
  std::memcpy(buf, kShardMagic, 4);
  put_le32(buf + 4, kShardVersion);
  put_le64(buf + 8, h.count);
  put_le32(buf + 16, h.channels);
  put_le32(buf + 20, h.height);
  put_le32(buf + 24, h.width);
  put_le32(buf + 28, h.num_classes);
  put_le64(buf + 32, h.checksum);
  put_le64(buf + 40, 0);  // reserved
}

// Parses + validates the 48 header bytes against the actual file size.
ShardHeader parse_header(const std::string& path, const unsigned char* buf,
                         std::uint64_t bytes) {
  if (bytes < static_cast<std::uint64_t>(kShardHeaderBytes)) {
    fail(path, "truncated shard header (" + std::to_string(bytes) +
                   " bytes, need " + std::to_string(kShardHeaderBytes) + ")");
  }
  if (std::memcmp(buf, kShardMagic, 4) != 0) {
    fail(path, "bad shard magic (expected \"BERS\")");
  }
  const std::uint32_t version = le32(buf + 4);
  if (version != kShardVersion) {
    fail(path, "unsupported shard version " + std::to_string(version) +
                   " (expected " + std::to_string(kShardVersion) + ")");
  }
  ShardHeader h;
  h.count = le64(buf + 8);
  h.channels = le32(buf + 16);
  h.height = le32(buf + 20);
  h.width = le32(buf + 24);
  h.num_classes = le32(buf + 28);
  h.checksum = le64(buf + 32);
  if (h.count < 1 || h.count > kMaxShardCount) {
    fail(path, "absurd record count " + std::to_string(h.count));
  }
  if (h.channels < 1 || h.channels > kMaxShardDim || h.height < 1 ||
      h.height > kMaxShardDim || h.width < 1 || h.width > kMaxShardDim) {
    fail(path, "absurd record geometry " + std::to_string(h.channels) + "x" +
                   std::to_string(h.height) + "x" + std::to_string(h.width));
  }
  if (h.num_classes < 1 || h.num_classes > kMaxShardDim) {
    fail(path, "absurd num_classes " + std::to_string(h.num_classes));
  }
  const std::uint64_t want =
      static_cast<std::uint64_t>(kShardHeaderBytes) +
      h.count * static_cast<std::uint64_t>(h.record_stride());
  if (bytes != want) {
    fail(path, "size mismatch: header promises " + std::to_string(want) +
                   " bytes (" + std::to_string(h.count) + " records), file "
                   "has " + std::to_string(bytes));
  }
  return h;
}

}  // namespace

// -------------------------------------------------------------- ShardWriter --

ShardWriter::ShardWriter(const std::string& path, long channels, long height,
                         long width, int num_classes)
    : path_(path), checksum_(kChecksumSeed) {
  if (channels < 1 || height < 1 || width < 1 || num_classes < 1) {
    throw std::invalid_argument(
        "ShardWriter: geometry and num_classes must be >= 1");
  }
  header_.channels = static_cast<std::uint32_t>(channels);
  header_.height = static_cast<std::uint32_t>(height);
  header_.width = static_cast<std::uint32_t>(width);
  header_.num_classes = static_cast<std::uint32_t>(num_classes);
  file_ = std::fopen(path.c_str(), "wb");
  if (file_ == nullptr) fail(path_, "cannot open for writing");
  // Placeholder header; close() backpatches count + checksum.
  unsigned char buf[kShardHeaderBytes];
  encode_header(buf, header_);
  if (std::fwrite(buf, 1, sizeof(buf), file_) != sizeof(buf)) {
    fail(path_, "cannot write shard header");
  }
}

ShardWriter::~ShardWriter() {
  // Abandoned writer: close the handle, leave the file unfinalized (count 0
  // in the header makes it unreadable — a crash never yields a valid shard).
  if (file_ != nullptr) std::fclose(file_);
}

void ShardWriter::add(int label, const float* image) {
  if (file_ == nullptr) fail(path_, "ShardWriter already closed");
  const long pixels = header_.pixels();
  std::vector<unsigned char> rec(static_cast<std::size_t>(4 + 4 * pixels));
  put_le32(rec.data(), static_cast<std::uint32_t>(label));
  // Pixel floats as their IEEE-754 bit patterns, little-endian.
  for (long p = 0; p < pixels; ++p) {
    std::uint32_t bits;
    std::memcpy(&bits, image + p, 4);
    put_le32(rec.data() + 4 + 4 * p, bits);
  }
  if (std::fwrite(rec.data(), 1, rec.size(), file_) != rec.size()) {
    fail(path_, "short write at record " + std::to_string(count_));
  }
  checksum_ = fnv1a(rec.data(), rec.size(), checksum_);
  ++count_;
}

void ShardWriter::close() {
  if (file_ == nullptr) fail(path_, "ShardWriter already closed");
  header_.count = count_;
  header_.checksum = checksum_;
  unsigned char buf[kShardHeaderBytes];
  encode_header(buf, header_);
  const bool ok = std::fseek(file_, 0, SEEK_SET) == 0 &&
                  std::fwrite(buf, 1, sizeof(buf), file_) == sizeof(buf) &&
                  std::fflush(file_) == 0;
  std::fclose(file_);
  file_ = nullptr;
  if (!ok) fail(path_, "cannot finalize shard header");
}

void write_shard(const std::string& path, const Dataset& d) {
  ShardWriter w(path, d.channels(), d.height(), d.width(), d.num_classes);
  const long stride = d.channels() * d.height() * d.width();
  for (long i = 0; i < d.size(); ++i) {
    w.add(d.labels[static_cast<std::size_t>(i)], d.images.data() + i * stride);
  }
  w.close();
}

ShardHeader read_shard_header(const std::string& path) {
  const std::uint64_t bytes = file_size(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open for reading");
  unsigned char buf[kShardHeaderBytes] = {};
  const std::size_t got = std::fread(buf, 1, sizeof(buf), f);
  std::fclose(f);
  if (got != sizeof(buf)) fail(path, "truncated shard header");
  return parse_header(path, buf, bytes);
}

// -------------------------------------------------------------- ShardReader --

ShardReader::ShardReader(const std::string& path, bool verify_checksum)
    : path_(path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) fail(path_, "no such file");
  struct stat st{};
  if (::fstat(fd, &st) != 0 || !S_ISREG(st.st_mode)) {
    ::close(fd);
    fail(path_, "not a regular file");
  }
  map_bytes_ = static_cast<std::uint64_t>(st.st_size);
  if (map_bytes_ == 0) {
    ::close(fd);
    fail(path_, "empty file");
  }
  void* map = ::mmap(nullptr, map_bytes_, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping holds its own reference
  if (map == MAP_FAILED) fail(path_, "mmap failed");
  map_ = map;
  try {
    header_ = parse_header(path_, static_cast<const unsigned char*>(map_),
                           map_bytes_);
    if (verify_checksum) {
      const std::uint64_t got =
          fnv1a(static_cast<const unsigned char*>(map_) + kShardHeaderBytes,
                static_cast<std::size_t>(map_bytes_) - kShardHeaderBytes,
                kChecksumSeed);
      if (got != header_.checksum) {
        fail(path_, "payload checksum mismatch (stored " +
                        std::to_string(header_.checksum) + ", computed " +
                        std::to_string(got) + ")");
      }
    }
  } catch (...) {
    ::munmap(map_, map_bytes_);
    map_ = nullptr;
    throw;
  }
  obs::registry().counter("data.bytes_mapped").add(map_bytes_);
}

ShardReader::~ShardReader() {
  if (map_ != nullptr) ::munmap(map_, map_bytes_);
}

ShardReader::ShardReader(ShardReader&& other) noexcept
    : path_(std::move(other.path_)),
      header_(other.header_),
      map_(other.map_),
      map_bytes_(other.map_bytes_) {
  other.map_ = nullptr;
  other.map_bytes_ = 0;
}

const unsigned char* ShardReader::record(long i) const {
  return static_cast<const unsigned char*>(map_) + kShardHeaderBytes +
         i * header_.record_stride();
}

int ShardReader::label(long i) const {
  return static_cast<int>(le32(record(i)));
}

const float* ShardReader::image(long i) const {
  // The record's pixel block is 4-byte aligned (header and stride are both
  // multiples of 4), so on little-endian targets the mapped bytes ARE the
  // float array — zero copies, zero decode.
  return reinterpret_cast<const float*>(record(i) + 4);
}

Dataset ShardReader::to_dataset(long limit) const {
  const long n = limit > 0 ? std::min(limit, size()) : size();
  Dataset d;
  d.num_classes = static_cast<int>(header_.num_classes);
  d.images = Tensor({n, static_cast<long>(header_.channels),
                     static_cast<long>(header_.height),
                     static_cast<long>(header_.width)});
  d.labels.resize(static_cast<std::size_t>(n));
  const long pixels = header_.pixels();
  for (long i = 0; i < n; ++i) {
    d.labels[static_cast<std::size_t>(i)] = label(i);
    std::memcpy(d.images.data() + i * pixels, image(i),
                sizeof(float) * static_cast<std::size_t>(pixels));
  }
  return d;
}

}  // namespace ber::data
