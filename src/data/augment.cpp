#include "data/augment.h"

#include <algorithm>

#include "core/rng.h"

namespace ber {

void augment_batch(Tensor& batch, const AugmentConfig& config, Rng& rng) {
  const long n = batch.shape(0), c = batch.shape(1), h = batch.shape(2),
             w = batch.shape(3);
  std::vector<float> plane(static_cast<std::size_t>(h * w));
  for (long i = 0; i < n; ++i) {
    // Random shift with edge clamping (per image, same shift all channels).
    if (config.max_shift > 0) {
      const long dy = rng.uniform_int(-config.max_shift, config.max_shift);
      const long dx = rng.uniform_int(-config.max_shift, config.max_shift);
      if (dy != 0 || dx != 0) {
        for (long ch = 0; ch < c; ++ch) {
          float* img = batch.data() + (i * c + ch) * h * w;
          for (long y = 0; y < h; ++y) {
            const long sy = std::clamp(y - dy, 0L, h - 1);
            for (long x = 0; x < w; ++x) {
              const long sx = std::clamp(x - dx, 0L, w - 1);
              plane[static_cast<std::size_t>(y * w + x)] = img[sy * w + sx];
            }
          }
          std::copy(plane.begin(), plane.end(), img);
        }
      }
    }
    // Cutout.
    if (config.cutout > 0) {
      const long cy = rng.uniform_int(0, static_cast<int>(h) - 1);
      const long cx = rng.uniform_int(0, static_cast<int>(w) - 1);
      const long half = config.cutout / 2;
      for (long ch = 0; ch < c; ++ch) {
        float* img = batch.data() + (i * c + ch) * h * w;
        for (long y = std::max(0L, cy - half);
             y <= std::min(h - 1, cy + half); ++y) {
          for (long x = std::max(0L, cx - half);
               x <= std::min(w - 1, cx + half); ++x) {
            img[y * w + x] = config.cutout_fill;
          }
        }
      }
    }
    // Pixel noise.
    if (config.noise_std > 0.0f) {
      float* img = batch.data() + i * c * h * w;
      const long count = c * h * w;
      for (long e = 0; e < count; ++e) {
        img[e] = std::clamp(img[e] + rng.normal() * config.noise_std, 0.0f,
                            1.0f);
      }
    }
  }
}

}  // namespace ber
