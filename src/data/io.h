// Low-level file helpers shared by the dataset readers (data/idx.h,
// data/cifar.h, data/shard.h): a typed error for corrupt or truncated
// dataset files, whole-file reads, and big-endian field decoding.
//
// Hardening style follows serve/checkpoint.h: every structural property a
// reader relies on (magic, version, counts, exact file size) is validated
// against the bytes actually on disk BEFORE any allocation is sized from
// them, and every failure names the offending path and what was expected.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace ber::data {

// Error for dataset-file problems: bad magic, truncation, absurd counts,
// checksum mismatches. Distinct from std::invalid_argument (spec/parameter
// errors) so callers can tell "your config is wrong" from "your data file
// is corrupt".
class DataError : public std::runtime_error {
 public:
  explicit DataError(const std::string& what) : std::runtime_error(what) {}
};

// Throws DataError as "<path>: <why>".
[[noreturn]] void fail(const std::string& path, const std::string& why);

// Size of a regular file in bytes; throws DataError when it does not exist.
std::uint64_t file_size(const std::string& path);

// Whole-file binary read; throws DataError on open failure or short read.
std::vector<unsigned char> read_file(const std::string& path);

// Big-endian u32 at `p` (IDX headers are big-endian).
std::uint32_t be32(const unsigned char* p);

// FNV-1a over a byte range — the shard payload checksum (data/shard.h) and
// cheap content fingerprints in tests.
std::uint64_t fnv1a(const unsigned char* p, std::size_t n,
                    std::uint64_t seed = 1469598103934665603ull);

}  // namespace ber::data
