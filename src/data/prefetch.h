// Async prefetch pipeline: a background producer thread assembling
// BatchQueue-sized chunks of records ahead of the consumer, with bounded
// depth and condition-variable backpressure (the serve/batch_queue.h shape,
// pointed the other way: one producer feeding one consumer).
//
// Determinism contract: the record order is fixed up front — either the
// identity, an explicit order (the trainer's epoch shuffle), or a
// Fisher-Yates permutation from the config seed — and the single producer
// emits chunks in that order through a FIFO queue. Chunk contents are
// therefore bit-identical for a fixed (source, config) no matter the
// prefetch depth, the consumer's timing, or BER_THREADS; only the degree of
// overlap changes. depth 0 degenerates to synchronous production inside
// next() — the eager path through the very same code.
//
// Metrics (obs/metrics.h): data.batches_produced, data.prefetch_stalls
// (consumer arrived at an empty queue), and the data.queue_depth gauge.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "data/dataset.h"
#include "data/shard.h"

namespace ber::data {

// Row provider the pipeline pulls from. Implementations must tolerate
// concurrent copy() calls from the producer thread while the constructing
// thread is blocked in next().
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  virtual long size() const = 0;
  virtual long channels() const = 0;
  virtual long height() const = 0;
  virtual long width() const = 0;
  virtual int num_classes() const = 0;
  // Copies record `i`: channels*height*width floats + one label.
  virtual void copy(long i, float* out_image, int* out_label) const = 0;
};

// In-memory Dataset as a source (the trainer's epoch gather).
class DatasetSource : public RecordSource {
 public:
  explicit DatasetSource(const Dataset& d) : d_(d) {}
  long size() const override { return d_.size(); }
  long channels() const override { return d_.channels(); }
  long height() const override { return d_.height(); }
  long width() const override { return d_.width(); }
  int num_classes() const override { return d_.num_classes; }
  void copy(long i, float* out_image, int* out_label) const override;

 private:
  const Dataset& d_;
};

// mmap-ed shard as a source (records decode zero-copy out of the mapping).
class ShardSource : public RecordSource {
 public:
  explicit ShardSource(const ShardReader& r) : r_(r) {}
  long size() const override { return r_.size(); }
  long channels() const override { return r_.header().channels; }
  long height() const override { return r_.header().height; }
  long width() const override { return r_.header().width; }
  int num_classes() const override {
    return static_cast<int>(r_.header().num_classes);
  }
  void copy(long i, float* out_image, int* out_label) const override;

 private:
  const ShardReader& r_;
};

// First min(limit, size) records of another source (n_train/n_test caps).
class HeadSource : public RecordSource {
 public:
  HeadSource(const RecordSource& inner, long limit);
  long size() const override { return n_; }
  long channels() const override { return inner_.channels(); }
  long height() const override { return inner_.height(); }
  long width() const override { return inner_.width(); }
  int num_classes() const override { return inner_.num_classes(); }
  void copy(long i, float* out_image, int* out_label) const override {
    inner_.copy(i, out_image, out_label);
  }

 private:
  const RecordSource& inner_;
  long n_;
};

struct PrefetchConfig {
  long chunk_images = 64;   // records per chunk (the trainer uses batch_size)
  int depth = 4;            // chunks in flight; 0 = synchronous (no thread)
  bool shuffle = false;     // seeded Fisher-Yates over the whole stream
  std::uint64_t seed = 0;
  std::vector<long> order;  // explicit record order (overrides shuffle)
};

// One produced chunk: a [n, C, H, W] image block plus labels, numbered by
// position in the stream.
struct DataChunk {
  Tensor images;
  std::vector<int> labels;
  long index = 0;
};

class PrefetchPipeline {
 public:
  PrefetchPipeline(const RecordSource& source, PrefetchConfig config);
  ~PrefetchPipeline();
  PrefetchPipeline(const PrefetchPipeline&) = delete;
  PrefetchPipeline& operator=(const PrefetchPipeline&) = delete;

  // Pops the next chunk (FIFO). Returns false once the stream is drained.
  bool next(DataChunk& out);

  // The resolved record order (identity / explicit / seeded shuffle).
  const std::vector<long>& order() const { return order_; }
  long chunks() const { return n_chunks_; }

 private:
  DataChunk produce_chunk(long chunk_index);
  void producer_loop();

  const RecordSource& source_;
  PrefetchConfig config_;
  std::vector<long> order_;
  long n_chunks_ = 0;
  long next_sync_ = 0;  // depth 0: next chunk to produce inline

  std::mutex mu_;
  std::condition_variable can_produce_;
  std::condition_variable can_consume_;
  std::deque<DataChunk> queue_;
  long produced_ = 0;  // chunks pushed by the producer thread
  bool stop_ = false;
  std::thread producer_;
};

// Environment knobs (read per call, like core/parallel.cpp reads
// BER_THREADS): BER_PREFETCH_DEPTH (default 4; 0 = synchronous eager) and
// BER_PREFETCH_CHUNK (default 64 records).
int prefetch_depth();
long prefetch_chunk();

// Streams `src` through a PrefetchPipeline (depth/chunk from the arguments)
// into an in-memory Dataset. Bit-identical for any depth >= 0.
Dataset materialize(const RecordSource& src, int depth, long chunk_images);

}  // namespace ber::data
