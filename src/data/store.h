// Process-wide keyed dataset store: the ONE cache of materialized Datasets.
//
// Both consumers that used to keep private caches — zoo::dataset_cache()
// and api::Runner::datasets_ — route through this store with canonical keys
// (data/source.h dataset_key()), so a zoo model and an inline spec model
// that name the same data share one materialization instead of building it
// twice.
//
// get() is build-through: the builder runs under the store lock (one
// builder per key, ever), and the returned reference is stable for the
// process lifetime (std::map nodes never move). Builders must not recurse
// into the store — derived entries (eval subsets) materialize their parent
// BEFORE calling get().
#pragma once

#include <functional>
#include <map>
#include <mutex>
#include <string>

#include "data/dataset.h"

namespace ber::data {

class DatasetStore {
 public:
  // Returns the cached Dataset for `key`, building it on first request.
  const Dataset& get(const std::string& key,
                     const std::function<Dataset()>& build);

  bool contains(const std::string& key) const;
  std::size_t size() const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Dataset> cache_;
};

// The process-wide store.
DatasetStore& dataset_store();

}  // namespace ber::data
