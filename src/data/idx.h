// IDX (MNIST) binary readers.
//
// The IDX format (Y. LeCun's MNIST distribution): a big-endian header —
// magic 0x0000'08'03 for ubyte rank-3 image files, 0x0000'08'01 for ubyte
// rank-1 label files — followed by the raw ubyte payload. Images load as
// [N, 1, rows, cols] floats in [0, 1] (pixel / 255).
//
// Validation is file-size-aware: bad magic, a count/dimension that does not
// match the bytes on disk (truncation or trailing garbage), a label/image
// count mismatch, or absurd counts all throw data::DataError naming the
// path — never a silent mis-parse or an allocation sized from a lie.
#pragma once

#include <string>

#include "data/dataset.h"

namespace ber::data {

// Loads one images + labels file pair. num_classes = max label + 1.
Dataset load_idx(const std::string& images_path,
                 const std::string& labels_path);

// Loads a split from a directory holding the four standard MNIST files
// (train-images-idx3-ubyte / train-labels-idx1-ubyte / t10k-*).
Dataset load_idx_dir(const std::string& dir, bool train);

}  // namespace ber::data
