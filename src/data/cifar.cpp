#include "data/cifar.h"

#include <cstdint>
#include <stdexcept>

#include "data/io.h"

namespace ber::data {

namespace {

constexpr long kMaxRecords = 1'000'000;

// Record count of one batch file, validated against its byte size.
long record_count(const std::string& path, std::uint64_t bytes) {
  if (bytes == 0) fail(path, "empty CIFAR-10 batch file");
  if (bytes % static_cast<std::uint64_t>(kCifarRecordBytes) != 0) {
    fail(path, "size " + std::to_string(bytes) +
                   " is not a whole number of " +
                   std::to_string(kCifarRecordBytes) + "-byte records "
                   "(truncated or not a CIFAR-10 binary batch)");
  }
  const long n = static_cast<long>(
      bytes / static_cast<std::uint64_t>(kCifarRecordBytes));
  if (n > kMaxRecords) fail(path, "absurd record count " + std::to_string(n));
  return n;
}

}  // namespace

Dataset load_cifar10(const std::vector<std::string>& batch_files) {
  if (batch_files.empty()) {
    throw std::invalid_argument("load_cifar10: no batch files given");
  }
  // Two passes: size every file first so the output tensor is allocated
  // once, from validated counts.
  long total = 0;
  for (const std::string& path : batch_files) {
    total += record_count(path, file_size(path));
  }
  Dataset d;
  d.num_classes = static_cast<int>(kCifarClasses);
  d.images = Tensor({total, kCifarChannels, kCifarSide, kCifarSide});
  d.labels.resize(static_cast<std::size_t>(total));
  long at = 0;
  for (const std::string& path : batch_files) {
    const std::vector<unsigned char> bytes = read_file(path);
    const long n = record_count(path, bytes.size());
    for (long i = 0; i < n; ++i) {
      const unsigned char* rec =
          bytes.data() + static_cast<std::size_t>(i * kCifarRecordBytes);
      const int label = rec[0];
      if (label >= kCifarClasses) {
        fail(path, "record " + std::to_string(i) + ": label byte " +
                       std::to_string(label) + " out of range [0, 9]");
      }
      d.labels[static_cast<std::size_t>(at)] = label;
      float* out = d.images.data() + at * kCifarImageBytes;
      for (long p = 0; p < kCifarImageBytes; ++p) {
        out[p] = static_cast<float>(rec[1 + p]) * (1.0f / 255.0f);
      }
      ++at;
    }
  }
  return d;
}

Dataset load_cifar10_dir(const std::string& dir, bool train) {
  std::vector<std::string> files;
  if (train) {
    for (int i = 1; i <= 5; ++i) {
      files.push_back(dir + "/data_batch_" + std::to_string(i) + ".bin");
    }
  } else {
    files.push_back(dir + "/test_batch.bin");
  }
  return load_cifar10(files);
}

}  // namespace ber::data
