// BERS shard format: the repo's mmap-able on-disk dataset container.
//
// Layout (little-endian, 48-byte header, then `count` fixed-stride records):
//
//   offset  size  field
//        0     4  magic "BERS"
//        4     4  u32 version (= 1)
//        8     8  u64 record count
//       16     4  u32 channels
//       20     4  u32 height
//       24     4  u32 width
//       28     4  u32 num_classes
//       32     8  u64 FNV-1a checksum of the payload bytes
//       40     8  u64 reserved (= 0)
//
// A record is `i32 label` followed by channels*height*width f32 pixels, so
// the stride is 4 * (1 + C*H*W) bytes and every float in the mapping is
// 4-byte aligned (header and stride are both multiples of 4).
//
// ShardWriter streams records and backpatches count + checksum on close();
// ShardReader maps the file read-only (POSIX mmap) and serves labels and
// pixel rows zero-copy out of the mapping. Open-time validation in the
// checkpoint.h style: magic, version, absurd dims, exact file size against
// the promised count, and (by default) the payload checksum all throw
// data::DataError before a single record is trusted.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>

#include "data/dataset.h"

namespace ber::data {

inline constexpr char kShardMagic[4] = {'B', 'E', 'R', 'S'};
inline constexpr std::uint32_t kShardVersion = 1;
inline constexpr long kShardHeaderBytes = 48;

struct ShardHeader {
  std::uint64_t count = 0;
  std::uint32_t channels = 0;
  std::uint32_t height = 0;
  std::uint32_t width = 0;
  std::uint32_t num_classes = 0;
  std::uint64_t checksum = 0;

  long pixels() const {
    return static_cast<long>(channels) * height * width;
  }
  long record_stride() const {  // bytes
    return 4 + 4 * pixels();
  }
};

// Streams records into `path`, backpatching the header on close(). Throws
// DataError on any I/O failure; the destructor closes without finalizing
// (a shard abandoned mid-write stays invalid and unreadable by design).
class ShardWriter {
 public:
  ShardWriter(const std::string& path, long channels, long height, long width,
              int num_classes);
  ~ShardWriter();
  ShardWriter(const ShardWriter&) = delete;
  ShardWriter& operator=(const ShardWriter&) = delete;

  // Appends one record: a label and channels*height*width floats.
  void add(int label, const float* image);
  // Seek-back finalize: writes count + checksum into the header and closes.
  void close();

  std::uint64_t count() const { return count_; }

 private:
  std::string path_;
  std::FILE* file_ = nullptr;
  ShardHeader header_;
  std::uint64_t count_ = 0;
  std::uint64_t checksum_;
};

// Whole-dataset convenience over ShardWriter.
void write_shard(const std::string& path, const Dataset& d);

// Header-only peek (reads 48 bytes, validates magic/version/size math, no
// mapping, no checksum). For tooling: `ber_data info`.
ShardHeader read_shard_header(const std::string& path);

// Read-only mmap view of a shard. Move-only; the mapping lives until
// destruction, so labels() / image(i) pointers are zero-copy borrows.
class ShardReader {
 public:
  explicit ShardReader(const std::string& path, bool verify_checksum = true);
  ~ShardReader();
  ShardReader(ShardReader&& other) noexcept;
  ShardReader& operator=(ShardReader&&) = delete;
  ShardReader(const ShardReader&) = delete;
  ShardReader& operator=(const ShardReader&) = delete;

  const ShardHeader& header() const { return header_; }
  long size() const { return static_cast<long>(header_.count); }
  const std::string& path() const { return path_; }

  int label(long i) const;
  // Pointer into the mapping: header().pixels() floats, 4-byte aligned.
  const float* image(long i) const;

  // Materializes the first min(limit, size) records (limit 0 = all) as an
  // in-memory Dataset.
  Dataset to_dataset(long limit = 0) const;

 private:
  const unsigned char* record(long i) const;

  std::string path_;
  ShardHeader header_;
  void* map_ = nullptr;
  std::uint64_t map_bytes_ = 0;
};

}  // namespace ber::data
