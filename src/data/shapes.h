// Procedural shape-classification datasets.
//
// Offline substitutes for MNIST / CIFAR10 / CIFAR100 (see DESIGN.md,
// substitution table): 20 parametric shape classes rendered with randomized
// position, scale, colors and additive Gaussian noise. Difficulty is
// controlled by noise level, jitter and class count so the three presets
// reproduce the paper's task-difficulty ordering (mnist << cifar10 <
// cifar100) and give non-trivial clean test error for the robustness
// experiments to act on.
//
// All generation is deterministic in (seed, split): train and test streams
// are domain-separated, so the splits are disjoint by construction.
#pragma once

#include <cstdint>

#include "data/dataset.h"

namespace ber {

struct SyntheticConfig {
  int n_train = 3000;
  int n_test = 1000;
  int image_size = 12;
  int channels = 3;
  int num_classes = 10;
  double noise_std = 0.18;
  int jitter = 2;          // max |center offset| in pixels
  double scale_lo = 0.7;   // shape scale range (fraction of half-size)
  double scale_hi = 1.05;
  std::uint64_t seed = 7;

  // CIFAR10 analog: 10 classes, color, heavy jitter/noise.
  static SyntheticConfig cifar10();
  // MNIST analog: 10 classes, grayscale, easy (sub-1% error reachable).
  static SyntheticConfig mnist();
  // CIFAR100 analog: 20 classes, color, noisier.
  static SyntheticConfig cifar100();
};

// Renders one example of class `label` into img [C, H, W] (contiguous).
// Exposed for tests.
void render_shape(int label, int num_classes, const SyntheticConfig& config,
                  std::uint64_t sample_seed, float* img);

// Builds the train or test split. Class labels cycle 0..K-1 so splits are
// exactly balanced.
Dataset make_synthetic(const SyntheticConfig& config, bool train);

}  // namespace ber
