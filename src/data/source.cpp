#include "data/source.h"

#include <stdexcept>

#include "data/cifar.h"
#include "data/idx.h"
#include "data/prefetch.h"
#include "data/shard.h"

namespace ber::data {

const std::vector<std::string>& dataset_source_names() {
  static const std::vector<std::string> names{"synthetic", "idx", "cifar10",
                                              "shard"};
  return names;
}

bool known_dataset_source(const std::string& source) {
  for (const std::string& n : dataset_source_names()) {
    if (n == source) return true;
  }
  return false;
}

void check_dataset_source(const std::string& source,
                          const std::string& where) {
  if (known_dataset_source(source)) return;
  std::string msg =
      where + ": unknown dataset source \"" + source + "\" (known:";
  for (const std::string& n : dataset_source_names()) msg += " " + n;
  throw std::invalid_argument(msg + ")");
}

SyntheticConfig source_geometry(const std::string& source) {
  SyntheticConfig c;
  c.n_train = 0;  // file-backed: 0 = every record on disk
  c.n_test = 0;
  c.seed = 0;
  if (source == "idx") {
    c.channels = 1;
    c.image_size = 28;
    c.num_classes = 10;
  } else if (source == "cifar10") {
    c.channels = 3;
    c.image_size = 32;
    c.num_classes = 10;
  } else {  // shard: geometry lives in the header, unknown until run time
    c.channels = 0;
    c.image_size = 0;
    c.num_classes = 0;
  }
  return c;
}

std::vector<std::string> split_files(const std::string& source,
                                     const std::string& path, bool train) {
  std::vector<std::string> files;
  if (source == "idx") {
    const std::string stem = train ? "train" : "t10k";
    files.push_back(path + "/" + stem + "-images-idx3-ubyte");
    files.push_back(path + "/" + stem + "-labels-idx1-ubyte");
  } else if (source == "cifar10") {
    if (train) {
      for (int i = 1; i <= 5; ++i) {
        files.push_back(path + "/data_batch_" + std::to_string(i) + ".bin");
      }
    } else {
      files.push_back(path + "/test_batch.bin");
    }
  } else if (source == "shard") {
    files.push_back(path + (train ? "/train.bers" : "/test.bers"));
  }
  return files;  // synthetic: no files
}

Json source_layouts() {
  Json j = Json::object();
  j.set("synthetic",
        "procedural shapes, no files; \"name\" picks the preset "
        "(c10 | mnist | c100)");
  j.set("idx",
        "path = dir with train-images-idx3-ubyte, train-labels-idx1-ubyte, "
        "t10k-images-idx3-ubyte, t10k-labels-idx1-ubyte (MNIST layout)");
  j.set("cifar10",
        "path = dir with data_batch_1.bin .. data_batch_5.bin + "
        "test_batch.bin (CIFAR-10 binary version)");
  j.set("shard",
        "path = dir with train.bers + test.bers (pack with the ber_data "
        "tool); streamed through the prefetch pipeline");
  return j;
}

Dataset load_split(const SourceSpec& spec, bool train) {
  check_dataset_source(spec.source, "load_split");
  if (spec.source == "synthetic") {
    return make_synthetic(spec.synthetic, train);
  }
  const long cap = train ? spec.synthetic.n_train : spec.synthetic.n_test;
  if (spec.source == "shard") {
    // The streaming path: zero-copy records out of the mapping, assembled
    // into chunks by the background producer. Depth 0 (BER_PREFETCH_DEPTH)
    // degenerates to the eager path through the same code; contents are
    // bit-identical either way.
    const ShardReader reader(split_files("shard", spec.path, train).front());
    const ShardSource source(reader);
    const HeadSource head(source, cap);
    return materialize(head, prefetch_depth(), prefetch_chunk());
  }
  Dataset d = spec.source == "idx"
                  ? load_idx_dir(spec.path, train)
                  : load_cifar10_dir(spec.path, train);
  if (cap > 0 && cap < d.size()) d = d.head(cap);
  return d;
}

std::string dataset_key(const SourceSpec& spec, const std::string& split) {
  if (spec.source == "synthetic") {
    // Key on the full content-determining config, not the preset name: two
    // presets (or a preset plus overrides) that generate identical data
    // share one materialization.
    const SyntheticConfig& c = spec.synthetic;
    return "synthetic/" + std::to_string(c.channels) + "x" +
           std::to_string(c.image_size) + "c" + std::to_string(c.num_classes) +
           "/" + std::to_string(c.n_train) + "_" + std::to_string(c.n_test) +
           "/s" + std::to_string(c.seed) + "/n" +
           std::to_string(c.noise_std) + "_j" + std::to_string(c.jitter) +
           "_" + std::to_string(c.scale_lo) + "-" +
           std::to_string(c.scale_hi) + "/" + split;
  }
  const long cap =
      split == "train" ? spec.synthetic.n_train : spec.synthetic.n_test;
  return spec.source + "/" + spec.path + "/cap" + std::to_string(cap) + "/" +
         split;
}

}  // namespace ber::data
