// CIFAR-10 binary-version readers.
//
// The CIFAR-10 "binary version" distribution: each file is a flat
// concatenation of 3073-byte records — 1 label byte in [0, 9] followed by
// 3072 pixel bytes in channel-planar R/G/B order (exactly our NCHW layout
// for one [3, 32, 32] image). Pixels load as floats in [0, 1].
//
// Validation mirrors data/idx.h: a file whose size is not a whole number of
// records, an empty file, an absurd record count, or an out-of-range label
// byte throws data::DataError naming the path and offset.
#pragma once

#include <string>
#include <vector>

#include "data/dataset.h"

namespace ber::data {

constexpr long kCifarSide = 32;
constexpr long kCifarChannels = 3;
constexpr long kCifarClasses = 10;
constexpr long kCifarImageBytes = kCifarChannels * kCifarSide * kCifarSide;
constexpr long kCifarRecordBytes = 1 + kCifarImageBytes;  // label + pixels

// Loads and concatenates one or more batch files, in the order given.
Dataset load_cifar10(const std::vector<std::string>& batch_files);

// Loads a split from a directory with the standard binary-version layout:
// data_batch_1.bin .. data_batch_5.bin (train) and test_batch.bin (test).
Dataset load_cifar10_dir(const std::string& dir, bool train);

}  // namespace ber::data
