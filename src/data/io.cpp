#include "data/io.h"

#include <sys/stat.h>

#include <cstdio>

namespace ber::data {

void fail(const std::string& path, const std::string& why) {
  throw DataError(path + ": " + why);
}

std::uint64_t file_size(const std::string& path) {
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISREG(st.st_mode)) {
    fail(path, "no such file");
  }
  return static_cast<std::uint64_t>(st.st_size);
}

std::vector<unsigned char> read_file(const std::string& path) {
  const std::uint64_t size = file_size(path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) fail(path, "cannot open for reading");
  std::vector<unsigned char> bytes(static_cast<std::size_t>(size));
  const std::size_t got =
      bytes.empty() ? 0 : std::fread(bytes.data(), 1, bytes.size(), f);
  std::fclose(f);
  if (got != bytes.size()) {
    fail(path, "short read (" + std::to_string(got) + " of " +
                   std::to_string(bytes.size()) + " bytes)");
  }
  return bytes;
}

std::uint32_t be32(const unsigned char* p) {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

std::uint64_t fnv1a(const unsigned char* p, std::size_t n,
                    std::uint64_t seed) {
  std::uint64_t h = seed;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

}  // namespace ber::data
