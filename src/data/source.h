// Dataset sources: the name map behind DatasetSection.source.
//
// A source says WHERE records come from (synthetic | idx | cifar10 | shard);
// the dataset name/preset says what they look like. load_split() is the one
// funnel every consumer uses — Runner, zoo, ber_data — so file-backed and
// procedural data flow through identical code, and the shard path streams
// through the async prefetch pipeline (data/prefetch.h) sized by the
// BER_PREFETCH_DEPTH / BER_PREFETCH_CHUNK knobs.
#pragma once

#include <string>
#include <vector>

#include "core/json.h"
#include "data/dataset.h"
#include "data/shapes.h"

namespace ber::data {

// Everything needed to load one dataset: the source kind, the root
// directory for file-backed sources, and the synthetic config — whose
// n_train/n_test double as per-split record caps for file-backed sources
// (0 = all records on disk).
struct SourceSpec {
  std::string source = "synthetic";
  std::string path;
  SyntheticConfig synthetic;
};

// The accepted source names, in registry order: synthetic, idx, cifar10,
// shard. The single source of truth dataset_from_json validates against.
const std::vector<std::string>& dataset_source_names();
bool known_dataset_source(const std::string& source);

// Throws std::invalid_argument listing the accepted names ("<where>:
// unknown dataset source \"x\" (known: synthetic idx cifar10 shard)").
void check_dataset_source(const std::string& source, const std::string& where);

// Parse-time geometry defaults per source (model sections infer
// in_channels/image_size/num_classes from these): idx = 1x28x28/10,
// cifar10 = 3x32x32/10. Shard geometry lives in the shard header, which
// must not be read at parse time (configs parse without data files), so
// "shard" returns zeros — shard-backed model sections spell geometry out.
SyntheticConfig source_geometry(const std::string& source);

// The files a split expects under `path` (empty for synthetic) — shared by
// the loader, ber_data and `ber_run --list datasets`.
std::vector<std::string> split_files(const std::string& source,
                                     const std::string& path, bool train);

// Human-readable expected on-disk layout per source (ber_run --list).
Json source_layouts();

// Loads one split through the source funnel. File-backed sources throw
// data::DataError on missing/corrupt files; unknown sources throw
// std::invalid_argument listing the accepted names.
Dataset load_split(const SourceSpec& spec, bool train);

// Canonical store key for (spec, split) — split is "train" or "test".
// Derived subsets append suffixes to these keys (e.g. "<key>/head500").
std::string dataset_key(const SourceSpec& spec, const std::string& split);

}  // namespace ber::data
