#include "data/idx.h"

#include <cstdint>
#include <vector>

#include "data/io.h"

namespace ber::data {

namespace {

constexpr std::uint32_t kImagesMagic = 0x00000803;  // ubyte, 3 dims
constexpr std::uint32_t kLabelsMagic = 0x00000801;  // ubyte, 1 dim
constexpr long kImagesHeader = 16;                  // magic + n + rows + cols
constexpr long kLabelsHeader = 8;                   // magic + n
constexpr long kMaxCount = 10'000'000;
constexpr long kMaxSide = 4096;

}  // namespace

Dataset load_idx(const std::string& images_path,
                 const std::string& labels_path) {
  const std::vector<unsigned char> img = read_file(images_path);
  if (static_cast<long>(img.size()) < kImagesHeader) {
    fail(images_path, "truncated IDX header (" + std::to_string(img.size()) +
                          " bytes, need " + std::to_string(kImagesHeader) + ")");
  }
  if (be32(img.data()) != kImagesMagic) {
    fail(images_path, "bad IDX image magic (expected 0x00000803)");
  }
  const long n = static_cast<long>(be32(img.data() + 4));
  const long rows = static_cast<long>(be32(img.data() + 8));
  const long cols = static_cast<long>(be32(img.data() + 12));
  if (n < 1 || n > kMaxCount) {
    fail(images_path, "absurd image count " + std::to_string(n));
  }
  if (rows < 1 || rows > kMaxSide || cols < 1 || cols > kMaxSide) {
    fail(images_path, "absurd image dims " + std::to_string(rows) + "x" +
                          std::to_string(cols));
  }
  // Exact size: truncated files AND trailing garbage both fail — a payload
  // that does not match its own header is not trustworthy.
  const std::uint64_t want_img =
      static_cast<std::uint64_t>(kImagesHeader) +
      static_cast<std::uint64_t>(n) * static_cast<std::uint64_t>(rows * cols);
  if (img.size() != want_img) {
    fail(images_path, "size mismatch: header promises " +
                          std::to_string(want_img) + " bytes, file has " +
                          std::to_string(img.size()));
  }

  const std::vector<unsigned char> lab = read_file(labels_path);
  if (static_cast<long>(lab.size()) < kLabelsHeader) {
    fail(labels_path, "truncated IDX header (" + std::to_string(lab.size()) +
                          " bytes, need " + std::to_string(kLabelsHeader) + ")");
  }
  if (be32(lab.data()) != kLabelsMagic) {
    fail(labels_path, "bad IDX label magic (expected 0x00000801)");
  }
  const long n_lab = static_cast<long>(be32(lab.data() + 4));
  if (n_lab != n) {
    fail(labels_path, "label count " + std::to_string(n_lab) +
                          " does not match image count " + std::to_string(n));
  }
  if (lab.size() != static_cast<std::uint64_t>(kLabelsHeader + n)) {
    fail(labels_path, "size mismatch: header promises " +
                          std::to_string(kLabelsHeader + n) + " bytes, file has " +
                          std::to_string(lab.size()));
  }

  Dataset d;
  d.images = Tensor({n, 1, rows, cols});
  d.labels.resize(static_cast<std::size_t>(n));
  const unsigned char* px = img.data() + kImagesHeader;
  float* out = d.images.data();
  const long pixels = n * rows * cols;
  for (long i = 0; i < pixels; ++i) {
    out[i] = static_cast<float>(px[i]) * (1.0f / 255.0f);
  }
  int max_label = 0;
  for (long i = 0; i < n; ++i) {
    const int label = lab[static_cast<std::size_t>(kLabelsHeader + i)];
    d.labels[static_cast<std::size_t>(i)] = label;
    if (label > max_label) max_label = label;
  }
  if (max_label > 999) {
    fail(labels_path, "absurd label " + std::to_string(max_label));
  }
  d.num_classes = max_label + 1;
  return d;
}

Dataset load_idx_dir(const std::string& dir, bool train) {
  const std::string stem = train ? "train" : "t10k";
  return load_idx(dir + "/" + stem + "-images-idx3-ubyte",
                  dir + "/" + stem + "-labels-idx1-ubyte");
}

}  // namespace ber::data
