#include "data/shapes.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "core/hash.h"
#include "core/rng.h"

namespace ber {

void Dataset::batch(long begin, long end, Tensor& out_images,
                    std::vector<int>& out_labels) const {
  const long n = end - begin;
  const long c = channels(), h = height(), w = width();
  out_images = Tensor({n, c, h, w});
  out_labels.resize(static_cast<std::size_t>(n));
  const long stride = c * h * w;
  std::memcpy(out_images.data(), images.data() + begin * stride,
              sizeof(float) * static_cast<std::size_t>(n * stride));
  for (long i = 0; i < n; ++i) {
    out_labels[static_cast<std::size_t>(i)] =
        labels[static_cast<std::size_t>(begin + i)];
  }
}

Dataset Dataset::head(long n) const {
  n = std::min(n, size());
  Dataset d;
  d.num_classes = num_classes;
  std::vector<int> lab;
  Tensor img;
  batch(0, n, img, lab);
  d.images = std::move(img);
  d.labels = std::move(lab);
  return d;
}

SyntheticConfig SyntheticConfig::cifar10() { return SyntheticConfig{}; }

SyntheticConfig SyntheticConfig::mnist() {
  SyntheticConfig c;
  c.n_train = 2500;
  c.channels = 1;
  c.noise_std = 0.08;
  c.jitter = 1;
  c.seed = 11;
  return c;
}

SyntheticConfig SyntheticConfig::cifar100() {
  SyntheticConfig c;
  c.n_train = 4000;
  c.num_classes = 20;
  c.noise_std = 0.22;
  c.seed = 13;
  return c;
}

namespace {

// Membership test for shape `cls` at normalized coordinates (x, y) in
// [-1, 1] (already centered/scaled). `t` is a stroke half-width.
bool shape_member(int cls, double x, double y) {
  constexpr double r = 0.85;   // nominal shape radius
  constexpr double t = 0.22;   // stroke half-width
  const double ax = std::abs(x), ay = std::abs(y);
  const double rad = std::sqrt(x * x + y * y);
  const bool in_box = ax <= r && ay <= r;
  switch (cls) {
    case 0:  // filled disk
      return rad <= r;
    case 1:  // square frame
      return in_box && std::max(ax, ay) >= r - 2.0 * t;
    case 2:  // plus
      return in_box && (ax <= t || ay <= t);
    case 3:  // X
      return in_box && (std::abs(x - y) <= 1.4 * t || std::abs(x + y) <= 1.4 * t);
    case 4:  // horizontal stripes
      return in_box && std::fmod(std::abs(y + 2.0), 0.66) < 0.33;
    case 5:  // vertical stripes
      return in_box && std::fmod(std::abs(x + 2.0), 0.66) < 0.33;
    case 6:  // checkerboard
      return in_box && (static_cast<int>(std::floor((x + 2.0) / 0.55)) +
                        static_cast<int>(std::floor((y + 2.0) / 0.55))) % 2 == 0;
    case 7:  // ring
      return rad <= r && rad >= r - 2.0 * t;
    case 8:  // filled triangle (apex up)
      return y >= -r && y <= r && ax <= (r - y) * 0.5;
    case 9:  // filled diamond
      return ax + ay <= r;
    case 10:  // filled square
      return in_box;
    case 11:  // horizontal bar
      return ax <= r && ay <= 1.2 * t;
    case 12:  // vertical bar
      return ay <= r && ax <= 1.2 * t;
    case 13:  // 2x2 dot grid
      return std::min({std::hypot(x - 0.45, y - 0.45), std::hypot(x + 0.45, y - 0.45),
                       std::hypot(x - 0.45, y + 0.45),
                       std::hypot(x + 0.45, y + 0.45)}) <= 1.3 * t;
    case 14:  // half disk (right)
      return rad <= r && x >= 0.0;
    case 15:  // L-shape
      return (ay <= r && x >= -r && x <= -r + 2.0 * t) ||
             (ax <= r && y >= r - 2.0 * t && y <= r);
    case 16:  // T-shape
      return (ax <= r && y <= -r + 2.0 * t && y >= -r) || (ay <= r && ax <= t);
    case 17:  // single diagonal stroke
      return in_box && std::abs(x - y) <= 1.4 * t;
    case 18:  // four corner dots
      return std::min({std::hypot(x - r, y - r), std::hypot(x + r, y - r),
                       std::hypot(x - r, y + r), std::hypot(x + r, y + r)}) <=
             1.6 * t;
    case 19:  // ring + center dot
      return (rad <= r && rad >= r - 1.6 * t) || rad <= 1.2 * t;
    default:
      throw std::invalid_argument("shape_member: unknown class");
  }
}

}  // namespace

void render_shape(int label, int num_classes, const SyntheticConfig& config,
                  std::uint64_t sample_seed, float* img) {
  if (label < 0 || label >= num_classes || num_classes > 20) {
    throw std::invalid_argument("render_shape: bad label/class count");
  }
  Rng rng(hash_mix(config.seed, sample_seed, 0xF00DULL));
  const int hw = config.image_size;
  const double half = (hw - 1) / 2.0;

  const double cx = half + rng.uniform(-config.jitter, config.jitter);
  const double cy = half + rng.uniform(-config.jitter, config.jitter);
  const double scale = rng.uniform(config.scale_lo, config.scale_hi) * half;

  // Foreground / background colors with guaranteed per-image contrast.
  float fg[3], bg[3];
  if (config.channels == 1) {
    bg[0] = static_cast<float>(rng.uniform(0.0, 0.3));
    fg[0] = static_cast<float>(rng.uniform(0.7, 1.0));
  } else {
    // Random base colors; push them apart along a random channel mix until
    // mean contrast is at least 0.4.
    for (int c = 0; c < 3; ++c) {
      bg[c] = static_cast<float>(rng.uniform(0.0, 1.0));
      fg[c] = static_cast<float>(rng.uniform(0.0, 1.0));
    }
    double contrast = 0.0;
    for (int c = 0; c < 3; ++c) contrast += std::abs(fg[c] - bg[c]);
    if (contrast < 1.2) {
      for (int c = 0; c < 3; ++c) {
        fg[c] = std::clamp(fg[c] + (fg[c] >= bg[c] ? 0.5f : -0.5f), 0.0f, 1.0f);
      }
    }
  }

  for (int y = 0; y < hw; ++y) {
    for (int x = 0; x < hw; ++x) {
      const double nx = (x - cx) / scale;
      const double ny = (y - cy) / scale;
      const bool member = shape_member(label, nx, ny);
      for (int c = 0; c < config.channels; ++c) {
        const float base = member ? fg[std::min(c, 2)] : bg[std::min(c, 2)];
        const float noisy =
            base + rng.normal() * static_cast<float>(config.noise_std);
        img[(c * hw + y) * hw + x] = std::clamp(noisy, 0.0f, 1.0f);
      }
    }
  }
}

Dataset make_synthetic(const SyntheticConfig& config, bool train) {
  const int n = train ? config.n_train : config.n_test;
  Dataset d;
  d.num_classes = config.num_classes;
  d.images = Tensor(
      {n, config.channels, config.image_size, config.image_size});
  d.labels.resize(static_cast<std::size_t>(n));
  const long stride =
      config.channels * config.image_size * config.image_size;
  // Domain separation: test sample seeds live in a disjoint index range.
  const std::uint64_t split_base = train ? 0ULL : 0x80000000ULL;
  for (int i = 0; i < n; ++i) {
    const int label = i % config.num_classes;
    d.labels[static_cast<std::size_t>(i)] = label;
    render_shape(label, config.num_classes, config,
                 split_base + static_cast<std::uint64_t>(i),
                 d.images.data() + i * stride);
  }
  return d;
}

}  // namespace ber
