// In-memory labeled image dataset (NCHW, float pixels in [0, 1]).
#pragma once

#include <vector>

#include "tensor/tensor.h"

namespace ber {

struct Dataset {
  Tensor images;            // [N, C, H, W]
  std::vector<int> labels;  // N entries in [0, num_classes)
  int num_classes = 0;

  long size() const { return images.dim() > 0 ? images.shape(0) : 0; }
  long channels() const { return images.shape(1); }
  long height() const { return images.shape(2); }
  long width() const { return images.shape(3); }

  // Copies examples [begin, end) into a batch tensor + labels.
  void batch(long begin, long end, Tensor& out_images,
             std::vector<int>& out_labels) const;

  // First `n` examples as a new dataset (cheap evaluation subsets).
  Dataset head(long n) const;
};

}  // namespace ber
