// Train-time data augmentation.
//
// Stand-in for the paper's AutoAugment + Cutout pipeline: random shift
// (pad-crop), cutout patches and light pixel noise — enough regularization
// for the small synthetic tasks without an augmentation-policy search.
#pragma once

#include "data/dataset.h"

namespace ber {

class Rng;

struct AugmentConfig {
  int max_shift = 2;        // random translation in pixels (0 disables)
  int cutout = 3;           // square cutout side (0 disables)
  float cutout_fill = 0.5f; // fill value for cutout windows
  float noise_std = 0.02f;  // additive Gaussian pixel noise (0 disables)
};

// Augments a batch [N, C, H, W] in place.
void augment_batch(Tensor& batch, const AugmentConfig& config, Rng& rng);

}  // namespace ber
