#include "data/prefetch.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <stdexcept>
#include <utility>

#include "core/rng.h"
#include "obs/metrics.h"

namespace ber::data {

void DatasetSource::copy(long i, float* out_image, int* out_label) const {
  const long stride = d_.channels() * d_.height() * d_.width();
  std::memcpy(out_image, d_.images.data() + i * stride,
              sizeof(float) * static_cast<std::size_t>(stride));
  *out_label = d_.labels[static_cast<std::size_t>(i)];
}

void ShardSource::copy(long i, float* out_image, int* out_label) const {
  const long pixels = r_.header().pixels();
  std::memcpy(out_image, r_.image(i),
              sizeof(float) * static_cast<std::size_t>(pixels));
  *out_label = r_.label(i);
}

HeadSource::HeadSource(const RecordSource& inner, long limit)
    : inner_(inner),
      n_(limit > 0 ? std::min(limit, inner.size()) : inner.size()) {}

// --------------------------------------------------------- PrefetchPipeline --

namespace {

obs::Counter& produced_counter() {
  static obs::Counter& c = obs::registry().counter("data.batches_produced");
  return c;
}

obs::Counter& stalls_counter() {
  static obs::Counter& c = obs::registry().counter("data.prefetch_stalls");
  return c;
}

obs::Gauge& depth_gauge() {
  static obs::Gauge& g = obs::registry().gauge("data.queue_depth");
  return g;
}

}  // namespace

PrefetchPipeline::PrefetchPipeline(const RecordSource& source,
                                   PrefetchConfig config)
    : source_(source), config_(std::move(config)) {
  if (config_.chunk_images < 1) {
    throw std::invalid_argument("PrefetchPipeline: chunk_images must be >= 1");
  }
  if (config_.depth < 0) {
    throw std::invalid_argument("PrefetchPipeline: depth must be >= 0");
  }
  if (!config_.order.empty()) {
    for (const long i : config_.order) {
      if (i < 0 || i >= source_.size()) {
        throw std::invalid_argument(
            "PrefetchPipeline: explicit order index " + std::to_string(i) +
            " out of range [0, " + std::to_string(source_.size()) + ")");
      }
    }
    order_ = std::move(config_.order);
  } else {
    order_.resize(static_cast<std::size_t>(source_.size()));
    std::iota(order_.begin(), order_.end(), 0L);
    if (config_.shuffle) {
      // Same Fisher-Yates form as the trainer's epoch shuffle, so a fixed
      // seed pins the permutation regardless of who consumes the stream.
      Rng rng(config_.seed);
      for (long i = static_cast<long>(order_.size()) - 1; i > 0; --i) {
        std::swap(order_[static_cast<std::size_t>(i)],
                  order_[static_cast<std::size_t>(
                      rng.uniform_int(0, static_cast<int>(i)))]);
      }
    }
  }
  const long n = static_cast<long>(order_.size());
  n_chunks_ = (n + config_.chunk_images - 1) / config_.chunk_images;
  if (config_.depth > 0 && n_chunks_ > 0) {
    producer_ = std::thread([this] { producer_loop(); });
  }
}

PrefetchPipeline::~PrefetchPipeline() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  can_produce_.notify_all();
  can_consume_.notify_all();
  if (producer_.joinable()) producer_.join();
}

DataChunk PrefetchPipeline::produce_chunk(long chunk_index) {
  const long begin = chunk_index * config_.chunk_images;
  const long end = std::min(begin + config_.chunk_images,
                            static_cast<long>(order_.size()));
  const long b = end - begin;
  DataChunk chunk;
  chunk.index = chunk_index;
  chunk.images = Tensor(
      {b, source_.channels(), source_.height(), source_.width()});
  chunk.labels.resize(static_cast<std::size_t>(b));
  const long stride = source_.channels() * source_.height() * source_.width();
  for (long i = 0; i < b; ++i) {
    source_.copy(order_[static_cast<std::size_t>(begin + i)],
                 chunk.images.data() + i * stride,
                 &chunk.labels[static_cast<std::size_t>(i)]);
  }
  produced_counter().add(1);
  return chunk;
}

void PrefetchPipeline::producer_loop() {
  const std::size_t depth = static_cast<std::size_t>(config_.depth);
  for (long c = 0; c < n_chunks_; ++c) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      can_produce_.wait(lock,
                        [&] { return stop_ || queue_.size() < depth; });
      if (stop_) return;
    }
    DataChunk chunk = produce_chunk(c);
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (stop_) return;
      queue_.push_back(std::move(chunk));
      ++produced_;
      depth_gauge().set(static_cast<double>(queue_.size()));
    }
    can_consume_.notify_one();
  }
}

bool PrefetchPipeline::next(DataChunk& out) {
  if (config_.depth == 0) {
    // Synchronous eager path: identical chunk assembly, no thread.
    if (next_sync_ >= n_chunks_) return false;
    out = produce_chunk(next_sync_++);
    return true;
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && produced_ < n_chunks_) {
    // Consumer outran the producer: a stall, the signal CI watches to size
    // BER_PREFETCH_DEPTH against real storage latency.
    stalls_counter().add(1);
  }
  can_consume_.wait(
      lock, [&] { return !queue_.empty() || produced_ == n_chunks_; });
  if (queue_.empty()) return false;  // drained
  out = std::move(queue_.front());
  queue_.pop_front();
  depth_gauge().set(static_cast<double>(queue_.size()));
  lock.unlock();
  can_produce_.notify_one();
  return true;
}

// --------------------------------------------------------------- env knobs --

namespace {

long env_long(const char* name, long fallback, long lo) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const long v = std::strtol(raw, &end, 10);
  if (end == raw || *end != '\0') return fallback;
  return std::max(lo, v);
}

}  // namespace

int prefetch_depth() {
  return static_cast<int>(env_long("BER_PREFETCH_DEPTH", 4, 0));
}

long prefetch_chunk() { return env_long("BER_PREFETCH_CHUNK", 64, 1); }

Dataset materialize(const RecordSource& src, int depth, long chunk_images) {
  Dataset d;
  d.num_classes = src.num_classes();
  const long n = src.size();
  if (n == 0) return d;
  d.images = Tensor({n, src.channels(), src.height(), src.width()});
  d.labels.resize(static_cast<std::size_t>(n));
  PrefetchConfig pc;
  pc.chunk_images = chunk_images;
  pc.depth = depth;
  PrefetchPipeline pipe(src, pc);
  const long stride = src.channels() * src.height() * src.width();
  long at = 0;
  DataChunk chunk;
  while (pipe.next(chunk)) {
    const long b = chunk.images.shape(0);
    std::memcpy(d.images.data() + at * stride, chunk.images.data(),
                sizeof(float) * static_cast<std::size_t>(b * stride));
    std::copy(chunk.labels.begin(), chunk.labels.end(),
              d.labels.begin() + at);
    at += b;
  }
  if (at != n) {
    throw std::runtime_error("materialize: pipeline delivered " +
                             std::to_string(at) + " of " + std::to_string(n) +
                             " records");
  }
  return d;
}

}  // namespace ber::data
