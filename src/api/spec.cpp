#include "api/spec.h"

#include <algorithm>
#include <stdexcept>

#include "api/registry.h"
#include "api/zoo.h"
#include "data/source.h"
#include "kernels/backend.h"

namespace ber::api {

namespace {

// ------------------------------------------------------------ model entry ---

DatasetSection dataset_from_json(const Json& j, const std::string& where) {
  ParamReader p(where, j);
  DatasetSection d;
  d.source = p.str("source", d.source);
  if (!data::known_dataset_source(d.source)) {
    std::string msg = "unknown dataset source \"" + d.source + "\" (known:";
    for (const std::string& n : data::dataset_source_names()) msg += " " + n;
    p.fail(msg + ")");
  }
  if (d.source == "synthetic") {
    d.name = p.str("name", d.name);
    d.config = dataset_by_name(d.name);
    d.config.n_train =
        static_cast<int>(p.integer("n_train", d.config.n_train));
    d.config.n_test = static_cast<int>(p.integer("n_test", d.config.n_test));
    d.config.seed = static_cast<std::uint64_t>(
        p.integer("seed", static_cast<long>(d.config.seed)));
    p.finish();
    if (d.config.n_train < 1 || d.config.n_test < 1) {
      p.fail("n_train / n_test must be >= 1");
    }
    return d;
  }
  // File-backed source: `path` is the dataset root directory; n_train/
  // n_test are per-split record caps (0 = every record on disk). Geometry
  // defaults come from the source (shard geometry lives in the header and
  // is checked at run time — configs must parse without data files).
  d.path = p.str("path", "");
  d.name = p.str("name", d.source);
  d.config = data::source_geometry(d.source);
  d.config.n_train = static_cast<int>(p.integer("n_train", 0));
  d.config.n_test = static_cast<int>(p.integer("n_test", 0));
  p.finish();
  if (d.path.empty()) {
    p.fail("source \"" + d.source +
           "\" needs a \"path\" (dataset root directory)");
  }
  if (d.config.n_train < 0 || d.config.n_test < 0) {
    p.fail("n_train / n_test caps must be >= 0 (0 = all records)");
  }
  return d;
}

Json dataset_to_json(const DatasetSection& d) {
  Json j = Json::object();
  if (d.source != "synthetic") {
    j.set("source", d.source);
    j.set("path", d.path);
    if (d.name != d.source) j.set("name", d.name);
    if (d.config.n_train > 0) j.set("n_train", d.config.n_train);
    if (d.config.n_test > 0) j.set("n_test", d.config.n_test);
    return j;
  }
  // The synthetic form is frozen: it feeds the inline-model fingerprint
  // (api/experiment.cpp), so emitting new keys here would invalidate every
  // cached checkpoint.
  j.set("name", d.name);
  j.set("n_train", d.config.n_train);
  j.set("n_test", d.config.n_test);
  j.set("seed", d.config.seed);
  return j;
}

ModelConfig model_config_from_json(const Json& j, const DatasetSection& data,
                                   const std::string& where) {
  ParamReader p(where, j);
  ModelConfig mc;
  mc.arch = arch_by_name(p.str("arch", "simplenet"));
  mc.norm = norm_by_name(p.str("norm", "groupnorm"));
  // Input geometry follows the dataset; explicit overrides allowed (and
  // emitted by to_json, so round-trips are exact).
  mc.in_channels = static_cast<int>(p.integer("in_channels", data.config.channels));
  mc.image_size = static_cast<int>(p.integer("image_size", data.config.image_size));
  mc.num_classes = static_cast<int>(p.integer("num_classes", data.config.num_classes));
  mc.width = static_cast<int>(p.integer("width", mc.width));
  p.finish();
  if (mc.width < 1) p.fail("\"width\" must be >= 1");
  if (mc.in_channels < 1 || mc.image_size < 1 || mc.num_classes < 2) {
    // Shard-backed datasets carry geometry in the shard header, which is
    // not read at parse time — those model sections must spell it out.
    p.fail(std::string("model geometry must be positive (\"in_channels\"/"
                       "\"image_size\" >= 1, \"num_classes\" >= 2)") +
           (data.source == "shard"
                ? " — source \"shard\" provides no parse-time defaults, so "
                  "set them explicitly in the model section"
                : ""));
  }
  return mc;
}

Json model_config_to_json(const ModelConfig& mc) {
  Json j = Json::object();
  j.set("arch", arch_to_name(mc.arch));
  j.set("norm", norm_to_name(mc.norm));
  j.set("in_channels", mc.in_channels);
  j.set("image_size", mc.image_size);
  j.set("num_classes", mc.num_classes);
  j.set("width", mc.width);
  return j;
}

TrainConfig train_from_json(const Json& j, const std::string& where) {
  ParamReader p(where, j);
  TrainConfig tc;
  tc.method = method_by_name(p.str("method", "normal"));
  tc.quant_aware = p.boolean("quant_aware", tc.quant_aware);
  tc.wmax = static_cast<float>(p.number("wmax", tc.wmax));
  tc.p_train = p.number("p_train", tc.p_train);
  tc.label_smoothing =
      static_cast<float>(p.number("label_smoothing", tc.label_smoothing));
  tc.bit_error_loss_threshold = static_cast<float>(
      p.number("loss_threshold", tc.bit_error_loss_threshold));
  tc.curricular = p.boolean("curricular", tc.curricular);
  tc.alternating = p.boolean("alternating", tc.alternating);
  tc.epochs = static_cast<int>(p.integer("epochs", tc.epochs));
  tc.batch_size = static_cast<int>(p.integer("batch_size", tc.batch_size));
  tc.lr_warmup_epochs =
      static_cast<int>(p.integer("lr_warmup_epochs", tc.lr_warmup_epochs));
  tc.sgd.lr = static_cast<float>(p.number("lr", tc.sgd.lr));
  tc.sgd.momentum = static_cast<float>(p.number("momentum", tc.sgd.momentum));
  tc.sgd.weight_decay =
      static_cast<float>(p.number("weight_decay", tc.sgd.weight_decay));
  tc.seed = static_cast<std::uint64_t>(
      p.integer("seed", static_cast<long>(tc.seed)));
  p.finish();
  if (tc.epochs < 0 || tc.batch_size < 1) {
    p.fail("\"epochs\" must be >= 0 and \"batch_size\" >= 1");
  }
  if (tc.p_train < 0.0 || tc.p_train > 1.0) {
    p.fail("\"p_train\" must be a fraction in [0, 1]");
  }
  return tc;
}

Json train_to_json(const TrainConfig& tc) {
  Json j = Json::object();
  j.set("method", method_to_name(tc.method));
  j.set("quant_aware", tc.quant_aware);
  j.set("wmax", static_cast<double>(tc.wmax));
  j.set("p_train", tc.p_train);
  j.set("label_smoothing", static_cast<double>(tc.label_smoothing));
  j.set("loss_threshold", static_cast<double>(tc.bit_error_loss_threshold));
  j.set("curricular", tc.curricular);
  j.set("alternating", tc.alternating);
  j.set("epochs", tc.epochs);
  j.set("batch_size", tc.batch_size);
  j.set("lr_warmup_epochs", tc.lr_warmup_epochs);
  j.set("lr", static_cast<double>(tc.sgd.lr));
  j.set("momentum", static_cast<double>(tc.sgd.momentum));
  j.set("weight_decay", static_cast<double>(tc.sgd.weight_decay));
  j.set("seed", tc.seed);
  return j;
}

// ----------------------------------------------------------- eval / serve ---

EvalSection eval_from_json(const Json& j) {
  ParamReader p("eval", j);
  EvalSection e;
  e.n_trials = static_cast<int>(p.integer("n_trials", e.n_trials));
  e.split = p.str("split", e.split);
  e.subset = p.integer("subset", e.subset);
  e.batch = p.integer("batch", e.batch);
  e.clean_err = p.boolean("clean_err", e.clean_err);
  e.rate_grid = p.numbers("rate_grid");
  e.voltage_grid = p.numbers("voltage_grid");
  const Json& grid = p.raw("grid");
  if (!grid.is_null()) {
    ParamReader g("eval.grid", grid);
    e.grid.param = g.require_str("param");
    e.grid.values = g.numbers("values");
    g.finish();
    if (e.grid.values.empty()) g.fail("\"values\" must be non-empty");
  }
  const Json& quant = p.raw("quant");
  if (!quant.is_null()) {
    e.has_quant_override = true;
    e.quant_override = quant_from_json(quant, "eval.quant");
  }
  const Json& forensics = p.raw("forensics");
  if (!forensics.is_null()) {
    ParamReader f("eval.forensics", forensics);
    // Writing the section opts in; "enabled": false keeps a config around
    // with forensics parked.
    e.forensics.enabled = f.boolean("enabled", true);
    e.forensics.probe_images =
        static_cast<int>(f.integer("probe_images", e.forensics.probe_images));
    e.forensics.threshold = f.number("threshold", e.forensics.threshold);
    e.forensics.control = f.boolean("control", e.forensics.control);
    f.finish();
    if (e.forensics.probe_images < 0) f.fail("\"probe_images\" must be >= 0");
    if (!(e.forensics.threshold > 0.0)) f.fail("\"threshold\" must be > 0");
  }
  p.finish();
  if (e.split != "rerr" && e.split != "test") {
    p.fail("\"split\" must be \"rerr\" or \"test\"");
  }
  if (e.n_trials < 0 || e.subset < 0 || e.batch < 1) {
    p.fail("\"n_trials\"/\"subset\" must be >= 0 and \"batch\" >= 1");
  }
  return e;
}

Json eval_to_json(const EvalSection& e) {
  Json j = Json::object();
  j.set("n_trials", e.n_trials);
  j.set("split", e.split);
  if (e.subset > 0) j.set("subset", e.subset);
  j.set("batch", e.batch);
  j.set("clean_err", e.clean_err);
  const auto grid_json = [](const std::vector<double>& g) {
    Json a = Json::array();
    for (double v : g) a.push_back(v);
    return a;
  };
  if (!e.rate_grid.empty()) j.set("rate_grid", grid_json(e.rate_grid));
  if (!e.voltage_grid.empty()) j.set("voltage_grid", grid_json(e.voltage_grid));
  if (!e.grid.empty()) {
    Json g = Json::object();
    g.set("param", e.grid.param);
    g.set("values", grid_json(e.grid.values));
    j.set("grid", g);
  }
  if (e.has_quant_override) j.set("quant", quant_to_json(e.quant_override));
  if (e.forensics.enabled) {
    Json f = Json::object();
    f.set("enabled", true);
    f.set("probe_images", e.forensics.probe_images);
    f.set("threshold", e.forensics.threshold);
    if (e.forensics.control) f.set("control", true);
    j.set("forensics", f);
  }
  return j;
}

ArrivalPhase phase_from_json(const Json& j, const std::string& where) {
  ParamReader p(where, j);
  ArrivalPhase a;
  a.process = p.str("process", a.process);
  a.rate_rps = p.number("rate_rps", a.rate_rps);
  a.duration_s = p.number("duration_s", a.duration_s);
  a.period_s = p.number("period_s", a.period_s);
  a.amplitude = p.number("amplitude", a.amplitude);
  a.mean_on_s = p.number("mean_on_s", a.mean_on_s);
  a.mean_off_s = p.number("mean_off_s", a.mean_off_s);
  p.finish();
  if (a.process != "poisson" && a.process != "diurnal" &&
      a.process != "bursty") {
    p.fail("\"process\" must be poisson, diurnal or bursty (got \"" +
           a.process + "\")");
  }
  if (a.rate_rps <= 0.0 || a.duration_s <= 0.0) {
    p.fail("\"rate_rps\" and \"duration_s\" must be > 0");
  }
  if (a.process == "diurnal" &&
      (a.period_s <= 0.0 || a.amplitude < 0.0 || a.amplitude >= 1.0)) {
    p.fail("diurnal needs \"period_s\" > 0 and \"amplitude\" in [0, 1)");
  }
  if (a.process == "bursty" && (a.mean_on_s <= 0.0 || a.mean_off_s <= 0.0)) {
    p.fail("bursty needs \"mean_on_s\" and \"mean_off_s\" > 0");
  }
  return a;
}

Json phase_to_json(const ArrivalPhase& a) {
  Json j = Json::object();
  j.set("process", a.process);
  j.set("rate_rps", a.rate_rps);
  j.set("duration_s", a.duration_s);
  // Only the parameters the process actually reads — the normalized form
  // must not carry dead knobs.
  if (a.process == "diurnal") {
    j.set("period_s", a.period_s);
    j.set("amplitude", a.amplitude);
  } else if (a.process == "bursty") {
    j.set("mean_on_s", a.mean_on_s);
    j.set("mean_off_s", a.mean_off_s);
  }
  return j;
}

TrafficConfig traffic_from_json(const Json& j) {
  ParamReader p("serve.traffic", j);
  TrafficConfig t;
  t.seed = static_cast<std::uint64_t>(
      p.integer("seed", static_cast<long>(t.seed)));
  t.window_ms = p.integer("window_ms", t.window_ms);
  const Json& slo = p.raw("slo");
  if (!slo.is_null()) {
    ParamReader q("serve.traffic.slo", slo);
    t.slo.latency_us = q.number("latency_us", t.slo.latency_us);
    t.slo.attainment = q.number("attainment", t.slo.attainment);
    q.finish();
  }
  const Json& phases = p.raw("phases");
  if (!phases.is_array() || phases.size() == 0) {
    p.fail("\"phases\" must be a non-empty array of arrival phases");
  }
  for (std::size_t i = 0; i < phases.size(); ++i) {
    t.phases.push_back(phase_from_json(
        phases[i], "serve.traffic.phases[" + std::to_string(i) + "]"));
  }
  p.finish();
  if (t.window_ms < 1) p.fail("\"window_ms\" must be >= 1");
  if (t.slo.latency_us <= 0.0) p.fail("slo \"latency_us\" must be > 0");
  if (t.slo.attainment <= 0.0 || t.slo.attainment >= 1.0) {
    p.fail("slo \"attainment\" must be in (0, 1) — 1.0 makes the error "
           "budget zero and every burn rate infinite");
  }
  return t;
}

Json traffic_to_json(const TrafficConfig& t) {
  Json j = Json::object();
  j.set("seed", t.seed);
  j.set("window_ms", t.window_ms);
  Json slo = Json::object();
  slo.set("latency_us", t.slo.latency_us);
  slo.set("attainment", t.slo.attainment);
  j.set("slo", std::move(slo));
  Json phases = Json::array();
  for (const ArrivalPhase& a : t.phases) phases.push_back(phase_to_json(a));
  j.set("phases", std::move(phases));
  return j;
}

ServeSection serve_from_json(const Json& j) {
  ParamReader p("serve", j);
  ServeSection s;
  s.voltages = p.numbers("voltages");
  const Json& slo = p.raw("slo");
  if (!slo.is_null()) {
    ParamReader q("serve.slo", slo);
    s.slo.max_rerr = q.number("max_rerr", s.slo.max_rerr);
    s.slo.clean_plus = q.number("clean_plus", s.slo.clean_plus);
    s.slo.z = q.number("z", s.slo.z);
    q.finish();
  }
  s.n_chips = static_cast<int>(p.integer("n_chips", s.n_chips));
  s.replicas = static_cast<int>(p.integer("replicas", s.replicas));
  s.canary_subset = p.integer("canary_subset", s.canary_subset);
  const Json& queue = p.raw("queue");
  if (!queue.is_null()) {
    ParamReader q("serve.queue", queue);
    s.queue.max_batch = q.integer("max_batch", s.queue.max_batch);
    s.queue.max_wait_us = q.integer("max_wait_us", s.queue.max_wait_us);
    s.queue.max_queue_images =
        q.integer("max_queue_images", s.queue.max_queue_images);
    q.finish();
  }
  s.requests = p.integer("requests", s.requests);
  const Json& traffic = p.raw("traffic");
  if (!traffic.is_null()) s.traffic = traffic_from_json(traffic);
  p.finish();
  if (s.n_chips < 1 || s.replicas < 1) {
    p.fail("\"n_chips\" and \"replicas\" must be >= 1");
  }
  if (s.canary_subset < 0 || s.requests < 0) {
    p.fail("\"canary_subset\" and \"requests\" must be >= 0");
  }
  if (s.traffic.enabled() && s.requests > 0) {
    p.fail("give \"traffic\" (open-loop) or \"requests\" (closed-loop burst),"
           " not both");
  }
  return s;
}

Json serve_to_json(const ServeSection& s) {
  Json j = Json::object();
  Json v = Json::array();
  for (double x : s.voltages) v.push_back(x);
  j.set("voltages", v);
  Json slo = Json::object();
  if (s.slo.clean_plus >= 0.0) slo.set("clean_plus", s.slo.clean_plus);
  else slo.set("max_rerr", s.slo.max_rerr);
  slo.set("z", s.slo.z);
  j.set("slo", slo);
  j.set("n_chips", s.n_chips);
  j.set("replicas", s.replicas);
  if (s.canary_subset > 0) j.set("canary_subset", s.canary_subset);
  Json q = Json::object();
  q.set("max_batch", s.queue.max_batch);
  q.set("max_wait_us", s.queue.max_wait_us);
  if (s.queue.max_queue_images > 0) {
    q.set("max_queue_images", s.queue.max_queue_images);
  }
  j.set("queue", q);
  if (s.requests > 0) j.set("requests", s.requests);
  if (s.traffic.enabled()) j.set("traffic", traffic_to_json(s.traffic));
  return j;
}

}  // namespace

// -------------------------------------------------------------- ModelEntry --

ModelEntry model_entry_from_json(const Json& j, const std::string& where) {
  ParamReader p(where, j);
  ModelEntry e;
  if (p.has("zoo")) {
    e.zoo = p.str("zoo", "");
    if (e.zoo.empty()) {
      // An empty reference would silently fall through to a default inline
      // model — the wrong experiment, run without complaint.
      p.fail("\"zoo\" must name a zoo model (got an empty string)");
    }
    e.label = p.str("label", "");
    p.finish();
    return e;
  }
  e.name = p.str("name", "");
  e.label = p.str("label", e.name);
  e.dataset = dataset_from_json(p.raw("dataset"), where + ".dataset");
  e.model = model_config_from_json(p.raw("model"), e.dataset, where + ".model");
  e.quant = quant_from_json(p.raw("quant"), where + ".quant");
  e.train = train_from_json(p.raw("train"), where + ".train");
  e.train.quant = e.quant;
  p.finish();
  return e;
}

Json model_entry_to_json(const ModelEntry& entry) {
  Json j = Json::object();
  if (entry.is_zoo()) {
    j.set("zoo", entry.zoo);
    if (!entry.label.empty()) j.set("label", entry.label);
    return j;
  }
  if (!entry.name.empty()) j.set("name", entry.name);
  if (!entry.label.empty() && entry.label != entry.name) {
    j.set("label", entry.label);
  }
  j.set("dataset", dataset_to_json(entry.dataset));
  j.set("model", model_config_to_json(entry.model));
  j.set("quant", quant_to_json(entry.quant));
  j.set("train", train_to_json(entry.train));
  return j;
}

// ---------------------------------------------------------- ExperimentSpec --

ExperimentSpec ExperimentSpec::from_json(const Json& j) {
  ParamReader p("experiment", j);
  ExperimentSpec spec;
  spec.name = p.require_str("name");
  spec.description = p.str("description", "");
  spec.kind = p.str("kind", spec.kind);
  spec.backend = p.str("backend", spec.backend);
  spec.compute_on_codes =
      p.boolean("compute_on_codes", spec.compute_on_codes);

  const Json& models = p.raw("models");
  if (models.is_array()) {
    for (std::size_t i = 0; i < models.size(); ++i) {
      spec.models.push_back(model_entry_from_json(
          models[i], "models[" + std::to_string(i) + "]"));
    }
  } else if (!models.is_null()) {
    p.fail("\"models\" must be an array of model entries");
  }
  // Singular "model" convenience for one-model specs.
  const Json& model = p.raw("model");
  if (!model.is_null()) {
    if (!spec.models.empty()) p.fail("give \"models\" or \"model\", not both");
    spec.models.push_back(model_entry_from_json(model, "model"));
  }

  const Json& fault = p.raw("fault");
  if (!fault.is_null()) {
    if (!fault.is_object()) p.fail("\"fault\" must be an object");
    Json params = Json::object();
    bool has_model = false;
    for (const auto& [key, value] : fault.members()) {
      if (key == "model") {
        if (!value.is_string()) p.fail("fault \"model\" must be a string");
        spec.fault.model = value.as_string();
        has_model = true;
      } else {
        params.set(key, value);
      }
    }
    if (!has_model) p.fail("fault section needs a \"model\" name");
    spec.fault.params = std::move(params);
  }

  const Json& eval = p.raw("eval");
  if (!eval.is_null()) spec.eval = eval_from_json(eval);
  const Json& serve = p.raw("serve");
  if (!serve.is_null()) spec.serve = serve_from_json(serve);
  p.finish();
  spec.validate();
  return spec;
}

ExperimentSpec ExperimentSpec::load(const std::string& path) {
  return from_json(Json::parse_file(path));
}

Json ExperimentSpec::to_json() const {
  Json j = Json::object();
  j.set("name", name);
  if (!description.empty()) j.set("description", description);
  j.set("kind", kind);
  j.set("backend", backend);
  if (compute_on_codes) j.set("compute_on_codes", true);
  Json ms = Json::array();
  for (const ModelEntry& e : models) ms.push_back(model_entry_to_json(e));
  j.set("models", ms);
  Json f = Json::object();
  f.set("model", fault.model);
  for (const auto& [key, value] : fault.params.members()) f.set(key, value);
  j.set("fault", f);
  j.set("eval", eval_to_json(eval));
  if (kind == "serve") j.set("serve", serve_to_json(serve));
  return j;
}

Json resolved_fault_params(const ExperimentSpec& spec,
                           const double* grid_value) {
  Json params = spec.fault.params;
  const EvalSection& e = spec.eval;
  if (!e.rate_grid.empty() && !params.contains("p")) {
    params.set("p", *std::max_element(e.rate_grid.begin(), e.rate_grid.end()));
  }
  if (!e.voltage_grid.empty() && !params.contains("voltage")) {
    params.set("voltage", *std::min_element(e.voltage_grid.begin(),
                                            e.voltage_grid.end()));
  }
  if (!e.grid.empty()) {
    params.set(e.grid.param,
               grid_value != nullptr ? *grid_value : e.grid.values.front());
  }
  if (spec.kind == "serve") {
    // The planner maps its voltage grid to rates itself; the fault model
    // only contributes the chip / type mix, so give the required axis keys
    // harmless defaults.
    if (spec.fault.model == "random" && !params.contains("p")) {
      params.set("p", 0.01);
    }
    if (spec.fault.model == "profiled" && !params.contains("voltage")) {
      params.set("voltage",
                 spec.serve.voltages.empty() ? 1.0 : spec.serve.voltages.back());
    }
  }
  return params;
}

void ExperimentSpec::validate() const {
  const auto fail = [this](const std::string& why) {
    throw std::invalid_argument("experiment \"" + name + "\": " + why);
  };
  if (name.empty()) fail("\"name\" must be non-empty");
  if (kind != "robustness" && kind != "serve") {
    fail("\"kind\" must be \"robustness\" or \"serve\", got \"" + kind + "\"");
  }
  // Backend and fault-model names resolve against their registries (both
  // throw listing the known names).
  (void)kernels::backend(backend);
  if (!fault_models().contains(fault.model)) {
    // Reuse the registry's message (lists known names).
    (void)fault_models().make(fault.model, Json::object(), FaultContext{});
  }
  if (models.empty()) fail("at least one model entry is required");
  // Dry-construct context-free fault models so parameter typos fail here
  // with the factory's message instead of mid-run ("adversarial" needs a
  // model + data context and is validated by the Runner).
  if (fault.model != "adversarial") {
    (void)make_fault_model(fault.model, resolved_fault_params(*this, nullptr),
                           FaultContext{});
  }
  for (const ModelEntry& e : models) {
    if (e.is_zoo()) {
      (void)zoo::spec(e.zoo);  // throws on unknown zoo names
      continue;
    }
    // Builder-made entries skip the JSON readers; re-check the dataset
    // source shape here so Experiment::model() failures are actionable.
    data::check_dataset_source(e.dataset.source, "experiment \"" + name + "\"");
    if (e.dataset.source != "synthetic" && e.dataset.path.empty()) {
      fail("dataset source \"" + e.dataset.source +
           "\" needs a path (dataset root directory)");
    }
    if (e.model.in_channels < 1 || e.model.image_size < 1 ||
        e.model.num_classes < 2) {
      fail("model geometry must be positive (in_channels/image_size >= 1, "
           "num_classes >= 2)");
    }
  }

  int grids = 0;
  grids += eval.rate_grid.empty() ? 0 : 1;
  grids += eval.voltage_grid.empty() ? 0 : 1;
  grids += eval.grid.empty() ? 0 : 1;
  if (grids > 1) {
    fail("give at most one of eval.rate_grid / eval.voltage_grid / eval.grid");
  }
  if (!eval.rate_grid.empty() && fault.model != "random") {
    fail("eval.rate_grid needs fault model \"random\" (got \"" + fault.model +
         "\"); use eval.grid for other models");
  }
  if (!eval.voltage_grid.empty() && fault.model != "profiled") {
    fail("eval.voltage_grid needs fault model \"profiled\" (got \"" +
         fault.model + "\")");
  }
  for (double p : eval.rate_grid) {
    if (p < 0.0 || p > 1.0) fail("rate_grid entries must be fractions in [0, 1]");
  }
  if (eval.forensics.enabled) {
    // The ledger records code-space flips: "linf" perturbs float weights and
    // "ecc" injects into the SECDED codeword space, neither of which maps to
    // weight cells.
    if (fault.model == "linf" || fault.model == "ecc") {
      fail("eval.forensics needs a code-space fault model (random, profiled "
           "or adversarial), got \"" + fault.model + "\"");
    }
    if (eval.forensics.control && fault.model != "adversarial") {
      fail("eval.forensics.control rate-matches an adversarial attack and "
           "needs fault \"adversarial\", got \"" + fault.model + "\"");
    }
    if (eval.forensics.probe_images < 0) {
      fail("eval.forensics.probe_images must be >= 0");
    }
    if (!(eval.forensics.threshold > 0.0)) {
      fail("eval.forensics.threshold must be > 0");
    }
  }

  if (kind == "serve") {
    if (models.size() != 1) fail("kind \"serve\" takes exactly one model");
    if (fault.model != "random" && fault.model != "profiled") {
      fail("serving plans support fault \"random\" or \"profiled\"");
    }
    if (serve.voltages.size() < 2) {
      fail("serve.voltages needs at least two grid points");
    }
    for (std::size_t i = 1; i < serve.voltages.size(); ++i) {
      if (serve.voltages[i] >= serve.voltages[i - 1]) {
        fail("serve.voltages must be strictly descending");
      }
    }
    // Builder-made specs skip the JSON readers; re-check the open-loop
    // traffic shape here so Experiment::serve() failures are actionable.
    const TrafficConfig& t = serve.traffic;
    if (t.enabled()) {
      if (serve.requests > 0) {
        fail("serve.traffic and serve.requests are mutually exclusive");
      }
      if (t.window_ms < 1) fail("serve.traffic.window_ms must be >= 1");
      if (t.slo.latency_us <= 0.0 || t.slo.attainment <= 0.0 ||
          t.slo.attainment >= 1.0) {
        fail("serve.traffic.slo needs latency_us > 0 and attainment in "
             "(0, 1)");
      }
      for (const ArrivalPhase& a : t.phases) {
        if (a.process != "poisson" && a.process != "diurnal" &&
            a.process != "bursty") {
          fail("serve.traffic phase process \"" + a.process +
               "\" unknown (poisson, diurnal, bursty)");
        }
        if (a.rate_rps <= 0.0 || a.duration_s <= 0.0) {
          fail("serve.traffic phases need rate_rps and duration_s > 0");
        }
        if (a.process == "diurnal" &&
            (a.period_s <= 0.0 || a.amplitude < 0.0 || a.amplitude >= 1.0)) {
          fail("diurnal phase needs period_s > 0 and amplitude in [0, 1)");
        }
        if (a.process == "bursty" &&
            (a.mean_on_s <= 0.0 || a.mean_off_s <= 0.0)) {
          fail("bursty phase needs mean_on_s and mean_off_s > 0");
        }
      }
    }
  }
}

}  // namespace ber::api
