// ExperimentSpec: the typed, validated description of one experiment — the
// paper's scenario matrix (quantization scheme x clipping x training method
// x fault model x rate/voltage grid) as data instead of another hand-wired
// bench binary.
//
// A spec serializes to and from JSON (core/json.h; // comments allowed in
// files), so the same scenario can be expressed three ways:
//   * a config file executed by the ber_run CLI (`ber_run configs/tab4.json`),
//   * the fluent api::Experiment builder (api/experiment.h) in C++,
//   * a Json value built programmatically.
//
// Sections: models (zoo references or inline model/quant/train definitions),
// fault (registry name + parameter map), eval (trials, data split, one of
// three sweep grids), serve (voltage grid + SLO + fleet/queue shape for
// kind "serve"), backend. Parsing rejects unknown keys and invalid values
// with actionable messages; to_json() emits the fully-normalized spec, and
// parse -> emit -> parse is the identity on that normalized form (pinned in
// tests/test_api.cpp).
#pragma once

#include <string>
#include <vector>

#include "core/json.h"
#include "data/shapes.h"
#include "models/factory.h"
#include "quant/quantizer.h"
#include "serve/batch_queue.h"
#include "serve/traffic_gen.h"
#include "train/trainer.h"

namespace ber::api {

// Dataset a model trains/evaluates on. `source` picks where records come
// from (data/source.h): "synthetic" renders the named preset; "idx",
// "cifar10" and "shard" read real files under `path`, with the config's
// n_train/n_test acting as per-split record caps (0 = all). Unknown
// sources are rejected at parse time with the accepted list.
struct DatasetSection {
  std::string name = "c10";          // synthetic preset (c10 | mnist | c100)
  std::string source = "synthetic";  // synthetic | idx | cifar10 | shard
  std::string path;                  // dataset root dir (file-backed sources)
  SyntheticConfig config;            // resolved preset / geometry + caps
};

// One model of the experiment: either a zoo reference ({"zoo": "<name>"})
// or an inline definition with dataset / model / quant / train sections.
struct ModelEntry {
  std::string zoo;    // non-empty -> zoo model; all other fields unused
  std::string name;   // inline: artifact cache stem ("" = retrain every run)
  std::string label;  // report row label ("" = name, or the zoo label)
  DatasetSection dataset;
  ModelConfig model;
  QuantScheme quant = QuantScheme::rquant();
  TrainConfig train;  // train.quant mirrors `quant`

  bool is_zoo() const { return !zoo.empty(); }
};

// Fault scenario: a fault-model registry name plus its raw parameter map
// (validated by the factory at construction time, echoed verbatim by
// to_json).
struct FaultSection {
  std::string model = "random";
  Json params = Json::object();
};

// Generic fault-parameter sweep: rebuild the fault model per grid point with
// params[param] = value (e.g. ECC p sweep, adversarial budget sweep).
struct GridSection {
  std::string param;
  std::vector<double> values;
  bool empty() const { return values.empty(); }
};

// Opt-in fault forensics (obs/forensics.h): flip ledger, error-propagation
// probes and bit-position attribution, emitted as the report's `forensics`
// section. Code-space fault models only ("linf" perturbs float weights and
// "ecc" injects into the SECDED codeword space, where flips don't map to
// weight cells).
struct ForensicsSection {
  bool enabled = false;
  int probe_images = 0;     // propagation-probe batch size (0 = ledger only)
  double threshold = 1e-4;  // relative divergence that counts as "diverged"
  // Adversarial scenarios: also run a budget-matched random-flip control
  // pass, landing in the ledger as profile "control" next to "eval".
  bool control = false;
};

struct EvalSection {
  int n_trials = 0;            // chips/offsets/samples; 0 = zoo default
  std::string split = "rerr";  // "rerr" (reduced subset) | "test" (full)
  long subset = 0;             // explicit eval-subset size (0 = split default)
  long batch = 200;
  bool clean_err = true;       // also report the fault-free quantized Err
  // At most one of the three sweep axes:
  std::vector<double> rate_grid;     // fault "random": one list per chip
  std::vector<double> voltage_grid;  // fault "profiled": one list per mapping
  GridSection grid;                  // any fault: reconstruct per point
  // Post-training scheme ablation: evaluate under this scheme instead of the
  // model's training scheme.
  bool has_quant_override = false;
  QuantScheme quant_override;
  ForensicsSection forensics;
};

// Accuracy SLO for serving plans. Exactly one of max_rerr / clean_plus is
// active: clean_plus >= 0 resolves to (clean Err + clean_plus) at run time.
struct SloSection {
  double max_rerr = 0.1;
  double clean_plus = -1.0;
  double z = 2.0;
};

struct ServeSection {
  std::vector<double> voltages;  // strictly descending, normalized V/Vmin
  SloSection slo;
  int n_chips = 4;      // sweep trials per grid point
  int replicas = 3;     // fleet size
  long canary_subset = 0;  // examples for per-replica canaries (0 = full)
  BatchQueueConfig queue;
  long requests = 0;    // closed-loop traffic burst (0 = skip)
  // Open-loop load (serve/traffic_gen.h): arrival-process phases + SLO
  // scoreboard. Mutually exclusive with `requests` — a spec drives the pool
  // either closed-loop (the legacy burst) or open-loop, never both.
  TrafficConfig traffic;
};

struct ExperimentSpec {
  std::string name;
  std::string description;
  std::string kind = "robustness";  // "robustness" | "serve"
  std::string backend = "reference";
  // Compute-on-codes inference for code-space deploys: weight layers adopt
  // the (faulted) quantized code words and forwards run the backend's int8
  // qgemm over them instead of dequantize-then-float. When false, the
  // BER_COMPUTE_ON_CODES environment toggle still applies at run time.
  bool compute_on_codes = false;
  std::vector<ModelEntry> models;
  FaultSection fault;
  EvalSection eval;
  ServeSection serve;

  // Parses + validates. Throws std::invalid_argument (or JsonError) with an
  // actionable message on unknown keys, unknown registry names or invalid
  // values.
  static ExperimentSpec from_json(const Json& j);
  // Json::parse_file + from_json.
  static ExperimentSpec load(const std::string& path);

  // The fully-normalized spec (defaults materialized).
  Json to_json() const;

  // Cross-field rules (grid/fault compatibility, registry names, backend
  // names, zoo names, serve shape). from_json runs this; builder users get
  // it via Experiment::spec().
  void validate() const;
};

Json model_entry_to_json(const ModelEntry& entry);
ModelEntry model_entry_from_json(const Json& j, const std::string& where);

// The fault parameter map the Runner hands the registry factory: the spec's
// fault params plus the sweep-axis defaults ("p" = max(rate_grid),
// "voltage" = min(voltage_grid) — both ignored by the grid sweeps
// themselves — and grid.param = *grid_value when a generic grid is active).
// validate() dry-constructs context-free fault models from the same map, so
// parameter typos fail at parse time, not mid-run.
Json resolved_fault_params(const ExperimentSpec& spec,
                           const double* grid_value);

}  // namespace ber::api
