// The experiment engine: a fluent builder over ExperimentSpec, a Runner that
// owns the two lifecycles behind every number in the repo —
//
//   robustness:  resolve model (zoo / train / checkpoint cache) ->
//                quantize once -> construct the fault model by registry
//                name -> sweep (rate grid / voltage grid / generic param
//                grid / single point) -> aggregate
//   serve:       resolve model -> checkpoint -> plan the operating point
//                (voltage sweep + SRAM energy + SLO) -> deploy a fleet ->
//                canary + optional traffic drive through the ReplicaPool
//
// — and a structured Report (JSON-ready via core/json) carrying both the
// machine-readable results and the RobustResults benches format tables
// from. bench_util's rerr/rerr_sweep helpers and the ber_run CLI are thin
// shells over this; a Runner run of a spec is bit-identical to the legacy
// hand-wired paths for a fixed seed (pinned in tests/test_api.cpp).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "api/spec.h"
#include "core/json.h"
#include "faults/evaluator.h"
#include "serve/planner.h"

namespace ber::api {

// One sweep point of one model: x is the point's position on the sweep axis
// (rate, voltage or the generic grid parameter; 0 for single-point runs).
struct ReportPoint {
  double x = 0.0;
  RobustResult result;
};

struct ModelReport {
  std::string name;       // zoo name or inline entry name
  std::string label;      // table row label
  std::string axis;       // "p" | "v" | grid param | "" (single point)
  double clean_err = -1.0;  // fraction; -1 = not requested
  std::string fault;      // FaultModel::describe() of the last point
  std::vector<ReportPoint> points;
  // ForensicsCollector::to_json() when eval.forensics was enabled for this
  // model (flip ledger totals, bit-position attribution, probe summaries);
  // null otherwise.
  Json forensics;
};

// Deterministic serving-lifecycle results (plus traffic counters when the
// spec drives requests through the pool).
struct ServeReport {
  double clean_err = 0.0;
  SloConfig slo;
  OperatingPointPlan plan;
  std::vector<double> canary_errs;  // per replica, deployed at plan.chosen
  double fleet_energy = 1.0;        // mean energy/access vs Vmin
  long requests = 0;
  long answered = 0;
  long rejected = 0;                // bounded-queue admission rejections
  double mean_batch = 0.0;
  // Windowed SLO timeline (SloScoreboard::to_json()) when the spec drives
  // open-loop traffic; null otherwise.
  Json timeline;
};

struct Report {
  ExperimentSpec spec;
  std::vector<ModelReport> models;  // robustness kind
  ServeReport serve;                // serve kind
  // Snapshot of the obs metrics registry taken when the run finished
  // (cumulative for the process — a second run's snapshot includes the
  // first's counts). Null if the Report was built by hand.
  Json metrics;
  Json to_json() const;
};

// Executes a validated spec. The Runner owns inline-trained models and any
// datasets it builds; zoo models stay in the zoo cache.
class Runner {
 public:
  explicit Runner(ExperimentSpec spec);  // validates
  Report run();

 private:
  struct ResolvedModel {
    Sequential* model = nullptr;
    QuantScheme scheme;
    std::string name;
    std::string label;
    const Dataset* train_set = nullptr;
    const Dataset* test_set = nullptr;
    const Dataset* eval_set = nullptr;  // split/subset applied
  };

  ResolvedModel resolve(const ModelEntry& entry);
  const Dataset& dataset(const DatasetSection& section, bool train);
  const Dataset& subset(const Dataset& full, long n);
  int n_trials() const;

  Report run_robustness();
  Report run_serve();

  ExperimentSpec spec_;
  std::vector<std::unique_ptr<Sequential>> owned_models_;
  // Eval subsets deduped by (parent dataset, n): a grid of models sharing
  // one eval set materializes its head exactly once. Full datasets live in
  // the process-wide data::dataset_store(), shared with the zoo.
  std::map<std::pair<const Dataset*, long>, std::unique_ptr<Dataset>>
      subsets_;
};

// Fluent builder: mirrors the spec sections for C++ callers (benches,
// examples, tests). Every setter returns *this; run() validates and
// executes.
//
//   Report r = Experiment("tab4")
//                  .zoo("c10_rquant").zoo("c10_randbet015_p1")
//                  .fault("random", params)
//                  .rate_grid({0.005, 0.01, 0.015})
//                  .run();
class Experiment {
 public:
  explicit Experiment(std::string name);

  Experiment& description(std::string text);
  Experiment& backend(std::string name);
  Experiment& compute_on_codes(bool on = true);
  Experiment& zoo(const std::string& zoo_name);
  Experiment& model(ModelEntry entry);
  // Fault params as a Json object (or omit for defaults).
  Experiment& fault(std::string model, Json params = Json::object());
  Experiment& rate_grid(std::vector<double> grid);
  Experiment& voltage_grid(std::vector<double> grid);
  Experiment& param_grid(std::string param, std::vector<double> values);
  Experiment& trials(int n);
  Experiment& split(std::string split);       // "rerr" | "test"
  Experiment& subset(long n);
  Experiment& batch(long n);
  Experiment& clean_err(bool enabled);
  Experiment& eval_quant(const QuantScheme& scheme);
  // Opt-in fault forensics (obs/forensics.h): flip ledger + attribution,
  // propagation probes on `probe_images` examples, and — for adversarial
  // faults — a budget-matched random control pass when `control` is set.
  Experiment& forensics(int probe_images = 0, bool control = false,
                        double threshold = 1e-4);
  Experiment& serve(ServeSection section);    // switches kind to "serve"

  // The validated spec (throws on inconsistencies).
  ExperimentSpec spec() const;
  Report run() const;

 private:
  ExperimentSpec spec_;
};

}  // namespace ber::api
