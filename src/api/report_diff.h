// Structural report diffing: compare a fresh Report JSON against a
// checked-in baseline and decide "regression or not" with per-field
// tolerance rules instead of a byte compare (reports carry timings and
// latency quantiles that legitimately wobble across machines).
//
// Comparability gate: every report embeds its fully-normalized spec
// (Report::to_json sets "spec"), and two reports are only comparable when
// those specs are identical — a diff across different scenarios is a
// category error, reported as `comparable = false`, never as a pass.
//
// Rule severities:
//   hard — a regression; DiffResult::ok() is false and ber_run --baseline
//          exits nonzero. Hard rules are the machine-independent verdicts:
//          SLO attainment dropped, shed appeared, a latency quantile
//          crossed the SLO bound it used to meet, canary error rose,
//          deterministic planner outputs moved.
//   warn — drifted beyond tolerance but machine-dependent (raw latency
//          microseconds, energy); surfaced in the summary, does not fail.
//
// Used by `ber_run --baseline old.json` (tools/ber_run.cpp) and gated in
// CI against artifacts/baseline_serving.json.
#pragma once

#include <string>
#include <vector>

#include "core/json.h"

namespace ber::api {

// One evaluated comparison that exceeded its tolerance.
struct DiffFinding {
  std::string path;      // dotted path into the report JSON
  std::string severity;  // "hard" | "warn"
  double baseline = 0.0;
  double current = 0.0;
  std::string note;      // the rule that fired, human-readable

  Json to_json() const;
};

struct DiffResult {
  bool comparable = true;
  std::string incomparable_reason;  // set when !comparable
  long checks = 0;                  // comparisons evaluated
  std::vector<DiffFinding> regressions;  // severity "hard"
  std::vector<DiffFinding> warnings;     // severity "warn"

  // Pass verdict: comparable and no hard regressions (warnings allowed).
  bool ok() const { return comparable && regressions.empty(); }
  Json to_json() const;
  // Multi-line human-readable verdict for the CLI.
  std::string summary() const;
};

// Diffs two Report::to_json() documents (baseline first). Throws JsonError
// only on documents that are not reports at all (missing "spec"/"kind");
// spec mismatch and kind mismatch come back as comparable = false.
DiffResult diff_reports(const Json& baseline, const Json& current);

}  // namespace ber::api
