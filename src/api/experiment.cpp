#include "api/experiment.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <future>
#include <optional>
#include <stdexcept>
#include <thread>
#include <utility>

#include "api/registry.h"
#include "api/zoo.h"
#include "core/env.h"
#include "data/source.h"
#include "data/store.h"
#include "eval/metrics.h"
#include "faults/profiled_chip_model.h"
#include "faults/random_bit_error_model.h"
#include "kernels/backend.h"
#include "obs/forensics.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "serve/checkpoint.h"
#include "serve/replica_pool.h"
#include "tensor/ops.h"

namespace ber::api {

namespace {

// FNV-1a fingerprint of an inline model entry's normalized JSON — the
// checkpoint cache key, so editing any part of the recipe retrains instead
// of silently loading a stale artifact. Display-only fields are excluded:
// relabeling a report row must not invalidate the cache.
std::string fingerprint(const ModelEntry& entry) {
  ModelEntry hashed = entry;
  hashed.label.clear();
  const std::string text = model_entry_to_json(hashed).dump();
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : text) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

Json robust_result_json(double x, const std::string& axis,
                        const RobustResult& r) {
  Json j = Json::object();
  if (!axis.empty()) j.set(axis, x);
  j.set("rerr_mean", static_cast<double>(r.mean_rerr));
  j.set("rerr_std", static_cast<double>(r.std_rerr));
  j.set("confidence", static_cast<double>(r.mean_confidence));
  return j;
}

}  // namespace

// ------------------------------------------------------------------ Report --

Json Report::to_json() const {
  Json j = Json::object();
  j.set("experiment", spec.name);
  j.set("kind", spec.kind);
  j.set("backend", spec.backend);
  j.set("spec", spec.to_json());
  if (spec.kind == "serve") {
    const ServeReport& s = serve;
    Json sj = Json::object();
    sj.set("clean_err", s.clean_err);
    Json slo = Json::object();
    slo.set("max_rerr", s.slo.max_rerr);
    slo.set("z", s.slo.z);
    sj.set("slo", slo);
    sj.set("planner", plan_to_json(s.plan, s.slo));
    Json fleet = Json::object();
    fleet.set("replicas", static_cast<long>(s.canary_errs.size()));
    Json errs = Json::array();
    double mean_err = 0.0;
    for (double e : s.canary_errs) {
      errs.push_back(e);
      mean_err += e;
    }
    if (!s.canary_errs.empty()) {
      mean_err /= static_cast<double>(s.canary_errs.size());
    }
    fleet.set("canary_errs", std::move(errs));
    fleet.set("mean_canary_err", mean_err);
    fleet.set("slo_ok", mean_err <= s.slo.max_rerr);
    fleet.set("energy_per_access", s.fleet_energy);
    fleet.set("energy_saving", 1.0 - s.fleet_energy);
    sj.set("fleet", std::move(fleet));
    if (s.requests > 0) {
      Json t = Json::object();
      t.set("requests", s.requests);
      t.set("answered", s.answered);
      t.set("rejected", s.rejected);
      t.set("mean_batch", s.mean_batch);
      sj.set("traffic", std::move(t));
    }
    if (!s.timeline.is_null()) sj.set("timeline", s.timeline);
    j.set("serve", std::move(sj));
    if (!metrics.is_null()) j.set("metrics", metrics);
    return j;
  }
  Json ms = Json::array();
  for (const ModelReport& m : models) {
    Json mj = Json::object();
    mj.set("name", m.name);
    mj.set("label", m.label);
    if (m.clean_err >= 0.0) mj.set("clean_err", m.clean_err);
    mj.set("fault", m.fault);
    Json points = Json::array();
    for (const ReportPoint& pt : m.points) {
      points.push_back(robust_result_json(pt.x, m.axis, pt.result));
    }
    mj.set("points", std::move(points));
    if (!m.forensics.is_null()) mj.set("forensics", m.forensics);
    ms.push_back(std::move(mj));
  }
  j.set("models", std::move(ms));
  if (!metrics.is_null()) j.set("metrics", metrics);
  return j;
}

// ------------------------------------------------------------------ Runner --

Runner::Runner(ExperimentSpec spec) : spec_(std::move(spec)) {
  spec_.validate();
}

const Dataset& Runner::dataset(const DatasetSection& section, bool train) {
  // One keyed store for the whole process (data/store.h): an inline spec
  // model and a zoo model naming the same data share a materialization, and
  // file-backed sources stream through the prefetch pipeline in load_split.
  data::SourceSpec src{section.source, section.path, section.config};
  return data::dataset_store().get(
      data::dataset_key(src, train ? "train" : "test"),
      [&] { return data::load_split(src, train); });
}

const Dataset& Runner::subset(const Dataset& full, long n) {
  n = std::min(n, full.size());
  std::unique_ptr<Dataset>& slot = subsets_[{&full, n}];
  if (slot == nullptr) slot = std::make_unique<Dataset>(full.head(n));
  return *slot;
}

int Runner::n_trials() const {
  return spec_.eval.n_trials > 0 ? spec_.eval.n_trials : zoo::default_chips();
}

Runner::ResolvedModel Runner::resolve(const ModelEntry& entry) {
  BER_TRACE_SCOPE("runner", "resolve");
  ResolvedModel rm;
  if (entry.is_zoo()) {
    const zoo::Spec& zs = zoo::spec(entry.zoo);
    rm.model = &zoo::get(entry.zoo);
    rm.scheme = zoo::scheme_of(entry.zoo);
    rm.name = entry.zoo;
    rm.label = entry.label.empty() ? zs.label : entry.label;
    rm.train_set = &zoo::train_set(zs.dataset);
    rm.test_set = &zoo::test_set(zs.dataset);
    rm.eval_set = spec_.eval.split == "rerr" ? &zoo::rerr_set(zs.dataset)
                                             : rm.test_set;
  } else {
    const Dataset& train_data = dataset(entry.dataset, /*train=*/true);
    const Dataset& test_data = dataset(entry.dataset, /*train=*/false);
    if (entry.dataset.source != "synthetic") {
      // File-backed geometry is only known once the files are read (shard
      // headers especially); a mismatch against the model section would
      // otherwise surface as a shape error deep inside the first forward.
      for (const Dataset* d : {&train_data, &test_data}) {
        if (d->channels() != entry.model.in_channels ||
            d->height() != entry.model.image_size ||
            d->width() != entry.model.image_size ||
            d->num_classes != entry.model.num_classes) {
          throw std::invalid_argument(
              "experiment \"" + spec_.name + "\": dataset at \"" +
              entry.dataset.path + "\" is [" + std::to_string(d->channels()) +
              "x" + std::to_string(d->height()) + "x" +
              std::to_string(d->width()) + "], " +
              std::to_string(d->num_classes) + " classes, but the model "
              "section says in_channels=" +
              std::to_string(entry.model.in_channels) + " image_size=" +
              std::to_string(entry.model.image_size) + " num_classes=" +
              std::to_string(entry.model.num_classes));
        }
      }
    }
    auto model = build_model(entry.model);
    const std::string ckpt =
        entry.name.empty()
            ? ""
            : artifacts_dir() + "/api_" + entry.name + "_" +
                  fingerprint(entry) + ".ckpt";
    bool loaded = false;
    if (!ckpt.empty() && file_exists(ckpt)) {
      // The fingerprint covers the recipe, but stay defensive about stale /
      // hand-edited artifacts: a mismatched stored scheme, or a truncated /
      // corrupt file, forces a retrain (train() re-initializes the weights,
      // so a partial load leaves no trace).
      try {
        loaded = load_checkpoint(ckpt, *model) == entry.quant;
      } catch (const std::exception&) {
        loaded = false;
      }
    }
    if (!loaded) {
      // The training scheme is ALWAYS the entry's quant section — the JSON
      // parse path mirrors it, and enforcing it here covers builder-made
      // entries where train.quant was left at its default.
      TrainConfig tc = entry.train;
      tc.quant = entry.quant;
      // Training pins the reference backend (like the zoo) so a cached
      // artifact never depends on which backend the surrounding run uses.
      const kernels::ScopedBackend guard(kernels::backend("reference"));
      BER_TRACE_SCOPE("runner", "train");
      train(*model, train_data, test_data, tc);
      if (!ckpt.empty()) {
        ensure_dir(artifacts_dir());
        save_checkpoint(ckpt, *model, entry.quant);
      }
    }
    rm.scheme = entry.quant;
    rm.name = entry.name.empty() ? "inline" : entry.name;
    rm.label = entry.label.empty() ? rm.name : entry.label;
    rm.train_set = &train_data;
    rm.test_set = &test_data;
    if (spec_.eval.split == "rerr") {
      rm.eval_set =
          &subset(test_data, fast_mode() ? 200 : 500);
    } else {
      rm.eval_set = &test_data;
    }
    owned_models_.push_back(std::move(model));
    rm.model = owned_models_.back().get();
  }
  if (spec_.eval.has_quant_override) rm.scheme = spec_.eval.quant_override;
  if (spec_.eval.subset > 0) {
    rm.eval_set = &subset(*rm.eval_set, spec_.eval.subset);
  }
  return rm;
}

Report Runner::run_robustness() {
  Report report;
  report.spec = spec_;
  const EvalSection& e = spec_.eval;
  const int n = n_trials();
  for (const ModelEntry& entry : spec_.models) {
    ResolvedModel rm = resolve(entry);
    BER_TRACE_SCOPE("runner", "robustness");
    ModelReport mr;
    mr.name = rm.name;
    mr.label = rm.label;
    if (e.clean_err) {
      mr.clean_err = test_error(*rm.model, *rm.test_set, &rm.scheme, e.batch);
    }

    const bool float_space = spec_.fault.model == "linf";
    std::optional<RobustnessEvaluator> evaluator;
    if (float_space) {
      evaluator.emplace(*rm.model);
    } else {
      evaluator.emplace(*rm.model, rm.scheme);
      // Spec opt-in only adds to the environment default (set via the
      // evaluator's own member initializer) — it never forces it off.
      if (spec_.compute_on_codes) evaluator->set_compute_on_codes(true);
    }
    FaultContext ctx;
    ctx.model = rm.model;
    ctx.scheme = &rm.scheme;
    ctx.attack_set = rm.train_set;
    ctx.n_trials = n;
    if (!float_space) ctx.layout = &evaluator->snapshot();

    // Opt-in fault forensics: a fresh ledger per model (sweeps accumulate
    // across points, models don't mix), probes prepared against the same
    // deployment mode the trials use, and the words_patched counter
    // bracketed so the report can reconcile ledger totals against it.
    // validate() already rejects forensics for float-space faults.
    const ForensicsSection& fx = e.forensics;
    const bool do_forensics = fx.enabled && !float_space;
    std::unique_ptr<obs::ForensicsCollector> collector;
    std::uint64_t words_before = 0;
    if (do_forensics) {
      obs::fault_ledger().clear();
      obs::fault_ledger().set_enabled(true);
      obs::ForensicsOptions fo;
      fo.probe_images = fx.probe_images;
      fo.divergence_threshold = fx.threshold;
      collector = std::make_unique<obs::ForensicsCollector>(fo);
      collector->prepare_probes(*rm.model, evaluator->snapshot(),
                                evaluator->compute_on_codes(), *rm.eval_set);
      evaluator->set_forensics(collector.get(), "eval");
      words_before = obs::registry().counter("faults.words_patched").value();
    }

    if (!e.rate_grid.empty()) {
      auto fault = make_fault_model(spec_.fault.model,
                                    resolved_fault_params(spec_, nullptr), ctx);
      const auto* random = dynamic_cast<const RandomBitErrorModel*>(fault.get());
      if (random == nullptr) {
        throw std::invalid_argument(
            "rate_grid sweeps need a RandomBitErrorModel-backed fault");
      }
      mr.axis = "p";
      mr.fault = fault->describe();
      const std::vector<RobustResult> sweep = evaluator->run_rate_sweep(
          *random, e.rate_grid, *rm.eval_set, n, e.batch);
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        mr.points.push_back({e.rate_grid[i], sweep[i]});
      }
    } else if (!e.voltage_grid.empty()) {
      auto fault = make_fault_model(spec_.fault.model,
                                    resolved_fault_params(spec_, nullptr), ctx);
      const auto* profiled = dynamic_cast<const ProfiledChipModel*>(fault.get());
      if (profiled == nullptr) {
        throw std::invalid_argument(
            "voltage_grid sweeps need a ProfiledChipModel-backed fault");
      }
      mr.axis = "v";
      mr.fault = fault->describe();
      const std::vector<RobustResult> sweep = evaluator->run_voltage_sweep(
          *profiled, e.voltage_grid, *rm.eval_set, n, e.batch);
      for (std::size_t i = 0; i < sweep.size(); ++i) {
        mr.points.push_back({e.voltage_grid[i], sweep[i]});
      }
    } else if (!e.grid.empty()) {
      mr.axis = e.grid.param;
      for (const double value : e.grid.values) {
        auto fault = make_fault_model(spec_.fault.model,
                                      resolved_fault_params(spec_, &value), ctx);
        mr.fault = fault->describe();
        mr.points.push_back(
            {value, evaluator->run(*fault, *rm.eval_set, n, e.batch)});
      }
    } else {
      auto fault = make_fault_model(spec_.fault.model,
                                    resolved_fault_params(spec_, nullptr), ctx);
      mr.fault = fault->describe();
      mr.points.push_back(
          {0.0, evaluator->run(*fault, *rm.eval_set, n, e.batch)});
    }
    if (do_forensics) {
      if (fx.control) {
        // Budget-matched random control: the same flip budget on
        // hash-random cells, landing in the ledger under profile "control"
        // so the attack's bit-position profile has a baseline to stand
        // against in the same report.
        BER_TRACE_SCOPE("runner", "forensics_control");
        Json cparams = resolved_fault_params(spec_, nullptr);
        cparams.set("control", true);
        auto control = make_fault_model(spec_.fault.model, cparams, ctx);
        evaluator->set_forensics(collector.get(), "control");
        (void)evaluator->run(*control, *rm.eval_set, n, e.batch);
      }
      const std::uint64_t words_delta =
          obs::registry().counter("faults.words_patched").value() -
          words_before;
      mr.forensics = collector->to_json(words_delta);
      evaluator->set_forensics(nullptr);
      obs::fault_ledger().set_enabled(false);
    }
    report.models.push_back(std::move(mr));
  }
  return report;
}

Report Runner::run_serve() {
  Report report;
  report.spec = spec_;
  ServeReport& s = report.serve;
  const ServeSection& sv = spec_.serve;
  // Registered up front so the key exists (at zero) in every serve
  // snapshot — CI gates on it without a presence check.
  obs::Counter& shed = obs::registry().counter("serve.requests_shed");
  ResolvedModel rm = resolve(spec_.models.front());

  s.clean_err = test_error(*rm.model, *rm.test_set, &rm.scheme, spec_.eval.batch);
  s.slo.max_rerr = sv.slo.clean_plus >= 0.0 ? s.clean_err + sv.slo.clean_plus
                                            : sv.slo.max_rerr;
  s.slo.z = sv.slo.z;

  OperatingPointPlanner planner(*rm.model, rm.scheme);
  if (spec_.compute_on_codes) planner.set_compute_on_codes(true);
  FaultContext ctx;
  ctx.model = rm.model;
  ctx.scheme = &rm.scheme;
  ctx.n_trials = sv.n_chips;
  ctx.layout = &planner.evaluator().snapshot();
  auto fault = make_fault_model(spec_.fault.model,
                                resolved_fault_params(spec_, nullptr), ctx);

  std::vector<Replica> fleet;
  if (const auto* random = dynamic_cast<const RandomBitErrorModel*>(fault.get())) {
    {
      BER_TRACE_SCOPE("runner", "plan");
      s.plan = planner.plan(*random, *rm.eval_set, sv.voltages, s.slo,
                            sv.n_chips, spec_.eval.batch);
    }
    BER_TRACE_SCOPE("runner", "deploy_fleet");
    fleet = planner.deploy_fleet(*random, s.plan, sv.replicas);
  } else {
    const auto& profiled = dynamic_cast<const ProfiledChipModel&>(*fault);
    {
      BER_TRACE_SCOPE("runner", "plan");
      s.plan = planner.plan_profiled(profiled, *rm.eval_set, sv.voltages,
                                     s.slo, sv.n_chips, spec_.eval.batch);
    }
    BER_TRACE_SCOPE("runner", "deploy_fleet");
    fleet = planner.deploy_fleet_profiled(profiled, s.plan, sv.replicas);
  }

  const Dataset& canary_set = sv.canary_subset > 0
                                  ? subset(*rm.test_set, sv.canary_subset)
                                  : *rm.test_set;
  s.fleet_energy = planner.fleet_energy_per_access(fleet);
  s.requests = sv.requests;

  if (sv.traffic.enabled()) {
    // Open-loop load: arrival-process schedules drive the pool on their own
    // clock (serve/traffic_gen.h); queueing delay and shed are properties
    // of the pool, not of a request-and-wait client. The scoreboard's
    // windowed timeline lands in the report.
    ReplicaPool pool(std::move(fleet), sv.queue);
    TrafficGenerator gen(pool, *rm.test_set, sv.traffic);
    TrafficResult tr;
    {
      BER_TRACE_SCOPE_ARGS("runner", "traffic_open_loop",
                           {"phases", sv.traffic.phases.size()});
      tr = gen.run();
      pool.drain();
    }
    s.requests = static_cast<long>(tr.offered);
    s.answered = static_cast<long>(tr.answered);
    s.rejected = static_cast<long>(tr.shed);
    shed.add(0);  // key exists even if the generator never shed
    s.timeline = std::move(tr.timeline);
    s.mean_batch = pool.stats().mean_batch_images;
    BER_TRACE_SCOPE("runner", "canary");
    for (std::size_t i = 0; i < pool.size(); ++i) {
      s.canary_errs.push_back(pool.replica(i).canary(canary_set).error);
    }
  } else if (sv.requests > 0) {
    // Drive single-image traffic through the dynamic-batching pool. With a
    // bounded queue (max_queue_images) submissions can be rejected; the
    // client retries with a short backoff (as a real load-shedding client
    // would) and counts a request as rejected only once the retry budget is
    // spent. Accepted requests must all answer (the no-loss contract).
    ReplicaPool pool(std::move(fleet), sv.queue);
    {
      BER_TRACE_SCOPE_ARGS("runner", "traffic", {"requests", sv.requests});
      Tensor image;
      std::vector<int> labels;
      std::vector<std::future<std::vector<Prediction>>> futures;
      futures.reserve(static_cast<std::size_t>(sv.requests));
      for (long i = 0; i < sv.requests; ++i) {
        const long j = i % rm.test_set->size();
        rm.test_set->batch(j, j + 1, image, labels);
        Tensor single = image.reshaped(
            {image.shape(1), image.shape(2), image.shape(3)});
        for (int attempt = 0;; ++attempt) {
          try {
            // Copy per attempt: a rejected submit consumes its argument.
            futures.push_back(pool.submit(single));
            break;
          } catch (const QueueFullError&) {
            // Budget ~100ms: several batch service times, so a shed means
            // the pool is genuinely stalled, not mid-drain.
            if (attempt >= 200) {
              // Shed = dropped after the whole retry budget, not a transient
              // queue-full (those are serve.queue_rejections).
              ++s.rejected;
              shed.add(1);
              break;
            }
            std::this_thread::sleep_for(std::chrono::microseconds(500));
          }
        }
      }
      for (auto& f : futures) s.answered += static_cast<long>(f.get().size());
      pool.drain();
    }
    s.mean_batch = pool.stats().mean_batch_images;
    BER_TRACE_SCOPE("runner", "canary");
    for (std::size_t i = 0; i < pool.size(); ++i) {
      s.canary_errs.push_back(pool.replica(i).canary(canary_set).error);
    }
  } else {
    BER_TRACE_SCOPE("runner", "canary");
    for (Replica& r : fleet) {
      s.canary_errs.push_back(r.canary(canary_set).error);
    }
  }
  return report;
}

Report Runner::run() {
  const kernels::ScopedBackend guard(kernels::backend(spec_.backend));
  BER_TRACE_SCOPE_ARGS("runner", "run", {"kind", spec_.kind.c_str()});
  Report report = spec_.kind == "serve" ? run_serve() : run_robustness();
  report.metrics = obs::registry().to_json();
  return report;
}

// -------------------------------------------------------------- Experiment --

Experiment::Experiment(std::string name) { spec_.name = std::move(name); }

Experiment& Experiment::description(std::string text) {
  spec_.description = std::move(text);
  return *this;
}

Experiment& Experiment::backend(std::string name) {
  spec_.backend = std::move(name);
  return *this;
}

Experiment& Experiment::compute_on_codes(bool on) {
  spec_.compute_on_codes = on;
  return *this;
}

Experiment& Experiment::zoo(const std::string& zoo_name) {
  ModelEntry e;
  e.zoo = zoo_name;
  spec_.models.push_back(std::move(e));
  return *this;
}

Experiment& Experiment::model(ModelEntry entry) {
  spec_.models.push_back(std::move(entry));
  return *this;
}

Experiment& Experiment::fault(std::string model, Json params) {
  spec_.fault.model = std::move(model);
  spec_.fault.params = std::move(params);
  return *this;
}

Experiment& Experiment::rate_grid(std::vector<double> grid) {
  spec_.eval.rate_grid = std::move(grid);
  return *this;
}

Experiment& Experiment::voltage_grid(std::vector<double> grid) {
  spec_.eval.voltage_grid = std::move(grid);
  return *this;
}

Experiment& Experiment::param_grid(std::string param,
                                   std::vector<double> values) {
  spec_.eval.grid.param = std::move(param);
  spec_.eval.grid.values = std::move(values);
  return *this;
}

Experiment& Experiment::trials(int n) {
  spec_.eval.n_trials = n;
  return *this;
}

Experiment& Experiment::split(std::string split) {
  spec_.eval.split = std::move(split);
  return *this;
}

Experiment& Experiment::subset(long n) {
  spec_.eval.subset = n;
  return *this;
}

Experiment& Experiment::batch(long n) {
  spec_.eval.batch = n;
  return *this;
}

Experiment& Experiment::clean_err(bool enabled) {
  spec_.eval.clean_err = enabled;
  return *this;
}

Experiment& Experiment::eval_quant(const QuantScheme& scheme) {
  spec_.eval.has_quant_override = true;
  spec_.eval.quant_override = scheme;
  return *this;
}

Experiment& Experiment::forensics(int probe_images, bool control,
                                  double threshold) {
  spec_.eval.forensics.enabled = true;
  spec_.eval.forensics.probe_images = probe_images;
  spec_.eval.forensics.threshold = threshold;
  spec_.eval.forensics.control = control;
  return *this;
}

Experiment& Experiment::serve(ServeSection section) {
  spec_.kind = "serve";
  spec_.serve = std::move(section);
  return *this;
}

ExperimentSpec Experiment::spec() const {
  ExperimentSpec s = spec_;
  s.validate();
  return s;
}

// Runner's constructor validates, so don't pay spec()'s extra pass.
Report Experiment::run() const { return Runner(spec_).run(); }

}  // namespace ber::api
