#include "api/report_diff.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace ber::api {

namespace {

// Walks a dotted path ("serve.timeline.summary.attainment") through nested
// objects. Returns nullptr when any segment is absent or not an object.
const Json* lookup(const Json& root, const std::string& path) {
  const Json* cur = &root;
  std::size_t pos = 0;
  while (pos < path.size()) {
    const std::size_t dot = path.find('.', pos);
    const std::string key = path.substr(pos, dot == std::string::npos
                                                 ? std::string::npos
                                                 : dot - pos);
    if (!cur->is_object()) return nullptr;
    cur = cur->find(key);
    if (!cur) return nullptr;
    if (dot == std::string::npos) break;
    pos = dot + 1;
  }
  return cur;
}

class Differ {
 public:
  Differ(const Json& baseline, const Json& current, DiffResult& out)
      : base_(baseline), cur_(current), out_(out) {}

  // Numeric rule: fires when `current > baseline + tol` (higher-is-worse
  // fields: error rates, latency, shed counts). Missing on the baseline
  // side skips the check (older baselines may predate the field); missing
  // on the current side is itself a hard finding — a report that lost a
  // gated field must not pass by omission.
  void worse_if_above(const std::string& path, double tol,
                      const std::string& severity, const std::string& note) {
    double b, c;
    if (!both(path, severity, b, c)) return;
    ++out_.checks;
    if (c > b + tol) add(path, severity, b, c, note);
  }

  // Fires when `current < baseline - tol` (higher-is-better fields:
  // attainment, budget).
  void worse_if_below(const std::string& path, double tol,
                      const std::string& severity, const std::string& note) {
    double b, c;
    if (!both(path, severity, b, c)) return;
    ++out_.checks;
    if (c < b - tol) add(path, severity, b, c, note);
  }

  // Fires on |current - baseline| > tol (deterministic outputs that should
  // not move at all: offered request counts, energy model results).
  void worse_if_moved(const std::string& path, double tol,
                      const std::string& severity, const std::string& note) {
    double b, c;
    if (!both(path, severity, b, c)) return;
    ++out_.checks;
    if (std::fabs(c - b) > tol) add(path, severity, b, c, note);
  }

  // Boolean rule: fires on a true -> false flip (feasible, slo_met).
  void worse_if_flipped(const std::string& path, const std::string& severity,
                        const std::string& note) {
    const Json* b = lookup(base_, path);
    const Json* c = lookup(cur_, path);
    if (!b || !b->is_bool()) return;
    if (!c || !c->is_bool()) {
      add(path, severity, 1.0, 0.0, "field missing in current report");
      return;
    }
    ++out_.checks;
    if (b->as_bool() && !c->as_bool()) {
      add(path, severity, 1.0, 0.0, note);
    }
  }

  // Latency-vs-SLO rule: hard only when the quantile crossed the SLO bound
  // it used to meet (machine-independent verdict); growth under the bound
  // is a warn past 2x + slack.
  void latency(const std::string& path, double slo_bound_us) {
    double b, c;
    if (!both(path, "hard", b, c)) return;
    ++out_.checks;
    if (b <= slo_bound_us && c > slo_bound_us) {
      add(path, "hard", b, c, "latency crossed the SLO bound it met before");
    } else if (c > 2.0 * b + 1000.0) {
      add(path, "warn", b, c, "latency more than doubled vs baseline");
    }
  }

 private:
  bool both(const std::string& path, const std::string& severity, double& b,
            double& c) {
    const Json* bj = lookup(base_, path);
    const Json* cj = lookup(cur_, path);
    if (!bj || !bj->is_number()) return false;
    if (!cj || !cj->is_number()) {
      add(path, severity, bj->as_number(), 0.0,
          "field missing in current report");
      return false;
    }
    b = bj->as_number();
    c = cj->as_number();
    return true;
  }

  void add(const std::string& path, const std::string& severity, double b,
           double c, const std::string& note) {
    DiffFinding f{path, severity, b, c, note};
    if (severity == "hard") {
      out_.regressions.push_back(std::move(f));
    } else {
      out_.warnings.push_back(std::move(f));
    }
  }

  const Json& base_;
  const Json& cur_;
  DiffResult& out_;
};

void diff_serve(Differ& d, const Json& baseline) {
  // SLO scoreboard summary — the load-test verdict. Attainment and shed
  // are the ISSUE-mandated hard gates.
  d.worse_if_below("serve.timeline.summary.attainment", 0.02, "hard",
                   "SLO attainment dropped");
  d.worse_if_above("serve.timeline.summary.shed", 0.0, "hard",
                   "requests were shed that the baseline served");
  d.worse_if_flipped("serve.timeline.summary.slo_met", "hard",
                     "run-level SLO verdict flipped to violated");
  d.worse_if_above("serve.timeline.summary.windows_violated", 0.0, "warn",
                   "more SLO-violating windows than baseline");
  d.worse_if_below("serve.timeline.summary.budget_remaining", 0.10, "warn",
                   "error budget burned faster than baseline");

  double slo_bound = 0.0;
  if (const Json* b = lookup(baseline, "serve.timeline.slo.latency_us")) {
    if (b->is_number()) slo_bound = b->as_number();
  }
  if (slo_bound > 0.0) {
    d.latency("serve.timeline.summary.p50_us", slo_bound);
    d.latency("serve.timeline.summary.p99_us", slo_bound);
    d.latency("serve.timeline.summary.p999_us", slo_bound);
  }
  // The offered count is the seeded arrival schedule — identical specs must
  // produce it bit-identically on any machine.
  d.worse_if_moved("serve.timeline.summary.offered", 0.0, "hard",
                   "offered load differs under an identical spec/seed");

  // Accuracy / planner outputs (deterministic eval; generous tolerances
  // absorb cross-compiler float drift).
  d.worse_if_above("serve.clean_err", 0.02, "hard", "clean error rose");
  d.worse_if_above("serve.fleet.mean_canary_err", 0.02, "hard",
                   "fleet canary error rose");
  d.worse_if_flipped("serve.fleet.slo_ok", "hard",
                     "fleet accuracy SLO flipped to violated");
  d.worse_if_flipped("serve.planner.feasible", "hard",
                     "operating-point plan flipped to infeasible");
  d.worse_if_moved("serve.planner.chosen_v", 1e-9, "warn",
                   "chosen operating voltage moved");
  d.worse_if_moved("serve.fleet.energy_per_access", 1e-6, "warn",
                   "fleet energy per access moved");

  // Closed-loop traffic counters (present only when the spec drives them).
  d.worse_if_above("serve.traffic.rejected", 0.0, "hard",
                   "traffic rejections exceeded baseline");
}

}  // namespace

Json DiffFinding::to_json() const {
  Json j = Json::object();
  j.set("path", path);
  j.set("severity", severity);
  j.set("baseline", baseline);
  j.set("current", current);
  j.set("note", note);
  return j;
}

Json DiffResult::to_json() const {
  Json j = Json::object();
  j.set("comparable", comparable);
  if (!comparable) j.set("incomparable_reason", incomparable_reason);
  j.set("ok", ok());
  j.set("checks", checks);
  Json rs = Json::array();
  for (const DiffFinding& f : regressions) rs.push_back(f.to_json());
  j.set("regressions", std::move(rs));
  Json ws = Json::array();
  for (const DiffFinding& f : warnings) ws.push_back(f.to_json());
  j.set("warnings", std::move(ws));
  return j;
}

std::string DiffResult::summary() const {
  std::ostringstream os;
  if (!comparable) {
    os << "baseline diff: INCOMPARABLE — " << incomparable_reason << "\n";
    return os.str();
  }
  os << "baseline diff: " << (ok() ? "PASS" : "FAIL") << " (" << checks
     << " checks, " << regressions.size() << " regressions, "
     << warnings.size() << " warnings)\n";
  for (const DiffFinding& f : regressions) {
    os << "  FAIL " << f.path << ": " << f.baseline << " -> " << f.current
       << " (" << f.note << ")\n";
  }
  for (const DiffFinding& f : warnings) {
    os << "  warn " << f.path << ": " << f.baseline << " -> " << f.current
       << " (" << f.note << ")\n";
  }
  return os.str();
}

DiffResult diff_reports(const Json& baseline, const Json& current) {
  DiffResult r;
  const Json* bs = baseline.is_object() ? baseline.find("spec") : nullptr;
  const Json* cs = current.is_object() ? current.find("spec") : nullptr;
  if (!bs || !baseline.find("kind")) {
    throw JsonError("baseline is not a ber_run report (no spec/kind)");
  }
  if (!cs || !current.find("kind")) {
    throw JsonError("current is not a ber_run report (no spec/kind)");
  }
  if (baseline.at("kind").as_string() != current.at("kind").as_string()) {
    r.comparable = false;
    r.incomparable_reason =
        "report kinds differ (" + baseline.at("kind").as_string() + " vs " +
        current.at("kind").as_string() + ")";
    return r;
  }
  // Reports embed the fully-normalized spec; normalization makes this an
  // exact equality question, not a fuzzy one. Any difference means the two
  // runs answered different questions.
  if (!(*bs == *cs)) {
    r.comparable = false;
    r.incomparable_reason =
        "specs differ — the baseline was produced by a different experiment; "
        "regenerate it from the current config";
    return r;
  }

  Differ d(baseline, current, r);
  if (baseline.at("kind").as_string() == "serve") {
    diff_serve(d, baseline);
  } else {
    // Robustness reports: sweep errors must not rise. Model lists share
    // order under an identical spec.
    const Json* bm = baseline.find("models");
    const Json* cm = current.find("models");
    if (bm && cm && bm->is_array() && cm->is_array()) {
      const std::size_t n = std::min(bm->size(), cm->size());
      for (std::size_t i = 0; i < n; ++i) {
        const Json& b = (*bm)[i];
        const Json& c = (*cm)[i];
        Differ md(b, c, r);
        const std::string where = "models[" + std::to_string(i) + "]";
        md.worse_if_above("clean_err", 0.02, "hard",
                          where + ": clean error rose");
        const Json* bp = b.find("points");
        const Json* cp = c.find("points");
        if (!bp || !cp || !bp->is_array() || !cp->is_array()) continue;
        const std::size_t np = std::min(bp->size(), cp->size());
        for (std::size_t k = 0; k < np; ++k) {
          Differ pd((*bp)[k], (*cp)[k], r);
          pd.worse_if_above(
              "rerr_mean", 0.02, "hard",
              where + ".points[" + std::to_string(k) + "]: rerr rose");
        }
      }
    }
  }
  return r;
}

}  // namespace ber::api
